// Package lamps is a library for leakage-aware multiprocessor scheduling,
// reproducing de Langen & Juurlink, "Leakage-Aware Multiprocessor
// Scheduling" (IPPS 2006 / J. Signal Processing Systems 2008).
//
// Given a real-time application modelled as a weighted task DAG and a
// multiprocessor whose cores support dynamic voltage scaling (DVS) and a
// deep-sleep state, the library finds schedules that minimise total energy —
// dynamic, leakage and intrinsic — under a deadline, by trading off three
// mechanisms:
//
//   - DVS: run all processors at a lower common voltage/frequency,
//   - processor shutdown (PS): put idle processors to sleep during gaps,
//   - processor-count selection: employ fewer processors and turn the rest
//     off entirely.
//
// Four scheduling approaches are provided: the Schedule-and-Stretch baseline
// (S&S), the leakage-aware processor-count search (LAMPS), and both extended
// with shutdown (S&S+PS, LAMPS+PS), plus two absolute lower bounds
// (LIMIT-SF, LIMIT-MF) to gauge remaining headroom.
//
// # Quick start
//
//	b := lamps.NewGraphBuilder("pipeline")
//	t1 := b.AddTask(2 * lamps.Millisecond)   // weights in cycles at f_max
//	t2 := b.AddTask(6 * lamps.Millisecond)
//	b.AddEdge(t1, t2)
//	g, _ := b.Build()
//
//	cfg := lamps.DeadlineFactor(g, nil, 2)   // deadline = 2x critical path
//	res, _ := lamps.LAMPSPS(g, cfg)
//	fmt.Println(res)                         // energy, #processors, level
//
// The power model defaults to the paper's 70 nm technology (3.1 GHz at
// 1.0 V, discrete 0.05 V steps, critical frequency 0.41·f_max); see
// Default70nm to customise it.
package lamps

import (
	"context"
	"io"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/frames"
	"lamps/internal/kpn"
	"lamps/internal/mpeg"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/sim"
	"lamps/internal/stg"
	"lamps/internal/taskgen"
	"lamps/internal/workpool"
)

// Millisecond is the number of cycles per millisecond at the default
// maximum frequency (3.1 GHz), handy for writing task weights.
const Millisecond = 3_100_000

// Task graph model (see internal/dag).
type (
	// Graph is an immutable weighted task DAG.
	Graph = dag.Graph
	// GraphBuilder assembles a Graph incrementally.
	GraphBuilder = dag.Builder
)

// NewGraphBuilder returns an empty builder for a task graph.
func NewGraphBuilder(name string) *GraphBuilder { return dag.NewBuilder(name) }

// Power model (see internal/power).
type (
	// PowerModel holds technology constants and platform parameters.
	PowerModel = power.Model
	// Level is one discrete voltage/frequency operating point.
	Level = power.Level
)

// Default70nm returns the paper's 70 nm power model (Table 1 constants,
// P_on = 0.1 W, sleep power 50 µW, shutdown overhead 483 µJ).
func Default70nm() *PowerModel { return power.Default70nm() }

// Heterogeneous platforms (see internal/power): an ordered vector of
// processors drawn from named core classes, each class with its own power
// model and frequency ladder. Passing a Platform in Config.Platform (instead
// of a Model) runs every approach on the heterogeneous machine; a platform
// whose classes are all identical produces results byte-identical to the
// equivalent homogeneous Model configuration.
type (
	// Platform is an immutable heterogeneous machine description.
	Platform = power.Platform
	// CoreClass names one processor type and its power model.
	CoreClass = power.CoreClass
	// OperatingPoint is one machine-wide DVS setting: a realising ladder
	// level per core class at a common normalised speed.
	OperatingPoint = power.OperatingPoint
)

// NewPlatform builds a platform from core classes and a processor-to-class
// assignment (procs[p] indexes classes).
func NewPlatform(classes []CoreClass, procs []int) (*Platform, error) {
	return power.NewPlatform(classes, procs)
}

// HomogeneousPlatform returns an n-processor platform with a single core
// class using model m (nil selects the 70 nm default) — the degenerate form
// every heterogeneous code path collapses to.
func HomogeneousPlatform(n int, m *PowerModel) (*Platform, error) {
	return power.Homogeneous(n, m)
}

// LoadPlatformJSON reads a platform description in the canonical JSON form
// (see Platform.WriteJSON and examples/platforms/).
func LoadPlatformJSON(r io.Reader) (*Platform, error) { return power.LoadPlatformJSON(r) }

// DeadlineFactorPlatform is DeadlineFactor against a heterogeneous platform:
// the deadline is factor times the critical path length of g at the
// platform's reference (fastest-class) frequency.
func DeadlineFactorPlatform(g *Graph, pf *Platform, factor float64) Config {
	return core.DeadlineFactorPlatform(g, pf, factor)
}

// Scheduling substrate (see internal/sched).
type (
	// Schedule is a static task placement on identical processors.
	Schedule = sched.Schedule
	// Gap is an idle interval of one processor.
	Gap = sched.Gap
)

// NoDeadline marks tasks without an explicit deadline in per-task deadline
// slices.
const NoDeadline = sched.NoDeadline

// ListEDF schedules a graph on nprocs processors with list scheduling +
// earliest deadline first, the scheduler used by all heuristics.
func ListEDF(g *Graph, nprocs int) (*Schedule, error) { return sched.ListEDF(g, nprocs) }

// ListEDFWithDeadlines is ListEDF with explicit per-task deadlines (cycles),
// e.g. for unrolled Kahn Process Networks.
func ListEDFWithDeadlines(g *Graph, nprocs int, deadlines []int64) (*Schedule, error) {
	return sched.ListEDFWithDeadlines(g, nprocs, deadlines)
}

// Energy accounting (see internal/energy).
type (
	// EnergyBreakdown itemises where a schedule's energy goes.
	EnergyBreakdown = energy.Breakdown
	// EnergyOptions selects the accounting variant.
	EnergyOptions = energy.Options
)

// EvaluateEnergy computes the energy of a schedule at one operating point.
func EvaluateEnergy(s *Schedule, m *PowerModel, lvl Level, deadlineSec float64, opts EnergyOptions) (EnergyBreakdown, error) {
	return energy.Evaluate(s, m, lvl, deadlineSec, opts)
}

// Heuristics and bounds (see internal/core).
type (
	// Config carries the platform and problem parameters.
	Config = core.Config
	// Result is the outcome of one approach on one graph.
	Result = core.Result
)

// Approach names accepted by Run.
const (
	ApproachSS      = core.ApproachSS
	ApproachLAMPS   = core.ApproachLAMPS
	ApproachSSPS    = core.ApproachSSPS
	ApproachLAMPSPS = core.ApproachLAMPSPS
	ApproachLimitSF = core.ApproachLimitSF
	ApproachLimitMF = core.ApproachLimitMF
)

// Approaches lists all approach names in the paper's presentation order.
func Approaches() []string { return append([]string(nil), core.Approaches...) }

// DeadlineFactor returns a Config whose deadline is factor times the
// critical path length of g at the model's maximum frequency (nil model
// selects the 70 nm default).
func DeadlineFactor(g *Graph, m *PowerModel, factor float64) Config {
	return core.DeadlineFactor(g, m, factor)
}

// ScheduleAndStretch runs the S&S baseline: schedule on as many processors
// as reduce the makespan, then stretch into the deadline with DVS.
func ScheduleAndStretch(g *Graph, cfg Config) (*Result, error) {
	return core.ScheduleAndStretch(g, cfg)
}

// ScheduleAndStretchPS runs S&S extended with processor shutdown.
func ScheduleAndStretchPS(g *Graph, cfg Config) (*Result, error) {
	return core.ScheduleAndStretchPS(g, cfg)
}

// LAMPS runs leakage-aware multiprocessor scheduling: the energy-optimal
// balance between processor count and voltage scaling.
func LAMPS(g *Graph, cfg Config) (*Result, error) { return core.LAMPS(g, cfg) }

// LAMPSPS runs LAMPS extended with processor shutdown, the paper's best
// approach.
func LAMPSPS(g *Graph, cfg Config) (*Result, error) { return core.LAMPSPS(g, cfg) }

// LimitSF computes the single-frequency lower bound.
func LimitSF(g *Graph, cfg Config) (*Result, error) { return core.LimitSF(g, cfg) }

// LimitMF computes the multiple-frequency absolute lower bound.
func LimitMF(g *Graph, cfg Config) (*Result, error) { return core.LimitMF(g, cfg) }

// Run dispatches an approach by name (see the Approach constants).
func Run(approach string, g *Graph, cfg Config) (*Result, error) {
	return core.Run(approach, g, cfg)
}

// RunCtx is Run with cooperative cancellation: it returns ctx.Err() as soon
// as the current leaf work item — at most one list-scheduling call or one
// energy sweep step — completes after ctx is done.
func RunCtx(ctx context.Context, approach string, g *Graph, cfg Config) (*Result, error) {
	return core.RunCtx(ctx, approach, g, cfg)
}

// Context-aware forms of the heuristics and bounds, with the same
// cancellation granularity as RunCtx.
var (
	ScheduleAndStretchCtx   = core.ScheduleAndStretchCtx
	ScheduleAndStretchPSCtx = core.ScheduleAndStretchPSCtx
	LAMPSCtx                = core.LAMPSCtx
	LAMPSPSCtx              = core.LAMPSPSCtx
	LimitSFCtx              = core.LimitSFCtx
	LimitMFCtx              = core.LimitMFCtx
)

// Engine API (see internal/core): cancellation, progress observation and
// parallel search behind one front door. The package-level functions above
// are thin wrappers over a zero-value Engine.
type (
	// Engine runs the heuristics with cooperative cancellation, an optional
	// progress Observer, and optional bounded search parallelism via a
	// WorkerPool. A parallel engine returns results — including Stats —
	// byte-identical to a serial one.
	Engine = core.Engine
	// Observer receives serialised progress callbacks from a running
	// Engine: phase transitions, fresh schedule builds, energy evaluations.
	Observer = core.Observer
	// SearchStats reports the search effort of one heuristic run.
	SearchStats = core.Stats
	// WorkerPool bounds concurrent work; share one across engines to cap
	// total parallelism (see Engine.Pool).
	WorkerPool = workpool.Pool
)

// NewWorkerPool returns a pool admitting at most workers concurrent leaf
// work items (0 or negative = GOMAXPROCS).
func NewWorkerPool(workers int) *WorkerPool { return workpool.NewPool(workers) }

// Phase names reported through Observer.OnPhase.
const (
	PhaseMinProcs   = core.PhaseMinProcs
	PhaseSaturation = core.PhaseSaturation
	PhaseBuild      = core.PhaseBuild
	PhaseEvaluate   = core.PhaseEvaluate
	PhaseReclaim    = core.PhaseReclaim
	PhaseRefine     = core.PhaseRefine
)

// EnergySaving returns the attained fraction of the possible energy
// reduction, with S&S as baseline and a LIMIT bound as maximum.
func EnergySaving(baseline, achieved, limit float64) float64 {
	return core.EnergySaving(baseline, achieved, limit)
}

// STG file format (see internal/stg).

// ParseSTG reads a task graph in Standard Task Graph Set format.
func ParseSTG(r io.Reader, name string) (*Graph, error) { return stg.Parse(r, name) }

// WriteSTG emits a task graph in Standard Task Graph Set format.
func WriteSTG(w io.Writer, g *Graph) error { return stg.Write(w, g) }

// Workload generators (see internal/taskgen and internal/mpeg).
type (
	// GraphProfile describes aggregate characteristics for synthesis.
	GraphProfile = taskgen.Profile
	// Grain selects the paper's coarse/fine weight-to-cycles scaling.
	Grain = taskgen.Grain
)

// Grain values.
const (
	Coarse = taskgen.Coarse
	Fine   = taskgen.Fine
)

// MPEG1GOP builds the dependence graph of one closed MPEG-1 group of
// pictures from a display-order pattern such as "IBBPBBPBBPBBPBB".
func MPEG1GOP(pattern string, cycles map[byte]int64) (*Graph, error) {
	return mpeg.BuildGOP(pattern, mpeg.Cycles(cycles))
}

// MPEG1Fig9 returns the paper's MPEG-1 benchmark graph (15 frames, Tennis
// sequence timings) and its real-time deadline in seconds.
func MPEG1Fig9() (*Graph, float64) { return mpeg.Fig9(), mpeg.RealTimeDeadline }

// Kahn Process Networks (see internal/kpn).
type (
	// KPN is a Kahn Process Network convertible to a task DAG.
	KPN = kpn.Network
	// KPNProcess is one process of a network.
	KPNProcess = kpn.Process
	// KPNChannel is a FIFO connection between processes.
	KPNChannel = kpn.Channel
)

// NewKPN returns an empty Kahn Process Network.
func NewKPN() *KPN { return kpn.New() }

// Execution simulation (see internal/sim).
type (
	// SimOptions configures a simulated execution of a schedule.
	SimOptions = sim.Options
	// SimTrace is the timeline and energy of a simulated execution.
	SimTrace = sim.Trace
	// SimSegment is one homogeneous interval of a processor's timeline.
	SimSegment = sim.Segment
)

// Simulate executes a static schedule on a simulated DVS+PS multiprocessor,
// optionally with early task completions (Speedup) and greedy online slack
// reclamation (Reclaim). At worst-case execution times the integrated energy
// matches EvaluateEnergy.
func Simulate(s *Schedule, m *PowerModel, opts SimOptions) (*SimTrace, error) {
	return sim.Run(s, m, opts)
}

// PerTaskResult is the outcome of the per-task DVS extension.
type PerTaskResult = core.PerTaskResult

// SlackReclaimDVS is an extension beyond the paper: per-task DVS in the
// spirit of Zhu et al.'s slack reclamation, bounded by LIMIT-MF. The paper
// predicts — and the ext-pertask experiment confirms — that it helps mainly
// for fine-grain graphs with strict deadlines.
func SlackReclaimDVS(g *Graph, cfg Config, ps bool) (*PerTaskResult, error) {
	return core.SlackReclaimDVS(g, cfg, ps)
}

// SlackReclaimDVSCtx is SlackReclaimDVS with cooperative cancellation.
func SlackReclaimDVSCtx(ctx context.Context, g *Graph, cfg Config, ps bool) (*PerTaskResult, error) {
	return core.SlackReclaimDVSCtx(ctx, g, cfg, ps)
}

// Periodic real-time task sets (see internal/frames).
type (
	// PeriodicTask is one periodic real-time task (WCET, period, deadline in
	// cycles at f_max).
	PeriodicTask = frames.Task
	// PeriodicSet is a set of periodic tasks, convertible to a frame DAG.
	PeriodicSet = frames.Set
	// PeriodicPlan is a feasible leakage-aware configuration for one
	// hyperperiod of a periodic set.
	PeriodicPlan = frames.Plan
)

// NewPeriodicSet returns an empty periodic task set. Build it with Add,
// then call Schedule for a LAMPS-style energy-minimal configuration, or
// FrameDAG for the raw frame translation (Section 3.1 of the paper, after
// Liberato et al.).
func NewPeriodicSet() *PeriodicSet { return frames.NewSet() }

// IslandsResult is the outcome of the voltage-island extension.
type IslandsResult = core.IslandsResult

// VoltageIslands is an extension beyond the paper: each processor keeps its
// own constant voltage/frequency (a voltage-island machine), searched by
// greedy descent from the LAMPS+PS solution. It probes the paper's
// future-work question of per-processor frequencies.
func VoltageIslands(g *Graph, cfg Config, ps bool) (*IslandsResult, error) {
	return core.VoltageIslands(g, cfg, ps)
}

// VoltageIslandsCtx is VoltageIslands with cooperative cancellation.
func VoltageIslandsCtx(ctx context.Context, g *Graph, cfg Config, ps bool) (*IslandsResult, error) {
	return core.VoltageIslandsCtx(ctx, g, cfg, ps)
}
