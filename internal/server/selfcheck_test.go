package server_test

import (
	"context"
	"net/http"
	"testing"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/server"
	"lamps/internal/verify"
)

// TestSelfCheckHappyPath: with Options.SelfCheck on, every approach still
// serves 200 with the self-verified result, and the verify-failure counter
// stays at zero.
func TestSelfCheckHappyPath(t *testing.T) {
	ts := newTestServer(t, server.Options{SelfCheck: true})
	for _, approach := range []string{"ss", "lamps", "ss+ps", "lamps+ps"} {
		status, body, _ := post(t, ts, scheduleReq(approach, diamondGraph(), 2))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", approach, status, body)
		}
		r := decodeResp(t, body)
		if r.Energy.TotalJ <= 0 {
			t.Fatalf("%s: no energy in self-checked result", approach)
		}
	}
	if v := metricValue(t, ts, "lampsd_verify_failures_total"); v != 0 {
		t.Fatalf("verify failures on valid runs: %g", v)
	}
}

// TestSelfCheckFailureCountsAndFails: a run whose result the verifier
// rejects — injected through a Runner stub, since the real engine does not
// produce invalid results — must fail the request with 500 and increment
// lampsd_verify_failures_total.
func TestSelfCheckFailureCountsAndFails(t *testing.T) {
	violation := &verify.Violation{Check: verify.CheckEnergy, Detail: "injected for the metrics test"}
	ts := newTestServer(t, server.Options{
		SelfCheck: true,
		Runner: func(ctx context.Context, approach string, g *dag.Graph, cfg core.Config) (*core.Result, error) {
			if !cfg.SelfCheck {
				t.Error("Options.SelfCheck not propagated into core.Config")
			}
			return nil, violation
		},
	})
	status, body, _ := post(t, ts, scheduleReq("lamps", diamondGraph(), 2))
	if status != http.StatusInternalServerError {
		t.Fatalf("violated run: status %d: %s", status, body)
	}
	if v := metricValue(t, ts, "lampsd_verify_failures_total"); v != 1 {
		t.Fatalf("lampsd_verify_failures_total = %g, want 1", v)
	}
	// A second identical request must not be served from the cache: error
	// responses are never cached, and each failure counts again.
	status, _, _ = post(t, ts, scheduleReq("lamps", diamondGraph(), 2))
	if status != http.StatusInternalServerError {
		t.Fatalf("repeat violated run: status %d", status)
	}
	if v := metricValue(t, ts, "lampsd_verify_failures_total"); v != 2 {
		t.Fatalf("lampsd_verify_failures_total = %g after repeat, want 2", v)
	}
}
