package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"

	"lamps/internal/core"
)

// latencyBuckets are the histogram bucket upper bounds for durations, in
// seconds. Scheduling runs span sub-millisecond tiny graphs to multi-second
// 5000-task searches, so the buckets cover five decades.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// effortBuckets are the bucket upper bounds for per-run search-effort
// counts (schedules built, levels evaluated per scheduling run).
var effortBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2500, 5000,
}

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // len(buckets)+1; last bucket = +Inf
	sum     float64
	count   uint64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]uint64, len(buckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// quantile returns an upper bound on the q-quantile of the observed values:
// the upper bound of the bucket where the cumulative count crosses
// ceil(q·count). Observations in the overflow (+Inf) bucket clamp to the
// largest finite bound. Returns 0 with no observations.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i]
		if cum >= target {
			return ub
		}
	}
	return h.buckets[len(h.buckets)-1]
}

// clone copies the histogram so callers can render it outside the owner's
// lock.
func (h *histogram) clone() histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return c
}

// write renders the histogram in Prometheus text exposition form. labels is
// the rendered label set including braces-internal text (e.g. `approach="x",`)
// or empty.
func (h *histogram) write(w io.Writer, name, labels string) {
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels, ub, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, h.count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels[:len(labels)-1], h.sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels[:len(labels)-1], h.count)
	}
}

// metrics aggregates the server's observability counters. All methods are
// safe for concurrent use.
type metrics struct {
	mu sync.Mutex

	requests map[requestKey]uint64

	coalesced uint64 // requests served by another request's in-flight run

	panics uint64 // recovered panics in request/cell execution paths

	sweepCellsOK  uint64 // sweep cells that produced a result
	sweepCellsErr uint64 // sweep cells that produced an error

	batchLinesOK  uint64     // batch lines that produced a result
	batchLinesErr uint64     // batch lines that produced an error (invalid lines included)
	batchItems    *histogram // request lines per /v1/batch call

	runsCancelled uint64 // runs aborted because every waiter departed

	verifyFailures uint64 // runs rejected by the self-check verifier

	latency map[string]*histogram // approach -> scheduling latency (cache misses only)

	queueShed *histogram // time spent queueing by requests shed with 503

	schedulesBuilt  *histogram // per-run list-scheduling invocations
	levelsEvaluated *histogram // per-run (schedule, level) evaluations

	effort core.Stats // aggregated search effort across all completed runs
}

// requestKey labels one requests-total counter series.
type requestKey struct {
	path string
	code int
}

func newMetrics() *metrics {
	return &metrics{
		requests:        make(map[requestKey]uint64),
		latency:         make(map[string]*histogram),
		queueShed:       newHistogram(latencyBuckets),
		schedulesBuilt:  newHistogram(effortBuckets),
		levelsEvaluated: newHistogram(effortBuckets),
		batchItems:      newHistogram(effortBuckets),
	}
}

func (m *metrics) recordRequest(path string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{path, status}]++
}

func (m *metrics) recordCoalesced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coalesced++
}

// recordPanic counts one recovered panic. Each actual panic is counted
// exactly once, by the goroutine that recovered it — coalesced waiters that
// merely observe the failure do not count again.
func (m *metrics) recordPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// recordSweepCell counts one evaluated sweep cell by outcome.
func (m *metrics) recordSweepCell(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.sweepCellsOK++
	} else {
		m.sweepCellsErr++
	}
}

// recordBatchLine counts one /v1/batch line by outcome. Invalid lines that
// never executed count as errors: the client sees an error line either way.
func (m *metrics) recordBatchLine(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.batchLinesOK++
	} else {
		m.batchLinesErr++
	}
}

// recordBatch records one whole /v1/batch call with its request-line count,
// the batch-size distribution capacity planning needs.
func (m *metrics) recordBatch(items int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchItems.observe(float64(items))
}

// recordRun records one completed scheduling run (a cache miss that executed
// the heuristic): its latency and its search effort.
func (m *metrics) recordRun(approach string, sec float64, stats core.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[approach]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.latency[approach] = h
	}
	h.observe(sec)
	m.effort.Add(stats)
}

// recordRunCancelled counts one run aborted by waiter departure (its
// partial effort is still reported through recordStages).
func (m *metrics) recordRunCancelled() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runsCancelled++
}

// recordVerifyFailure counts one scheduling run whose result the
// independent self-check verifier rejected (Options.SelfCheck). Any
// non-zero value is an alarm: the serving binary produced a schedule or an
// energy figure its own first-principles checker contradicts.
func (m *metrics) recordVerifyFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verifyFailures++
}

// recordQueueShed records one request shed while queueing for a worker slot
// (a 503), with the time it spent waiting — the data Retry-After tuning
// needs.
func (m *metrics) recordQueueShed(waitSec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueShed.observe(waitSec)
}

// recordStages records one run's per-stage search effort, fed live by the
// Observer→metrics adapter; unlike recordRun it fires for cancelled runs
// too, with whatever work they managed.
func (m *metrics) recordStages(schedules, levels int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schedulesBuilt.observe(float64(schedules))
	m.levelsEvaluated.observe(float64(levels))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled: the repo is standard-library only).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	m := s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP lampsd_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE lampsd_requests_total counter\n")
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "lampsd_requests_total{path=%q,code=\"%d\"} %d\n", k.path, k.code, m.requests[k])
	}

	hits, misses, evictions := s.cache.Stats()
	fmt.Fprintf(w, "# HELP lampsd_cache_hits_total Schedule results served from the LRU cache.\n")
	fmt.Fprintf(w, "# TYPE lampsd_cache_hits_total counter\n")
	fmt.Fprintf(w, "lampsd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE lampsd_cache_misses_total counter\n")
	fmt.Fprintf(w, "lampsd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# TYPE lampsd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "lampsd_cache_evictions_total %d\n", evictions)
	fmt.Fprintf(w, "# TYPE lampsd_cache_entries gauge\n")
	fmt.Fprintf(w, "lampsd_cache_entries %d\n", s.cache.Len())
	fmt.Fprintf(w, "# HELP lampsd_cache_enabled 1 when the LRU result cache is active, 0 when disabled (capacity 0): a disabled cache reports no hit/miss traffic at all.\n")
	fmt.Fprintf(w, "# TYPE lampsd_cache_enabled gauge\n")
	fmt.Fprintf(w, "lampsd_cache_enabled %d\n", boolToInt(s.cache.Enabled()))

	if s.store != nil {
		st := s.store.Stats()
		fmt.Fprintf(w, "# HELP lampsd_store_loaded_total Records recovered from the persistent result store on startup.\n")
		fmt.Fprintf(w, "# TYPE lampsd_store_loaded_total counter\n")
		fmt.Fprintf(w, "lampsd_store_loaded_total %d\n", st.Loaded)
		fmt.Fprintf(w, "# HELP lampsd_store_appended_total Records appended to the persistent result store by this process.\n")
		fmt.Fprintf(w, "# TYPE lampsd_store_appended_total counter\n")
		fmt.Fprintf(w, "lampsd_store_appended_total %d\n", st.Appended)
		fmt.Fprintf(w, "# HELP lampsd_store_dropped_tails_total Segments whose truncated or corrupt tail was detected and dropped on startup.\n")
		fmt.Fprintf(w, "# TYPE lampsd_store_dropped_tails_total counter\n")
		fmt.Fprintf(w, "lampsd_store_dropped_tails_total %d\n", st.DroppedTails)
		fmt.Fprintf(w, "# HELP lampsd_store_stale_segments_total Segments skipped wholesale because their version stamp no longer matches.\n")
		fmt.Fprintf(w, "# TYPE lampsd_store_stale_segments_total counter\n")
		fmt.Fprintf(w, "lampsd_store_stale_segments_total %d\n", st.Stale)
	}

	fmt.Fprintf(w, "# HELP lampsd_admission_admitted_total Requests that reached a worker slot, by cost class.\n")
	fmt.Fprintf(w, "# TYPE lampsd_admission_admitted_total counter\n")
	for _, q := range s.admission.all() {
		_, admitted, _, _, _ := q.snapshot()
		fmt.Fprintf(w, "lampsd_admission_admitted_total{class=%q} %d\n", q.name, admitted)
	}
	fmt.Fprintf(w, "# HELP lampsd_admission_shed_total Requests shed by admission control, by cost class and reason (queue-full = 429 before queueing, timeout = 503 after queueing).\n")
	fmt.Fprintf(w, "# TYPE lampsd_admission_shed_total counter\n")
	for _, q := range s.admission.all() {
		_, _, full, timeout, _ := q.snapshot()
		fmt.Fprintf(w, "lampsd_admission_shed_total{class=%q,reason=\"queue-full\"} %d\n", q.name, full)
		fmt.Fprintf(w, "lampsd_admission_shed_total{class=%q,reason=\"timeout\"} %d\n", q.name, timeout)
	}
	fmt.Fprintf(w, "# HELP lampsd_admission_waiting Requests currently queued for a worker slot, by cost class.\n")
	fmt.Fprintf(w, "# TYPE lampsd_admission_waiting gauge\n")
	for _, q := range s.admission.all() {
		_, _, _, _, depth := q.snapshot()
		fmt.Fprintf(w, "lampsd_admission_waiting{class=%q} %d\n", q.name, depth)
	}
	fmt.Fprintf(w, "# HELP lampsd_queue_wait_seconds Observed queue waits by cost class (admitted and shed requests alike) — the distribution Retry-After hints derive from.\n")
	fmt.Fprintf(w, "# TYPE lampsd_queue_wait_seconds histogram\n")
	for _, q := range s.admission.all() {
		waits, _, _, _, _ := q.snapshot()
		waits.write(w, "lampsd_queue_wait_seconds", fmt.Sprintf("class=%q,", q.name))
	}
	fmt.Fprintf(w, "# HELP lampsd_retry_after_hint_seconds The Retry-After a request shed right now would receive, by cost class.\n")
	fmt.Fprintf(w, "# TYPE lampsd_retry_after_hint_seconds gauge\n")
	for _, q := range s.admission.all() {
		fmt.Fprintf(w, "lampsd_retry_after_hint_seconds{class=%q} %d\n", q.name, q.retryAfterSeconds())
	}

	fmt.Fprintf(w, "# HELP lampsd_coalesced_total Requests coalesced onto another request's in-flight scheduling run.\n")
	fmt.Fprintf(w, "# TYPE lampsd_coalesced_total counter\n")
	fmt.Fprintf(w, "lampsd_coalesced_total %d\n", m.coalesced)

	fmt.Fprintf(w, "# HELP lampsd_panics_total Panics recovered in request and sweep-cell execution paths.\n")
	fmt.Fprintf(w, "# TYPE lampsd_panics_total counter\n")
	fmt.Fprintf(w, "lampsd_panics_total %d\n", m.panics)

	fmt.Fprintf(w, "# HELP lampsd_runs_cancelled_total Scheduling runs cancelled because every waiter departed (timeout or disconnect).\n")
	fmt.Fprintf(w, "# TYPE lampsd_runs_cancelled_total counter\n")
	fmt.Fprintf(w, "lampsd_runs_cancelled_total %d\n", m.runsCancelled)

	fmt.Fprintf(w, "# HELP lampsd_verify_failures_total Scheduling runs rejected by the independent self-check verifier (-selfcheck); any non-zero value is an alarm.\n")
	fmt.Fprintf(w, "# TYPE lampsd_verify_failures_total counter\n")
	fmt.Fprintf(w, "lampsd_verify_failures_total %d\n", m.verifyFailures)

	fmt.Fprintf(w, "# HELP lampsd_queue_shed_seconds Time requests shed with 503 spent queueing for a worker slot.\n")
	fmt.Fprintf(w, "# TYPE lampsd_queue_shed_seconds histogram\n")
	m.queueShed.write(w, "lampsd_queue_shed_seconds", "")

	fmt.Fprintf(w, "# HELP lampsd_sweep_cells_total Sweep grid cells evaluated, by outcome.\n")
	fmt.Fprintf(w, "# TYPE lampsd_sweep_cells_total counter\n")
	fmt.Fprintf(w, "lampsd_sweep_cells_total{outcome=\"ok\"} %d\n", m.sweepCellsOK)
	fmt.Fprintf(w, "lampsd_sweep_cells_total{outcome=\"error\"} %d\n", m.sweepCellsErr)

	fmt.Fprintf(w, "# HELP lampsd_batch_lines_total Batch request lines served, by outcome.\n")
	fmt.Fprintf(w, "# TYPE lampsd_batch_lines_total counter\n")
	fmt.Fprintf(w, "lampsd_batch_lines_total{outcome=\"ok\"} %d\n", m.batchLinesOK)
	fmt.Fprintf(w, "lampsd_batch_lines_total{outcome=\"error\"} %d\n", m.batchLinesErr)

	fmt.Fprintf(w, "# HELP lampsd_batch_items Request lines per /v1/batch call.\n")
	fmt.Fprintf(w, "# TYPE lampsd_batch_items histogram\n")
	m.batchItems.write(w, "lampsd_batch_items", "")

	fmt.Fprintf(w, "# HELP lampsd_schedules_built_total List-scheduling invocations across all completed runs (core.Stats).\n")
	fmt.Fprintf(w, "# TYPE lampsd_schedules_built_total counter\n")
	fmt.Fprintf(w, "lampsd_schedules_built_total %d\n", m.effort.SchedulesBuilt)
	fmt.Fprintf(w, "# HELP lampsd_levels_evaluated_total Energy evaluations of (schedule, level) pairs across all completed runs (core.Stats).\n")
	fmt.Fprintf(w, "# TYPE lampsd_levels_evaluated_total counter\n")
	fmt.Fprintf(w, "lampsd_levels_evaluated_total %d\n", m.effort.LevelsEvaluated)
	fmt.Fprintf(w, "# HELP lampsd_levels_skipped_total Sweep levels pruned by unimodal pruning across all completed runs (core.Stats).\n")
	fmt.Fprintf(w, "# TYPE lampsd_levels_skipped_total counter\n")
	fmt.Fprintf(w, "lampsd_levels_skipped_total %d\n", m.effort.LevelsSkipped)

	fmt.Fprintf(w, "# HELP lampsd_schedules_built Per-run list-scheduling invocations, cancelled runs included (Observer feed).\n")
	fmt.Fprintf(w, "# TYPE lampsd_schedules_built histogram\n")
	m.schedulesBuilt.write(w, "lampsd_schedules_built", "")
	fmt.Fprintf(w, "# HELP lampsd_levels_evaluated Per-run (schedule, level) energy evaluations, cancelled runs included (Observer feed).\n")
	fmt.Fprintf(w, "# TYPE lampsd_levels_evaluated histogram\n")
	m.levelsEvaluated.write(w, "lampsd_levels_evaluated", "")

	fmt.Fprintf(w, "# TYPE lampsd_workers gauge\n")
	fmt.Fprintf(w, "lampsd_workers %d\n", s.pool.Cap())
	fmt.Fprintf(w, "# TYPE lampsd_inflight gauge\n")
	fmt.Fprintf(w, "lampsd_inflight %d\n", s.pool.InFlight())

	fmt.Fprintf(w, "# HELP lampsd_schedule_seconds Scheduling latency of cache misses, by approach.\n")
	fmt.Fprintf(w, "# TYPE lampsd_schedule_seconds histogram\n")
	approaches := make([]string, 0, len(m.latency))
	for a := range m.latency {
		approaches = append(approaches, a)
	}
	sort.Strings(approaches)
	for _, a := range approaches {
		m.latency[a].write(w, "lampsd_schedule_seconds", fmt.Sprintf("approach=%q,", a))
	}
}
