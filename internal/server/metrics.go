package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"

	"lamps/internal/core"
)

// latencyBuckets are the cumulative histogram bucket upper bounds, in
// seconds. Scheduling runs span sub-millisecond tiny graphs to multi-second
// 5000-task searches, so the buckets cover five decades.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket cumulative latency histogram.
type histogram struct {
	counts []uint64 // len(latencyBuckets)+1; last bucket = +Inf
	sum    float64
	count  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(sec float64) {
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.counts[i]++
	h.sum += sec
	h.count++
}

// metrics aggregates the server's observability counters. All methods are
// safe for concurrent use.
type metrics struct {
	mu sync.Mutex

	requests map[requestKey]uint64

	coalesced uint64 // requests served by another request's in-flight run

	panics uint64 // recovered panics in request/cell execution paths

	sweepCellsOK  uint64 // sweep cells that produced a result
	sweepCellsErr uint64 // sweep cells that produced an error

	latency map[string]*histogram // approach -> scheduling latency (cache misses only)

	effort core.Stats // aggregated search effort across all runs
}

// requestKey labels one requests-total counter series.
type requestKey struct {
	path string
	code int
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[requestKey]uint64),
		latency:  make(map[string]*histogram),
	}
}

func (m *metrics) recordRequest(path string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{path, status}]++
}

func (m *metrics) recordCoalesced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coalesced++
}

// recordPanic counts one recovered panic. Each actual panic is counted
// exactly once, by the goroutine that recovered it — coalesced waiters that
// merely observe the failure do not count again.
func (m *metrics) recordPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// recordSweepCell counts one evaluated sweep cell by outcome.
func (m *metrics) recordSweepCell(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.sweepCellsOK++
	} else {
		m.sweepCellsErr++
	}
}

// recordRun records one actual scheduling run (a cache miss that executed
// the heuristic): its latency and its search effort.
func (m *metrics) recordRun(approach string, sec float64, stats core.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[approach]
	if h == nil {
		h = newHistogram()
		m.latency[approach] = h
	}
	h.observe(sec)
	m.effort.Add(stats)
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled: the repo is standard-library only).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	m := s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP lampsd_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE lampsd_requests_total counter\n")
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "lampsd_requests_total{path=%q,code=\"%d\"} %d\n", k.path, k.code, m.requests[k])
	}

	hits, misses, evictions := s.cache.Stats()
	fmt.Fprintf(w, "# HELP lampsd_cache_hits_total Schedule results served from the LRU cache.\n")
	fmt.Fprintf(w, "# TYPE lampsd_cache_hits_total counter\n")
	fmt.Fprintf(w, "lampsd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE lampsd_cache_misses_total counter\n")
	fmt.Fprintf(w, "lampsd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# TYPE lampsd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "lampsd_cache_evictions_total %d\n", evictions)
	fmt.Fprintf(w, "# TYPE lampsd_cache_entries gauge\n")
	fmt.Fprintf(w, "lampsd_cache_entries %d\n", s.cache.Len())

	fmt.Fprintf(w, "# HELP lampsd_coalesced_total Requests coalesced onto another request's in-flight scheduling run.\n")
	fmt.Fprintf(w, "# TYPE lampsd_coalesced_total counter\n")
	fmt.Fprintf(w, "lampsd_coalesced_total %d\n", m.coalesced)

	fmt.Fprintf(w, "# HELP lampsd_panics_total Panics recovered in request and sweep-cell execution paths.\n")
	fmt.Fprintf(w, "# TYPE lampsd_panics_total counter\n")
	fmt.Fprintf(w, "lampsd_panics_total %d\n", m.panics)

	fmt.Fprintf(w, "# HELP lampsd_sweep_cells_total Sweep grid cells evaluated, by outcome.\n")
	fmt.Fprintf(w, "# TYPE lampsd_sweep_cells_total counter\n")
	fmt.Fprintf(w, "lampsd_sweep_cells_total{outcome=\"ok\"} %d\n", m.sweepCellsOK)
	fmt.Fprintf(w, "lampsd_sweep_cells_total{outcome=\"error\"} %d\n", m.sweepCellsErr)

	fmt.Fprintf(w, "# HELP lampsd_schedules_built_total List-scheduling invocations across all runs (core.Stats).\n")
	fmt.Fprintf(w, "# TYPE lampsd_schedules_built_total counter\n")
	fmt.Fprintf(w, "lampsd_schedules_built_total %d\n", m.effort.SchedulesBuilt)
	fmt.Fprintf(w, "# HELP lampsd_levels_evaluated_total Energy evaluations of (schedule, level) pairs across all runs (core.Stats).\n")
	fmt.Fprintf(w, "# TYPE lampsd_levels_evaluated_total counter\n")
	fmt.Fprintf(w, "lampsd_levels_evaluated_total %d\n", m.effort.LevelsEvaluated)

	fmt.Fprintf(w, "# TYPE lampsd_workers gauge\n")
	fmt.Fprintf(w, "lampsd_workers %d\n", s.pool.Cap())
	fmt.Fprintf(w, "# TYPE lampsd_inflight gauge\n")
	fmt.Fprintf(w, "lampsd_inflight %d\n", s.pool.InFlight())

	fmt.Fprintf(w, "# HELP lampsd_schedule_seconds Scheduling latency of cache misses, by approach.\n")
	fmt.Fprintf(w, "# TYPE lampsd_schedule_seconds histogram\n")
	approaches := make([]string, 0, len(m.latency))
	for a := range m.latency {
		approaches = append(approaches, a)
	}
	sort.Strings(approaches)
	for _, a := range approaches {
		h := m.latency[a]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "lampsd_schedule_seconds_bucket{approach=%q,le=\"%g\"} %d\n", a, ub, cum)
		}
		fmt.Fprintf(w, "lampsd_schedule_seconds_bucket{approach=%q,le=\"+Inf\"} %d\n", a, h.count)
		fmt.Fprintf(w, "lampsd_schedule_seconds_sum{approach=%q} %g\n", a, h.sum)
		fmt.Fprintf(w, "lampsd_schedule_seconds_count{approach=%q} %d\n", a, h.count)
	}
}
