package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"lamps/internal/server"
)

// faultsReq returns a schedule request carrying a faults block.
func faultsReq(approach string, graph map[string]any, factor float64, k int, policy string) map[string]any {
	req := scheduleReq(approach, graph, factor)
	fb := map[string]any{"k": k}
	if policy != "" {
		fb["policy"] = policy
	}
	req["faults"] = fb
	return req
}

// faultsRespBlock mirrors the response's faults summary for assertions.
type faultsRespBlock struct {
	K                   int     `json:"k"`
	Policy              string  `json:"policy"`
	RecoveryMakespanSec float64 `json:"recovery_makespan_sec"`
	BackupSlots         int     `json:"backup_slots"`
	ReservedCycles      int64   `json:"reserved_cycles"`
}

// TestFaultsScheduleDigestsAndSummary drives the faults block through
// /schedule: K=0 must be byte-identical to no block at all, K≥1 must key
// differently (per K), and the response must carry the recovery summary.
func TestFaultsScheduleDigestsAndSummary(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	g := diamondGraph()

	status, plainBody, src := post(t, ts, scheduleReq("lamps+ps", g, 3))
	if status != http.StatusOK || src != "miss" {
		t.Fatalf("plain request: status %d, cache %q", status, src)
	}
	if bytes.Contains(plainBody, []byte(`"faults"`)) {
		t.Fatalf("plain response carries a faults block: %s", plainBody)
	}

	// K=0 is the explicit no-op spelling: same digest, same bytes.
	status, k0Body, _ := post(t, ts, faultsReq("lamps+ps", g, 3, 0, ""))
	if status != http.StatusOK {
		t.Fatalf("K=0 request: status %d, body %s", status, k0Body)
	}
	if !bytes.Equal(k0Body, plainBody) {
		t.Errorf("K=0 response differs from the plain one:\n%s\nvs\n%s", k0Body, plainBody)
	}

	status, k1Body, src := post(t, ts, faultsReq("lamps+ps", g, 3, 1, ""))
	if status != http.StatusOK || src != "miss" {
		t.Fatalf("K=1 request: status %d, cache %q, body %s", status, src, k1Body)
	}
	status, k2Body, _ := post(t, ts, faultsReq("lamps+ps", g, 3, 2, ""))
	if status != http.StatusOK {
		t.Fatalf("K=2 request: status %d", status)
	}

	plain, k1, k2 := decodeResp(t, plainBody), decodeResp(t, k1Body), decodeResp(t, k2Body)
	if k1.Key == plain.Key || k2.Key == plain.Key || k1.Key == k2.Key {
		t.Errorf("digests not distinct: plain %s, k1 %s, k2 %s", plain.Key, k1.Key, k2.Key)
	}

	var ftResp struct {
		Faults      *faultsRespBlock `json:"faults"`
		Deadline    float64          `json:"deadline_sec"`
		MakespanSec float64          `json:"makespan_sec"`
		Tasks       []struct {
			Task int `json:"task"`
		} `json:"placement"`
	}
	if err := json.Unmarshal(k1Body, &ftResp); err != nil {
		t.Fatal(err)
	}
	fb := ftResp.Faults
	if fb == nil {
		t.Fatalf("K=1 response has no faults summary: %s", k1Body)
	}
	if fb.K != 1 || fb.Policy != "backup-anywhere" {
		t.Errorf("faults summary %+v, want k=1 policy backup-anywhere", fb)
	}
	if fb.BackupSlots != len(ftResp.Tasks) {
		t.Errorf("backup_slots = %d, want one per task (%d)", fb.BackupSlots, len(ftResp.Tasks))
	}
	if fb.ReservedCycles <= 0 {
		t.Errorf("reserved_cycles = %d, want > 0", fb.ReservedCycles)
	}
	if fb.RecoveryMakespanSec < ftResp.MakespanSec || fb.RecoveryMakespanSec > ftResp.Deadline {
		t.Errorf("recovery makespan %.6g outside [makespan %.6g, deadline %.6g]",
			fb.RecoveryMakespanSec, ftResp.MakespanSec, ftResp.Deadline)
	}
}

// TestFaultsSchedulePlatformPolicy drives the primary-HP/backup-LP policy
// on a heterogeneous request and pins that the two policies key and render
// differently.
func TestFaultsSchedulePlatformPolicy(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	mk := func(policy string) map[string]any {
		req := faultsReq("lamps+ps", diamondGraph(), 3, 1, policy)
		req["platform"] = requestPlatformJSON(t)
		return req
	}
	status, anyBody, _ := post(t, ts, mk(""))
	if status != http.StatusOK {
		t.Fatalf("backup-anywhere: status %d, body %s", status, anyBody)
	}
	status, lpBody, _ := post(t, ts, mk("primary-hp-backup-lp"))
	if status != http.StatusOK {
		t.Fatalf("primary-hp-backup-lp: status %d, body %s", status, lpBody)
	}
	if decodeResp(t, anyBody).Key == decodeResp(t, lpBody).Key {
		t.Error("both policies share one digest")
	}
	var r struct {
		Faults *faultsRespBlock `json:"faults"`
	}
	if err := json.Unmarshal(lpBody, &r); err != nil {
		t.Fatal(err)
	}
	if r.Faults == nil || r.Faults.Policy != "primary-hp-backup-lp" {
		t.Errorf("faults summary %+v, want the hp-lp policy echoed", r.Faults)
	}
}

// TestFaultsRequestValidation pins the 400/422 surface of the faults block.
func TestFaultsRequestValidation(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	for name, req := range map[string]map[string]any{
		"negative k":     faultsReq("lamps", diamondGraph(), 3, -1, ""),
		"unknown policy": faultsReq("lamps", diamondGraph(), 3, 1, "teleport"),
	} {
		if status, body, _ := post(t, ts, req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", name, status, body)
		}
	}
	// A deadline the primary schedule only just meets leaves no recovery
	// slack: feasible without faults, 422 with them.
	if status, body, _ := post(t, ts, scheduleReq("ss", diamondGraph(), 1)); status != http.StatusOK {
		t.Fatalf("factor-1 plain request: status %d, body %s", status, body)
	}
	if status, body, _ := post(t, ts, faultsReq("ss", diamondGraph(), 1, 1, "")); status != http.StatusUnprocessableEntity {
		t.Errorf("factor-1 FT request: status %d, want 422; body %s", status, body)
	}
}

// TestFaultsConcurrentRequests hammers one fault-tolerant problem from many
// goroutines: every response must be byte-identical whether computed,
// coalesced into the in-flight run, or served from cache. Run with -race
// this doubles as the data-race gate on the new render path.
func TestFaultsConcurrentRequests(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	req := faultsReq("lamps+ps", diamondGraph(), 3, 1, "")

	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(req); err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/schedule", "application/json", &buf)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if _, _, src := post(t, ts, req); src != "hit" {
		t.Errorf("follow-up request served from %q, want hit", src)
	}
}

// TestFaultsPersistenceAcrossServers is the warm-restart leg: fault-tolerant
// results and their plain siblings survive a store round trip under their
// distinct digests and replay byte-identically.
func TestFaultsPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	plain := scheduleReq("lamps+ps", diamondGraph(), 3)
	ft := faultsReq("lamps+ps", diamondGraph(), 3, 1, "")

	st1 := openStore(t, dir)
	ts1 := newTestServer(t, server.Options{Store: st1})
	_, plainBody, _ := post(t, ts1, plain)
	status, ftBody, src := post(t, ts1, ft)
	if status != http.StatusOK || src != "miss" {
		t.Fatalf("FT request: status %d, cache %q", status, src)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	ts2 := newTestServer(t, server.Options{Store: st2})
	status, gotFT, src := post(t, ts2, ft)
	if status != http.StatusOK || src != "hit" {
		t.Fatalf("FT request after restart: status %d, cache %q", status, src)
	}
	if !bytes.Equal(gotFT, ftBody) {
		t.Errorf("restarted FT bytes differ:\n%s\nvs\n%s", gotFT, ftBody)
	}
	status, gotPlain, src := post(t, ts2, plain)
	if status != http.StatusOK || src != "hit" {
		t.Fatalf("plain request after restart: status %d, cache %q", status, src)
	}
	if !bytes.Equal(gotPlain, plainBody) {
		t.Errorf("restarted plain bytes differ")
	}
	if decodeResp(t, gotFT).Key == decodeResp(t, gotPlain).Key {
		t.Error("FT and plain results share one store key")
	}
}

// TestFaultsSweepBatchAgreeWithSchedule: a faults block on /v1/sweep and
// /v1/batch must produce, cell for cell and line for line, exactly the bytes
// /v1/schedule returns for the same fault-tolerant problem.
func TestFaultsSweepBatchAgreeWithSchedule(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	g := diamondGraph()

	sweep := sweepReq(g, []string{"ss", "lamps+ps"}, []float64{3, 4}, nil)
	sweep["faults"] = map[string]any{"k": 1}
	status, lines, raw := postSweep(t, ts, sweep)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d, body %s", status, raw)
	}
	if sum := lines[len(lines)-1].Summary; sum == nil || sum.OK != 4 {
		t.Fatalf("sweep summary %+v, want 4 clean cells", lines[len(lines)-1].Summary)
	}
	for _, line := range lines[:len(lines)-1] {
		if line.Status != http.StatusOK {
			t.Fatalf("cell %d: status %d (%s)", line.Cell.Index, line.Status, line.Error)
		}
		_, body, _ := post(t, ts, faultsReq(line.Cell.Approach, g, line.Cell.DeadlineFactor, 1, ""))
		if want := bytes.TrimSuffix(body, []byte("\n")); !bytes.Equal(line.Result, want) {
			t.Errorf("cell %d diverges from /v1/schedule:\n%s\nvs\n%s", line.Cell.Index, line.Result, want)
		}
		if !bytes.Contains(line.Result, []byte(`"faults"`)) {
			t.Errorf("cell %d result has no faults summary", line.Cell.Index)
		}
	}

	batchReqs := []any{
		faultsReq("lamps+ps", g, 3, 1, ""),
		scheduleReq("lamps+ps", g, 3),
	}
	status, blines, braw := postBatch(t, ts, ndjsonBody(t, batchReqs...))
	if status != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", status, braw)
	}
	byIndex, _ := splitBatch(t, blines, 2)
	for i, req := range batchReqs {
		line := byIndex[i]
		if line.Status != http.StatusOK {
			t.Fatalf("batch line %d: status %d (%s)", i, line.Status, line.Error)
		}
		_, body, _ := post(t, ts, req)
		if want := bytes.TrimSuffix(body, []byte("\n")); !bytes.Equal(line.Result, want) {
			t.Errorf("batch line %d diverges from /v1/schedule:\n%s\nvs\n%s", i, line.Result, want)
		}
	}
	if bytes.Equal(byIndex[0].Result, byIndex[1].Result) {
		t.Error("FT and plain batch lines returned identical bytes")
	}
}
