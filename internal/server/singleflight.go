package server

import (
	"context"
	"errors"
	"sync"
)

// errFlightPanic is recorded as the result of a flight whose fn panicked:
// the panic itself propagates to the initiating caller, while every
// coalesced waiter receives this error instead of blocking forever.
var errFlightPanic = errors.New("server: coalesced scheduling run panicked")

// flightGroup coalesces concurrent work with the same key: the first caller
// runs fn, every caller that arrives while it is in flight waits and shares
// the result. Combined with the byte cache it guarantees that a burst of
// identical requests costs one scheduling run, not N — and, because the
// shared value is an immutable byte slice, every waiter receives exactly
// the same bytes. (A trimmed-down, stdlib-only take on
// golang.org/x/sync/singleflight.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	status int
	val    []byte
	err    error
}

// Do returns the result of running fn for key, executing fn only if no
// call for key is already in flight; shared reports whether the result came
// from another caller's run.
//
// Waiters give up when ctx is done and return ctx.Err(); the in-flight run
// is unaffected. If fn panics, the panic propagates to the initiating
// caller after the call has been removed from the group and every waiter
// has been failed with errFlightPanic — a panicking run can never wedge
// later requests for the same key.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (int, []byte, error)) (status int, val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.status, c.val, c.err, true
		case <-ctx.Done():
			return 0, nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Cleanup must run even when fn panics: leaving the dead call in the
	// map with done never closed would block every later request for the
	// key forever (the pre-fix deadlock). The ordering matters — record the
	// failure, unregister the call, then release the waiters.
	finished := false
	defer func() {
		if !finished {
			c.status, c.val, c.err = 0, nil, errFlightPanic
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.status, c.val, c.err = fn()
	finished = true
	return c.status, c.val, c.err, false
}
