package server

import (
	"context"
	"errors"
	"sync"
)

// errFlightPanic is recorded as the result of a flight whose fn panicked:
// the panic itself propagates to the leader's goroutine (where it is
// recovered and counted), while every waiter receives this error instead of
// blocking forever.
var errFlightPanic = errors.New("server: coalesced scheduling run panicked")

// flightGroup coalesces concurrent work with the same key: the first caller
// becomes the leader and runs fn, every caller that arrives while it is in
// flight waits and shares the result. Combined with the byte cache it
// guarantees that a burst of identical requests costs one scheduling run,
// not N — and, because the shared value is an immutable byte slice, every
// waiter receives exactly the same bytes.
//
// Unlike golang.org/x/sync/singleflight, the group refcounts its waiters:
// each call owns a run context that is cancelled when the last interested
// waiter departs before the run finished, so an abandoned run can stop
// scheduling and free its worker slot instead of completing detached. A run
// that still has waiters keeps going — and keeps warming the cache — no
// matter which individual clients gave up.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when status/val/err are final

	runCtx context.Context // governs the run; cancelled when abandoned
	cancel context.CancelFunc

	waiters  int  // callers currently waiting on done
	finished bool // fn returned (or panicked); result fields are set

	status int
	val    []byte
	err    error
}

// join attaches the caller to the in-flight call for key, creating it if
// absent; leader reports whether this caller must execute the run (by
// passing the returned call to run). The new call's run context inherits
// ctx's values but not its cancellation: the run is bounded by waiter
// interest, not by any single waiter's deadline.
func (g *flightGroup) join(ctx context.Context, key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		return c, false
	}
	c = &flightCall{done: make(chan struct{}), waiters: 1}
	c.runCtx, c.cancel = context.WithCancel(context.WithoutCancel(ctx))
	g.calls[key] = c
	return c, true
}

// depart detaches one waiter from the call. When the last waiter departs
// before the run finished, the run context is cancelled so the (cooperative)
// heuristic can abort and free its pool slot — nobody is left to read the
// result, so finishing it would be pure waste.
func (g *flightGroup) depart(c *flightCall) {
	g.mu.Lock()
	c.waiters--
	abandon := c.waiters == 0 && !c.finished
	g.mu.Unlock()
	if abandon {
		c.cancel()
	}
}

// run executes fn for the call under its run context and publishes the
// result. Cleanup runs even when fn panics: record errFlightPanic for the
// waiters, unregister the call, release the run context, then close done —
// in that order, so a panicking run can never wedge later requests for the
// key (the pre-PR-2 deadlock). The panic itself continues up the leader's
// goroutine.
func (g *flightGroup) run(key string, c *flightCall, fn func(ctx context.Context) (int, []byte, error)) {
	finished := false
	defer func() {
		g.mu.Lock()
		if !finished {
			c.status, c.val, c.err = 0, nil, errFlightPanic
		}
		c.finished = true
		delete(g.calls, key)
		g.mu.Unlock()
		c.cancel()
		close(c.done)
	}()
	c.status, c.val, c.err = fn(c.runCtx)
	finished = true
}
