package server

import "sync"

// flightGroup coalesces concurrent work with the same key: the first caller
// runs fn, every caller that arrives while it is in flight waits and shares
// the result. Combined with the byte cache it guarantees that a burst of
// identical requests costs one scheduling run, not N — and, because the
// shared value is an immutable byte slice, every waiter receives exactly
// the same bytes. (A trimmed-down, stdlib-only take on
// golang.org/x/sync/singleflight.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	status int
	val    []byte
	err    error
}

// Do returns the result of running fn for key, executing fn only if no
// call for key is already in flight; shared reports whether the result came
// from another caller's run.
func (g *flightGroup) Do(key string, fn func() (int, []byte, error)) (status int, val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.status, c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.status, c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.status, c.val, c.err, false
}
