package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/graphhash"
	"lamps/internal/power"
	"lamps/internal/stg"
)

// scheduleRequest is the body of POST /schedule. Exactly one of Graph and
// STG supplies the task graph, and exactly one of DeadlineSec and
// DeadlineFactor supplies the deadline.
type scheduleRequest struct {
	// Approach selects the heuristic. Both the short forms of the API
	// ("ss", "lamps", "ss+ps", "lamps+ps", "limit-sf", "limit-mf") and the
	// paper's names ("S&S", "LAMPS+PS", …) are accepted, case-insensitively.
	Approach string `json:"approach"`

	// Graph is the task graph in inline JSON form.
	Graph *graphSpec `json:"graph,omitempty"`
	// STG is the task graph in Standard Task Graph Set text format.
	STG string `json:"stg,omitempty"`

	// DeadlineSec is the absolute deadline in seconds.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// DeadlineFactor expresses the deadline as a multiple of the graph's
	// critical path length at maximum frequency, the parametric form of the
	// paper's evaluation.
	DeadlineFactor float64 `json:"deadline_factor,omitempty"`

	// MaxProcs optionally caps the processor count (0 = graph parallelism).
	MaxProcs int `json:"max_procs,omitempty"`

	// Platform optionally describes a heterogeneous machine for this request
	// in the power.Platform JSON form ({"classes": [{"name", "model"}...],
	// "procs": ["name"...]}); it overrides the server's default platform and
	// model. Omitted: the server's platform (lampsd -platform) or, failing
	// that, its single power model applies.
	Platform json.RawMessage `json:"platform,omitempty"`

	// Faults optionally requests k-fault tolerance: the schedule additionally
	// reserves a backup slot for every task and the deadline must cover the
	// worst-case recovery. {"k": 0} (or omitting the block) is exactly the
	// non-tolerant problem — same digest, same bytes.
	Faults *faultsSpec `json:"faults,omitempty"`
}

// faultsSpec is the fault-tolerance request block shared by /v1/schedule,
// each /v1/batch line and /v1/sweep.
type faultsSpec struct {
	// K is the number of transient faults to tolerate (0 = off).
	K int `json:"k"`
	// Policy selects backup placement: "backup-anywhere" (default) or
	// "primary-hp-backup-lp".
	Policy string `json:"policy,omitempty"`
}

// faultPolicyAliases maps lowercase API names onto canonical policies.
var faultPolicyAliases = map[string]core.FaultPolicy{
	"":                     core.FaultBackupAnywhere,
	"backup-anywhere":      core.FaultBackupAnywhere,
	"primary-hp-backup-lp": core.FaultPrimaryHPBackupLP,
}

// canonicalFaultPolicy resolves a fault policy name or returns a 400 error.
func canonicalFaultPolicy(name string) (core.FaultPolicy, error) {
	if p, ok := faultPolicyAliases[strings.ToLower(strings.TrimSpace(name))]; ok {
		return p, nil
	}
	return "", badRequest("unknown fault policy %q (one of: backup-anywhere, primary-hp-backup-lp)", name)
}

// faultConfig resolves the request's faults block onto the core form: nil
// when fault tolerance is off, otherwise K plus the canonical policy (never
// empty, so digests are stable across request spellings).
func (req *scheduleRequest) faultConfig() (*core.FaultConfig, error) {
	if req.Faults == nil || req.Faults.K == 0 {
		return nil, nil
	}
	policy, err := canonicalFaultPolicy(req.Faults.Policy)
	if err != nil {
		return nil, err
	}
	return &core.FaultConfig{K: req.Faults.K, Policy: policy}, nil
}

// graphSpec is the inline JSON task-graph representation.
type graphSpec struct {
	Name  string     `json:"name,omitempty"`
	Tasks []taskSpec `json:"tasks"`
	Edges [][2]int   `json:"edges,omitempty"`
}

type taskSpec struct {
	WeightCycles int64  `json:"weight_cycles"`
	Label        string `json:"label,omitempty"`
}

// approachAliases maps lowercase API names onto canonical approach names.
var approachAliases = map[string]string{
	"ss":       core.ApproachSS,
	"s&s":      core.ApproachSS,
	"lamps":    core.ApproachLAMPS,
	"ss+ps":    core.ApproachSSPS,
	"s&s+ps":   core.ApproachSSPS,
	"lamps+ps": core.ApproachLAMPSPS,
	"limit-sf": core.ApproachLimitSF,
	"limit-mf": core.ApproachLimitMF,
}

// canonicalApproach resolves an approach name or returns a 400 error.
func canonicalApproach(name string) (string, error) {
	if a, ok := approachAliases[strings.ToLower(strings.TrimSpace(name))]; ok {
		return a, nil
	}
	return "", badRequest("unknown approach %q (one of: ss, lamps, ss+ps, lamps+ps, limit-sf, limit-mf)", name)
}

// decodeRequest parses and validates the request body up to (but excluding)
// graph construction. Size overruns from http.MaxBytesReader surface here
// as 413.
func decodeRequest(body io.Reader) (*scheduleRequest, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req scheduleRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, tooLarge("request body exceeds the %d-byte limit", mbe.Limit)
		}
		return nil, badRequest("decoding request: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after request object")
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// validate checks the structural invariants shared by every surface that
// accepts a scheduleRequest — the single-shot endpoint and each line of a
// /v1/batch stream — so the two reject malformed requests identically.
func (req *scheduleRequest) validate() error {
	if (req.Graph == nil) == (req.STG == "") {
		return badRequest("exactly one of \"graph\" and \"stg\" must be set")
	}
	if (req.DeadlineSec > 0) == (req.DeadlineFactor > 0) {
		return badRequest("exactly one of \"deadline_sec\" and \"deadline_factor\" must be positive")
	}
	if req.MaxProcs < 0 {
		return badRequest("max_procs must be non-negative, got %d", req.MaxProcs)
	}
	if req.Faults != nil {
		if req.Faults.K < 0 {
			return badRequest("faults.k must be non-negative, got %d", req.Faults.K)
		}
		if _, err := canonicalFaultPolicy(req.Faults.Policy); err != nil {
			return err
		}
	}
	return nil
}

// buildGraph materialises a task graph from exactly one of an inline spec
// and STG text, enforcing the server's task-count limit. Structural errors
// (cycles, self edges, bad weights, malformed STG) map to 400, oversized
// graphs to 413. Shared by the schedule and sweep decoders.
func (s *Server) buildGraph(spec *graphSpec, stgText string) (*dag.Graph, error) {
	if stgText != "" {
		if int64(len(stgText)) > s.opts.MaxBodyBytes {
			return nil, tooLarge("stg text exceeds the %d-byte limit", s.opts.MaxBodyBytes)
		}
		g, err := stg.Parse(strings.NewReader(stgText), "stg-request")
		if err != nil {
			return nil, err
		}
		if g.NumTasks() > s.opts.MaxTasks {
			return nil, tooLarge("graph has %d tasks, limit is %d", g.NumTasks(), s.opts.MaxTasks)
		}
		return g, nil
	}
	if len(spec.Tasks) == 0 {
		return nil, badRequest("graph has no tasks")
	}
	if len(spec.Tasks) > s.opts.MaxTasks {
		return nil, tooLarge("graph has %d tasks, limit is %d", len(spec.Tasks), s.opts.MaxTasks)
	}
	name := spec.Name
	if name == "" {
		name = "request"
	}
	b := dag.NewBuilder(name)
	for _, tk := range spec.Tasks {
		b.AddLabeledTask(tk.WeightCycles, tk.Label)
	}
	for _, e := range spec.Edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// config assembles the core.Config for the request's graph. A platform —
// the request's own, or else the server default — replaces the single
// model: Config.Model stays nil so the digest and the engine agree on which
// machine description is authoritative. A malformed request platform maps
// to 400.
func (s *Server) config(req *scheduleRequest, g *dag.Graph) (core.Config, error) {
	pf := s.opts.Platform
	if len(req.Platform) > 0 {
		var err error
		pf, err = power.LoadPlatformJSON(bytes.NewReader(req.Platform))
		if err != nil {
			return core.Config{}, badRequest("invalid platform: %v", err)
		}
	}
	faults, err := req.faultConfig()
	if err != nil {
		return core.Config{}, err
	}
	if pf != nil {
		return core.Config{
			Platform:  pf,
			Deadline:  s.resolveDeadlineAt(g, req.DeadlineSec, req.DeadlineFactor, pf.RefFMax()),
			MaxProcs:  req.MaxProcs,
			Faults:    faults,
			SelfCheck: s.opts.SelfCheck,
		}, nil
	}
	return core.Config{
		Model:     s.opts.Model,
		Deadline:  s.resolveDeadline(g, req.DeadlineSec, req.DeadlineFactor),
		MaxProcs:  req.MaxProcs,
		Faults:    faults,
		SelfCheck: s.opts.SelfCheck,
	}, nil
}

// problem maps one resolved (approach, graph, config) triple onto its
// canonical graphhash problem — the single place the serving layer decides
// what enters a digest, shared by /v1/schedule, /v1/batch and /v1/sweep so
// all three agree on every key.
func problem(approach string, g *dag.Graph, cfg core.Config) graphhash.Problem {
	p := graphhash.Problem{
		Graph:    g,
		Model:    cfg.Model,
		Platform: cfg.Platform,
		Deadline: cfg.Deadline,
		MaxProcs: cfg.MaxProcs,
		Approach: approach,
	}
	if cfg.Faults != nil {
		p.FaultsK = cfg.Faults.K
		p.FaultsPolicy = string(cfg.Faults.Policy)
	}
	return p
}

// resolveDeadline converts the two request deadline forms onto absolute
// seconds: sec is used as-is; a positive factor takes precedence and is
// interpreted as a multiple of the graph's critical path length at maximum
// frequency (the paper's parametric form). Shared by the schedule and sweep
// paths so the two agree bit-for-bit on derived deadlines.
func (s *Server) resolveDeadline(g *dag.Graph, sec, factor float64) float64 {
	return s.resolveDeadlineAt(g, sec, factor, s.opts.Model.FMax())
}

// resolveDeadlineAt is resolveDeadline against an explicit full-speed
// frequency — the platform's reference frequency on the heterogeneous path.
func (s *Server) resolveDeadlineAt(g *dag.Graph, sec, factor, fmax float64) float64 {
	if factor > 0 {
		return factor * float64(g.CriticalPathLength()) / fmax
	}
	return sec
}

// sweepDeadline resolves a sweep deadline factor against the server's
// default machine: the platform's reference frequency when one is set,
// otherwise the single model's maximum frequency.
func (s *Server) sweepDeadline(g *dag.Graph, factor float64) float64 {
	if s.opts.Platform != nil {
		return s.resolveDeadlineAt(g, 0, factor, s.opts.Platform.RefFMax())
	}
	return s.resolveDeadline(g, 0, factor)
}

// scheduleResponse is the body of a successful POST /schedule. Platform is
// present only for heterogeneous-platform results; every homogeneous
// response stays byte-identical to the pre-platform encoding.
type scheduleResponse struct {
	Approach string           `json:"approach"`
	Key      string           `json:"key"`
	Graph    graphSummary     `json:"graph"`
	NumProcs int              `json:"num_procs"`
	Level    levelJSON        `json:"level"`
	Platform *platformSummary `json:"platform,omitempty"`
	Energy   energyJSON       `json:"energy"`
	Deadline float64          `json:"deadline_sec"`
	Makespan float64          `json:"makespan_sec"`
	Faults   *faultsSummary   `json:"faults,omitempty"`
	Tasks    []placedTask     `json:"placement,omitempty"`
	Stats    statsJSON        `json:"stats"`
}

// faultsSummary reports the fault-tolerance outcome: the tolerated fault
// count and resolved policy echoed back, the worst-case recovery makespan
// (every ≤K-fault pattern completes by then), and the reserved backup
// capacity — slot count and total cycles — whose idle energy is already
// included in the energy block. Present only on fault-tolerant results;
// every K=0 response stays byte-identical to the pre-fault encoding.
type faultsSummary struct {
	K                   int     `json:"k"`
	Policy              string  `json:"policy"`
	RecoveryMakespanSec float64 `json:"recovery_makespan_sec"`
	BackupSlots         int     `json:"backup_slots"`
	ReservedCycles      int64   `json:"reserved_cycles"`
}

// platformSummary reports the heterogeneous machine and the winning
// operating point: one realising ladder level per core class, plus the
// processor-to-class assignment (class indices) and the shared timeline
// frequency the placement cycles convert at.
type platformSummary struct {
	Classes        []platformClassJSON `json:"classes"`
	Procs          []int               `json:"procs"`
	RefClass       int                 `json:"ref_class"`
	TimelineFreqHz float64             `json:"timeline_freq_hz"`
}

type platformClassJSON struct {
	Name  string    `json:"name"`
	Level levelJSON `json:"level"`
}

type graphSummary struct {
	Name        string  `json:"name"`
	Tasks       int     `json:"tasks"`
	Edges       int     `json:"edges"`
	CPLCycles   int64   `json:"cpl_cycles"`
	WorkCycles  int64   `json:"work_cycles"`
	Parallelism float64 `json:"parallelism"`
}

type levelJSON struct {
	Index  int     `json:"index"`
	Vdd    float64 `json:"vdd"`
	FreqHz float64 `json:"freq_hz"`
	Norm   float64 `json:"f_over_fmax"`
}

type energyJSON struct {
	TotalJ    float64 `json:"total_j"`
	ActiveJ   float64 `json:"active_j"`
	IdleJ     float64 `json:"idle_j"`
	SleepJ    float64 `json:"sleep_j"`
	OverheadJ float64 `json:"overhead_j"`
	Shutdowns int     `json:"shutdowns"`
}

type placedTask struct {
	Task         int    `json:"task"`
	Label        string `json:"label,omitempty"`
	Proc         int32  `json:"proc"`
	StartCycles  int64  `json:"start_cycles"`
	FinishCycles int64  `json:"finish_cycles"`
}

type statsJSON struct {
	SchedulesBuilt  int `json:"schedules_built"`
	LevelsEvaluated int `json:"levels_evaluated"`
}

// renderResult converts a core result into the response body. The encoding
// is deterministic (encoding/json with fixed struct order), so equal
// results render to identical bytes — the property the byte-cache relies
// on. Assembly happens in a pooled renderScratch and the JSON bytes are
// produced in a pooled buffer; only the exact-size copy handed to the
// cache (and the caller) is a fresh allocation.
func renderResult(key string, cfg core.Config, r *core.Result) ([]byte, error) {
	rs := renderPool.Get().(*renderScratch)
	defer rs.release()
	resp := &rs.resp
	*resp = scheduleResponse{
		Approach: r.Approach,
		Key:      key,
		Graph: graphSummary{
			Name:        r.Graph.Name(),
			Tasks:       r.Graph.NumTasks(),
			Edges:       r.Graph.NumEdges(),
			CPLCycles:   r.Graph.CriticalPathLength(),
			WorkCycles:  r.Graph.TotalWork(),
			Parallelism: r.Graph.Parallelism(),
		},
		NumProcs: r.NumProcs,
		Level: levelJSON{
			Index:  r.Level.Index,
			Vdd:    r.Level.Vdd,
			FreqHz: r.Level.Freq,
			Norm:   r.Level.Norm,
		},
		Energy: energyJSON{
			TotalJ:    r.Energy.Total(),
			ActiveJ:   r.Energy.Active,
			IdleJ:     r.Energy.Idle,
			SleepJ:    r.Energy.Sleep,
			OverheadJ: r.Energy.Overhead,
			Shutdowns: r.Energy.Shutdowns,
		},
		Deadline: cfg.Deadline,
		Makespan: r.MakespanSec(),
		Stats: statsJSON{
			SchedulesBuilt:  r.Stats.SchedulesBuilt,
			LevelsEvaluated: r.Stats.LevelsEvaluated,
		},
	}
	if pf := r.Platform; pf != nil {
		rs.classes = grown(rs.classes, pf.NumClasses())
		rs.procs = grown(rs.procs, pf.NumProcs())
		ps := &rs.ps
		*ps = platformSummary{
			Classes:        rs.classes,
			Procs:          rs.procs,
			RefClass:       pf.RefClass(),
			TimelineFreqHz: r.Point.TimelineFreq,
		}
		for c := 0; c < pf.NumClasses(); c++ {
			cl := platformClassJSON{Name: pf.Class(c).Name}
			if c < len(r.Point.Levels) {
				l := r.Point.Levels[c]
				cl.Level = levelJSON{Index: l.Index, Vdd: l.Vdd, FreqHz: l.Freq, Norm: l.Norm}
			}
			ps.Classes[c] = cl
		}
		for p := 0; p < pf.NumProcs(); p++ {
			ps.Procs[p] = pf.ClassOf(p)
		}
		resp.Platform = ps
	}
	if bp := r.Backups; bp != nil && cfg.Faults != nil {
		rs.fs = faultsSummary{
			K:                   cfg.Faults.K,
			Policy:              string(bp.Policy),
			RecoveryMakespanSec: r.RecoveryMakespanSec(),
			BackupSlots:         len(bp.Proc),
			ReservedCycles:      bp.ReservedCycles(),
		}
		resp.Faults = &rs.fs
	}
	if r.Schedule != nil {
		rs.tasks = grown(rs.tasks, r.Graph.NumTasks())
		for v := 0; v < r.Graph.NumTasks(); v++ {
			rs.tasks[v] = placedTask{
				Task:         v,
				Label:        r.Graph.Label(v),
				Proc:         r.Schedule.Proc[v],
				StartCycles:  r.Schedule.Start[v],
				FinishCycles: r.Schedule.Finish[v],
			}
		}
		resp.Tasks = rs.tasks
	}
	// Encoder.Encode == Marshal + '\n' byte for byte; the cache retains the
	// result, so copy out of the pooled buffer at exact size.
	e := getEncoder()
	defer e.put()
	if err := e.enc.Encode(resp); err != nil {
		return nil, fmt.Errorf("encoding response: %w", err)
	}
	out := make([]byte, e.buf.Len())
	copy(out, e.buf.Bytes())
	return out, nil
}
