package server

import (
	"bytes"
	"encoding/json"
	"sync"
)

// encoder is a pooled bytes.Buffer + json.Encoder pair. json.Encoder.Encode
// writes exactly json.Marshal(v) followed by '\n' (same HTML escaping, no
// indent), which is precisely the trailing-newline convention every lampsd
// body and NDJSON line already follows — so encoding into a pooled buffer
// and writing buf.Bytes() in one call is byte-identical to the former
// Marshal+append+write path, it just stops allocating a fresh intermediate
// buffer per response.
type encoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encoderPool = sync.Pool{New: func() any {
	e := new(encoder)
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// getEncoder returns a reset pooled encoder. Pair with put. The buffer's
// bytes are only valid until put; callers that retain the encoding (the
// result cache) must copy out first.
func getEncoder() *encoder {
	e := encoderPool.Get().(*encoder)
	e.buf.Reset()
	return e
}

func (e *encoder) put() { encoderPool.Put(e) }

// renderScratch is the reusable assembly area for one /v1/schedule response:
// the response struct itself plus the per-task and per-class slices it
// points into. renderResult fills it, encodes it, copies the bytes out for
// the cache, and recycles it — so a warm server renders responses of any
// steady-state size without growing the heap.
type renderScratch struct {
	resp    scheduleResponse
	ps      platformSummary
	fs      faultsSummary
	tasks   []placedTask
	classes []platformClassJSON
	procs   []int
}

var renderPool = sync.Pool{New: func() any { return new(renderScratch) }}

// release clears the graph-derived references (task labels, class names)
// so a pooled scratch never pins a request's graph or platform, then
// returns the scratch to the pool.
func (rs *renderScratch) release() {
	clear(rs.tasks)
	clear(rs.classes)
	rs.resp = scheduleResponse{}
	rs.ps = platformSummary{}
	rs.fs = faultsSummary{}
	renderPool.Put(rs)
}

// grown returns s resized to length n, reusing its backing array when the
// capacity suffices.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
