package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"lamps/internal/power"
	"lamps/internal/server"
)

// requestPlatformJSON serialises the canonical LP×3 + HP×1 test platform
// into the request-body form of the "platform" field.
func requestPlatformJSON(t *testing.T) json.RawMessage {
	t.Helper()
	return json.RawMessage(platformDoc(t, testLPHPPlatform(t)))
}

func testLPHPPlatform(t *testing.T) *power.Platform {
	t.Helper()
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func platformDoc(t *testing.T, pf *power.Platform) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// platformResp is the platform block of a heterogeneous schedule response.
type platformResp struct {
	Classes []struct {
		Name  string `json:"name"`
		Level struct {
			FreqHz float64 `json:"freq_hz"`
		} `json:"level"`
	} `json:"classes"`
	Procs          []int   `json:"procs"`
	RefClass       int     `json:"ref_class"`
	TimelineFreqHz float64 `json:"timeline_freq_hz"`
}

// TestSchedulePlatformRequest drives a heterogeneous request through the
// full serving path: a request carrying a "platform" block must schedule
// (miss), be served byte-identically from the cache on repeat (hit), key
// differently from the same request without the block, and report the
// machine and winning operating point in the response.
func TestSchedulePlatformRequest(t *testing.T) {
	ts := newTestServer(t, server.Options{})

	req := scheduleReq("lamps+ps", diamondGraph(), 2)
	req["platform"] = requestPlatformJSON(t)

	status, body, src := post(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	if src != "miss" {
		t.Fatalf("first request source %q, want miss", src)
	}

	status2, body2, src2 := post(t, ts, req)
	if status2 != http.StatusOK || src2 != "hit" {
		t.Fatalf("repeat: status %d source %q, want 200 hit", status2, src2)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cache hit body differs from the miss body")
	}

	var r struct {
		scheduleResp
		Platform *platformResp `json:"platform"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if r.Platform == nil {
		t.Fatal("heterogeneous response has no platform block")
	}
	if got := len(r.Platform.Classes); got != 2 {
		t.Fatalf("%d classes in response, want 2", got)
	}
	if want := []int{0, 0, 0, 1}; len(r.Platform.Procs) != len(want) {
		t.Errorf("procs %v, want %v", r.Platform.Procs, want)
	}
	if r.Platform.RefClass != 1 {
		t.Errorf("ref_class %d, want 1 (the hp class)", r.Platform.RefClass)
	}
	if r.Platform.TimelineFreqHz <= 0 {
		t.Error("non-positive timeline frequency")
	}
	if r.Energy.TotalJ <= 0 {
		t.Errorf("non-positive energy %g", r.Energy.TotalJ)
	}
	if len(r.Tasks) != 4 {
		t.Fatalf("%d placed tasks, want 4", len(r.Tasks))
	}

	// The same problem without the platform must be a distinct cache entry —
	// and a homogeneous response, with no platform block.
	status3, body3, src3 := post(t, ts, scheduleReq("lamps+ps", diamondGraph(), 2))
	if status3 != http.StatusOK || src3 != "miss" {
		t.Fatalf("model request: status %d source %q, want 200 miss", status3, src3)
	}
	hom := decodeResp(t, body3)
	if hom.Key == r.Key {
		t.Error("platform and model requests share a cache key")
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body3, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["platform"]; ok {
		t.Error("homogeneous response carries a platform block")
	}
}

// TestSchedulePlatformDefault: a server started with a default platform
// (lampsd -platform) applies it to requests without their own platform
// block, and a request-level platform still overrides it.
func TestSchedulePlatformDefault(t *testing.T) {
	pf := testLPHPPlatform(t)
	ts := newTestServer(t, server.Options{Platform: pf})

	status, body, _ := post(t, ts, scheduleReq("lamps", diamondGraph(), 2))
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var r struct {
		Key      string        `json:"key"`
		Platform *platformResp `json:"platform"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Platform == nil {
		t.Fatal("default-platform response has no platform block")
	}

	// A request-level platform overrides the default: an HP-only override
	// must come back homogeneous-shaped (no platform block) under a key of
	// its own.
	hpOnly, err := power.Homogeneous(4, power.Default70nm())
	if err != nil {
		t.Fatal(err)
	}
	req := scheduleReq("lamps", diamondGraph(), 2)
	req["platform"] = json.RawMessage(platformDoc(t, hpOnly))
	status2, body2, _ := post(t, ts, req)
	if status2 != http.StatusOK {
		t.Fatalf("override: status %d, body %s", status2, body2)
	}
	var r2 struct {
		Key      string        `json:"key"`
		Platform *platformResp `json:"platform"`
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Platform != nil {
		t.Error("homogeneous override still reports a platform block")
	}
	if r2.Key == r.Key {
		t.Error("override shares the default platform's cache key")
	}
}

// TestSchedulePlatformInvalid: malformed platform blocks are 400s, not
// server errors.
func TestSchedulePlatformInvalid(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	for name, platform := range map[string]string{
		"unknown class": `{"classes":[{"name":"lp","model":{}}],"procs":["big"]}`,
		"unknown field": `{"classes":[],"procs":[],"bogus":1}`,
		"not an object": `42`,
	} {
		req := scheduleReq("lamps", diamondGraph(), 2)
		req["platform"] = json.RawMessage(platform)
		status, body, _ := post(t, ts, req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", name, status, body)
		}
	}
}
