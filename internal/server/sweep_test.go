package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/server"
)

// sweepLine mirrors the NDJSON stream lines for assertions.
type sweepLine struct {
	Cell *struct {
		Index          int     `json:"index"`
		Approach       string  `json:"approach"`
		DeadlineSec    float64 `json:"deadline_sec"`
		DeadlineFactor float64 `json:"deadline_factor"`
		MaxProcs       int     `json:"max_procs"`
	} `json:"cell"`
	Status  int             `json:"status"`
	Cache   string          `json:"cache"`
	Result  json.RawMessage `json:"result"`
	Error   string          `json:"error"`
	Summary *struct {
		Cells     int  `json:"cells"`
		Completed int  `json:"completed"`
		OK        int  `json:"ok"`
		Errors    int  `json:"errors"`
		CacheHits int  `json:"cache_hits"`
		Coalesced int  `json:"coalesced"`
		TimedOut  bool `json:"timed_out"`
	} `json:"summary"`
}

// postSweep sends a /v1/sweep request and parses the NDJSON stream.
func postSweep(t *testing.T, ts *httptest.Server, reqBody any) (int, []sweepLine, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(reqBody); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, raw
	}
	var lines []sweepLine
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line sweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("parsing sweep line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, line)
	}
	return resp.StatusCode, lines, raw
}

func sweepReq(graph map[string]any, approaches []string, factors []float64, procs []int) map[string]any {
	req := map[string]any{
		"approaches":       approaches,
		"graph":            graph,
		"deadline_factors": factors,
	}
	if procs != nil {
		req["max_procs"] = procs
	}
	return req
}

// TestSweepMatchesScheduleBitForBit is the acceptance test of the sweep
// engine: a 48-cell grid must return, for every cell, exactly the bytes an
// individual /v1/schedule request for the same problem returns — and a
// second, fully cached sweep must reproduce them byte for byte.
func TestSweepMatchesScheduleBitForBit(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	approaches := []string{"ss", "lamps", "ss+ps", "lamps+ps", "limit-sf", "limit-mf"}
	factors := []float64{1.5, 2, 4, 8}
	procs := []int{0, 2}

	status, cold, raw := postSweep(t, ts, sweepReq(diamondGraph(), approaches, factors, procs))
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d, body %s", status, raw)
	}
	wantCells := len(approaches) * len(factors) * len(procs)
	if len(cold) != wantCells+1 {
		t.Fatalf("sweep returned %d lines, want %d cells + summary", len(cold), wantCells)
	}
	sum := cold[len(cold)-1].Summary
	if sum == nil {
		t.Fatal("stream did not end with a summary line")
	}
	if sum.Cells != wantCells || sum.Completed != wantCells || sum.OK != wantCells || sum.Errors != 0 || sum.TimedOut {
		t.Errorf("cold summary %+v, want %d clean cells", *sum, wantCells)
	}

	// Each cell must match an individual /v1/schedule call bit for bit.
	seen := make(map[int]bool)
	for _, line := range cold[:len(cold)-1] {
		if line.Cell == nil {
			t.Fatal("non-summary line without a cell")
		}
		if seen[line.Cell.Index] {
			t.Errorf("cell %d reported twice", line.Cell.Index)
		}
		seen[line.Cell.Index] = true
		if line.Status != http.StatusOK {
			t.Errorf("cell %d: status %d (%s)", line.Cell.Index, line.Status, line.Error)
			continue
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(map[string]any{
			"approach":        line.Cell.Approach,
			"graph":           diamondGraph(),
			"deadline_factor": line.Cell.DeadlineFactor,
			"max_procs":       line.Cell.MaxProcs,
		}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cell %d via /v1/schedule: status %d, body %s", line.Cell.Index, resp.StatusCode, body)
		}
		if want := bytes.TrimSuffix(body, []byte("\n")); !bytes.Equal(line.Result, want) {
			t.Errorf("cell %d diverges from /v1/schedule:\n%s\nvs\n%s", line.Cell.Index, line.Result, want)
		}
	}

	// The warm sweep must be served entirely from the cache with identical
	// per-cell bytes.
	status, warm, raw := postSweep(t, ts, sweepReq(diamondGraph(), approaches, factors, procs))
	if status != http.StatusOK {
		t.Fatalf("warm sweep: status %d, body %s", status, raw)
	}
	warmSum := warm[len(warm)-1].Summary
	if warmSum == nil || warmSum.CacheHits != wantCells {
		t.Errorf("warm summary %+v, want %d cache hits", warmSum, wantCells)
	}
	coldByIndex := make(map[int]json.RawMessage)
	for _, line := range cold[:len(cold)-1] {
		coldByIndex[line.Cell.Index] = line.Result
	}
	for _, line := range warm[:len(warm)-1] {
		if line.Cache != "hit" {
			t.Errorf("warm cell %d served from %q, want hit", line.Cell.Index, line.Cache)
		}
		if !bytes.Equal(line.Result, coldByIndex[line.Cell.Index]) {
			t.Errorf("warm cell %d is not byte-identical to the cold cell:\n%s\nvs\n%s",
				line.Cell.Index, line.Result, coldByIndex[line.Cell.Index])
		}
	}
}

// TestSweepPartialFailure: infeasible cells fail with 422 in their own line
// while the rest of the grid completes.
func TestSweepPartialFailure(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	req := map[string]any{
		"approaches":    []string{"lamps"},
		"graph":         diamondGraph(),
		"deadline_secs": []float64{1e-9, 0.05}, // first infeasible, second fine
	}
	status, lines, raw := postSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	sum := lines[len(lines)-1].Summary
	if sum == nil || sum.OK != 1 || sum.Errors != 1 {
		t.Fatalf("summary %+v, want 1 ok + 1 error", sum)
	}
	for _, line := range lines[:len(lines)-1] {
		switch line.Cell.DeadlineSec {
		case 1e-9:
			if line.Status != http.StatusUnprocessableEntity || line.Error == "" {
				t.Errorf("infeasible cell: status %d, error %q", line.Status, line.Error)
			}
		default:
			if line.Status != http.StatusOK {
				t.Errorf("feasible cell: status %d (%s)", line.Status, line.Error)
			}
		}
	}
}

func TestSweepValidation(t *testing.T) {
	ts := newTestServer(t, server.Options{SweepMaxCells: 4})
	cases := map[string]struct {
		req  map[string]any
		want int
	}{
		"no approaches": {map[string]any{
			"graph": diamondGraph(), "deadline_factors": []float64{2},
		}, http.StatusBadRequest},
		"unknown approach": {map[string]any{
			"approaches": []string{"warp-drive"}, "graph": diamondGraph(),
			"deadline_factors": []float64{2},
		}, http.StatusBadRequest},
		"no deadlines": {map[string]any{
			"approaches": []string{"ss"}, "graph": diamondGraph(),
		}, http.StatusBadRequest},
		"both deadline axes": {map[string]any{
			"approaches": []string{"ss"}, "graph": diamondGraph(),
			"deadline_secs": []float64{1}, "deadline_factors": []float64{2},
		}, http.StatusBadRequest},
		"non-positive deadline": {map[string]any{
			"approaches": []string{"ss"}, "graph": diamondGraph(),
			"deadline_secs": []float64{0},
		}, http.StatusBadRequest},
		"negative procs": {map[string]any{
			"approaches": []string{"ss"}, "graph": diamondGraph(),
			"deadline_factors": []float64{2}, "max_procs": []int{-1},
		}, http.StatusBadRequest},
		"no graph": {map[string]any{
			"approaches": []string{"ss"}, "deadline_factors": []float64{2},
		}, http.StatusBadRequest},
		"grid too large": {map[string]any{
			"approaches": []string{"ss", "lamps", "ss+ps"}, "graph": diamondGraph(),
			"deadline_factors": []float64{1.5, 2}, // 6 cells > limit 4
		}, http.StatusRequestEntityTooLarge},
	}
	for name, c := range cases {
		status, _, raw := postSweep(t, ts, c.req)
		if status != c.want {
			t.Errorf("%s: status %d, want %d; body %s", name, status, c.want, raw)
		}
	}
}

// panickyRunner returns a Runner that panics for the given approach and
// delegates to core.RunCtx otherwise.
func panickyRunner(approach string, block chan struct{}) func(context.Context, string, *dag.Graph, core.Config) (*core.Result, error) {
	return func(ctx context.Context, a string, g *dag.Graph, cfg core.Config) (*core.Result, error) {
		if a == approach {
			if block != nil {
				<-block
			}
			panic("injected scheduler panic")
		}
		return core.RunCtx(ctx, a, g, cfg)
	}
}

// TestSchedulePanicIsolation is the acceptance check for panic hardening: a
// panicking approach yields a 500 on the first request and a non-hanging
// 500 (not a deadlock) on a concurrent duplicate, the panic counter
// increments, and the server keeps serving other work afterwards.
func TestSchedulePanicIsolation(t *testing.T) {
	release := make(chan struct{})
	ts := newTestServer(t, server.Options{Runner: panickyRunner(core.ApproachSS, release)})
	req := scheduleReq("ss", diamondGraph(), 2)

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	do := func() {
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(req)
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", &buf)
		if err != nil {
			t.Error(err)
			results <- result{}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- result{resp.StatusCode, body}
	}
	go do()                           // leader: will panic inside the runner
	time.Sleep(50 * time.Millisecond) // let the leader enter the flight
	go do()                           // duplicate: coalesces onto the flight
	time.Sleep(50 * time.Millisecond) // let the duplicate block on the flight
	close(release)                    // unleash the panic

	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.status != http.StatusInternalServerError {
				t.Errorf("request %d: status %d, want 500; body %s", i, r.status, r.body)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("request hung after the panic: the singleflight deadlock is back")
		}
	}

	if v := metricValue(t, ts, "lampsd_panics_total"); v < 1 {
		t.Errorf("lampsd_panics_total = %g, want >= 1", v)
	}
	// The server must still serve healthy approaches.
	status, body, _ := post(t, ts, scheduleReq("lamps", diamondGraph(), 2))
	if status != http.StatusOK {
		t.Errorf("post-panic request: status %d, body %s", status, body)
	}
}

// TestSweepPanicIsolation: a panicking approach poisons only its own cells;
// the rest of the grid completes and the panics are counted.
func TestSweepPanicIsolation(t *testing.T) {
	ts := newTestServer(t, server.Options{Runner: panickyRunner(core.ApproachSS, nil)})
	req := sweepReq(diamondGraph(), []string{"ss", "lamps"}, []float64{1.5, 2, 4}, nil)
	status, lines, raw := postSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	sum := lines[len(lines)-1].Summary
	if sum == nil || sum.OK != 3 || sum.Errors != 3 {
		t.Fatalf("summary %+v, want 3 ok + 3 errors", sum)
	}
	for _, line := range lines[:len(lines)-1] {
		switch line.Cell.Approach {
		case core.ApproachSS:
			if line.Status != http.StatusInternalServerError || !strings.Contains(line.Error, "panic") {
				t.Errorf("ss cell: status %d, error %q, want a 500 panic report", line.Status, line.Error)
			}
		default:
			if line.Status != http.StatusOK {
				t.Errorf("lamps cell: status %d (%s)", line.Status, line.Error)
			}
		}
	}
	if v := metricValue(t, ts, "lampsd_panics_total"); v < 3 {
		t.Errorf("lampsd_panics_total = %g, want >= 3", v)
	}
	if v := metricValue(t, ts, `lampsd_sweep_cells_total{outcome="ok"}`); v != 3 {
		t.Errorf(`lampsd_sweep_cells_total{outcome="ok"} = %g, want 3`, v)
	}
}

// slowRunner delegates to core.RunCtx after a fixed delay. The delay
// ignores ctx deliberately: the timeout tests use it to pin the worker slot
// past the request deadline, proving the server classifies correctly even
// for an uncooperative heuristic.
func slowRunner(d time.Duration) func(context.Context, string, *dag.Graph, core.Config) (*core.Result, error) {
	return func(ctx context.Context, a string, g *dag.Graph, cfg core.Config) (*core.Result, error) {
		time.Sleep(d)
		return core.RunCtx(ctx, a, g, cfg)
	}
}

// TestRequestTimeout exercises both deadline mappings: a run that outlives
// the request timeout returns 504, and a request stuck behind it in the
// queue returns 503 — both with Retry-After and without occupying the
// client for longer than the timeout plus scheduling slack.
func TestRequestTimeout(t *testing.T) {
	ts := newTestServer(t, server.Options{
		Workers:        1,
		CacheSize:      -1,
		RequestTimeout: 150 * time.Millisecond,
		Runner:         slowRunner(2 * time.Second),
	})

	type result struct {
		status     int
		retryAfter string
	}
	do := func(req map[string]any) result {
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(req)
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", &buf)
		if err != nil {
			t.Error(err)
			return result{}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return result{resp.StatusCode, resp.Header.Get("Retry-After")}
	}

	first := make(chan result, 1)
	go func() { first <- do(scheduleReq("ss", diamondGraph(), 2)) }()
	time.Sleep(50 * time.Millisecond) // let the first request take the only slot

	// Different problem → different key → no coalescing: it queues.
	queued := do(scheduleReq("ss", diamondGraph(), 4))
	if queued.status != http.StatusServiceUnavailable {
		t.Errorf("queued request: status %d, want 503", queued.status)
	}
	if queued.retryAfter == "" {
		t.Error("queued request: missing Retry-After header")
	}

	select {
	case r := <-first:
		if r.status != http.StatusGatewayTimeout {
			t.Errorf("overlong run: status %d, want 504", r.status)
		}
		if r.retryAfter == "" {
			t.Error("overlong run: missing Retry-After header")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first request never returned")
	}
}

// TestSweepTimeout: a sweep that cannot finish inside the request deadline
// terminates with a summary marked timed_out instead of hanging.
func TestSweepTimeout(t *testing.T) {
	ts := newTestServer(t, server.Options{
		Workers:        1,
		CacheSize:      -1,
		RequestTimeout: 100 * time.Millisecond,
		Runner:         slowRunner(500 * time.Millisecond),
	})
	req := sweepReq(diamondGraph(), []string{"ss"}, []float64{1.5, 2, 4, 8}, nil)
	start := time.Now()
	status, lines, raw := postSweep(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("sweep took %v despite a 100ms deadline", elapsed)
	}
	if len(lines) == 0 {
		t.Fatal("empty sweep stream")
	}
	sum := lines[len(lines)-1].Summary
	if sum == nil {
		t.Fatal("stream did not end with a summary line")
	}
	if !sum.TimedOut {
		t.Errorf("summary %+v, want timed_out", *sum)
	}
	if sum.Completed >= sum.Cells {
		t.Errorf("summary reports %d/%d cells completed despite the timeout", sum.Completed, sum.Cells)
	}
}

// TestScheduleV1Alias: /schedule and /v1/schedule serve identical bytes for
// identical problems (one warms the cache for the other).
func TestScheduleV1Alias(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	req := scheduleReq("lamps", diamondGraph(), 2)
	var bodies [][]byte
	for _, path := range []string{"/schedule", "/v1/schedule"} {
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(req)
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", path, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("/schedule and /v1/schedule diverge:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestSweepConcurrentWithSchedules drives a sweep and individual schedule
// requests for overlapping problems at the same time; under -race this
// proves the shared execute path (cache + singleflight + pool + metrics) is
// data-race free, and every response must still be correct.
func TestSweepConcurrentWithSchedules(t *testing.T) {
	ts := newTestServer(t, server.Options{Workers: 4})
	approaches := []string{"ss", "lamps", "lamps+ps"}
	factors := []float64{1.5, 2, 4, 8}

	var bad int32
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		status, lines, raw := postSweep(t, ts, sweepReq(diamondGraph(), approaches, factors, nil))
		if status != http.StatusOK {
			t.Errorf("sweep status %d, body %s", status, raw)
			atomic.AddInt32(&bad, 1)
			return
		}
		sum := lines[len(lines)-1].Summary
		if sum == nil || sum.Errors != 0 {
			t.Errorf("sweep summary %+v", sum)
			atomic.AddInt32(&bad, 1)
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		for i := 0; i < 24; i++ {
			a := approaches[i%len(approaches)]
			f := factors[i%len(factors)]
			status, body, _ := post(t, ts, scheduleReq(a, diamondGraph(), f))
			if status != http.StatusOK {
				t.Errorf("schedule %s/%g: status %d, body %s", a, f, status, body)
				atomic.AddInt32(&bad, 1)
			}
		}
	}()
	<-done
	<-done
	if bad != 0 {
		t.Fatalf("%d failures under concurrent mixed load", bad)
	}
}
