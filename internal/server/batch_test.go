package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/server"
)

// batchLine mirrors the /v1/batch NDJSON stream lines for assertions.
type batchLine struct {
	Index   *int            `json:"index"`
	Status  int             `json:"status"`
	Cache   string          `json:"cache"`
	Result  json.RawMessage `json:"result"`
	Error   string          `json:"error"`
	Summary *struct {
		Requests  int  `json:"requests"`
		Completed int  `json:"completed"`
		OK        int  `json:"ok"`
		Errors    int  `json:"errors"`
		Invalid   int  `json:"invalid"`
		CacheHits int  `json:"cache_hits"`
		Coalesced int  `json:"coalesced"`
		TimedOut  bool `json:"timed_out"`
	} `json:"summary"`
}

// ndjsonBody renders a sequence of request objects (or raw strings) as an
// NDJSON request body.
func ndjsonBody(t *testing.T, lines ...any) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	for _, l := range lines {
		switch v := l.(type) {
		case string:
			buf.WriteString(v)
			buf.WriteByte('\n')
		default:
			if err := json.NewEncoder(&buf).Encode(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &buf
}

// postBatch sends a /v1/batch request and parses the NDJSON stream.
func postBatch(t *testing.T, ts *httptest.Server, body io.Reader) (int, []batchLine, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, raw
	}
	var lines []batchLine
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line batchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("parsing batch line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, line)
	}
	return resp.StatusCode, lines, raw
}

// splitBatch separates result lines (indexed by input line) from the
// trailing summary, checking stream shape along the way.
func splitBatch(t *testing.T, lines []batchLine, wantN int) (map[int]batchLine, batchLine) {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("empty batch stream")
	}
	last := lines[len(lines)-1]
	if last.Summary == nil {
		t.Fatalf("last line is not a summary: %+v", last)
	}
	byIndex := make(map[int]batchLine, len(lines)-1)
	for _, l := range lines[:len(lines)-1] {
		if l.Summary != nil {
			t.Fatal("summary line in the middle of the stream")
		}
		if l.Index == nil {
			t.Fatalf("result line without index: %+v", l)
		}
		if _, dup := byIndex[*l.Index]; dup {
			t.Fatalf("duplicate line for index %d", *l.Index)
		}
		byIndex[*l.Index] = l
	}
	if len(byIndex) != wantN {
		t.Fatalf("%d result lines, want %d", len(byIndex), wantN)
	}
	return byIndex, last
}

// chainGraph returns a small inline graph distinct from diamondGraph so
// batches can mix several graphs.
func chainGraph(n int) map[string]any {
	tasks := make([]map[string]any, n)
	for i := range tasks {
		tasks[i] = map[string]any{"weight_cycles": 3_100_000 * (1 + i%3)}
	}
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return map[string]any{"name": fmt.Sprintf("chain%d", n), "tasks": tasks, "edges": edges}
}

// TestBatchMatchesScheduleBytes: every OK line of a mixed batch must carry
// exactly the bytes /v1/schedule returns for the same problem (modulo the
// trailing newline), whether computed by the batch or served from the cache
// the batch itself warmed.
func TestBatchMatchesScheduleBytes(t *testing.T) {
	ts := newTestServer(t, server.Options{Workers: 4})
	reqs := []any{
		scheduleReq(core.ApproachLAMPS, diamondGraph(), 2),
		scheduleReq(core.ApproachSSPS, chainGraph(6), 4),
		scheduleReq(core.ApproachLimitMF, diamondGraph(), 2),
		scheduleReq(core.ApproachLAMPSPS, chainGraph(9), 1.5),
	}
	status, lines, raw := postBatch(t, ts, ndjsonBody(t, reqs...))
	if status != 200 {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	byIndex, last := splitBatch(t, lines, len(reqs))
	if last.Summary.OK != len(reqs) || last.Summary.Errors != 0 {
		t.Fatalf("summary %+v, want %d ok and 0 errors", last.Summary, len(reqs))
	}
	for i, req := range reqs {
		line := byIndex[i]
		if line.Status != 200 {
			t.Fatalf("line %d: status %d (%s)", i, line.Status, line.Error)
		}
		// The single-shot endpoint for the same problem: a cache hit on the
		// entry this batch run just stored, byte-identical by contract.
		st, body, src := post(t, ts, req)
		if st != 200 {
			t.Fatalf("single-shot %d: status %d (%s)", i, st, body)
		}
		if src != "hit" {
			t.Errorf("single-shot %d: cache %q, want \"hit\" — the batch did not warm the cache", i, src)
		}
		if !bytes.Equal(append([]byte(nil), line.Result...), bytes.TrimSuffix(body, []byte("\n"))) {
			t.Errorf("line %d: batch result differs from /v1/schedule body\nbatch:    %s\nschedule: %s",
				i, line.Result, body)
		}
	}

	// Second identical batch: all hits, still byte-identical.
	status, lines, raw = postBatch(t, ts, ndjsonBody(t, reqs...))
	if status != 200 {
		t.Fatalf("second batch status %d: %s", status, raw)
	}
	byIndex2, last2 := splitBatch(t, lines, len(reqs))
	if last2.Summary.CacheHits != len(reqs) {
		t.Errorf("second batch cache hits = %d, want %d", last2.Summary.CacheHits, len(reqs))
	}
	for i := range reqs {
		if !bytes.Equal(byIndex2[i].Result, byIndex[i].Result) {
			t.Errorf("line %d: cached batch result differs from computed one", i)
		}
		if byIndex2[i].Cache != "hit" {
			t.Errorf("line %d: cache %q, want \"hit\"", i, byIndex2[i].Cache)
		}
	}
}

// TestBatchMixedValidInvalid: invalid lines — wrong shape, unknown
// approach, malformed graph, infeasible deadline — fail alone with their
// proper statuses while the valid lines complete.
func TestBatchMixedValidInvalid(t *testing.T) {
	ts := newTestServer(t, server.Options{Workers: 2})
	tight := scheduleReq(core.ApproachLAMPS, diamondGraph(), 2)
	tight["deadline_factor"] = 0.25 // infeasible: below the critical path
	reqs := []any{
		scheduleReq(core.ApproachLAMPS, diamondGraph(), 2), // 0: ok
		`{"approach":"lamps","unknown_field":1}`,           // 1: 400 wrong shape
		scheduleReq("warp-drive", diamondGraph(), 2),       // 2: 400 unknown approach
		map[string]any{ // 3: 400 cyclic graph
			"approach": "lamps", "deadline_factor": 2.0,
			"graph": map[string]any{
				"tasks": []map[string]any{{"weight_cycles": 1}, {"weight_cycles": 1}},
				"edges": [][2]int{{0, 1}, {1, 0}},
			},
		},
		tight, // 4: 422 infeasible
		scheduleReq(core.ApproachSS, chainGraph(5), 4), // 5: ok
	}
	status, lines, raw := postBatch(t, ts, ndjsonBody(t, reqs...))
	if status != 200 {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	byIndex, last := splitBatch(t, lines, len(reqs))
	wantStatus := map[int]int{0: 200, 1: 400, 2: 400, 3: 400, 4: 422, 5: 200}
	for i, want := range wantStatus {
		if byIndex[i].Status != want {
			t.Errorf("line %d: status %d (%s), want %d", i, byIndex[i].Status, byIndex[i].Error, want)
		}
	}
	if last.Summary.OK != 2 || last.Summary.Errors != 4 || last.Summary.Invalid != 3 {
		t.Errorf("summary %+v, want ok=2 errors=4 invalid=3", last.Summary)
	}
	if last.Summary.Completed != len(reqs) {
		t.Errorf("completed = %d, want %d", last.Summary.Completed, len(reqs))
	}
}

// TestBatchWholeRequestErrors: whole-batch failures — empty stream,
// malformed JSON that desynchronises it, too many lines — reject the batch
// with one error response instead of a partial stream.
func TestBatchWholeRequestErrors(t *testing.T) {
	ts := newTestServer(t, server.Options{Workers: 1, BatchMaxItems: 4})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", "", 400},
		{"malformed", "{\"approach\": \"lamps\",\n", 400},
		{"too-many", strings.Repeat(`{"approach":"lamps","deadline_factor":2,"graph":{"tasks":[{"weight_cycles":1}]}}`+"\n", 5), 413},
	}
	for _, tc := range cases {
		status, _, raw := postBatch(t, ts, strings.NewReader(tc.body))
		if status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, raw, tc.want)
		}
	}
}

// TestBatchPanicIsolation: a heuristic panicking on one line yields a 500
// for that line only; the rest of the batch completes and the panic is
// counted.
func TestBatchPanicIsolation(t *testing.T) {
	ts := newTestServer(t, server.Options{
		Workers: 2,
		Runner: func(ctx context.Context, a string, g *dag.Graph, cfg core.Config) (*core.Result, error) {
			if a == core.ApproachSS {
				panic("batch bomb")
			}
			return core.RunCtx(ctx, a, g, cfg)
		},
	})
	reqs := []any{
		scheduleReq(core.ApproachLAMPS, diamondGraph(), 2),
		scheduleReq(core.ApproachSS, diamondGraph(), 2), // panics
		scheduleReq(core.ApproachLAMPSPS, chainGraph(4), 2),
	}
	status, lines, raw := postBatch(t, ts, ndjsonBody(t, reqs...))
	if status != 200 {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	byIndex, last := splitBatch(t, lines, len(reqs))
	if byIndex[1].Status != 500 || !strings.Contains(byIndex[1].Error, "panic") {
		t.Errorf("panicking line: status %d error %q, want 500 mentioning the panic", byIndex[1].Status, byIndex[1].Error)
	}
	for _, i := range []int{0, 2} {
		if byIndex[i].Status != 200 {
			t.Errorf("line %d: status %d (%s), want 200 despite the neighbouring panic", i, byIndex[i].Status, byIndex[i].Error)
		}
	}
	if last.Summary.OK != 2 || last.Summary.Errors != 1 {
		t.Errorf("summary %+v, want ok=2 errors=1", last.Summary)
	}
	if got := metricValue(t, ts, "lampsd_panics_total"); got < 1 {
		t.Errorf("lampsd_panics_total = %g, want >= 1", got)
	}
}

// TestBatchDisconnectCancelsUnstartedLines: when the client disconnects
// mid-batch, lines that have not been dispatched yet must never start. A
// single worker plus a runner that blocks until released serialises the
// batch so the test can observe exactly how many lines ran.
func TestBatchDisconnectCancelsUnstartedLines(t *testing.T) {
	const n = 8
	var started atomic.Int32
	release := make(chan struct{})
	var releaseOnce sync.Once
	firstRunning := make(chan struct{})
	ts := newTestServer(t, server.Options{
		Workers: 1,
		Runner: func(ctx context.Context, a string, g *dag.Graph, cfg core.Config) (*core.Result, error) {
			if started.Add(1) == 1 {
				close(firstRunning)
			}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})

	// Distinct problems (different deadline factors) so no two lines
	// coalesce onto one flight.
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		if err := json.NewEncoder(&buf).Encode(scheduleReq(core.ApproachLAMPS, diamondGraph(), 2+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	<-firstRunning
	cancel() // client walks away while line 0 is still executing
	resp.Body.Close()
	releaseOnce.Do(func() { close(release) })

	// The server tears the batch down asynchronously; wait for the dispatch
	// loop to quiesce, then assert nothing new started.
	deadline := time.After(2 * time.Second)
	for {
		n1 := started.Load()
		select {
		case <-deadline:
			t.Fatalf("batch did not quiesce; %d lines started", n1)
		case <-time.After(100 * time.Millisecond):
		}
		if started.Load() == n1 {
			break
		}
	}
	if got := started.Load(); got >= n {
		t.Fatalf("all %d lines ran despite the disconnect; unstarted lines must be cancelled", got)
	} else {
		t.Logf("%d of %d lines started before the disconnect took effect", got, n)
	}
}
