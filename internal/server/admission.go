package server

import (
	"context"
	"math"
	"sync"
	"time"

	"lamps/internal/core"
	"lamps/internal/workpool"
)

// Cost classes. A request's class is a function of (approach, task count)
// only — the two inputs that determine its compute cost by orders of
// magnitude: the LIMIT bounds are closed-form-plus-one-pass computations in
// the microseconds, the scheduling heuristics on small graphs take tens of
// microseconds to low milliseconds, and a LAMPS+PS search over a
// thousand-task graph is a milliseconds-to-seconds affair. Classing them
// separately means a flood of expensive requests saturates its own queue —
// and is shed with an honest Retry-After — while cheap traffic keeps flowing.
const (
	classMicro    = "micro"    // LIMIT-SF / LIMIT-MF bounds: microseconds
	classStandard = "standard" // heuristics on graphs below heavyTaskThreshold
	classHeavy    = "heavy"    // heuristics on large graphs: milliseconds and up
)

// heavyTaskThreshold is the task count at which a heuristic run is classed
// heavy. Half the pool (rounded down, minimum one slot) may run heavy work
// concurrently; the rest is always available to the cheaper classes.
const heavyTaskThreshold = 512

// maxRetryAfterSec caps the advertised Retry-After: beyond two minutes the
// estimate is noise and clients should re-resolve rather than sleep longer.
const maxRetryAfterSec = 120

// costClass maps one request onto its admission class.
func costClass(approach string, numTasks int) string {
	switch approach {
	case core.ApproachLimitSF, core.ApproachLimitMF:
		return classMicro
	}
	if numTasks >= heavyTaskThreshold {
		return classHeavy
	}
	return classStandard
}

// admission is the per-class front door to the shared worker pool: one
// bounded waiting room per cost class (full → immediate 429), plus a
// concurrency cap on the heavy class so expensive runs can never occupy the
// whole pool. Each class keeps a histogram of observed queue waits; the
// Retry-After advertised on shed responses is derived from it (see
// retryAfterSeconds), not hardcoded.
type admission struct {
	micro    *costClassQueue
	standard *costClassQueue
	heavy    *costClassQueue
}

// newAdmission sizes the per-class queues for a pool of workers slots and a
// per-class waiting room of depth entries.
func newAdmission(workers, depth int) *admission {
	heavySlots := workers / 2
	if heavySlots < 1 {
		heavySlots = 1
	}
	return &admission{
		micro:    newCostClassQueue(classMicro, depth, 0),
		standard: newCostClassQueue(classStandard, depth, 0),
		heavy:    newCostClassQueue(classHeavy, depth, heavySlots),
	}
}

// class returns the queue handling (approach, numTasks) requests.
func (a *admission) class(approach string, numTasks int) *costClassQueue {
	switch costClass(approach, numTasks) {
	case classMicro:
		return a.micro
	case classHeavy:
		return a.heavy
	default:
		return a.standard
	}
}

// all lists the queues in stable order for metrics exposition.
func (a *admission) all() []*costClassQueue {
	return []*costClassQueue{a.micro, a.standard, a.heavy}
}

// costClassQueue is one class's bounded waiting room and wait accounting.
type costClassQueue struct {
	name    string
	waiting chan struct{} // tokens: requests queued for a slot (not yet running)
	slots   chan struct{} // per-class concurrency cap; nil = bounded by the pool only

	mu          sync.Mutex
	waits       *histogram // observed queue waits, admitted and shed alike
	admitted    uint64
	shedFull    uint64 // shed instantly: waiting room full
	shedTimeout uint64 // shed after queueing: context expired before a slot freed
}

func newCostClassQueue(name string, depth, slots int) *costClassQueue {
	q := &costClassQueue{
		name:    name,
		waiting: make(chan struct{}, depth),
		waits:   newHistogram(latencyBuckets),
	}
	if slots > 0 {
		q.slots = make(chan struct{}, slots)
	}
	return q
}

// tryEnter claims a waiting-room token without blocking; false means the
// class is saturated beyond its queue bound and the request must be shed
// immediately (429), before it costs the server anything further.
func (q *costClassQueue) tryEnter() bool {
	select {
	case q.waiting <- struct{}{}:
		return true
	default:
		q.mu.Lock()
		q.shedFull++
		q.mu.Unlock()
		return false
	}
}

// leave releases one waiting-room token: the request either reached a worker
// slot or was shed while queueing. Exactly one leave per successful tryEnter.
func (q *costClassQueue) leave() { <-q.waiting }

// acquire runs fn on the shared pool under this class's concurrency cap.
// The waiting-room token must already be held; fn itself must release it
// (via leave) as its first action so queue depth counts only waiters.
func (q *costClassQueue) acquire(ctx context.Context, pool *workpool.Pool, fn func()) error {
	if q.slots != nil {
		select {
		case q.slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		defer func() { <-q.slots }()
	}
	return pool.Do(ctx, fn)
}

// observeAdmitted records the queue wait of a request that reached a worker.
func (q *costClassQueue) observeAdmitted(waitSec float64) {
	q.mu.Lock()
	q.waits.observe(waitSec)
	q.admitted++
	q.mu.Unlock()
}

// observeShed records the queue wait of a request shed on context expiry —
// precisely the waits Retry-After must reflect: how long a caller queues
// here without being served.
func (q *costClassQueue) observeShed(waitSec float64) {
	q.mu.Lock()
	q.waits.observe(waitSec)
	q.shedTimeout++
	q.mu.Unlock()
}

// retryAfterSeconds estimates how long a retry should wait before this class
// is likely to have capacity: the p90 of observed queue waits scaled by the
// current backlog (each queued request ahead represents roughly one more
// wait), rounded up to whole seconds and clamped to [1, maxRetryAfterSec].
// With no observations yet it degrades to the 1-second floor. This is the
// load-aware replacement for the historical hardcoded Retry-After: 1 — an
// idle server still answers 1, a server with a deep saturated queue tells
// clients to stay away proportionally longer.
func (q *costClassQueue) retryAfterSeconds() int {
	q.mu.Lock()
	p90 := q.waits.quantile(0.9)
	q.mu.Unlock()
	backlog := len(q.waiting) + 1
	sec := int(math.Ceil(p90 * float64(backlog)))
	if sec < 1 {
		sec = 1
	}
	if sec > maxRetryAfterSec {
		sec = maxRetryAfterSec
	}
	return sec
}

// snapshot returns the counters for metrics exposition.
func (q *costClassQueue) snapshot() (waits histogram, admitted, shedFull, shedTimeout uint64, depth int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waits.clone(), q.admitted, q.shedFull, q.shedTimeout, len(q.waiting)
}

// admit is the leader-side admission path wrapped around one scheduling run:
// claim a waiting-room token (or shed 429), queue for a worker slot under
// ctx, then execute fn with the wait recorded. Returns the apiError to shed
// with, or nil if fn ran.
func (s *Server) admit(ctx context.Context, q *costClassQueue, fn func()) *apiError {
	if !q.tryEnter() {
		return tooBusy(q.retryAfterSeconds(),
			"%s-class waiting room is full (%d queued); shed before queueing", q.name, cap(q.waiting))
	}
	queued := time.Now()
	started := false
	err := q.acquire(ctx, s.pool, func() {
		q.leave() // out of the waiting room: executing now
		started = true
		q.observeAdmitted(time.Since(queued).Seconds())
		fn()
	})
	if err == nil {
		return nil
	}
	// Shed while queueing: release the token, then account the wait — it is
	// exactly the signal retryAfterSeconds feeds back to clients.
	if !started {
		q.leave()
	}
	waitSec := time.Since(queued).Seconds()
	q.observeShed(waitSec)
	s.metrics.recordQueueShed(waitSec)
	return overloaded("no worker slot within the request deadline: %v", err).
		withRetryAfter(q.retryAfterSeconds())
}
