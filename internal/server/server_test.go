package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lamps/internal/core"
	"lamps/internal/mpeg"
	"lamps/internal/power"
	"lamps/internal/server"
)

// newTestServer starts an httptest server around a fresh Server with quiet
// logging.
func newTestServer(t *testing.T, opts server.Options) *httptest.Server {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ts := httptest.NewServer(server.New(opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// post sends a /schedule request and returns status, body and the cache
// header.
func post(t *testing.T, ts *httptest.Server, reqBody any) (int, []byte, string) {
	t.Helper()
	var buf bytes.Buffer
	switch b := reqBody.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(reqBody); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/schedule", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get(server.CacheHeader)
}

// scheduleResp mirrors the response JSON for assertions.
type scheduleResp struct {
	Approach string `json:"approach"`
	Key      string `json:"key"`
	Graph    struct {
		Name  string `json:"name"`
		Tasks int    `json:"tasks"`
		Edges int    `json:"edges"`
	} `json:"graph"`
	NumProcs int `json:"num_procs"`
	Level    struct {
		Index  int     `json:"index"`
		Vdd    float64 `json:"vdd"`
		FreqHz float64 `json:"freq_hz"`
		Norm   float64 `json:"f_over_fmax"`
	} `json:"level"`
	Energy struct {
		TotalJ    float64 `json:"total_j"`
		ActiveJ   float64 `json:"active_j"`
		Shutdowns int     `json:"shutdowns"`
	} `json:"energy"`
	Deadline float64 `json:"deadline_sec"`
	Makespan float64 `json:"makespan_sec"`
	Tasks    []struct {
		Task         int    `json:"task"`
		Label        string `json:"label,omitempty"`
		Proc         int32  `json:"proc"`
		StartCycles  int64  `json:"start_cycles"`
		FinishCycles int64  `json:"finish_cycles"`
	} `json:"placement"`
	Stats struct {
		SchedulesBuilt  int `json:"schedules_built"`
		LevelsEvaluated int `json:"levels_evaluated"`
	} `json:"stats"`
}

func decodeResp(t *testing.T, body []byte) scheduleResp {
	t.Helper()
	var r scheduleResp
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("decoding response %q: %v", body, err)
	}
	return r
}

// diamondGraph is a small well-formed inline graph: a -> {b, c} -> d, with
// millisecond-scale weights at f_max.
func diamondGraph() map[string]any {
	return map[string]any{
		"name": "diamond",
		"tasks": []map[string]any{
			{"weight_cycles": 3_100_000, "label": "a"},
			{"weight_cycles": 6_200_000, "label": "b"},
			{"weight_cycles": 4_650_000, "label": "c"},
			{"weight_cycles": 3_100_000, "label": "d"},
		},
		"edges": [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
}

func scheduleReq(approach string, graph map[string]any, factor float64) map[string]any {
	return map[string]any{
		"approach":        approach,
		"graph":           graph,
		"deadline_factor": factor,
	}
}

func TestHappyPathEveryApproach(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	for _, approach := range []string{"ss", "lamps", "ss+ps", "lamps+ps", "limit-sf", "limit-mf"} {
		status, body, _ := post(t, ts, scheduleReq(approach, diamondGraph(), 2))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", approach, status, body)
		}
		r := decodeResp(t, body)
		if r.Energy.TotalJ <= 0 {
			t.Errorf("%s: non-positive energy %g", approach, r.Energy.TotalJ)
		}
		if r.Key == "" {
			t.Errorf("%s: empty cache key", approach)
		}
		if r.Graph.Tasks != 4 || r.Graph.Edges != 4 {
			t.Errorf("%s: graph summary %+v", approach, r.Graph)
		}
		isLimit := strings.HasPrefix(approach, "limit")
		if isLimit {
			if len(r.Tasks) != 0 {
				t.Errorf("%s: bounds must not return a placement", approach)
			}
			continue
		}
		if len(r.Tasks) != 4 {
			t.Errorf("%s: placement has %d tasks, want 4", approach, len(r.Tasks))
		}
		if r.NumProcs < 1 {
			t.Errorf("%s: num_procs = %d", approach, r.NumProcs)
		}
		if r.Makespan <= 0 || r.Makespan > r.Deadline*(1+1e-9) {
			t.Errorf("%s: makespan %g vs deadline %g", approach, r.Makespan, r.Deadline)
		}
	}
}

func TestSTGInput(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	stgText := "3\n0 0 0\n1 3100000 1 0\n2 6200000 1 1\n3 3100000 1 2\n4 0 1 3\n"
	status, body, _ := post(t, ts, map[string]any{
		"approach":     "ss",
		"stg":          stgText,
		"deadline_sec": 0.05,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	r := decodeResp(t, body)
	if r.Graph.Tasks != 3 {
		t.Errorf("graph has %d tasks, want 3 (dummies spliced)", r.Graph.Tasks)
	}
	// A chain occupies one processor.
	if r.NumProcs != 1 {
		t.Errorf("num_procs = %d, want 1", r.NumProcs)
	}
}

// TestCacheHitDeterminism asserts the core caching contract: the same
// problem twice yields byte-identical bodies, the second from the cache,
// and the hit counter increments.
func TestCacheHitDeterminism(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	req := scheduleReq("lamps+ps", diamondGraph(), 2)

	status1, body1, src1 := post(t, ts, req)
	if status1 != http.StatusOK || src1 != "miss" {
		t.Fatalf("first request: status %d, cache %q", status1, src1)
	}
	status2, body2, src2 := post(t, ts, req)
	if status2 != http.StatusOK || src2 != "hit" {
		t.Fatalf("second request: status %d, cache %q", status2, src2)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cache hit is not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	if hits := metricValue(t, ts, "lampsd_cache_hits_total"); hits < 1 {
		t.Errorf("lampsd_cache_hits_total = %g, want >= 1", hits)
	}

	// A structurally identical graph under a different name and labels must
	// also hit: names are presentation metadata.
	renamed := diamondGraph()
	renamed["name"] = "renamed-diamond"
	for _, tk := range renamed["tasks"].([]map[string]any) {
		delete(tk, "label")
	}
	_, _, src3 := post(t, ts, scheduleReq("lamps+ps", renamed, 2))
	if src3 != "hit" {
		t.Errorf("structurally identical renamed graph: cache %q, want hit", src3)
	}
}

func TestInfeasibleDeadlineIs422(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	for _, approach := range []string{"ss", "lamps", "limit-sf"} {
		status, body, _ := post(t, ts, map[string]any{
			"approach":     approach,
			"graph":        diamondGraph(),
			"deadline_sec": 1e-9, // far below CPL/f_max
		})
		if status != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422; body %s", approach, status, body)
		}
		var e struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Status != 422 || e.Error == "" {
			t.Errorf("%s: malformed error body %s", approach, body)
		}
	}
}

func TestMalformedRequestsAre400(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	cases := map[string]any{
		"bad json": `{"approach": "lamps",`,
		"cycle": scheduleReq("lamps", map[string]any{
			"tasks": []map[string]any{{"weight_cycles": 1}, {"weight_cycles": 2}},
			"edges": [][2]int{{0, 1}, {1, 0}},
		}, 2),
		"self edge": scheduleReq("lamps", map[string]any{
			"tasks": []map[string]any{{"weight_cycles": 1}},
			"edges": [][2]int{{0, 0}},
		}, 2),
		"duplicate edge": scheduleReq("lamps", map[string]any{
			"tasks": []map[string]any{{"weight_cycles": 1}, {"weight_cycles": 2}},
			"edges": [][2]int{{0, 1}, {0, 1}},
		}, 2),
		"edge out of range": scheduleReq("lamps", map[string]any{
			"tasks": []map[string]any{{"weight_cycles": 1}},
			"edges": [][2]int{{0, 5}},
		}, 2),
		"non-positive weight": scheduleReq("lamps", map[string]any{
			"tasks": []map[string]any{{"weight_cycles": 0}},
		}, 2),
		"empty graph": scheduleReq("lamps", map[string]any{
			"tasks": []map[string]any{},
		}, 2),
		"unknown approach": scheduleReq("warp-drive", diamondGraph(), 2),
		"unknown field": map[string]any{
			"approach": "lamps", "graph": diamondGraph(),
			"deadline_factor": 2, "surprise": true,
		},
		"both graph and stg": map[string]any{
			"approach": "lamps", "graph": diamondGraph(), "stg": "1\n",
			"deadline_factor": 2,
		},
		"no deadline":    map[string]any{"approach": "lamps", "graph": diamondGraph()},
		"both deadlines": map[string]any{"approach": "lamps", "graph": diamondGraph(), "deadline_sec": 1, "deadline_factor": 2},
		"malformed stg":  map[string]any{"approach": "lamps", "stg": "not a number\n", "deadline_factor": 2},
		"negative max_procs": map[string]any{
			"approach": "lamps", "graph": diamondGraph(),
			"deadline_factor": 2, "max_procs": -1,
		},
	}
	for name, req := range cases {
		status, body, _ := post(t, ts, req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", name, status, body)
		}
	}
}

func TestOversizedRequestsAre413(t *testing.T) {
	ts := newTestServer(t, server.Options{MaxTasks: 8, MaxBodyBytes: 64 << 10})

	tasks := make([]map[string]any, 9)
	for i := range tasks {
		tasks[i] = map[string]any{"weight_cycles": 1000}
	}
	status, body, _ := post(t, ts, scheduleReq("lamps", map[string]any{"tasks": tasks}, 2))
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("too many tasks: status %d, want 413; body %s", status, body)
	}

	// STG declaring more tasks than the limit, still within the body limit.
	var sb strings.Builder
	sb.WriteString("9\n0 0 0\n")
	for i := 1; i <= 9; i++ {
		fmt.Fprintf(&sb, "%d 1000 1 %d\n", i, i-1)
	}
	sb.WriteString("10 0 1 9\n")
	status, body, _ = post(t, ts, map[string]any{"approach": "ss", "stg": sb.String(), "deadline_factor": 2})
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized stg: status %d, want 413; body %s", status, body)
	}

	// A body over MaxBodyBytes entirely.
	big := `{"approach":"lamps","deadline_factor":2,"stg":"` + strings.Repeat("x", 70<<10) + `"}`
	status, body, _ = post(t, ts, big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413; body %s", status, body)
	}
}

// TestMPEGMatchesCLI is the serving-equals-library acceptance check: the
// MPEG example graph at a 2x deadline must produce exactly the result
// cmd/lamps prints for the same input. cmd/lamps delegates to core.Run with
// core.DeadlineFactor, so that is the reference computed here.
func TestMPEGMatchesCLI(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	g := mpeg.Fig9()
	spec := map[string]any{"name": "mpeg"}
	var tasks []map[string]any
	for v := 0; v < g.NumTasks(); v++ {
		tasks = append(tasks, map[string]any{"weight_cycles": g.Weight(v), "label": g.Label(v)})
	}
	var edges [][2]int
	for v := 0; v < g.NumTasks(); v++ {
		for _, s := range g.Succs(v) {
			edges = append(edges, [2]int{v, int(s)})
		}
	}
	spec["tasks"], spec["edges"] = tasks, edges

	m := power.Default70nm()
	cfg := core.DeadlineFactor(g, m, 2)
	for _, approach := range core.Approaches {
		want, err := core.Run(approach, g, cfg)
		if err != nil {
			t.Fatalf("core.Run(%s): %v", approach, err)
		}
		status, body, _ := post(t, ts, scheduleReq(approach, spec, 2))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", approach, status, body)
		}
		r := decodeResp(t, body)
		if !closeEnough(r.Energy.TotalJ, want.TotalEnergy()) {
			t.Errorf("%s: energy %g via HTTP, %g via core.Run", approach, r.Energy.TotalJ, want.TotalEnergy())
		}
		if r.NumProcs != want.NumProcs {
			t.Errorf("%s: num_procs %d via HTTP, %d via core.Run", approach, r.NumProcs, want.NumProcs)
		}
		if r.Level.Index != want.Level.Index {
			t.Errorf("%s: level %d via HTTP, %d via core.Run", approach, r.Level.Index, want.Level.Index)
		}
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// TestConcurrentMixedLoad fires 48 concurrent requests — duplicates of a
// handful of problems across approaches — and verifies every response is
// correct (matching an independently computed reference) and that the
// cache served at least one request. Run under -race this also proves the
// serving path is data-race free.
func TestConcurrentMixedLoad(t *testing.T) {
	ts := newTestServer(t, server.Options{Workers: 4})

	graphs := []map[string]any{diamondGraph()}
	{
		// A second, wider graph: fork-join over 6 parallel tasks.
		tasks := []map[string]any{{"weight_cycles": 3_100_000}}
		edges := [][2]int{}
		for i := 1; i <= 6; i++ {
			tasks = append(tasks, map[string]any{"weight_cycles": int64(i) * 1_550_000})
			edges = append(edges, [2]int{0, i})
		}
		tasks = append(tasks, map[string]any{"weight_cycles": 3_100_000})
		for i := 1; i <= 6; i++ {
			edges = append(edges, [2]int{i, 7})
		}
		graphs = append(graphs, map[string]any{"name": "forkjoin", "tasks": tasks, "edges": edges})
	}
	approaches := []string{"ss", "lamps", "ss+ps", "lamps+ps", "limit-sf", "limit-mf"}

	// Reference responses, computed sequentially first. This pre-warms the
	// cache, so the concurrent wave below is guaranteed some hits; its
	// duplicates exercise hit and single-flight paths concurrently.
	type problem struct {
		req  map[string]any
		want []byte
	}
	var problems []problem
	for _, g := range graphs {
		for _, a := range approaches {
			req := scheduleReq(a, g, 2)
			status, body, _ := post(t, ts, req)
			if status != http.StatusOK {
				t.Fatalf("reference %s: status %d, body %s", a, status, body)
			}
			problems = append(problems, problem{req, body})
		}
	}

	const concurrent = 48
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		p := problems[i%len(problems)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(p.req); err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/schedule", "application/json", &buf)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			if !bytes.Equal(body, p.want) {
				errs <- fmt.Errorf("response diverges from reference:\n%s\nvs\n%s", body, p.want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if hits := metricValue(t, ts, "lampsd_cache_hits_total"); hits <= 0 {
		t.Errorf("lampsd_cache_hits_total = %g, want > 0", hits)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: status %d, body %s", resp.StatusCode, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	resp, err := http.Get(ts.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /schedule: status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	ts := newTestServer(t, server.Options{})
	req := scheduleReq("lamps", diamondGraph(), 2)
	post(t, ts, req) // miss
	post(t, ts, req) // hit
	post(t, ts, map[string]any{"approach": "nope", "graph": diamondGraph(), "deadline_factor": 2})

	text := metricsText(t, ts)
	for _, want := range []string{
		`lampsd_requests_total{path="/schedule",code="200"} 2`,
		`lampsd_requests_total{path="/schedule",code="400"} 1`,
		"lampsd_cache_hits_total 1",
		"lampsd_cache_misses_total",
		"lampsd_schedules_built_total",
		"lampsd_levels_evaluated_total",
		`lampsd_schedule_seconds_count{approach="LAMPS"} 1`,
		"lampsd_cache_enabled 1",
		`lampsd_admission_admitted_total{class="standard"} 1`,
		`lampsd_admission_shed_total{class="standard",reason="queue-full"} 0`,
		`lampsd_admission_waiting{class="micro"} 0`,
		`lampsd_queue_wait_seconds_count{class="standard"} 1`,
		`lampsd_retry_after_hint_seconds{class="heavy"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	if v := metricValue(t, ts, "lampsd_schedules_built_total"); v <= 0 {
		t.Errorf("lampsd_schedules_built_total = %g, want > 0", v)
	}
}

// metricsText fetches /metrics.
func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one unlabelled counter/gauge value from /metrics.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metricsText(t, ts), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
