package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/graphhash"
	"lamps/internal/workpool"
)

// batchLine is one NDJSON line of the /v1/batch response stream: a result
// (or error) for the input line identified by Index, or — exactly once, at
// the end — the batch summary. Lines are emitted in completion order;
// clients reassemble input order via Index.
type batchLine struct {
	Index  *int            `json:"index,omitempty"`
	Status int             `json:"status,omitempty"`
	Cache  string          `json:"cache,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`

	Summary *batchSummary `json:"summary,omitempty"`
}

// batchSummary is the final line of every batch stream.
type batchSummary struct {
	Requests  int  `json:"requests"`
	Completed int  `json:"completed"`
	OK        int  `json:"ok"`
	Errors    int  `json:"errors"`
	Invalid   int  `json:"invalid"`
	CacheHits int  `json:"cache_hits"`
	Coalesced int  `json:"coalesced"`
	TimedOut  bool `json:"timed_out,omitempty"`
}

// batchItem is one decoded input line, either prepared for execution or
// already failed during decode/validation/graph construction.
type batchItem struct {
	approach string
	g        *dag.Graph
	cfg      core.Config
	key      string
	err      error // set for lines that can never execute
}

// handleBatch serves POST /v1/batch: N independent scheduling problems, one
// JSON object per input line (the exact /v1/schedule request schema), one
// result line per input plus a trailing summary (NDJSON out). This is the
// fleet-shaped endpoint: where /v1/sweep explores a grid over ONE graph,
// /v1/batch executes many unrelated problems — mixed graphs, approaches and
// deadlines — across the worker pool at one-request granularity.
//
// Every line goes through the same execute() path as /v1/schedule — cache
// lookup by canonical digest, single-flight coalescing, panic isolation —
// so a batch line's "result" field is byte-identical to the body an
// individual request for the same problem returns, and a batch warms the
// cache for single-shot traffic and vice versa.
//
// Isolation: a malformed line (unknown approach, invalid graph, wrong
// shape) yields an error line for its index and does not affect any other
// line; a panicking heuristic is confined to its line's 500. Cancellation:
// when the client disconnects (or the request deadline fires) mid-batch,
// lines not yet dispatched are never started; in-flight lines wind down
// under the usual waiter-refcounted run contexts.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	items, err := s.decodeBatch(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before the first (possibly slow) line so
		// clients can start reading the stream — and observe that the batch
		// was accepted — while early lines are still executing.
		flusher.Flush()
	}

	var (
		wmu     sync.Mutex
		sum     = batchSummary{Requests: len(items)}
		encFail error
	)
	writeLine := func(line batchLine) {
		// Pooled encoding: Encoder.Encode emits Marshal + '\n' byte for
		// byte, so the wire stream is unchanged — one Write per line, no
		// per-line marshal buffer.
		e := getEncoder()
		defer e.put()
		err := e.enc.Encode(&line)
		wmu.Lock()
		defer wmu.Unlock()
		if err != nil {
			// Unreachable for these types; recorded rather than swallowed.
			encFail = err
			return
		}
		w.Write(e.buf.Bytes())
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Emit invalid lines up front: they can never execute, so they must not
	// occupy pool slots or delay the valid lines behind them.
	for i := range items {
		if items[i].err == nil {
			continue
		}
		i := i
		ae := classify(items[i].err)
		writeLine(batchLine{Index: &i, Status: ae.status, Error: ae.msg})
		sum.Completed++
		sum.Invalid++
		sum.Errors++
		s.metrics.recordBatchLine(false)
	}

	workers := s.pool.Cap()
	mapErr := workpool.MapCtx(ctx, len(items), workers, func(i int) error {
		it := &items[i]
		if it.err != nil {
			return nil // already reported above
		}
		res := s.execute(ctx, it.key, it.approach, it.g, it.cfg)
		line := batchLine{Index: &i, Cache: res.source}
		wmu.Lock()
		sum.Completed++
		wmu.Unlock()
		if res.err != nil {
			ae := classify(res.err)
			line.Status, line.Error = ae.status, ae.msg
			s.metrics.recordBatchLine(false)
			wmu.Lock()
			sum.Errors++
			wmu.Unlock()
		} else {
			// Same trailing-newline convention as the sweep stream: the
			// embedded raw message is the /v1/schedule body minus its final
			// newline, nothing else.
			line.Status = res.status
			line.Result = json.RawMessage(trimNewline(res.body))
			s.metrics.recordBatchLine(true)
			wmu.Lock()
			sum.OK++
			switch res.source {
			case "hit":
				sum.CacheHits++
			case "shared":
				sum.Coalesced++
			}
			wmu.Unlock()
		}
		writeLine(line)
		return nil // line failures never abort the batch
	})
	// The line callback never returns an error, so mapErr is necessarily the
	// context expiring mid-batch; lines that were never dispatched are
	// reflected by Completed < Requests.
	if mapErr != nil {
		sum.TimedOut = true
	}
	if encFail != nil {
		s.log.Error("encoding batch line", "err", encFail)
	}
	s.metrics.recordBatch(len(items))
	writeLine(batchLine{Summary: &sum})
}

// decodeBatch reads the NDJSON input stream and prepares every line for
// execution. Whole-request failures (empty batch, too many lines, body over
// the byte limit, malformed JSON that desynchronises the stream) return an
// error; per-line failures are recorded in that line's slot.
func (s *Server) decodeBatch(body io.Reader) ([]batchItem, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var items []batchItem
	for dec.More() {
		if len(items) >= s.opts.BatchMaxItems {
			return nil, tooLarge("batch has more than %d request lines", s.opts.BatchMaxItems)
		}
		var req scheduleRequest
		if err := dec.Decode(&req); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return nil, tooLarge("request body exceeds the %d-byte limit", mbe.Limit)
			}
			var typ *json.UnmarshalTypeError
			if errors.As(err, &typ) || isUnknownField(err) {
				// Well-formed JSON with the wrong shape is a per-line error;
				// the stream stays in sync because Decode consumed the value.
				items = append(items, batchItem{err: badRequest("line %d: %v", len(items), err)})
				continue
			}
			// Malformed JSON desynchronises the stream: nothing after it can
			// be trusted to start at a value boundary, so reject the batch.
			return nil, badRequest("line %d: malformed JSON: %v", len(items), err)
		}
		items = append(items, s.prepareBatchLine(&req))
	}
	if len(items) == 0 {
		return nil, badRequest("batch is empty: send one request object per line")
	}
	return items, nil
}

// isUnknownField reports whether err is the (unexported, string-only) error
// json.Decoder returns for an unknown field under DisallowUnknownFields.
// The decoder has consumed the enclosing object by then, so the stream is
// still aligned on a value boundary and the batch can continue.
func isUnknownField(err error) bool {
	return strings.Contains(err.Error(), "unknown field")
}

// prepareBatchLine validates one input line and resolves its approach,
// graph, config and cache key — the same pipeline handleSchedule runs, so
// a batch line and a single-shot request agree on every derived value,
// including the canonical digest the cache is keyed by.
func (s *Server) prepareBatchLine(req *scheduleRequest) batchItem {
	if err := req.validate(); err != nil {
		return batchItem{err: err}
	}
	approach, err := canonicalApproach(req.Approach)
	if err != nil {
		return batchItem{err: err}
	}
	g, err := s.buildGraph(req.Graph, req.STG)
	if err != nil {
		return batchItem{err: err}
	}
	cfg, err := s.config(req, g)
	if err != nil {
		return batchItem{err: err}
	}
	return batchItem{
		approach: approach,
		g:        g,
		cfg:      cfg,
		key:      graphhash.Sum(problem(approach, g, cfg)),
	}
}
