package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// nullResponseWriter discards the response while reusing one header map, so
// AllocsPerRun sees only the handler's own allocations.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// TestScheduleWarmCacheHitAllocBound pins the handler-layer allocation cost
// of a warm cache hit on POST /v1/schedule. A hit never renders or marshals
// anything — the cached bytes go straight to the wire — so the remaining
// allocations are request decoding, graph construction and digest hashing.
// The budget is a bound with headroom over the measured steady state, not
// zero; its job is to fail if the hit path ever starts re-encoding the
// response. `make alloc-gate` enforces the strict bound (no -race).
func TestScheduleWarmCacheHitAllocBound(t *testing.T) {
	srv := New(Options{})
	payload := []byte(`{"approach":"lamps","graph":{"tasks":[{"weight_cycles":400},{"weight_cycles":300},{"weight_cycles":200},{"weight_cycles":100}],"edges":[[0,1],[0,2],[1,3],[2,3]]},"deadline_factor":1.8}`)

	warm := httptest.NewRecorder()
	srv.handleSchedule(warm, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(payload)))
	if warm.Code != http.StatusOK {
		t.Fatalf("warming request: status %d, body %s", warm.Code, warm.Body.String())
	}
	hit := httptest.NewRecorder()
	srv.handleSchedule(hit, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(payload)))
	if hit.Code != http.StatusOK || hit.Header().Get(CacheHeader) != "hit" {
		t.Fatalf("second request: status %d, cache %q, want 200 hit", hit.Code, hit.Header().Get(CacheHeader))
	}
	if !bytes.Equal(hit.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("cache hit bytes differ from the rendered miss")
	}

	// Steady state: reuse the request, body reader and header map so the
	// measurement covers the handler, not the test harness.
	rd := bytes.NewReader(payload)
	body := io.NopCloser(rd)
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", body)
	w := &nullResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(payload)
		req.Body = body // handleSchedule wraps Body in MaxBytesReader
		srv.handleSchedule(w, req)
	})

	budget := 120.0
	if raceEnabled {
		budget = 400
	}
	t.Logf("warm cache hit: %.1f allocs/request (budget %.0f)", allocs, budget)
	if allocs > budget {
		t.Fatalf("warm cache hit: %.1f allocs/request, budget %.0f", allocs, budget)
	}
}
