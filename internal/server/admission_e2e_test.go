package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lamps/internal/server"
)

// shedResult is one shed response's status and Retry-After header.
type shedResult struct {
	status     int
	retryAfter int
}

func postForShed(t *testing.T, ts *httptest.Server, req map[string]any) shedResult {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Error(err)
		return shedResult{}
	}
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", &buf)
	if err != nil {
		t.Error(err)
		return shedResult{}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ra := 0
	if h := resp.Header.Get("Retry-After"); h != "" {
		ra, err = strconv.Atoi(h)
		if err != nil {
			t.Errorf("non-integer Retry-After %q", h)
		}
	}
	return shedResult{resp.StatusCode, ra}
}

// TestRetryAfterReflectsQueueWait is the regression test for the hardcoded
// Retry-After: 1. A single-worker server pinned by a slow run sheds a burst
// of queued requests after the 150ms request deadline; with ~24 requests
// queueing ~150ms each, the hint derived from the observed queue-wait
// histogram (p90 × backlog) must exceed the historical constant 1 for at
// least the early-shed responses, which still see a deep backlog.
func TestRetryAfterReflectsQueueWait(t *testing.T) {
	ts := newTestServer(t, server.Options{
		Workers:        1,
		CacheSize:      -1,
		RequestTimeout: 150 * time.Millisecond,
		Runner:         slowRunner(2 * time.Second),
	})

	// Pin the only worker slot with an uncancellable 2s run.
	pin := make(chan shedResult, 1)
	go func() { pin <- postForShed(t, ts, scheduleReq("ss", diamondGraph(), 2)) }()
	time.Sleep(50 * time.Millisecond)

	// Flood with distinct problems (deadline_factor varies the digest) that
	// all queue behind it and shed together at the request deadline.
	const burst = 24
	results := make([]shedResult, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = postForShed(t, ts, scheduleReq("ss", diamondGraph(), 2+float64(i)*0.01))
		}(i)
	}
	wg.Wait()

	maxRetryAfter := 0
	for _, r := range results {
		switch r.status {
		case http.StatusServiceUnavailable, http.StatusTooManyRequests, http.StatusGatewayTimeout:
			if r.retryAfter < 1 {
				t.Errorf("shed response %d missing Retry-After", r.status)
			}
			if r.retryAfter > maxRetryAfter {
				maxRetryAfter = r.retryAfter
			}
		default:
			t.Errorf("unexpected status %d during saturation", r.status)
		}
	}
	if maxRetryAfter <= 1 {
		t.Errorf("max Retry-After across %d shed responses = %d; the hint is not "+
			"derived from observed queue wait (hardcoded-1 regression)", burst, maxRetryAfter)
	}

	if r := <-pin; r.status != http.StatusGatewayTimeout {
		t.Errorf("pinned request: status %d, want 504", r.status)
	}
}

// TestQueueFullReturns429 pins the waiting-room bound: with QueueDepth 1 and
// the only worker pinned, the first excess request queues and the second is
// shed instantly with 429 + Retry-After, before costing the server anything.
func TestQueueFullReturns429(t *testing.T) {
	ts := newTestServer(t, server.Options{
		Workers:        1,
		QueueDepth:     1,
		CacheSize:      -1,
		RequestTimeout: 400 * time.Millisecond,
		Runner:         slowRunner(2 * time.Second),
	})

	done := make(chan shedResult, 2)
	go func() { done <- postForShed(t, ts, scheduleReq("ss", diamondGraph(), 2)) }()
	time.Sleep(100 * time.Millisecond) // request A holds the only worker slot
	go func() { done <- postForShed(t, ts, scheduleReq("ss", diamondGraph(), 2.1)) }()
	time.Sleep(100 * time.Millisecond) // request B holds the only waiting-room token

	r := postForShed(t, ts, scheduleReq("ss", diamondGraph(), 2.2))
	if r.status != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", r.status)
	}
	if r.retryAfter < 1 {
		t.Errorf("429 response missing Retry-After")
	}

	text := metricsText(t, ts)
	if !strings.Contains(text, `lampsd_admission_shed_total{class="standard",reason="queue-full"} 1`) {
		t.Errorf("metrics missing queue-full shed counter:\n%s", grepMetrics(text, "lampsd_admission"))
	}
	<-done
	<-done
}

// grepMetrics filters exposition text to lines containing substr, keeping
// failure output readable.
func grepMetrics(text, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}
