package server_test

import (
	"context"
	"testing"
	"time"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/server"
)

// hangingRunner blocks runs of one approach until their run context is
// cancelled (a worst-case-slow but cooperative heuristic) and executes every
// other approach for real.
func hangingRunner(approach string) func(context.Context, string, *dag.Graph, core.Config) (*core.Result, error) {
	return func(ctx context.Context, a string, g *dag.Graph, cfg core.Config) (*core.Result, error) {
		if a == approach {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return core.RunCtx(ctx, a, g, cfg)
	}
}

// TestTimedOutRunFreesWorkerSlot is the capacity-reclamation e2e test: with
// a single worker, a request that 504s must hand its slot back — because the
// abandoned run is cancelled — instead of blocking every later request
// behind a detached run. Run with -race; the whole path is concurrent.
func TestTimedOutRunFreesWorkerSlot(t *testing.T) {
	ts := newTestServer(t, server.Options{
		Workers:        1,
		RequestTimeout: 300 * time.Millisecond,
		Runner:         hangingRunner(core.ApproachSS),
	})

	// 1: the hanging run consumes the only worker slot until it times out.
	hungReq := scheduleReq(core.ApproachSS, diamondGraph(), 2)
	status, body, _ := post(t, ts, hungReq)
	if status != 504 {
		t.Fatalf("hanging request: status %d (%s), want 504", status, body)
	}

	// 2: a different problem must get the slot immediately — if the
	// abandoned run were still holding it, this would 503 (or 504) too.
	status, body, _ = post(t, ts, scheduleReq(core.ApproachLAMPS, diamondGraph(), 2))
	if status != 200 {
		t.Fatalf("request after timeout: status %d (%s), want 200 — the cancelled run did not free its worker slot", status, body)
	}

	if got := metricValue(t, ts, "lampsd_runs_cancelled_total"); got < 1 {
		t.Errorf("lampsd_runs_cancelled_total = %g, want >= 1", got)
	}

	// 3: the cancelled run must not have warmed the cache: retrying the
	// same problem hangs afresh (no instant cache hit) and 504s again.
	start := time.Now()
	status, _, cacheHdr := post(t, ts, hungReq)
	if status != 504 {
		t.Errorf("retried hanging request: status %d, want 504 (a cached entry would return 200)", status)
	}
	if cacheHdr == "hit" {
		t.Error("retried hanging request was served from cache; cancelled runs must not cache")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("retried hanging request returned after %v; a full fresh timeout was expected", elapsed)
	}
}
