package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("A"))
	v, ok := c.Get("a")
	if !ok || string(v) != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a")              // a becomes most recent
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(2)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if v, _ := c.Get("a"); string(v) != "new" {
		t.Errorf("Get(a) = %q, want new", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c.Len())
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len() = %d, want 0", c.Len())
	}
}

// TestDisabledCacheReportsNoTraffic pins the stats contract of a disabled
// cache: lookups against it are not misses — a cache that was never in play
// must not report a 0% hit rate. Enabled distinguishes the two states.
func TestDisabledCacheReportsNoTraffic(t *testing.T) {
	c := New(0)
	if c.Enabled() {
		t.Error("zero-capacity cache reports Enabled")
	}
	c.Put("a", []byte("A"))
	for i := 0; i < 5; i++ {
		c.Get("a")
	}
	hits, misses, evictions := c.Stats()
	if hits != 0 || misses != 0 || evictions != 0 {
		t.Errorf("disabled cache stats = %d/%d/%d, want all zero", hits, misses, evictions)
	}

	on := New(2)
	if !on.Enabled() {
		t.Error("capacity-2 cache reports disabled")
	}
	on.Get("a")
	if _, misses, _ := on.Stats(); misses != 1 {
		t.Errorf("enabled cache misses = %d, want 1", misses)
	}
}

// TestConcurrent hammers the cache from many goroutines; run under -race it
// proves the locking is sound.
func TestConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%40)
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("Get(%s) = %q", key, v)
				}
				c.Put(key, []byte(key))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("Len() = %d exceeds capacity 16", c.Len())
	}
}
