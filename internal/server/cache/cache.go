// Package cache implements the scheduling-result cache of the serving
// layer: a concurrency-safe LRU keyed by the canonical problem digest of
// internal/graphhash and holding fully rendered response bodies. Storing
// immutable bytes (rather than live result structs) makes cache hits
// byte-identical to the original response and safe to write from any number
// of goroutines without copying.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used cache from string keys to
// immutable byte slices. The zero value is not usable; create one with New.
// All methods are safe for concurrent use.
type LRU struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key string
	val []byte
}

// New returns an empty cache holding at most capacity entries. A capacity
// of 0 (or negative) disables caching: Put is a no-op and Get always
// misses, which keeps the serving code free of special cases.
func New(capacity int) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and true on a hit, marking the entry most
// recently used. Callers must not modify the returned slice. A disabled
// cache reports no traffic: lookups against it count neither hits nor
// misses, so its stats stay zero instead of suggesting a 0% hit rate on a
// cache that was never in play.
func (c *LRU) Get(key string) ([]byte, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// Put stores the value under key, replacing any existing entry and evicting
// the least recently used entry when over capacity. The cache takes
// ownership of val; callers must not modify it afterwards.
func (c *LRU) Put(key string, val []byte) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Enabled reports whether the cache stores anything at all; false means it
// was created with capacity <= 0 and every operation is a silent no-op.
func (c *LRU) Enabled() bool { return c.cap > 0 }

// Stats reports lifetime hit, miss and eviction counts.
func (c *LRU) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
