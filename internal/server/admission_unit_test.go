package server

import (
	"testing"

	"lamps/internal/core"
)

func TestCostClass(t *testing.T) {
	cases := []struct {
		approach string
		numTasks int
		want     string
	}{
		{core.ApproachLimitSF, 4, classMicro},
		{core.ApproachLimitMF, 5000, classMicro}, // bounds are micro at any size
		{"SS", 4, classStandard},
		{"LAMPS+PS", heavyTaskThreshold - 1, classStandard},
		{"SS", heavyTaskThreshold, classHeavy},
		{"LAMPS+PS", 5000, classHeavy},
	}
	for _, c := range cases {
		if got := costClass(c.approach, c.numTasks); got != c.want {
			t.Errorf("costClass(%q, %d) = %q, want %q", c.approach, c.numTasks, got, c.want)
		}
	}
}

func TestAdmissionClassRouting(t *testing.T) {
	a := newAdmission(4, 8)
	if q := a.class("SS", 4); q != a.standard {
		t.Errorf("SS/4 routed to %q, want standard", q.name)
	}
	if q := a.class(core.ApproachLimitSF, 5000); q != a.micro {
		t.Errorf("LIMIT-SF/5000 routed to %q, want micro", q.name)
	}
	if q := a.class("LAMPS+PS", 5000); q != a.heavy {
		t.Errorf("LAMPS+PS/5000 routed to %q, want heavy", q.name)
	}
}

func TestHeavyClassSlotCap(t *testing.T) {
	if got := cap(newAdmission(8, 4).heavy.slots); got != 4 {
		t.Errorf("heavy slots for 8 workers = %d, want 4", got)
	}
	// A one-worker pool still grants the heavy class one slot rather than zero.
	if got := cap(newAdmission(1, 4).heavy.slots); got != 1 {
		t.Errorf("heavy slots for 1 worker = %d, want 1", got)
	}
	if newAdmission(8, 4).standard.slots != nil {
		t.Error("standard class should be bounded by the pool only")
	}
}

// TestRetryAfterSeconds pins the load-aware hint: 1 second when idle, the
// p90 observed wait scaled by the backlog when loaded, clamped to
// maxRetryAfterSec — never the historical hardcoded constant under load.
func TestRetryAfterSeconds(t *testing.T) {
	q := newCostClassQueue(classStandard, 8, 0)

	if got := q.retryAfterSeconds(); got != 1 {
		t.Errorf("idle retry-after = %d, want the 1-second floor", got)
	}

	// Ten observed waits of ~2s: p90 lands in the 2.5s bucket. With an
	// empty waiting room the backlog factor is 1, so the hint is ceil(2.5).
	for i := 0; i < 10; i++ {
		q.observeShed(2.0)
	}
	if got := q.retryAfterSeconds(); got != 3 {
		t.Errorf("retry-after with p90=2.5s, empty queue = %d, want 3", got)
	}

	// Three queued requests ahead: backlog factor 4 → ceil(2.5 * 4) = 10.
	for i := 0; i < 3; i++ {
		if !q.tryEnter() {
			t.Fatal("tryEnter failed below capacity")
		}
	}
	if got := q.retryAfterSeconds(); got != 10 {
		t.Errorf("retry-after with p90=2.5s, 3 queued = %d, want 10", got)
	}

	// Pathological waits and a deep backlog clamp to maxRetryAfterSec
	// rather than telling clients to sleep for hours. Waits beyond the
	// largest finite bucket clamp to that bound (10s), so 15 queued ahead
	// gives ceil(10 * 16) = 160 → 120.
	deep := newCostClassQueue(classHeavy, 16, 0)
	for i := 0; i < 10; i++ {
		deep.observeShed(100.0)
	}
	for i := 0; i < 15; i++ {
		if !deep.tryEnter() {
			t.Fatal("tryEnter failed below capacity")
		}
	}
	if got := deep.retryAfterSeconds(); got != maxRetryAfterSec {
		t.Errorf("retry-after under pathological load = %d, want clamp %d", got, maxRetryAfterSec)
	}
}

func TestWaitingRoomBound(t *testing.T) {
	q := newCostClassQueue(classStandard, 2, 0)
	if !q.tryEnter() || !q.tryEnter() {
		t.Fatal("tryEnter failed below capacity")
	}
	if q.tryEnter() {
		t.Fatal("tryEnter succeeded beyond capacity")
	}
	_, _, shedFull, _, depth := q.snapshot()
	if shedFull != 1 || depth != 2 {
		t.Errorf("shedFull = %d, depth = %d, want 1 and 2", shedFull, depth)
	}
	q.leave()
	if !q.tryEnter() {
		t.Fatal("tryEnter failed after leave freed a token")
	}
}
