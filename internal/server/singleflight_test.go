package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// await waits for a flight to publish its result, failing the test on
// timeout instead of wedging the suite.
func await(t *testing.T, c *flightCall, what string) {
	t.Helper()
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: flight never finished", what)
	}
}

// TestFlightGroupCoalesces proves that calls arriving while a flight is in
// progress join it rather than run fn again, and share its bytes.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	var execs int32
	gate := make(chan struct{})

	leaderCall, leader := g.join(ctx, "k")
	if !leader {
		t.Fatal("first caller was not the leader")
	}
	go g.run("k", leaderCall, func(context.Context) (int, []byte, error) {
		atomic.AddInt32(&execs, 1)
		<-gate
		return 200, []byte("payload"), nil
	})

	const waiters = 10
	results := make([][]byte, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		c, lead := g.join(ctx, "k")
		if lead {
			t.Fatalf("waiter %d was promoted to leader", i)
		}
		if c != leaderCall {
			t.Fatalf("waiter %d joined a different call", i)
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			<-c.done
			results[slot] = c.val
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := atomic.LoadInt32(&execs); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
	for i, r := range results {
		if string(r) != "payload" {
			t.Errorf("slot %d got %q", i, r)
		}
	}
}

// TestFlightGroupDistinctKeys ensures no coalescing across keys.
func TestFlightGroupDistinctKeys(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	var execs int32
	for i := 0; i < 4; i++ {
		c, leader := g.join(ctx, string(rune('a'+i)))
		if !leader {
			t.Fatalf("key %d: not leader despite fresh key", i)
		}
		g.run(string(rune('a'+i)), c, func(context.Context) (int, []byte, error) {
			atomic.AddInt32(&execs, 1)
			return 200, []byte{byte(i)}, nil
		})
		await(t, c, "run")
		if c.err != nil || len(c.val) != 1 || c.val[0] != byte(i) {
			t.Errorf("key %d: val %v, err %v", i, c.val, c.err)
		}
	}
	if execs != 4 {
		t.Errorf("fn executed %d times, want 4", execs)
	}
}

// TestFlightGroupPanic is the regression test for the panic deadlock: a
// panicking fn must (1) propagate the panic out of run for the leader's
// goroutine to handle, (2) fail waiters with errFlightPanic instead of
// hanging them on the never-closed done channel, and (3) leave the group
// clean so the next call for the same key executes afresh.
func TestFlightGroupPanic(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	inFn := make(chan struct{})
	release := make(chan struct{})

	c, _ := g.join(ctx, "k")
	leaderDone := make(chan any, 1)
	go func() {
		var recovered any
		defer func() { leaderDone <- recovered }()
		defer func() { recovered = recover() }()
		g.run("k", c, func(context.Context) (int, []byte, error) {
			close(inFn)
			<-release
			panic("scheduler exploded")
		})
	}()
	<-inFn

	w, leader := g.join(ctx, "k")
	if leader || w != c {
		t.Fatal("waiter did not coalesce onto the in-flight call")
	}
	close(release)

	select {
	case rec := <-leaderDone:
		if rec == nil || rec.(string) != "scheduler exploded" {
			t.Errorf("leader recovered %v, want the original panic value", rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run never returned: cleanup did not run")
	}
	await(t, w, "waiter")
	if !errors.Is(w.err, errFlightPanic) {
		t.Errorf("waiter err = %v, want errFlightPanic", w.err)
	}

	// The key must be usable again: a fresh call runs its own fn.
	c2, leader := g.join(ctx, "k")
	if !leader {
		t.Fatal("post-panic call did not become leader: the dead call was left in the map")
	}
	g.run("k", c2, func(context.Context) (int, []byte, error) {
		return 200, []byte("recovered"), nil
	})
	await(t, c2, "post-panic call")
	if c2.status != 200 || string(c2.val) != "recovered" || c2.err != nil {
		t.Errorf("post-panic call: status %d, val %q, err %v", c2.status, c2.val, c2.err)
	}
}

// TestFlightGroupAbandonCancelsRun is the capacity-reclamation contract:
// when the last waiter departs, the run context is cancelled so a
// cooperative fn can abort instead of completing detached.
func TestFlightGroupAbandonCancelsRun(t *testing.T) {
	var g flightGroup
	c, leader := g.join(context.Background(), "k")
	if !leader {
		t.Fatal("not leader")
	}
	go g.run("k", c, func(runCtx context.Context) (int, []byte, error) {
		<-runCtx.Done() // a cooperative heuristic observes the cancellation
		return 0, nil, runCtx.Err()
	})
	g.depart(c) // the only waiter gives up
	await(t, c, "abandoned run")
	if !errors.Is(c.err, context.Canceled) {
		t.Errorf("abandoned run err = %v, want context.Canceled", c.err)
	}
}

// TestFlightGroupSurvivingWaiterKeepsRunAlive: one waiter departing must not
// cancel a run that another waiter still needs.
func TestFlightGroupSurvivingWaiterKeepsRunAlive(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	gate := make(chan struct{})

	c, _ := g.join(ctx, "k")
	go g.run("k", c, func(runCtx context.Context) (int, []byte, error) {
		select {
		case <-gate:
			return 200, []byte("kept"), nil
		case <-runCtx.Done():
			return 0, nil, runCtx.Err()
		}
	})
	if _, leader := g.join(ctx, "k"); leader {
		t.Fatal("second caller did not coalesce")
	}
	g.depart(c) // the first waiter gives up; the second remains
	close(gate)
	await(t, c, "run with surviving waiter")
	if c.err != nil || string(c.val) != "kept" {
		t.Errorf("run aborted despite a surviving waiter: val %q, err %v", c.val, c.err)
	}
	g.depart(c) // the survivor reads the result and departs after finish: no-op
}
