package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces proves that calls arriving while a flight is in
// progress run fn once and share its bytes. Synchronisation follows the
// pattern of golang.org/x/sync/singleflight's own tests: the leader blocks
// inside fn until every waiter has announced itself (plus a scheduling
// grace period), so the waiters coalesce onto the in-flight call.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var execs, sharedCount, entered int32
	gate := make(chan struct{})
	started := make(chan struct{})

	const waiters = 10
	results := make([][]byte, waiters+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		status, val, err, shared := g.Do("k", func() (int, []byte, error) {
			atomic.AddInt32(&execs, 1)
			close(started)
			<-gate
			return 200, []byte("payload"), nil
		})
		if err != nil || status != 200 || shared {
			t.Errorf("leader: status %d, err %v, shared %v", status, err, shared)
		}
		results[0] = val
	}()
	<-started

	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			atomic.AddInt32(&entered, 1)
			_, val, err, shared := g.Do("k", func() (int, []byte, error) {
				atomic.AddInt32(&execs, 1)
				return 200, []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				atomic.AddInt32(&sharedCount, 1)
			}
			results[slot] = val
		}(i)
	}
	for atomic.LoadInt32(&entered) != waiters {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond) // let the announced waiters reach Do's mutex
	close(gate)
	wg.Wait()

	if got := atomic.LoadInt32(&execs); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
	for i, r := range results {
		if string(r) != "payload" {
			t.Errorf("slot %d got %q", i, r)
		}
	}
	if sharedCount != waiters {
		t.Errorf("%d shared results, want %d", sharedCount, waiters)
	}
}

// TestFlightGroupDistinctKeys ensures no coalescing across keys.
func TestFlightGroupDistinctKeys(t *testing.T) {
	var g flightGroup
	var execs int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, val, err, _ := g.Do(string(rune('a'+i)), func() (int, []byte, error) {
				atomic.AddInt32(&execs, 1)
				return 200, []byte{byte(i)}, nil
			})
			if err != nil || len(val) != 1 || val[0] != byte(i) {
				t.Errorf("key %d: val %v, err %v", i, val, err)
			}
		}(i)
	}
	wg.Wait()
	if execs != 4 {
		t.Errorf("fn executed %d times, want 4", execs)
	}
}
