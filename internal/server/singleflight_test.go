package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces proves that calls arriving while a flight is in
// progress run fn once and share its bytes. Synchronisation follows the
// pattern of golang.org/x/sync/singleflight's own tests: the leader blocks
// inside fn until every waiter has announced itself (plus a scheduling
// grace period), so the waiters coalesce onto the in-flight call.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	var execs, sharedCount, entered int32
	gate := make(chan struct{})
	started := make(chan struct{})

	const waiters = 10
	results := make([][]byte, waiters+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		status, val, err, shared := g.Do(ctx, "k", func() (int, []byte, error) {
			atomic.AddInt32(&execs, 1)
			close(started)
			<-gate
			return 200, []byte("payload"), nil
		})
		if err != nil || status != 200 || shared {
			t.Errorf("leader: status %d, err %v, shared %v", status, err, shared)
		}
		results[0] = val
	}()
	<-started

	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			atomic.AddInt32(&entered, 1)
			_, val, err, shared := g.Do(ctx, "k", func() (int, []byte, error) {
				atomic.AddInt32(&execs, 1)
				return 200, []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				atomic.AddInt32(&sharedCount, 1)
			}
			results[slot] = val
		}(i)
	}
	for atomic.LoadInt32(&entered) != waiters {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond) // let the announced waiters reach Do's mutex
	close(gate)
	wg.Wait()

	if got := atomic.LoadInt32(&execs); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
	for i, r := range results {
		if string(r) != "payload" {
			t.Errorf("slot %d got %q", i, r)
		}
	}
	if sharedCount != waiters {
		t.Errorf("%d shared results, want %d", sharedCount, waiters)
	}
}

// TestFlightGroupDistinctKeys ensures no coalescing across keys.
func TestFlightGroupDistinctKeys(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	var execs int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, val, err, _ := g.Do(ctx, string(rune('a'+i)), func() (int, []byte, error) {
				atomic.AddInt32(&execs, 1)
				return 200, []byte{byte(i)}, nil
			})
			if err != nil || len(val) != 1 || val[0] != byte(i) {
				t.Errorf("key %d: val %v, err %v", i, val, err)
			}
		}(i)
	}
	wg.Wait()
	if execs != 4 {
		t.Errorf("fn executed %d times, want 4", execs)
	}
}

// TestFlightGroupPanic is the regression test for the panic deadlock: a
// panicking fn must (1) propagate the panic to the initiating caller,
// (2) fail concurrent waiters with errFlightPanic instead of hanging them
// on the never-closed done channel, and (3) leave the group clean so the
// next call for the same key executes afresh. Every wait is guarded by a
// timeout so a regression fails instead of wedging the suite.
func TestFlightGroupPanic(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	inFn := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		var recovered any
		defer func() { leaderDone <- recovered }()
		defer func() { recovered = recover() }()
		g.Do(ctx, "k", func() (int, []byte, error) {
			close(inFn)
			<-release
			panic("scheduler exploded")
		})
	}()
	<-inFn

	waiterDone := make(chan error, 1)
	go func() {
		_, _, err, shared := g.Do(ctx, "k", func() (int, []byte, error) {
			t.Error("waiter executed fn despite an in-flight call")
			return 0, nil, nil
		})
		if !shared {
			t.Error("waiter was not marked shared")
		}
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block on done
	close(release)

	select {
	case rec := <-leaderDone:
		if rec == nil || rec.(string) != "scheduler exploded" {
			t.Errorf("leader recovered %v, want the original panic value", rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader never returned: cleanup did not run")
	}
	select {
	case err := <-waiterDone:
		if !errors.Is(err, errFlightPanic) {
			t.Errorf("waiter err = %v, want errFlightPanic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung: done channel was never closed after the panic")
	}

	// The key must be usable again: a fresh call runs its own fn.
	done := make(chan struct{})
	go func() {
		defer close(done)
		status, val, err, shared := g.Do(ctx, "k", func() (int, []byte, error) {
			return 200, []byte("recovered"), nil
		})
		if status != 200 || string(val) != "recovered" || err != nil || shared {
			t.Errorf("post-panic call: status %d, val %q, err %v, shared %v", status, val, err, shared)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-panic call hung: the dead call was left in the map")
	}
}

// TestFlightGroupWaiterContext verifies a waiter gives up with ctx.Err()
// when its context expires while the flight is still running, without
// disturbing the flight itself.
func TestFlightGroupWaiterContext(t *testing.T) {
	var g flightGroup
	inFn := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		g.Do(context.Background(), "k", func() (int, []byte, error) {
			close(inFn)
			<-release
			return 200, []byte("late"), nil
		})
	}()
	<-inFn

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err, shared := g.Do(ctx, "k", func() (int, []byte, error) {
		t.Error("waiter executed fn despite an in-flight call")
		return 0, nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) || !shared {
		t.Errorf("waiter: err %v, shared %v; want DeadlineExceeded, true", err, shared)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("waiter blocked %v past its deadline", waited)
	}

	close(release)
	select {
	case <-leaderDone:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never finished")
	}
}
