package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/stg"
)

// apiError is an error with a definite HTTP status. Every request-handling
// path converts domain errors into one of these before writing the
// response, so clients can rely on the status code: 400 for malformed
// input, 413 for oversized input, 422 for well-formed but unschedulable
// problems, 503 for shed load. Anything that escapes classification is a
// genuine server bug and surfaces as 500.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func tooLarge(format string, args ...any) *apiError {
	return &apiError{status: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf(format, args...)}
}

func unprocessable(format string, args ...any) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, args...)}
}

// classify maps domain errors onto API errors:
//
//   - structurally invalid input (cycles, self edges, duplicate edges, bad
//     weights, malformed STG text, unknown approaches, invalid configs)
//     → 400: the request can never succeed as written;
//   - infeasible deadlines → 422: the request is well-formed, the problem
//     instance has no solution;
//   - anything already classified passes through.
func classify(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, core.ErrInfeasible):
		return unprocessable("%v", err)
	case errors.Is(err, core.ErrBadConfig),
		errors.Is(err, dag.ErrCycle),
		errors.Is(err, dag.ErrSelfEdge),
		errors.Is(err, dag.ErrDupEdge),
		errors.Is(err, dag.ErrBadWeight),
		errors.Is(err, dag.ErrBadTask),
		errors.Is(err, dag.ErrEmpty),
		errors.Is(err, stg.ErrFormat):
		return badRequest("%v", err)
	default:
		return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError renders err as a JSON error response.
func (s *Server) writeError(w http.ResponseWriter, err error) int {
	ae := classify(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: ae.msg, Status: ae.status})
	return ae.status
}
