package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/stg"
)

// apiError is an error with a definite HTTP status. Every request-handling
// path converts domain errors into one of these before writing the
// response, so clients can rely on the status code: 400 for malformed
// input, 413 for oversized input, 422 for well-formed but unschedulable
// problems, 429 for requests shed because their cost class's waiting room
// is full, 503 for shed load, 504 for runs that exceeded the request
// deadline. Anything that escapes classification is a genuine server bug
// and surfaces as 500.
type apiError struct {
	status     int
	msg        string
	retryAfter int // seconds; > 0 adds a Retry-After header
}

func (e *apiError) Error() string { return e.msg }

// withRetryAfter sets the Retry-After hint, clamped to [1, maxRetryAfterSec].
// Callers that know the observed queue-wait distribution (the admission
// layer) use it to replace the 1-second floor the retryable constructors
// default to.
func (e *apiError) withRetryAfter(sec int) *apiError {
	if sec < 1 {
		sec = 1
	}
	if sec > maxRetryAfterSec {
		sec = maxRetryAfterSec
	}
	e.retryAfter = sec
	return e
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func tooLarge(format string, args ...any) *apiError {
	return &apiError{status: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf(format, args...)}
}

func unprocessable(format string, args ...any) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, args...)}
}

// overloaded is the 503 for requests shed before execution (queue timeout,
// draining). Retryable: the same request succeeds once load subsides. The
// default Retry-After is the 1-second floor; paths that know the observed
// queue-wait distribution override it via withRetryAfter.
func overloaded(format string, args ...any) *apiError {
	return &apiError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf(format, args...), retryAfter: 1}
}

// tooBusy is the 429 for requests shed instantly because their cost class's
// bounded waiting room is full — queueing them would only add latency to
// work the server cannot reach. retryAfter comes from the class's observed
// queue-wait histogram.
func tooBusy(retryAfter int, format string, args ...any) *apiError {
	return (&apiError{status: http.StatusTooManyRequests, msg: fmt.Sprintf(format, args...)}).
		withRetryAfter(retryAfter)
}

// timedOut is the 504 for requests whose scheduling run outlived the
// server-side request deadline. The run keeps going — and warms the cache —
// only while some other request still waits on it; once the last waiter
// departs it is cancelled and its worker slot reclaimed, so a retry
// re-executes from scratch. Default Retry-After is the 1-second floor;
// see withRetryAfter.
func timedOut(format string, args ...any) *apiError {
	return &apiError{status: http.StatusGatewayTimeout, msg: fmt.Sprintf(format, args...), retryAfter: 1}
}

// internalPanic is the 500 reported when a scheduling run panicked. The
// panic value is included; the stack goes to the log only.
func internalPanic(p any) *apiError {
	return &apiError{status: http.StatusInternalServerError, msg: fmt.Sprintf("internal error: scheduling run panicked: %v", p)}
}

// classify maps domain errors onto API errors:
//
//   - structurally invalid input (cycles, self edges, duplicate edges, bad
//     weights, malformed STG text, unknown approaches, invalid configs)
//     → 400: the request can never succeed as written;
//   - infeasible deadlines → 422: the request is well-formed, the problem
//     instance has no solution;
//   - context deadline expiry → 504, cancellation → 503, both retryable;
//   - a coalesced run that panicked → 500 (the waiters' view of the panic);
//   - anything already classified passes through.
func classify(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, core.ErrInfeasible):
		return unprocessable("%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return timedOut("request deadline exceeded")
	case errors.Is(err, context.Canceled):
		return overloaded("request cancelled: %v", err)
	case errors.Is(err, errFlightPanic):
		return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	case errors.Is(err, core.ErrBadConfig),
		errors.Is(err, dag.ErrCycle),
		errors.Is(err, dag.ErrSelfEdge),
		errors.Is(err, dag.ErrDupEdge),
		errors.Is(err, dag.ErrBadWeight),
		errors.Is(err, dag.ErrBadTask),
		errors.Is(err, dag.ErrEmpty),
		errors.Is(err, stg.ErrFormat):
		return badRequest("%v", err)
	default:
		return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// commonErrorBodies pre-renders the fixed-message error responses — the
// ones produced verbatim on hot shedding/timeout/validation paths — so
// writing them costs zero allocations. Variable (formatted) messages fall
// back to a pooled encoder in writeError. The rendered bytes are exactly
// json.Marshal(body) + '\n', matching what the encoder path produces.
var commonErrorBodies = func() map[errorBody][]byte {
	m := make(map[errorBody][]byte)
	for _, msg := range []string{
		"request deadline exceeded",
		"scheduling run exceeded the request deadline",
	} {
		premarshal(m, errorBody{Error: msg, Status: http.StatusGatewayTimeout})
	}
	for _, msg := range []string{
		"trailing data after request object",
		"exactly one of \"graph\" and \"stg\" must be set",
		"exactly one of \"deadline_sec\" and \"deadline_factor\" must be positive",
		"exactly one of \"deadline_secs\" and \"deadline_factors\" must be non-empty",
		"\"approaches\" must list at least one approach",
		"graph has no tasks",
		"batch is empty: send one request object per line",
	} {
		premarshal(m, errorBody{Error: msg, Status: http.StatusBadRequest})
	}
	return m
}()

// premarshal renders one fixed error body into commonErrorBodies.
func premarshal(m map[errorBody][]byte, b errorBody) {
	j, err := json.Marshal(b)
	if err != nil {
		panic(err) // unreachable: fixed struct of string+int
	}
	m[b] = append(j, '\n')
}

// writeError renders err as a JSON error response. Fixed-message bodies
// are served from the pre-marshalled table; formatted ones are encoded
// into a pooled buffer — either way the bytes match what
// json.NewEncoder(w).Encode(errorBody{...}) used to emit.
func (s *Server) writeError(w http.ResponseWriter, err error) int {
	ae := classify(err)
	w.Header().Set("Content-Type", "application/json")
	if ae.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
	}
	w.WriteHeader(ae.status)
	body := errorBody{Error: ae.msg, Status: ae.status}
	if b, ok := commonErrorBodies[body]; ok {
		w.Write(b)
		return ae.status
	}
	e := getEncoder()
	defer e.put()
	if e.enc.Encode(&body) == nil {
		w.Write(e.buf.Bytes())
	}
	return ae.status
}
