package server_test

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"testing"

	"lamps/internal/server"
	"lamps/internal/store"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := server.OpenStore(dir, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPersistenceAcrossServers is the store round-trip at the serving layer:
// results cached by one Server instance are served byte-identically — and as
// cache hits from the very first request — by a second instance opened on
// the same store directory, the restart contract lampsd's -store-dir flag
// builds on.
func TestPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	req := scheduleReq("lamps+ps", diamondGraph(), 2)

	st1 := openStore(t, dir)
	ts1 := newTestServer(t, server.Options{Store: st1})
	status, firstBody, source := post(t, ts1, req)
	if status != http.StatusOK || source != "miss" {
		t.Fatalf("first request: status %d, source %q, want 200 miss", status, source)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	ts2 := newTestServer(t, server.Options{Store: st2})
	status, body, source := post(t, ts2, req)
	if status != http.StatusOK {
		t.Fatalf("after restart: status %d", status)
	}
	if source != "hit" {
		t.Errorf("after restart: source %q, want a warm-loaded cache hit", source)
	}
	if !bytes.Equal(body, firstBody) {
		t.Errorf("restarted server served different bytes:\nbefore: %s\nafter:  %s", firstBody, body)
	}
	if v := metricValue(t, ts2, "lampsd_store_loaded_total"); v < 1 {
		t.Errorf("lampsd_store_loaded_total = %g, want >= 1", v)
	}
	if v := metricValue(t, ts2, "lampsd_cache_hits_total"); v < 1 {
		t.Errorf("lampsd_cache_hits_total = %g, want >= 1", v)
	}
}

// TestPersistenceSkipsStaleStamp pins the invalidation rule: a store written
// under a different version stamp (an older digest or result encoding) warm
// loads nothing — the restarted server recomputes rather than replaying
// bytes a current binary would never produce.
func TestPersistenceSkipsStaleStamp(t *testing.T) {
	dir := t.TempDir()
	old, err := store.Open(dir, "lamps/old-stamp", quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put("some-key", []byte("stale bytes")); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	st := openStore(t, dir)
	defer st.Close()
	ts := newTestServer(t, server.Options{Store: st})
	if v := metricValue(t, ts, "lampsd_store_loaded_total"); v != 0 {
		t.Errorf("lampsd_store_loaded_total = %g, want 0: stale segments must not warm the cache", v)
	}
	if v := metricValue(t, ts, "lampsd_store_stale_segments_total"); v != 1 {
		t.Errorf("lampsd_store_stale_segments_total = %g, want 1", v)
	}
	status, _, source := post(t, ts, scheduleReq("ss", diamondGraph(), 2))
	if status != http.StatusOK || source != "miss" {
		t.Errorf("request against stale store: status %d, source %q, want 200 miss", status, source)
	}
}
