// Package server implements lampsd's HTTP/JSON serving layer on top of the
// core scheduling heuristics: request validation and typed error mapping,
// a bounded worker pool, single-flight coalescing of identical in-flight
// requests, an LRU result cache keyed by the canonical problem digest of
// internal/graphhash, end-to-end request deadlines, panic isolation,
// Prometheus-style metrics, health checking and structured request logging.
//
// Endpoints:
//
//	POST /v1/schedule  schedule one task graph (inline JSON or STG text)
//	POST /v1/sweep     evaluate a grid of {approaches × deadlines × procs}
//	                   over one graph, streaming per-cell results (NDJSON)
//	POST /v1/batch     execute many independent scheduling problems — one
//	                   /v1/schedule request object per input line — across
//	                   the worker pool, streaming per-line results (NDJSON)
//	POST /schedule     legacy alias of /v1/schedule
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus text exposition
//
// Caching semantics: the cache key covers the graph's structure (weights
// and edges — not names or labels), the power model, the deadline, the
// processor cap and the approach, so a hit is guaranteed to be the result
// the heuristic would recompute, byte for byte. Sweep cells share the same
// key space, so a sweep warms the cache for single-shot requests and vice
// versa. Error responses are never cached.
//
// Robustness: every scheduling run executes behind a recover barrier — a
// panicking heuristic yields a 500 (counted in lampsd_panics_total) for the
// requester and a 500 for every coalesced waiter, never a deadlock. With
// Options.RequestTimeout set, a server-side deadline bounds queueing for a
// worker slot (503 + Retry-After on expiry) and the run itself (504 +
// Retry-After on expiry).
//
// Cancellation: scheduling runs execute under a context that is cancelled
// as soon as no request is waiting for the result any more — whether
// because the client disconnected, the request deadline fired, or every
// coalesced waiter gave up. The core engine aborts cooperatively within one
// list-scheduling call and the worker slot is reclaimed immediately
// (counted in lampsd_runs_cancelled_total) instead of the run completing
// detached. A run that still has at least one interested waiter keeps going
// and warms the cache as before.
package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/graphhash"
	"lamps/internal/power"
	"lamps/internal/server/cache"
	"lamps/internal/store"
	"lamps/internal/verify"
	"lamps/internal/workpool"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxTasks      = 5000    // largest graphs of the Standard Task Graph Set
	DefaultMaxBodyBytes  = 8 << 20 // 8 MiB
	DefaultCacheSize     = 1024    // result cache entries
	DefaultSweepMaxCells = 256     // largest /v1/sweep grid
	DefaultBatchMaxItems = 1024    // largest /v1/batch request count
	DefaultQueueDepth    = 256     // per-cost-class waiting-room capacity
)

// resultFormatVersion stamps persisted result bytes. Bump it whenever the
// rendered response format changes incompatibly; together with
// graphhash.Version it forms the store stamp, so stale segments are skipped
// wholesale on startup instead of replaying bytes a current server would
// never produce.
const resultFormatVersion = "lamps/server/result/v1"

// StoreStamp is the version stamp a Server writes into (and requires from)
// persistent store segments: the canonical problem-digest version plus the
// rendered-result format version. Either changing invalidates every
// previously persisted record.
func StoreStamp() string {
	return graphhash.Version + "|" + resultFormatVersion
}

// OpenStore opens (creating if needed) the persistent result store at dir
// with the stamp a Server built at this version expects. Pass the returned
// store as Options.Store and close it after the server drains.
func OpenStore(dir string, logger *slog.Logger) (*store.Store, error) {
	return store.Open(dir, StoreStamp(), logger)
}

// CacheHeader is the response header reporting how the result was obtained:
// "hit" (served from cache), "miss" (scheduled by this request) or
// "shared" (coalesced onto a concurrent identical request).
const CacheHeader = "X-Lamps-Cache"

// Options configures a Server. The zero value is usable: it selects the
// default 70 nm power model, GOMAXPROCS workers and the default limits.
type Options struct {
	// Model is the platform power model. Nil selects power.Default70nm().
	Model *power.Model
	// Platform optionally describes a heterogeneous default machine (ordered
	// processors drawn from per-class power models). When set, requests
	// without their own "platform" block are hashed and scheduled against it
	// and Model is ignored for them; a request-level platform still takes
	// precedence. Nil keeps the homogeneous Model machine.
	Platform *power.Platform
	// Workers bounds concurrently executing scheduling runs
	// (0 = GOMAXPROCS). Excess requests queue.
	Workers int
	// CacheSize is the LRU result cache capacity in entries
	// (0 = DefaultCacheSize, negative = disable caching).
	CacheSize int
	// MaxTasks rejects graphs with more tasks with 413 (0 = DefaultMaxTasks).
	MaxTasks int
	// MaxBodyBytes rejects larger request bodies with 413
	// (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// RequestTimeout bounds one request end to end: waiting for a worker
	// slot (503 on expiry) and the scheduling run itself (504 on expiry; a
	// run nobody else is waiting on is then cancelled and its slot
	// reclaimed). For sweeps the deadline covers the whole grid. Zero
	// disables the timeout; client disconnects still cancel.
	RequestTimeout time.Duration
	// SweepMaxCells rejects /v1/sweep grids with more cells with 413
	// (0 = DefaultSweepMaxCells).
	SweepMaxCells int
	// BatchMaxItems rejects /v1/batch streams with more request lines with
	// 413 (0 = DefaultBatchMaxItems).
	BatchMaxItems int
	// SearchWorkers bounds the core engine's intra-run search parallelism
	// (candidate schedule builds and +PS level sweeps), shared across all
	// concurrent runs (0 = GOMAXPROCS, negative = serial search). Results
	// are identical either way; this only trades latency for CPU.
	SearchWorkers int
	// SelfCheck enables core.Config.SelfCheck on every scheduling run: each
	// schedule the engine builds is re-verified from first principles and
	// the winning energy breakdown re-derived bit for bit
	// (internal/verify). A violation fails the request with 500 and
	// increments lampsd_verify_failures_total — the canary signal that the
	// serving binary computes results its own verifier rejects. Costs one
	// extra O(V+E) pass per built schedule; intended for canary deployments
	// rather than every production replica.
	SelfCheck bool
	// Store, when non-nil, persists every cached result to disk and warm-loads
	// previously persisted results into the LRU cache at construction time, so
	// a restarted server answers every digest it had cached before shutdown
	// with byte-identical bytes. Open one with OpenStore; the caller owns its
	// lifecycle and must Close it after the server has drained. Records with a
	// stale version stamp are skipped on load, never replayed.
	Store *store.Store
	// QueueDepth bounds each cost class's admission waiting room: requests
	// beyond it are shed immediately with 429 + Retry-After instead of
	// queueing for a worker slot they are unlikely to reach
	// (0 = DefaultQueueDepth, negative = minimum depth 1).
	QueueDepth int
	// Runner executes one scheduling problem under ctx; returning an error
	// satisfying errors.Is(err, context.Canceled/DeadlineExceeded) counts
	// the run as cancelled. Nil selects the built-in engine runner (which
	// feeds the per-stage metrics). Tests substitute slow or panicking
	// runners to exercise the timeout and panic-isolation paths.
	Runner func(ctx context.Context, approach string, g *dag.Graph, cfg core.Config) (*core.Result, error)
	// Logger receives structured request logs. Nil selects slog.Default().
	Logger *slog.Logger
}

// Server is the lampsd HTTP service. Create one with New; it is safe for
// concurrent use and carries no background goroutines of its own.
type Server struct {
	opts      Options
	pool      *workpool.Pool // one slot per executing scheduling run
	search    *workpool.Pool // intra-run search parallelism (nil = serial)
	cache     *cache.LRU
	store     *store.Store // nil = no persistence
	admission *admission   // per-cost-class front door to the pool
	flight    flightGroup
	metrics   *metrics
	mux       *http.ServeMux
	log       *slog.Logger
}

// New returns a Server with the given options.
func New(opts Options) *Server {
	if opts.Model == nil {
		opts.Model = power.Default70nm()
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxTasks <= 0 {
		opts.MaxTasks = DefaultMaxTasks
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.SweepMaxCells <= 0 {
		opts.SweepMaxCells = DefaultSweepMaxCells
	}
	if opts.BatchMaxItems <= 0 {
		opts.BatchMaxItems = DefaultBatchMaxItems
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 1
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	s := &Server{
		opts:    opts,
		pool:    workpool.NewPool(opts.Workers),
		cache:   cache.New(opts.CacheSize),
		store:   opts.Store,
		metrics: newMetrics(),
		log:     opts.Logger,
	}
	s.admission = newAdmission(s.pool.Cap(), opts.QueueDepth)
	if opts.SearchWorkers >= 0 {
		s.search = workpool.NewPool(opts.SearchWorkers)
	}
	if s.store != nil {
		loaded := s.store.WarmLoad(func(key string, val []byte) {
			s.cache.Put(key, val)
		})
		if loaded > 0 {
			s.log.Info("warm-loaded persisted results into cache", "records", loaded)
		}
	}
	if s.opts.Runner == nil {
		s.opts.Runner = s.coreRunner
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler serving all endpoints, wrapped with
// request accounting, structured logging and a last-resort panic barrier:
// a panic escaping any handler is logged with its stack, counted in
// lampsd_panics_total and converted to a 500 if the response has not
// started yet.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.metrics.recordPanic()
				s.log.Error("panic serving request",
					"path", r.URL.Path, "panic", p, "stack", string(debug.Stack()))
				if !sw.wrote {
					sw.status = s.writeError(sw, internalPanic(p))
				}
			}
			s.metrics.recordRequest(r.URL.Path, sw.status)
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration", time.Since(start),
				"cache", sw.Header().Get(CacheHeader),
			)
		}()
		s.mux.ServeHTTP(sw, r)
	})
}

// statusWriter records the status code written to the client and whether
// the response has started (after which a recovered panic can no longer be
// converted into an error response).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the sweep stream can push
// cell lines as they complete.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// requestCtx derives the waiting context for one request: the client's own
// context (so disconnects release the waiter) bounded by the server-side
// request timeout when one is configured. This context governs how long the
// request *waits*, not how long the run may execute: runs live as long as
// any waiter remains interested (see flightGroup), so a coalesced run is
// never poisoned by one client giving up.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// handleSchedule serves POST /schedule and /v1/schedule: validate, hash,
// then cache hit / coalesce / schedule, in that order of preference.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := decodeRequest(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	approach, err := canonicalApproach(req.Approach)
	if err != nil {
		s.writeError(w, err)
		return
	}
	g, err := s.buildGraph(req.Graph, req.STG)
	if err != nil {
		s.writeError(w, err)
		return
	}
	cfg, err := s.config(req, g)
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := graphhash.Sum(problem(approach, g, cfg))

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res := s.execute(ctx, key, approach, g, cfg)
	if res.err != nil {
		s.writeError(w, res.err)
		return
	}
	writeBody(w, res.status, res.source, res.body)
}

// execResult is the outcome of executing one scheduling problem.
type execResult struct {
	status int
	body   []byte
	source string // "hit", "miss" or "shared"
	err    error
}

// execute resolves one scheduling problem end to end: cache lookup, then a
// single-flight coalesced run on the bounded pool, isolated behind a
// recover barrier. Both the single-shot endpoints and every sweep cell go
// through this one path, which is what guarantees that a sweep cell and an
// individual request for the same problem produce byte-identical results.
//
// ctx bounds only this caller's wait. The run itself executes in the
// leader's goroutine under the flight's own run context, which is cancelled
// when the last waiter departs — so a run everyone timed out of aborts
// cooperatively and frees its worker slot, while a run that still has other
// waiters completes and warms the cache. A panicking run is recovered in
// the leader's goroutine, counted in lampsd_panics_total, and surfaces as a
// 500 for every waiter.
func (s *Server) execute(ctx context.Context, key, approach string, g *dag.Graph, cfg core.Config) execResult {
	if body, ok := s.cache.Get(key); ok {
		return execResult{http.StatusOK, body, "hit", nil}
	}
	c, leader := s.flight.join(ctx, key)
	source := "miss"
	if leader {
		go s.flight.run(key, c, func(runCtx context.Context) (status int, body []byte, err error) {
			defer func() {
				if p := recover(); p != nil {
					s.metrics.recordPanic()
					s.log.Error("panic in scheduling run",
						"approach", approach, "key", key, "panic", p, "stack", string(debug.Stack()))
					status, body, err = 0, nil, internalPanic(p)
				}
			}()
			return s.runProblem(runCtx, key, approach, g, cfg)
		})
	} else {
		source = "shared"
		s.metrics.recordCoalesced()
	}
	select {
	case <-c.done:
		return execResult{c.status, c.val, source, c.err}
	case <-ctx.Done():
		s.flight.depart(c)
		// Grace window: a run that finished in the same instant the deadline
		// fired — including one that classified its own queue shed as a 503,
		// or was just cancelled by our departure and wound down immediately —
		// beats the generic timeout, except that a bare cancellation error
		// carries no information and is classified by this waiter's own
		// context below.
		select {
		case <-c.done:
			if c.err == nil || !isCancellation(c.err) {
				return execResult{c.status, c.val, source, c.err}
			}
		case <-time.After(20 * time.Millisecond):
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			hint := s.admission.class(approach, g.NumTasks()).retryAfterSeconds()
			return execResult{source: source, err: timedOut("scheduling run exceeded the request deadline").withRetryAfter(hint)}
		}
		return execResult{source: source, err: overloaded("request abandoned before the run completed: %v", context.Cause(ctx))}
	}
}

// isCancellation reports whether err is (or wraps) a context cancellation
// or deadline error.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runProblem is the single-flight leader body: pass admission control for
// the request's cost class (ctx bounds the queueing time; a full waiting
// room or an expired wait sheds with 429/503 + a Retry-After derived from
// the class's observed queue waits), run the heuristic under ctx, record
// metrics, render, cache and persist the result. ctx here is the flight's
// run context: it fires when every waiter has departed, at which point the
// engine aborts within one list-scheduling call and the pool slot is
// released.
func (s *Server) runProblem(ctx context.Context, key, approach string, g *dag.Graph, cfg core.Config) (int, []byte, error) {
	var result *core.Result
	var coreErr error
	var ranFor time.Duration
	q := s.admission.class(approach, g.NumTasks())
	if shed := s.admit(ctx, q, func() {
		start := time.Now()
		result, coreErr = s.opts.Runner(ctx, approach, g, cfg)
		ranFor = time.Since(start)
	}); shed != nil {
		return 0, nil, shed
	}
	if coreErr != nil {
		if isCancellation(coreErr) {
			s.metrics.recordRunCancelled()
		}
		if errors.Is(coreErr, verify.ErrViolation) {
			s.metrics.recordVerifyFailure()
		}
		return 0, nil, coreErr
	}
	s.metrics.recordRun(approach, ranFor.Seconds(), result.Stats)
	body, err := renderResult(key, cfg, result)
	if err != nil {
		return 0, nil, err
	}
	s.cache.Put(key, body)
	if s.store != nil {
		if err := s.store.Put(key, body); err != nil {
			s.log.Warn("persisting result failed", "key", key, "error", err)
		}
	}
	return http.StatusOK, body, nil
}

// coreRunner is the default Runner: a core engine sharing the server-wide
// search pool, instrumented so every run — finished or cancelled — feeds
// the per-stage effort histograms live via the Observer→metrics adapter.
func (s *Server) coreRunner(ctx context.Context, approach string, g *dag.Graph, cfg core.Config) (*core.Result, error) {
	counter := &stageCounter{}
	eng := core.Engine{Config: cfg, Observer: counter, Pool: s.search}
	r, err := eng.Run(ctx, approach, g)
	s.metrics.recordStages(counter.schedules, counter.levels)
	return r, err
}

// stageCounter is the Observer→metrics adapter: it counts one run's search
// effort as it happens, so cancelled runs still report the work they did
// (Result.Stats only exists on success). The engine serialises Observer
// callbacks and completes them before Run returns, so plain fields suffice.
type stageCounter struct{ schedules, levels int }

func (c *stageCounter) OnPhase(string)                                 {}
func (c *stageCounter) OnScheduleBuilt(int, int64)                     { c.schedules++ }
func (c *stageCounter) OnLevelEvaluated(power.Level, energy.Breakdown) { c.levels++ }

func writeBody(w http.ResponseWriter, status int, source string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheHeader, source)
	w.WriteHeader(status)
	w.Write(body)
}
