// Package server implements lampsd's HTTP/JSON serving layer on top of the
// core scheduling heuristics: request validation and typed error mapping,
// a bounded worker pool, single-flight coalescing of identical in-flight
// requests, an LRU result cache keyed by the canonical problem digest of
// internal/graphhash, Prometheus-style metrics, health checking and
// structured request logging.
//
// Endpoints:
//
//	POST /schedule  schedule one task graph (inline JSON or STG text)
//	GET  /healthz   liveness probe
//	GET  /metrics   Prometheus text exposition
//
// Caching semantics: the cache key covers the graph's structure (weights
// and edges — not names or labels), the power model, the deadline, the
// processor cap and the approach, so a hit is guaranteed to be the result
// the heuristic would recompute, byte for byte. Error responses are never
// cached.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"lamps/internal/core"
	"lamps/internal/graphhash"
	"lamps/internal/power"
	"lamps/internal/server/cache"
	"lamps/internal/workpool"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxTasks     = 5000    // largest graphs of the Standard Task Graph Set
	DefaultMaxBodyBytes = 8 << 20 // 8 MiB
	DefaultCacheSize    = 1024    // result cache entries
)

// CacheHeader is the response header reporting how the result was obtained:
// "hit" (served from cache), "miss" (scheduled by this request) or
// "shared" (coalesced onto a concurrent identical request).
const CacheHeader = "X-Lamps-Cache"

// Options configures a Server. The zero value is usable: it selects the
// default 70 nm power model, GOMAXPROCS workers and the default limits.
type Options struct {
	// Model is the platform power model. Nil selects power.Default70nm().
	Model *power.Model
	// Workers bounds concurrently executing scheduling runs
	// (0 = GOMAXPROCS). Excess requests queue.
	Workers int
	// CacheSize is the LRU result cache capacity in entries
	// (0 = DefaultCacheSize, negative = disable caching).
	CacheSize int
	// MaxTasks rejects graphs with more tasks with 413 (0 = DefaultMaxTasks).
	MaxTasks int
	// MaxBodyBytes rejects larger request bodies with 413
	// (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Logger receives structured request logs. Nil selects slog.Default().
	Logger *slog.Logger
}

// Server is the lampsd HTTP service. Create one with New; it is safe for
// concurrent use and carries no background goroutines of its own.
type Server struct {
	opts    Options
	pool    *workpool.Pool
	cache   *cache.LRU
	flight  flightGroup
	metrics *metrics
	mux     *http.ServeMux
	log     *slog.Logger
}

// New returns a Server with the given options.
func New(opts Options) *Server {
	if opts.Model == nil {
		opts.Model = power.Default70nm()
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxTasks <= 0 {
		opts.MaxTasks = DefaultMaxTasks
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	s := &Server{
		opts:    opts,
		pool:    workpool.NewPool(opts.Workers),
		cache:   cache.New(opts.CacheSize),
		metrics: newMetrics(),
		log:     opts.Logger,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler serving all endpoints, wrapped with
// request accounting and structured logging.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		s.metrics.recordRequest(r.URL.Path, sw.status)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", time.Since(start),
			"cache", sw.Header().Get(CacheHeader),
		)
	})
}

// statusWriter records the status code written to the client.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// handleSchedule serves POST /schedule: validate, hash, then cache hit /
// coalesce / schedule, in that order of preference.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := decodeRequest(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	approach, err := canonicalApproach(req.Approach)
	if err != nil {
		s.writeError(w, err)
		return
	}
	g, err := s.buildGraph(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	cfg := s.config(req, g)
	key := graphhash.Sum(graphhash.Problem{
		Graph:    g,
		Model:    cfg.Model,
		Deadline: cfg.Deadline,
		MaxProcs: cfg.MaxProcs,
		Approach: approach,
	})

	if body, ok := s.cache.Get(key); ok {
		writeBody(w, http.StatusOK, "hit", body)
		return
	}

	status, body, runErr, shared := s.flight.Do(key, func() (int, []byte, error) {
		var result *core.Result
		var coreErr error
		start := time.Now()
		// The run is detached from the request context deliberately: once
		// admitted it runs to completion so that coalesced waiters are not
		// poisoned by the leader's client disconnecting, and so the cache
		// still gets warmed. Backpressure comes from the bounded pool.
		poolErr := s.pool.Do(context.WithoutCancel(r.Context()), func() {
			result, coreErr = core.Run(approach, g, cfg)
		})
		if poolErr != nil {
			return http.StatusServiceUnavailable, nil, &apiError{
				status: http.StatusServiceUnavailable,
				msg:    "server draining: " + poolErr.Error(),
			}
		}
		if coreErr != nil {
			return 0, nil, coreErr
		}
		s.metrics.recordRun(approach, time.Since(start).Seconds(), result.Stats)
		body, err := renderResult(key, cfg, result)
		if err != nil {
			return 0, nil, err
		}
		s.cache.Put(key, body)
		return http.StatusOK, body, nil
	})
	if shared {
		s.metrics.recordCoalesced()
	}
	if runErr != nil {
		s.writeError(w, runErr)
		return
	}
	source := "miss"
	if shared {
		source = "shared"
	}
	writeBody(w, status, source, body)
}

func writeBody(w http.ResponseWriter, status int, source string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheHeader, source)
	w.WriteHeader(status)
	w.Write(body)
}
