package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"lamps/internal/core"
	"lamps/internal/graphhash"
	"lamps/internal/workpool"
)

// sweepRequest is the body of POST /v1/sweep: one task graph plus a grid of
// {approaches × deadlines × processor caps}. Exactly one of Graph and STG
// supplies the graph, and exactly one of DeadlineSecs and DeadlineFactors
// supplies the deadline axis.
type sweepRequest struct {
	// Approaches lists the heuristics to evaluate; same aliases as the
	// schedule endpoint's "approach" field.
	Approaches []string `json:"approaches"`

	// Graph is the task graph in inline JSON form.
	Graph *graphSpec `json:"graph,omitempty"`
	// STG is the task graph in Standard Task Graph Set text format.
	STG string `json:"stg,omitempty"`

	// DeadlineSecs are absolute deadlines in seconds.
	DeadlineSecs []float64 `json:"deadline_secs,omitempty"`
	// DeadlineFactors express deadlines as multiples of the graph's
	// critical path length at maximum frequency — the axis of the paper's
	// Figs. 6–9 sweeps.
	DeadlineFactors []float64 `json:"deadline_factors,omitempty"`

	// MaxProcs lists processor caps (0 = bounded only by graph
	// parallelism). Empty means the single cap 0.
	MaxProcs []int `json:"max_procs,omitempty"`

	// Faults optionally requests k-fault tolerance for every cell; same
	// block as the schedule endpoint. {"k": 0} or omission is the
	// non-tolerant sweep with unchanged cell digests.
	Faults *faultsSpec `json:"faults,omitempty"`
}

// sweepCell identifies one grid cell in the response stream. Cells are
// indexed in row-major order: approaches outermost, then deadlines, then
// processor caps.
type sweepCell struct {
	Index          int     `json:"index"`
	Approach       string  `json:"approach"`
	DeadlineSec    float64 `json:"deadline_sec"`
	DeadlineFactor float64 `json:"deadline_factor,omitempty"`
	MaxProcs       int     `json:"max_procs"`
}

// sweepLine is one NDJSON line of the response stream: either a cell result
// or the trailing summary.
type sweepLine struct {
	Cell   *sweepCell      `json:"cell,omitempty"`
	Status int             `json:"status,omitempty"`
	Cache  string          `json:"cache,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`

	Summary *sweepSummary `json:"summary,omitempty"`
}

// sweepSummary is the final line of every sweep stream.
type sweepSummary struct {
	Cells     int  `json:"cells"`
	Completed int  `json:"completed"`
	OK        int  `json:"ok"`
	Errors    int  `json:"errors"`
	CacheHits int  `json:"cache_hits"`
	Coalesced int  `json:"coalesced"`
	TimedOut  bool `json:"timed_out,omitempty"`
}

// decodeSweepRequest parses and validates a sweep body.
func decodeSweepRequest(body io.Reader) (*sweepRequest, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req sweepRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, tooLarge("request body exceeds the %d-byte limit", mbe.Limit)
		}
		return nil, badRequest("decoding sweep request: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after request object")
	}
	if (req.Graph == nil) == (req.STG == "") {
		return nil, badRequest("exactly one of \"graph\" and \"stg\" must be set")
	}
	if len(req.Approaches) == 0 {
		return nil, badRequest("\"approaches\" must list at least one approach")
	}
	if (len(req.DeadlineSecs) == 0) == (len(req.DeadlineFactors) == 0) {
		return nil, badRequest("exactly one of \"deadline_secs\" and \"deadline_factors\" must be non-empty")
	}
	for _, d := range req.DeadlineSecs {
		if d <= 0 {
			return nil, badRequest("deadline_secs entries must be positive, got %g", d)
		}
	}
	for _, f := range req.DeadlineFactors {
		if f <= 0 {
			return nil, badRequest("deadline_factors entries must be positive, got %g", f)
		}
	}
	for _, p := range req.MaxProcs {
		if p < 0 {
			return nil, badRequest("max_procs entries must be non-negative, got %d", p)
		}
	}
	if req.Faults != nil {
		if req.Faults.K < 0 {
			return nil, badRequest("faults.k must be non-negative, got %d", req.Faults.K)
		}
		if _, err := canonicalFaultPolicy(req.Faults.Policy); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// handleSweep serves POST /v1/sweep: it evaluates every cell of the grid in
// parallel on the shared worker pool and streams one NDJSON line per cell
// as it completes (completion order, identified by the cell coordinates),
// followed by a summary line. Cached cells are served from the LRU via the
// same per-cell digests the schedule endpoint uses, so a cell's "result"
// field is byte-identical to the body an individual /v1/schedule request
// for the same problem would return. Per-cell failures (infeasible
// deadlines, panicking heuristics) are reported in their cell line and do
// not abort the remaining cells.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := decodeSweepRequest(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	approaches := make([]string, len(req.Approaches))
	for i, a := range req.Approaches {
		if approaches[i], err = canonicalApproach(a); err != nil {
			s.writeError(w, err)
			return
		}
	}
	g, err := s.buildGraph(req.Graph, req.STG)
	if err != nil {
		s.writeError(w, err)
		return
	}

	type axis struct {
		sec    float64
		factor float64 // 0 when the deadline was given in seconds
	}
	deadlines := make([]axis, 0, len(req.DeadlineSecs)+len(req.DeadlineFactors))
	for _, sec := range req.DeadlineSecs {
		deadlines = append(deadlines, axis{sec: sec})
	}
	for _, f := range req.DeadlineFactors {
		deadlines = append(deadlines, axis{sec: s.sweepDeadline(g, f), factor: f})
	}
	procs := req.MaxProcs
	if len(procs) == 0 {
		procs = []int{0}
	}

	n := len(approaches) * len(deadlines) * len(procs)
	if n > s.opts.SweepMaxCells {
		s.writeError(w, tooLarge("sweep grid has %d cells, limit is %d", n, s.opts.SweepMaxCells))
		return
	}

	// Resolve the sweep-wide fault-tolerance request once; every cell
	// shares it, exactly as a single-shot request with the same block
	// would. The policy was validated during decode.
	var faults *core.FaultConfig
	if req.Faults != nil && req.Faults.K > 0 {
		policy, perr := canonicalFaultPolicy(req.Faults.Policy)
		if perr != nil {
			s.writeError(w, perr)
			return
		}
		faults = &core.FaultConfig{K: req.Faults.K, Policy: policy}
	}

	// Enumerate the grid and derive each cell's cache key from the shared
	// graph+machine hash prefix (platform-tagged when the server default
	// machine is heterogeneous, faults-tagged when tolerance is on, so
	// sweep cells and single-shot requests agree on every digest).
	cells := make([]sweepCell, 0, n)
	cfgs := make([]core.Config, 0, n)
	keys := make([]string, 0, n)
	baseCfg := core.Config{Model: s.opts.Model, Faults: faults, SelfCheck: s.opts.SelfCheck}
	if s.opts.Platform != nil {
		baseCfg.Model, baseCfg.Platform = nil, s.opts.Platform
	}
	hasher := graphhash.NewProblemHasher(problem("", g, baseCfg))
	for _, a := range approaches {
		for _, d := range deadlines {
			for _, p := range procs {
				cells = append(cells, sweepCell{
					Index:          len(cells),
					Approach:       a,
					DeadlineSec:    d.sec,
					DeadlineFactor: d.factor,
					MaxProcs:       p,
				})
				cfg := baseCfg
				cfg.Deadline, cfg.MaxProcs = d.sec, p
				cfgs = append(cfgs, cfg)
				keys = append(keys, hasher.Cell(d.sec, p, a))
			}
		}
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var (
		wmu     sync.Mutex
		sum     = sweepSummary{Cells: n}
		encFail error
	)
	writeLine := func(line sweepLine) {
		// Pooled encoding: Encoder.Encode emits Marshal + '\n' byte for
		// byte, so the wire stream is unchanged — one Write per line, no
		// per-line marshal buffer.
		e := getEncoder()
		defer e.put()
		err := e.enc.Encode(&line)
		wmu.Lock()
		defer wmu.Unlock()
		if err != nil {
			// Unreachable for these types; recorded rather than swallowed.
			encFail = err
			return
		}
		w.Write(e.buf.Bytes())
		if flusher != nil {
			flusher.Flush()
		}
	}

	workers := s.pool.Cap()
	mapErr := workpool.MapCtx(ctx, n, workers, func(i int) error {
		res := s.execute(ctx, keys[i], cells[i].Approach, g, cfgs[i])
		line := sweepLine{Cell: &cells[i], Cache: res.source}
		wmu.Lock()
		sum.Completed++
		wmu.Unlock()
		if res.err != nil {
			ae := classify(res.err)
			line.Status, line.Error = ae.status, ae.msg
			s.metrics.recordSweepCell(false)
			wmu.Lock()
			sum.Errors++
			wmu.Unlock()
		} else {
			// The schedule body carries a trailing newline for curl
			// friendliness; the embedded raw message drops it and nothing
			// else, so byte-for-byte comparisons against /v1/schedule only
			// need to re-append it.
			line.Status = res.status
			line.Result = json.RawMessage(trimNewline(res.body))
			s.metrics.recordSweepCell(true)
			wmu.Lock()
			sum.OK++
			switch res.source {
			case "hit":
				sum.CacheHits++
			case "shared":
				sum.Coalesced++
			}
			wmu.Unlock()
		}
		writeLine(line)
		return nil // cell failures never abort the sweep
	})
	// The cell callback never returns an error, so mapErr is necessarily
	// the context expiring mid-grid; cells that were never dispatched are
	// reflected by Completed < Cells.
	if mapErr != nil {
		sum.TimedOut = true
	}
	if encFail != nil {
		s.log.Error("encoding sweep line", "err", encFail)
	}
	writeLine(sweepLine{Summary: &sum})
}

func trimNewline(b []byte) []byte {
	if len(b) > 0 && b[len(b)-1] == '\n' {
		return b[:len(b)-1]
	}
	return b
}
