// Package sim executes a static schedule on a simulated DVS+PS
// multiprocessor, integrating each processor's energy over an explicit
// state timeline (running / idle / sleeping / off, with shutdown+wakeup
// transitions).
//
// The simulator serves two purposes:
//
//  1. Cross-validation: executed with every task taking exactly its WCET,
//     the integrated energy must equal the closed-form accounting of the
//     energy package bit-for-bit (up to float rounding); property tests
//     assert this.
//  2. Runtime variation: tasks may finish earlier than their WCET (the
//     usual case in practice). The simulator re-dispatches on *actual*
//     completion times while keeping the static processor assignment and
//     per-processor task order, and can greedily reclaim the emerging slack
//     by slowing down not-yet-started tasks, in the style of Zhu, Melhem &
//     Childers (IEEE TPDS 2003), cited as [1] by the paper.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// Errors returned by the simulator.
var (
	ErrBadInput = errors.New("sim: invalid input")
	ErrDeadline = errors.New("sim: deadline violated")
)

// State is a processor power state.
type State int

// Processor states.
const (
	StateOff State = iota
	StateIdle
	StateRunning
	StateSleeping
	StateTransition
)

func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateIdle:
		return "idle"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateTransition:
		return "transition"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Segment is one homogeneous interval of a processor's timeline.
type Segment struct {
	Proc       int
	State      State
	Begin, End float64 // seconds
	Task       int     // task index for running segments, -1 otherwise
	Level      power.Level
	EnergyJ    float64 // energy of this segment, incl. transition overhead
}

// Trace is the full outcome of a simulation.
type Trace struct {
	Segments  []Segment
	Breakdown energy.Breakdown

	// FinishSec[v] is task v's actual completion time.
	FinishSec []float64
	// LevelOf[v] is the operating point task v executed at.
	LevelOf []power.Level
	// MakespanSec is the last completion time.
	MakespanSec float64
	// Transitions counts voltage/frequency switches (reclaim mode only).
	Transitions int
	// DeadlineMet reports whether MakespanSec fits the configured deadline.
	DeadlineMet bool
}

// Options configures a simulation run.
type Options struct {
	// Level is the common operating point (as in the paper's heuristics).
	Level power.Level
	// PS enables shutdown of idle gaps beyond the break-even time. Gap
	// lengths are known to the simulator (the dispatcher knows the static
	// schedule), matching the paper's assumption that wakeups are scheduled
	// just in time.
	PS bool
	// DeadlineSec is the machine horizon: employed processors stay powered
	// (idle or sleeping) until this time.
	DeadlineSec float64

	// Speedup[v], if non-nil, scales task v's actual cycles: actual =
	// WCET * Speedup[v], with 0 < Speedup[v] <= 1. Nil means WCET execution.
	Speedup []float64
	// Reclaim greedily slows down a task into slack that materialised from
	// earlier-than-WCET completions, never below the critical level when PS
	// is set, and never beyond the task's static WCET finish time (so the
	// deadline guarantee of the static schedule is preserved).
	Reclaim bool

	// TransitionTime and TransitionEnergy model a voltage/frequency switch:
	// whenever a processor changes its operating point (only Reclaim causes
	// that), the switch takes TransitionTime seconds — consumed from the
	// task's slack budget before it starts — and costs TransitionEnergy
	// joules. The paper assumes free transitions; real regulators take tens
	// of microseconds, and these knobs quantify how much of the reclaim
	// benefit survives them.
	TransitionTime   float64
	TransitionEnergy float64
}

// Run simulates the schedule and returns its trace.
func Run(s *sched.Schedule, m *power.Model, opts Options) (*Trace, error) {
	if s == nil || m == nil {
		return nil, fmt.Errorf("%w: nil schedule or model", ErrBadInput)
	}
	if opts.Level.Freq <= 0 {
		return nil, fmt.Errorf("%w: operating point with zero frequency", ErrBadInput)
	}
	if opts.DeadlineSec <= 0 {
		return nil, fmt.Errorf("%w: non-positive deadline", ErrBadInput)
	}
	g := s.Graph
	n := g.NumTasks()
	if opts.Speedup != nil && len(opts.Speedup) != n {
		return nil, fmt.Errorf("%w: speedup slice has %d entries for %d tasks", ErrBadInput, len(opts.Speedup), n)
	}

	tr := &Trace{
		FinishSec: make([]float64, n),
		LevelOf:   make([]power.Level, n),
	}
	// Static WCET finish times at the common level: the reclaim bound.
	wcetFinish := make([]float64, n)
	for v := 0; v < n; v++ {
		wcetFinish[v] = float64(s.Finish[v]) / opts.Level.Freq
	}

	// Event-driven execution preserving the per-processor order.
	type cursorT struct {
		next int     // index into TasksOn(p)
		free float64 // time the processor finished its previous task
	}
	cursors := make([]cursorT, s.NumProcs)
	done := make([]bool, n)
	remaining := 0
	for p := 0; p < s.NumProcs; p++ {
		remaining += len(s.TasksOn(p))
	}

	addRun := func(p, v int, begin, end float64, lvl power.Level) {
		e := (end - begin) * m.LevelPower(lvl)
		tr.Segments = append(tr.Segments, Segment{
			Proc: p, State: StateRunning, Begin: begin, End: end, Task: v,
			Level: lvl, EnergyJ: e,
		})
		tr.Breakdown.Active += e
		tr.Breakdown.ActiveTime += end - begin
	}

	for remaining > 0 {
		progressed := false
		for p := 0; p < s.NumProcs; p++ {
			cur := &cursors[p]
			tasks := s.TasksOn(p)
			for cur.next < len(tasks) {
				v := int(tasks[cur.next])
				ready := cur.free
				blocked := false
				for _, pr := range g.Preds(v) {
					if !done[pr] {
						blocked = true
						break
					}
					if tr.FinishSec[pr] > ready {
						ready = tr.FinishSec[pr]
					}
				}
				if blocked {
					break
				}
				lvl := opts.Level
				cycles := float64(g.Weight(v))
				if opts.Speedup != nil {
					sp := opts.Speedup[v]
					if sp <= 0 || sp > 1 {
						return nil, fmt.Errorf("%w: speedup %g for task %d", ErrBadInput, sp, v)
					}
					cycles *= sp
				}
				if opts.Reclaim {
					lvl = reclaimLevel(m, opts, ready, cycles, wcetFinish[v])
				}
				// A level other than the machine's common one requires a
				// switch before the task and a switch back after it, both
				// reserved inside the task's own WCET window (reclaimLevel
				// accounts for them), so the static guarantees survive.
				switchTime := 0.0
				if lvl.Index != opts.Level.Index {
					switchTime = opts.TransitionTime
				}
				runStart := ready + switchTime
				fin := runStart + cycles/lvl.Freq
				free := fin + switchTime
				if lvl.Index != opts.Level.Index && (opts.TransitionTime > 0 || opts.TransitionEnergy > 0) {
					addTransition(tr, m, opts, p, ready, runStart)
					addTransition(tr, m, opts, p, fin, free)
				}
				addRun(p, v, runStart, fin, lvl)
				tr.FinishSec[v] = fin
				tr.LevelOf[v] = lvl
				done[v] = true
				cur.free = free
				cur.next++
				remaining--
				progressed = true
			}
		}
		if !progressed && remaining > 0 {
			return nil, fmt.Errorf("%w: dispatch deadlock (schedule order inconsistent with precedence)", ErrBadInput)
		}
	}
	for v := 0; v < n; v++ {
		if tr.FinishSec[v] > tr.MakespanSec {
			tr.MakespanSec = tr.FinishSec[v]
		}
	}
	tr.DeadlineMet = tr.MakespanSec <= opts.DeadlineSec*(1+1e-12)

	// Fill the gaps of each employed processor with idle/sleep segments.
	if err := fillGaps(tr, s, m, opts); err != nil {
		return nil, err
	}
	sort.Slice(tr.Segments, func(i, j int) bool {
		if tr.Segments[i].Proc != tr.Segments[j].Proc {
			return tr.Segments[i].Proc < tr.Segments[j].Proc
		}
		return tr.Segments[i].Begin < tr.Segments[j].Begin
	})
	return tr, nil
}

// reclaimLevel picks the slowest level that still finishes the task by its
// static WCET finish time (and not below the critical level when PS is on).
// Deviating from the common level costs two voltage transitions — one down,
// one back up — both of which must fit the task's window.
func reclaimLevel(m *power.Model, opts Options, start, cycles float64, bound float64) power.Level {
	minIdx := len(m.Levels()) - 1
	if opts.PS {
		minIdx = m.CriticalLevel().Index
	}
	chosen := opts.Level
	for idx := opts.Level.Index + 1; idx <= minIdx; idx++ {
		l := m.Level(idx)
		if start+2*opts.TransitionTime+cycles/l.Freq <= bound*(1+1e-12) {
			chosen = l
		} else {
			break
		}
	}
	return chosen
}

// addTransition records one voltage/frequency switch interval.
func addTransition(tr *Trace, m *power.Model, opts Options, p int, begin, end float64) {
	e := opts.TransitionEnergy
	if end > begin {
		// While switching, the processor still leaks at (conservatively)
		// the common level's idle power.
		e += (end - begin) * m.IdlePower(opts.Level)
	}
	tr.Segments = append(tr.Segments, Segment{
		Proc: p, State: StateTransition, Begin: begin, End: end, Task: -1,
		Level: opts.Level, EnergyJ: e,
	})
	tr.Breakdown.Overhead += e
	tr.Transitions++
}

// fillGaps inserts idle/sleep segments between runs and up to the horizon.
func fillGaps(tr *Trace, s *sched.Schedule, m *power.Model, opts Options) error {
	horizon := opts.DeadlineSec
	if tr.MakespanSec > horizon {
		horizon = tr.MakespanSec
	}
	// Idle gaps are charged at the operating point the machine is set to;
	// for reclaim runs that is still the common level (the paper's single-
	// frequency machine model).
	pIdle := m.IdlePower(opts.Level)
	breakeven := m.BreakevenTime(opts.Level)

	perProc := make([][]Segment, s.NumProcs)
	for _, seg := range tr.Segments {
		perProc[seg.Proc] = append(perProc[seg.Proc], seg)
	}
	for p := 0; p < s.NumProcs; p++ {
		segs := perProc[p]
		if len(segs) == 0 {
			continue // off
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].Begin < segs[j].Begin })
		cursor := 0.0
		emit := func(begin, end float64) {
			t := end - begin
			if t <= 0 {
				return
			}
			if opts.PS && t > breakeven {
				e := m.EOverhead + t*m.PSleep
				tr.Segments = append(tr.Segments, Segment{
					Proc: p, State: StateSleeping, Begin: begin, End: end, Task: -1,
					Level: opts.Level, EnergyJ: e,
				})
				tr.Breakdown.Sleep += t * m.PSleep
				tr.Breakdown.SleepTime += t
				tr.Breakdown.Overhead += m.EOverhead
				tr.Breakdown.Shutdowns++
			} else {
				tr.Segments = append(tr.Segments, Segment{
					Proc: p, State: StateIdle, Begin: begin, End: end, Task: -1,
					Level: opts.Level, EnergyJ: t * pIdle,
				})
				tr.Breakdown.Idle += t * pIdle
				tr.Breakdown.IdleTime += t
			}
		}
		for _, seg := range segs {
			if seg.Begin > cursor {
				emit(cursor, seg.Begin)
			}
			if seg.End > cursor {
				cursor = seg.End
			}
		}
		emit(cursor, horizon)
	}
	return nil
}

// TotalEnergy returns the summed energy of all segments; it must equal
// Breakdown.Total().
func (t *Trace) TotalEnergy() float64 {
	var sum float64
	for _, s := range t.Segments {
		sum += s.EnergyJ
	}
	return sum
}
