package sim

import (
	"math/rand"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
	"lamps/internal/verify"
)

// faultFixture builds the paper's Fig. 4a graph, a 3-processor schedule and
// its backup plan.
func faultFixture(t testing.TB) (*dag.Graph, *sched.Schedule, *sched.BackupPlan) {
	t.Helper()
	b := dag.NewBuilder("fig4a")
	t1 := b.AddLabeledTask(2, "T1")
	t2 := b.AddLabeledTask(6, "T2")
	t3 := b.AddLabeledTask(4, "T3")
	t4 := b.AddLabeledTask(4, "T4")
	t5 := b.AddLabeledTask(2, "T5")
	b.AddEdge(t1, t2)
	b.AddEdge(t1, t3)
	b.AddEdge(t1, t4)
	b.AddEdge(t2, t5)
	b.AddEdge(t3, t5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, plan
}

// TestReplayFaultsNone pins the fault-free replay: nothing is invalid,
// every task keeps its primary finish, and the makespan is the primary one.
func TestReplayFaultsNone(t *testing.T) {
	_, s, plan := faultFixture(t)
	freq := power.Default70nm().FMax()
	r, err := ReplayFaults(s, plan, nil, freq, float64(plan.RecoveryMakespan)/freq)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovered != 0 {
		t.Errorf("Recovered = %d with no faults", r.Recovered)
	}
	if r.MakespanCycles != s.Makespan {
		t.Errorf("makespan = %d, want the primary %d", r.MakespanCycles, s.Makespan)
	}
	if !r.DeadlineMet {
		t.Error("deadline missed on the fault-free replay")
	}
	for v := range r.Finish {
		if r.Finish[v] != s.Finish[v] {
			t.Errorf("task %d finish = %d, want primary %d", v, r.Finish[v], s.Finish[v])
		}
	}
}

// TestReplayFaultsSingle pins one injected fault: the faulty task runs its
// backup, the invalidity closure only captures successors whose primary
// started before the backup delivered, and the makespan never exceeds the
// plan's recovery makespan.
func TestReplayFaultsSingle(t *testing.T) {
	g, s, plan := faultFixture(t)
	freq := power.Default70nm().FMax()
	deadline := float64(plan.RecoveryMakespan) / freq
	for v := 0; v < g.NumTasks(); v++ {
		r, err := ReplayFaults(s, plan, []int{v}, freq, deadline)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Faulty[v] || !r.Invalid[v] {
			t.Errorf("fault %d not marked faulty/invalid", v)
		}
		if r.Finish[v] != plan.Finish[v] {
			t.Errorf("fault %d finish = %d, want backup %d", v, r.Finish[v], plan.Finish[v])
		}
		if r.Recovered < 1 {
			t.Errorf("fault %d: Recovered = %d", v, r.Recovered)
		}
		if r.MakespanCycles > plan.RecoveryMakespan {
			t.Errorf("fault %d: makespan %d exceeds recovery makespan %d", v, r.MakespanCycles, plan.RecoveryMakespan)
		}
		if !r.DeadlineMet {
			t.Errorf("fault %d: deadline equal to the recovery makespan reported missed", v)
		}
	}
}

// TestReplayFaultsValidation pins the input checks: bad indices, duplicate
// indices, shape mismatches and non-positive parameters are rejected.
func TestReplayFaultsValidation(t *testing.T) {
	_, s, plan := faultFixture(t)
	freq := power.Default70nm().FMax()
	if _, err := ReplayFaults(s, plan, []int{99}, freq, 1); err == nil {
		t.Error("out-of-range fault index accepted")
	}
	if _, err := ReplayFaults(s, plan, []int{1, 1}, freq, 1); err == nil {
		t.Error("duplicate fault index accepted")
	}
	if _, err := ReplayFaults(s, plan, nil, 0, 1); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := ReplayFaults(s, nil, nil, freq, 1); err == nil {
		t.Error("nil plan accepted")
	}
	short := *plan
	short.Proc = short.Proc[:1]
	if _, err := ReplayFaults(s, &short, nil, freq, 1); err == nil {
		t.Error("truncated plan accepted")
	}
}

// TestReplayFaultsAgreesWithVerifier cross-checks the simulator against
// verify.RecoverySchedule — two independent derivations of the same
// execution model — on random graphs and random fault patterns: same
// effective makespan, same deadline verdict.
func TestReplayFaultsAgreesWithVerifier(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	freq := power.Default70nm().FMax()
	for iter := 0; iter < 50; iter++ {
		g, err := taskgen.Member(2+rng.Intn(40), rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ListEDF(g, 2+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumTasks()
		k := 1 + rng.Intn(2)
		faults := rng.Perm(n)[:min(k, n)]
		r, err := ReplayFaults(s, plan, faults, freq, float64(plan.RecoveryMakespan)/freq)
		if err != nil {
			t.Fatalf("iter %d: replay: %v", iter, err)
		}
		mk, err := verify.RecoverySchedule(g, s, plan, faults, plan.RecoveryMakespan)
		if err != nil {
			t.Fatalf("iter %d faults %v: verifier rejects the recovery: %v", iter, faults, err)
		}
		if mk != r.MakespanCycles {
			t.Fatalf("iter %d faults %v: simulator makespan %d, verifier %d", iter, faults, r.MakespanCycles, mk)
		}
		if !r.DeadlineMet {
			t.Fatalf("iter %d faults %v: recovery within the plan's makespan reported late", iter, faults)
		}
	}
}
