package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one complete event ("ph":"X") of the Chrome trace-viewer
// JSON format (chrome://tracing, Perfetto).
type chromeEvent struct {
	Name     string         `json:"name"`
	Category string         `json:"cat"`
	Phase    string         `json:"ph"`
	TimeUs   float64        `json:"ts"`
	DurUs    float64        `json:"dur"`
	PID      int            `json:"pid"`
	TID      int            `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-viewer JSON so
// schedules can be inspected visually (chrome://tracing or
// https://ui.perfetto.dev). Each processor becomes a thread row; running
// segments carry the task id and operating point, idle and sleeping
// segments are emitted in their own categories.
func (t *Trace) WriteChromeTrace(w io.Writer, label string) error {
	events := make([]chromeEvent, 0, len(t.Segments))
	for _, seg := range t.Segments {
		name := seg.State.String()
		if seg.State == StateRunning {
			name = fmt.Sprintf("T%d", seg.Task)
		}
		events = append(events, chromeEvent{
			Name:     name,
			Category: seg.State.String(),
			Phase:    "X",
			TimeUs:   seg.Begin * 1e6,
			DurUs:    (seg.End - seg.Begin) * 1e6,
			PID:      1,
			TID:      seg.Proc + 1,
			Args: map[string]any{
				"vdd":      seg.Level.Vdd,
				"f/fmax":   seg.Level.Norm,
				"energy_J": seg.EnergyJ,
			},
		})
	}
	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"label":        label,
			"total_energy": t.Breakdown.Total(),
			"makespan_s":   t.MakespanSec,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
