package sim

import (
	"math"
	"testing"

	"lamps/internal/energy"
	"lamps/internal/kpn"
	"lamps/internal/mpeg"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// TestReplayMatchesStaticSchedule cross-checks the simulator against the
// static schedule on the paper's two application graphs: replaying a
// sched.Schedule at WCET and the common operating point must reproduce the
// static makespan exactly (up to float rounding) and the same per-processor
// busy and gap totals, and the integrated energy must agree with the closed
// form of the energy package.
func TestReplayMatchesStaticSchedule(t *testing.T) {
	m := power.Default70nm()

	type tc struct {
		name   string
		build  func(t *testing.T) *sched.Schedule
		nprocs int
	}
	const period = 7_750_000
	cases := []tc{}
	for _, np := range []int{1, 2, 4} {
		np := np
		cases = append(cases, tc{
			name: "mpeg-fig9",
			build: func(t *testing.T) *sched.Schedule {
				s, err := sched.ListEDF(mpeg.Fig9(), np)
				if err != nil {
					t.Fatalf("ListEDF(mpeg, %d): %v", np, err)
				}
				return s
			},
			nprocs: np,
		}, tc{
			name: "kpn-fig1",
			build: func(t *testing.T) *sched.Schedule {
				net := kpn.Fig1Example(1_000_000, 2_000_000, 1_500_000)
				g, _, err := net.Unroll(6, 3*period, period)
				if err != nil {
					t.Fatalf("Unroll: %v", err)
				}
				s, err := sched.ListEDF(g, np)
				if err != nil {
					t.Fatalf("ListEDF(kpn, %d): %v", np, err)
				}
				return s
			},
			nprocs: np,
		})
	}

	for _, c := range cases {
		for _, lvlIdx := range []int{0, len(m.Levels()) - 1} {
			for _, slack := range []float64{1, 1.75} {
				for _, ps := range []bool{false, true} {
					s := c.build(t)
					lvl := m.Level(lvlIdx)
					deadline := float64(s.Makespan) / lvl.Freq * slack
					tr, err := Run(s, m, Options{Level: lvl, PS: ps, DeadlineSec: deadline})
					if err != nil {
						t.Fatalf("%s/%dp lvl%d slack %g ps=%v: Run: %v",
							c.name, c.nprocs, lvlIdx, slack, ps, err)
					}
					checkReplay(t, s, m, lvl, deadline, ps, tr,
						c.name, c.nprocs, lvlIdx, slack)
				}
			}
		}
	}
}

// checkReplay asserts one replayed trace against its static schedule.
func checkReplay(t *testing.T, s *sched.Schedule, m *power.Model, lvl power.Level,
	deadline float64, ps bool, tr *Trace, name string, nprocs, lvlIdx int, slack float64) {
	t.Helper()
	label := name

	relEq := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Abs(want)+1e-12
	}

	// Makespan: the simulated completion of the last task equals the static
	// makespan converted to seconds.
	wantMakespan := float64(s.Makespan) / lvl.Freq
	if !relEq(tr.MakespanSec, wantMakespan) {
		t.Errorf("%s/%dp lvl%d slack %g: makespan %.12g s, static %.12g s",
			label, nprocs, lvlIdx, slack, tr.MakespanSec, wantMakespan)
	}
	if !tr.DeadlineMet {
		t.Errorf("%s/%dp lvl%d slack %g: deadline reported missed", label, nprocs, lvlIdx, slack)
	}

	// Per-task finish times match the static timetable.
	for v := 0; v < s.Graph.NumTasks(); v++ {
		want := float64(s.Finish[v]) / lvl.Freq
		if !relEq(tr.FinishSec[v], want) {
			t.Fatalf("%s/%dp lvl%d slack %g: task %d finishes at %.12g s, static %.12g s",
				label, nprocs, lvlIdx, slack, v, tr.FinishSec[v], want)
		}
	}

	// Per-processor busy and gap totals. Busy time must match the static
	// schedule exactly; everything else on an employed processor (idle,
	// sleeping, shutdown transitions) must fill the horizon.
	busySim := make([]float64, s.NumProcs)
	gapSim := make([]float64, s.NumProcs)
	ran := make(map[int]bool, s.Graph.NumTasks())
	for _, seg := range tr.Segments {
		if seg.Proc < 0 || seg.Proc >= s.NumProcs {
			t.Fatalf("%s: segment on processor %d of %d", label, seg.Proc, s.NumProcs)
		}
		switch seg.State {
		case StateRunning:
			busySim[seg.Proc] += seg.End - seg.Begin
			if int(s.Proc[seg.Task]) != seg.Proc {
				t.Fatalf("%s: task %d ran on processor %d, statically placed on %d",
					label, seg.Task, seg.Proc, s.Proc[seg.Task])
			}
			ran[seg.Task] = true
		case StateOff:
			// off segments carry no energy and no obligation
		default:
			gapSim[seg.Proc] += seg.End - seg.Begin
		}
	}
	if len(ran) != s.Graph.NumTasks() {
		t.Fatalf("%s: %d of %d tasks ran", label, len(ran), s.Graph.NumTasks())
	}
	for p := 0; p < s.NumProcs; p++ {
		var busyStatic int64
		for _, v := range s.TasksOn(p) {
			busyStatic += s.Finish[v] - s.Start[v]
		}
		wantBusy := float64(busyStatic) / lvl.Freq
		if !relEq(busySim[p], wantBusy) {
			t.Errorf("%s/%dp lvl%d slack %g: proc %d busy %.12g s, static %.12g s",
				label, nprocs, lvlIdx, slack, p, busySim[p], wantBusy)
		}
		wantGap := 0.0
		if busyStatic > 0 {
			// Employed processors stay powered to the horizon; the gap total
			// is the horizon minus the busy time regardless of where the
			// gaps fall in the static timetable.
			wantGap = deadline - wantBusy
		}
		if math.Abs(gapSim[p]-wantGap) > 1e-9*deadline+1e-12 {
			t.Errorf("%s/%dp lvl%d slack %g: proc %d gap total %.12g s, want %.12g s",
				label, nprocs, lvlIdx, slack, p, gapSim[p], wantGap)
		}
	}

	// Energy: the integrated timeline agrees with the closed form, which
	// truncates the horizon to whole cycles — allow that sub-cycle slice.
	want, err := energy.Evaluate(s, m, lvl, deadline, energy.Options{PS: ps})
	if err != nil {
		t.Fatalf("%s: Evaluate: %v", label, err)
	}
	tol := 2.0/lvl.Freq*m.IdlePower(lvl)*float64(s.NumProcs+1) + 1e-9*want.Total()
	if math.Abs(want.Total()-tr.Breakdown.Total()) > tol {
		t.Errorf("%s/%dp lvl%d slack %g ps=%v: closed form %.12g J, simulated %.12g J",
			label, nprocs, lvlIdx, slack, ps, want.Total(), tr.Breakdown.Total())
	}
	if math.Abs(tr.TotalEnergy()-tr.Breakdown.Total()) > 1e-9*tr.Breakdown.Total() {
		t.Errorf("%s: segment energies sum to %.12g J, breakdown says %.12g J",
			label, tr.TotalEnergy(), tr.Breakdown.Total())
	}
}
