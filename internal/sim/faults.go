package sim

import (
	"fmt"
	"sort"

	"lamps/internal/sched"
)

// Fault-injection replay: execute a fault-tolerant schedule under a given
// fault pattern and report what actually happens on the machine. The
// execution model is time-triggered, matching sched.PlanBackups: primaries
// always occupy their static slots; a task whose primary execution is
// invalid — it faulted, or a predecessor's valid output was not available
// when its primary slot began — is detected at the primary slot's end and
// re-executed in its statically reserved backup slot. Backups are assumed
// fault-free (one transient fault per task), so any fault set is recovered
// without re-planning.

// FaultReplay is the outcome of replaying one fault pattern.
type FaultReplay struct {
	// Faulty marks the injected faults, one flag per task.
	Faulty []bool
	// Invalid marks the tasks whose primary execution produced no valid
	// output — the injected faults plus the closure of tasks that started
	// before a predecessor's recovery delivered its input.
	Invalid []bool
	// Finish is each task's effective completion time in timeline cycles:
	// the primary finish for valid tasks, the backup finish for invalid
	// ones.
	Finish []int64
	// MakespanCycles is the latest effective completion time.
	MakespanCycles int64
	// Recovered counts the tasks that ran their backup slot.
	Recovered int
	// DeadlineMet reports whether the effective makespan fits deadlineSec
	// at timelineFreq (with the engine's one-ULP tolerance).
	DeadlineMet bool
}

// ReplayFaults replays s under plan with the tasks in faults suffering a
// transient fault in their primary slot. timelineFreq converts cycles to
// seconds (the winning level or operating point's timeline frequency);
// deadlineSec is the deadline the recovery must still meet.
func ReplayFaults(s *sched.Schedule, plan *sched.BackupPlan, faults []int, timelineFreq, deadlineSec float64) (*FaultReplay, error) {
	if s == nil || plan == nil {
		return nil, fmt.Errorf("sim: nil schedule or backup plan")
	}
	n := len(s.Proc)
	if len(plan.Proc) != n || len(plan.Start) != n || len(plan.Finish) != n {
		return nil, fmt.Errorf("sim: backup plan covers %d tasks, schedule has %d", len(plan.Proc), n)
	}
	if timelineFreq <= 0 || deadlineSec <= 0 {
		return nil, fmt.Errorf("sim: non-positive frequency or deadline")
	}
	r := &FaultReplay{
		Faulty:  make([]bool, n),
		Invalid: make([]bool, n),
		Finish:  make([]int64, n),
	}
	for _, v := range faults {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("sim: fault index %d out of range [0,%d)", v, n)
		}
		if r.Faulty[v] {
			return nil, fmt.Errorf("sim: duplicate fault index %d", v)
		}
		r.Faulty[v] = true
	}

	// Process tasks in (primary finish, index) order — topological, since
	// weights are positive — so every predecessor's validity is settled
	// before its successors are examined.
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		vi, vj := order[i], order[j]
		if s.Finish[vi] != s.Finish[vj] {
			return s.Finish[vi] < s.Finish[vj]
		}
		return vi < vj
	})
	g := s.Graph
	for _, v := range order {
		invalid := r.Faulty[v]
		if !invalid {
			// The primary execution is also invalid when a predecessor's
			// valid output arrived only after this primary slot started.
			for _, u := range g.Preds(int(v)) {
				if r.Invalid[u] && plan.Finish[u] > s.Start[v] {
					invalid = true
					break
				}
			}
		}
		r.Invalid[v] = invalid
		if invalid {
			r.Finish[v] = plan.Finish[v]
			r.Recovered++
		} else {
			r.Finish[v] = s.Finish[v]
		}
		if r.Finish[v] > r.MakespanCycles {
			r.MakespanCycles = r.Finish[v]
		}
	}
	r.DeadlineMet = float64(r.MakespanCycles)/timelineFreq <= deadlineSec*(1+1e-12)
	return r, nil
}
