package sim

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

func randomSchedule(rng *rand.Rand, n, nprocs int) *sched.Schedule {
	b := dag.NewBuilder("sim")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(5_000_000) + 100_000))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	s, err := sched.ListEDF(g, nprocs)
	if err != nil {
		panic(err)
	}
	return s
}

// TestCrossValidationAgainstClosedForm is the simulator's raison d'être:
// executed at WCET, the integrated timeline energy must match the
// closed-form accounting of the energy package.
func TestCrossValidationAgainstClosedForm(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawProcs, rawLvl uint8, ps bool, slackPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng, int(rawN%25)+1, int(rawProcs%6)+1)
		lvl := m.Level(int(rawLvl) % len(m.Levels()))
		deadline := float64(s.Makespan) / lvl.Freq * (1 + float64(slackPct%150)/100)

		want, err1 := energy.Evaluate(s, m, lvl, deadline, energy.Options{PS: ps})
		tr, err2 := Run(s, m, Options{Level: lvl, PS: ps, DeadlineSec: deadline})
		if err1 != nil || err2 != nil {
			t.Logf("errors: %v / %v", err1, err2)
			return false
		}
		// The closed form truncates the horizon to whole cycles; allow the
		// sub-cycle difference.
		tol := 2.0 / lvl.Freq * m.IdlePower(lvl) * float64(s.NumProcs+1)
		if math.Abs(want.Total()-tr.Breakdown.Total()) > tol+1e-9*want.Total() {
			t.Logf("closed form %.9g J, simulated %.9g J", want.Total(), tr.Breakdown.Total())
			return false
		}
		if want.Shutdowns != tr.Breakdown.Shutdowns {
			// A gap can straddle the break-even boundary due to the horizon
			// truncation; accept a difference only for the trailing gap.
			if abs(want.Shutdowns-tr.Breakdown.Shutdowns) > s.NumProcs {
				t.Logf("shutdowns: closed form %d, simulated %d", want.Shutdowns, tr.Breakdown.Shutdowns)
				return false
			}
		}
		if math.Abs(tr.TotalEnergy()-tr.Breakdown.Total()) > 1e-9*tr.Breakdown.Total() {
			t.Logf("segment sum %.9g != breakdown %.9g", tr.TotalEnergy(), tr.Breakdown.Total())
			return false
		}
		return tr.DeadlineMet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestWCETReplayMatchesStaticTimes: at WCET and the common level, the
// simulator reproduces the static schedule's start and finish times.
func TestWCETReplayMatchesStaticTimes(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(11))
	s := randomSchedule(rng, 40, 4)
	lvl := m.Level(3)
	deadline := float64(s.Makespan) / lvl.Freq
	tr, err := Run(s, m, Options{Level: lvl, DeadlineSec: deadline})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < s.Graph.NumTasks(); v++ {
		want := float64(s.Finish[v]) / lvl.Freq
		if math.Abs(tr.FinishSec[v]-want) > 1e-9*want+1e-12 {
			t.Errorf("task %d finish %.9g, static %.9g", v, tr.FinishSec[v], want)
		}
	}
	if !tr.DeadlineMet {
		t.Error("deadline not met at exact fit")
	}
}

// TestSpeedupNeverDelays: finishing tasks early can only move completions
// earlier (no scheduling anomalies in replay mode, because assignment and
// order are pinned).
func TestSpeedupNeverDelays(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawProcs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%30) + 1
		s := randomSchedule(rng, n, int(rawProcs%4)+1)
		lvl := m.MaxLevel()
		deadline := float64(s.Makespan)/lvl.Freq + 0.001
		speedup := make([]float64, n)
		for v := range speedup {
			speedup[v] = 0.3 + 0.7*rng.Float64()
		}
		base, err1 := Run(s, m, Options{Level: lvl, DeadlineSec: deadline})
		fast, err2 := Run(s, m, Options{Level: lvl, DeadlineSec: deadline, Speedup: speedup})
		if err1 != nil || err2 != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if fast.FinishSec[v] > base.FinishSec[v]*(1+1e-12) {
				t.Logf("task %d delayed by early finishes", v)
				return false
			}
		}
		return fast.MakespanSec <= base.MakespanSec*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReclaimSavesEnergyAndMeetsDeadline: with early finishes, greedy slack
// reclamation must not exceed the non-reclaiming energy and must still meet
// the static deadline.
func TestReclaimSavesEnergyAndMeetsDeadline(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawProcs uint8, ps bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%25) + 2
		s := randomSchedule(rng, n, int(rawProcs%4)+1)
		lvl := m.MaxLevel()
		deadline := float64(s.Makespan) / lvl.Freq * 1.05
		speedup := make([]float64, n)
		for v := range speedup {
			speedup[v] = 0.4 + 0.5*rng.Float64()
		}
		plain, err1 := Run(s, m, Options{Level: lvl, PS: ps, DeadlineSec: deadline, Speedup: speedup})
		reclaim, err2 := Run(s, m, Options{Level: lvl, PS: ps, DeadlineSec: deadline, Speedup: speedup, Reclaim: true})
		if err1 != nil || err2 != nil {
			return false
		}
		if !reclaim.DeadlineMet {
			t.Logf("reclaim missed the deadline")
			return false
		}
		// Reclaim trades active time for lower voltage; it must not lose
		// to plain execution by more than float noise.
		return reclaim.Breakdown.Total() <= plain.Breakdown.Total()*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestReclaimRespectsWCETBound: a reclaimed task never finishes later than
// its static WCET finish time, the property that preserves the deadline
// guarantee.
func TestReclaimRespectsWCETBound(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(4))
	s := randomSchedule(rng, 30, 3)
	lvl := m.MaxLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 2
	speedup := make([]float64, 30)
	for v := range speedup {
		speedup[v] = 0.5
	}
	tr, err := Run(s, m, Options{Level: lvl, DeadlineSec: deadline, Speedup: speedup, Reclaim: true})
	if err != nil {
		t.Fatal(err)
	}
	slowed := 0
	for v := 0; v < 30; v++ {
		bound := float64(s.Finish[v]) / lvl.Freq
		if tr.FinishSec[v] > bound*(1+1e-9) {
			t.Errorf("task %d finishes at %.9g past WCET bound %.9g", v, tr.FinishSec[v], bound)
		}
		if tr.LevelOf[v].Index > lvl.Index {
			slowed++
		}
	}
	if slowed == 0 {
		t.Error("reclaim slowed down no task despite 50% early finishes")
	}
}

func TestSegmentsTile(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(21))
	s := randomSchedule(rng, 20, 3)
	lvl := m.CriticalLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 1.7
	tr, err := Run(s, m, Options{Level: lvl, PS: true, DeadlineSec: deadline})
	if err != nil {
		t.Fatal(err)
	}
	// Per processor: segments are contiguous from 0 to the horizon.
	perProc := map[int][]Segment{}
	for _, seg := range tr.Segments {
		perProc[seg.Proc] = append(perProc[seg.Proc], seg)
	}
	for p, segs := range perProc {
		cursor := 0.0
		for i, seg := range segs {
			if math.Abs(seg.Begin-cursor) > 1e-12 {
				t.Errorf("proc %d segment %d begins at %g, cursor %g", p, i, seg.Begin, cursor)
			}
			if seg.End < seg.Begin {
				t.Errorf("proc %d segment %d negative", p, i)
			}
			cursor = seg.End
		}
		if math.Abs(cursor-deadline) > 1e-9 {
			t.Errorf("proc %d timeline ends at %g, horizon %g", p, cursor, deadline)
		}
	}
}

func TestRunErrors(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(2))
	s := randomSchedule(rng, 5, 2)
	lvl := m.MaxLevel()
	good := float64(s.Makespan) / lvl.Freq

	if _, err := Run(nil, m, Options{Level: lvl, DeadlineSec: 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil schedule: %v", err)
	}
	if _, err := Run(s, m, Options{DeadlineSec: 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero level: %v", err)
	}
	if _, err := Run(s, m, Options{Level: lvl}); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero deadline: %v", err)
	}
	if _, err := Run(s, m, Options{Level: lvl, DeadlineSec: good, Speedup: []float64{1}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad speedup length: %v", err)
	}
	bad := make([]float64, 5)
	if _, err := Run(s, m, Options{Level: lvl, DeadlineSec: good, Speedup: bad}); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero speedup: %v", err)
	}
	over := []float64{1, 1, 2, 1, 1}
	if _, err := Run(s, m, Options{Level: lvl, DeadlineSec: good, Speedup: over}); !errors.Is(err, ErrBadInput) {
		t.Errorf("speedup > 1: %v", err)
	}
}

func TestDeadlineMissReported(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(3))
	s := randomSchedule(rng, 10, 2)
	lvl := m.MinLevel()
	deadline := float64(s.Makespan) / m.FMax() // only feasible at fmax
	tr, err := Run(s, m, Options{Level: lvl, DeadlineSec: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeadlineMet {
		t.Error("deadline reported met at the slowest level")
	}
}

func TestChromeTrace(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(5))
	s := randomSchedule(rng, 8, 2)
	lvl := m.CriticalLevel()
	tr, err := Run(s, m, Options{Level: lvl, PS: true, DeadlineSec: float64(s.Makespan) / lvl.Freq * 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"T0"`, `"total_energy"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateOff: "off", StateIdle: "idle", StateRunning: "running", StateSleeping: "sleeping",
		State(9): "state(9)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func BenchmarkSimulate200(b *testing.B) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(6))
	s := randomSchedule(rng, 200, 8)
	lvl := m.CriticalLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s, m, Options{Level: lvl, PS: true, DeadlineSec: deadline}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTransitionCosts: with transition overheads, reclaim still meets every
// WCET bound (switches are reserved inside each task's window), pays the
// configured energy per switch, and downshifts less than with free
// transitions.
func TestTransitionCosts(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(13))
	s := randomSchedule(rng, 30, 3)
	lvl := m.MaxLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 1.2
	speedup := make([]float64, 30)
	for v := range speedup {
		speedup[v] = 0.5
	}
	base := Options{Level: lvl, DeadlineSec: deadline, Speedup: speedup, Reclaim: true}

	free, err := Run(s, m, base)
	if err != nil {
		t.Fatal(err)
	}
	costly := base
	costly.TransitionTime = 50e-6 // 50 us per switch
	costly.TransitionEnergy = 100e-6
	paid, err := Run(s, m, costly)
	if err != nil {
		t.Fatal(err)
	}
	if free.Transitions != 0 {
		t.Errorf("free transitions counted: %d", free.Transitions)
	}
	if paid.Transitions%2 != 0 {
		t.Errorf("odd transition count %d (must be down+up pairs)", paid.Transitions)
	}
	// Every task still respects its WCET bound.
	for v := 0; v < 30; v++ {
		bound := float64(s.Finish[v]) / lvl.Freq
		if paid.FinishSec[v] > bound*(1+1e-9) {
			t.Errorf("task %d finish %.9g past bound %.9g with transitions", v, paid.FinishSec[v], bound)
		}
	}
	// Costed transitions can only reduce the number of downshifted tasks.
	downFree, downPaid := 0, 0
	for v := 0; v < 30; v++ {
		if free.LevelOf[v].Index > lvl.Index {
			downFree++
		}
		if paid.LevelOf[v].Index > lvl.Index {
			downPaid++
		}
	}
	if downPaid > downFree {
		t.Errorf("more downshifts with costed transitions: %d > %d", downPaid, downFree)
	}
	// Overhead accounting: at least TransitionEnergy per switch.
	if paid.Transitions > 0 && paid.Breakdown.Overhead < float64(paid.Transitions)*costly.TransitionEnergy {
		t.Errorf("overhead %g below %d transitions x %g",
			paid.Breakdown.Overhead, paid.Transitions, costly.TransitionEnergy)
	}
	if !paid.DeadlineMet {
		t.Error("deadline missed with transition costs")
	}
}

// TestTransitionSegmentsTile: transition segments participate in the
// per-processor tiling like any other state.
func TestTransitionSegmentsTile(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(14))
	s := randomSchedule(rng, 15, 2)
	lvl := m.MaxLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 1.5
	speedup := make([]float64, 15)
	for v := range speedup {
		speedup[v] = 0.6
	}
	tr, err := Run(s, m, Options{
		Level: lvl, DeadlineSec: deadline, Speedup: speedup, Reclaim: true,
		TransitionTime: 20e-6, TransitionEnergy: 50e-6, PS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	perProc := map[int][]Segment{}
	for _, seg := range tr.Segments {
		perProc[seg.Proc] = append(perProc[seg.Proc], seg)
	}
	sawTransition := false
	for p, segs := range perProc {
		cursor := 0.0
		for i, seg := range segs {
			if seg.State == StateTransition {
				sawTransition = true
			}
			if math.Abs(seg.Begin-cursor) > 1e-12 {
				t.Errorf("proc %d segment %d begins at %g, cursor %g", p, i, seg.Begin, cursor)
			}
			cursor = seg.End
		}
	}
	if tr.Transitions > 0 && !sawTransition {
		t.Error("transitions counted but no transition segments emitted")
	}
	if math.Abs(tr.TotalEnergy()-tr.Breakdown.Total()) > 1e-9*tr.Breakdown.Total() {
		t.Errorf("segment sum %g != breakdown %g", tr.TotalEnergy(), tr.Breakdown.Total())
	}
}
