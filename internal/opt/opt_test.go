package opt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
)

func buildFig4a(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("fig4a")
	for _, w := range []int64{2, 6, 4, 4, 2} {
		b.AddTask(w)
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 4)
	b.AddEdge(2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptimalMakespanKnownValues(t *testing.T) {
	g := buildFig4a(t)
	tests := []struct {
		nprocs int
		want   int64
	}{
		{1, 18}, // total work
		{2, 10}, // the Fig. 7a observation: 2 procs reach the CPL
		{3, 10},
		{9, 10},
	}
	for _, tc := range tests {
		got, err := OptimalMakespan(g, tc.nprocs)
		if err != nil {
			t.Fatalf("OptimalMakespan(%d): %v", tc.nprocs, err)
		}
		if got != tc.want {
			t.Errorf("OptimalMakespan(%d) = %d, want %d", tc.nprocs, got, tc.want)
		}
	}
}

// TestOptimalBeatsAnomalousListSchedule constructs Graham's classic anomaly
// setup where naive list scheduling is suboptimal, and verifies branch and
// bound finds the better value.
func TestOptimalMakespanIndependentTasks(t *testing.T) {
	// Weights 3,3,2,2,2 on 2 processors: optimal 6 (3+3 | 2+2+2), while a
	// bad list order could give 7.
	b := dag.NewBuilder("indep")
	for _, w := range []int64{3, 3, 2, 2, 2} {
		b.AddTask(w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimalMakespan(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("OptimalMakespan = %d, want 6", got)
	}
}

func TestOptimalMakespanTooLarge(t *testing.T) {
	b := dag.NewBuilder("big")
	for i := 0; i < MaxTasks+1; i++ {
		b.AddTask(1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalMakespan(g, 2); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if _, err := OptimalEnergySF(g, power.Default70nm(), 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func randomTiny(rng *rand.Rand, n int) *dag.Graph {
	b := dag.NewBuilder("tiny")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(9) + 1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestPropertyLSNeverBeatsOptimum: the heuristic's makespan is bounded below
// by the exhaustive optimum and above by Graham's factor of it.
func TestPropertyLSNeverBeatsOptimum(t *testing.T) {
	f := func(seed int64, rawN, rawProcs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%7) + 2
		nprocs := int(rawProcs%3) + 1
		g := randomTiny(rng, n)
		optimum, err := OptimalMakespan(g, nprocs)
		if err != nil {
			return false
		}
		ls, err := sched.ListEDF(g, nprocs)
		if err != nil {
			return false
		}
		if ls.Makespan < optimum {
			t.Logf("LS makespan %d below optimum %d ?!", ls.Makespan, optimum)
			return false
		}
		graham := float64(optimum) * (2 - 1/float64(nprocs))
		if float64(ls.Makespan) > graham+1e-9 {
			t.Logf("LS makespan %d above Graham bound of optimum %d", ls.Makespan, optimum)
			return false
		}
		if optimum < sched.MakespanLowerBound(g, nprocs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLAMPSvsOptimalEnergy: on tiny graphs, LAMPS's energy is
// bracketed by the exhaustive optimum (same machine model) from below
// — modulo the level granularity both share — and LAMPS usually attains it.
func TestPropertyLAMPSvsOptimalEnergy(t *testing.T) {
	m := power.Default70nm()
	matches := 0
	total := 0
	f := func(seed int64, rawN, rawF uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%7) + 2
		g := randomTiny(rng, n)
		scaled, err := g.ScaleWeights(3_100_000)
		if err != nil {
			return false
		}
		factor := []float64{1.5, 2, 4, 8}[rawF%4]
		cfg := core.DeadlineFactor(scaled, m, factor)
		opt, err := OptimalEnergySF(scaled, m, cfg.Deadline)
		if err != nil {
			return false
		}
		la, err := core.LAMPS(scaled, cfg)
		if err != nil {
			return false
		}
		total++
		if la.TotalEnergy() < opt.EnergyJ*(1-1e-6) { // 1e-6: Evaluate truncates the horizon to whole cycles
			t.Logf("LAMPS %g J beats the exhaustive optimum %g J ?!", la.TotalEnergy(), opt.EnergyJ)
			return false
		}
		if la.TotalEnergy() <= opt.EnergyJ*(1+1e-6) {
			matches++
		}
		// The optimum itself must respect the LIMIT-SF bound.
		sf, err := core.LimitSF(scaled, cfg)
		if err != nil {
			return false
		}
		return opt.EnergyJ >= sf.TotalEnergy()*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
	if total > 0 && float64(matches)/float64(total) < 0.7 {
		t.Errorf("LAMPS matched the exhaustive optimum on only %d/%d tiny instances", matches, total)
	}
	t.Logf("LAMPS matched the exhaustive optimum on %d/%d tiny instances", matches, total)
}

func TestOptimalEnergySFInfeasible(t *testing.T) {
	g := buildFig4a(t)
	scaled, err := g.ScaleWeights(3_100_000)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Default70nm()
	cplSec := float64(scaled.CriticalPathLength()) / m.FMax()
	if _, err := OptimalEnergySF(scaled, m, cplSec/2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := OptimalEnergySF(scaled, m, -1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("negative deadline err = %v", err)
	}
}

func TestOptimalEnergySFPicksSensibleLevel(t *testing.T) {
	g := buildFig4a(t)
	scaled, err := g.ScaleWeights(3_100_000)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Default70nm()
	// Loose deadline: with idle power charged, very low frequencies are
	// penalised; the optimum should sit at or above... simply: it must be a
	// valid ladder level and meet the deadline.
	d := 8 * float64(scaled.CriticalPathLength()) / m.FMax()
	r, err := OptimalEnergySF(scaled, m, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumProcs < 1 || r.NumProcs > scaled.MaxWidth() {
		t.Errorf("NumProcs = %d", r.NumProcs)
	}
	if float64(r.Makespan)/r.Level.Freq > d*(1+1e-9) {
		t.Errorf("optimal config misses deadline")
	}
	// On this graph at 8x, one processor at a deep level wins.
	if r.NumProcs != 1 {
		t.Errorf("NumProcs = %d, want 1 on a loose deadline", r.NumProcs)
	}
}

func BenchmarkOptimalMakespan8(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := randomTiny(rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalMakespan(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}
