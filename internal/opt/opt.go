// Package opt computes provably optimal reference solutions for small task
// graphs by exhaustive branch and bound. It exists to validate the
// heuristics: LS-EDF's makespan can be compared against the true optimum,
// and LAMPS against the energy-optimal processor-count/level pair.
//
// Key observation: without shutdown and with one common frequency, the
// energy of a schedule depends only on the employed processor count N and
// the operating point — active energy W/f·P plus idle energy
// (N·D − W/f)·P_idle — not on the task placement. The schedule only decides
// *feasibility* through its makespan. The energy-optimal single-frequency
// solution is therefore min over (N, level) of a closed form, subject to
// OptimalMakespan(g, N)/f ≤ D, which branch and bound settles exactly for
// small graphs.
package opt

import (
	"errors"
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// MaxTasks bounds the graph size accepted by the exhaustive search.
const MaxTasks = 12

// Errors returned by the package.
var (
	ErrTooLarge   = errors.New("opt: graph too large for exhaustive search")
	ErrInfeasible = errors.New("opt: deadline infeasible")
)

// OptimalMakespan returns the minimum possible makespan of g on nprocs
// identical processors, found by branch and bound over semi-active
// schedules (an optimal semi-active schedule always exists for makespan).
func OptimalMakespan(g *dag.Graph, nprocs int) (int64, error) {
	n := g.NumTasks()
	if n > MaxTasks {
		return 0, fmt.Errorf("%w: %d tasks (max %d)", ErrTooLarge, n, MaxTasks)
	}
	if nprocs < 1 {
		return 0, fmt.Errorf("opt: nprocs %d", nprocs)
	}
	if nprocs > n {
		nprocs = n
	}
	// Upper bound from LS-EDF; the optimum can only improve on it.
	ls, err := sched.ListEDF(g, nprocs)
	if err != nil {
		return 0, err
	}
	best := ls.Makespan

	finish := make([]int64, n)
	free := make([]int64, nprocs)
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(v))
	}

	lower := sched.MakespanLowerBound(g, nprocs)

	var dfs func(scheduled int, cur int64)
	dfs = func(scheduled int, cur int64) {
		if cur >= best {
			return // dominated
		}
		if scheduled == n {
			best = cur
			return
		}
		// Path-based lower bound: every unscheduled ready task still needs
		// its bottom level after its earliest start.
		for v := 0; v < n; v++ {
			if indeg[v] < 0 {
				continue // already scheduled
			}
			est := int64(0)
			if indeg[v] == 0 {
				for _, p := range g.Preds(v) {
					if finish[p] > est {
						est = finish[p]
					}
				}
				if est+g.BottomLevel(v) >= best {
					return
				}
			}
		}
		// Branch: choose a ready task and a processor. Processors with equal
		// free times are interchangeable; branch only on distinct values.
		for v := 0; v < n; v++ {
			if indeg[v] != 0 {
				continue
			}
			ready := int64(0)
			for _, p := range g.Preds(v) {
				if finish[p] > ready {
					ready = finish[p]
				}
			}
			seen := map[int64]bool{}
			for p := 0; p < nprocs; p++ {
				if seen[free[p]] {
					continue
				}
				seen[free[p]] = true
				start := free[p]
				if ready > start {
					start = ready
				}
				fin := start + g.Weight(v)
				if fin >= best {
					continue
				}
				// Apply.
				oldFree := free[p]
				free[p] = fin
				finish[v] = fin
				indeg[v] = -1
				for _, s := range g.Succs(v) {
					indeg[s]--
				}
				next := cur
				if fin > next {
					next = fin
				}
				dfs(scheduled+1, next)
				// Undo.
				for _, s := range g.Succs(v) {
					indeg[s]++
				}
				indeg[v] = 0
				finish[v] = 0
				free[p] = oldFree
				if best <= lower {
					return // cannot improve further
				}
			}
		}
	}
	dfs(0, 0)
	return best, nil
}

// SFResult is the energy-optimal single-frequency, no-shutdown solution.
type SFResult struct {
	NumProcs int
	Level    power.Level
	EnergyJ  float64
	Makespan int64 // optimal makespan at NumProcs, in cycles
}

// OptimalEnergySF returns the minimum-energy (processor count, level) pair
// for the single-frequency machine without shutdown, using exhaustive
// optimal makespans for feasibility. It is a lower bound for S&S and LAMPS
// (which use the same machine model but a heuristic scheduler) and an upper
// bound for LIMIT-SF (which additionally assumes free idling).
func OptimalEnergySF(g *dag.Graph, m *power.Model, deadlineSec float64) (*SFResult, error) {
	n := g.NumTasks()
	if n > MaxTasks {
		return nil, fmt.Errorf("%w: %d tasks (max %d)", ErrTooLarge, n, MaxTasks)
	}
	if deadlineSec <= 0 {
		return nil, fmt.Errorf("%w: deadline %g", ErrInfeasible, deadlineSec)
	}
	maxN := g.MaxWidth()
	makespans := make([]int64, maxN+1)
	for N := 1; N <= maxN; N++ {
		mk, err := OptimalMakespan(g, N)
		if err != nil {
			return nil, err
		}
		makespans[N] = mk
	}
	work := float64(g.TotalWork())
	var best *SFResult
	for N := 1; N <= maxN; N++ {
		for _, lvl := range m.Levels() {
			if float64(makespans[N])/lvl.Freq > deadlineSec*(1+1e-12) {
				continue
			}
			busy := work / lvl.Freq
			e := busy*m.LevelPower(lvl) + (float64(N)*deadlineSec-busy)*m.IdlePower(lvl)
			if best == nil || e < best.EnergyJ {
				best = &SFResult{NumProcs: N, Level: lvl, EnergyJ: e, Makespan: makespans[N]}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: CPL %d cycles in %gs", ErrInfeasible, g.CriticalPathLength(), deadlineSec)
	}
	return best, nil
}
