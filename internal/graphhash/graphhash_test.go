package graphhash

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/mpeg"
	"lamps/internal/power"
	"lamps/internal/stg"
)

var update = flag.Bool("update", false, "rewrite testdata/digests.golden")

// corpus returns the fixed set of (name, problem) pairs whose digests are
// pinned in testdata/digests.golden. The STG files in testdata/ plus the
// built-in MPEG GOP cover chains, diamonds, fork-joins, layered and
// series-parallel random graphs, several deadlines, processor caps and
// approaches, and a non-default power model.
func corpus(t *testing.T) map[string]Problem {
	t.Helper()
	graphs := map[string]*dag.Graph{"mpeg": mpeg.Fig9()}
	files, err := filepath.Glob(filepath.Join("testdata", "*.stg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .stg files in testdata/")
	}
	for _, f := range files {
		r, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		g, err := stg.Parse(r, strings.TrimSuffix(filepath.Base(f), ".stg"))
		r.Close()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		graphs[strings.TrimSuffix(filepath.Base(f), ".stg")] = g
	}

	leaky := power.Default70nm()
	leaky.Lg *= 2 // double the leakage gates: a distinct, valid model
	if err := leaky.Build(); err != nil {
		t.Fatal(err)
	}

	problems := make(map[string]Problem)
	for name, g := range graphs {
		problems[name+"/lamps-d2"] = Problem{Graph: g, Deadline: 2, Approach: "LAMPS"}
		problems[name+"/ss+ps-d0.5"] = Problem{Graph: g, Deadline: 0.5, Approach: "S&S+PS"}
		problems[name+"/lamps+ps-d2-p4"] = Problem{Graph: g, Deadline: 2, MaxProcs: 4, Approach: "LAMPS+PS"}
		problems[name+"/lamps-d2-leaky"] = Problem{Graph: g, Model: leaky, Deadline: 2, Approach: "LAMPS"}
	}
	return problems
}

// TestGolden pins every corpus digest. A failure means the canonical
// encoding changed: any deployed result cache keyed by these digests would
// be silently poisoned. If the change is intentional, bump Version in
// graphhash.go and regenerate with `go test ./internal/graphhash -update`.
func TestGolden(t *testing.T) {
	problems := corpus(t)
	got := make(map[string]string, len(problems))
	for name, p := range problems {
		got[name] = Sum(p)
	}

	goldenPath := filepath.Join("testdata", "digests.golden")
	if *update {
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		sb.WriteString("# pinned canonical digests — regenerate with: go test ./internal/graphhash -update\n")
		for _, n := range names {
			fmt.Fprintf(&sb, "%s %s\n", n, got[n])
		}
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open golden file (regenerate with -update): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d digests, corpus has %d", len(want), len(got))
	}
	for name, w := range want {
		if g, ok := got[name]; !ok {
			t.Errorf("%s: in golden file but not in corpus", name)
		} else if g != w {
			t.Errorf("%s: digest %s, golden %s — canonical encoding changed; see TestGolden doc", name, g, w)
		}
	}
}

// TestNameAndLabelsExcluded asserts that presentation metadata does not
// influence the digest, so structurally identical graphs share cache
// entries.
func TestNameAndLabelsExcluded(t *testing.T) {
	g := mpeg.Fig9()
	p := Problem{Graph: g, Deadline: 1, Approach: "LAMPS"}
	q := p
	q.Graph = g.Rename("something else entirely")
	if Sum(p) != Sum(q) {
		t.Error("renaming the graph changed the digest")
	}

	// Rebuild the same structure without labels.
	b := dag.NewBuilder("x")
	for v := 0; v < g.NumTasks(); v++ {
		b.AddTask(g.Weight(v))
	}
	for v := 0; v < g.NumTasks(); v++ {
		for _, s := range g.Succs(v) {
			b.AddEdge(v, int(s))
		}
	}
	unlabeled, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q.Graph = unlabeled
	if Sum(p) != Sum(q) {
		t.Error("stripping labels changed the digest")
	}
}

// TestSensitivity asserts that every semantic input perturbs the digest.
func TestSensitivity(t *testing.T) {
	build := func(weights []int64, edges [][2]int) *dag.Graph {
		b := dag.NewBuilder("")
		for _, w := range weights {
			b.AddTask(w)
		}
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	base := Problem{
		Graph:    build([]int64{10, 20, 30}, [][2]int{{0, 1}, {0, 2}}),
		Deadline: 2,
		MaxProcs: 0,
		Approach: "LAMPS",
	}
	ref := Sum(base)

	leaky := power.Default70nm()
	leaky.POn *= 2
	if err := leaky.Build(); err != nil {
		t.Fatal(err)
	}

	variants := map[string]Problem{
		"weight":   {Graph: build([]int64{10, 20, 31}, [][2]int{{0, 1}, {0, 2}}), Deadline: 2, Approach: "LAMPS"},
		"edge":     {Graph: build([]int64{10, 20, 30}, [][2]int{{0, 1}, {1, 2}}), Deadline: 2, Approach: "LAMPS"},
		"deadline": {Graph: base.Graph, Deadline: 2.5, Approach: "LAMPS"},
		"maxprocs": {Graph: base.Graph, Deadline: 2, MaxProcs: 2, Approach: "LAMPS"},
		"approach": {Graph: base.Graph, Deadline: 2, Approach: "LAMPS+PS"},
		"model":    {Graph: base.Graph, Model: leaky, Deadline: 2, Approach: "LAMPS"},
	}
	for what, p := range variants {
		if Sum(p) == ref {
			t.Errorf("changing %s did not change the digest", what)
		}
	}

	// Nil model must hash identically to the explicit default model.
	explicit := base
	explicit.Model = power.Default70nm()
	if Sum(explicit) != ref {
		t.Error("explicit default model hashes differently from nil model")
	}
}

// TestFraming guards against length-extension-style ambiguity: moving a
// weight across the task/edge boundary must not collide.
func TestFraming(t *testing.T) {
	b1 := dag.NewBuilder("")
	b1.AddTask(7)
	b1.AddTask(7)
	g1, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}
	b2 := dag.NewBuilder("")
	b2.AddTask(7)
	b2.AddTask(7)
	b2.AddEdge(0, 1)
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	p1 := Problem{Graph: g1, Deadline: 1, Approach: "S&S"}
	p2 := Problem{Graph: g2, Deadline: 1, Approach: "S&S"}
	if Sum(p1) == Sum(p2) {
		t.Error("independent pair and chain hash identically")
	}
}

// TestHasherMatchesSum pins the sweep fast path to the canonical encoding:
// for every corpus problem, the per-cell digest derived from the shared
// graph+model prefix must equal Sum of the full problem. A divergence here
// would silently split the result cache between the schedule and sweep
// endpoints.
func TestHasherMatchesSum(t *testing.T) {
	for name, p := range corpus(t) {
		h := NewHasher(p.Graph, p.Model)
		if got, want := h.Cell(p.Deadline, p.MaxProcs, p.Approach), Sum(p); got != want {
			t.Errorf("%s: Hasher.Cell = %s, Sum = %s", name, got, want)
		}
		// Deriving more cells from the same hasher must not corrupt the
		// shared prefix state.
		for i, d := range []float64{0.001, 0.5, 8} {
			q := p
			q.Deadline, q.MaxProcs = d, i
			if got, want := h.Cell(d, i, p.Approach), Sum(q); got != want {
				t.Errorf("%s cell %d: Hasher.Cell = %s, Sum = %s", name, i, got, want)
			}
		}
	}
}

// TestHasherWithoutSnapshot exercises the recompute fallback used when the
// hash state cannot be marshaled.
func TestHasherWithoutSnapshot(t *testing.T) {
	for name, p := range corpus(t) {
		h := NewHasher(p.Graph, p.Model)
		h.state = nil // force the slow path
		if got, want := h.Cell(p.Deadline, p.MaxProcs, p.Approach), Sum(p); got != want {
			t.Errorf("%s: fallback Cell = %s, Sum = %s", name, got, want)
		}
	}
}
