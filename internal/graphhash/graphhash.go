// Package graphhash computes a canonical digest of a scheduling problem:
// the task graph's structure, the platform power model, the deadline, the
// processor cap and the approach name. Two problems with equal digests are
// guaranteed to produce identical scheduling results, which makes the digest
// safe to use as a cache key for memoising results across requests.
//
// Canonicality rules:
//
//   - The graph's name and task labels are excluded: they are presentation
//     metadata and do not influence scheduling. Structurally identical graphs
//     submitted under different names share one cache entry.
//   - Weights and adjacency are encoded in task-index order with explicit
//     length framing, so no two distinct structures share an encoding.
//   - Every float enters the digest via its IEEE-754 bit pattern — no
//     formatting, no rounding.
//   - The encoding is versioned. Bump the version string whenever the
//     encoding or any semantic input changes, so stale digests can never
//     alias fresh ones.
//
// The digest is pinned by golden-file tests in testdata/: an accidental
// change to the encoding (which would silently poison result caches keyed by
// it) fails CI rather than surfacing as wrong serving results.
package graphhash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"lamps/internal/dag"
	"lamps/internal/power"
)

// Version identifies the encoding. It is folded into every digest.
const Version = "lamps/graphhash/v1"

// Problem is one cacheable scheduling problem.
type Problem struct {
	Graph    *dag.Graph
	Model    *power.Model // nil selects power.Default70nm()
	Deadline float64      // seconds
	MaxProcs int          // 0 = bounded only by graph parallelism
	Approach string       // canonical approach name, e.g. "LAMPS+PS"
}

// Sum returns the hex-encoded SHA-256 digest of the problem's canonical
// encoding.
func Sum(p Problem) string {
	h := sha256.New()
	writeString(h, Version)

	g := p.Graph
	writeInt(h, int64(g.NumTasks()))
	for v := 0; v < g.NumTasks(); v++ {
		writeInt(h, g.Weight(v))
	}
	// Adjacency: successor lists are sorted by the dag builder, so iterating
	// tasks in index order yields a canonical edge enumeration.
	writeInt(h, int64(g.NumEdges()))
	for v := 0; v < g.NumTasks(); v++ {
		succs := g.Succs(v)
		writeInt(h, int64(len(succs)))
		for _, s := range succs {
			writeInt(h, int64(s))
		}
	}

	m := p.Model
	if m == nil {
		m = power.Default70nm()
	}
	for _, f := range []float64{
		m.K1, m.K2, m.K3, m.K4, m.K5, m.K6, m.K7,
		m.Vdd0, m.Vbs, m.Alpha, m.Vth1, m.Ij, m.Ceff, m.Ld, m.Lg,
		m.Activity, m.POn, m.PSleep, m.EOverhead,
		m.VddMax, m.VddMin, m.VddStep,
	} {
		writeFloat(h, f)
	}

	writeFloat(h, p.Deadline)
	writeInt(h, int64(p.MaxProcs))
	writeString(h, p.Approach)
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func writeFloat(h hash.Hash, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	h.Write(buf[:])
}

func writeString(h hash.Hash, s string) {
	writeInt(h, int64(len(s)))
	h.Write([]byte(s))
}
