// Package graphhash computes a canonical digest of a scheduling problem:
// the task graph's structure, the platform power model, the deadline, the
// processor cap and the approach name. Two problems with equal digests are
// guaranteed to produce identical scheduling results, which makes the digest
// safe to use as a cache key for memoising results across requests.
//
// Canonicality rules:
//
//   - The graph's name and task labels are excluded: they are presentation
//     metadata and do not influence scheduling. Structurally identical graphs
//     submitted under different names share one cache entry.
//   - Weights and adjacency are encoded in task-index order with explicit
//     length framing, so no two distinct structures share an encoding.
//   - Every float enters the digest via its IEEE-754 bit pattern — no
//     formatting, no rounding.
//   - The encoding is versioned. Bump the version string whenever the
//     encoding or any semantic input changes, so stale digests can never
//     alias fresh ones.
//
// The digest is pinned by golden-file tests in testdata/: an accidental
// change to the encoding (which would silently poison result caches keyed by
// it) fails CI rather than surfacing as wrong serving results.
package graphhash

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"lamps/internal/dag"
	"lamps/internal/power"
)

// Version identifies the encoding. It is folded into every digest.
const Version = "lamps/graphhash/v1"

// Problem is one cacheable scheduling problem.
type Problem struct {
	Graph    *dag.Graph
	Model    *power.Model    // nil selects power.Default70nm(); ignored when Platform is set
	Platform *power.Platform // optional heterogeneous platform; nil = homogeneous Model machine
	Deadline float64         // seconds
	MaxProcs int             // 0 = bounded only by graph parallelism
	Approach string          // canonical approach name, e.g. "LAMPS+PS"

	// FaultsK and FaultsPolicy describe the fault-tolerance request. K=0
	// (fault tolerance off) writes nothing, so every pre-fault digest is
	// unchanged; K>0 writes a tagged block, so fault-tolerant problems can
	// never alias their non-tolerant twins. Pass the resolved canonical
	// policy string (e.g. "backup-anywhere"), never a user-supplied alias.
	FaultsK      int
	FaultsPolicy string
}

// Sum returns the hex-encoded SHA-256 digest of the problem's canonical
// encoding.
func Sum(p Problem) string {
	h := sha256.New()
	writePrefix(h, p.Graph, p.Model, p.Platform, p.FaultsK, p.FaultsPolicy)
	writeCell(h, p.Deadline, p.MaxProcs, p.Approach)
	return hex.EncodeToString(h.Sum(nil))
}

// writePrefix encodes the cell-independent part of a problem: the version
// string, the graph structure and the power model — followed, for platform
// problems only, by a tagged platform block (class names and model
// constants in class order, then the processor-to-class assignment). A nil
// platform writes nothing extra, so every pre-platform digest — and the
// golden files and persistent stores keyed by them — is unchanged; the tag
// plus framing guarantees no platform stream can collide with a
// non-platform one. A fault-tolerance request (faultsK > 0) appends its own
// tagged block under the same rules: K=0 streams are byte-identical to
// pre-fault ones.
func writePrefix(h hash.Hash, g *dag.Graph, m *power.Model, pf *power.Platform, faultsK int, faultsPolicy string) {
	writeString(h, Version)

	writeInt(h, int64(g.NumTasks()))
	for v := 0; v < g.NumTasks(); v++ {
		writeInt(h, g.Weight(v))
	}
	// Adjacency: successor lists are sorted by the dag builder, so iterating
	// tasks in index order yields a canonical edge enumeration.
	writeInt(h, int64(g.NumEdges()))
	for v := 0; v < g.NumTasks(); v++ {
		succs := g.Succs(v)
		writeInt(h, int64(len(succs)))
		for _, s := range succs {
			writeInt(h, int64(s))
		}
	}

	if m == nil {
		m = power.Default70nm()
	}
	writeModel(h, m)

	if pf != nil {
		writeString(h, "platform")
		writeInt(h, int64(pf.NumClasses()))
		for c := 0; c < pf.NumClasses(); c++ {
			writeString(h, pf.Class(c).Name)
			writeModel(h, pf.ClassModel(c))
		}
		writeInt(h, int64(pf.NumProcs()))
		for p := 0; p < pf.NumProcs(); p++ {
			writeInt(h, int64(pf.ClassOf(p)))
		}
	}

	if faultsK > 0 {
		writeString(h, "faults")
		writeInt(h, int64(faultsK))
		writeString(h, faultsPolicy)
	}
}

// writeModel encodes a power model's defining constants (the built ladder is
// derived from them).
func writeModel(h hash.Hash, m *power.Model) {
	for _, f := range []float64{
		m.K1, m.K2, m.K3, m.K4, m.K5, m.K6, m.K7,
		m.Vdd0, m.Vbs, m.Alpha, m.Vth1, m.Ij, m.Ceff, m.Ld, m.Lg,
		m.Activity, m.POn, m.PSleep, m.EOverhead,
		m.VddMax, m.VddMin, m.VddStep,
	} {
		writeFloat(h, f)
	}
}

// writeCell encodes the per-cell suffix of a problem: deadline, processor
// cap and approach.
func writeCell(h hash.Hash, deadline float64, maxProcs int, approach string) {
	writeFloat(h, deadline)
	writeInt(h, int64(maxProcs))
	writeString(h, approach)
}

// Hasher derives the digests of many problems sharing one graph and power
// model — the cells of a sweep grid. The shared prefix (version, graph
// structure, model constants) is hashed once and its state snapshot reused,
// so each cell key costs O(1) instead of re-encoding the whole graph.
// Hasher.Cell and Sum are guaranteed to agree: both write through the same
// encoder functions.
type Hasher struct {
	graph        *dag.Graph
	model        *power.Model
	platform     *power.Platform
	faultsK      int
	faultsPolicy string
	state        []byte // marshaled sha256 state after the prefix; nil = recompute
}

// NewHasher returns a Hasher for problems over the given graph and model
// (nil model selects power.Default70nm()).
func NewHasher(g *dag.Graph, m *power.Model) *Hasher {
	return newHasher(g, m, nil, 0, "")
}

// NewPlatformHasher returns a Hasher for problems over the given graph and
// heterogeneous platform; its cells agree with Sum of the equivalent
// Problem{Platform: pf}.
func NewPlatformHasher(g *dag.Graph, pf *power.Platform) *Hasher {
	return newHasher(g, nil, pf, 0, "")
}

// NewProblemHasher returns a Hasher sharing p's whole cell-independent
// prefix — graph, model or platform, and fault-tolerance request. Deadline,
// MaxProcs and Approach on p are ignored; Cell supplies them. Its cells
// agree with Sum of the equivalent Problem.
func NewProblemHasher(p Problem) *Hasher {
	return newHasher(p.Graph, p.Model, p.Platform, p.FaultsK, p.FaultsPolicy)
}

func newHasher(g *dag.Graph, m *power.Model, pf *power.Platform, faultsK int, faultsPolicy string) *Hasher {
	hr := &Hasher{graph: g, model: m, platform: pf, faultsK: faultsK, faultsPolicy: faultsPolicy}
	h := sha256.New()
	writePrefix(h, g, m, pf, faultsK, faultsPolicy)
	if mb, ok := h.(encoding.BinaryMarshaler); ok {
		if st, err := mb.MarshalBinary(); err == nil {
			hr.state = st
		}
	}
	return hr
}

// Cell returns the digest of the problem {graph, model, deadline, maxProcs,
// approach}, identical to Sum of the equivalent Problem.
func (hr *Hasher) Cell(deadline float64, maxProcs int, approach string) string {
	h := sha256.New()
	restored := false
	if hr.state != nil {
		if ub, ok := h.(encoding.BinaryUnmarshaler); ok {
			restored = ub.UnmarshalBinary(hr.state) == nil
		}
	}
	if !restored {
		writePrefix(h, hr.graph, hr.model, hr.platform, hr.faultsK, hr.faultsPolicy)
	}
	writeCell(h, deadline, maxProcs, approach)
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func writeFloat(h hash.Hash, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	h.Write(buf[:])
}

func writeString(h hash.Hash, s string) {
	writeInt(h, int64(len(s)))
	h.Write([]byte(s))
}
