package graphhash

import "testing"

// TestFaultsSensitivity asserts the faults block perturbs the digest
// exactly when it should: K=0 problems — whatever the policy string says —
// are byte-identical to pre-fault encodings, while K and the policy each
// distinguish digests, on homogeneous and platform problems alike.
func TestFaultsSensitivity(t *testing.T) {
	g := platformGraph(t)
	pf := makePlatform(t, "lp", 0.85, []int{0, 0, 0, 1})

	bases := map[string]Problem{
		"model":    {Graph: g, Deadline: 2, Approach: "LAMPS+PS"},
		"platform": {Graph: g, Platform: pf, Deadline: 2, Approach: "LAMPS+PS"},
	}
	for name, base := range bases {
		off := base
		off.FaultsPolicy = "backup-anywhere" // ignored at K=0
		if Sum(off) != Sum(base) {
			t.Errorf("%s: K=0 digest differs from the pre-fault encoding", name)
		}

		k1 := base
		k1.FaultsK = 1
		k1.FaultsPolicy = "backup-anywhere"
		k2 := k1
		k2.FaultsK = 2
		hplp := k1
		hplp.FaultsPolicy = "primary-hp-backup-lp"
		seen := map[string]string{Sum(base): "base"}
		for label, p := range map[string]Problem{"k1": k1, "k2": k2, "k1-hplp": hplp} {
			d := Sum(p)
			if prev, dup := seen[d]; dup {
				t.Errorf("%s: %s and %s share digest %s", name, label, prev, d)
			}
			seen[d] = label
		}
	}
}

// TestProblemHasherMatchesSum pins the sweep fast path for fault-tolerant
// problems: NewProblemHasher's cells must agree with Sum for every
// (deadline, procs, approach) cell, both with and without a faults block,
// and on the recompute fallback.
func TestProblemHasherMatchesSum(t *testing.T) {
	g := platformGraph(t)
	pf := makePlatform(t, "lp", 0.85, []int{0, 0, 0, 1})
	for _, p := range []Problem{
		{Graph: g},
		{Graph: g, FaultsK: 1, FaultsPolicy: "backup-anywhere"},
		{Graph: g, Platform: pf, FaultsK: 2, FaultsPolicy: "primary-hp-backup-lp"},
	} {
		h := NewProblemHasher(p)
		for i, d := range []float64{0.5, 2, 8} {
			q := p
			q.Deadline, q.MaxProcs, q.Approach = d, i, "LAMPS+PS"
			if got, want := h.Cell(d, i, "LAMPS+PS"), Sum(q); got != want {
				t.Errorf("faultsK=%d cell %d: Hasher.Cell = %s, Sum = %s", p.FaultsK, i, got, want)
			}
		}
		h.state = nil // force the recompute fallback
		q := p
		q.Deadline, q.Approach = 1, "S&S"
		if got, want := h.Cell(1, 0, "S&S"), Sum(q); got != want {
			t.Errorf("faultsK=%d fallback Cell = %s, Sum = %s", p.FaultsK, got, want)
		}
	}
}
