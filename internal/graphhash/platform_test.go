package graphhash

import (
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
)

// platformProblems builds a small fixed graph plus a heterogeneous LP/HP
// platform for the digest tests.
func platformGraph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("")
	b.AddTask(10)
	b.AddTask(20)
	b.AddTask(30)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func makePlatform(t *testing.T, lpName string, lpVddMax float64, procs []int) *power.Platform {
	t.Helper()
	lp := *power.Default70nm()
	lp.VddMax = lpVddMax
	lp.POn = 0.04
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: lpName, Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		procs,
	)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestPlatformSensitivity asserts that the platform block perturbs the
// digest exactly when it should: presence, class constants, class names,
// the processor-to-class assignment and the machine size must all be
// distinguished, while nil-platform digests are byte-identical to the
// pre-platform encoding (the same encoder path with nothing appended).
func TestPlatformSensitivity(t *testing.T) {
	g := platformGraph(t)
	base := Problem{
		Graph:    g,
		Platform: makePlatform(t, "lp", 0.85, []int{0, 0, 0, 1}),
		Deadline: 2,
		Approach: "LAMPS",
	}
	ref := Sum(base)

	bare := base
	bare.Platform = nil
	if Sum(bare) == ref {
		t.Error("adding a platform did not change the digest")
	}

	variants := map[string]*power.Platform{
		"class constants":  makePlatform(t, "lp", 0.90, []int{0, 0, 0, 1}),
		"class name":       makePlatform(t, "little", 0.85, []int{0, 0, 0, 1}),
		"class assignment": makePlatform(t, "lp", 0.85, []int{0, 0, 1, 0}),
		"class mix":        makePlatform(t, "lp", 0.85, []int{0, 0, 1, 1}),
		"machine size":     makePlatform(t, "lp", 0.85, []int{0, 0, 0, 1, 1}),
	}
	for what, pf := range variants {
		p := base
		p.Platform = pf
		if Sum(p) == ref {
			t.Errorf("changing the platform's %s did not change the digest", what)
		}
	}

	// A homogeneous single-class platform is scheduled exactly like its bare
	// model (core normalises it away), but it is a distinct request shape and
	// may hash distinctly; what matters is determinism.
	hom, err := power.Homogeneous(4, power.Default70nm())
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Platform = hom
	if Sum(p) != Sum(p) {
		t.Error("platform digest is not deterministic")
	}
}

// TestPlatformDigestIndependentOfModelField: when a platform is set the
// Model field is documented as ignored; the digest must not smuggle it in,
// or equal problems would split the result cache.
func TestPlatformDigestIndependentOfModelField(t *testing.T) {
	g := platformGraph(t)
	pf := makePlatform(t, "lp", 0.85, []int{0, 0, 0, 1})
	withNil := Problem{Graph: g, Platform: pf, Deadline: 2, Approach: "LAMPS"}
	withDefault := withNil
	withDefault.Model = power.Default70nm()
	if Sum(withNil) != Sum(withDefault) {
		t.Error("explicit default Model changes a platform problem's digest")
	}
}

// TestPlatformHasherMatchesSum pins the sweep fast path for platform
// problems: NewPlatformHasher's cells must agree with Sum, both on the
// snapshot-restore path and the recompute fallback.
func TestPlatformHasherMatchesSum(t *testing.T) {
	g := platformGraph(t)
	pf := makePlatform(t, "lp", 0.85, []int{0, 0, 0, 1})
	h := NewPlatformHasher(g, pf)
	for i, d := range []float64{0.001, 0.5, 2, 8} {
		p := Problem{Graph: g, Platform: pf, Deadline: d, MaxProcs: i, Approach: "LAMPS+PS"}
		if got, want := h.Cell(d, i, "LAMPS+PS"), Sum(p); got != want {
			t.Errorf("cell %d: Hasher.Cell = %s, Sum = %s", i, got, want)
		}
	}
	h.state = nil // force the recompute fallback
	p := Problem{Graph: g, Platform: pf, Deadline: 1, Approach: "S&S"}
	if got, want := h.Cell(1, 0, "S&S"), Sum(p); got != want {
		t.Errorf("fallback Cell = %s, Sum = %s", got, want)
	}
}
