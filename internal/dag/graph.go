// Package dag implements the weighted directed acyclic task-graph model used
// throughout the library.
//
// Applications are represented as weighted DAGs where nodes correspond to
// tasks, edges to task dependences, and node weights to task processing
// times expressed in processor cycles at the maximum clock frequency
// (de Langen & Juurlink, Section 3.1). The package provides construction,
// validation, and the structural analyses (topological order, critical path,
// bottom/top levels, parallelism) the scheduling heuristics rely on.
package dag

import (
	"errors"
	"fmt"
)

// Common construction and analysis errors.
var (
	// ErrCycle is returned when the edge set contains a directed cycle.
	ErrCycle = errors.New("dag: graph contains a cycle")
	// ErrBadWeight is returned for non-positive task weights.
	ErrBadWeight = errors.New("dag: task weight must be positive")
	// ErrBadTask is returned when an edge references an unknown task.
	ErrBadTask = errors.New("dag: task index out of range")
	// ErrSelfEdge is returned for an edge from a task to itself.
	ErrSelfEdge = errors.New("dag: self edge")
	// ErrDupEdge is returned when the same edge is added twice.
	ErrDupEdge = errors.New("dag: duplicate edge")
	// ErrEmpty is returned when a graph with no tasks is built.
	ErrEmpty = errors.New("dag: graph has no tasks")
)

// Graph is an immutable weighted task DAG. Create one with a Builder.
//
// Tasks are identified by dense integer indices 0..NumTasks()-1. Weights are
// processing times in cycles at the maximum frequency; wall-clock duration at
// a scaled frequency f is weight/f seconds.
type Graph struct {
	name    string
	weights []int64
	labels  []string // optional task labels; may be nil
	nEdges  int

	// Adjacency in compressed sparse row (CSR) layout: the successors of
	// task v are succAdj[succOff[v]:succOff[v+1]], sorted ascending, and
	// likewise for predecessors. One flat array per direction keeps
	// dependency walks cache-friendly and makes the whole graph two
	// allocations instead of 2n.
	succAdj []int32
	succOff []int32 // len NumTasks()+1
	predAdj []int32
	predOff []int32 // len NumTasks()+1

	// Derived data, computed once in Builder.Build.
	topo     []int32 // a topological order of all tasks
	blevel   []int64 // longest path to a sink, including the task's own weight
	tlevel   []int64 // longest path from a source, excluding the task's own weight
	sources  []int32 // tasks with no predecessors, ascending
	sinks    []int32 // tasks with no successors, ascending
	cpl      int64   // critical path length, in cycles
	work     int64   // sum of all weights, in cycles
	maxWidth int     // upper bound on useful processors (antichain estimate)
}

// Name returns the graph's descriptive name (may be empty).
func (g *Graph) Name() string { return g.name }

// NumTasks returns the number of tasks in the graph.
func (g *Graph) NumTasks() int { return len(g.weights) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() int { return g.nEdges }

// Weight returns the processing time of task v in cycles.
func (g *Graph) Weight(v int) int64 { return g.weights[v] }

// Label returns the optional label of task v, or "" when unset.
func (g *Graph) Label(v int) string {
	if g.labels == nil {
		return ""
	}
	return g.labels[v]
}

// Succs returns the direct successors of task v in ascending order. The
// returned slice is a view into the graph's CSR adjacency, owned by the
// graph, and must not be modified.
func (g *Graph) Succs(v int) []int32 { return g.succAdj[g.succOff[v]:g.succOff[v+1]] }

// Preds returns the direct predecessors of task v in ascending order. The
// returned slice is a view into the graph's CSR adjacency, owned by the
// graph, and must not be modified.
func (g *Graph) Preds(v int) []int32 { return g.predAdj[g.predOff[v]:g.predOff[v+1]] }

// InDegree returns the number of direct predecessors of task v.
func (g *Graph) InDegree(v int) int { return int(g.predOff[v+1] - g.predOff[v]) }

// OutDegree returns the number of direct successors of task v.
func (g *Graph) OutDegree(v int) int { return int(g.succOff[v+1] - g.succOff[v]) }

// TotalWork returns the sum of all task weights in cycles. The paper calls
// this the total amount of work W.
func (g *Graph) TotalWork() int64 { return g.work }

// CriticalPathLength returns the length of the longest weighted path in
// cycles (CPL). Deadlines in the paper's evaluation are multiples of the CPL.
func (g *Graph) CriticalPathLength() int64 { return g.cpl }

// Parallelism returns the average amount of parallelism, defined in the
// paper as total work divided by the critical path length. A linked list has
// parallelism 1.
func (g *Graph) Parallelism() float64 {
	return float64(g.work) / float64(g.cpl)
}

// TopoOrder returns a topological order of all task indices. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) TopoOrder() []int32 { return g.topo }

// BottomLevel returns the length of the longest path from task v to any
// sink, including v's own weight. Tasks on a critical path have
// BottomLevel(v) + TopLevel(v) == CriticalPathLength().
func (g *Graph) BottomLevel(v int) int64 { return g.blevel[v] }

// TopLevel returns the length of the longest path from any source up to (but
// excluding) task v; it is the earliest possible start time of v in cycles
// on an unbounded machine.
func (g *Graph) TopLevel(v int) int64 { return g.tlevel[v] }

// MaxWidth returns an upper bound on the number of tasks that can execute
// concurrently, computed as the maximum number of tasks that overlap in
// their unbounded-machine execution windows. It bounds the useful processor
// count from above.
func (g *Graph) MaxWidth() int { return g.maxWidth }

// Sources returns all tasks with no predecessors, in ascending order. The
// slice is precomputed in Builder.Build, owned by the graph, and must not be
// modified — the same ownership convention as Succs and TopoOrder.
func (g *Graph) Sources() []int32 { return g.sources }

// Sinks returns all tasks with no successors, in ascending order. The slice
// is precomputed in Builder.Build, owned by the graph, and must not be
// modified — the same ownership convention as Succs and TopoOrder.
func (g *Graph) Sinks() []int32 { return g.sinks }

// ScaleWeights returns a copy of the graph with every weight multiplied by
// factor. It is used to convert abstract task-graph weights into cycles: the
// paper's coarse-grain scenario maps weight 1 to 3.1e6 cycles (1 ms at
// 3.1 GHz) and the fine-grain scenario to 3.1e4 cycles (10 µs).
func (g *Graph) ScaleWeights(factor int64) (*Graph, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("%w: scale factor %d", ErrBadWeight, factor)
	}
	ng := *g
	ng.weights = make([]int64, len(g.weights))
	ng.blevel = make([]int64, len(g.blevel))
	ng.tlevel = make([]int64, len(g.tlevel))
	for v, w := range g.weights {
		ng.weights[v] = w * factor
		ng.blevel[v] = g.blevel[v] * factor
		ng.tlevel[v] = g.tlevel[v] * factor
	}
	ng.cpl = g.cpl * factor
	ng.work = g.work * factor
	return &ng, nil
}

// Rename returns a shallow copy of the graph with a different name.
func (g *Graph) Rename(name string) *Graph {
	ng := *g
	ng.name = name
	return &ng
}

// Validate re-checks the structural invariants of the graph. It is intended
// for tests and for defensive checks after deserialization; Builder.Build
// already guarantees them for graphs it returns.
func (g *Graph) Validate() error {
	n := g.NumTasks()
	if n == 0 {
		return ErrEmpty
	}
	for v := 0; v < n; v++ {
		if g.weights[v] <= 0 {
			return fmt.Errorf("%w: task %d has weight %d", ErrBadWeight, v, g.weights[v])
		}
	}
	if len(g.topo) != n {
		return ErrCycle
	}
	pos := make([]int, n)
	for i, v := range g.topo {
		pos[v] = i
	}
	var work int64
	for v := 0; v < n; v++ {
		work += g.weights[v]
		for _, s := range g.Succs(v) {
			if int(s) < 0 || int(s) >= n {
				return fmt.Errorf("%w: edge %d->%d", ErrBadTask, v, s)
			}
			if pos[v] >= pos[s] {
				return ErrCycle
			}
		}
	}
	if work != g.work {
		return fmt.Errorf("dag: cached total work %d != recomputed %d", g.work, work)
	}
	return nil
}
