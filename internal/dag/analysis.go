package dag

// This file provides structural analyses beyond the core levels/CPL:
// reachability, transitive reduction and a width profile. They support the
// workload generators (dropping redundant edges changes no schedule) and
// give users tools to inspect benchmark graphs.

// HasPath reports whether v is reachable from u through one or more edges.
func (g *Graph) HasPath(u, v int) bool {
	if u == v {
		return false
	}
	// DFS bounded by topological position: only tasks between u and v in
	// some topological order can lie on a path. A simple visited-set DFS is
	// sufficient at the sizes we handle.
	visited := make([]bool, g.NumTasks())
	stack := []int32{int32(u)}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs(int(x)) {
			if s == int32(v) {
				return true
			}
			if !visited[s] {
				visited[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// TransitiveReduction returns a copy of the graph with every edge removed
// whose endpoints remain connected through a longer path. Schedules and all
// level analyses are invariant under this operation (a transitive edge
// never constrains anything new); generated graphs can carry such edges.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	n := g.NumTasks()
	b := NewBuilder(g.name)
	for v := 0; v < n; v++ {
		if g.labels != nil {
			b.AddLabeledTask(g.weights[v], g.labels[v])
		} else {
			b.AddTask(g.weights[v])
		}
	}
	// An edge u->v is redundant iff v is reachable from u via a path of
	// length >= 2, i.e. from some other successor of u.
	for u := 0; u < n; u++ {
		for _, v := range g.Succs(u) {
			redundant := false
			for _, w := range g.Succs(u) {
				if w != v && g.HasPath(int(w), int(v)) {
					redundant = true
					break
				}
			}
			if !redundant {
				b.AddEdge(u, int(v))
			}
		}
	}
	return b.Build()
}

// WidthProfile returns, for a resolution of buckets time points across
// [0, CPL), the number of tasks whose unbounded-machine execution windows
// cover each point — the shape whose maximum is MaxWidth.
func (g *Graph) WidthProfile(buckets int) []int {
	if buckets <= 0 {
		return nil
	}
	prof := make([]int, buckets)
	cpl := g.cpl
	if cpl == 0 {
		return prof
	}
	for v := 0; v < g.NumTasks(); v++ {
		lo := int(g.tlevel[v] * int64(buckets) / cpl)
		hi := int((g.tlevel[v] + g.weights[v] - 1) * int64(buckets) / cpl)
		for i := lo; i <= hi && i < buckets; i++ {
			prof[i]++
		}
	}
	return prof
}

// Ancestors returns the number of tasks from which v is reachable.
func (g *Graph) Ancestors(v int) int {
	visited := make([]bool, g.NumTasks())
	stack := append([]int32(nil), g.Preds(v)...)
	count := 0
	for _, p := range stack {
		visited[p] = true
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, p := range g.Preds(int(x)) {
			if !visited[p] {
				visited[p] = true
				stack = append(stack, p)
			}
		}
	}
	return count
}
