package dag

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildPaperExample constructs the task graph of Fig. 4a in the paper:
// five tasks with weights T1=2, T2=6, T3=4, T4=4, T5=2 and edges
// T1->T2, T1->T3, T1->T4, T2->T5, T3->T5.
func buildPaperExample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("fig4a")
	t1 := b.AddLabeledTask(2, "T1")
	t2 := b.AddLabeledTask(6, "T2")
	t3 := b.AddLabeledTask(4, "T3")
	t4 := b.AddLabeledTask(4, "T4")
	t5 := b.AddLabeledTask(2, "T5")
	b.AddEdge(t1, t2)
	b.AddEdge(t1, t3)
	b.AddEdge(t1, t4)
	b.AddEdge(t2, t5)
	b.AddEdge(t3, t5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestPaperExampleAnalysis(t *testing.T) {
	g := buildPaperExample(t)
	if got, want := g.NumTasks(), 5; got != want {
		t.Errorf("NumTasks = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 5; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if got, want := g.TotalWork(), int64(18); got != want {
		t.Errorf("TotalWork = %d, want %d", got, want)
	}
	// Critical path is T1 -> T2 -> T5 with length 2+6+2 = 10.
	if got, want := g.CriticalPathLength(), int64(10); got != want {
		t.Errorf("CPL = %d, want %d", got, want)
	}
	wantB := []int64{10, 8, 6, 4, 2}
	wantT := []int64{0, 2, 2, 2, 8}
	for v := 0; v < 5; v++ {
		if g.BottomLevel(v) != wantB[v] {
			t.Errorf("BottomLevel(%d) = %d, want %d", v, g.BottomLevel(v), wantB[v])
		}
		if g.TopLevel(v) != wantT[v] {
			t.Errorf("TopLevel(%d) = %d, want %d", v, g.TopLevel(v), wantT[v])
		}
	}
	if got := g.Parallelism(); got != 1.8 {
		t.Errorf("Parallelism = %v, want 1.8", got)
	}
	// T2, T3, T4 all overlap on an unbounded machine.
	if got, want := g.MaxWidth(), 3; got != want {
		t.Errorf("MaxWidth = %d, want %d", got, want)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Sources = %v, want [0]", got)
	}
	if got := g.Sinks(); len(got) != 2 {
		t.Errorf("Sinks = %v, want T4 and T5", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func(*Builder)
		want  error
	}{
		{"empty", func(b *Builder) {}, ErrEmpty},
		{"zero weight", func(b *Builder) { b.AddTask(0) }, ErrBadWeight},
		{"negative weight", func(b *Builder) { b.AddTask(-3) }, ErrBadWeight},
		{"self edge", func(b *Builder) {
			v := b.AddTask(1)
			b.AddEdge(v, v)
		}, ErrSelfEdge},
		{"edge out of range", func(b *Builder) {
			v := b.AddTask(1)
			b.AddEdge(v, 7)
		}, ErrBadTask},
		{"negative edge endpoint", func(b *Builder) {
			v := b.AddTask(1)
			b.AddEdge(-1, v)
		}, ErrBadTask},
		{"duplicate edge", func(b *Builder) {
			u, v := b.AddTask(1), b.AddTask(1)
			b.AddEdge(u, v)
			b.AddEdge(u, v)
		}, ErrDupEdge},
		{"two cycle", func(b *Builder) {
			u, v := b.AddTask(1), b.AddTask(1)
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		}, ErrCycle},
		{"three cycle", func(b *Builder) {
			u, v, w := b.AddTask(1), b.AddTask(1), b.AddTask(1)
			b.AddEdge(u, v)
			b.AddEdge(v, w)
			b.AddEdge(w, u)
		}, ErrCycle},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(tc.name)
			tc.build(b)
			_, err := b.Build()
			if !errors.Is(err, tc.want) {
				t.Errorf("Build err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSingleTask(t *testing.T) {
	b := NewBuilder("single")
	b.AddTask(7)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.CriticalPathLength() != 7 || g.TotalWork() != 7 {
		t.Errorf("CPL=%d work=%d, want 7 and 7", g.CriticalPathLength(), g.TotalWork())
	}
	if g.MaxWidth() != 1 {
		t.Errorf("MaxWidth = %d, want 1", g.MaxWidth())
	}
	if g.Parallelism() != 1 {
		t.Errorf("Parallelism = %v, want 1", g.Parallelism())
	}
}

func TestChainGraph(t *testing.T) {
	b := NewBuilder("chain")
	const n = 50
	prev := -1
	for i := 0; i < n; i++ {
		v := b.AddTask(int64(i + 1))
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := int64(n * (n + 1) / 2)
	if g.CriticalPathLength() != want {
		t.Errorf("CPL = %d, want %d", g.CriticalPathLength(), want)
	}
	if g.Parallelism() != 1 {
		t.Errorf("chain parallelism = %v, want 1", g.Parallelism())
	}
	if g.MaxWidth() != 1 {
		t.Errorf("chain MaxWidth = %d, want 1", g.MaxWidth())
	}
}

func TestIndependentTasks(t *testing.T) {
	b := NewBuilder("indep")
	for i := 0; i < 10; i++ {
		b.AddTask(5)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.CriticalPathLength() != 5 {
		t.Errorf("CPL = %d, want 5", g.CriticalPathLength())
	}
	if g.MaxWidth() != 10 {
		t.Errorf("MaxWidth = %d, want 10", g.MaxWidth())
	}
	if g.Parallelism() != 10 {
		t.Errorf("Parallelism = %v, want 10", g.Parallelism())
	}
}

func TestScaleWeights(t *testing.T) {
	g := buildPaperExample(t)
	s, err := g.ScaleWeights(3100000)
	if err != nil {
		t.Fatalf("ScaleWeights: %v", err)
	}
	if got, want := s.CriticalPathLength(), int64(10*3100000); got != want {
		t.Errorf("scaled CPL = %d, want %d", got, want)
	}
	if got, want := s.TotalWork(), int64(18*3100000); got != want {
		t.Errorf("scaled work = %d, want %d", got, want)
	}
	if s.Parallelism() != g.Parallelism() {
		t.Errorf("scaling changed parallelism: %v != %v", s.Parallelism(), g.Parallelism())
	}
	for v := 0; v < g.NumTasks(); v++ {
		if s.Weight(v) != g.Weight(v)*3100000 {
			t.Errorf("weight %d not scaled", v)
		}
		if s.BottomLevel(v) != g.BottomLevel(v)*3100000 {
			t.Errorf("blevel %d not scaled", v)
		}
	}
	// Original untouched.
	if g.Weight(0) != 2 {
		t.Errorf("original graph mutated")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled Validate: %v", err)
	}
	if _, err := g.ScaleWeights(0); !errors.Is(err, ErrBadWeight) {
		t.Errorf("ScaleWeights(0) err = %v, want ErrBadWeight", err)
	}
}

func TestRename(t *testing.T) {
	g := buildPaperExample(t)
	r := g.Rename("other")
	if r.Name() != "other" || g.Name() != "fig4a" {
		t.Errorf("Rename got %q/%q", r.Name(), g.Name())
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildPaperExample(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "T1", "n0 -> n1", "w=6"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// randomDAG builds a random DAG where edges always go from lower to higher
// index, guaranteeing acyclicity by construction.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder("random")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(300) + 1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyRandomDAGInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%60) + 1
		p := float64(rawP%100) / 100
		g := randomDAG(rng, n, p)
		if err := g.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		// Topological positions respect every edge.
		pos := make([]int, n)
		for i, v := range g.TopoOrder() {
			pos[v] = i
		}
		var maxB, work int64
		for v := 0; v < n; v++ {
			work += g.Weight(v)
			if g.BottomLevel(v) > maxB {
				maxB = g.BottomLevel(v)
			}
			// blevel(v) = w(v) + max succ blevel.
			var succMax int64
			for _, s := range g.Succs(v) {
				if pos[v] >= pos[int(s)] {
					t.Logf("edge %d->%d violates topo order", v, s)
					return false
				}
				if g.BottomLevel(int(s)) > succMax {
					succMax = g.BottomLevel(int(s))
				}
				// tlevel(s) >= tlevel(v)+w(v) for every edge.
				if g.TopLevel(int(s)) < g.TopLevel(v)+g.Weight(v) {
					t.Logf("tlevel inconsistent on edge %d->%d", v, s)
					return false
				}
			}
			if g.BottomLevel(v) != g.Weight(v)+succMax {
				t.Logf("blevel recurrence fails at %d", v)
				return false
			}
			if g.TopLevel(v)+g.BottomLevel(v) > g.CriticalPathLength() {
				t.Logf("tlevel+blevel exceeds CPL at %d", v)
				return false
			}
		}
		if work != g.TotalWork() {
			return false
		}
		if maxB != g.CriticalPathLength() {
			return false
		}
		if g.MaxWidth() < 1 || g.MaxWidth() > n {
			return false
		}
		// Parallelism is between 1 and n.
		par := g.Parallelism()
		return par >= 1-1e-9 && par <= float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyScaleCommutesWithAnalysis(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%40) + 1
		g := randomDAG(rng, n, 0.15)
		s, err := g.ScaleWeights(31)
		if err != nil {
			return false
		}
		return s.CriticalPathLength() == 31*g.CriticalPathLength() &&
			s.TotalWork() == 31*g.TotalWork() &&
			s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bld := NewBuilder("bench")
	for i := 0; i < 1000; i++ {
		bld.AddTask(int64(rng.Intn(300) + 1))
	}
	seen := make(map[[2]int]bool)
	for i := 0; i < 1000; i++ {
		for k := 0; k < 4; k++ {
			j := i + 1 + rng.Intn(200)
			if j < 1000 && !seen[[2]int{i, j}] {
				seen[[2]int{i, j}] = true
				bld.AddEdge(i, j)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
