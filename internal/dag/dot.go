package dag

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT writes the graph in Graphviz DOT format for visual inspection.
// Node labels show the task index (or label, when set) and weight.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", dotName(g.name))
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [shape=box];\n")
	for v := 0; v < g.NumTasks(); v++ {
		label := g.Label(v)
		if label == "" {
			label = fmt.Sprintf("T%d", v)
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\\nw=%d\"];\n", v, label, g.Weight(v))
	}
	for v := 0; v < g.NumTasks(); v++ {
		for _, s := range g.Succs(v) {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", v, s)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func dotName(s string) string {
	if s == "" {
		return "taskgraph"
	}
	return s
}
