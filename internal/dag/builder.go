package dag

import (
	"fmt"
	"sort"
)

// Builder assembles a Graph incrementally. The zero value is not usable;
// create one with NewBuilder. Builders are not safe for concurrent use.
type Builder struct {
	name    string
	weights []int64
	labels  []string
	edges   [][2]int32
	anyLbl  bool
}

// NewBuilder returns an empty builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddTask appends a task with the given weight (cycles) and returns its
// index. Weight validity is checked in Build so that builders can be
// populated from untrusted input and report all errors in one place.
func (b *Builder) AddTask(weight int64) int {
	b.weights = append(b.weights, weight)
	b.labels = append(b.labels, "")
	return len(b.weights) - 1
}

// AddLabeledTask appends a task with a label and returns its index.
func (b *Builder) AddLabeledTask(weight int64, label string) int {
	v := b.AddTask(weight)
	b.labels[v] = label
	if label != "" {
		b.anyLbl = true
	}
	return v
}

// AddEdge records a dependence: task to cannot start before task from has
// finished. Validity is checked in Build.
func (b *Builder) AddEdge(from, to int) {
	b.edges = append(b.edges, [2]int32{int32(from), int32(to)})
}

// NumTasks returns the number of tasks added so far.
func (b *Builder) NumTasks() int { return len(b.weights) }

// Build validates the accumulated tasks and edges and returns an immutable
// Graph with all derived analyses precomputed. It returns an error if the
// graph is empty, a weight is non-positive, an edge is out of range, a self
// edge or duplicate edge exists, or the edges form a cycle.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.weights)
	if n == 0 {
		return nil, ErrEmpty
	}
	g := &Graph{
		name:    b.name,
		weights: append([]int64(nil), b.weights...),
	}
	if b.anyLbl {
		g.labels = append([]string(nil), b.labels...)
	}
	for v, w := range g.weights {
		if w <= 0 {
			return nil, fmt.Errorf("%w: task %d has weight %d", ErrBadWeight, v, w)
		}
		g.work += w
	}

	// Adjacency is stored in CSR form: count degrees, turn the counts into
	// offsets, then scatter the edges into the two flat arrays.
	g.succOff = make([]int32, n+1)
	g.predOff = make([]int32, n+1)
	for _, e := range b.edges {
		u, v := int(e[0]), int(e[1])
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: edge %d->%d with %d tasks", ErrBadTask, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("%w: task %d", ErrSelfEdge, u)
		}
		g.succOff[u+1]++
		g.predOff[v+1]++
		g.nEdges++
	}
	for v := 0; v < n; v++ {
		g.succOff[v+1] += g.succOff[v]
		g.predOff[v+1] += g.predOff[v]
	}
	g.succAdj = make([]int32, g.nEdges)
	g.predAdj = make([]int32, g.nEdges)
	sCur := append([]int32(nil), g.succOff[:n]...)
	pCur := append([]int32(nil), g.predOff[:n]...)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		g.succAdj[sCur[u]] = v
		sCur[u]++
		g.predAdj[pCur[v]] = u
		pCur[v]++
	}
	// Detect duplicates after sorting each CSR row; sorted rows also make
	// traversal deterministic for downstream consumers.
	for v := 0; v < n; v++ {
		sortInt32(g.succAdj[g.succOff[v]:g.succOff[v+1]])
		sortInt32(g.predAdj[g.predOff[v]:g.predOff[v+1]])
		if d := firstDup(g.Succs(v)); d >= 0 {
			return nil, fmt.Errorf("%w: %d->%d", ErrDupEdge, v, d)
		}
	}

	if err := g.computeTopo(); err != nil {
		return nil, err
	}
	g.computeLevels()
	g.computeMaxWidth()
	g.computeSourcesSinks()
	return g, nil
}

// computeSourcesSinks precomputes the Sources/Sinks slices, so the accessors
// can return graph-owned views instead of allocating per call.
func (g *Graph) computeSourcesSinks() {
	for v := 0; v < g.NumTasks(); v++ {
		if g.InDegree(v) == 0 {
			g.sources = append(g.sources, int32(v))
		}
		if g.OutDegree(v) == 0 {
			g.sinks = append(g.sinks, int32(v))
		}
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// firstDup returns the first duplicated value in a sorted slice, or -1.
func firstDup(s []int32) int32 {
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return s[i]
		}
	}
	return -1
}

// computeTopo fills g.topo using Kahn's algorithm; ErrCycle if not a DAG.
func (g *Graph) computeTopo() error {
	n := g.NumTasks()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(v))
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	topo := make([]int32, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		topo = append(topo, v)
		for _, s := range g.Succs(int(v)) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(topo) != n {
		return ErrCycle
	}
	g.topo = topo
	return nil
}

// computeLevels fills blevel, tlevel and cpl by dynamic programming over the
// topological order.
func (g *Graph) computeLevels() {
	n := g.NumTasks()
	g.blevel = make([]int64, n)
	g.tlevel = make([]int64, n)
	// Top levels: forward pass.
	for _, v := range g.topo {
		end := g.tlevel[v] + g.weights[v]
		for _, s := range g.Succs(int(v)) {
			if end > g.tlevel[s] {
				g.tlevel[s] = end
			}
		}
	}
	// Bottom levels: backward pass.
	for i := n - 1; i >= 0; i-- {
		v := g.topo[i]
		var best int64
		for _, s := range g.Succs(int(v)) {
			if g.blevel[s] > best {
				best = g.blevel[s]
			}
		}
		g.blevel[v] = best + g.weights[v]
	}
	for v := 0; v < n; v++ {
		if l := g.blevel[v] + g.tlevel[v]; l > g.cpl {
			g.cpl = l
		}
	}
}

// computeMaxWidth estimates the maximum number of concurrently executable
// tasks by sweeping the unbounded-machine execution windows
// [TopLevel(v), TopLevel(v)+Weight(v)).
func (g *Graph) computeMaxWidth() {
	n := g.NumTasks()
	type event struct {
		t     int64
		delta int
	}
	events := make([]event, 0, 2*n)
	for v := 0; v < n; v++ {
		events = append(events,
			event{g.tlevel[v], +1},
			event{g.tlevel[v] + g.weights[v], -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // process ends before starts
	})
	cur, best := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	g.maxWidth = best
}
