package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHasPath(t *testing.T) {
	g := buildPaperExample(t) // T1->{T2,T3,T4}, {T2,T3}->T5
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true},
		{0, 4, true}, // via T2 or T3
		{1, 4, true},
		{3, 4, false}, // T4 is a sink
		{4, 0, false}, // no backward paths
		{1, 2, false}, // siblings
		{0, 0, false}, // self
	}
	for _, tc := range cases {
		if got := g.HasPath(tc.u, tc.v); got != tc.want {
			t.Errorf("HasPath(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestTransitiveReduction(t *testing.T) {
	// a -> b -> c plus the redundant a -> c.
	b := NewBuilder("tr")
	a := b.AddTask(1)
	bb := b.AddTask(2)
	c := b.AddTask(3)
	b.AddEdge(a, bb)
	b.AddEdge(bb, c)
	b.AddEdge(a, c)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != 2 {
		t.Errorf("reduced edges = %d, want 2", r.NumEdges())
	}
	if r.CriticalPathLength() != g.CriticalPathLength() {
		t.Errorf("reduction changed CPL")
	}
	if !r.HasPath(a, c) {
		t.Errorf("reduction broke reachability")
	}
}

func TestTransitiveReductionPropertyInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%25) + 1
		g := randomDAG(rng, n, 0.3)
		r, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		if r.NumEdges() > g.NumEdges() || r.NumTasks() != g.NumTasks() {
			return false
		}
		// All level analyses are invariant.
		if r.CriticalPathLength() != g.CriticalPathLength() ||
			r.TotalWork() != g.TotalWork() ||
			r.MaxWidth() != g.MaxWidth() {
			return false
		}
		for v := 0; v < n; v++ {
			if r.BottomLevel(v) != g.BottomLevel(v) || r.TopLevel(v) != g.TopLevel(v) {
				return false
			}
		}
		// Reachability preserved both ways (sampled).
		for i := 0; i < 30; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if g.HasPath(u, v) != r.HasPath(u, v) {
				t.Logf("reachability differs for %d->%d", u, v)
				return false
			}
		}
		// Idempotent: reducing again removes nothing.
		r2, err := r.TransitiveReduction()
		if err != nil {
			return false
		}
		return r2.NumEdges() == r.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWidthProfile(t *testing.T) {
	g := buildPaperExample(t)
	prof := g.WidthProfile(10)
	if len(prof) != 10 {
		t.Fatalf("profile length %d", len(prof))
	}
	max := 0
	for _, w := range prof {
		if w > max {
			max = w
		}
	}
	if max != g.MaxWidth() {
		t.Errorf("profile max %d != MaxWidth %d", max, g.MaxWidth())
	}
	// First bucket: only T1 runs at time 0.
	if prof[0] != 1 {
		t.Errorf("prof[0] = %d, want 1", prof[0])
	}
	if g.WidthProfile(0) != nil {
		t.Errorf("WidthProfile(0) should be nil")
	}
}

func TestAncestors(t *testing.T) {
	g := buildPaperExample(t)
	cases := map[int]int{
		0: 0, // source
		1: 1, // T1
		4: 3, // T1, T2, T3
		3: 1, // T1
	}
	for v, want := range cases {
		if got := g.Ancestors(v); got != want {
			t.Errorf("Ancestors(%d) = %d, want %d", v, got, want)
		}
	}
}
