package frames

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lamps/internal/power"
)

func mustAdd(t *testing.T, s *Set, task Task) {
	t.Helper()
	if err := s.Add(task); err != nil {
		t.Fatalf("Add(%+v): %v", task, err)
	}
}

func TestAddValidation(t *testing.T) {
	s := NewSet()
	cases := []Task{
		{Name: "zero wcet", WCET: 0, Period: 10},
		{Name: "zero period", WCET: 1, Period: 0},
		{Name: "negative deadline", WCET: 1, Period: 10, Deadline: -1},
		{Name: "wcet over deadline", WCET: 8, Period: 10, Deadline: 5},
	}
	for _, tc := range cases {
		if err := s.Add(tc); !errors.Is(err, ErrBadTask) {
			t.Errorf("%s: err = %v, want ErrBadTask", tc.Name, err)
		}
	}
	if s.Len() != 0 {
		t.Errorf("invalid tasks were added")
	}
	// Implicit deadline = period.
	mustAdd(t, s, Task{Name: "ok", WCET: 5, Period: 10})
	if s.tasks[0].Deadline != 10 {
		t.Errorf("implicit deadline = %d, want 10", s.tasks[0].Deadline)
	}
}

func TestHyperperiodAndUtilization(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Task{Name: "a", WCET: 2, Period: 4})
	mustAdd(t, s, Task{Name: "b", WCET: 3, Period: 6})
	h, err := s.Hyperperiod()
	if err != nil {
		t.Fatal(err)
	}
	if h != 12 {
		t.Errorf("hyperperiod = %d, want 12", h)
	}
	if u := s.Utilization(); u != 1.0 {
		t.Errorf("utilization = %g, want 1.0", u)
	}
	if _, err := NewSet().Hyperperiod(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty set err = %v", err)
	}
}

func TestFrameDAGStructure(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Task{Name: "a", WCET: 2, Period: 4})
	mustAdd(t, s, Task{Name: "b", WCET: 3, Period: 6})
	g, rel, dl, err := s.FrameDAG()
	if err != nil {
		t.Fatal(err)
	}
	// Hyperperiod 12: 3 jobs of a, 2 jobs of b.
	if g.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d, want 5", g.NumTasks())
	}
	if g.NumEdges() != 3 { // a chain: 2 edges, b chain: 1 edge
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	wantRel := []int64{0, 4, 8, 0, 6}
	wantDl := []int64{4, 8, 12, 6, 12}
	for v := range wantRel {
		if rel[v] != wantRel[v] {
			t.Errorf("release[%d] = %d, want %d", v, rel[v], wantRel[v])
		}
		if dl[v] != wantDl[v] {
			t.Errorf("deadline[%d] = %d, want %d", v, dl[v], wantDl[v])
		}
	}
	if g.Label(1) != "a#1" || g.Label(4) != "b#1" {
		t.Errorf("labels wrong: %q %q", g.Label(1), g.Label(4))
	}
}

func TestScheduleSimplePeriodicSet(t *testing.T) {
	m := power.Default70nm()
	// Two tasks at 30% utilization each with millisecond-scale periods
	// (coarse enough for shutdown to matter).
	s := NewSet()
	mustAdd(t, s, Task{Name: "ctrl", WCET: 930_000, Period: 3_100_000})
	mustAdd(t, s, Task{Name: "io", WCET: 1_860_000, Period: 6_200_000})
	plan, err := s.Schedule(m, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumProcs < 1 {
		t.Errorf("NumProcs = %d", plan.NumProcs)
	}
	if plan.EnergyJ <= 0 {
		t.Errorf("EnergyJ = %g", plan.EnergyJ)
	}
	// The chosen level's utilization must fit the chosen processor count.
	if u := s.Utilization() * m.FMax() / plan.Level.Freq; u > float64(plan.NumProcs)+1e-4 {
		t.Errorf("chosen level overloads %d processors: scaled utilization %g", plan.NumProcs, u)
	}
	// The unrestricted plan can only improve on a forced single processor —
	// and for this set it genuinely does: two processors near the critical
	// frequency beat one processor forced to run at 0.6 f_max (the paper's
	// core multiprocessor insight, reproduced in the periodic model).
	one, err := s.Schedule(m, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EnergyJ > one.EnergyJ*(1+1e-9) {
		t.Errorf("unrestricted plan %g J worse than 1-proc plan %g J", plan.EnergyJ, one.EnergyJ)
	}
	// PS cannot lose against no-PS.
	noPS, err := s.Schedule(m, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EnergyJ > noPS.EnergyJ*(1+1e-9) {
		t.Errorf("PS plan %g J worse than no-PS %g J", plan.EnergyJ, noPS.EnergyJ)
	}
}

func TestScheduleRespectsReleasesAndDeadlines(t *testing.T) {
	m := power.Default70nm()
	s := NewSet()
	mustAdd(t, s, Task{Name: "a", WCET: 1_000_000, Period: 4_000_000})
	mustAdd(t, s, Task{Name: "b", WCET: 2_000_000, Period: 8_000_000, Deadline: 5_000_000})
	plan, err := s.Schedule(m, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, rel, dl, err := s.FrameDAG()
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	sc := plan.Schedule
	stretch := m.FMax() / plan.Level.Freq
	for v := range rel {
		if sc.Start[v] < rel[v] {
			t.Errorf("job %d starts at %d before release %d", v, sc.Start[v], rel[v])
		}
		if sc.Finish[v] > dl[v] {
			t.Errorf("job %d finishes at %d after deadline %d (stretch %.2f)",
				v, sc.Finish[v], dl[v], stretch)
		}
	}
}

func TestScheduleInfeasible(t *testing.T) {
	m := power.Default70nm()
	s := NewSet()
	// A task that cannot fit even at fmax: WCET = deadline, but two of them
	// on one processor with MaxProcs 1 and overlapping windows.
	mustAdd(t, s, Task{Name: "x", WCET: 10, Period: 10})
	mustAdd(t, s, Task{Name: "y", WCET: 10, Period: 10})
	if _, err := s.Schedule(m, false, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// Two processors make it trivially feasible at fmax.
	plan, err := s.Schedule(m, false, 2)
	if err != nil {
		t.Fatalf("2-proc schedule: %v", err)
	}
	if plan.NumProcs != 2 || plan.Level.Index != 0 {
		t.Errorf("plan = %d procs at %v, want 2 procs at fmax", plan.NumProcs, plan.Level)
	}
	if _, err := NewSet().Schedule(m, false, 0); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty set err = %v", err)
	}
}

// TestPropertyPlanValidity fuzzes small harmonic task sets and checks plan
// invariants: deadlines met, energy components non-negative, utilization at
// the chosen level feasible for the processor count.
func TestPropertyPlanValidity(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawK uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(rawK%3) + 1
		s := NewSet()
		base := int64(1_000_000)
		for i := 0; i < k; i++ {
			period := base << uint(rng.Intn(3)) // harmonic: bounded hyperperiod
			wcet := period / int64(rng.Intn(4)+2)
			if err := s.Add(Task{Name: "t", WCET: wcet, Period: period}); err != nil {
				return false
			}
		}
		plan, err := s.Schedule(m, rng.Intn(2) == 0, 0)
		if err != nil {
			// High-utilization corners can be infeasible; that is a valid
			// outcome, not a failure.
			return errors.Is(err, ErrInfeasible)
		}
		if plan.EnergyJ <= 0 || plan.Active < 0 || plan.Idle < 0 || plan.Sleep < 0 {
			return false
		}
		_, _, dl, err := s.FrameDAG()
		if err != nil {
			return false
		}
		return meetsAll(plan.Schedule, dl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHyperperiodOverflow(t *testing.T) {
	s := NewSet()
	// Large co-prime periods blow the hyperperiod past the guard.
	primes := []int64{1000003, 1000033, 1000037, 1000039, 1000081, 1000099, 1000117, 1000121}
	for _, p := range primes {
		mustAdd(t, s, Task{Name: "p", WCET: 1, Period: p})
	}
	if _, err := s.Hyperperiod(); err == nil {
		t.Error("hyperperiod overflow not detected")
	}
}
