// Package frames translates periodic real-time task sets into frame-based
// task DAGs, the transformation of Liberato et al. (ECRTS'99) that the
// paper invokes in Section 3.1 to connect its DAG model with the periodic
// model of Jejurikar et al. One hyperperiod of the set becomes a frame:
// every job of every periodic task is a node, consecutive jobs of the same
// task are chained, each job carries its release time (job index times the
// period) and its absolute deadline.
//
// On top of the translation, Schedule runs a LAMPS-style search for the
// processor count and common operating point that minimise the energy of
// one hyperperiod while every job meets its deadline — extending the
// paper's leakage-aware scheduling to the periodic task model its
// single-processor related work uses.
package frames

import (
	"errors"
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// Errors returned by the package.
var (
	ErrBadTask    = errors.New("frames: invalid task")
	ErrEmpty      = errors.New("frames: empty task set")
	ErrInfeasible = errors.New("frames: no feasible configuration")
)

// Task is a periodic real-time task. All times are in cycles at the maximum
// frequency; the period doubles as wall-clock quantity (cycles at f_max are
// a fixed unit of time).
type Task struct {
	Name     string
	WCET     int64 // worst-case execution time per job
	Period   int64
	Deadline int64 // relative deadline; 0 means the period (implicit)
}

// Set is a periodic task set.
type Set struct {
	tasks []Task
}

// NewSet returns an empty task set.
func NewSet() *Set { return &Set{} }

// Add appends a task after validating it.
func (s *Set) Add(t Task) error {
	if t.WCET <= 0 || t.Period <= 0 {
		return fmt.Errorf("%w: %q WCET %d period %d", ErrBadTask, t.Name, t.WCET, t.Period)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("%w: %q negative deadline", ErrBadTask, t.Name)
	}
	if t.Deadline == 0 {
		t.Deadline = t.Period
	}
	if t.WCET > t.Deadline {
		return fmt.Errorf("%w: %q WCET %d exceeds deadline %d", ErrBadTask, t.Name, t.WCET, t.Deadline)
	}
	s.tasks = append(s.tasks, t)
	return nil
}

// Len returns the number of periodic tasks.
func (s *Set) Len() int { return len(s.tasks) }

// Utilization returns the total processor utilization sum(WCET/Period) at
// maximum frequency; it lower-bounds the required processor count.
func (s *Set) Utilization() float64 {
	var u float64
	for _, t := range s.tasks {
		u += float64(t.WCET) / float64(t.Period)
	}
	return u
}

// Hyperperiod returns the least common multiple of all periods.
func (s *Set) Hyperperiod() (int64, error) {
	if len(s.tasks) == 0 {
		return 0, ErrEmpty
	}
	l := int64(1)
	for _, t := range s.tasks {
		l = lcm(l, t.Period)
		if l <= 0 || l > int64(1)<<56 {
			return 0, fmt.Errorf("frames: hyperperiod overflow (periods too co-prime)")
		}
	}
	return l, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// FrameDAG unrolls one hyperperiod into a DAG plus per-job release times
// and absolute deadlines (both in cycles at f_max). Jobs of one task are
// chained to enforce job order; there are no cross-task edges (the periodic
// model has independent tasks).
func (s *Set) FrameDAG() (g *dag.Graph, releases, deadlines []int64, err error) {
	h, err := s.Hyperperiod()
	if err != nil {
		return nil, nil, nil, err
	}
	b := dag.NewBuilder("frame")
	for _, t := range s.tasks {
		jobs := h / t.Period
		prev := -1
		for k := int64(0); k < jobs; k++ {
			v := b.AddLabeledTask(t.WCET, fmt.Sprintf("%s#%d", t.Name, k))
			releases = append(releases, k*t.Period)
			deadlines = append(deadlines, k*t.Period+t.Deadline)
			if prev >= 0 {
				b.AddEdge(prev, v)
			}
			prev = v
		}
	}
	g, err = b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return g, releases, deadlines, nil
}

// Plan is a feasible leakage-aware configuration for one hyperperiod.
type Plan struct {
	NumProcs  int
	Level     power.Level
	Schedule  *sched.Schedule // in stretched time units (cycles at f_max)
	EnergyJ   float64
	Active    float64 // joules
	Idle      float64
	Sleep     float64
	Overhead  float64
	Shutdowns int
}

// Schedule searches processor counts and discrete operating points for the
// energy-minimal configuration in which every job of every periodic task
// meets its absolute deadline within the hyperperiod. PS enables processor
// shutdown during gaps. MaxProcs (0 = automatic) caps the processor count.
//
// Durations are stretched *before* scheduling — at level L a job of w
// cycles occupies ceil(w·f_max/f_L) time units — because release times and
// deadlines are wall-clock quantities that do not stretch with frequency,
// unlike in the paper's single-deadline model.
func (s *Set) Schedule(m *power.Model, ps bool, maxProcs int) (*Plan, error) {
	g, releases, deadlines, err := s.FrameDAG()
	if err != nil {
		return nil, err
	}
	h, err := s.Hyperperiod()
	if err != nil {
		return nil, err
	}
	nmax := g.MaxWidth()
	if maxProcs > 0 && maxProcs < nmax {
		nmax = maxProcs
	}
	nmin := int(s.Utilization())
	if float64(nmin) < s.Utilization() {
		nmin++
	}
	if nmin < 1 {
		nmin = 1
	}
	fmax := m.FMax()
	var best *Plan
	for _, lvl := range m.Levels() {
		stretch := fmax / lvl.Freq
		scaled, prio, ok := s.stretchFor(g, deadlines, stretch)
		if !ok {
			continue // some WCET no longer fits its deadline at this level
		}
		for n := nmin; n <= nmax; n++ {
			sc, err := sched.ListScheduleReleases(scaled, n, prio, releases)
			if err != nil {
				return nil, err
			}
			if !meetsAll(sc, deadlines) {
				continue
			}
			p := s.evaluate(sc, m, lvl, h, ps)
			p.NumProcs = n
			if best == nil || p.EnergyJ < best.EnergyJ {
				best = p
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: utilization %.2f, max %d processors",
			ErrInfeasible, s.Utilization(), nmax)
	}
	return best, nil
}

// stretchFor builds the graph with durations scaled for the level and EDF
// priorities from the absolute deadlines; ok is false when a single job
// cannot fit its own window at this level.
func (s *Set) stretchFor(g *dag.Graph, deadlines []int64, stretch float64) (*dag.Graph, []int64, bool) {
	b := dag.NewBuilder(g.Name())
	for v := 0; v < g.NumTasks(); v++ {
		w := int64(float64(g.Weight(v))*stretch + 0.999999)
		b.AddLabeledTask(w, g.Label(v))
	}
	for v := 0; v < g.NumTasks(); v++ {
		for _, succ := range g.Succs(v) {
			b.AddEdge(v, int(succ))
		}
	}
	scaled, err := b.Build()
	if err != nil {
		return nil, nil, false
	}
	prio, err := sched.DeadlinePriorities(scaled, deadlines)
	if err != nil {
		return nil, nil, false
	}
	return scaled, prio, true
}

func meetsAll(sc *sched.Schedule, deadlines []int64) bool {
	for v, d := range deadlines {
		if sc.Finish[v] > d {
			return false
		}
	}
	return true
}

// evaluate integrates the energy of one hyperperiod: active time at the
// level's full power, gaps idle or — with ps — asleep when long enough.
func (s *Set) evaluate(sc *sched.Schedule, m *power.Model, lvl power.Level, h int64, ps bool) *Plan {
	fmax := m.FMax()
	toSec := func(units int64) float64 { return float64(units) / fmax }
	p := &Plan{Level: lvl, Schedule: sc}
	p.Active = toSec(sc.BusyCycles()) * m.LevelPower(lvl)
	pIdle := m.IdlePower(lvl)
	breakeven := m.BreakevenTime(lvl)
	for _, gap := range sc.Gaps(h) {
		t := toSec(gap.Length())
		if ps && t > breakeven {
			p.Sleep += t * m.PSleep
			p.Overhead += m.EOverhead
			p.Shutdowns++
		} else {
			p.Idle += t * pIdle
		}
	}
	p.EnergyJ = p.Active + p.Idle + p.Sleep + p.Overhead
	return p
}
