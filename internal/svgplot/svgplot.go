// Package svgplot renders the experiment results as static SVG figures, so
// `cmd/experiments -svg` regenerates the paper's artwork and not just its
// numbers. It is a deliberately small chart kit: line charts (Figs. 2, 3
// and 6), grouped bar charts (Figs. 10 and 11) and scatter plots (Figs. 12
// and 13), one y-axis each.
//
// Styling follows a validated data-viz palette: categorical hues are
// assigned in a fixed slot order (never cycled), marks are thin (2 px
// lines, 8 px scatter dots with a surface ring, bars with rounded data
// ends and surface gaps), grid and axes are recessive, text wears text
// colors rather than series colors, and every multi-series figure carries
// a legend. The figures complement — never replace — the text/CSV tables,
// which double as the accessible data view.
package svgplot

import (
	"bufio"
	"fmt"
	"html"
	"io"
	"math"
)

// Categorical palette, fixed slot order (validated: worst adjacent CVD
// ΔE 24.2 on the light surface; aqua and yellow rely on the table view for
// contrast relief).
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

// Surface and ink roles (light mode).
const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e8e7e3"
	axisColor     = "#b5b4ae"
	fontFamily    = "system-ui, -apple-system, 'Segoe UI', sans-serif"
)

// Series is one plotted series; for bar charts X is the group index.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a renderable chart.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // default 760
	Height int // default 440

	// Kind selects the mark: "line", "scatter" or "bars".
	Kind string

	Series []Series

	// Groups labels the x axis categorically (bars only); for bars,
	// Series[i].Y[g] is series i's value in group g.
	Groups []string
}

const (
	marginLeft   = 64
	marginRight  = 18
	marginTop    = 46
	marginBottom = 52
	legendRowH   = 18
)

// Render writes the figure as a standalone SVG document.
func (f *Figure) Render(w io.Writer) error {
	if f.Width <= 0 {
		f.Width = 760
	}
	if f.Height <= 0 {
		f.Height = 440
	}
	if len(f.Series) == 0 {
		return fmt.Errorf("svgplot: figure %q has no series", f.Title)
	}
	if len(f.Series) > len(seriesColors) {
		return fmt.Errorf("svgplot: %d series exceed the %d palette slots; fold the tail into 'Other'",
			len(f.Series), len(seriesColors))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="%s">`+"\n",
		f.Width, f.Height, f.Width, f.Height, html.EscapeString(f.Title))
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="%s"/>`+"\n", f.Width, f.Height, surface)
	fmt.Fprintf(bw, `<text x="%d" y="24" font-family="%s" font-size="14" font-weight="600" fill="%s">%s</text>`+"\n",
		marginLeft, fontFamily, textPrimary, html.EscapeString(f.Title))

	plotW := float64(f.Width - marginLeft - marginRight)
	plotH := float64(f.Height - marginTop - marginBottom)

	var err error
	switch f.Kind {
	case "bars":
		err = f.renderBars(bw, plotW, plotH)
	case "scatter", "line":
		err = f.renderXY(bw, plotW, plotH)
	default:
		err = fmt.Errorf("svgplot: unknown kind %q", f.Kind)
	}
	if err != nil {
		return err
	}
	if len(f.Series) > 1 {
		f.renderLegend(bw)
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// renderLegend draws one swatch+name row at the top right, in secondary ink.
func (f *Figure) renderLegend(bw *bufio.Writer) {
	x := float64(f.Width - marginRight)
	const itemPad = 14
	// Right-align: walk series in reverse.
	for i := len(f.Series) - 1; i >= 0; i-- {
		name := html.EscapeString(f.Series[i].Name)
		textW := 6.2 * float64(len(f.Series[i].Name)) // approximate
		x -= textW
		fmt.Fprintf(bw, `<text x="%.1f" y="%d" font-family="%s" font-size="11" fill="%s">%s</text>`+"\n",
			x, marginTop-8, fontFamily, textSecondary, name)
		x -= 14
		fmt.Fprintf(bw, `<rect x="%.1f" y="%d" width="10" height="10" rx="2" fill="%s"/>`+"\n",
			x, marginTop-17, seriesColors[i])
		x -= itemPad
	}
}

// niceTicks returns ~n tick values covering [lo, hi] on a 1/2/5 grid.
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// renderXY draws line or scatter series on linear axes.
func (f *Figure) renderXY(bw *bufio.Writer, plotW, plotH float64) error {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("svgplot: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("svgplot: figure %q has no points", f.Title)
	}
	if minY > 0 && minY/math.Max(maxY, 1e-300) < 0.5 {
		minY = 0 // anchor magnitude-like axes at zero unless zoom is warranted
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	xOf := func(v float64) float64 { return marginLeft + (v-minX)/(maxX-minX)*plotW }
	yOf := func(v float64) float64 { return marginTop + plotH - (v-minY)/(maxY-minY)*plotH }

	f.renderAxes(bw, plotW, plotH, minX, maxX, minY, maxY, xOf, yOf)

	for si, s := range f.Series {
		color := seriesColors[si]
		if f.Kind == "line" {
			fmt.Fprintf(bw, `<polyline fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" points="`, color)
			for i := range s.X {
				fmt.Fprintf(bw, "%.1f,%.1f ", xOf(s.X[i]), yOf(s.Y[i]))
			}
			fmt.Fprintln(bw, `"/>`)
		} else {
			for i := range s.X {
				// 8 px dot with a 2 px surface ring for overlap relief.
				fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="%s" stroke-width="2"/>`+"\n",
					xOf(s.X[i]), yOf(s.Y[i]), color, surface)
			}
		}
	}
	return nil
}

// renderAxes draws the recessive grid, the axis lines, ticks and labels.
func (f *Figure) renderAxes(bw *bufio.Writer, plotW, plotH, minX, maxX, minY, maxY float64,
	xOf, yOf func(float64) float64) {
	bottom := marginTop + plotH
	for _, ty := range niceTicks(minY, maxY, 5) {
		y := yOf(ty)
		fmt.Fprintf(bw, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y, gridColor)
		fmt.Fprintf(bw, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle" font-family="%s" font-size="11" fill="%s">%s</text>`+"\n",
			marginLeft-8, y, fontFamily, textSecondary, formatTick(ty))
	}
	for _, tx := range niceTicks(minX, maxX, 6) {
		x := xOf(tx)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="%s" font-size="11" fill="%s">%s</text>`+"\n",
			x, bottom+18, fontFamily, textSecondary, formatTick(tx))
	}
	fmt.Fprintf(bw, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		marginLeft, bottom, marginLeft+plotW, bottom, axisColor)
	f.renderAxisLabels(bw, plotW, plotH)
}

func (f *Figure) renderAxisLabels(bw *bufio.Writer, plotW, plotH float64) {
	if f.XLabel != "" {
		fmt.Fprintf(bw, `<text x="%.1f" y="%d" text-anchor="middle" font-family="%s" font-size="11" fill="%s">%s</text>`+"\n",
			marginLeft+plotW/2, f.Height-12, fontFamily, textSecondary, html.EscapeString(f.XLabel))
	}
	if f.YLabel != "" {
		fmt.Fprintf(bw, `<text x="16" y="%.1f" text-anchor="middle" font-family="%s" font-size="11" fill="%s" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
			marginTop+plotH/2, fontFamily, textSecondary, marginTop+plotH/2, html.EscapeString(f.YLabel))
	}
}

// renderBars draws grouped bars with rounded data ends anchored to the
// baseline and a 2 px surface gap between adjacent bars.
func (f *Figure) renderBars(bw *bufio.Writer, plotW, plotH float64) error {
	if len(f.Groups) == 0 {
		return fmt.Errorf("svgplot: bar figure %q has no groups", f.Title)
	}
	maxY := 0.0
	for _, s := range f.Series {
		if len(s.Y) != len(f.Groups) {
			return fmt.Errorf("svgplot: series %q has %d values for %d groups", s.Name, len(s.Y), len(f.Groups))
		}
		for _, v := range s.Y {
			if v < 0 {
				return fmt.Errorf("svgplot: bar value %g < 0 unsupported", v)
			}
			maxY = math.Max(maxY, v)
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	bottom := marginTop + plotH
	yOf := func(v float64) float64 { return bottom - v/maxY*plotH }

	// Grid + y ticks.
	for _, ty := range niceTicks(0, maxY, 5) {
		y := yOf(ty)
		fmt.Fprintf(bw, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y, gridColor)
		fmt.Fprintf(bw, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle" font-family="%s" font-size="11" fill="%s">%s</text>`+"\n",
			marginLeft-8, y, fontFamily, textSecondary, formatTick(ty))
	}

	groupW := plotW / float64(len(f.Groups))
	innerW := groupW * 0.82
	barGap := 2.0
	barW := (innerW - barGap*float64(len(f.Series)-1)) / float64(len(f.Series))
	if barW < 2 {
		return fmt.Errorf("svgplot: %d groups x %d series leave bars thinner than 2px; widen the figure",
			len(f.Groups), len(f.Series))
	}
	round := math.Min(4, barW/2)
	for gi, label := range f.Groups {
		gx := marginLeft + float64(gi)*groupW + (groupW-innerW)/2
		for si, s := range f.Series {
			v := s.Y[gi]
			x := gx + float64(si)*(barW+barGap)
			top := yOf(v)
			h := bottom - top
			if h <= 0 {
				continue
			}
			r := math.Min(round, h)
			// Rounded corners at the data end only; square at the baseline.
			fmt.Fprintf(bw,
				`<path d="M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z" fill="%s"/>`+"\n",
				x, bottom,
				x, top+r,
				x, top, x+r, top,
				x+barW-r, top,
				x+barW, top, x+barW, top+r,
				x+barW, bottom,
				seriesColors[si])
		}
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="%s" font-size="11" fill="%s">%s</text>`+"\n",
			gx+innerW/2, bottom+18, fontFamily, textSecondary, html.EscapeString(label))
	}
	fmt.Fprintf(bw, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		marginLeft, bottom, marginLeft+plotW, bottom, axisColor)
	f.renderAxisLabels(bw, plotW, plotH)
	return nil
}
