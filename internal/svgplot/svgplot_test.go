package svgplot

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func lineFig() *Figure {
	return &Figure{
		Title: "demo line", Kind: "line", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{1, 3, 2, 5}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{2, 2.5, 4, 4.5}},
		},
	}
}

// render returns the SVG and fails the test on error.
func render(t *testing.T, f *Figure) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	return buf.String()
}

// TestWellFormedXML parses every rendered figure as XML — a malformed
// attribute or unescaped title would fail here.
func TestWellFormedXML(t *testing.T) {
	figs := map[string]*Figure{
		"line": lineFig(),
		"scatter": {
			Title: "demo <scatter> & such", Kind: "scatter",
			Series: []Series{{Name: "s&p", X: []float64{1, 2}, Y: []float64{3, 4}}},
		},
		"bars": {
			Title: "demo bars", Kind: "bars", Groups: []string{"g1", "g2"},
			Series: []Series{
				{Name: "u", Y: []float64{50, 80}},
				{Name: "v", Y: []float64{30, 0}},
			},
		},
	}
	for name, f := range figs {
		out := render(t, f)
		dec := xml.NewDecoder(strings.NewReader(out))
		for {
			_, err := dec.Token()
			if err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("%s: invalid XML: %v\n%s", name, err, out)
			}
		}
	}
}

var numRe = regexp.MustCompile(`-?\d+(\.\d+)?([eE][+-]?\d+)?`)

// TestCoordinatesFiniteAndInBounds scans every numeric attribute: no NaN or
// Inf may be emitted, and polyline/circle coordinates stay inside the
// viewBox (the substitute for a visual overflow check).
func TestCoordinatesFiniteAndInBounds(t *testing.T) {
	f := lineFig()
	out := render(t, f)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("non-finite coordinates in output")
	}
	pointsRe := regexp.MustCompile(`points="([^"]+)"`)
	for _, m := range pointsRe.FindAllStringSubmatch(out, -1) {
		for _, tok := range numRe.FindAllString(m[1], -1) {
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil || math.IsNaN(v) || v < -1 || v > float64(f.Width)+1 {
				t.Errorf("point coordinate %q out of bounds", tok)
			}
		}
	}
}

func TestLegendRules(t *testing.T) {
	multi := render(t, lineFig())
	if !strings.Contains(multi, ">a</text>") || !strings.Contains(multi, ">b</text>") {
		t.Errorf("multi-series figure missing legend entries")
	}
	single := &Figure{
		Title: "single", Kind: "line",
		Series: []Series{{Name: "only", X: []float64{0, 1}, Y: []float64{1, 2}}},
	}
	out := render(t, single)
	if strings.Contains(out, ">only</text>") {
		t.Errorf("single-series figure should not draw a legend box")
	}
}

func TestFixedSlotColors(t *testing.T) {
	out := render(t, lineFig())
	// Slot order is fixed: series 1 blue, series 2 aqua.
	if !strings.Contains(out, seriesColors[0]) || !strings.Contains(out, seriesColors[1]) {
		t.Errorf("series not painted with the fixed slot order")
	}
}

func TestScatterDotsHaveSurfaceRing(t *testing.T) {
	f := &Figure{
		Title: "s", Kind: "scatter",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{2, 1}},
		},
	}
	out := render(t, f)
	if !strings.Contains(out, `r="4"`) || !strings.Contains(out, fmt.Sprintf(`stroke="%s" stroke-width="2"`, surface)) {
		t.Errorf("scatter marks missing the 8px dot with 2px surface ring")
	}
}

func TestBarsRoundedAtDataEndOnly(t *testing.T) {
	f := &Figure{
		Title: "b", Kind: "bars", Groups: []string{"x"},
		Series: []Series{{Name: "v", Y: []float64{10}}, {Name: "w", Y: []float64{20}}},
	}
	out := render(t, f)
	// Bars are paths with quadratic corners at the top and a straight
	// baseline edge (Z closes along the bottom).
	if !strings.Contains(out, "Q") || !strings.Contains(out, "Z") {
		t.Errorf("bars not drawn as rounded-top paths:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := []*Figure{
		{Title: "no series", Kind: "line"},
		{Title: "bad kind", Kind: "pie", Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1}}}},
		{Title: "mismatch", Kind: "line", Series: []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{1}}}},
		{Title: "no groups", Kind: "bars", Series: []Series{{Name: "a", Y: []float64{1}}}},
		{Title: "group mismatch", Kind: "bars", Groups: []string{"g"}, Series: []Series{{Name: "a", Y: []float64{1, 2}}}},
		{Title: "negative bar", Kind: "bars", Groups: []string{"g"}, Series: []Series{{Name: "a", Y: []float64{-1}}}},
		{Title: "empty line", Kind: "line", Series: []Series{{Name: "a"}}},
	}
	for _, f := range cases {
		var buf bytes.Buffer
		if err := f.Render(&buf); err == nil {
			t.Errorf("%s: expected error", f.Title)
		}
	}
	// Too many series must be refused, never painted with cycled hues.
	many := &Figure{Title: "many", Kind: "line"}
	for i := 0; i < len(seriesColors)+1; i++ {
		many.Series = append(many.Series, Series{
			Name: fmt.Sprintf("s%d", i), X: []float64{0, 1}, Y: []float64{0, 1},
		})
	}
	var buf bytes.Buffer
	if err := many.Render(&buf); err == nil {
		t.Error("palette overflow not rejected")
	}
}

func TestNiceTicks(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 100, 5},
		{0.3, 0.41, 5},
		{250000, 1840000, 5},
		{0, 0, 5}, // degenerate
		{-3, 7, 4},
	}
	for _, tc := range cases {
		ticks := niceTicks(tc.lo, tc.hi, tc.n)
		if len(ticks) == 0 {
			t.Errorf("niceTicks(%g,%g) empty", tc.lo, tc.hi)
			continue
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Errorf("ticks not increasing: %v", ticks)
			}
		}
		hi := tc.hi
		if hi <= tc.lo {
			hi = tc.lo + 1
		}
		if ticks[0] < tc.lo-1e-9 || ticks[len(ticks)-1] > hi+1e-6*math.Abs(hi)+1e-12 {
			t.Errorf("ticks %v outside [%g,%g]", ticks, tc.lo, hi)
		}
	}
}
