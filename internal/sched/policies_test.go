package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrioritiesRegistry(t *testing.T) {
	g := buildFig4a(t)
	for _, name := range Policies {
		fn, err := Priorities(name, 42)
		if err != nil {
			t.Errorf("Priorities(%s): %v", name, err)
			continue
		}
		prio := fn(g)
		if len(prio) != g.NumTasks() {
			t.Errorf("%s: %d priorities for %d tasks", name, len(prio), g.NumTasks())
		}
		s, err := ListSchedule(g, 2, prio)
		if err != nil {
			t.Errorf("%s: ListSchedule: %v", name, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: invalid schedule: %v", name, err)
		}
	}
	if _, err := Priorities("nope", 1); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown policy err = %v", err)
	}
}

func TestPolicyOrderings(t *testing.T) {
	g := buildFig4a(t)
	lpt := LPTPriorities(g)
	spt := SPTPriorities(g)
	for v := 0; v < g.NumTasks(); v++ {
		if lpt[v] != -g.Weight(v) || spt[v] != g.Weight(v) {
			t.Errorf("task %d: lpt=%d spt=%d weight=%d", v, lpt[v], spt[v], g.Weight(v))
		}
	}
	// Critical-child of T1 (weights: T2=6 is its heaviest successor):
	// -(blevel(T1)=10 + 6) = -16.
	cc := CriticalChildPriorities(g)
	if cc[0] != -16 {
		t.Errorf("critical-child prio of T1 = %d, want -16", cc[0])
	}
	// Sinks have no successors: -(blevel).
	if cc[4] != -2 {
		t.Errorf("critical-child prio of T5 = %d, want -2", cc[4])
	}
}

func TestRandomPrioritiesSeeded(t *testing.T) {
	g := buildFig4a(t)
	a := RandomPriorities(g, 7)
	b := RandomPriorities(g, 7)
	c := RandomPriorities(g, 8)
	same, diff := true, false
	for v := range a {
		if a[v] != b[v] {
			same = false
		}
		if a[v] != c[v] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different priorities")
	}
	if !diff {
		t.Error("different seeds produced identical priorities (suspicious)")
	}
	// A permutation: all values distinct, within [0, n).
	seen := map[int64]bool{}
	for _, p := range a {
		if p < 0 || p >= int64(g.NumTasks()) || seen[p] {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[p] = true
	}
}

// TestEDFNeverMuchWorseOnMakespan: any list policy produces a makespan
// within the classic Graham 2-1/m factor of the lower bound; check all
// policies stay within it.
func TestPropertyGrahamBound(t *testing.T) {
	f := func(seed int64, rawN, rawProcs, rawPol uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%40) + 2
		nprocs := int(rawProcs%6) + 1
		g := randomGraph(rng, n, 0.15)
		name := Policies[int(rawPol)%len(Policies)]
		fn, err := Priorities(name, seed)
		if err != nil {
			return false
		}
		s, err := ListSchedule(g, nprocs, fn(g))
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("%s: %v", name, err)
			return false
		}
		lb := MakespanLowerBound(g, nprocs)
		graham := float64(lb) * (2 - 1/float64(nprocs))
		if float64(s.Makespan) > graham+1e-9 {
			t.Logf("%s: makespan %d exceeds Graham bound %.1f (lb %d, m %d)",
				name, s.Makespan, graham, lb, nprocs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
