package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"lamps/internal/dag"
)

// This file provides alternative list-scheduling priority policies. The
// paper schedules exclusively with EDF and uses the LIMIT bounds to argue
// that no other scheduling algorithm can improve much (Section 4.4); these
// policies make that argument testable empirically, and are exposed through
// core.Config.Priorities for ablation studies.

// PolicyName identifies a priority policy.
type PolicyName string

// Available policies.
const (
	// PolicyEDF is earliest deadline first, the paper's policy: highest
	// bottom level first.
	PolicyEDF PolicyName = "edf"
	// PolicyFIFO dispatches ready tasks by index; a deliberately naive
	// baseline.
	PolicyFIFO PolicyName = "fifo"
	// PolicyLPT dispatches the longest ready task first (longest processing
	// time), the classic makespan heuristic for independent tasks.
	PolicyLPT PolicyName = "lpt"
	// PolicySPT dispatches the shortest ready task first.
	PolicySPT PolicyName = "spt"
	// PolicyCriticalChild prefers tasks whose heaviest successor is most
	// urgent: blevel plus the largest successor weight. It approximates the
	// slowdown-opportunity-aware scheduling of Zhang et al. (DAC'02), which
	// the paper cites as an alternative worth comparing against.
	PolicyCriticalChild PolicyName = "critical-child"
	// PolicyRandom uses a seeded random permutation; useful to estimate how
	// much the policy matters at all.
	PolicyRandom PolicyName = "random"
)

// Policies lists all policy names.
var Policies = []PolicyName{
	PolicyEDF, PolicyFIFO, PolicyLPT, PolicySPT, PolicyCriticalChild, PolicyRandom,
}

// ErrUnknownPolicy is returned for unrecognised policy names.
var ErrUnknownPolicy = errors.New("sched: unknown policy")

// Priorities returns the priority function of a named policy. The random
// policy is seeded with the given seed; the others ignore it.
func Priorities(name PolicyName, seed int64) (func(*dag.Graph) []int64, error) {
	switch name {
	case PolicyEDF:
		return func(g *dag.Graph) []int64 { return EDFPriorities(g, 0) }, nil
	case PolicyFIFO:
		return FIFOPriorities, nil
	case PolicyLPT:
		return LPTPriorities, nil
	case PolicySPT:
		return SPTPriorities, nil
	case PolicyCriticalChild:
		return CriticalChildPriorities, nil
	case PolicyRandom:
		return func(g *dag.Graph) []int64 { return RandomPriorities(g, seed) }, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
}

// LPTPriorities orders ready tasks by decreasing weight.
func LPTPriorities(g *dag.Graph) []int64 {
	prio := make([]int64, g.NumTasks())
	for v := range prio {
		prio[v] = -g.Weight(v)
	}
	return prio
}

// SPTPriorities orders ready tasks by increasing weight.
func SPTPriorities(g *dag.Graph) []int64 {
	prio := make([]int64, g.NumTasks())
	for v := range prio {
		prio[v] = g.Weight(v)
	}
	return prio
}

// CriticalChildPriorities orders ready tasks by decreasing
// blevel + max-successor-weight, favouring tasks that unblock heavy
// successors early.
func CriticalChildPriorities(g *dag.Graph) []int64 {
	prio := make([]int64, g.NumTasks())
	for v := range prio {
		var heaviest int64
		for _, s := range g.Succs(v) {
			if w := g.Weight(int(s)); w > heaviest {
				heaviest = w
			}
		}
		prio[v] = -(g.BottomLevel(v) + heaviest)
	}
	return prio
}

// RandomPriorities assigns a seeded random permutation as priorities.
func RandomPriorities(g *dag.Graph, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(g.NumTasks())
	prio := make([]int64, g.NumTasks())
	for v := range prio {
		prio[v] = int64(perm[v])
	}
	return prio
}
