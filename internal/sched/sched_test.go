package sched

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
)

// buildFig4a constructs the paper's running example (Fig. 4a): weights
// T1=2, T2=6, T3=4, T4=4, T5=2, edges T1->{T2,T3,T4}, {T2,T3}->T5.
func buildFig4a(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("fig4a")
	t1 := b.AddLabeledTask(2, "T1")
	t2 := b.AddLabeledTask(6, "T2")
	t3 := b.AddLabeledTask(4, "T3")
	t4 := b.AddLabeledTask(4, "T4")
	t5 := b.AddLabeledTask(2, "T5")
	b.AddEdge(t1, t2)
	b.AddEdge(t1, t3)
	b.AddEdge(t1, t4)
	b.AddEdge(t2, t5)
	b.AddEdge(t3, t5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestFig4bSchedule reproduces the EDF schedule of Fig. 4b: on three
// processors the makespan equals the critical path length (10 cycles).
func TestFig4bSchedule(t *testing.T) {
	g := buildFig4a(t)
	s, err := ListEDF(g, 3)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Makespan != 10 {
		t.Errorf("makespan = %d, want 10 (the CPL)", s.Makespan)
	}
	// T1 runs first and alone; T2, T3, T4 run concurrently after it.
	if s.Start[0] != 0 || s.Finish[0] != 2 {
		t.Errorf("T1 interval = [%d,%d), want [0,2)", s.Start[0], s.Finish[0])
	}
	for _, v := range []int{1, 2, 3} {
		if s.Start[v] != 2 {
			t.Errorf("T%d starts at %d, want 2", v+1, s.Start[v])
		}
	}
	// T5 starts when both T2 and T3 are done.
	if s.Start[4] != 8 || s.Finish[4] != 10 {
		t.Errorf("T5 interval = [%d,%d), want [8,10)", s.Start[4], s.Finish[4])
	}
}

// TestFig7aTwoProcessors reproduces the LAMPS observation of Fig. 7a: the
// same graph scheduled on only two processors still achieves the CPL
// makespan of 10 cycles.
func TestFig7aTwoProcessors(t *testing.T) {
	g := buildFig4a(t)
	s, err := ListEDF(g, 2)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Makespan != 10 {
		t.Errorf("makespan on 2 procs = %d, want 10", s.Makespan)
	}
	if s.ProcsUsed() != 2 {
		t.Errorf("ProcsUsed = %d, want 2", s.ProcsUsed())
	}
}

func TestSingleProcessorNoIdle(t *testing.T) {
	g := buildFig4a(t)
	s, err := ListEDF(g, 1)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	if s.Makespan != g.TotalWork() {
		t.Errorf("1-proc makespan = %d, want total work %d", s.Makespan, g.TotalWork())
	}
	if gaps := s.Gaps(s.Makespan); len(gaps) != 0 {
		t.Errorf("1-proc schedule has interior gaps: %v", gaps)
	}
}

func TestGapsWithHorizon(t *testing.T) {
	g := buildFig4a(t)
	s, err := ListEDF(g, 3)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	gaps := s.Gaps(15) // deadline 1.5x CPL as in Fig. 4
	var total int64
	for _, gap := range gaps {
		if gap.Length() <= 0 {
			t.Errorf("zero/negative gap %+v", gap)
		}
		total += gap.Length()
	}
	// Busy + idle must equal 3 processors x 15 cycles.
	if got, want := total+g.TotalWork(), int64(3*15); got != want {
		t.Errorf("idle+busy = %d, want %d", got, want)
	}
	if got := s.IdleCycles(15); got != total {
		t.Errorf("IdleCycles = %d, want %d", got, total)
	}
	if got := s.BusyCycles(); got != g.TotalWork() {
		t.Errorf("BusyCycles = %d, want %d", got, g.TotalWork())
	}
}

func TestUnusedProcessorsContributeNoGaps(t *testing.T) {
	b := dag.NewBuilder("tiny")
	b.AddTask(5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ListEDF(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcsUsed() != 1 {
		t.Fatalf("ProcsUsed = %d, want 1", s.ProcsUsed())
	}
	if gaps := s.Gaps(100); len(gaps) != 1 || gaps[0].Proc != 0 || gaps[0].Begin != 5 || gaps[0].End != 100 {
		t.Errorf("Gaps = %+v, want single trailing gap on proc 0", gaps)
	}
}

func TestErrNoProcs(t *testing.T) {
	g := buildFig4a(t)
	if _, err := ListEDF(g, 0); !errors.Is(err, ErrNoProcs) {
		t.Errorf("err = %v, want ErrNoProcs", err)
	}
	if _, err := ListEDF(g, -2); !errors.Is(err, ErrNoProcs) {
		t.Errorf("err = %v, want ErrNoProcs", err)
	}
}

func TestBadPriorityLength(t *testing.T) {
	g := buildFig4a(t)
	if _, err := ListSchedule(g, 2, []int64{1, 2}); !errors.Is(err, ErrBadPriorities) {
		t.Errorf("err = %v, want ErrBadPriorities", err)
	}
	// A wrong-length priority slice must not be conflated with a wrong-length
	// deadline slice: API layers map the two onto different error messages.
	if _, err := ListSchedule(g, 2, []int64{1, 2}); errors.Is(err, ErrBadDeadlines) {
		t.Errorf("err = %v unexpectedly wraps ErrBadDeadlines", err)
	}
	// ListEDFWithDeadlines takes a *deadline* slice, so its length error stays
	// ErrBadDeadlines.
	if _, err := ListEDFWithDeadlines(g, 2, []int64{1}); !errors.Is(err, ErrBadDeadlines) {
		t.Errorf("err = %v, want ErrBadDeadlines", err)
	}
}

func TestEDFPrioritiesOrdering(t *testing.T) {
	g := buildFig4a(t)
	prio := EDFPriorities(g, 15)
	// d(v) = D - (blevel - w): T1: 15-8=7, T2: 15-2=13, T3: 15-2=13,
	// T4: 15-0=15, T5: 15-0=15.
	want := []int64{7, 13, 13, 15, 15}
	for v, w := range want {
		if prio[v] != w {
			t.Errorf("prio[%d] = %d, want %d", v, prio[v], w)
		}
	}
}

func TestDeadlinePriorities(t *testing.T) {
	// Chain a(3) -> b(2) -> c(4); only c has an explicit deadline of 20.
	b := dag.NewBuilder("chain")
	a := b.AddTask(3)
	bb := b.AddTask(2)
	c := b.AddTask(4)
	b.AddEdge(a, bb)
	b.AddEdge(bb, c)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dl := []int64{NoDeadline, NoDeadline, 20}
	eff, err := DeadlinePriorities(g, dl)
	if err != nil {
		t.Fatal(err)
	}
	// c must finish by 20, so b by 20-4=16, so a by 16-2=14.
	want := []int64{14, 16, 20}
	for v := range want {
		if eff[v] != want[v] {
			t.Errorf("eff[%d] = %d, want %d", v, eff[v], want[v])
		}
	}
	// A task with both an explicit deadline and a tighter derived one keeps
	// the minimum.
	dl2 := []int64{10, NoDeadline, 20}
	eff2, err := DeadlinePriorities(g, dl2)
	if err != nil {
		t.Fatal(err)
	}
	if eff2[0] != 10 {
		t.Errorf("explicit tighter deadline not kept: %d", eff2[0])
	}
}

func TestDeadlinePrioritiesNoDeadlineAnywhere(t *testing.T) {
	g := buildFig4a(t)
	dl := []int64{NoDeadline, NoDeadline, NoDeadline, NoDeadline, NoDeadline}
	eff, err := DeadlinePriorities(g, dl)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range eff {
		if d != NoDeadline {
			t.Errorf("eff[%d] = %d, want NoDeadline", v, d)
		}
	}
}

func TestFIFOPriorities(t *testing.T) {
	g := buildFig4a(t)
	p := FIFOPriorities(g)
	for v := range p {
		if p[v] != int64(v) {
			t.Errorf("FIFO prio[%d] = %d", v, p[v])
		}
	}
	s, err := ListSchedule(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("FIFO schedule invalid: %v", err)
	}
}

func TestScheduleString(t *testing.T) {
	g := buildFig4a(t)
	s, err := ListEDF(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"P0:", "P1:", "T1[0,2)", "makespan 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestMakespanLowerBound(t *testing.T) {
	g := buildFig4a(t)
	// CPL=10, W=18.
	tests := []struct {
		nprocs int
		want   int64
	}{
		{1, 18},
		{2, 10}, // ceil(18/2)=9 < CPL
		{3, 10},
		{100, 10},
	}
	for _, tc := range tests {
		if got := MakespanLowerBound(g, tc.nprocs); got != tc.want {
			t.Errorf("MakespanLowerBound(%d) = %d, want %d", tc.nprocs, got, tc.want)
		}
	}
}

// randomGraph builds a seeded random DAG for property tests.
func randomGraph(rng *rand.Rand, n int, p float64) *dag.Graph {
	b := dag.NewBuilder("prop")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(100) + 1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyScheduleValidity(t *testing.T) {
	f := func(seed int64, rawN, rawP, rawProcs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%50) + 1
		p := float64(rawP%40) / 100
		nprocs := int(rawProcs%8) + 1
		g := randomGraph(rng, n, p)
		s, err := ListEDF(g, nprocs)
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("invalid schedule: %v", err)
			return false
		}
		lb := MakespanLowerBound(g, nprocs)
		if s.Makespan < lb || s.Makespan > g.TotalWork() {
			t.Logf("makespan %d outside [%d, %d]", s.Makespan, lb, g.TotalWork())
			return false
		}
		// Busy + idle accounting at an arbitrary horizon.
		horizon := s.Makespan + int64(rng.Intn(1000))
		var used int64
		for pp := 0; pp < nprocs; pp++ {
			if len(s.TasksOn(pp)) > 0 {
				used++
			}
		}
		if s.IdleCycles(horizon)+g.TotalWork() != used*horizon {
			t.Logf("gap accounting mismatch")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWorkConserving checks that no processor is idle at a time when
// a task was ready and unscheduled (the defining property of event-driven
// list scheduling): equivalently, whenever a gap ends with a task start, the
// started task must have a predecessor finishing exactly at the gap's end.
func TestPropertyWorkConserving(t *testing.T) {
	f := func(seed int64, rawN, rawProcs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%40) + 2
		nprocs := int(rawProcs%4) + 2
		g := randomGraph(rng, n, 0.2)
		s, err := ListEDF(g, nprocs)
		if err != nil {
			return false
		}
		for _, gap := range s.Gaps(s.Makespan) {
			// Find the task starting at gap.End on gap.Proc.
			var starter = -1
			for _, v := range s.TasksOn(gap.Proc) {
				if s.Start[v] == gap.End {
					starter = int(v)
				}
			}
			if starter < 0 {
				continue // trailing gap
			}
			ok := false
			for _, pred := range g.Preds(starter) {
				if s.Finish[pred] == gap.End {
					ok = true
				}
			}
			if !ok {
				t.Logf("task %d started at %d after an idle gap with no just-finished predecessor", starter, gap.End)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMoreProcsNeverWorseMuch verifies the makespan with N procs is
// never worse than with 1 proc and at least the lower bound; strict
// monotonicity does not hold for list scheduling (anomalies), so only the
// safe bounds are asserted.
func TestPropertyMoreProcsBounds(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%30) + 2
		g := randomGraph(rng, n, 0.15)
		m1, err := ListEDF(g, 1)
		if err != nil {
			return false
		}
		for _, procs := range []int{2, 3, 5, 9} {
			mp, err := ListEDF(g, procs)
			if err != nil {
				return false
			}
			if mp.Makespan > m1.Makespan {
				t.Logf("makespan with %d procs (%d) worse than 1 proc (%d)", procs, mp.Makespan, m1.Makespan)
				return false
			}
			if mp.Makespan < g.CriticalPathLength() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 60, 0.1)
	a, err := ListEDF(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListEDF(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumTasks(); v++ {
		if a.Proc[v] != b.Proc[v] || a.Start[v] != b.Start[v] {
			t.Fatalf("schedule not deterministic at task %d", v)
		}
	}
}

func BenchmarkListEDF1000x8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 1000, 0.004)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ListEDF(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReleasesDelayStart(t *testing.T) {
	b := dag.NewBuilder("rel")
	a := b.AddTask(5)
	c := b.AddTask(5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	rel := []int64{0, 100}
	s, err := ListScheduleReleases(g, 2, FIFOPriorities(g), rel)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 0 {
		t.Errorf("task 0 starts at %d, want 0", s.Start[0])
	}
	if s.Start[c] != 100 {
		t.Errorf("released task starts at %d, want 100", s.Start[c])
	}
	if s.Makespan != 105 {
		t.Errorf("makespan = %d, want 105", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestReleasesOnSuccessors(t *testing.T) {
	// a(5) -> b(5); b additionally released at 20: must start at 20, not 5.
	bb := dag.NewBuilder("rel2")
	a := bb.AddTask(5)
	c := bb.AddTask(5)
	bb.AddEdge(a, c)
	g, err := bb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ListScheduleReleases(g, 1, EDFPriorities(g, 0), []int64{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[c] != 20 || s.Makespan != 25 {
		t.Errorf("start=%d makespan=%d, want 20 and 25", s.Start[c], s.Makespan)
	}
}

func TestReleasesBadLength(t *testing.T) {
	g := buildFig4a(t)
	_, err := ListScheduleReleases(g, 2, EDFPriorities(g, 0), []int64{1, 2})
	if !errors.Is(err, ErrBadReleases) {
		t.Errorf("err = %v, want ErrBadReleases", err)
	}
	if errors.Is(err, ErrBadDeadlines) || errors.Is(err, ErrBadPriorities) {
		t.Errorf("err = %v wraps an unrelated sentinel", err)
	}
}

func TestPropertyReleasesRespected(t *testing.T) {
	f := func(seed int64, rawN, rawProcs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%30) + 1
		g := randomGraph(rng, n, 0.15)
		rel := make([]int64, n)
		for v := range rel {
			rel[v] = int64(rng.Intn(500))
		}
		s, err := ListScheduleReleases(g, int(rawProcs%4)+1, EDFPriorities(g, 0), rel)
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		for v := 0; v < n; v++ {
			if s.Start[v] < rel[v] {
				t.Logf("task %d starts at %d before release %d", v, s.Start[v], rel[v])
				return false
			}
		}
		// Nil releases must match all-zero releases exactly.
		zero, err := ListScheduleReleases(g, int(rawProcs%4)+1, EDFPriorities(g, 0), make([]int64, n))
		if err != nil {
			return false
		}
		plain, err := ListEDF(g, int(rawProcs%4)+1)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if zero.Start[v] != plain.Start[v] || zero.Proc[v] != plain.Proc[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	g := buildFig4a(t)
	s, err := ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.Makespan != s.Makespan || back.NumProcs != s.NumProcs {
		t.Errorf("round trip lost makespan/procs")
	}
	for v := 0; v < g.NumTasks(); v++ {
		if back.Proc[v] != s.Proc[v] || back.Start[v] != s.Start[v] || back.Finish[v] != s.Finish[v] {
			t.Errorf("task %d differs after round trip", v)
		}
		if back.Graph.Weight(v) != g.Weight(v) || back.Graph.Label(v) != g.Label(v) {
			t.Errorf("graph data lost for task %d", v)
		}
	}
}

func TestScheduleJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"unknown": 1}`,
		`{"name":"x","num_procs":1,"makespan_cycles":5,"tasks":[{"id":1,"weight_cycles":5,"proc":0,"start_cycles":0,"finish_cycles":5}]}`, // non-dense ids
		`{"name":"x","num_procs":1,"makespan_cycles":9,"tasks":[{"id":0,"weight_cycles":5,"proc":0,"start_cycles":0,"finish_cycles":5}]}`, // wrong makespan
		`{"name":"x","num_procs":1,"makespan_cycles":5,"tasks":[{"id":0,"weight_cycles":5,"proc":3,"start_cycles":0,"finish_cycles":5}]}`, // proc out of range
	}
	for i, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: corrupt schedule accepted", i)
		}
	}
}

func TestPropertyScheduleJSONRoundTrip(t *testing.T) {
	f := func(seed int64, rawN, rawProcs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, int(rawN%30)+1, 0.2)
		s, err := ListEDF(g, int(rawProcs%5)+1)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Logf("ReadJSON: %v", err)
			return false
		}
		return back.Validate() == nil && back.Makespan == s.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEDFPrioritiesSaturates is the regression test for the wraparound bug:
// priorities computed from deadlines at either int64 extreme must saturate
// instead of wrapping, so the EDF dispatch order is never inverted.
func TestEDFPrioritiesSaturates(t *testing.T) {
	g := buildFig4a(t)

	// NoDeadline (MaxInt64) is the everyday extreme: the order must match
	// the deadline-0 order exactly (priorities are shift-invariant in the
	// exact range), and no priority may have wrapped negative.
	base := EDFPriorities(g, 0)
	nd := EDFPriorities(g, NoDeadline)
	for v := range nd {
		if nd[v] < 0 {
			t.Errorf("prio[%d] = %d wrapped negative for NoDeadline", v, nd[v])
		}
		for u := range nd {
			if (base[v] < base[u]) != (nd[v] < nd[u]) {
				t.Errorf("NoDeadline inverts order of tasks %d and %d", v, u)
			}
		}
	}

	// At the bottom extreme, deadline - slack would wrap positive (turning
	// the most urgent task into the least urgent); saturation clamps to
	// MinInt64 instead.
	lo := EDFPriorities(g, math.MinInt64)
	for v, p := range lo {
		if p > 0 {
			t.Errorf("prio[%d] = %d wrapped positive for MinInt64 deadline", v, p)
		}
	}
}

func TestSubSat(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 3, 7},
		{math.MaxInt64, 5, math.MaxInt64 - 5},
		{math.MaxInt64, -1, math.MaxInt64}, // would wrap negative
		{math.MinInt64, 1, math.MinInt64},  // would wrap positive
		{math.MinInt64, -5, math.MinInt64 + 5},
		{-3, math.MaxInt64, math.MinInt64}, // true value is below MinInt64
		{0, math.MinInt64, math.MaxInt64},  // true value is above MaxInt64
	}
	for _, c := range cases {
		if got := subSat(c.a, c.b); got != c.want {
			t.Errorf("subSat(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
