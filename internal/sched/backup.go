package sched

import (
	"errors"
	"fmt"
	"sort"

	"lamps/internal/power"
)

// Fault-tolerant scheduling: every task of a primary schedule gets one
// statically planned backup slot on a *different* processor, placed on the
// schedule's existing slack. Execution is time-triggered: primaries always
// run at their static times; a fault in task v (or a missing input, because
// a predecessor's valid output only became available from its backup) is
// detected when v's primary slot ends, and v's statically reserved backup
// slot re-executes it. Because every backup starts no earlier than the
// backup finish of every predecessor, a backup's inputs are always
// available by its start, so ANY set of faulty tasks — one transient fault
// per task — is recovered without re-planning. The recovery makespan is the
// latest backup finish: the deadline guarantee for up to K faults follows
// from RecoveryMakespan fitting the deadline, independent of which tasks
// actually fault.

// FaultPolicy selects where backup slots may be placed.
type FaultPolicy string

const (
	// BackupAnywhere places each backup on whichever processor (other than
	// the primary's) finishes it earliest.
	BackupAnywhere FaultPolicy = "backup-anywhere"
	// PrimaryHPBackupLP confines backups to processors outside the
	// platform's reference (fastest, HP) class whenever such a processor
	// other than the primary's exists — the FEST/EnSuRe-style split that
	// keeps recovery reservations on the low-power cores. On a homogeneous
	// machine every processor is reference-class, so the policy degrades to
	// BackupAnywhere.
	PrimaryHPBackupLP FaultPolicy = "primary-hp-backup-lp"
)

// ErrBackupInfeasible is returned when no legal backup placement exists —
// fault tolerance needs at least two processors.
var ErrBackupInfeasible = errors.New("sched: backup placement needs at least two processors")

// BackupPlan is the statically reserved recovery layer of one schedule: one
// backup slot per task, indexed like the schedule's own arrays. All times
// are in the schedule's timeline cycles.
type BackupPlan struct {
	Proc   []int32 // task -> backup processor (never the primary's)
	Start  []int64 // task -> backup start [cycles]
	Finish []int64 // task -> backup finish [cycles]

	// RecoveryMakespan is the latest backup finish — the schedule length
	// when recovery is exercised, and the quantity the deadline must cover
	// for the fault-tolerance guarantee to hold. It is never smaller than
	// the primary makespan.
	RecoveryMakespan int64

	// Policy records the placement policy the plan was built under.
	Policy FaultPolicy
}

// ReservedCycles returns the total timeline cycles held by backup slots.
func (pl *BackupPlan) ReservedCycles() int64 {
	var sum int64
	for v := range pl.Start {
		sum += pl.Finish[v] - pl.Start[v]
	}
	return sum
}

// EmployedWith returns the number of processors that run at least one
// primary task or hold at least one backup slot under s — the processor
// count that must stay powered in the fault-tolerant configuration.
func (pl *BackupPlan) EmployedWith(s *Schedule) int {
	n := 0
	for p := 0; p < s.NumProcs; p++ {
		if len(s.TasksOn(p)) > 0 {
			n++
			continue
		}
		for v := range pl.Proc {
			if int(pl.Proc[v]) == p {
				n++
				break
			}
		}
	}
	return n
}

// backupIv is one reserved interval on a processor's merged timeline.
type backupIv struct {
	start, finish int64
}

// BackupPlanner carries the scratch of PlanBackups so repeated planning
// (the engine evaluates many candidate processor counts per request)
// reuses its buffers. The zero value is ready to use; a planner is not
// safe for concurrent use.
type BackupPlanner struct {
	ivs   [][]backupIv // per-processor reserved intervals, sorted by start
	order []int32      // tasks in (primary finish, index) order
}

// PlanBackups plans one backup slot per task of s under policy. A nil
// platform means identical processors (durations equal task weights); with
// a platform, a backup on processor p takes ScaledWeight(ClassOf(p), w)
// timeline cycles. The plan is deterministic: tasks are processed in
// (primary finish, task index) order and each backup goes to the eligible
// processor with the earliest finish, ties broken by processor index.
func PlanBackups(s *Schedule, pf *power.Platform, policy FaultPolicy) (*BackupPlan, error) {
	var bp BackupPlanner
	return bp.Plan(s, pf, policy)
}

// Plan is PlanBackups on reusable scratch.
func (bp *BackupPlanner) Plan(s *Schedule, pf *power.Platform, policy FaultPolicy) (*BackupPlan, error) {
	switch policy {
	case "", BackupAnywhere, PrimaryHPBackupLP:
	default:
		return nil, fmt.Errorf("sched: unknown fault policy %q", policy)
	}
	if policy == "" {
		policy = BackupAnywhere
	}
	if s.NumProcs < 2 {
		return nil, fmt.Errorf("%w: schedule uses %d", ErrBackupInfeasible, s.NumProcs)
	}
	g := s.Graph
	n := g.NumTasks()

	if cap(bp.ivs) < s.NumProcs {
		bp.ivs = make([][]backupIv, s.NumProcs)
	}
	bp.ivs = bp.ivs[:s.NumProcs]
	for p := 0; p < s.NumProcs; p++ {
		ivs := bp.ivs[p][:0]
		// Primary slots seed each processor's reserved timeline; TasksOn is
		// already in start order.
		for _, v := range s.TasksOn(p) {
			ivs = append(ivs, backupIv{s.Start[v], s.Finish[v]})
		}
		bp.ivs[p] = ivs
	}

	if cap(bp.order) < n {
		bp.order = make([]int32, n)
	}
	bp.order = bp.order[:n]
	for v := range bp.order {
		bp.order[v] = int32(v)
	}
	// (Finish, index) order is topological: weights are positive, so a
	// successor always finishes strictly after every predecessor.
	sort.Slice(bp.order, func(i, j int) bool {
		vi, vj := bp.order[i], bp.order[j]
		if s.Finish[vi] != s.Finish[vj] {
			return s.Finish[vi] < s.Finish[vj]
		}
		return vi < vj
	})

	plan := &BackupPlan{
		Proc:   make([]int32, n),
		Start:  make([]int64, n),
		Finish: make([]int64, n),
		Policy: policy,
	}
	ref := -1
	if pf != nil {
		ref = pf.RefClass()
	}
	for _, v := range bp.order {
		// The backup can start only after the fault is detectable (the
		// primary slot's end) and after every predecessor's backup output is
		// available — the invariant that makes recovery valid for any fault
		// set.
		lb := s.Finish[v]
		for _, u := range g.Preds(int(v)) {
			if plan.Finish[u] > lb {
				lb = plan.Finish[u]
			}
		}
		w := g.Weight(int(v))

		// The primary-HP/backup-LP policy restricts the candidate set to
		// non-reference-class processors when one other than the primary's
		// exists; otherwise (homogeneous machine, or the only LP core runs
		// the primary) it falls back to any other processor.
		restrict := false
		if policy == PrimaryHPBackupLP && pf != nil {
			for p := 0; p < s.NumProcs; p++ {
				if int32(p) != s.Proc[v] && pf.ClassOf(p) != ref {
					restrict = true
					break
				}
			}
		}

		bestProc, bestStart, bestFinish := -1, int64(0), int64(0)
		for p := 0; p < s.NumProcs; p++ {
			if int32(p) == s.Proc[v] {
				continue
			}
			if restrict && pf.ClassOf(p) == ref {
				continue
			}
			dur := w
			if pf != nil {
				dur = pf.ScaledWeight(pf.ClassOf(p), w)
			}
			start := earliestFit(bp.ivs[p], lb, dur)
			if finish := start + dur; bestProc < 0 || finish < bestFinish {
				bestProc, bestStart, bestFinish = p, start, finish
			}
		}
		if bestProc < 0 {
			return nil, fmt.Errorf("%w: no processor other than %d eligible for task %d",
				ErrBackupInfeasible, s.Proc[v], v)
		}
		plan.Proc[v] = int32(bestProc)
		plan.Start[v] = bestStart
		plan.Finish[v] = bestFinish
		bp.ivs[bestProc] = insertIv(bp.ivs[bestProc], backupIv{bestStart, bestFinish})
		if bestFinish > plan.RecoveryMakespan {
			plan.RecoveryMakespan = bestFinish
		}
	}
	return plan, nil
}

// earliestFit returns the earliest start >= lb at which a slot of dur cycles
// fits between the sorted, non-overlapping reserved intervals.
func earliestFit(ivs []backupIv, lb, dur int64) int64 {
	cursor := lb
	for _, iv := range ivs {
		if iv.start >= cursor+dur {
			break // the slot fits entirely before this interval
		}
		if iv.finish > cursor {
			cursor = iv.finish
		}
	}
	return cursor
}

// insertIv inserts iv into the sorted interval list, keeping start order.
func insertIv(ivs []backupIv, iv backupIv) []backupIv {
	i := sort.Search(len(ivs), func(j int) bool { return ivs[j].start > iv.start })
	ivs = append(ivs, backupIv{})
	copy(ivs[i+1:], ivs[i:])
	ivs[i] = iv
	return ivs
}
