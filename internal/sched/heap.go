package sched

// Inlined index-based min-heaps for the scheduling kernel. container/heap
// routes every Push/Pop through an `any` interface value, which boxes the
// element on the heap (an allocation per operation for non-pointer types)
// and forces dynamic dispatch in the hot loop. These generic helpers operate
// directly on typed slices: no boxing, no interface calls, no allocation
// beyond the slice growth the caller controls.
//
// The element type provides the strict weak ordering through the lessThan
// method. All orderings used by the kernel are total (ties broken by task
// index), so the pop sequence of these heaps is exactly the pop sequence of
// container/heap with the same comparator — a requirement for the kernel's
// byte-identical-schedules contract.

// heapElem is the constraint for heap elements: a total order on the type.
type heapElem[T any] interface {
	lessThan(T) bool
}

// heapInit establishes the heap invariant in O(len(h)).
func heapInit[T heapElem[T]](h []T) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		heapDown(h, i)
	}
}

// heapPush appends x and restores the invariant. The append reuses the
// slice's spare capacity; steady-state kernels size the backing array once.
func heapPush[T heapElem[T]](h *[]T, x T) {
	*h = append(*h, x)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].lessThan(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// heapPop removes and returns the minimum element.
func heapPop[T heapElem[T]](h *[]T) T {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	x := s[n]
	*h = s[:n]
	heapDown(s[:n], 0)
	return x
}

// heapDown sifts the element at index i down to its place.
func heapDown[T heapElem[T]](h []T, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].lessThan(h[l]) {
			m = r
		}
		if !h[m].lessThan(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
