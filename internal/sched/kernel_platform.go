package sched

import (
	"fmt"
	"math"

	"lamps/internal/dag"
	"lamps/internal/power"
)

// ErrBadPlatform is returned when the platform is nil or the requested
// processor count exceeds the platform's size.
var ErrBadPlatform = fmt.Errorf("sched: invalid platform or processor count")

// ScheduleIntoPlatform is ScheduleInto generalised to a heterogeneous
// platform: the first nprocs processors of pf are used, times are expressed
// in cycles of the platform's reference class, and a task of w cycles
// dispatched onto a processor of class c occupies pf.ScaledWeight(c, w)
// timeline cycles. Task selection is unchanged — the minimum-priority ready
// task dispatches first — but processor selection becomes class-aware: among
// the classes with an idle processor, the chosen task goes to the one on
// which it *finishes earliest* (ties: the lowest idle processor index
// across classes), so fast cores attract work without starving the index
// order determinism.
//
// On a single-class platform every scale is 1 and the earliest-finish rule
// degenerates to "lowest idle processor index", so the produced schedule is
// byte-identical to ScheduleInto with the same arguments (pinned by
// TestScheduleIntoPlatformHomogeneousParity).
//
// Like ScheduleInto, all scratch comes from the Scheduler and dst's slices
// are reused, so steady-state calls perform no allocations (the per-class
// idle heaps are retained across calls).
func (k *Scheduler) ScheduleIntoPlatform(dst *Schedule, g *dag.Graph, pf *power.Platform, nprocs int, prio, release []int64) error {
	if pf == nil || nprocs <= 0 || nprocs > pf.NumProcs() {
		if nprocs <= 0 {
			return ErrNoProcs
		}
		return fmt.Errorf("%w: %d processors requested of a %d-processor platform",
			ErrBadPlatform, nprocs, numProcsOf(pf))
	}
	n := g.NumTasks()
	if len(prio) != n {
		return fmt.Errorf("%w: got %d priorities for %d tasks", ErrBadPriorities, len(prio), n)
	}
	if release != nil && len(release) != n {
		return fmt.Errorf("%w: got %d releases for %d tasks", ErrBadReleases, len(release), n)
	}
	dst.Graph = g
	dst.NumProcs = nprocs
	dst.Makespan = 0
	dst.Proc = grow(dst.Proc, n)
	dst.Start = grow(dst.Start, n)
	dst.Finish = grow(dst.Finish, n)

	k.indeg = grow(k.indeg, n)
	k.ready = grow(k.ready, 0)
	k.pending = grow(k.pending, 0)
	k.running = grow(k.running, 0)
	k.order = grow(k.order, 0)
	for v := 0; v < n; v++ {
		k.indeg[v] = int32(g.InDegree(v))
		if k.indeg[v] == 0 {
			if release != nil && release[v] > 0 {
				k.pending = append(k.pending, finishEvent{release[v], int32(v)})
			} else {
				k.ready = append(k.ready, readyItem{int32(v), prio[v]})
			}
		}
	}
	heapInit(k.ready)
	heapInit(k.pending)

	// Per-class idle heaps: the outer slice is retained across calls and the
	// inner heaps keep their backing arrays, so the steady state allocates
	// nothing. Only classes assigned within the prefix get processors.
	nc := pf.NumClasses()
	if cap(k.idleByClass) < nc {
		k.idleByClass = make([][]procID, nc)
	}
	k.idleByClass = k.idleByClass[:nc]
	for c := range k.idleByClass {
		k.idleByClass[c] = k.idleByClass[c][:0]
	}
	for p := nprocs - 1; p >= 0; p-- {
		// Reverse insertion plus heapPush keeps each heap ordered lowest
		// index first without a separate init pass.
		heapPush(&k.idleByClass[pf.ClassOf(p)], procID(p))
	}
	idleCount := nprocs

	var t int64
	for {
		for len(k.pending) > 0 && k.pending[0].finish <= t {
			ev := heapPop(&k.pending)
			heapPush(&k.ready, readyItem{ev.task, prio[ev.task]})
		}
		for len(k.ready) > 0 && idleCount > 0 {
			it := heapPop(&k.ready)
			v := int(it.task)
			w := g.Weight(v)
			// Earliest-finish class: scan the classes with an idle processor
			// and keep the one whose scaled duration finishes first, breaking
			// ties by the lowest candidate processor index.
			bestClass := -1
			var bestDur int64
			for c := range k.idleByClass {
				if len(k.idleByClass[c]) == 0 {
					continue
				}
				d := pf.ScaledWeight(c, w)
				if bestClass < 0 || d < bestDur ||
					(d == bestDur && k.idleByClass[c][0] < k.idleByClass[bestClass][0]) {
					bestClass, bestDur = c, d
				}
			}
			p := heapPop(&k.idleByClass[bestClass])
			idleCount--
			finish := t + bestDur
			dst.Proc[v] = int32(p)
			dst.Start[v] = t
			dst.Finish[v] = finish
			if finish > dst.Makespan {
				dst.Makespan = finish
			}
			k.order = append(k.order, it.task)
			heapPush(&k.running, finishEvent{finish, it.task})
		}
		if len(k.running) == 0 && len(k.pending) == 0 {
			break
		}
		next := int64(math.MaxInt64)
		if len(k.running) > 0 {
			next = k.running[0].finish
		}
		if len(k.pending) > 0 && k.pending[0].finish < next {
			next = k.pending[0].finish
		}
		t = next
		for len(k.running) > 0 && k.running[0].finish == t {
			ev := heapPop(&k.running)
			p := int(dst.Proc[ev.task])
			heapPush(&k.idleByClass[pf.ClassOf(p)], procID(p))
			idleCount++
			for _, succ := range g.Succs(int(ev.task)) {
				k.indeg[succ]--
				if k.indeg[succ] == 0 {
					if release != nil && release[succ] > t {
						heapPush(&k.pending, finishEvent{release[succ], succ})
					} else {
						heapPush(&k.ready, readyItem{succ, prio[succ]})
					}
				}
			}
		}
	}
	k.buildByProc(dst)
	return nil
}

// numProcsOf tolerates a nil platform in error formatting.
func numProcsOf(pf *power.Platform) int {
	if pf == nil {
		return 0
	}
	return pf.NumProcs()
}

// ListSchedulePlatform is the convenience form of ScheduleIntoPlatform with
// fresh scratch and a fresh Schedule, mirroring ListScheduleReleases.
func ListSchedulePlatform(g *dag.Graph, pf *power.Platform, nprocs int, prio, release []int64) (*Schedule, error) {
	var k Scheduler
	s := new(Schedule)
	if err := k.ScheduleIntoPlatform(s, g, pf, nprocs, prio, release); err != nil {
		return nil, err
	}
	return s, nil
}
