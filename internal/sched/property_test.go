package sched_test

import (
	"math/rand"
	"testing"

	"lamps/internal/sched"
	"lamps/internal/taskgen"
)

// TestListScheduleProperties exercises ListSchedule on randomly generated
// graphs from every taskgen family and asserts the structural invariants
// every list schedule must satisfy:
//
//   - Validate(): every task placed once, per-processor intervals do not
//     overlap, durations equal weights, precedence holds, makespan is the
//     maximum finish time.
//   - Makespan >= MakespanLowerBound (max of CPL and ceil(W/nprocs)).
//   - Work conservation: total busy time equals the graph's total work.
//   - Work conservation per processor count: a work-conserving scheduler on
//     one processor has makespan exactly W.
//
// The test is an external-package test so it can use taskgen (which depends
// only on dag) without an import cycle.
func TestListScheduleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for iter := 0; iter < 40; iter++ {
		size := 2 + rng.Intn(60)
		family := rng.Intn(4)
		seed := rng.Int63()
		g, err := taskgen.Member(size, family, seed)
		if err != nil {
			t.Fatalf("iter %d: generate(size=%d, family=%d, seed=%d): %v",
				iter, size, family, seed, err)
		}
		for _, nprocs := range []int{1, 2, 1 + rng.Intn(8), g.MaxWidth()} {
			s, err := sched.ListEDF(g, nprocs)
			if err != nil {
				t.Fatalf("%s on %d procs: %v", g.Name(), nprocs, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s on %d procs: invalid schedule: %v", g.Name(), nprocs, err)
			}
			if lb := sched.MakespanLowerBound(g, nprocs); s.Makespan < lb {
				t.Errorf("%s on %d procs: makespan %d below lower bound %d",
					g.Name(), nprocs, s.Makespan, lb)
			}
			var busy int64
			for v := 0; v < g.NumTasks(); v++ {
				busy += s.Finish[v] - s.Start[v]
			}
			if busy != g.TotalWork() {
				t.Errorf("%s on %d procs: busy %d != total work %d",
					g.Name(), nprocs, busy, g.TotalWork())
			}
			if nprocs == 1 && s.Makespan != g.TotalWork() {
				t.Errorf("%s on 1 proc: makespan %d != total work %d (not work-conserving)",
					g.Name(), s.Makespan, g.TotalWork())
			}
		}
	}
}

// TestListScheduleReleasesProperties adds random release times and asserts
// the release constraint on top of the structural invariants, plus
// insensitivity of the invariants to the priority policy (random
// priorities must still yield a valid work-conserving schedule).
func TestListScheduleReleasesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 25; iter++ {
		size := 2 + rng.Intn(40)
		g, err := taskgen.Member(size, rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumTasks()
		release := make([]int64, n)
		prio := make([]int64, n)
		for v := 0; v < n; v++ {
			release[v] = int64(rng.Intn(200))
			prio[v] = rng.Int63n(1000) - 500
		}
		nprocs := 1 + rng.Intn(6)
		s, err := sched.ListScheduleReleases(g, nprocs, prio, release)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("iter %d: invalid schedule: %v", iter, err)
		}
		for v := 0; v < n; v++ {
			if s.Start[v] < release[v] {
				t.Errorf("iter %d: task %d starts at %d before release %d",
					iter, v, s.Start[v], release[v])
			}
		}
		if lb := sched.MakespanLowerBound(g, nprocs); s.Makespan < lb {
			t.Errorf("iter %d: makespan %d below lower bound %d", iter, s.Makespan, lb)
		}
	}
}
