package sched_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
	"lamps/internal/verify"
)

// fig4a rebuilds the paper's running example for the backup tests (the
// in-package helper is invisible from the external test package).
func fig4a(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("fig4a")
	t1 := b.AddLabeledTask(2, "T1")
	t2 := b.AddLabeledTask(6, "T2")
	t3 := b.AddLabeledTask(4, "T3")
	t4 := b.AddLabeledTask(4, "T4")
	t5 := b.AddLabeledTask(2, "T5")
	b.AddEdge(t1, t2)
	b.AddEdge(t1, t3)
	b.AddEdge(t1, t4)
	b.AddEdge(t2, t5)
	b.AddEdge(t3, t5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestPlanBackupsFig4a pins the plan's shape on the paper's running
// example: every backup avoids its primary's processor, starts at or after
// the detection point, and the whole plan passes the independent verifier.
func TestPlanBackupsFig4a(t *testing.T) {
	g := fig4a(t)
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
	if err != nil {
		t.Fatalf("PlanBackups: %v", err)
	}
	if err := verify.FaultPlan(g, s, plan, verify.FaultPlanOptions{Policy: plan.Policy}); err != nil {
		t.Fatalf("FaultPlan rejects the plan: %v", err)
	}
	for v := 0; v < g.NumTasks(); v++ {
		if plan.Proc[v] == s.Proc[v] {
			t.Errorf("task %d backup on its primary's processor %d", v, s.Proc[v])
		}
		if plan.Start[v] < s.Finish[v] {
			t.Errorf("task %d backup at %d before primary finish %d", v, plan.Start[v], s.Finish[v])
		}
	}
	if plan.RecoveryMakespan < s.Makespan {
		t.Errorf("recovery makespan %d below primary makespan %d", plan.RecoveryMakespan, s.Makespan)
	}
	if got, want := plan.ReservedCycles(), g.TotalWork(); got != want {
		t.Errorf("reserved cycles = %d, want the graph's total work %d on identical processors", got, want)
	}
}

// TestPlanBackupsSingleProcessor asserts the infeasibility signal: with one
// processor there is nowhere to put any backup.
func TestPlanBackupsSingleProcessor(t *testing.T) {
	g := fig4a(t)
	s, err := sched.ListEDF(g, 1)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	if _, err := sched.PlanBackups(s, nil, sched.BackupAnywhere); !errors.Is(err, sched.ErrBackupInfeasible) {
		t.Errorf("PlanBackups on 1 processor = %v, want ErrBackupInfeasible", err)
	}
}

// TestPlanBackupsUnknownPolicy asserts policy validation; the empty policy
// must resolve to backup-anywhere rather than erroring.
func TestPlanBackupsUnknownPolicy(t *testing.T) {
	g := fig4a(t)
	s, err := sched.ListEDF(g, 2)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	if _, err := sched.PlanBackups(s, nil, "teleport"); err == nil {
		t.Error("PlanBackups accepted an unknown policy")
	}
	plan, err := sched.PlanBackups(s, nil, "")
	if err != nil {
		t.Fatalf("PlanBackups with empty policy: %v", err)
	}
	if plan.Policy != sched.BackupAnywhere {
		t.Errorf("empty policy resolved to %q, want %q", plan.Policy, sched.BackupAnywhere)
	}
}

// TestPlanBackupsPolicyRestriction pins the primary-HP/backup-LP rule on
// the heterogeneous test platform: it has three LP processors, so a
// non-reference processor other than the primary's always exists and every
// backup must land outside the reference class.
func TestPlanBackupsPolicyRestriction(t *testing.T) {
	pf := testPlatform(t)
	g := fig4a(t)
	k := sched.Scheduler{}
	var s sched.Schedule
	if err := k.ScheduleIntoPlatform(&s, g, pf, pf.NumProcs(), sched.LPTPriorities(g), nil); err != nil {
		t.Fatalf("ScheduleIntoPlatform: %v", err)
	}
	plan, err := sched.PlanBackups(&s, pf, sched.PrimaryHPBackupLP)
	if err != nil {
		t.Fatalf("PlanBackups: %v", err)
	}
	ref := pf.RefClass()
	for v := range plan.Proc {
		if pf.ClassOf(int(plan.Proc[v])) == ref {
			t.Errorf("task %d backup on reference-class processor %d under %q", v, plan.Proc[v], plan.Policy)
		}
	}
	if err := verify.FaultPlan(g, &s, plan, verify.FaultPlanOptions{Platform: pf, Policy: plan.Policy}); err != nil {
		t.Fatalf("FaultPlan rejects the plan: %v", err)
	}
}

// TestPlanBackupsProperty sweeps random graphs × processor counts × both
// policies, homogeneous and heterogeneous, and requires every plan to pass
// the independent verifier. The same BackupPlanner is reused throughout and
// its plans compared against fresh ones, pinning the scratch-reuse
// determinism the engine relies on.
func TestPlanBackupsProperty(t *testing.T) {
	pf := testPlatform(t)
	rng := rand.New(rand.NewSource(20260809))
	var reused sched.BackupPlanner
	for iter := 0; iter < 60; iter++ {
		size := 2 + rng.Intn(40)
		g, err := taskgen.Member(size, rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatalf("iter %d: taskgen: %v", iter, err)
		}
		policy := sched.BackupAnywhere
		if iter%2 == 1 {
			policy = sched.PrimaryHPBackupLP
		}
		var s *sched.Schedule
		var plat *power.Platform
		if iter%3 == 0 {
			plat = pf
			var ps sched.Schedule
			k := sched.Scheduler{}
			if err := k.ScheduleIntoPlatform(&ps, g, pf, pf.NumProcs(), sched.LPTPriorities(g), nil); err != nil {
				t.Fatalf("iter %d: ScheduleIntoPlatform: %v", iter, err)
			}
			s = &ps
		} else {
			nprocs := 2 + rng.Intn(5)
			if s, err = sched.ListEDF(g, nprocs); err != nil {
				t.Fatalf("iter %d: ListEDF: %v", iter, err)
			}
		}
		plan, err := reused.Plan(s, plat, policy)
		if err != nil {
			t.Fatalf("iter %d: Plan: %v", iter, err)
		}
		if err := verify.FaultPlan(g, s, plan, verify.FaultPlanOptions{Platform: plat, Policy: policy}); err != nil {
			t.Fatalf("iter %d (size %d, policy %s): %v", iter, size, policy, err)
		}
		fresh, err := sched.PlanBackups(s, plat, policy)
		if err != nil {
			t.Fatalf("iter %d: PlanBackups: %v", iter, err)
		}
		if !reflect.DeepEqual(plan, fresh) {
			t.Fatalf("iter %d: reused planner diverges from a fresh plan", iter)
		}
	}
}

// TestBackupPlanEmployedWith pins the processor-count accounting: a
// processor holding only backup slots still counts as employed.
func TestBackupPlanEmployedWith(t *testing.T) {
	b := dag.NewBuilder("chain")
	u := b.AddTask(4)
	v := b.AddTask(4)
	b.AddEdge(u, v)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// A two-task chain packs onto one processor; every backup must go to
	// the other, primary-idle one.
	s, err := sched.ListEDF(g, 2)
	if err != nil {
		t.Fatalf("ListEDF: %v", err)
	}
	if s.ProcsUsed() != 1 {
		t.Fatalf("ProcsUsed = %d, want 1 for a chain", s.ProcsUsed())
	}
	plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
	if err != nil {
		t.Fatalf("PlanBackups: %v", err)
	}
	if got := plan.EmployedWith(s); got != 2 {
		t.Errorf("EmployedWith = %d, want 2: the backup-only processor must stay counted", got)
	}
}
