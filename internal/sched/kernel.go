package sched

import (
	"fmt"
	"math"

	"lamps/internal/dag"
)

// Scheduler is a reusable scratch space for list scheduling. The zero value
// is ready to use; after the first call every buffer is retained, so
// steady-state ScheduleInto performs no allocations at all (asserted by
// TestScheduleIntoSteadyStateZeroAlloc and enforced in CI). A Scheduler is
// not safe for concurrent use; pool instances across goroutines (the core
// engine keeps them in a sync.Pool).
type Scheduler struct {
	indeg   []int32
	ready   []readyItem   // min-heap: ready tasks by (priority, task)
	pending []finishEvent // min-heap: released-in-the-future tasks by (release, task)
	running []finishEvent // min-heap: running tasks by (finish, task)
	idle    []procID      // min-heap: idle processor indices
	order   []int32       // tasks in dispatch order, for the byProc counting sort
	cursor  []int32       // per-processor write cursor of the counting sort

	// idleByClass holds one idle-processor min-heap per platform core class
	// for ScheduleIntoPlatform; unused by the homogeneous ScheduleInto. The
	// outer slice and every inner heap are retained across calls.
	idleByClass [][]procID
}

// procID is a processor index with the heap ordering "lowest index first",
// which makes dispatch deterministic.
type procID int32

func (a procID) lessThan(b procID) bool { return a < b }

// readyItem is an entry of the ready heap.
type readyItem struct {
	task int32
	prio int64
}

func (a readyItem) lessThan(b readyItem) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.task < b.task
}

// finishEvent is a running task completion (or a pending release) in an
// event queue.
type finishEvent struct {
	finish int64
	task   int32
}

func (a finishEvent) lessThan(b finishEvent) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	return a.task < b.task
}

// grow returns s resized to n elements, reusing the backing array when the
// capacity suffices. Contents are unspecified; callers overwrite every slot.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// ScheduleInto runs event-driven, work-conserving list scheduling exactly
// like ListScheduleReleases, but writes the result into dst and draws every
// temporary from the Scheduler's reusable scratch. dst's slices are reused
// when large enough, so a caller that keeps both the Scheduler and the
// Schedule alive across calls schedules with zero allocations per call.
//
// dst must not be nil; its previous contents are fully overwritten. The
// produced schedule — placement, times, makespan and per-processor task
// lists — is byte-identical to the one ListScheduleReleases returns for the
// same inputs.
func (k *Scheduler) ScheduleInto(dst *Schedule, g *dag.Graph, nprocs int, prio, release []int64) error {
	if nprocs <= 0 {
		return ErrNoProcs
	}
	n := g.NumTasks()
	if len(prio) != n {
		return fmt.Errorf("%w: got %d priorities for %d tasks", ErrBadPriorities, len(prio), n)
	}
	if release != nil && len(release) != n {
		return fmt.Errorf("%w: got %d releases for %d tasks", ErrBadReleases, len(release), n)
	}
	dst.Graph = g
	dst.NumProcs = nprocs
	dst.Makespan = 0
	dst.Proc = grow(dst.Proc, n)
	dst.Start = grow(dst.Start, n)
	dst.Finish = grow(dst.Finish, n)

	k.indeg = grow(k.indeg, n)
	k.ready = grow(k.ready, 0)
	k.pending = grow(k.pending, 0)
	k.running = grow(k.running, 0)
	k.order = grow(k.order, 0)
	for v := 0; v < n; v++ {
		k.indeg[v] = int32(g.InDegree(v))
		if k.indeg[v] == 0 {
			if release != nil && release[v] > 0 {
				k.pending = append(k.pending, finishEvent{release[v], int32(v)})
			} else {
				k.ready = append(k.ready, readyItem{int32(v), prio[v]})
			}
		}
	}
	heapInit(k.ready)
	heapInit(k.pending)

	k.idle = grow(k.idle, nprocs)
	for p := range k.idle {
		k.idle[p] = procID(p)
	}

	var t int64
	for {
		// Admit every pending task whose release has passed.
		for len(k.pending) > 0 && k.pending[0].finish <= t {
			ev := heapPop(&k.pending)
			heapPush(&k.ready, readyItem{ev.task, prio[ev.task]})
		}
		// Dispatch every ready task for which an idle processor exists.
		for len(k.ready) > 0 && len(k.idle) > 0 {
			it := heapPop(&k.ready)
			p := heapPop(&k.idle)
			v := int(it.task)
			finish := t + g.Weight(v)
			dst.Proc[v] = int32(p)
			dst.Start[v] = t
			dst.Finish[v] = finish
			if finish > dst.Makespan {
				dst.Makespan = finish
			}
			k.order = append(k.order, it.task)
			heapPush(&k.running, finishEvent{finish, it.task})
		}
		if len(k.running) == 0 && len(k.pending) == 0 {
			break // nothing running, nothing future: done
		}
		// Advance to the next event: a completion or a release.
		next := int64(math.MaxInt64)
		if len(k.running) > 0 {
			next = k.running[0].finish
		}
		if len(k.pending) > 0 && k.pending[0].finish < next {
			next = k.pending[0].finish
		}
		t = next
		for len(k.running) > 0 && k.running[0].finish == t {
			ev := heapPop(&k.running)
			heapPush(&k.idle, procID(dst.Proc[ev.task]))
			for _, succ := range g.Succs(int(ev.task)) {
				k.indeg[succ]--
				if k.indeg[succ] == 0 {
					if release != nil && release[succ] > t {
						heapPush(&k.pending, finishEvent{release[succ], succ})
					} else {
						heapPush(&k.ready, readyItem{succ, prio[succ]})
					}
				}
			}
		}
	}
	k.buildByProc(dst)
	return nil
}

// buildByProc fills dst's flat per-processor task lists by a stable counting
// sort of the dispatch order over the processor index. Within one processor
// start times strictly increase along the dispatch order (a processor runs
// one task at a time and weights are positive), so the stable scatter yields
// the lists sorted by start time without any comparison sort.
func (k *Scheduler) buildByProc(dst *Schedule) {
	nprocs := dst.NumProcs
	dst.byProcOff = grow(dst.byProcOff, nprocs+1)
	for p := 0; p <= nprocs; p++ {
		dst.byProcOff[p] = 0
	}
	for _, v := range k.order {
		dst.byProcOff[dst.Proc[v]+1]++
	}
	for p := 0; p < nprocs; p++ {
		dst.byProcOff[p+1] += dst.byProcOff[p]
	}
	k.cursor = grow(k.cursor, nprocs)
	copy(k.cursor, dst.byProcOff[:nprocs])
	dst.byProcFlat = grow(dst.byProcFlat, len(k.order))
	for _, v := range k.order {
		p := dst.Proc[v]
		dst.byProcFlat[k.cursor[p]] = v
		k.cursor[p]++
	}
}
