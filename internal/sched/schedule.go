// Package sched implements static multiprocessor list scheduling for
// weighted task DAGs, in particular list scheduling with earliest deadline
// first (LS-EDF) as used by all heuristics in de Langen & Juurlink
// (Section 4). Schedules are expressed in cycles at the maximum frequency;
// running the machine at a scaled frequency stretches every interval
// uniformly, which preserves precedence and processor assignment.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"lamps/internal/dag"
)

// Errors returned by the scheduler.
var (
	ErrNoProcs      = errors.New("sched: number of processors must be positive")
	ErrBadDeadlines = errors.New("sched: per-task deadline slice has wrong length")
	// ErrBadPriorities and ErrBadReleases are the analogous length errors for
	// the priority and release slices of ListSchedule/ListScheduleReleases.
	// They are distinct sentinels (not wrappers of ErrBadDeadlines) so callers
	// mapping scheduler errors onto API responses can tell the three inputs
	// apart unambiguously.
	ErrBadPriorities = errors.New("sched: per-task priority slice has wrong length")
	ErrBadReleases   = errors.New("sched: per-task release slice has wrong length")
)

// Schedule is the result of statically mapping a task graph onto a fixed
// number of identical processors. All times are in cycles at the maximum
// frequency.
type Schedule struct {
	Graph    *dag.Graph
	NumProcs int

	Proc   []int32 // task -> processor index
	Start  []int64 // task -> start time [cycles]
	Finish []int64 // task -> finish time [cycles]

	Makespan int64

	// Per-processor task lists in CSR layout: processor p runs
	// byProcFlat[byProcOff[p]:byProcOff[p+1]] in increasing start order. The
	// flat layout lets the scheduling kernel rebuild the lists in place with
	// a counting sort instead of per-processor allocations.
	byProcFlat []int32
	byProcOff  []int32 // len NumProcs+1
}

// TasksOn returns the tasks assigned to processor p in execution order. The
// returned slice is owned by the schedule and must not be modified.
func (s *Schedule) TasksOn(p int) []int32 {
	return s.byProcFlat[s.byProcOff[p]:s.byProcOff[p+1]]
}

// ProcsUsed returns the number of processors that execute at least one task.
// List scheduling may leave processors empty when the graph has less
// parallelism than the machine has processors.
func (s *Schedule) ProcsUsed() int {
	n := 0
	for p := 0; p < s.NumProcs; p++ {
		if s.byProcOff[p+1] > s.byProcOff[p] {
			n++
		}
	}
	return n
}

// CloneCompact returns a deep copy of the schedule packed into the minimum
// number of allocations: one shell, one int64 block shared by Start/Finish,
// and one int32 block shared by Proc/byProcFlat/byProcOff. Engines that
// recycle schedule scratch through a pool use it to detach the winning
// candidate before the scratch is reused; the full-slice-expression caps keep
// an append on any sub-slice from silently overwriting its neighbours.
func (s *Schedule) CloneCompact() *Schedule {
	n := len(s.Proc)
	c := &Schedule{
		Graph:    s.Graph,
		NumProcs: s.NumProcs,
		Makespan: s.Makespan,
	}
	t64 := make([]int64, 2*n)
	c.Start = t64[:n:n]
	c.Finish = t64[n:]
	copy(c.Start, s.Start)
	copy(c.Finish, s.Finish)
	t32 := make([]int32, 2*n+len(s.byProcOff))
	c.Proc = t32[:n:n]
	c.byProcFlat = t32[n : 2*n : 2*n]
	c.byProcOff = t32[2*n:]
	copy(c.Proc, s.Proc)
	copy(c.byProcFlat, s.byProcFlat)
	copy(c.byProcOff, s.byProcOff)
	return c
}

// Gap is a contiguous idle interval on one processor, in cycles. For
// employed processors the intervals before the first task, between
// consecutive tasks, and after the last task up to the schedule horizon are
// all gaps.
type Gap struct {
	Proc       int
	Begin, End int64 // [Begin, End) in cycles
}

// Length returns the gap duration in cycles.
func (g Gap) Length() int64 { return g.End - g.Begin }

// Gaps returns every idle interval of every *employed* processor, assuming
// the machine must stay available until horizon (typically the deadline
// expressed in cycles at the schedule's frequency). Processors that execute
// no task at all are considered off and contribute no gaps. Zero-length
// intervals are omitted.
func (s *Schedule) Gaps(horizon int64) []Gap {
	var gaps []Gap
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		if len(tasks) == 0 {
			continue
		}
		cursor := int64(0)
		for _, v := range tasks {
			if s.Start[v] > cursor {
				gaps = append(gaps, Gap{p, cursor, s.Start[v]})
			}
			cursor = s.Finish[v]
		}
		if horizon > cursor {
			gaps = append(gaps, Gap{p, cursor, horizon})
		}
	}
	return gaps
}

// BusyCycles returns the total number of executed cycles, which equals the
// graph's total work.
func (s *Schedule) BusyCycles() int64 { return s.Graph.TotalWork() }

// IdleCycles returns the total idle cycles across employed processors up to
// the given horizon.
func (s *Schedule) IdleCycles(horizon int64) int64 {
	var idle int64
	for _, g := range s.Gaps(horizon) {
		idle += g.Length()
	}
	return idle
}

// Validate checks the structural invariants of the schedule: every task is
// placed exactly once, intervals on one processor do not overlap, durations
// equal task weights, all precedence constraints hold, and Makespan is the
// maximum finish time. It is used by tests and property checks.
func (s *Schedule) Validate() error {
	g := s.Graph
	n := g.NumTasks()
	if len(s.Proc) != n || len(s.Start) != n || len(s.Finish) != n {
		return fmt.Errorf("sched: schedule arrays have wrong length")
	}
	var maxFinish int64
	for v := 0; v < n; v++ {
		if s.Proc[v] < 0 || int(s.Proc[v]) >= s.NumProcs {
			return fmt.Errorf("sched: task %d on invalid processor %d", v, s.Proc[v])
		}
		if s.Start[v] < 0 {
			return fmt.Errorf("sched: task %d starts at negative time %d", v, s.Start[v])
		}
		if s.Finish[v]-s.Start[v] != g.Weight(v) {
			return fmt.Errorf("sched: task %d duration %d != weight %d",
				v, s.Finish[v]-s.Start[v], g.Weight(v))
		}
		if s.Finish[v] > maxFinish {
			maxFinish = s.Finish[v]
		}
		for _, pred := range g.Preds(v) {
			if s.Start[v] < s.Finish[pred] {
				return fmt.Errorf("sched: task %d starts at %d before pred %d finishes at %d",
					v, s.Start[v], pred, s.Finish[pred])
			}
		}
	}
	if maxFinish != s.Makespan {
		return fmt.Errorf("sched: makespan %d != max finish %d", s.Makespan, maxFinish)
	}
	// Per-processor non-overlap and ordering.
	if len(s.byProcOff) != s.NumProcs+1 || len(s.byProcFlat) != n {
		return fmt.Errorf("sched: per-processor task lists have wrong length")
	}
	seen := make([]bool, n)
	total := 0
	for p := 0; p < s.NumProcs; p++ {
		var cursor int64
		for _, v := range s.TasksOn(p) {
			if seen[v] {
				return fmt.Errorf("sched: task %d scheduled twice", v)
			}
			seen[v] = true
			total++
			if int(s.Proc[v]) != p {
				return fmt.Errorf("sched: task %d listed on proc %d but assigned to %d", v, p, s.Proc[v])
			}
			if s.Start[v] < cursor {
				return fmt.Errorf("sched: overlap on processor %d at task %d", p, v)
			}
			cursor = s.Finish[v]
		}
	}
	if total != n {
		return fmt.Errorf("sched: %d of %d tasks placed", total, n)
	}
	return nil
}

// String renders a compact textual Gantt-like description, useful in
// examples and debugging.
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule of %q on %d processor(s), makespan %d cycles\n",
		s.Graph.Name(), s.NumProcs, s.Makespan)
	for p := 0; p < s.NumProcs; p++ {
		out += fmt.Sprintf("  P%d:", p)
		for _, v := range s.TasksOn(p) {
			label := s.Graph.Label(int(v))
			if label == "" {
				label = fmt.Sprintf("T%d", v)
			}
			out += fmt.Sprintf(" %s[%d,%d)", label, s.Start[v], s.Finish[v])
		}
		out += "\n"
	}
	return out
}

// rebuildByProc rebuilds the flat per-processor task lists from Proc/Start:
// a counting sort over the processor index followed by a per-processor sort
// by start time. The scheduling kernel never calls this — it produces the
// lists directly from its dispatch order — but deserialisation does, because
// JSON documents may list tasks in any order.
func (s *Schedule) rebuildByProc() {
	s.byProcOff = make([]int32, s.NumProcs+1)
	for _, p := range s.Proc {
		s.byProcOff[p+1]++
	}
	for p := 0; p < s.NumProcs; p++ {
		s.byProcOff[p+1] += s.byProcOff[p]
	}
	s.byProcFlat = make([]int32, len(s.Proc))
	cursor := append([]int32(nil), s.byProcOff[:s.NumProcs]...)
	for v := range s.Proc {
		p := s.Proc[v]
		s.byProcFlat[cursor[p]] = int32(v)
		cursor[p]++
	}
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		sort.Slice(tasks, func(i, j int) bool { return s.Start[tasks[i]] < s.Start[tasks[j]] })
	}
}
