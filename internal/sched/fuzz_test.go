package sched

import (
	"strings"
	"testing"

	"lamps/internal/taskgen"
)

// FuzzReadJSON feeds arbitrary bytes to the schedule deserialiser: it must
// never panic, and every accepted document must pass full validation.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"name":"x","num_procs":1,"makespan_cycles":5,"tasks":[{"id":0,"weight_cycles":5,"proc":0,"start_cycles":0,"finish_cycles":5}]}`)
	f.Add(`{"name":"","num_procs":2,"makespan_cycles":0,"tasks":[]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"tasks":[{"id":0,"preds":[0]}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted schedule fails validation: %v", verr)
		}
	})
}

// FuzzListScheduleReleases drives the scheduling kernel with arbitrary
// release times. The seed corpus deliberately includes non-empty release
// data so the pending-heap admission path — tasks whose predecessors have
// finished but whose release time has not arrived — is exercised from the
// very first run, not only after the fuzzer mutates its way there. For every
// input the schedule must validate, every task must start at or after its
// release time, and a reused Scheduler scratch must reproduce the one-shot
// result exactly.
func FuzzListScheduleReleases(f *testing.F) {
	f.Add(uint16(1), uint8(0), int64(1), uint8(1), []byte(nil))
	f.Add(uint16(12), uint8(0), int64(7), uint8(3), []byte{5, 0, 200, 17, 42})
	f.Add(uint16(30), uint8(1), int64(99), uint8(2), []byte{255, 1, 1, 90})
	f.Add(uint16(50), uint8(2), int64(1234), uint8(4), []byte{10, 10, 10, 10, 10, 10, 10, 10})
	f.Add(uint16(25), uint8(3), int64(-5), uint8(8), []byte{0, 128, 3, 77, 200, 1})
	f.Fuzz(func(t *testing.T, rawSize uint16, rawVariant uint8, seed int64, rawProcs uint8, relData []byte) {
		size := 1 + int(rawSize)%100
		g, err := taskgen.Member(size, int(rawVariant)%4, seed)
		if err != nil {
			return // generator rejects some (size, variant) combinations
		}
		n := g.NumTasks()
		nprocs := 1 + int(rawProcs)%16
		prio := EDFPriorities(g, 0)
		var release []int64
		if len(relData) > 0 {
			release = make([]int64, n)
			for v := range release {
				release[v] = int64(relData[v%len(relData)]) * 31
			}
		}
		s, err := ListScheduleReleases(g, nprocs, prio, release)
		if err != nil {
			t.Fatalf("ListScheduleReleases: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("schedule fails validation: %v", err)
		}
		for v := 0; v < n; v++ {
			if release != nil && s.Start[v] < release[v] {
				t.Fatalf("task %d starts at %d before its release %d", v, s.Start[v], release[v])
			}
		}
		// A reused kernel must be deterministic and identical to the one-shot
		// wrapper, including the per-processor dispatch lists.
		var k Scheduler
		var r Schedule
		for round := 0; round < 2; round++ {
			if err := k.ScheduleInto(&r, g, nprocs, prio, release); err != nil {
				t.Fatalf("ScheduleInto round %d: %v", round, err)
			}
			if r.Makespan != s.Makespan {
				t.Fatalf("round %d: makespan %d != %d", round, r.Makespan, s.Makespan)
			}
			for v := 0; v < n; v++ {
				if r.Proc[v] != s.Proc[v] || r.Start[v] != s.Start[v] || r.Finish[v] != s.Finish[v] {
					t.Fatalf("round %d: task %d diverges from one-shot result", round, v)
				}
			}
			for p := 0; p < nprocs; p++ {
				a, b := r.TasksOn(p), s.TasksOn(p)
				if len(a) != len(b) {
					t.Fatalf("round %d: proc %d list length diverges", round, p)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("round %d: proc %d slot %d diverges", round, p, i)
					}
				}
			}
		}
	})
}
