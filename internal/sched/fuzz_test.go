package sched

import (
	"strings"
	"testing"
)

// FuzzReadJSON feeds arbitrary bytes to the schedule deserialiser: it must
// never panic, and every accepted document must pass full validation.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"name":"x","num_procs":1,"makespan_cycles":5,"tasks":[{"id":0,"weight_cycles":5,"proc":0,"start_cycles":0,"finish_cycles":5}]}`)
	f.Add(`{"name":"","num_procs":2,"makespan_cycles":0,"tasks":[]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"tasks":[{"id":0,"preds":[0]}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted schedule fails validation: %v", verr)
		}
	})
}
