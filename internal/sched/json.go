package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"lamps/internal/dag"
)

// scheduleJSON is the serialised form of a Schedule. Graph structure is
// embedded so the file is self-contained and re-validatable.
type scheduleJSON struct {
	Name     string     `json:"name"`
	NumProcs int        `json:"num_procs"`
	Makespan int64      `json:"makespan_cycles"`
	Tasks    []taskJSON `json:"tasks"`
}

type taskJSON struct {
	ID     int     `json:"id"`
	Label  string  `json:"label,omitempty"`
	Weight int64   `json:"weight_cycles"`
	Preds  []int32 `json:"preds,omitempty"`
	Proc   int32   `json:"proc"`
	Start  int64   `json:"start_cycles"`
	Finish int64   `json:"finish_cycles"`
}

// WriteJSON serialises the schedule (including the graph) so external tools
// can render or verify it; ReadJSON restores and re-validates it.
func (s *Schedule) WriteJSON(w io.Writer) error {
	doc := scheduleJSON{
		Name:     s.Graph.Name(),
		NumProcs: s.NumProcs,
		Makespan: s.Makespan,
	}
	for v := 0; v < s.Graph.NumTasks(); v++ {
		doc.Tasks = append(doc.Tasks, taskJSON{
			ID:     v,
			Label:  s.Graph.Label(v),
			Weight: s.Graph.Weight(v),
			Preds:  s.Graph.Preds(v),
			Proc:   s.Proc[v],
			Start:  s.Start[v],
			Finish: s.Finish[v],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON restores a schedule written by WriteJSON, rebuilding the graph
// and validating every invariant (placement, precedence, non-overlap,
// makespan) before returning.
func ReadJSON(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc scheduleJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("sched: decoding schedule: %w", err)
	}
	b := dag.NewBuilder(doc.Name)
	for i, tk := range doc.Tasks {
		if tk.ID != i {
			return nil, fmt.Errorf("sched: task ids not dense at %d", i)
		}
		b.AddLabeledTask(tk.Weight, tk.Label)
	}
	for _, tk := range doc.Tasks {
		for _, p := range tk.Preds {
			b.AddEdge(int(p), tk.ID)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("sched: rebuilding graph: %w", err)
	}
	s := &Schedule{
		Graph:    g,
		NumProcs: doc.NumProcs,
		Proc:     make([]int32, len(doc.Tasks)),
		Start:    make([]int64, len(doc.Tasks)),
		Finish:   make([]int64, len(doc.Tasks)),
		Makespan: doc.Makespan,
	}
	for _, tk := range doc.Tasks {
		if tk.Proc < 0 || int(tk.Proc) >= doc.NumProcs {
			return nil, fmt.Errorf("sched: task %d on invalid processor %d of %d", tk.ID, tk.Proc, doc.NumProcs)
		}
		s.Proc[tk.ID] = tk.Proc
		s.Start[tk.ID] = tk.Start
		s.Finish[tk.ID] = tk.Finish
	}
	s.rebuildByProc()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: restored schedule invalid: %w", err)
	}
	return s, nil
}
