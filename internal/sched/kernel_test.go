package sched_test

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
)

// ---------------------------------------------------------------------------
// Pre-kernel reference implementation.
//
// This is the list scheduler exactly as it existed before the
// zero-allocation kernel: three container/heap interface heaps, fresh
// slices per call, per-processor lists sorted with sort.Slice. It is kept
// verbatim (modulo test-local naming) as the oracle for the differential
// parity tests: Scheduler.ScheduleInto must reproduce its output byte for
// byte.
// ---------------------------------------------------------------------------

type refReadyItem struct {
	task int32
	prio int64
}

type refReadyHeap []refReadyItem

func (h refReadyHeap) Len() int { return len(h) }
func (h refReadyHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].task < h[j].task
}
func (h refReadyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refReadyHeap) Push(x any)   { *h = append(*h, x.(refReadyItem)) }
func (h *refReadyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type refEvent struct {
	finish int64
	task   int32
}

type refEventHeap []refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].task < h[j].task
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type refIntHeap []int32

func (h refIntHeap) Len() int           { return len(h) }
func (h refIntHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h refIntHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refIntHeap) Push(x any)        { *h = append(*h, x.(int32)) }
func (h *refIntHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refSchedule is the reference result: the same arrays a Schedule carries
// plus the per-processor lists built the pre-kernel way.
type refSchedule struct {
	proc     []int32
	start    []int64
	finish   []int64
	makespan int64
	byProc   [][]int32
}

func listScheduleReference(g *dag.Graph, nprocs int, prio, release []int64) *refSchedule {
	n := g.NumTasks()
	relOf := func(v int32) int64 {
		if release == nil {
			return 0
		}
		return release[v]
	}
	s := &refSchedule{
		proc:   make([]int32, n),
		start:  make([]int64, n),
		finish: make([]int64, n),
	}
	indeg := make([]int32, n)
	ready := make(refReadyHeap, 0, n)
	var pending refEventHeap
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(v))
		if indeg[v] == 0 {
			if r := relOf(int32(v)); r > 0 {
				pending = append(pending, refEvent{r, int32(v)})
			} else {
				ready = append(ready, refReadyItem{int32(v), prio[v]})
			}
		}
	}
	heap.Init(&ready)
	heap.Init(&pending)
	idle := make(refIntHeap, nprocs)
	for p := range idle {
		idle[p] = int32(p)
	}
	heap.Init(&idle)
	var running refEventHeap
	var t int64
	for {
		for pending.Len() > 0 && pending[0].finish <= t {
			ev := heap.Pop(&pending).(refEvent)
			heap.Push(&ready, refReadyItem{ev.task, prio[ev.task]})
		}
		for ready.Len() > 0 && idle.Len() > 0 {
			it := heap.Pop(&ready).(refReadyItem)
			p := heap.Pop(&idle).(int32)
			v := int(it.task)
			finish := t + g.Weight(v)
			s.proc[v] = p
			s.start[v] = t
			s.finish[v] = finish
			if finish > s.makespan {
				s.makespan = finish
			}
			heap.Push(&running, refEvent{finish, it.task})
		}
		if running.Len() == 0 && pending.Len() == 0 {
			break
		}
		next := int64(math.MaxInt64)
		if running.Len() > 0 {
			next = running[0].finish
		}
		if pending.Len() > 0 && pending[0].finish < next {
			next = pending[0].finish
		}
		t = next
		for running.Len() > 0 && running[0].finish == t {
			ev := heap.Pop(&running).(refEvent)
			heap.Push(&idle, s.proc[ev.task])
			for _, succ := range g.Succs(int(ev.task)) {
				indeg[succ]--
				if indeg[succ] == 0 {
					if r := relOf(succ); r > t {
						heap.Push(&pending, refEvent{r, succ})
					} else {
						heap.Push(&ready, refReadyItem{succ, prio[succ]})
					}
				}
			}
		}
	}
	s.byProc = make([][]int32, nprocs)
	for v := range s.proc {
		p := s.proc[v]
		s.byProc[p] = append(s.byProc[p], int32(v))
	}
	for p := range s.byProc {
		tasks := s.byProc[p]
		sort.Slice(tasks, func(i, j int) bool { return s.start[tasks[i]] < s.start[tasks[j]] })
	}
	return s
}

// requireEqualSchedules fails unless got matches the reference byte for
// byte: placement, times, makespan and every per-processor task list.
func requireEqualSchedules(t *testing.T, ref *refSchedule, got *sched.Schedule, nprocs int) {
	t.Helper()
	if got.Makespan != ref.makespan {
		t.Fatalf("makespan %d != reference %d", got.Makespan, ref.makespan)
	}
	for v := range ref.proc {
		if got.Proc[v] != ref.proc[v] || got.Start[v] != ref.start[v] || got.Finish[v] != ref.finish[v] {
			t.Fatalf("task %d: got (proc %d, [%d,%d)) want (proc %d, [%d,%d))",
				v, got.Proc[v], got.Start[v], got.Finish[v], ref.proc[v], ref.start[v], ref.finish[v])
		}
	}
	for p := 0; p < nprocs; p++ {
		gp := got.TasksOn(p)
		rp := ref.byProc[p]
		if len(gp) != len(rp) {
			t.Fatalf("proc %d: %d tasks != reference %d", p, len(gp), len(rp))
		}
		for i := range rp {
			if gp[i] != rp[i] {
				t.Fatalf("proc %d slot %d: task %d != reference %d", p, i, gp[i], rp[i])
			}
		}
	}
}

// TestScheduleIntoParity is the kernel's differential parity test: on random
// graphs from every generator family — with and without release times, with
// EDF and with adversarial random priorities — the reusable zero-allocation
// kernel must produce schedules byte-identical to the pre-kernel
// container/heap implementation, while one Scheduler and one Schedule are
// reused across every configuration.
func TestScheduleIntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	var k sched.Scheduler
	var reused sched.Schedule
	for iter := 0; iter < 60; iter++ {
		size := 2 + rng.Intn(60)
		g, err := taskgen.Member(size, rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumTasks()
		var prio []int64
		if iter%2 == 0 {
			prio = sched.EDFPriorities(g, 0)
		} else {
			prio = make([]int64, n)
			for v := range prio {
				prio[v] = rng.Int63n(1000) - 500
			}
		}
		var release []int64
		if iter%3 != 0 {
			release = make([]int64, n)
			for v := range release {
				release[v] = int64(rng.Intn(300))
			}
		}
		nprocs := 1 + rng.Intn(8)

		ref := listScheduleReference(g, nprocs, prio, release)
		if err := k.ScheduleInto(&reused, g, nprocs, prio, release); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := reused.Validate(); err != nil {
			t.Fatalf("iter %d: kernel schedule invalid: %v", iter, err)
		}
		requireEqualSchedules(t, ref, &reused, nprocs)

		// The one-shot wrapper must agree too (it shares the kernel, but a
		// fresh scratch must not behave differently from a reused one).
		fresh, err := sched.ListScheduleReleases(g, nprocs, prio, release)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		requireEqualSchedules(t, ref, fresh, nprocs)
	}
}

// TestScheduleIntoSteadyStateZeroAlloc is the allocation gate the CI
// benchmark job enforces: once the Scheduler scratch and the destination
// Schedule are warm, ScheduleInto must not allocate at all — with releases
// (pending-heap path included) and without.
func TestScheduleIntoSteadyStateZeroAlloc(t *testing.T) {
	g, err := taskgen.Member(300, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	prio := sched.EDFPriorities(g, 0)
	release := make([]int64, g.NumTasks())
	for v := range release {
		release[v] = int64((v * 37) % 5000)
	}
	var k sched.Scheduler
	var s sched.Schedule
	for _, rel := range [][]int64{nil, release} {
		rel := rel
		if err := k.ScheduleInto(&s, g, 5, prio, rel); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := k.ScheduleInto(&s, g, 5, prio, rel); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("steady-state ScheduleInto allocates %v allocs/op (release=%v)", allocs, rel != nil)
		}
	}
}

// BenchmarkListScheduleFreshScratch is the "before" shape: every call pays
// for a new Scheduler scratch and a new Schedule.
func BenchmarkListScheduleFreshScratch(b *testing.B) {
	g, err := taskgen.Member(500, 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	prio := sched.EDFPriorities(g, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ListScheduleReleases(g, 8, prio, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleIntoReused is the "after" shape: a warm kernel writing
// into a warm Schedule — the steady state the CI allocation gate pins at
// 0 allocs/op.
func BenchmarkScheduleIntoReused(b *testing.B) {
	g, err := taskgen.Member(500, 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	prio := sched.EDFPriorities(g, 0)
	var k sched.Scheduler
	var s sched.Schedule
	if err := k.ScheduleInto(&s, g, 8, prio, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.ScheduleInto(&s, g, 8, prio, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGapsTileHorizon is the gap-accounting property test: for every
// employed processor, its busy intervals and its gaps must exactly tile
// [0, horizon) — contiguous, non-overlapping, nothing missing — for
// horizons at and beyond the makespan. Unemployed processors must
// contribute no gaps at all.
func TestGapsTileHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		g, err := taskgen.Member(2+rng.Intn(50), rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		nprocs := 1 + rng.Intn(6)
		s, err := sched.ListEDF(g, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		for _, horizon := range []int64{s.Makespan, s.Makespan + 1 + rng.Int63n(1_000_000)} {
			type interval struct {
				begin, end int64
			}
			perProc := make(map[int][]interval)
			for p := 0; p < nprocs; p++ {
				for _, v := range s.TasksOn(p) {
					perProc[p] = append(perProc[p], interval{s.Start[v], s.Finish[v]})
				}
			}
			for _, gap := range s.Gaps(horizon) {
				if gap.Length() <= 0 {
					t.Fatalf("iter %d: zero or negative gap %+v", iter, gap)
				}
				if len(perProc[gap.Proc]) == 0 {
					t.Fatalf("iter %d: gap on unemployed processor %d", iter, gap.Proc)
				}
				perProc[gap.Proc] = append(perProc[gap.Proc], interval{gap.Begin, gap.End})
			}
			for p, ivs := range perProc {
				sort.Slice(ivs, func(i, j int) bool { return ivs[i].begin < ivs[j].begin })
				cursor := int64(0)
				for _, iv := range ivs {
					if iv.begin != cursor {
						t.Fatalf("iter %d proc %d: tiling broken at %d (next interval starts %d, horizon %d)",
							iter, p, cursor, iv.begin, horizon)
					}
					cursor = iv.end
				}
				if cursor != horizon {
					t.Fatalf("iter %d proc %d: tiling ends at %d, horizon %d", iter, p, cursor, horizon)
				}
			}
		}
	}
}
