package sched_test

import (
	"errors"
	"math/rand"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
	"lamps/internal/verify"
)

// singleTask builds a one-task graph of the given weight.
func singleTask(t *testing.T, w int64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("single")
	b.AddTask(w)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testPlatform returns a heterogeneous LP×3 + HP×2 platform: the LP class is
// the 70 nm model capped at a lower voltage, so its fmax — and therefore its
// timeline slot stretch — differs from the HP class.
func testPlatform(t testing.TB) *power.Platform {
	t.Helper()
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestScheduleIntoPlatformHomogeneousParity pins the tentpole's
// behaviour-preservation contract at the kernel layer: on a single-class
// platform, ScheduleIntoPlatform must reproduce ScheduleInto byte for byte —
// same placement, same times, same per-processor lists — across random
// graphs, priorities and release times.
func TestScheduleIntoPlatformHomogeneousParity(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(20260809))
	var k, kp sched.Scheduler
	var legacy, plat sched.Schedule
	for iter := 0; iter < 40; iter++ {
		size := 2 + rng.Intn(60)
		g, err := taskgen.Member(size, rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumTasks()
		var prio []int64
		if iter%2 == 0 {
			prio = sched.EDFPriorities(g, 0)
		} else {
			prio = make([]int64, n)
			for v := range prio {
				prio[v] = rng.Int63n(1000) - 500
			}
		}
		var release []int64
		if iter%3 == 0 {
			release = make([]int64, n)
			for v := range release {
				release[v] = int64(rng.Intn(300))
			}
		}
		nprocs := 1 + rng.Intn(8)
		pf, err := power.Homogeneous(nprocs, m)
		if err != nil {
			t.Fatal(err)
		}

		if err := k.ScheduleInto(&legacy, g, nprocs, prio, release); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := kp.ScheduleIntoPlatform(&plat, g, pf, nprocs, prio, release); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if plat.Makespan != legacy.Makespan {
			t.Fatalf("iter %d: makespan %d != %d", iter, plat.Makespan, legacy.Makespan)
		}
		for v := 0; v < n; v++ {
			if plat.Proc[v] != legacy.Proc[v] || plat.Start[v] != legacy.Start[v] || plat.Finish[v] != legacy.Finish[v] {
				t.Fatalf("iter %d task %d: platform (proc %d, [%d,%d)) != legacy (proc %d, [%d,%d))",
					iter, v, plat.Proc[v], plat.Start[v], plat.Finish[v],
					legacy.Proc[v], legacy.Start[v], legacy.Finish[v])
			}
		}
		for p := 0; p < nprocs; p++ {
			gp, lp := plat.TasksOn(p), legacy.TasksOn(p)
			if len(gp) != len(lp) {
				t.Fatalf("iter %d proc %d: %d tasks != %d", iter, p, len(gp), len(lp))
			}
			for i := range lp {
				if gp[i] != lp[i] {
					t.Fatalf("iter %d proc %d slot %d: %d != %d", iter, p, i, gp[i], lp[i])
				}
			}
		}
	}
}

// TestScheduleIntoPlatformHeterogeneousLegal runs the kernel on a genuinely
// heterogeneous platform across random graphs and checks every schedule
// against the independent platform verifier: precedence, slot exclusivity
// and the scaled per-class durations.
func TestScheduleIntoPlatformHeterogeneousLegal(t *testing.T) {
	pf := testPlatform(t)
	rng := rand.New(rand.NewSource(7))
	var k sched.Scheduler
	var s sched.Schedule
	for iter := 0; iter < 30; iter++ {
		g, err := taskgen.Member(2+rng.Intn(80), rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		prio := sched.EDFPriorities(g, 0)
		nprocs := 1 + rng.Intn(pf.NumProcs())
		if err := k.ScheduleIntoPlatform(&s, g, pf, nprocs, prio, nil); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := verify.PlatformSchedule(g, pf, &s); err != nil {
			t.Fatalf("iter %d: verifier rejects kernel schedule: %v", iter, err)
		}
	}
}

// TestScheduleIntoPlatformPrefersFasterFinish pins the dispatch rule: with
// one LP and one HP core both idle, a task must land on the core where it
// finishes first — the HP core, whose slot is shorter on the shared
// timeline.
func TestScheduleIntoPlatformPrefersFasterFinish(t *testing.T) {
	pf := testPlatform(t)
	hpClass := pf.RefClass()
	g := singleTask(t, 1000)
	prio := sched.EDFPriorities(g, 0)
	s, err := sched.ListSchedulePlatform(g, pf, pf.NumProcs(), prio, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pf.ClassOf(int(s.Proc[0])); got != hpClass {
		t.Errorf("task placed on class %d, want reference class %d", got, hpClass)
	}
	if s.Finish[0] != 1000 {
		t.Errorf("reference-class slot = %d cycles, want the raw weight 1000", s.Finish[0])
	}
}

func TestScheduleIntoPlatformErrors(t *testing.T) {
	pf := testPlatform(t)
	g := singleTask(t, 10)
	prio := sched.EDFPriorities(g, 0)
	var k sched.Scheduler
	var s sched.Schedule
	if err := k.ScheduleIntoPlatform(&s, g, nil, 1, prio, nil); err == nil {
		t.Error("nil platform accepted")
	}
	if err := k.ScheduleIntoPlatform(&s, g, pf, 0, prio, nil); !errors.Is(err, sched.ErrNoProcs) {
		t.Errorf("nprocs=0: err = %v, want ErrNoProcs", err)
	}
	if err := k.ScheduleIntoPlatform(&s, g, pf, pf.NumProcs()+1, prio, nil); !errors.Is(err, sched.ErrBadPlatform) {
		t.Errorf("nprocs too large: err = %v, want ErrBadPlatform", err)
	}
	if err := k.ScheduleIntoPlatform(&s, g, pf, 1, prio[:0], nil); !errors.Is(err, sched.ErrBadPriorities) {
		t.Errorf("short priorities: err = %v, want ErrBadPriorities", err)
	}
}

// TestScheduleIntoSteadyStateZeroAllocPlatform extends the allocation gate
// to the heterogeneous kernel: once the per-class idle heaps are warm,
// ScheduleIntoPlatform must not allocate — with and without release times.
// The name deliberately contains TestScheduleIntoSteadyStateZeroAlloc so the
// Makefile's alloc-gate run pattern covers it.
func TestScheduleIntoSteadyStateZeroAllocPlatform(t *testing.T) {
	pf := testPlatform(t)
	g, err := taskgen.Member(300, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	prio := sched.EDFPriorities(g, 0)
	release := make([]int64, g.NumTasks())
	for v := range release {
		release[v] = int64((v * 37) % 5000)
	}
	var k sched.Scheduler
	var s sched.Schedule
	for _, rel := range [][]int64{nil, release} {
		rel := rel
		if err := k.ScheduleIntoPlatform(&s, g, pf, pf.NumProcs(), prio, rel); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := k.ScheduleIntoPlatform(&s, g, pf, pf.NumProcs(), prio, rel); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("steady-state ScheduleIntoPlatform allocates %v allocs/op (release=%v)", allocs, rel != nil)
		}
	}
}
