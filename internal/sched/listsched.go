package sched

import (
	"container/heap"
	"fmt"
	"math"

	"lamps/internal/dag"
)

// NoDeadline marks a task without an explicit deadline in per-task deadline
// slices.
const NoDeadline = int64(math.MaxInt64)

// EDFPriorities returns the per-task priorities used by list scheduling with
// earliest deadline first for a single global deadline D (in cycles): the
// effective deadline of task v is the latest time it may finish without
// making the deadline unreachable along any downstream path,
//
//	d(v) = D − (blevel(v) − w(v)).
//
// Lower values mean higher urgency. Because D shifts all priorities equally,
// the resulting order — and hence the schedule — is independent of D; EDF
// with a global deadline coincides with highest-bottom-level-first list
// scheduling.
//
// The subtraction saturates at the int64 bounds instead of wrapping, so the
// EDF order survives any deadline: priorities are exact for deadlines in
// [MinInt64 + CPL, MaxInt64] (which covers NoDeadline); below that range
// priorities clamp to MinInt64 and ties collapse onto task-index order
// rather than inverting.
func EDFPriorities(g *dag.Graph, deadline int64) []int64 {
	prio := make([]int64, g.NumTasks())
	for v := range prio {
		prio[v] = subSat(deadline, g.BottomLevel(v)-g.Weight(v))
	}
	return prio
}

// subSat returns a − b, saturating at math.MinInt64/math.MaxInt64 instead of
// wrapping. Wrapping would be fatal here: a deadline near either int64 bound
// (NoDeadline being the everyday case) would flip the sign of the priority
// and invert the EDF dispatch order.
func subSat(a, b int64) int64 {
	d := a - b
	if (a >= 0) != (b >= 0) && (d >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return d
}

// DeadlinePriorities returns EDF priorities for per-task absolute deadlines
// (use NoDeadline for tasks without one, e.g. non-output tasks of an
// unrolled KPN). The effective deadline is propagated backwards:
//
//	d(v) = min(dl(v), min over successors s of d(s) − w(s)).
//
// It returns ErrBadDeadlines when the slice length does not match the graph.
func DeadlinePriorities(g *dag.Graph, dl []int64) ([]int64, error) {
	n := g.NumTasks()
	if len(dl) != n {
		return nil, ErrBadDeadlines
	}
	eff := make([]int64, n)
	copy(eff, dl)
	topo := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range g.Succs(int(v)) {
			if eff[s] == NoDeadline {
				continue
			}
			if d := subSat(eff[s], g.Weight(int(s))); d < eff[v] {
				eff[v] = d
			}
		}
	}
	return eff, nil
}

// FIFOPriorities returns priorities equal to the task index. Used as a
// deliberately naive baseline in ablation experiments.
func FIFOPriorities(g *dag.Graph) []int64 {
	prio := make([]int64, g.NumTasks())
	for v := range prio {
		prio[v] = int64(v)
	}
	return prio
}

// ListEDF schedules the graph on nprocs identical processors using list
// scheduling with earliest deadline first (LS-EDF), the scheduling algorithm
// employed by S&S and LAMPS. Whenever a processor is idle and tasks are
// ready, the ready task with the earliest effective deadline is dispatched.
func ListEDF(g *dag.Graph, nprocs int) (*Schedule, error) {
	return ListSchedule(g, nprocs, EDFPriorities(g, 0))
}

// ListEDFWithDeadlines is ListEDF with explicit per-task deadlines (see
// DeadlinePriorities).
func ListEDFWithDeadlines(g *dag.Graph, nprocs int, dl []int64) (*Schedule, error) {
	prio, err := DeadlinePriorities(g, dl)
	if err != nil {
		return nil, err
	}
	return ListSchedule(g, nprocs, prio)
}

// readyItem is an entry of the ready heap.
type readyItem struct {
	task int32
	prio int64
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].task < h[j].task
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// finishEvent is a running task completion in the event queue.
type finishEvent struct {
	finish int64
	task   int32
}

type eventHeap []finishEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].task < h[j].task
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(finishEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// intHeap is a min-heap of processor indices (lowest index dispatched first
// for determinism).
type intHeap []int32

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int32)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ListSchedule runs event-driven, work-conserving list scheduling with
// arbitrary per-task priorities (lower value = dispatched earlier among
// ready tasks). Whenever at least one processor is idle and at least one
// task is ready, the lowest-priority-value ready task starts immediately on
// the lowest-numbered idle processor; otherwise time advances to the next
// task completion. It is the engine behind ListEDF and the alternative
// policies.
func ListSchedule(g *dag.Graph, nprocs int, prio []int64) (*Schedule, error) {
	return ListScheduleReleases(g, nprocs, prio, nil)
}

// ListScheduleReleases is ListSchedule with per-task release times (in
// cycles): no task starts before its release, even when its predecessors
// have finished and a processor is idle. Releases model environment inputs
// that arrive over time — the paper uses them for periodic tasks translated
// to frame DAGs (Section 3.1, after Liberato et al.) and for KPN inputs not
// available at time zero. A nil slice means every task is released at 0.
func ListScheduleReleases(g *dag.Graph, nprocs int, prio, release []int64) (*Schedule, error) {
	if nprocs <= 0 {
		return nil, ErrNoProcs
	}
	n := g.NumTasks()
	if len(prio) != n {
		return nil, fmt.Errorf("%w: got %d priorities for %d tasks", ErrBadPriorities, len(prio), n)
	}
	if release != nil && len(release) != n {
		return nil, fmt.Errorf("%w: got %d releases for %d tasks", ErrBadReleases, len(release), n)
	}
	relOf := func(v int32) int64 {
		if release == nil {
			return 0
		}
		return release[v]
	}
	s := &Schedule{
		Graph:    g,
		NumProcs: nprocs,
		Proc:     make([]int32, n),
		Start:    make([]int64, n),
		Finish:   make([]int64, n),
	}

	indeg := make([]int32, n)
	ready := make(readyHeap, 0, n)
	var pending eventHeap // tasks with all preds done, waiting for release
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(v))
		if indeg[v] == 0 {
			if r := relOf(int32(v)); r > 0 {
				pending = append(pending, finishEvent{r, int32(v)})
			} else {
				ready = append(ready, readyItem{int32(v), prio[v]})
			}
		}
	}
	heap.Init(&ready)
	heap.Init(&pending)

	idle := make(intHeap, nprocs)
	for p := range idle {
		idle[p] = int32(p)
	}
	heap.Init(&idle)

	var running eventHeap
	var t int64
	for {
		// Admit every pending task whose release has passed.
		for pending.Len() > 0 && pending[0].finish <= t {
			ev := heap.Pop(&pending).(finishEvent)
			heap.Push(&ready, readyItem{ev.task, prio[ev.task]})
		}
		// Dispatch every ready task for which an idle processor exists.
		for ready.Len() > 0 && idle.Len() > 0 {
			it := heap.Pop(&ready).(readyItem)
			p := heap.Pop(&idle).(int32)
			v := int(it.task)
			finish := t + g.Weight(v)
			s.Proc[v] = p
			s.Start[v] = t
			s.Finish[v] = finish
			if finish > s.Makespan {
				s.Makespan = finish
			}
			heap.Push(&running, finishEvent{finish, it.task})
		}
		if running.Len() == 0 && pending.Len() == 0 {
			break // nothing running, nothing future: done
		}
		// Advance to the next event: a completion or a release.
		next := int64(math.MaxInt64)
		if running.Len() > 0 {
			next = running[0].finish
		}
		if pending.Len() > 0 && pending[0].finish < next {
			next = pending[0].finish
		}
		t = next
		for running.Len() > 0 && running[0].finish == t {
			ev := heap.Pop(&running).(finishEvent)
			heap.Push(&idle, s.Proc[ev.task])
			for _, succ := range g.Succs(int(ev.task)) {
				indeg[succ]--
				if indeg[succ] == 0 {
					if r := relOf(succ); r > t {
						heap.Push(&pending, finishEvent{r, succ})
					} else {
						heap.Push(&ready, readyItem{succ, prio[succ]})
					}
				}
			}
		}
	}
	s.rebuildByProc()
	return s, nil
}

// MakespanLowerBound returns max(CPL, ceil(W/nprocs)), a lower bound on the
// makespan of any schedule of g on nprocs processors. The paper's
// N_lwb = ceil(W/D) processor bound is this bound solved for N.
func MakespanLowerBound(g *dag.Graph, nprocs int) int64 {
	lb := g.CriticalPathLength()
	if w := (g.TotalWork() + int64(nprocs) - 1) / int64(nprocs); w > lb {
		lb = w
	}
	return lb
}
