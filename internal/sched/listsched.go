package sched

import (
	"math"

	"lamps/internal/dag"
)

// NoDeadline marks a task without an explicit deadline in per-task deadline
// slices.
const NoDeadline = int64(math.MaxInt64)

// EDFPriorities returns the per-task priorities used by list scheduling with
// earliest deadline first for a single global deadline D (in cycles): the
// effective deadline of task v is the latest time it may finish without
// making the deadline unreachable along any downstream path,
//
//	d(v) = D − (blevel(v) − w(v)).
//
// Lower values mean higher urgency. Because D shifts all priorities equally,
// the resulting order — and hence the schedule — is independent of D; EDF
// with a global deadline coincides with highest-bottom-level-first list
// scheduling.
//
// The subtraction saturates at the int64 bounds instead of wrapping, so the
// EDF order survives any deadline: priorities are exact for deadlines in
// [MinInt64 + CPL, MaxInt64] (which covers NoDeadline); below that range
// priorities clamp to MinInt64 and ties collapse onto task-index order
// rather than inverting.
func EDFPriorities(g *dag.Graph, deadline int64) []int64 {
	return EDFPrioritiesInto(make([]int64, g.NumTasks()), g, deadline)
}

// EDFPrioritiesInto is EDFPriorities writing into caller-owned scratch: dst
// is grown if needed and the filled prefix of length g.NumTasks() returned.
// Hot paths (the engine's per-request arena) use it to keep priority
// computation allocation-free once the scratch is warm.
func EDFPrioritiesInto(dst []int64, g *dag.Graph, deadline int64) []int64 {
	n := g.NumTasks()
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	for v := range dst {
		dst[v] = subSat(deadline, g.BottomLevel(v)-g.Weight(v))
	}
	return dst
}

// subSat returns a − b, saturating at math.MinInt64/math.MaxInt64 instead of
// wrapping. Wrapping would be fatal here: a deadline near either int64 bound
// (NoDeadline being the everyday case) would flip the sign of the priority
// and invert the EDF dispatch order.
func subSat(a, b int64) int64 {
	d := a - b
	if (a >= 0) != (b >= 0) && (d >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return d
}

// DeadlinePriorities returns EDF priorities for per-task absolute deadlines
// (use NoDeadline for tasks without one, e.g. non-output tasks of an
// unrolled KPN). The effective deadline is propagated backwards:
//
//	d(v) = min(dl(v), min over successors s of d(s) − w(s)).
//
// It returns ErrBadDeadlines when the slice length does not match the graph.
func DeadlinePriorities(g *dag.Graph, dl []int64) ([]int64, error) {
	n := g.NumTasks()
	if len(dl) != n {
		return nil, ErrBadDeadlines
	}
	eff := make([]int64, n)
	copy(eff, dl)
	topo := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range g.Succs(int(v)) {
			if eff[s] == NoDeadline {
				continue
			}
			if d := subSat(eff[s], g.Weight(int(s))); d < eff[v] {
				eff[v] = d
			}
		}
	}
	return eff, nil
}

// FIFOPriorities returns priorities equal to the task index. Used as a
// deliberately naive baseline in ablation experiments.
func FIFOPriorities(g *dag.Graph) []int64 {
	prio := make([]int64, g.NumTasks())
	for v := range prio {
		prio[v] = int64(v)
	}
	return prio
}

// ListEDF schedules the graph on nprocs identical processors using list
// scheduling with earliest deadline first (LS-EDF), the scheduling algorithm
// employed by S&S and LAMPS. Whenever a processor is idle and tasks are
// ready, the ready task with the earliest effective deadline is dispatched.
func ListEDF(g *dag.Graph, nprocs int) (*Schedule, error) {
	return ListSchedule(g, nprocs, EDFPriorities(g, 0))
}

// ListEDFWithDeadlines is ListEDF with explicit per-task deadlines (see
// DeadlinePriorities).
func ListEDFWithDeadlines(g *dag.Graph, nprocs int, dl []int64) (*Schedule, error) {
	prio, err := DeadlinePriorities(g, dl)
	if err != nil {
		return nil, err
	}
	return ListSchedule(g, nprocs, prio)
}

// ListSchedule runs event-driven, work-conserving list scheduling with
// arbitrary per-task priorities (lower value = dispatched earlier among
// ready tasks). Whenever at least one processor is idle and at least one
// task is ready, the lowest-priority-value ready task starts immediately on
// the lowest-numbered idle processor; otherwise time advances to the next
// task completion. It is the engine behind ListEDF and the alternative
// policies.
func ListSchedule(g *dag.Graph, nprocs int, prio []int64) (*Schedule, error) {
	return ListScheduleReleases(g, nprocs, prio, nil)
}

// ListScheduleReleases is ListSchedule with per-task release times (in
// cycles): no task starts before its release, even when its predecessors
// have finished and a processor is idle. Releases model environment inputs
// that arrive over time — the paper uses them for periodic tasks translated
// to frame DAGs (Section 3.1, after Liberato et al.) and for KPN inputs not
// available at time zero. A nil slice means every task is released at 0.
//
// It is a convenience wrapper over the allocation-free kernel: it runs a
// fresh Scheduler scratch and returns a fresh Schedule. Callers on a hot
// path should keep a Scheduler and call ScheduleInto to reuse both.
func ListScheduleReleases(g *dag.Graph, nprocs int, prio, release []int64) (*Schedule, error) {
	var k Scheduler
	s := new(Schedule)
	if err := k.ScheduleInto(s, g, nprocs, prio, release); err != nil {
		return nil, err
	}
	return s, nil
}

// MakespanLowerBound returns max(CPL, ceil(W/nprocs)), a lower bound on the
// makespan of any schedule of g on nprocs processors. The paper's
// N_lwb = ceil(W/D) processor bound is this bound solved for N.
func MakespanLowerBound(g *dag.Graph, nprocs int) int64 {
	lb := g.CriticalPathLength()
	if w := (g.TotalWork() + int64(nprocs) - 1) / int64(nprocs); w > lb {
		lb = w
	}
	return lb
}
