package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
	"lamps/internal/power"
)

func TestSlackReclaimBasics(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 2)
	r, err := SlackReclaimDVS(g, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalEnergy() <= 0 {
		t.Fatal("non-positive energy")
	}
	if r.MakespanSec() > cfg.Deadline*(1+1e-9) {
		t.Errorf("per-task DVS misses deadline: %g > %g", r.MakespanSec(), cfg.Deadline)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
	// Every task runs at a valid ladder level and within its window.
	for v := 0; v < g.NumTasks(); v++ {
		if r.Levels[v].Freq <= 0 {
			t.Errorf("task %d has no level", v)
		}
		if r.FinishSec[v]-r.StartSec[v] <= 0 {
			t.Errorf("task %d has non-positive duration", v)
		}
	}
}

// TestSlackReclaimRespectsPrecedence verifies starts after predecessor
// finishes and per-processor serialisation.
func TestSlackReclaimRespectsPrecedence(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawF uint8, ps bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, int(rawN%25)+2, 0.2, coarseWeight)
		factor := []float64{1.5, 2, 4, 8}[rawF%4]
		cfg := DeadlineFactor(g, m, factor)
		r, err := SlackReclaimDVS(g, cfg, ps)
		if err != nil {
			t.Logf("SlackReclaimDVS: %v", err)
			return false
		}
		for v := 0; v < g.NumTasks(); v++ {
			for _, p := range g.Preds(v) {
				if r.StartSec[v] < r.FinishSec[p]*(1-1e-12) {
					t.Logf("task %d starts before pred %d finishes", v, p)
					return false
				}
			}
		}
		for p := 0; p < r.NumProcs; p++ {
			cursor := 0.0
			for _, v := range r.Schedule.TasksOn(p) {
				if r.StartSec[v] < cursor*(1-1e-12) {
					t.Logf("overlap on proc %d", p)
					return false
				}
				cursor = r.FinishSec[v]
			}
		}
		return r.MakespanSec() <= cfg.Deadline*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSlackReclaimVsUniform: per-task DVS has the uniform stretch in its
// search space in spirit, but greedy order may differ; assert instead the
// paper-motivated bound: it can never beat LIMIT-MF, and on loose deadlines
// it should land within a few percent of LAMPS+PS (the paper's prediction
// that per-task frequencies buy little).
func TestSlackReclaimVsBounds(t *testing.T) {
	m := power.Default70nm()
	for _, factor := range []float64{2, 4, 8} {
		g := buildFig4a(t, coarseWeight)
		cfg := DeadlineFactor(g, m, factor)
		pt, err := SlackReclaimDVS(g, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := LimitMF(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pt.TotalEnergy() < mf.TotalEnergy()*(1-1e-9) {
			t.Errorf("factor %g: per-task DVS beats LIMIT-MF: %g < %g",
				factor, pt.TotalEnergy(), mf.TotalEnergy())
		}
		laps, err := LAMPSPS(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pt.TotalEnergy() > laps.TotalEnergy()*1.25 {
			t.Errorf("factor %g: per-task DVS 25%% worse than LAMPS+PS (%g vs %g)",
				factor, pt.TotalEnergy(), laps.TotalEnergy())
		}
	}
}

func TestSlackReclaimInfeasible(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 0.5)
	if _, err := SlackReclaimDVS(g, cfg, true); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := SlackReclaimDVS(g, Config{Deadline: -1}, false); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config err = %v", err)
	}
}

// TestSlackReclaimUsesMultipleLevels: on an unbalanced graph with slack,
// different tasks should end up at different operating points — the whole
// point of the extension.
func TestSlackReclaimUsesMultipleLevels(t *testing.T) {
	m := power.Default70nm()
	// A chain (critical) plus one tiny independent task with huge slack.
	b := newUnbalanced(t)
	cfg := DeadlineFactor(b, m, 1.5)
	r, err := SlackReclaimDVS(b, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for v := 0; v < b.NumTasks(); v++ {
		seen[r.Levels[v].Index] = true
	}
	if len(seen) < 2 {
		t.Errorf("all tasks at the same level %v; expected the off-critical task to run slower", r.Levels[0])
	}
}

func newUnbalanced(t *testing.T) *dag.Graph {
	t.Helper()
	bb := dag.NewBuilder("unbalanced")
	a := bb.AddTask(10 * coarseWeight)
	c := bb.AddTask(10 * coarseWeight)
	d := bb.AddTask(10 * coarseWeight)
	tiny := bb.AddTask(1 * coarseWeight)
	bb.AddEdge(a, c)
	bb.AddEdge(c, d)
	_ = tiny
	g, err := bb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
