package core

import (
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
)

// LimitSF computes the paper's single-frequency lower bound (Section 4.4).
// Idle processors are assumed to consume no energy, the processor count is
// unbounded, and the common frequency is scaled down to the critical
// (energy-optimal) frequency if the deadline allows, or otherwise as little
// above it as the deadline requires: with unlimited processors the best
// achievable makespan is the critical path, so any feasible frequency
// satisfies f ≥ CPL/D. No schedule whose processors all run at one constant
// frequency can consume less energy, independently of the scheduling
// algorithm.
func LimitSF(g *dag.Graph, cfg Config) (*Result, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	if cfg.heterogeneous() {
		return limitSFPlatform(g, cfg)
	}
	m := cfg.model()
	need := float64(g.CriticalPathLength()) / cfg.Deadline
	lvl, err := m.LevelForFrequency(need)
	if err != nil {
		return nil, fmt.Errorf("%w: CPL %d cycles does not fit %.4gs at f_max",
			ErrInfeasible, g.CriticalPathLength(), cfg.Deadline)
	}
	// Among the feasible levels 0..lvl.Index, energy per cycle is minimised
	// at the critical level; if the deadline forbids descending that far,
	// the slowest feasible level is optimal (energy per cycle decreases
	// monotonically from f_max down to the critical frequency).
	if crit := m.CriticalLevel(); crit.Index < lvl.Index {
		lvl = crit
	}
	e := float64(g.TotalWork()) * m.EnergyPerCycle(lvl)
	return &Result{
		Approach: ApproachLimitSF,
		Graph:    g,
		Level:    lvl,
		Energy: energy.Breakdown{
			Active:     e,
			ActiveTime: float64(g.TotalWork()) / lvl.Freq,
		},
		Stats: Stats{LevelsEvaluated: 1},
	}, nil
}

// LimitMF computes the paper's multiple-frequency lower bound (Section
// 4.4): every task runs at the critical frequency and idle processors
// consume nothing, so the energy is W times the minimum energy per cycle.
// This is an absolute lower bound even when processors may run at different
// frequencies and those frequencies may change over time; note that the
// implied schedule may miss the deadline (the bound ignores it).
func LimitMF(g *dag.Graph, cfg Config) (*Result, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	if cfg.heterogeneous() {
		return limitMFPlatform(g, cfg)
	}
	m := cfg.model()
	lvl := m.CriticalLevel()
	e := float64(g.TotalWork()) * m.EnergyPerCycle(lvl)
	return &Result{
		Approach: ApproachLimitMF,
		Graph:    g,
		Level:    lvl,
		Energy: energy.Breakdown{
			Active:     e,
			ActiveTime: float64(g.TotalWork()) / lvl.Freq,
		},
		Stats: Stats{LevelsEvaluated: 1},
	}, nil
}

// limitSFPlatform generalises LIMIT-SF to a heterogeneous platform: among
// the grid points whose timeline frequency still fits the critical path in
// the deadline (best case: the whole critical path on the reference class),
// pick the one minimising W times the *cheapest* class's energy per cycle.
// Charging every work cycle at the cheapest class is what keeps this a true
// lower bound — no placement can execute a cycle for less — at the price of
// being looser than the homogeneous bound when classes differ.
func limitSFPlatform(g *dag.Graph, cfg Config) (*Result, error) {
	pf := cfg.Platform
	need := float64(g.CriticalPathLength()) / cfg.Deadline
	min, err := pf.PointForFrequency(need)
	if err != nil {
		return nil, fmt.Errorf("%w: CPL %d cycles does not fit %.4gs at the reference f_max",
			ErrInfeasible, g.CriticalPathLength(), cfg.Deadline)
	}
	// Per-class energy per cycle is not monotone across grid points sourced
	// from different ladders, so scan every feasible point instead of jumping
	// to the critical level.
	points := pf.Points()[:min.Index+1]
	best, bestE := points[0], minEnergyPerCycle(pf, points[0])
	for _, pt := range points[1:] {
		if e := minEnergyPerCycle(pf, pt); e < bestE {
			best, bestE = pt, e
		}
	}
	e := float64(g.TotalWork()) * bestE
	lvl := best.Levels[pf.RefClass()]
	return &Result{
		Approach: ApproachLimitSF,
		Graph:    g,
		Level:    lvl,
		Platform: pf,
		Point:    best,
		Energy: energy.Breakdown{
			Active:     e,
			ActiveTime: float64(g.TotalWork()) / best.TimelineFreq,
		},
		Stats: Stats{LevelsEvaluated: len(points)},
	}, nil
}

// limitMFPlatform generalises LIMIT-MF: with per-processor time-varying
// frequencies and free idle processors, no cycle can cost less than the
// cheapest class's critical-level energy per cycle.
func limitMFPlatform(g *dag.Graph, cfg Config) (*Result, error) {
	pf := cfg.Platform
	bestC := 0
	bestE := pf.ClassModel(0).EnergyPerCycle(pf.ClassModel(0).CriticalLevel())
	for c := 1; c < pf.NumClasses(); c++ {
		m := pf.ClassModel(c)
		if e := m.EnergyPerCycle(m.CriticalLevel()); e < bestE {
			bestC, bestE = c, e
		}
	}
	lvl := pf.ClassModel(bestC).CriticalLevel()
	e := float64(g.TotalWork()) * bestE
	return &Result{
		Approach: ApproachLimitMF,
		Graph:    g,
		Level:    lvl,
		Platform: pf,
		Energy: energy.Breakdown{
			Active:     e,
			ActiveTime: float64(g.TotalWork()) / lvl.Freq,
		},
		Stats: Stats{LevelsEvaluated: 1},
	}, nil
}

// minEnergyPerCycle returns the cheapest class's energy per cycle at pt.
func minEnergyPerCycle(pf *power.Platform, pt power.OperatingPoint) float64 {
	best := pf.ClassModel(0).EnergyPerCycle(pt.Levels[0])
	for c := 1; c < pf.NumClasses(); c++ {
		if e := pf.ClassModel(c).EnergyPerCycle(pt.Levels[c]); e < best {
			best = e
		}
	}
	return best
}

// EnergySaving returns the fraction of the possible energy reduction that a
// heuristic attains, using S&S as the baseline and LIMIT-SF as the maximum,
// as in the paper's Section 5.2 ("LAMPS+PS attains more than 94% of the
// possible energy reduction"). It returns 1 when baseline and limit
// coincide.
func EnergySaving(baseline, achieved, limit float64) float64 {
	den := baseline - limit
	if den <= 0 {
		return 1
	}
	return (baseline - achieved) / den
}
