package core

import (
	"fmt"
	"math"

	"lamps/internal/dag"
	"lamps/internal/sched"
)

// scheduler memoises list-scheduling runs per processor count within one
// heuristic invocation, so that the binary search of LAMPS phase 1 and the
// linear search of phase 2 never schedule the same configuration twice.
type scheduler struct {
	g     *dag.Graph
	prio  []int64
	cache map[int]*sched.Schedule
	stats *Stats
}

func newScheduler(g *dag.Graph, cfg *Config, stats *Stats) *scheduler {
	return &scheduler{
		g:     g,
		prio:  cfg.priorities(g),
		cache: make(map[int]*sched.Schedule),
		stats: stats,
	}
}

// at returns the (memoised) list schedule on n processors.
func (sc *scheduler) at(n int) (*sched.Schedule, error) {
	if s, ok := sc.cache[n]; ok {
		return s, nil
	}
	s, err := sched.ListSchedule(sc.g, n, sc.prio)
	if err != nil {
		return nil, err
	}
	sc.stats.SchedulesBuilt++
	sc.cache[n] = s
	return s, nil
}

// makespan returns the makespan on n processors, in cycles.
func (sc *scheduler) makespan(n int) (int64, error) {
	s, err := sc.at(n)
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

// nLowerBound is the paper's N_lwb = ceil(sum of weights / D): no fewer
// processors can possibly complete the work before the deadline, with the
// deadline expressed in cycles at maximum frequency.
func nLowerBound(g *dag.Graph, deadlineCycles float64) int {
	if deadlineCycles <= 0 {
		return g.NumTasks()
	}
	n := int(math.Ceil(float64(g.TotalWork()) / deadlineCycles))
	if n < 1 {
		n = 1
	}
	return n
}

// minProcsForDeadline performs the paper's phase-1 binary search: the
// minimal number of processors whose LS-EDF makespan meets the deadline
// (deadline in cycles at maximum frequency). The search interval is
// [N_lwb, hi]; monotonicity of the makespan in the processor count is
// assumed, as in the paper.
func (sc *scheduler) minProcsForDeadline(deadlineCycles float64, hi int) (int, error) {
	lo := nLowerBound(sc.g, deadlineCycles)
	if lo > hi {
		lo = hi
	}
	mk, err := sc.makespan(hi)
	if err != nil {
		return 0, err
	}
	if float64(mk) > deadlineCycles {
		return 0, fmt.Errorf("%w: makespan %d cycles on %d processors, deadline %.0f cycles",
			ErrInfeasible, mk, hi, deadlineCycles)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		mk, err := sc.makespan(mid)
		if err != nil {
			return 0, err
		}
		if float64(mk) <= deadlineCycles {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
