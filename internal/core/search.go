package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/verify"
)

// scheduler memoises list-scheduling runs per processor count within one
// heuristic invocation, so that the binary searches of LAMPS phases 1 and 2
// and the candidate evaluation never schedule the same configuration twice.
// It is safe for concurrent use: the parallel engine builds candidates from
// many goroutines. Duplicate concurrent builds of the same count are
// possible but harmless — exactly one wins the memo slot and is counted, so
// SchedulesBuilt stays deterministic.
//
// The scheduler lives inside an arena: the byCount memo and the shell free
// list survive across requests (reset by arena.close), so a warm request
// never allocates a Schedule — shells are recycled and ScheduleInto regrows
// their slices in place.
type scheduler struct {
	ctx       context.Context
	g         *dag.Graph
	prio      []int64
	obs       *obsHub
	selfCheck bool            // Config.SelfCheck: verify every freshly built schedule
	pf        *power.Platform // non-nil on the heterogeneous path: build with ScheduleIntoPlatform

	mu      sync.Mutex
	byCount []*sched.Schedule // memo indexed by processor count; nil = not built
	shells  []*sched.Schedule // free list of fully-owned reusable Schedule scratch
	built   int
}

func (sc *scheduler) init(ctx context.Context, g *dag.Graph, prio []int64, obs *obsHub, selfCheck bool, pf *power.Platform) {
	sc.ctx = ctx
	sc.g = g
	sc.prio = prio
	sc.obs = obs
	sc.selfCheck = selfCheck
	sc.pf = pf
}

// getShell pops a recycled Schedule (or makes the arena's first one). The
// caller owns it until it either wins a memo slot or is returned with
// putShell.
func (sc *scheduler) getShell() *sched.Schedule {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if n := len(sc.shells); n > 0 {
		s := sc.shells[n-1]
		sc.shells[n-1] = nil
		sc.shells = sc.shells[:n-1]
		return s
	}
	return new(sched.Schedule)
}

func (sc *scheduler) putShell(s *sched.Schedule) {
	s.Graph = nil
	sc.mu.Lock()
	sc.shells = append(sc.shells, s)
	sc.mu.Unlock()
}

// recycleSchedules moves every memoised schedule onto the shell free list
// and drops its graph reference; called by arena.close once the winning
// schedule has been detached with CloneCompact.
func (sc *scheduler) recycleSchedules() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for i, s := range sc.byCount {
		if s != nil {
			s.Graph = nil
			sc.shells = append(sc.shells, s)
			sc.byCount[i] = nil
		}
	}
}

// kernelPool recycles scheduling scratch (heaps, in-degree and dispatch
// buffers) across runs and goroutines: every candidate build borrows one
// kernel, so warm builds write straight into recycled Schedule shells
// without allocating at all.
var kernelPool = sync.Pool{New: func() any { return new(sched.Scheduler) }}

// at returns the (memoised) list schedule on n processors. It checks the
// run's context first, which bounds the cancellation latency of every search
// loop to at most one ListSchedule call.
func (sc *scheduler) at(n int) (*sched.Schedule, error) {
	if err := sc.ctx.Err(); err != nil {
		return nil, err
	}
	sc.mu.Lock()
	if n < len(sc.byCount) && sc.byCount[n] != nil {
		s := sc.byCount[n]
		sc.mu.Unlock()
		return s, nil
	}
	sc.mu.Unlock()
	k := kernelPool.Get().(*sched.Scheduler)
	s := sc.getShell()
	var err error
	if sc.pf != nil {
		err = k.ScheduleIntoPlatform(s, sc.g, sc.pf, n, sc.prio, nil)
	} else {
		err = k.ScheduleInto(s, sc.g, n, sc.prio, nil)
	}
	kernelPool.Put(k)
	if err != nil {
		sc.putShell(s)
		return nil, err
	}
	if sc.selfCheck {
		// Config.SelfCheck: every schedule the kernel emits is re-checked
		// from first principles before any search step may consume it.
		var verr error
		if sc.pf != nil {
			verr = verify.PlatformSchedule(sc.g, sc.pf, s)
		} else {
			verr = verify.Schedule(sc.g, s)
		}
		if verr != nil {
			sc.putShell(s)
			return nil, fmt.Errorf("core: self-check: schedule on %d processors: %w", n, verr)
		}
	}
	sc.mu.Lock()
	for len(sc.byCount) <= n {
		sc.byCount = append(sc.byCount, nil)
	}
	if prev := sc.byCount[n]; prev != nil {
		// A concurrent build won the slot; recycle ours uncounted.
		s.Graph = nil
		sc.shells = append(sc.shells, s)
		sc.mu.Unlock()
		return prev, nil
	}
	sc.byCount[n] = s
	sc.built++
	sc.mu.Unlock()
	sc.obs.scheduleBuilt(n, s.Makespan)
	return s, nil
}

// builtCount returns the number of distinct schedules built so far.
func (sc *scheduler) builtCount() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.built
}

// makespan returns the makespan on n processors, in cycles.
func (sc *scheduler) makespan(n int) (int64, error) {
	s, err := sc.at(n)
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

// nLowerBound is the paper's N_lwb = ceil(sum of weights / D): no fewer
// processors can possibly complete the work before the deadline, with the
// deadline expressed in cycles at maximum frequency.
func nLowerBound(g *dag.Graph, deadlineCycles float64) int {
	if deadlineCycles <= 0 {
		return g.NumTasks()
	}
	n := int(math.Ceil(float64(g.TotalWork()) / deadlineCycles))
	if n < 1 {
		n = 1
	}
	return n
}

// minProcsForDeadline performs the paper's phase-1 binary search: the
// minimal number of processors whose LS-EDF makespan meets the deadline
// (deadline in cycles at maximum frequency). The search interval is
// [N_lwb, hi]; monotonicity of the makespan in the processor count is
// assumed, as in the paper.
func (sc *scheduler) minProcsForDeadline(deadlineCycles float64, hi int) (int, error) {
	lo := nLowerBound(sc.g, deadlineCycles)
	if lo > hi {
		lo = hi
	}
	mk, err := sc.makespan(hi)
	if err != nil {
		return 0, err
	}
	if float64(mk) > deadlineCycles {
		return 0, fmt.Errorf("%w: makespan %d cycles on %d processors, deadline %.0f cycles",
			ErrInfeasible, mk, hi, deadlineCycles)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		mk, err := sc.makespan(mid)
		if err != nil {
			return 0, err
		}
		if float64(mk) <= deadlineCycles {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// saturationPoint locates the end of phase 2's candidate range: the smallest
// n in [lo, hi] whose makespan has reached the critical path length — its
// absolute minimum, beyond which adding processors cannot change the
// schedule — or hi if no count gets there. It binary-searches under the same
// makespan monotonicity assumption as phase 1, which is what lets the
// parallel engine fix the whole candidate set up front instead of walking it
// one count at a time; the set it produces is exactly the one the serial
// linear scan visits.
func (sc *scheduler) saturationPoint(lo, hi int) (int, error) {
	cpl := sc.g.CriticalPathLength()
	mk, err := sc.makespan(hi)
	if err != nil {
		return 0, err
	}
	if mk > cpl {
		return hi, nil
	}
	for lo < hi {
		mid := (lo + hi) / 2
		mk, err := sc.makespan(mid)
		if err != nil {
			return 0, err
		}
		if mk <= cpl {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
