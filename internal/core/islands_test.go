package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
	"lamps/internal/power"
)

func TestVoltageIslandsBasics(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 2)
	r, err := VoltageIslands(g, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalEnergy() <= 0 {
		t.Fatal("non-positive energy")
	}
	if r.MakespanSec() > cfg.Deadline*(1+1e-9) {
		t.Errorf("islands miss deadline: %g > %g", r.MakespanSec(), cfg.Deadline)
	}
	if len(r.ProcLevels) != r.Schedule.NumProcs {
		t.Errorf("ProcLevels length %d for %d procs", len(r.ProcLevels), r.Schedule.NumProcs)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// TestIslandsBracketedByUniformAndPerTask: per-processor freedom sits
// between the uniform LAMPS+PS solution (its starting point, so it can only
// improve on it) and the LIMIT-MF bound.
func TestIslandsBracketed(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawF uint8, ps bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, int(rawN%25)+2, 0.15, coarseWeight)
		factor := []float64{1.5, 2, 4, 8}[rawF%4]
		cfg := DeadlineFactor(g, m, factor)
		isl, err := VoltageIslands(g, cfg, ps)
		if err != nil {
			t.Logf("islands: %v", err)
			return false
		}
		uniform, err := lampsCommon(ApproachLAMPSPS, g, cfg, ps)
		if err != nil {
			return false
		}
		// Tolerance covers the closed form's horizon truncation.
		if isl.TotalEnergy() > uniform.TotalEnergy()*(1+1e-6) {
			t.Logf("islands %g J worse than uniform %g J", isl.TotalEnergy(), uniform.TotalEnergy())
			return false
		}
		mf, err := LimitMF(g, cfg)
		if err != nil {
			return false
		}
		if isl.TotalEnergy() < mf.TotalEnergy()*(1-1e-9) {
			t.Logf("islands beat LIMIT-MF ?!")
			return false
		}
		// Precedence and processor serialisation hold under the new timing.
		for v := 0; v < g.NumTasks(); v++ {
			for _, p := range g.Preds(v) {
				if isl.StartSec[v] < isl.FinishSec[p]*(1-1e-12) {
					return false
				}
			}
		}
		return isl.MakespanSec() <= cfg.Deadline*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestIslandsDifferentiate: on a graph with one lightly-loaded processor,
// the descent should park that processor at a lower level than the busy one.
func TestIslandsDifferentiate(t *testing.T) {
	m := power.Default70nm()
	// Heavy chain on one proc, one light independent task on another, tight
	// deadline so the chain must stay fast.
	b := dag.NewBuilder("skew")
	prev := -1
	for i := 0; i < 4; i++ {
		v := b.AddTask(10 * coarseWeight)
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	b.AddTask(2 * coarseWeight) // light, independent
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DeadlineFactor(g, m, 1.1)
	r, err := VoltageIslands(g, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumProcs < 2 {
		t.Skipf("planner chose %d proc(s); nothing to differentiate", r.NumProcs)
	}
	distinct := map[int]bool{}
	for p := 0; p < r.Schedule.NumProcs; p++ {
		if len(r.Schedule.TasksOn(p)) > 0 {
			distinct[r.ProcLevels[p].Index] = true
		}
	}
	if len(distinct) < 2 {
		t.Errorf("all islands at the same level despite skewed load: %v", r.ProcLevels)
	}
}

func TestIslandsInfeasible(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 0.5)
	if _, err := VoltageIslands(g, cfg, true); err == nil {
		t.Error("no error on infeasible deadline")
	}
}
