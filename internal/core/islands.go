package core

import (
	"context"
	"fmt"
	"sort"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// ApproachIslands names the per-processor frequency extension.
const ApproachIslands = "VoltageIslands"

// IslandsResult is the outcome of the voltage-island extension: every
// processor keeps its own constant operating point for the whole schedule
// (a realistic hardware constraint between the paper's single global
// frequency and fully per-task DVS).
type IslandsResult struct {
	Graph    *dag.Graph
	NumProcs int
	Schedule *sched.Schedule

	// ProcLevels[p] is the operating point of processor p. StartSec and
	// FinishSec are the resulting per-task times in seconds.
	ProcLevels []power.Level
	StartSec   []float64
	FinishSec  []float64

	Energy energy.Breakdown
	Stats  Stats
}

// TotalEnergy returns the total energy in joules.
func (r *IslandsResult) TotalEnergy() float64 { return r.Energy.Total() }

// MakespanSec returns the end of the last task in seconds.
func (r *IslandsResult) MakespanSec() float64 {
	var m float64
	for _, f := range r.FinishSec {
		if f > m {
			m = f
		}
	}
	return m
}

func (r *IslandsResult) String() string {
	return fmt.Sprintf("%s: %.6g J on %d processor(s), makespan %.4gs",
		ApproachIslands, r.TotalEnergy(), r.NumProcs, r.MakespanSec())
}

// VoltageIslands is an *extension beyond the paper*: each processor runs at
// its own constant voltage/frequency, addressing the future-work question
// of Section 6 ("having processors run at their own frequency"). The search
// starts from the LAMPS(+PS) solution — every processor at its common level
// — and greedily lowers one processor's level at a time, keeping the change
// whenever the schedule (same assignment and per-processor order, timings
// recomputed) still meets the deadline and the energy drops. With ps, idle
// gaps longer than each processor's own break-even time are served by
// sleep, and no island descends below the critical level.
func VoltageIslands(g *dag.Graph, cfg Config, ps bool) (*IslandsResult, error) {
	return VoltageIslandsCtx(context.Background(), g, cfg, ps)
}

// VoltageIslandsCtx is VoltageIslands with cooperative cancellation.
func VoltageIslandsCtx(ctx context.Context, g *dag.Graph, cfg Config, ps bool) (*IslandsResult, error) {
	return (&Engine{Config: cfg}).Islands(ctx, g, ps)
}

// Islands runs the voltage-island extension on the engine: the LAMPS(+PS)
// base search benefits from the engine's pool, then the greedy per-island
// descent runs serially (each step depends on the previous acceptance) with
// a context check per candidate evaluation.
func (e *Engine) Islands(ctx context.Context, g *dag.Graph, ps bool) (*IslandsResult, error) {
	if e.Config.faultsOn() {
		// The greedy descent re-times tasks per island, which would strand
		// the statically planned backup slots; fault tolerance is limited to
		// the uniform-frequency heuristics for now.
		return nil, fmt.Errorf("%w: the voltage-island extension does not support fault tolerance", ErrBadConfig)
	}
	base, err := e.lamps(ctx, ApproachLAMPSPS, g, ps)
	if err != nil {
		return nil, err
	}
	hub := obsHub{o: e.Observer}
	hub.phase(PhaseRefine)
	cfg := e.Config
	if cfg.heterogeneous() {
		return e.islandsPlatform(ctx, g, ps, base)
	}
	m := cfg.model()
	s := base.Schedule
	stats := base.Stats

	levels := make([]power.Level, s.NumProcs)
	for p := range levels {
		levels[p] = base.Level
	}
	minIdx := len(m.Levels()) - 1
	if ps {
		minIdx = m.CriticalLevel().Index
	}
	if base.Level.Index > minIdx {
		minIdx = base.Level.Index // never raise an island above its start
	}

	best := islandEval(s, m, levels, cfg.Deadline, ps, &stats)
	if best == nil {
		return nil, fmt.Errorf("%w: base configuration infeasible", ErrInfeasible)
	}
	for improved := true; improved; {
		improved = false
		for p := 0; p < s.NumProcs; p++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if len(s.TasksOn(p)) == 0 || levels[p].Index >= minIdx {
				continue
			}
			levels[p] = m.Level(levels[p].Index + 1)
			cand := islandEval(s, m, levels, cfg.Deadline, ps, &stats)
			if cand != nil && cand.Energy.Total() < best.Energy.Total() {
				best = cand
				improved = true
			} else {
				levels[p] = m.Level(levels[p].Index - 1) // revert
			}
		}
	}
	best.Graph = g
	best.NumProcs = base.NumProcs
	best.Stats = stats
	return best, nil
}

// islandsPlatform is the heterogeneous greedy descent: each island starts at
// its class's level of the base operating point and descends its *own
// class's* ladder, never below that class's critical level (with ps) or
// ladder floor.
func (e *Engine) islandsPlatform(ctx context.Context, g *dag.Graph, ps bool, base *Result) (*IslandsResult, error) {
	pf := e.Config.Platform
	deadline := e.Config.Deadline
	s := base.Schedule
	stats := base.Stats

	levels := make([]power.Level, s.NumProcs)
	minIdx := make([]int, s.NumProcs)
	for p := range levels {
		m := pf.ModelOf(p)
		levels[p] = base.Point.Levels[pf.ClassOf(p)]
		mi := len(m.Levels()) - 1
		if ps {
			mi = m.CriticalLevel().Index
		}
		if levels[p].Index > mi {
			mi = levels[p].Index // never raise an island above its start
		}
		minIdx[p] = mi
	}

	best := islandEvalPlatform(s, pf, levels, deadline, ps, &stats)
	if best == nil {
		return nil, fmt.Errorf("%w: base configuration infeasible", ErrInfeasible)
	}
	for improved := true; improved; {
		improved = false
		for p := 0; p < s.NumProcs; p++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if len(s.TasksOn(p)) == 0 || levels[p].Index >= minIdx[p] {
				continue
			}
			m := pf.ModelOf(p)
			levels[p] = m.Level(levels[p].Index + 1)
			cand := islandEvalPlatform(s, pf, levels, deadline, ps, &stats)
			if cand != nil && cand.Energy.Total() < best.Energy.Total() {
				best = cand
				improved = true
			} else {
				levels[p] = m.Level(levels[p].Index - 1) // revert
			}
		}
	}
	best.Graph = g
	best.NumProcs = base.NumProcs
	best.Stats = stats
	return best, nil
}

// islandEvalPlatform is islandEval with per-processor models: durations,
// active powers, idle powers and break-even times all come from each
// processor's own class.
func islandEvalPlatform(s *sched.Schedule, pf *power.Platform, levels []power.Level, deadline float64, ps bool, stats *Stats) *IslandsResult {
	stats.LevelsEvaluated++
	g := s.Graph
	n := g.NumTasks()
	r := &IslandsResult{
		Schedule:   s,
		ProcLevels: append([]power.Level(nil), levels...),
		StartSec:   make([]float64, n),
		FinishSec:  make([]float64, n),
	}
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool { return s.Start[order[i]] < s.Start[order[j]] })
	procFree := make([]float64, s.NumProcs)
	var bd energy.Breakdown
	for _, v32 := range order {
		v := int(v32)
		p := s.Proc[v]
		m := pf.ModelOf(int(p))
		lvl := levels[p]
		st := procFree[p]
		for _, pred := range g.Preds(v) {
			if r.FinishSec[pred] > st {
				st = r.FinishSec[pred]
			}
		}
		dur := float64(g.Weight(v)) / lvl.Freq
		fin := st + dur
		if fin > deadline*(1+1e-12) {
			return nil
		}
		r.StartSec[v] = st
		r.FinishSec[v] = fin
		procFree[p] = fin
		bd.Active += dur * m.LevelPower(lvl)
		bd.ActiveTime += dur
	}
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		if len(tasks) == 0 {
			continue
		}
		m := pf.ModelOf(p)
		lvl := levels[p]
		pIdle := m.IdlePower(lvl)
		breakeven := m.BreakevenTime(lvl)
		charge := func(t float64) {
			if t <= 0 {
				return
			}
			if ps && t > breakeven {
				bd.Sleep += t * m.PSleep
				bd.SleepTime += t
				bd.Overhead += m.EOverhead
				bd.Shutdowns++
			} else {
				bd.Idle += t * pIdle
				bd.IdleTime += t
			}
		}
		cursor := 0.0
		for _, v := range tasks {
			charge(r.StartSec[v] - cursor)
			cursor = r.FinishSec[v]
		}
		charge(deadline - cursor)
	}
	r.Energy = bd
	return r
}

// islandEval recomputes the schedule timing for per-processor levels (fixed
// assignment and per-processor order) and integrates the energy; nil when
// the deadline is missed.
func islandEval(s *sched.Schedule, m *power.Model, levels []power.Level, deadline float64, ps bool, stats *Stats) *IslandsResult {
	stats.LevelsEvaluated++
	g := s.Graph
	n := g.NumTasks()
	r := &IslandsResult{
		Schedule:   s,
		ProcLevels: append([]power.Level(nil), levels...),
		StartSec:   make([]float64, n),
		FinishSec:  make([]float64, n),
	}
	// Forward pass in original start order: precedence and processor order
	// are preserved, only durations change.
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool { return s.Start[order[i]] < s.Start[order[j]] })
	procFree := make([]float64, s.NumProcs)
	var bd energy.Breakdown
	for _, v32 := range order {
		v := int(v32)
		p := s.Proc[v]
		lvl := levels[p]
		st := procFree[p]
		for _, pred := range g.Preds(v) {
			if r.FinishSec[pred] > st {
				st = r.FinishSec[pred]
			}
		}
		dur := float64(g.Weight(v)) / lvl.Freq
		fin := st + dur
		if fin > deadline*(1+1e-12) {
			return nil
		}
		r.StartSec[v] = st
		r.FinishSec[v] = fin
		procFree[p] = fin
		bd.Active += dur * m.LevelPower(lvl)
		bd.ActiveTime += dur
	}
	// Gaps per processor at that processor's level.
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		if len(tasks) == 0 {
			continue
		}
		lvl := levels[p]
		pIdle := m.IdlePower(lvl)
		breakeven := m.BreakevenTime(lvl)
		charge := func(t float64) {
			if t <= 0 {
				return
			}
			if ps && t > breakeven {
				bd.Sleep += t * m.PSleep
				bd.SleepTime += t
				bd.Overhead += m.EOverhead
				bd.Shutdowns++
			} else {
				bd.Idle += t * pIdle
				bd.IdleTime += t
			}
		}
		cursor := 0.0
		for _, v := range tasks {
			charge(r.StartSec[v] - cursor)
			cursor = r.FinishSec[v]
		}
		charge(deadline - cursor)
	}
	r.Energy = bd
	return r
}
