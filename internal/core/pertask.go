package core

import (
	"context"
	"fmt"
	"sort"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// ApproachPerTask names the per-task DVS extension in result listings.
const ApproachPerTask = "PerTask-DVS"

// PerTaskResult is the outcome of the per-task DVS extension: every task
// runs at its own discrete operating point.
type PerTaskResult struct {
	Graph    *dag.Graph
	NumProcs int
	Schedule *sched.Schedule

	// Levels[v] is the operating point of task v; StartSec/FinishSec are the
	// resulting per-task times in seconds.
	Levels    []power.Level
	StartSec  []float64
	FinishSec []float64

	Energy energy.Breakdown
	Stats  Stats
}

// TotalEnergy returns the total energy in joules.
func (r *PerTaskResult) TotalEnergy() float64 { return r.Energy.Total() }

// MakespanSec returns the end of the last task in seconds.
func (r *PerTaskResult) MakespanSec() float64 {
	var m float64
	for _, f := range r.FinishSec {
		if f > m {
			m = f
		}
	}
	return m
}

func (r *PerTaskResult) String() string {
	return fmt.Sprintf("%s: %.6g J on %d processor(s), makespan %.4gs",
		ApproachPerTask, r.TotalEnergy(), r.NumProcs, r.MakespanSec())
}

// SlackReclaimDVS is an *extension beyond the paper*: instead of one common
// frequency, every task is slowed down individually into its own slack, in
// the spirit of the greedy slack reclamation of Zhu, Melhem & Childers
// (IEEE TPDS 2003), which the paper cites as [1] and names in its future
// work. The paper's LIMIT-MF bound predicts this buys little except for
// fine-grain graphs with strict deadlines; this implementation makes that
// claim measurable.
//
// The algorithm searches processor counts like LAMPS; for each count it
// takes the LS-EDF schedule and assigns levels greedily in global start
// order: task v may finish as late as
//
//	lft(v) = D − (blevelAug(v) − w(v))/f_max,
//
// where blevelAug is the bottom level over the dependence graph *augmented
// with same-processor ordering edges* — so if v finishes by lft(v),
// everything after it can still complete by the deadline at maximum
// frequency. Each task then picks the slowest level (not below the critical
// level when PS is enabled) that fits its window. Idle gaps are charged at
// the critical level's idle power — the processor parks at an efficient
// voltage — and may be served by sleep exactly as in the +PS heuristics.
func SlackReclaimDVS(g *dag.Graph, cfg Config, ps bool) (*PerTaskResult, error) {
	return SlackReclaimDVSCtx(context.Background(), g, cfg, ps)
}

// SlackReclaimDVSCtx is SlackReclaimDVS with cooperative cancellation.
func SlackReclaimDVSCtx(ctx context.Context, g *dag.Graph, cfg Config, ps bool) (*PerTaskResult, error) {
	return (&Engine{Config: cfg}).PerTask(ctx, g, ps)
}

// PerTask runs the SlackReclaimDVS extension on the engine: the same
// phase-1/phase-2 candidate search as LAMPS, with each candidate schedule
// reclaimed per task (in parallel across candidates when a pool is set) and
// the cheapest kept, ties to the lower processor count.
func (e *Engine) PerTask(ctx context.Context, g *dag.Graph, ps bool) (*PerTaskResult, error) {
	if e.Config.faultsOn() {
		// Per-task stretching moves every slot boundary, which would strand
		// the statically planned backup slots; fault tolerance is limited to
		// the uniform-frequency heuristics for now.
		return nil, fmt.Errorf("%w: the per-task DVS extension does not support fault tolerance", ErrBadConfig)
	}
	r, err := e.newRun(ctx, g)
	if err != nil {
		return nil, err
	}
	defer r.a.runGuard()
	r.obs.phase(PhaseMinProcs)
	deadlineCycles := r.cfg.Deadline * r.fref
	hi := r.cfg.maxUsefulProcs(g)
	nmin, err := r.sc.minProcsForDeadline(deadlineCycles, hi)
	if err != nil {
		return nil, err
	}
	r.obs.phase(PhaseSaturation)
	nstop, err := r.sc.saturationPoint(nmin, hi)
	if err != nil {
		return nil, err
	}
	cands := r.a.cands[:0]
	for n := nmin; n <= nstop; n++ {
		cands = append(cands, candidate{n: n})
	}
	if nstop < hi {
		cands = append(cands, candidate{n: hi})
	}
	r.a.cands = cands
	if err := r.buildAll(cands); err != nil {
		return nil, err
	}

	r.obs.phase(PhaseReclaim)
	type slot struct {
		res   *PerTaskResult
		stats Stats
		err   error
	}
	slots := make([]slot, len(cands))
	r.each(len(cands), func(i int) {
		if r.pf != nil {
			slots[i].res, slots[i].err = reclaimSchedulePlatform(r.ctx, cands[i].s, r.pf, r.cfg.Deadline, ps, &slots[i].stats)
		} else {
			slots[i].res, slots[i].err = reclaimSchedule(r.ctx, cands[i].s, r.m, r.cfg.Deadline, ps, &slots[i].stats)
		}
	})

	var best *PerTaskResult
	stats := Stats{SchedulesBuilt: r.sc.builtCount()}
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		stats.Add(slots[i].stats)
		if best == nil || slots[i].res.TotalEnergy() < best.TotalEnergy() {
			best = slots[i].res
		}
	}
	best.Stats = stats
	// The winner's schedule is arena scratch about to be recycled; detach it.
	best.Schedule = best.Schedule.CloneCompact()
	return best, nil
}

// reclaimSchedule applies per-task DVS to one fixed schedule. It checks ctx
// once up front: one reclamation pass is the same order of work as one
// ListSchedule call, the engine's cancellation granularity.
func reclaimSchedule(ctx context.Context, s *sched.Schedule, m *power.Model, deadline float64, ps bool, stats *Stats) (*PerTaskResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := s.Graph
	n := g.NumTasks()
	fmax := m.FMax()
	if float64(s.Makespan)/fmax > deadline*(1+1e-12) {
		return nil, fmt.Errorf("%w: makespan %d cycles exceeds deadline %.6gs at f_max",
			ErrInfeasible, s.Makespan, deadline)
	}

	// Augmented bottom levels: dependence edges plus same-processor ordering
	// edges, processed in decreasing original start time so every augmented
	// successor is final before its predecessors.
	procNext := make([]int32, n)
	for v := range procNext {
		procNext[v] = -1
	}
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		for i := 0; i+1 < len(tasks); i++ {
			procNext[tasks[i]] = tasks[i+1]
		}
	}
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool { return s.Start[order[i]] > s.Start[order[j]] })
	blevelAug := make([]int64, n)
	for _, v := range order {
		var succMax int64
		for _, u := range g.Succs(int(v)) {
			if blevelAug[u] > succMax {
				succMax = blevelAug[u]
			}
		}
		if u := procNext[v]; u >= 0 && blevelAug[u] > succMax {
			succMax = blevelAug[u]
		}
		blevelAug[v] = g.Weight(int(v)) + succMax
	}

	// Greedy forward pass in increasing start order.
	res := &PerTaskResult{
		Graph:     g,
		NumProcs:  s.NumProcs,
		Schedule:  s,
		Levels:    make([]power.Level, n),
		StartSec:  make([]float64, n),
		FinishSec: make([]float64, n),
	}
	crit := m.CriticalLevel()
	minIdx := len(m.Levels()) - 1
	if ps {
		// Below the critical frequency, sleeping the saved time is cheaper
		// than stretching into it.
		minIdx = crit.Index
	}
	procFree := make([]float64, s.NumProcs)
	var bd energy.Breakdown
	idleLevel := crit // the parked operating point of an idle processor
	pIdle := m.IdlePower(idleLevel)
	breakeven := m.BreakevenTime(idleLevel)
	chargeGap := func(t float64) {
		if t <= 0 {
			return
		}
		if ps && t > breakeven {
			bd.Sleep += t * m.PSleep
			bd.SleepTime += t
			bd.Overhead += m.EOverhead
			bd.Shutdowns++
		} else {
			bd.Idle += t * pIdle
			bd.IdleTime += t
		}
	}

	for i := n - 1; i >= 0; i-- { // order is by decreasing start: walk back-to-front
		v := int(order[i])
		w := g.Weight(v)
		st := procFree[s.Proc[v]]
		for _, p := range g.Preds(v) {
			if res.FinishSec[p] > st {
				st = res.FinishSec[p]
			}
		}
		lft := deadline - float64(blevelAug[v]-w)/fmax
		// Slowest feasible level not below minIdx.
		chosen := m.MaxLevel()
		for idx := 1; idx <= minIdx; idx++ {
			l := m.Level(idx)
			if st+float64(w)/l.Freq <= lft*(1+1e-12) {
				chosen = l
			} else {
				break
			}
		}
		stats.LevelsEvaluated++
		fin := st + float64(w)/chosen.Freq
		if fin > deadline*(1+1e-9) {
			return nil, fmt.Errorf("%w: task %d cannot meet its window", ErrInfeasible, v)
		}
		res.Levels[v] = chosen
		res.StartSec[v] = st
		res.FinishSec[v] = fin
		procFree[s.Proc[v]] = fin
		bd.Active += float64(w) / chosen.Freq * m.LevelPower(chosen)
		bd.ActiveTime += float64(w) / chosen.Freq
	}

	// Gap accounting per processor: leading, interior and trailing idle.
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		if len(tasks) == 0 {
			continue // unused processors are off
		}
		cursor := 0.0
		for _, v := range tasks {
			chargeGap(res.StartSec[v] - cursor)
			cursor = res.FinishSec[v]
		}
		chargeGap(deadline - cursor)
	}
	res.Energy = bd
	return res, nil
}

// reclaimSchedulePlatform is reclaimSchedule on a heterogeneous platform:
// every task picks a level from the ladder of *its processor's class*, and
// idle gaps park at each class's own critical level. The latest-finish bound
// uses the slowest class's maximum frequency —
//
//	lft(v) = D − (blevelAug(v) − w(v))/min_c f_max(c)
//
// — which is conservative (every downstream task runs at its own class's
// maximum or faster), so a task finishing by lft(v) can never push the tail
// past the deadline whatever the downstream placement.
func reclaimSchedulePlatform(ctx context.Context, s *sched.Schedule, pf *power.Platform, deadline float64, ps bool, stats *Stats) (*PerTaskResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := s.Graph
	n := g.NumTasks()
	if float64(s.Makespan)/pf.RefFMax() > deadline*(1+1e-12) {
		return nil, fmt.Errorf("%w: makespan %d timeline cycles exceeds deadline %.6gs at full speed",
			ErrInfeasible, s.Makespan, deadline)
	}
	fmin := pf.ClassModel(0).FMax()
	for c := 1; c < pf.NumClasses(); c++ {
		if f := pf.ClassModel(c).FMax(); f < fmin {
			fmin = f
		}
	}

	// Augmented bottom levels, exactly as in the homogeneous pass.
	procNext := make([]int32, n)
	for v := range procNext {
		procNext[v] = -1
	}
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		for i := 0; i+1 < len(tasks); i++ {
			procNext[tasks[i]] = tasks[i+1]
		}
	}
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool { return s.Start[order[i]] > s.Start[order[j]] })
	blevelAug := make([]int64, n)
	for _, v := range order {
		var succMax int64
		for _, u := range g.Succs(int(v)) {
			if blevelAug[u] > succMax {
				succMax = blevelAug[u]
			}
		}
		if u := procNext[v]; u >= 0 && blevelAug[u] > succMax {
			succMax = blevelAug[u]
		}
		blevelAug[v] = g.Weight(int(v)) + succMax
	}

	res := &PerTaskResult{
		Graph:     g,
		NumProcs:  s.NumProcs,
		Schedule:  s,
		Levels:    make([]power.Level, n),
		StartSec:  make([]float64, n),
		FinishSec: make([]float64, n),
	}
	procFree := make([]float64, s.NumProcs)
	var bd energy.Breakdown

	for i := n - 1; i >= 0; i-- { // order is by decreasing start: walk back-to-front
		v := int(order[i])
		w := g.Weight(v)
		m := pf.ModelOf(int(s.Proc[v]))
		minIdx := len(m.Levels()) - 1
		if ps {
			minIdx = m.CriticalLevel().Index
		}
		st := procFree[s.Proc[v]]
		for _, p := range g.Preds(v) {
			if res.FinishSec[p] > st {
				st = res.FinishSec[p]
			}
		}
		lft := deadline - float64(blevelAug[v]-w)/fmin
		chosen := m.MaxLevel()
		for idx := 1; idx <= minIdx; idx++ {
			l := m.Level(idx)
			if st+float64(w)/l.Freq <= lft*(1+1e-12) {
				chosen = l
			} else {
				break
			}
		}
		stats.LevelsEvaluated++
		fin := st + float64(w)/chosen.Freq
		if fin > deadline*(1+1e-9) {
			return nil, fmt.Errorf("%w: task %d cannot meet its window", ErrInfeasible, v)
		}
		res.Levels[v] = chosen
		res.StartSec[v] = st
		res.FinishSec[v] = fin
		procFree[s.Proc[v]] = fin
		bd.Active += float64(w) / chosen.Freq * m.LevelPower(chosen)
		bd.ActiveTime += float64(w) / chosen.Freq
	}

	// Gap accounting per processor, parked at its own class's critical level.
	for p := 0; p < s.NumProcs; p++ {
		tasks := s.TasksOn(p)
		if len(tasks) == 0 {
			continue // unused processors are off
		}
		m := pf.ModelOf(p)
		idleLevel := m.CriticalLevel()
		pIdle := m.IdlePower(idleLevel)
		breakeven := m.BreakevenTime(idleLevel)
		charge := func(t float64) {
			if t <= 0 {
				return
			}
			if ps && t > breakeven {
				bd.Sleep += t * m.PSleep
				bd.SleepTime += t
				bd.Overhead += m.EOverhead
				bd.Shutdowns++
			} else {
				bd.Idle += t * pIdle
				bd.IdleTime += t
			}
		}
		cursor := 0.0
		for _, v := range tasks {
			charge(res.StartSec[v] - cursor)
			cursor = res.FinishSec[v]
		}
		charge(deadline - cursor)
	}
	res.Energy = bd
	return res, nil
}
