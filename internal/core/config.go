// Package core implements the leakage-aware multiprocessor scheduling
// heuristics of de Langen & Juurlink (Section 4):
//
//   - Schedule & Stretch (S&S): schedule on as many processors as reduce the
//     makespan, then use all slack before the deadline for DVS.
//   - LAMPS: additionally search for the number of processors that minimises
//     the total energy, turning the remaining processors off.
//   - S&S+PS and LAMPS+PS: additionally balance DVS against temporarily
//     shutting idle processors down during gaps and trailing slack.
//   - LIMIT-SF and LIMIT-MF: absolute lower bounds for, respectively, a
//     single constant frequency and per-processor time-varying frequencies.
//
// All heuristics schedule with list scheduling + earliest deadline first and
// keep one frequency for all processors for the whole schedule, exactly as
// in the paper.
package core

import (
	"errors"
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// Errors returned by the heuristics.
var (
	// ErrInfeasible is returned when the task graph cannot meet the deadline
	// even with unlimited processors at maximum frequency.
	ErrInfeasible = errors.New("core: deadline infeasible even at maximum frequency")
	// ErrBadConfig is returned for invalid configurations.
	ErrBadConfig = errors.New("core: invalid configuration")
)

// Config carries the platform and problem parameters shared by all
// heuristics.
type Config struct {
	// Model is the processor power model. Nil selects power.Default70nm().
	// Mutually exclusive with Platform.
	Model *power.Model

	// Platform optionally describes a heterogeneous machine: an ordered
	// vector of processors drawn from named core classes, each with its own
	// power model and frequency ladder. Nil (or a single-class platform)
	// reproduces the paper's identical-processor machine exactly — a
	// homogeneous Platform of n copies of model m yields results
	// byte-identical to Model: m with MaxProcs: n. Setting both Model and
	// Platform is rejected by validate.
	Platform *power.Platform

	// Deadline is the global deadline in seconds. The paper evaluates
	// deadlines of 1.5, 2, 4 and 8 times the critical path length at maximum
	// frequency; DeadlineFactor is a convenience for that.
	Deadline float64

	// MaxProcs optionally caps the number of processors considered
	// (0 = bounded only by the graph's parallelism).
	MaxProcs int

	// Priorities optionally overrides the list-scheduling priority policy
	// (lower value = dispatched first among ready tasks). Nil selects EDF,
	// the policy used throughout the paper. Exposed for the ablation
	// experiments suggested in the paper's Section 6.
	Priorities func(*dag.Graph) []int64

	// SelfCheck runs every schedule the engine builds through the
	// independent first-principles verifier (internal/verify) and re-derives
	// the winning result's energy breakdown with the verifier's linear gap
	// walk, requiring bit-for-bit agreement. Any violation surfaces as an
	// error carrying a minimal repro dump and matching verify.ErrViolation.
	// Off by default: when false the engine takes no verification branch at
	// all, so the hot paths (and their zero-allocation guarantees) are
	// untouched.
	SelfCheck bool

	// Faults, when non-nil with K > 0, requests k-fault-tolerant schedules:
	// every task gets a statically reserved backup slot on another
	// processor, the deadline must cover the recovery makespan (the latest
	// backup finish), and the reserved slots are charged as idle time in the
	// leakage-aware objective. Nil — or K == 0 — takes the legacy path with
	// no fault-tolerance branch at all, so K=0 results are byte-identical to
	// a config without Faults.
	Faults *FaultConfig

	// PruneSweep stops each +PS level sweep at the first operating point
	// whose total energy strictly exceeds the sweep's running minimum,
	// relying on the total energy of a fixed schedule being unimodal in the
	// supply voltage. The default (false) sweeps every feasible level
	// exhaustively, exactly as the paper does, so paper-fidelity results are
	// unchanged unless this is opted into. Levels skipped by the pruned walk
	// are counted in Stats.LevelsSkipped.
	PruneSweep bool
}

// FaultPolicy selects where backup slots go; re-exported from
// internal/sched for API convenience.
type FaultPolicy = sched.FaultPolicy

// The fault policies understood by FaultConfig.Policy.
const (
	// FaultBackupAnywhere places each backup on whichever other processor
	// finishes it earliest.
	FaultBackupAnywhere = sched.BackupAnywhere
	// FaultPrimaryHPBackupLP keeps backups off the platform's reference
	// (HP) class whenever possible; meaningful only on a heterogeneous
	// platform.
	FaultPrimaryHPBackupLP = sched.PrimaryHPBackupLP
)

// FaultConfig parameterises k-fault tolerance.
type FaultConfig struct {
	// K is the number of transient task faults the schedule must survive
	// while still meeting the deadline. Every task carries a backup
	// regardless of K (the static plan is K-independent — see
	// sched.PlanBackups), so K gates only whether fault tolerance is on
	// (K > 0) and how large a fault-pattern space the verification campaign
	// replays. K == 0 disables fault tolerance entirely.
	K int

	// Policy selects backup placement. Empty selects FaultBackupAnywhere.
	Policy FaultPolicy
}

// faultsOn reports whether the run takes the fault-tolerant path.
func (c *Config) faultsOn() bool {
	return c.Faults != nil && c.Faults.K > 0
}

// faultPolicy returns the effective backup placement policy.
func (c *Config) faultPolicy() sched.FaultPolicy {
	if c.Faults == nil || c.Faults.Policy == "" {
		return sched.BackupAnywhere
	}
	return c.Faults.Policy
}

// DeadlineFactor returns a Config whose deadline is factor times the
// critical path length of g at the model's maximum frequency, the parametric
// form used in the paper's evaluation.
func DeadlineFactor(g *dag.Graph, m *power.Model, factor float64) Config {
	if m == nil {
		m = power.Default70nm()
	}
	return Config{
		Model:    m,
		Deadline: factor * float64(g.CriticalPathLength()) / m.FMax(),
	}
}

// model returns the single power model of the homogeneous code path: the
// explicit Model, a homogeneous Platform's only class, or the default. The
// heterogeneous engine path never consults it.
func (c *Config) model() *power.Model {
	if c.Model != nil {
		return c.Model
	}
	if c.Platform != nil {
		return c.Platform.ClassModel(0)
	}
	return power.Default70nm()
}

// heterogeneous reports whether the config selects the heterogeneous engine
// path: a platform with more than one core class. A nil or single-class
// platform runs the legacy homogeneous path bit for bit.
func (c *Config) heterogeneous() bool {
	return c.Platform != nil && !c.Platform.IsHomogeneous()
}

func (c *Config) validate(g *dag.Graph) error {
	if g == nil || g.NumTasks() == 0 {
		return fmt.Errorf("%w: empty graph", ErrBadConfig)
	}
	if c.Deadline <= 0 {
		return fmt.Errorf("%w: deadline %g", ErrBadConfig, c.Deadline)
	}
	if c.MaxProcs < 0 {
		return fmt.Errorf("%w: MaxProcs %d", ErrBadConfig, c.MaxProcs)
	}
	if c.Model != nil && c.Platform != nil {
		return fmt.Errorf("%w: both Model and Platform set", ErrBadConfig)
	}
	if c.Faults != nil {
		if c.Faults.K < 0 {
			return fmt.Errorf("%w: Faults.K %d", ErrBadConfig, c.Faults.K)
		}
		switch c.Faults.Policy {
		case "", FaultBackupAnywhere, FaultPrimaryHPBackupLP:
		default:
			return fmt.Errorf("%w: unknown fault policy %q", ErrBadConfig, c.Faults.Policy)
		}
		if c.faultsOn() {
			if c.MaxProcs == 1 {
				return fmt.Errorf("%w: fault tolerance needs at least two processors, MaxProcs is 1", ErrBadConfig)
			}
			if c.Platform != nil && c.Platform.NumProcs() < 2 {
				return fmt.Errorf("%w: fault tolerance needs at least two processors, platform has %d",
					ErrBadConfig, c.Platform.NumProcs())
			}
		}
	}
	return nil
}

// maxUsefulProcs returns the largest processor count worth considering:
// the graph's maximum width (with that many processors LS-EDF dispatches
// every task at its earliest start, achieving the CPL makespan), clipped by
// MaxProcs and — when a Platform is set — by the platform's physical size.
// On a heterogeneous machine the width cap does not apply: the processor
// count selects a prefix of the platform vector, so counts beyond the
// graph's width can still shorten the schedule by bringing faster-class
// cores into play (a serial chain needs the whole prefix up to the HP core).
func (c *Config) maxUsefulProcs(g *dag.Graph) int {
	n := g.MaxWidth()
	if c.heterogeneous() {
		n = c.Platform.NumProcs()
	}
	if c.MaxProcs > 0 && c.MaxProcs < n {
		n = c.MaxProcs
	}
	if c.Platform != nil && c.Platform.NumProcs() < n {
		n = c.Platform.NumProcs()
	}
	if n < 1 {
		n = 1
	}
	if c.faultsOn() && n < 2 {
		// A backup never shares its primary's processor, so fault-tolerant
		// runs need a second one even for a serial graph. validate already
		// rejected machines that cannot provide it.
		n = 2
	}
	return n
}

// DeadlineFactorPlatform is DeadlineFactor for a heterogeneous platform: the
// deadline is factor times the critical path length at the platform's
// reference frequency — the best case, with the whole critical path on the
// fastest class.
func DeadlineFactorPlatform(g *dag.Graph, pf *power.Platform, factor float64) Config {
	return Config{
		Platform: pf,
		Deadline: factor * float64(g.CriticalPathLength()) / pf.RefFMax(),
	}
}
