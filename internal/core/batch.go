package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lamps/internal/dag"
)

// ErrBatchPanic is the error recorded for a batch request whose heuristic
// panicked. The panic is confined to that request's result slot; the other
// requests of the batch are unaffected.
var ErrBatchPanic = errors.New("core: batch request panicked")

// BatchRequest is one independent scheduling problem inside a batch: a
// graph, an approach and a full per-request Config (deadline, processor
// cap, model, self-check). Requests in one batch share nothing but the
// worker pool, so any mix of graphs and configurations is valid.
type BatchRequest struct {
	Approach string
	Graph    *dag.Graph
	Config   Config
}

// BatchResult is the outcome of one BatchRequest. Exactly one of Result and
// Err is set, with the same values a serial RunCtx call for the same
// request would have produced. Elapsed is the wall time the request's run
// took (zero for requests that were never started because the batch
// context expired first).
type BatchResult struct {
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// RunBatch schedules len(reqs) independent requests and returns one result
// per request, in request order. It is the fleet-shaped entry point: the
// paper's heuristics are microseconds-to-milliseconds per DAG, so a
// service wins by keeping every core busy with whole requests rather than
// by splitting one run — RunBatch parallelises across e.Pool at
// one-request granularity and runs each request's internal search
// serially.
//
// Contract:
//
//   - Determinism: result slot i is written only by request i's worker, and
//     each request executes exactly as a serial RunCtx call would (same
//     Result bytes, same Stats, same error taxonomy), regardless of the
//     pool size. Only wall-clock timing varies with parallelism.
//   - Isolation: a request that fails — invalid config, infeasible
//     deadline, even a panicking heuristic (ErrBatchPanic) — poisons only
//     its own slot; every other request still runs to completion.
//   - Cancellation: once ctx is done, requests that have not started are
//     completed with ctx.Err() without running, while requests already in
//     flight abort cooperatively (within one list-scheduling call) and
//     report ctx.Err() themselves. RunBatch returns only after every
//     started request has finished, so no goroutines outlive the call.
//   - Scratch: each request draws a whole run arena from a package-level
//     sync.Pool — run state, candidate and level-sweep slices, the
//     per-processor-count schedule cache and its shells — and the
//     scheduling kernels and gap profiles underneath come from their own
//     pools, so a steady stream of batches runs within a fixed
//     per-request allocation budget (see TestRunBatchSteadyStateZeroAlloc)
//     instead of re-allocating scratch per request.
//
// A nil e.Pool runs the batch serially in request order. The engine's own
// Config and Observer are not used: each request carries its Config, and
// per-request observation would interleave nondeterministically across a
// parallel batch.
func (e *Engine) RunBatch(ctx context.Context, reqs []BatchRequest) []BatchResult {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]BatchResult, len(reqs))
	if e.Pool == nil {
		for i := range reqs {
			if err := ctx.Err(); err != nil {
				out[i] = BatchResult{Err: err}
				continue
			}
			out[i] = runOne(ctx, &reqs[i])
		}
		return out
	}
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i := range reqs {
		go func(i int) {
			defer wg.Done()
			if err := e.Pool.Do(ctx, func() { out[i] = runOne(ctx, &reqs[i]) }); err != nil {
				// Admission denied: the batch context expired while this
				// request queued for a slot. It never ran, which is exactly
				// what a serial loop reaching it after cancellation would do.
				out[i] = BatchResult{Err: err}
			}
		}(i)
	}
	wg.Wait()
	return out
}

// runOne executes a single batch request behind a recover barrier. The
// throwaway sub-engine makes the execution shape identical to RunCtx — a
// serial inner search — while the heavy scratch (scheduling kernels, gap
// profiles) still comes from the shared sync.Pools, so the per-request
// engine value is the only per-request control allocation.
func runOne(ctx context.Context, req *BatchRequest) (br BatchResult) {
	start := time.Now()
	defer func() {
		br.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			br.Result, br.Err = nil, fmt.Errorf("%w: %v", ErrBatchPanic, p)
		}
	}()
	eng := Engine{Config: req.Config}
	br.Result, br.Err = eng.Run(ctx, req.Approach, req.Graph)
	return br
}
