package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// coarseWeight is the paper's coarse-grain scaling: weight 1 = 3.1e6 cycles
// (1 ms at maximum frequency).
const coarseWeight = 3100000

// fineWeight is the fine-grain scaling: weight 1 = 3.1e4 cycles (10 µs).
const fineWeight = 31000

func buildFig4a(t testing.TB, scale int64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("fig4a")
	for _, w := range []int64{2, 6, 4, 4, 2} {
		b.AddTask(w)
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 4)
	b.AddEdge(2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.ScaleWeights(scale)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomGraph(rng *rand.Rand, n int, p float64, scale int64) *dag.Graph {
	b := dag.NewBuilder("rnd")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(300)+1) * scale)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestSSBasics(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 1.5)
	r, err := ScheduleAndStretch(g, cfg)
	if err != nil {
		t.Fatalf("S&S: %v", err)
	}
	if r.Approach != ApproachSS {
		t.Errorf("Approach = %q", r.Approach)
	}
	// The Fig. 4 example saturates at 3 processors (T2, T3, T4 in parallel).
	if r.NumProcs != 3 {
		t.Errorf("S&S NumProcs = %d, want 3", r.NumProcs)
	}
	if err := r.Schedule.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	// Deadline 1.5x CPL: the schedule has makespan = CPL, so a stretch
	// factor up to 1.5 is available. The chosen level must be the slowest
	// feasible one.
	if r.MakespanSec() > cfg.Deadline*(1+1e-12) {
		t.Errorf("S&S misses deadline: %g > %g", r.MakespanSec(), cfg.Deadline)
	}
	if r.Level.Index+1 < len(m.Levels()) {
		slower := m.Level(r.Level.Index + 1)
		if float64(r.Schedule.Makespan)/slower.Freq <= cfg.Deadline {
			t.Errorf("S&S did not use the slowest feasible level")
		}
	}
	if r.TotalEnergy() <= 0 {
		t.Errorf("non-positive energy")
	}
	if r.String() == "" {
		t.Errorf("empty String()")
	}
}

func TestLAMPSPicksFewerProcessorsOnLooseDeadline(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 8)
	ss, err := ScheduleAndStretch(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	la, err := LAMPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if la.NumProcs > ss.NumProcs {
		t.Errorf("LAMPS uses %d procs, S&S %d", la.NumProcs, ss.NumProcs)
	}
	if la.TotalEnergy() > ss.TotalEnergy()*(1+1e-9) {
		t.Errorf("LAMPS energy %g > S&S %g", la.TotalEnergy(), ss.TotalEnergy())
	}
	// With a deadline 8x the CPL the work (18 units) fits comfortably on one
	// processor (needs 18/80 of an 8-CPL window per unit? work/CPL = 1.8, so
	// 1 processor at full speed finishes in 1.8 CPL < 8 CPL).
	if la.NumProcs != 1 {
		t.Errorf("LAMPS NumProcs = %d, want 1 on a loose deadline", la.NumProcs)
	}
}

func TestFig7aLAMPSTwoProcessors(t *testing.T) {
	// With a deadline of 1.25x CPL and coarse weights, one processor cannot
	// finish (work 18 > 12.5) but two can (makespan 10 <= 12.5); LAMPS
	// should prefer 2 processors over 3 since both reach the same makespan.
	g := buildFig4a(t, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 1.25)
	r, err := LAMPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumProcs != 2 {
		t.Errorf("LAMPS NumProcs = %d, want 2 (Fig. 7a)", r.NumProcs)
	}
}

func TestPSVariantsNeverWorse(t *testing.T) {
	m := power.Default70nm()
	for _, scale := range []int64{coarseWeight, fineWeight} {
		for _, factor := range []float64{1.5, 2, 4, 8} {
			g := buildFig4a(t, scale)
			cfg := DeadlineFactor(g, m, factor)
			ss, err := ScheduleAndStretch(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ssps, err := ScheduleAndStretchPS(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			la, err := LAMPS(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			laps, err := LAMPSPS(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ssps.TotalEnergy() > ss.TotalEnergy()*(1+1e-9) {
				t.Errorf("scale %d factor %g: S&S+PS worse than S&S", scale, factor)
			}
			if laps.TotalEnergy() > la.TotalEnergy()*(1+1e-9) {
				t.Errorf("scale %d factor %g: LAMPS+PS worse than LAMPS", scale, factor)
			}
			if la.TotalEnergy() > ss.TotalEnergy()*(1+1e-9) {
				t.Errorf("scale %d factor %g: LAMPS worse than S&S", scale, factor)
			}
		}
	}
}

func TestLimitsOrdering(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	for _, factor := range []float64{1.5, 2, 4, 8} {
		cfg := DeadlineFactor(g, m, factor)
		sf, err := LimitSF(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := LimitMF(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mf.TotalEnergy() > sf.TotalEnergy()*(1+1e-12) {
			t.Errorf("factor %g: LIMIT-MF %g > LIMIT-SF %g", factor, mf.TotalEnergy(), sf.TotalEnergy())
		}
		laps, err := LAMPSPS(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if laps.TotalEnergy() < sf.TotalEnergy()*(1-1e-9) {
			t.Errorf("factor %g: heuristic beats the SF lower bound: %g < %g",
				factor, laps.TotalEnergy(), sf.TotalEnergy())
		}
	}
}

// TestLimitsCoincideOnLooseDeadline checks the paper's observation that for
// loose deadlines (4x or 8x the CPL) LIMIT-MF consumes the same energy as
// LIMIT-SF, because LIMIT-SF can descend all the way to the critical
// frequency.
func TestLimitsCoincideOnLooseDeadline(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	for _, factor := range []float64{4, 8} {
		cfg := DeadlineFactor(g, m, factor)
		sf, _ := LimitSF(g, cfg)
		mf, _ := LimitMF(g, cfg)
		if sf.TotalEnergy() != mf.TotalEnergy() {
			t.Errorf("factor %g: SF %g != MF %g", factor, sf.TotalEnergy(), mf.TotalEnergy())
		}
		if sf.Level.Index != m.CriticalLevel().Index {
			t.Errorf("factor %g: SF level %v, want critical", factor, sf.Level)
		}
	}
}

func TestLimitSFTightDeadlineLevel(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 1.5)
	sf, err := LimitSF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// f must be at least CPL/D = fmax/1.5 = 0.667 fmax > critical 0.41.
	if sf.Level.Norm < 1/1.5-1e-9 {
		t.Errorf("SF level %v too slow for deadline", sf.Level)
	}
}

func TestInfeasibleDeadline(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 0.5) // below the CPL: impossible
	for _, approach := range []string{ApproachSS, ApproachLAMPS, ApproachSSPS, ApproachLAMPSPS, ApproachLimitSF} {
		_, err := Run(approach, g, cfg)
		if err == nil {
			t.Errorf("%s: no error on infeasible deadline", approach)
		}
	}
	// LIMIT-MF ignores the deadline by definition.
	if _, err := LimitMF(g, cfg); err != nil {
		t.Errorf("LIMIT-MF should ignore the deadline: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	if _, err := ScheduleAndStretch(g, Config{Deadline: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative deadline err = %v", err)
	}
	if _, err := LAMPS(g, Config{Deadline: 1, MaxProcs: -2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative MaxProcs err = %v", err)
	}
	if _, err := Run("nope", g, Config{Deadline: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown approach err = %v", err)
	}
	if _, err := ScheduleAndStretch(nil, Config{Deadline: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil graph err = %v", err)
	}
}

func TestRunDispatch(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 2)
	for _, a := range Approaches {
		r, err := Run(a, g, cfg)
		if err != nil {
			t.Errorf("Run(%s): %v", a, err)
			continue
		}
		if r.Approach != a {
			t.Errorf("Run(%s) returned approach %s", a, r.Approach)
		}
	}
}

func TestMaxProcsCap(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 2)
	cfg.MaxProcs = 2
	ss, err := ScheduleAndStretch(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumProcs > 2 {
		t.Errorf("MaxProcs violated: %d", ss.NumProcs)
	}
}

func TestCustomPriorityPolicy(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, m, 2)
	cfg.Priorities = sched.FIFOPriorities
	r, err := LAMPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(); err != nil {
		t.Errorf("FIFO-policy schedule invalid: %v", err)
	}
}

func TestNLowerBound(t *testing.T) {
	g := buildFig4a(t, 1) // work = 18
	tests := []struct {
		deadline float64
		want     int
	}{
		{18, 1},
		{17.9, 2},
		{9, 2},
		{8.9, 3},
		{1, 18},
		{1000, 1},
	}
	for _, tc := range tests {
		if got := nLowerBound(g, tc.deadline); got != tc.want {
			t.Errorf("nLowerBound(D=%g) = %d, want %d", tc.deadline, got, tc.want)
		}
	}
}

func TestEnergySaving(t *testing.T) {
	if got := EnergySaving(100, 60, 50); got != 0.8 {
		t.Errorf("EnergySaving = %g, want 0.8", got)
	}
	if got := EnergySaving(100, 100, 100); got != 1 {
		t.Errorf("EnergySaving with zero headroom = %g, want 1", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	m := power.Default70nm()
	g := randomGraph(rand.New(rand.NewSource(3)), 40, 0.1, coarseWeight)
	cfg := DeadlineFactor(g, m, 2)
	r, err := LAMPSPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.SchedulesBuilt == 0 || r.Stats.LevelsEvaluated == 0 {
		t.Errorf("stats not populated: %+v", r.Stats)
	}
}

// TestPropertyDominanceChain verifies, on random graphs across grain sizes
// and deadline factors, the full ordering the paper relies on:
//
//	LIMIT-MF <= LIMIT-SF <= LAMPS+PS <= min(LAMPS, S&S+PS) and
//	LAMPS <= S&S, S&S+PS <= S&S, with all heuristics meeting the deadline.
func TestPropertyDominanceChain(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawP, rawF uint8, fine bool) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := int64(coarseWeight)
		if fine {
			scale = fineWeight
		}
		n := int(rawN%30) + 2
		g := randomGraph(rng, n, float64(rawP%30)/100, scale)
		factor := []float64{1.5, 2, 4, 8}[rawF%4]
		cfg := DeadlineFactor(g, m, factor)

		res := make(map[string]*Result)
		for _, a := range Approaches {
			r, err := Run(a, g, cfg)
			if err != nil {
				t.Logf("%s: %v", a, err)
				return false
			}
			res[a] = r
			if r.Schedule != nil {
				if err := r.Schedule.Validate(); err != nil {
					t.Logf("%s: invalid schedule: %v", a, err)
					return false
				}
				if r.MakespanSec() > cfg.Deadline*(1+1e-9) {
					t.Logf("%s misses deadline", a)
					return false
				}
			}
		}
		e := func(a string) float64 { return res[a].TotalEnergy() }
		const tol = 1 + 1e-9
		checks := []struct {
			lo, hi string
		}{
			{ApproachLimitMF, ApproachLimitSF},
			{ApproachLimitSF, ApproachLAMPSPS},
			{ApproachLAMPSPS, ApproachLAMPS},
			{ApproachLAMPSPS, ApproachSSPS},
			{ApproachLAMPS, ApproachSS},
			{ApproachSSPS, ApproachSS},
		}
		for _, c := range checks {
			if e(c.lo) > e(c.hi)*tol {
				t.Logf("%s (%g) > %s (%g) [n=%d factor=%g fine=%v]",
					c.lo, e(c.lo), c.hi, e(c.hi), n, factor, fine)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLAMPSBeatsAnyFixedN: LAMPS's processor count is at least as
// good as scheduling on the S&S processor count with a plain stretch, since
// that configuration is inside LAMPS's search space whenever it is reached
// before makespan saturation.
func TestPropertyLooseDeadlineBigWin(t *testing.T) {
	// For very loose deadlines and wide graphs, LAMPS must save a
	// substantial amount versus S&S (the paper reports 45% on average at
	// 8x); we assert a conservative 10% on clearly-parallel graphs.
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 60, 0.02, coarseWeight)
	if g.Parallelism() < 4 {
		t.Skip("graph not parallel enough for this check")
	}
	cfg := DeadlineFactor(g, m, 8)
	ss, err := ScheduleAndStretch(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	la, err := LAMPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if la.TotalEnergy() > 0.9*ss.TotalEnergy() {
		t.Errorf("LAMPS saves only %.1f%% vs S&S on loose deadline",
			100*(1-la.TotalEnergy()/ss.TotalEnergy()))
	}
}

func BenchmarkLAMPSPS200Nodes(b *testing.B) {
	m := power.Default70nm()
	g := randomGraph(rand.New(rand.NewSource(5)), 200, 0.02, coarseWeight)
	cfg := DeadlineFactor(g, m, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LAMPSPS(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
