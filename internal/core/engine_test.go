package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/workpool"
)

// renderForDiff projects a Result onto its externally visible fields —
// everything the serving layer's JSON rendering exposes, including Stats —
// as one deterministic byte string. The determinism gate compares these
// byte-for-byte.
func renderForDiff(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(struct {
		Approach string
		NumProcs int
		Level    power.Level
		Energy   energy.Breakdown
		Stats    Stats
	}{r.Approach, r.NumProcs, r.Level, r.Energy, r.Stats}); err != nil {
		t.Fatal(err)
	}
	if r.Schedule != nil {
		if err := r.Schedule.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestEngineDeterminismGate is the serial-vs-parallel contract: for every
// approach, a parallel engine must return byte-identical results — energy,
// level, processor count, schedule and Stats — to the serial one, on a
// spread of seeded random graphs.
func TestEngineDeterminismGate(t *testing.T) {
	m := power.Default70nm()
	pool := workpool.NewPool(8)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40+int(seed)*15, 0.06, coarseWeight)
		cfg := DeadlineFactor(g, m, 1.0+float64(seed))
		for _, approach := range Approaches {
			serialEng := Engine{Config: cfg}
			parallelEng := Engine{Config: cfg, Pool: pool}
			sr, serr := serialEng.Run(context.Background(), approach, g)
			pr, perr := parallelEng.Run(context.Background(), approach, g)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("seed %d %s: serial err %v, parallel err %v", seed, approach, serr, perr)
			}
			if serr != nil {
				continue
			}
			if !bytes.Equal(renderForDiff(t, sr), renderForDiff(t, pr)) {
				t.Errorf("seed %d %s: parallel result differs from serial\nserial:   %s\nparallel: %s",
					seed, approach, renderForDiff(t, sr), renderForDiff(t, pr))
			}
		}
	}
	if got := pool.InFlight(); got != 0 {
		t.Errorf("pool still holds %d slots after all runs returned", got)
	}
}

// TestEnginePriorityMemo: EDF priorities are computed once per graph and
// reused across runs of the same engine, invalidated when the graph changes,
// and never memoised for custom priority policies (closures cannot be
// compared, so each run must call the override afresh).
func TestEnginePriorityMemo(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(17))
	g1 := randomGraph(rng, 40, 0.08, coarseWeight)
	g2 := randomGraph(rng, 40, 0.08, coarseWeight)

	eng := Engine{Config: DeadlineFactor(g1, m, 4)}
	p1 := eng.priorities(g1)
	p2 := eng.priorities(g1)
	if len(p1) == 0 || &p1[0] != &p2[0] {
		t.Fatalf("EDF priorities recomputed for the same graph")
	}
	if _, err := eng.Run(context.Background(), ApproachSS, g1); err != nil {
		t.Fatal(err)
	}
	if p3 := eng.priorities(g1); &p3[0] != &p1[0] {
		t.Fatalf("memo lost across a Run on the same graph")
	}
	q := eng.priorities(g2)
	if &q[0] == &p1[0] {
		t.Fatalf("memo not invalidated when the graph changed")
	}

	calls := 0
	custom := Engine{Config: DeadlineFactor(g1, m, 4)}
	custom.Config.Priorities = func(gr *dag.Graph) []int64 {
		calls++
		return make([]int64, gr.NumTasks())
	}
	custom.priorities(g1)
	custom.priorities(g1)
	if calls != 2 {
		t.Fatalf("custom priority policy called %d times, want 2 (never memoised)", calls)
	}
}

// cancelAfterBuilds cancels a context after the n-th fresh schedule build,
// simulating a client that gives up mid-phase-2.
type cancelAfterBuilds struct {
	n      int32
	cancel context.CancelFunc
}

func (c *cancelAfterBuilds) OnPhase(string) {}
func (c *cancelAfterBuilds) OnScheduleBuilt(int, int64) {
	if atomic.AddInt32(&c.n, -1) == 0 {
		c.cancel()
	}
}
func (c *cancelAfterBuilds) OnLevelEvaluated(power.Level, energy.Breakdown) {}

// TestEngineCancelMidSearch cancels a LAMPS+PS run from inside the search
// (after the second fresh build) and checks the cancellation contract: the
// run returns context.Canceled, and every pool slot is back by the time Run
// returns.
func TestEngineCancelMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 120, 0.04, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 4)

	for _, workers := range []int{0, 4} { // 0 = serial engine, 4 = parallel
		var pool *workpool.Pool
		if workers > 0 {
			pool = workpool.NewPool(workers)
		}
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancelAfterBuilds{n: 2, cancel: cancel}
		eng := Engine{Config: cfg, Observer: obs, Pool: pool}
		r, err := eng.Run(ctx, ApproachLAMPSPS, g)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if r != nil {
			t.Errorf("workers=%d: cancelled run returned a result", workers)
		}
		if pool != nil {
			if got := pool.InFlight(); got != 0 {
				t.Errorf("workers=%d: cancelled run left %d pool slots held", workers, got)
			}
		}
	}
}

// TestEngineCancelBeforeStart: an already-cancelled context fails every
// wrapper without doing any work.
func TestEngineCancelBeforeStart(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() (*Result, error){
		"LAMPSCtx":              func() (*Result, error) { return LAMPSCtx(ctx, g, cfg) },
		"LAMPSPSCtx":            func() (*Result, error) { return LAMPSPSCtx(ctx, g, cfg) },
		"ScheduleAndStretchCtx": func() (*Result, error) { return ScheduleAndStretchCtx(ctx, g, cfg) },
		"LimitSFCtx":            func() (*Result, error) { return LimitSFCtx(ctx, g, cfg) },
		"LimitMFCtx":            func() (*Result, error) { return LimitMFCtx(ctx, g, cfg) },
		"RunCtx":                func() (*Result, error) { return RunCtx(ctx, ApproachSSPS, g, cfg) },
	} {
		if _, err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
	if _, err := SlackReclaimDVSCtx(ctx, g, cfg, true); !errors.Is(err, context.Canceled) {
		t.Errorf("SlackReclaimDVSCtx: err = %v, want context.Canceled", err)
	}
	if _, err := VoltageIslandsCtx(ctx, g, cfg, true); !errors.Is(err, context.Canceled) {
		t.Errorf("VoltageIslandsCtx: err = %v, want context.Canceled", err)
	}
}

// TestPruneSweepMatchesExhaustive: under the model's unimodal energy-in-V
// curves the pruned sweep must pick the same winner as the exhaustive one,
// while provably skipping work (LevelsSkipped > 0, fewer LevelsEvaluated).
func TestPruneSweepMatchesExhaustive(t *testing.T) {
	m := power.Default70nm()
	skippedSomewhere := false
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 80, 0.05, coarseWeight)
		for _, factor := range []float64{1.5, 3, 6} {
			cfg := DeadlineFactor(g, m, factor)
			exhaustive, err := LAMPSPS(g, cfg)
			if err != nil {
				t.Fatalf("seed %d factor %g: %v", seed, factor, err)
			}
			pcfg := cfg
			pcfg.PruneSweep = true
			pruned, err := LAMPSPS(g, pcfg)
			if err != nil {
				t.Fatalf("seed %d factor %g pruned: %v", seed, factor, err)
			}
			if pruned.TotalEnergy() != exhaustive.TotalEnergy() ||
				pruned.NumProcs != exhaustive.NumProcs ||
				pruned.Level != exhaustive.Level {
				t.Errorf("seed %d factor %g: pruned winner (%.6g J, %d procs, V=%.2f) != exhaustive (%.6g J, %d procs, V=%.2f)",
					seed, factor,
					pruned.TotalEnergy(), pruned.NumProcs, pruned.Level.Vdd,
					exhaustive.TotalEnergy(), exhaustive.NumProcs, exhaustive.Level.Vdd)
			}
			if pruned.Stats.LevelsSkipped > 0 {
				skippedSomewhere = true
				if pruned.Stats.LevelsEvaluated+pruned.Stats.LevelsSkipped != exhaustive.Stats.LevelsEvaluated {
					t.Errorf("seed %d factor %g: evaluated %d + skipped %d != exhaustive %d",
						seed, factor, pruned.Stats.LevelsEvaluated, pruned.Stats.LevelsSkipped,
						exhaustive.Stats.LevelsEvaluated)
				}
			}
			if exhaustive.Stats.LevelsSkipped != 0 {
				t.Errorf("seed %d factor %g: exhaustive sweep reported %d skipped levels",
					seed, factor, exhaustive.Stats.LevelsSkipped)
			}
		}
	}
	if !skippedSomewhere {
		t.Error("no configuration skipped any level: the prune flag did nothing")
	}
}

// countingObserver tallies hook invocations.
type countingObserver struct {
	phases    []string
	schedules int
	levels    int
}

func (c *countingObserver) OnPhase(name string)                            { c.phases = append(c.phases, name) }
func (c *countingObserver) OnScheduleBuilt(int, int64)                     { c.schedules++ }
func (c *countingObserver) OnLevelEvaluated(power.Level, energy.Breakdown) { c.levels++ }

// TestObserverMatchesStats: the Observer feed must agree with the returned
// Stats — same number of fresh builds and successful evaluations — and the
// phases must arrive in the documented order.
func TestObserverMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 0.06, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 3)
	for _, workers := range []int{0, 4} {
		var pool *workpool.Pool
		if workers > 0 {
			pool = workpool.NewPool(workers)
		}
		obs := &countingObserver{}
		eng := Engine{Config: cfg, Observer: obs, Pool: pool}
		r, err := eng.Run(context.Background(), ApproachLAMPSPS, g)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if obs.schedules != r.Stats.SchedulesBuilt {
			t.Errorf("workers=%d: observer saw %d builds, Stats say %d", workers, obs.schedules, r.Stats.SchedulesBuilt)
		}
		if obs.levels != r.Stats.LevelsEvaluated {
			t.Errorf("workers=%d: observer saw %d evaluations, Stats say %d", workers, obs.levels, r.Stats.LevelsEvaluated)
		}
		want := []string{PhaseMinProcs, PhaseSaturation, PhaseBuild, PhaseEvaluate}
		if len(obs.phases) != len(want) {
			t.Fatalf("workers=%d: phases = %v, want %v", workers, obs.phases, want)
		}
		for i := range want {
			if obs.phases[i] != want[i] {
				t.Errorf("workers=%d: phase[%d] = %q, want %q", workers, i, obs.phases[i], want[i])
			}
		}
	}
}

// TestEngineSharedPoolNoDeadlock: many concurrent runs sharing one tiny
// pool must all complete — the engine never nests slot acquisitions, so a
// pool of size 1 cannot deadlock.
func TestEngineSharedPoolNoDeadlock(t *testing.T) {
	pool := workpool.NewPool(1)
	m := power.Default70nm()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng, 50, 0.06, coarseWeight)
			cfg := DeadlineFactor(g, m, 2)
			eng := Engine{Config: cfg, Pool: pool}
			_, err := eng.Run(context.Background(), ApproachLAMPSPS, g)
			done <- err
		}(int64(i + 1))
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
	if got := pool.InFlight(); got != 0 {
		t.Errorf("pool still holds %d slots", got)
	}
}
