package core

import (
	"errors"
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// evalConfig stretches one schedule to the deadline and evaluates its
// energy. When sweep is false only the slowest feasible level (the full S&S
// stretch) is evaluated; when sweep is true every feasible level from the
// maximum frequency down to the slowest feasible one is evaluated — the
// DVS-versus-shutdown balance of the +PS heuristics — and the cheapest is
// returned.
func evalConfig(s *sched.Schedule, m *power.Model, deadline float64, ps bool, sweep bool, stats *Stats) (power.Level, energy.Breakdown, error) {
	opts := energy.Options{PS: ps}
	if !sweep {
		lvl, err := energy.MinFeasibleLevel(s, m, deadline)
		if err != nil {
			return power.Level{}, energy.Breakdown{}, err
		}
		b, err := energy.Evaluate(s, m, lvl, deadline, opts)
		stats.LevelsEvaluated++
		return lvl, b, err
	}
	levels, err := energy.FeasibleLevels(s, m, deadline)
	if err != nil {
		return power.Level{}, energy.Breakdown{}, err
	}
	var bestLvl power.Level
	var bestB energy.Breakdown
	found := false
	for _, lvl := range levels {
		b, err := energy.Evaluate(s, m, lvl, deadline, opts)
		stats.LevelsEvaluated++
		if err != nil {
			return power.Level{}, energy.Breakdown{}, err
		}
		if !found || b.Total() < bestB.Total() {
			bestLvl, bestB, found = lvl, b, true
		}
	}
	return bestLvl, bestB, nil
}

// ssCommon implements the shared S&S structure: schedule on as many
// processors as the graph can occupy — the machine is assumed to have at
// least as many processors as the maximum task concurrency, so the EDF
// schedule dispatches every task at its earliest start — then trade the
// remaining slack for DVS (and, with ps, processor shutdown). Every
// processor that executes at least one task is employed and stays on, which
// is precisely the wastefulness LAMPS improves upon: in the paper's Fig. 4
// example S&S employs 3 processors although 2 would reach the same makespan.
func ssCommon(approach string, g *dag.Graph, cfg Config, ps bool) (*Result, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	m := cfg.model()
	var stats Stats
	sc := newScheduler(g, &cfg, &stats)

	s, err := sc.at(cfg.maxUsefulProcs(g))
	if err != nil {
		return nil, err
	}
	n := s.ProcsUsed()
	lvl, b, err := evalConfig(s, m, cfg.Deadline, ps, ps, &stats)
	if err != nil {
		return nil, wrapInfeasible(err)
	}
	return &Result{
		Approach: approach,
		Graph:    g,
		NumProcs: n,
		Level:    lvl,
		Schedule: s,
		Energy:   b,
		Stats:    stats,
	}, nil
}

// ScheduleAndStretch implements the S&S baseline (Section 4.1): schedule
// with LS-EDF on as many processors as reduce the makespan, then scale the
// common frequency down so the schedule finishes as close as possible to
// the deadline. Idle processors stay on.
func ScheduleAndStretch(g *dag.Graph, cfg Config) (*Result, error) {
	return ssCommon(ApproachSS, g, cfg, false)
}

// ScheduleAndStretchPS implements S&S+PS (Section 4.3): like S&S, but the
// operating frequency is swept from the maximum down to the minimum
// feasible level, and at each level the slack — inside the schedule as well
// as at its end — is used to shut processors down whenever an idle period
// exceeds the break-even time. The cheapest balance wins.
func ScheduleAndStretchPS(g *dag.Graph, cfg Config) (*Result, error) {
	return ssCommon(ApproachSSPS, g, cfg, true)
}

// lampsCommon implements the shared LAMPS structure (Fig. 5 and Fig. 8 of
// the paper): a binary search for the minimal feasible processor count
// followed by a linear search upwards — linear because the energy as a
// function of the processor count has local minima (Fig. 6) — evaluating
// each configuration's energy, until adding processors stops reducing the
// makespan.
func lampsCommon(approach string, g *dag.Graph, cfg Config, ps bool) (*Result, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	m := cfg.model()
	var stats Stats
	sc := newScheduler(g, &cfg, &stats)

	deadlineCycles := cfg.Deadline * m.FMax()
	hi := cfg.maxUsefulProcs(g)
	nmin, err := sc.minProcsForDeadline(deadlineCycles, hi)
	if err != nil {
		return nil, err
	}

	var best *Result
	consider := func(n int) error {
		s, err := sc.at(n)
		if err != nil {
			return err
		}
		lvl, b, err := evalConfig(s, m, cfg.Deadline, ps, ps, &stats)
		if err != nil {
			return wrapInfeasible(err)
		}
		if best == nil || b.Total() < best.Energy.Total() {
			best = &Result{
				Approach: approach,
				Graph:    g,
				NumProcs: n,
				Level:    lvl,
				Schedule: s,
				Energy:   b,
			}
		}
		return nil
	}
	// Linear scan from the minimal feasible count until adding processors
	// can no longer reduce the makespan (it has reached the critical path
	// length, its absolute minimum). The scan is linear, not binary, because
	// the energy as a function of the processor count has local minima
	// (Fig. 6).
	last := nmin
	for n := nmin; n <= hi; n++ {
		if err := consider(n); err != nil {
			return nil, err
		}
		last = n
		if mk, err := sc.makespan(n); err != nil {
			return nil, err
		} else if mk <= g.CriticalPathLength() {
			break
		}
	}
	// Also consider N_max, the "as many processors as can be employed
	// efficiently" configuration that S&S uses, so the LAMPS search space
	// always contains the S&S(+PS) solution: with shutdown available, wider
	// schedules can consolidate idle time into fewer, longer, sleepable
	// gaps, so skipping it could make LAMPS+PS worse than S&S+PS.
	if last < hi {
		if err := consider(hi); err != nil {
			return nil, err
		}
	}
	best.Stats = stats
	return best, nil
}

// LAMPS implements Leakage-Aware MultiProcessor Scheduling (Section 4.2):
// determine the balance between the number of employed processors and the
// depth of voltage scaling that minimises total energy; the remaining
// processors are turned off.
func LAMPS(g *dag.Graph, cfg Config) (*Result, error) {
	return lampsCommon(ApproachLAMPS, g, cfg, false)
}

// LAMPSPS implements LAMPS+PS (Section 4.3): LAMPS extended with the option
// to shut employed processors down temporarily, choosing for every
// processor count the frequency that best balances DVS against shutdown.
func LAMPSPS(g *dag.Graph, cfg Config) (*Result, error) {
	return lampsCommon(ApproachLAMPSPS, g, cfg, true)
}

// wrapInfeasible maps a deadline violation at the maximum level — meaning
// the deadline is unreachable for this schedule — onto the package's
// ErrInfeasible sentinel.
func wrapInfeasible(err error) error {
	if errors.Is(err, energy.ErrDeadline) {
		return fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return err
}
