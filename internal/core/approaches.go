package core

import (
	"context"
	"errors"
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/sched"
)

// The package-level heuristic functions are thin wrappers over Engine: they
// run a serial engine with no observer under context.Background(). Callers
// that need cancellation, progress hooks or parallel search use the ...Ctx
// forms or an Engine directly.

// ScheduleAndStretch implements the S&S baseline (Section 4.1): schedule
// with LS-EDF on as many processors as reduce the makespan, then scale the
// common frequency down so the schedule finishes as close as possible to
// the deadline. Idle processors stay on.
func ScheduleAndStretch(g *dag.Graph, cfg Config) (*Result, error) {
	return ScheduleAndStretchCtx(context.Background(), g, cfg)
}

// ScheduleAndStretchCtx is ScheduleAndStretch with cooperative cancellation.
func ScheduleAndStretchCtx(ctx context.Context, g *dag.Graph, cfg Config) (*Result, error) {
	return (&Engine{Config: cfg}).Run(ctx, ApproachSS, g)
}

// ScheduleAndStretchPS implements S&S+PS (Section 4.3): like S&S, but the
// operating frequency is swept from the maximum down to the minimum
// feasible level, and at each level the slack — inside the schedule as well
// as at its end — is used to shut processors down whenever an idle period
// exceeds the break-even time. The cheapest balance wins.
func ScheduleAndStretchPS(g *dag.Graph, cfg Config) (*Result, error) {
	return ScheduleAndStretchPSCtx(context.Background(), g, cfg)
}

// ScheduleAndStretchPSCtx is ScheduleAndStretchPS with cooperative
// cancellation.
func ScheduleAndStretchPSCtx(ctx context.Context, g *dag.Graph, cfg Config) (*Result, error) {
	return (&Engine{Config: cfg}).Run(ctx, ApproachSSPS, g)
}

// LAMPS implements Leakage-Aware MultiProcessor Scheduling (Section 4.2):
// determine the balance between the number of employed processors and the
// depth of voltage scaling that minimises total energy; the remaining
// processors are turned off.
func LAMPS(g *dag.Graph, cfg Config) (*Result, error) {
	return LAMPSCtx(context.Background(), g, cfg)
}

// LAMPSCtx is LAMPS with cooperative cancellation.
func LAMPSCtx(ctx context.Context, g *dag.Graph, cfg Config) (*Result, error) {
	return (&Engine{Config: cfg}).Run(ctx, ApproachLAMPS, g)
}

// LAMPSPS implements LAMPS+PS (Section 4.3): LAMPS extended with the option
// to shut employed processors down temporarily, choosing for every
// processor count the frequency that best balances DVS against shutdown.
func LAMPSPS(g *dag.Graph, cfg Config) (*Result, error) {
	return LAMPSPSCtx(context.Background(), g, cfg)
}

// LAMPSPSCtx is LAMPSPS with cooperative cancellation.
func LAMPSPSCtx(ctx context.Context, g *dag.Graph, cfg Config) (*Result, error) {
	return (&Engine{Config: cfg}).Run(ctx, ApproachLAMPSPS, g)
}

// LimitSFCtx is LimitSF with cooperative cancellation.
func LimitSFCtx(ctx context.Context, g *dag.Graph, cfg Config) (*Result, error) {
	return (&Engine{Config: cfg}).Run(ctx, ApproachLimitSF, g)
}

// LimitMFCtx is LimitMF with cooperative cancellation.
func LimitMFCtx(ctx context.Context, g *dag.Graph, cfg Config) (*Result, error) {
	return (&Engine{Config: cfg}).Run(ctx, ApproachLimitMF, g)
}

// lampsCommon runs the shared LAMPS structure with an explicit approach
// label and sweep choice; the voltage-island extension (and its tests) use
// it to obtain the uniform-frequency baseline under either sweep mode.
func lampsCommon(approach string, g *dag.Graph, cfg Config, ps bool) (*Result, error) {
	return (&Engine{Config: cfg}).lamps(context.Background(), approach, g, ps)
}

// wrapInfeasible maps a deadline violation at the maximum level — meaning
// the deadline is unreachable for this schedule — onto the package's
// ErrInfeasible sentinel. A backup-placement failure (the machine has no
// second processor to host recovery slots) is the fault-tolerant analogue
// and maps the same way.
func wrapInfeasible(err error) error {
	if errors.Is(err, energy.ErrDeadline) || errors.Is(err, sched.ErrBackupInfeasible) {
		return fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return err
}
