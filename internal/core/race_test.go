//go:build race

package core

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation forces extra heap escapes. Allocation
// gates widen their budgets accordingly; the strict budgets are enforced by
// `make alloc-gate`, which builds without -race.
const raceEnabled = true
