package core

import (
	"context"
	"fmt"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
	"lamps/internal/workpool"
)

// benchGraph returns one of the paper's application graphs at coarse grain
// — fpppp (334 tasks) is the heaviest and the usual benchmark subject.
func benchGraph(b *testing.B, name string) *dag.Graph {
	b.Helper()
	for _, g := range taskgen.Applications() {
		if g.Name() == name {
			return taskgen.Coarse.Scale(g)
		}
	}
	b.Fatalf("unknown application graph %q", name)
	return nil
}

// benchEngine measures one approach on one graph with a serial or parallel
// engine. Parallel workers follow GOMAXPROCS; on a single-core machine the
// two variants coincide.
func benchEngine(b *testing.B, approach string, g *dag.Graph, factor float64, parallel bool) {
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, factor)
	var pool *workpool.Pool
	if parallel {
		pool = workpool.NewPool(0)
	}
	eng := Engine{Config: cfg, Pool: pool}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), approach, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFpppp(b *testing.B) {
	g := benchGraph(b, "fpppp")
	for _, approach := range []string{ApproachLAMPS, ApproachLAMPSPS} {
		for _, parallel := range []bool{false, true} {
			mode := "serial"
			if parallel {
				mode = "parallel"
			}
			b.Run(fmt.Sprintf("%s/%s", approach, mode), func(b *testing.B) {
				benchEngine(b, approach, g, 2, parallel)
			})
		}
	}
}

// BenchmarkKernelScheduleInto isolates the scheduling kernel the engine's
// candidate builds run: a pooled Scheduler writing into a reused Schedule on
// the fpppp graph. With -benchmem this must report 0 allocs/op; CI enforces
// the same bound through TestScheduleIntoSteadyStateZeroAlloc.
func BenchmarkKernelScheduleInto(b *testing.B) {
	g := benchGraph(b, "fpppp")
	prio := sched.EDFPriorities(g, 0)
	var k sched.Scheduler
	var s sched.Schedule
	if err := k.ScheduleInto(&s, g, 8, prio, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.ScheduleInto(&s, g, 8, prio, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRobot(b *testing.B) {
	g := benchGraph(b, "robot")
	for _, parallel := range []bool{false, true} {
		mode := "serial"
		if parallel {
			mode = "parallel"
		}
		b.Run(fmt.Sprintf("%s/%s", ApproachLAMPSPS, mode), func(b *testing.B) {
			benchEngine(b, ApproachLAMPSPS, g, 4, parallel)
		})
	}
}
