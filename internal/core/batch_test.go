package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/workpool"
)

// batchWorkload builds a deterministic mixed batch: several seeded random
// graphs of different sizes, every approach, and a spread of deadline
// factors including an infeasible one (factor < 1 means even f_max cannot
// meet the deadline on the critical path) and an invalid config (negative
// deadline), so the parity test covers the full error taxonomy.
func batchWorkload(t testing.TB) []BatchRequest {
	t.Helper()
	m := power.Default70nm()
	var reqs []BatchRequest
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20+int(seed)*12, 0.08, coarseWeight)
		for i, approach := range Approaches {
			factor := []float64{1.5, 2, 4}[i%3]
			reqs = append(reqs, BatchRequest{
				Approach: approach,
				Graph:    g,
				Config:   DeadlineFactor(g, m, factor),
			})
		}
		// One infeasible and one invalid request per graph.
		reqs = append(reqs,
			BatchRequest{Approach: ApproachLAMPS, Graph: g, Config: DeadlineFactor(g, m, 0.5)},
			BatchRequest{Approach: ApproachSS, Graph: g, Config: Config{Model: m, Deadline: -1}},
		)
	}
	return reqs
}

// TestRunBatchDeterminismParity is the batch determinism gate: for workers
// ∈ {1, 4, GOMAXPROCS}, RunBatch must return, slot for slot, exactly what
// N serial RunCtx calls return — the same rendered bytes (energy, level,
// processor count, schedule, Stats) for successes and the same error
// taxonomy and message for failures. Run under -race: the whole point of
// the batch layer is request-granularity concurrency.
func TestRunBatchDeterminismParity(t *testing.T) {
	reqs := batchWorkload(t)

	// The serial oracle: one RunCtx call per request.
	type oracle struct {
		body []byte
		err  error
	}
	want := make([]oracle, len(reqs))
	for i, req := range reqs {
		r, err := RunCtx(context.Background(), req.Approach, req.Graph, req.Config)
		if err != nil {
			want[i] = oracle{err: err}
			continue
		}
		want[i] = oracle{body: renderForDiff(t, r)}
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		eng := Engine{Pool: workpool.NewPool(workers)}
		got := eng.RunBatch(context.Background(), reqs)
		if len(got) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(got), len(reqs))
		}
		for i, br := range got {
			w := want[i]
			if (br.Err == nil) != (w.err == nil) {
				t.Fatalf("workers=%d slot %d (%s): batch err %v, serial err %v",
					workers, i, reqs[i].Approach, br.Err, w.err)
			}
			if w.err != nil {
				if br.Err.Error() != w.err.Error() {
					t.Errorf("workers=%d slot %d: batch error %q, serial error %q",
						workers, i, br.Err, w.err)
				}
				// Same taxonomy, not just same text: sentinel matching must
				// agree so the serving layer classifies both identically.
				for _, sentinel := range []error{ErrInfeasible, ErrBadConfig} {
					if errors.Is(br.Err, sentinel) != errors.Is(w.err, sentinel) {
						t.Errorf("workers=%d slot %d: errors.Is(%v) disagrees between batch and serial", workers, i, sentinel)
					}
				}
				continue
			}
			if !bytes.Equal(renderForDiff(t, br.Result), w.body) {
				t.Errorf("workers=%d slot %d (%s): batch result differs from serial\nbatch:  %s\nserial: %s",
					workers, i, reqs[i].Approach, renderForDiff(t, br.Result), w.body)
			}
		}
		if got := eng.Pool.InFlight(); got != 0 {
			t.Errorf("workers=%d: pool still holds %d slots after RunBatch returned", workers, got)
		}
	}
}

// TestRunBatchSerialEngine: a nil-pool engine runs the batch serially with
// identical results — the degenerate case the parallel path must match.
func TestRunBatchSerialEngine(t *testing.T) {
	reqs := batchWorkload(t)[:8]
	serial := (&Engine{}).RunBatch(context.Background(), reqs)
	parallel := (&Engine{Pool: workpool.NewPool(4)}).RunBatch(context.Background(), reqs)
	for i := range reqs {
		if (serial[i].Err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("slot %d: serial err %v, parallel err %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Err != nil {
			continue
		}
		if !bytes.Equal(renderForDiff(t, serial[i].Result), renderForDiff(t, parallel[i].Result)) {
			t.Errorf("slot %d: nil-pool and pooled batch results differ", i)
		}
	}
}

// TestRunBatchEmpty: an empty batch returns nil without touching the pool.
func TestRunBatchEmpty(t *testing.T) {
	eng := Engine{Pool: workpool.NewPool(2)}
	if got := eng.RunBatch(context.Background(), nil); got != nil {
		t.Fatalf("RunBatch(nil) = %v, want nil", got)
	}
}

// TestRunBatchPanicIsolation: a heuristic panicking on one request poisons
// only that request's slot (ErrBatchPanic); every other request of the
// batch completes normally. The panic trigger is a custom priority policy,
// the injection point the engine exposes for a specific graph.
func TestRunBatchPanicIsolation(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	bomb := buildFig4a(t, coarseWeight)
	good := DeadlineFactor(g, m, 2)
	evil := DeadlineFactor(bomb, m, 2)
	evil.Priorities = func(*dag.Graph) []int64 { panic("boom") }

	reqs := []BatchRequest{
		{Approach: ApproachLAMPS, Graph: g, Config: good},
		{Approach: ApproachLAMPS, Graph: bomb, Config: evil},
		{Approach: ApproachSSPS, Graph: g, Config: good},
	}
	for _, workers := range []int{0, 2} { // 0 = nil pool (serial)
		eng := Engine{}
		if workers > 0 {
			eng.Pool = workpool.NewPool(workers)
		}
		got := eng.RunBatch(context.Background(), reqs)
		if got[1].Err == nil || !errors.Is(got[1].Err, ErrBatchPanic) {
			t.Fatalf("workers=%d: panicking request err = %v, want ErrBatchPanic", workers, got[1].Err)
		}
		for _, i := range []int{0, 2} {
			if got[i].Err != nil {
				t.Errorf("workers=%d: request %d failed alongside the panicking one: %v", workers, i, got[i].Err)
			}
			if got[i].Result == nil || got[i].Result.TotalEnergy() <= 0 {
				t.Errorf("workers=%d: request %d returned no usable result", workers, i)
			}
		}
	}
}

// TestRunBatchCancelledContext: with ctx already done, every slot reports
// the context error and no heuristic runs at all.
func TestRunBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runs atomic.Int32
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactor(g, power.Default70nm(), 2)
	cfg.Priorities = func(gr *dag.Graph) []int64 {
		runs.Add(1)
		return nil
	}
	reqs := []BatchRequest{
		{Approach: ApproachLAMPS, Graph: g, Config: cfg},
		{Approach: ApproachSS, Graph: g, Config: cfg},
	}
	for _, pool := range []*workpool.Pool{nil, workpool.NewPool(2)} {
		eng := Engine{Pool: pool}
		for i, br := range eng.RunBatch(ctx, reqs) {
			if !errors.Is(br.Err, context.Canceled) {
				t.Errorf("pool=%v slot %d: err = %v, want context.Canceled", pool != nil, i, br.Err)
			}
			if br.Result != nil {
				t.Errorf("pool=%v slot %d: got a result from a cancelled batch", pool != nil, i)
			}
		}
	}
	if n := runs.Load(); n != 0 {
		t.Errorf("%d heuristic runs executed under an already-cancelled context", n)
	}
}

// TestRunBatchMidBatchCancellation: cancelling the batch context while the
// serial batch is inside request 0 makes request 0 abort cooperatively and
// every later request complete with the context error without starting.
func TestRunBatchMidBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	var started atomic.Int32
	cfg := DeadlineFactor(g, m, 2)
	cfg.Priorities = func(gr *dag.Graph) []int64 {
		started.Add(1)
		cancel() // fires during request 0's run
		return nil
	}
	reqs := make([]BatchRequest, 4)
	for i := range reqs {
		reqs[i] = BatchRequest{Approach: ApproachLAMPS, Graph: g, Config: cfg}
	}
	got := (&Engine{}).RunBatch(ctx, reqs)
	if !errors.Is(got[0].Err, context.Canceled) {
		t.Errorf("request 0: err = %v, want context.Canceled (cooperative abort)", got[0].Err)
	}
	for i := 1; i < len(got); i++ {
		if !errors.Is(got[i].Err, context.Canceled) {
			t.Errorf("request %d: err = %v, want context.Canceled", i, got[i].Err)
		}
	}
	if n := started.Load(); n != 1 {
		t.Errorf("%d requests started after cancellation; only request 0 should have run", n)
	}
}

// TestRunBatchSteadyStateZeroAlloc is the batch half of the CI alloc gate:
// once the scratch pools are warm, the per-request allocation count of the
// batch hot loop must stay bounded by a small constant — the Result
// assembly and memoised schedules the API must hand out — rather than
// growing with re-allocated kernels, profiles or priority slices. The
// bound is deliberately loose against Go-version drift but tight enough
// that losing scratch reuse (one kernel re-allocation is ~10 allocs, a
// gap-profile rebuild more) fails it.
func TestRunBatchSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate skipped in -short mode")
	}
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	reqs := []BatchRequest{
		{Approach: ApproachLAMPS, Graph: g, Config: DeadlineFactor(g, m, 2)},
		{Approach: ApproachLAMPSPS, Graph: g, Config: DeadlineFactor(g, m, 2)},
	}
	eng := Engine{} // serial: measure the per-request loop itself, not goroutine scheduling
	ctx := context.Background()

	// Warm the kernel and profile pools.
	for i := 0; i < 5; i++ {
		for _, br := range eng.RunBatch(ctx, reqs) {
			if br.Err != nil {
				t.Fatal(br.Err)
			}
		}
	}
	const rounds = 50
	avg := testing.AllocsPerRun(rounds, func() {
		for _, br := range eng.RunBatch(ctx, reqs) {
			if br.Err != nil {
				t.Fatal(br.Err)
			}
		}
	})
	perRequest := avg / float64(len(reqs))
	// The warm budget is the irreducible per-request tail: the Result and its
	// CloneCompact-detached schedule (4 allocs), the per-phase worker
	// closures, and the batch's own result slice. Everything else — kernels,
	// profiles, priorities, candidate/pair slices, schedule shells — comes
	// from the request arena and must not allocate at steady state. The race
	// detector's instrumentation forces extra escapes, so -race runs only
	// enforce the pre-arena bound; `make alloc-gate` builds without -race and
	// holds the strict one.
	maxAllocsPerRequest := 8.0
	if raceEnabled {
		maxAllocsPerRequest = 60
	}
	if perRequest > maxAllocsPerRequest {
		t.Errorf("batch hot loop allocates %.1f allocs/request, want <= %g — per-request scratch reuse regressed",
			perRequest, maxAllocsPerRequest)
	}
	t.Logf("batch steady state: %.1f allocs/request", perRequest)
}

// TestRunBatchErrorsDoNotLeakDirtyArenas: requests that fail — invalid
// configs, infeasible deadlines, cancelled contexts — recycle their arenas
// through the same pool as successful ones. If an error path ever returned
// an arena without resetting it (stale schedules, candidate slices pointing
// at the wrong graph), the interleaved good requests here would diverge
// from the serial oracle. Every good slot is byte-compared against a
// fresh-engine result after each error-heavy round.
func TestRunBatchErrorsDoNotLeakDirtyArenas(t *testing.T) {
	m := power.Default70nm()
	gA := buildFig4a(t, coarseWeight)
	rng := rand.New(rand.NewSource(99))
	gB := randomGraph(rng, 40, 0.08, coarseWeight)

	reqs := []BatchRequest{
		{Approach: ApproachLAMPSPS, Graph: gA, Config: DeadlineFactor(gA, m, 2)},
		{Approach: ApproachLAMPS, Graph: gB, Config: DeadlineFactor(gB, m, 0.5)}, // infeasible
		{Approach: ApproachLAMPS, Graph: gB, Config: DeadlineFactor(gB, m, 1.5)},
		{Approach: ApproachSS, Graph: gA, Config: Config{Model: m, Deadline: -1}}, // invalid
		{Approach: ApproachSSPS, Graph: gB, Config: DeadlineFactor(gB, m, 4)},
	}
	good := map[int][]byte{}
	for i, req := range reqs {
		if r, err := RunCtx(context.Background(), req.Approach, req.Graph, req.Config); err == nil {
			good[i] = renderForDiff(t, r)
		}
	}
	if len(good) != 3 {
		t.Fatalf("workload has %d good requests, want 3", len(good))
	}
	for _, pool := range []*workpool.Pool{nil, workpool.NewPool(3)} {
		eng := Engine{Pool: pool}
		for round := 0; round < 8; round++ {
			got := eng.RunBatch(context.Background(), reqs)
			for i, want := range good {
				if got[i].Err != nil {
					t.Fatalf("pool=%v round %d slot %d: unexpected error %v", pool != nil, round, i, got[i].Err)
				}
				if !bytes.Equal(renderForDiff(t, got[i].Result), want) {
					t.Fatalf("pool=%v round %d slot %d: result diverged after error-path arena reuse", pool != nil, round, i)
				}
			}
			for _, i := range []int{1, 3} {
				if got[i].Err == nil {
					t.Fatalf("pool=%v round %d slot %d: error request succeeded", pool != nil, round, i)
				}
			}
		}
	}
}

// TestRunBatchPanicsDoNotRecycleArenas: a panicking request must drop its
// arena rather than recycle it — the panic may have interrupted any
// invariant, so a pooled dirty arena could corrupt an unrelated later
// request. The rounds alternate panicking and clean batches and byte-compare
// every clean result against the serial oracle; with cancellation mixed in,
// this extends the TestRunBatchMidBatchCancellation family to arena hygiene.
func TestRunBatchPanicsDoNotRecycleArenas(t *testing.T) {
	m := power.Default70nm()
	g := buildFig4a(t, coarseWeight)
	bomb := buildFig4a(t, coarseWeight)
	good := DeadlineFactor(g, m, 2)
	evil := DeadlineFactor(bomb, m, 2)
	evil.Priorities = func(*dag.Graph) []int64 { panic("boom") }

	reqs := []BatchRequest{
		{Approach: ApproachLAMPSPS, Graph: g, Config: good},
		{Approach: ApproachLAMPS, Graph: bomb, Config: evil},
		{Approach: ApproachLAMPS, Graph: g, Config: good},
	}
	want := map[int][]byte{}
	for _, i := range []int{0, 2} {
		r, err := RunCtx(context.Background(), reqs[i].Approach, reqs[i].Graph, reqs[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderForDiff(t, r)
	}
	for _, workers := range []int{0, 2} {
		eng := Engine{}
		if workers > 0 {
			eng.Pool = workpool.NewPool(workers)
		}
		for round := 0; round < 8; round++ {
			got := eng.RunBatch(context.Background(), reqs)
			if !errors.Is(got[1].Err, ErrBatchPanic) {
				t.Fatalf("workers=%d round %d: panic slot err = %v, want ErrBatchPanic", workers, round, got[1].Err)
			}
			for i, w := range want {
				if got[i].Err != nil {
					t.Fatalf("workers=%d round %d slot %d: %v", workers, round, i, got[i].Err)
				}
				if !bytes.Equal(renderForDiff(t, got[i].Result), w) {
					t.Fatalf("workers=%d round %d slot %d: result diverged after a panicking neighbour", workers, round, i)
				}
			}
			// A mid-run cancellation in the same engine: the cancelled arena
			// must also come back clean (it is recycled, not dropped).
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			for _, br := range eng.RunBatch(cctx, reqs[:1]) {
				if !errors.Is(br.Err, context.Canceled) {
					t.Fatalf("workers=%d round %d: cancelled slot err = %v", workers, round, br.Err)
				}
			}
		}
	}
}
