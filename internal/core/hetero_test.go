package core

import (
	"errors"
	"math/rand"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/verify"
)

// lpTestModel returns the low-power class model used across the
// heterogeneous tests: the 70 nm constants with a lower voltage ceiling, so
// its fmax (and timeline slot stretch) differs from the stock HP class.
func lpTestModel(t testing.TB) *power.Model {
	t.Helper()
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	lp.PSleep = 25e-6
	lp.EOverhead = 200e-6
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	return &lp
}

// heteroTestPlatform returns the canonical LP×3 + HP×1 heterogeneous test
// machine (the shape of examples/platforms/lp3hp1.json).
func heteroTestPlatform(t testing.TB) *power.Platform {
	t.Helper()
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: lpTestModel(t)}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// requireSameResult fails unless the platform-config result is
// bit-identical to the legacy-config one: energy breakdown, level,
// processor count, stats and every schedule time.
func requireSameResult(t *testing.T, ctx string, legacy, plat *Result) {
	t.Helper()
	if plat.Energy != legacy.Energy {
		t.Fatalf("%s: energy breakdown differs\n  platform %+v\n  legacy   %+v", ctx, plat.Energy, legacy.Energy)
	}
	if plat.Level != legacy.Level {
		t.Fatalf("%s: level %+v != legacy %+v", ctx, plat.Level, legacy.Level)
	}
	if plat.NumProcs != legacy.NumProcs {
		t.Fatalf("%s: %d procs != legacy %d", ctx, plat.NumProcs, legacy.NumProcs)
	}
	if plat.Stats != legacy.Stats {
		t.Fatalf("%s: stats %+v != legacy %+v", ctx, plat.Stats, legacy.Stats)
	}
	if (plat.Schedule == nil) != (legacy.Schedule == nil) {
		t.Fatalf("%s: schedule presence differs", ctx)
	}
	if plat.Schedule != nil {
		ps, ls := plat.Schedule, legacy.Schedule
		if ps.Makespan != ls.Makespan || ps.NumProcs != ls.NumProcs {
			t.Fatalf("%s: schedule shape (%d procs, makespan %d) != legacy (%d, %d)",
				ctx, ps.NumProcs, ps.Makespan, ls.NumProcs, ls.Makespan)
		}
		for v := range ls.Proc {
			if ps.Proc[v] != ls.Proc[v] || ps.Start[v] != ls.Start[v] || ps.Finish[v] != ls.Finish[v] {
				t.Fatalf("%s: task %d placement differs", ctx, v)
			}
		}
	}
}

// TestHomogeneousPlatformParity is the tentpole's behaviour-preservation
// gate, enforced under -race by `make hetero-gate`: for every approach — the
// six of the paper plus both multiple-frequency extensions — a Config
// carrying an N-identical-core Platform must produce results byte-identical
// to the legacy (Model, MaxProcs=N) Config: same energy breakdown bit for
// bit, same operating level, same processor count, same schedule times, same
// search stats. newRun collapses a homogeneous platform onto the legacy
// engine path, so any divergence here means that normalisation — or a
// platform code path leaking into homogeneous runs — broke.
func TestHomogeneousPlatformParity(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(20260809))
	graphs := []*dag.Graph{
		buildFig4a(t, coarseWeight),
		randomGraph(rng, 25, 0.15, coarseWeight),
		randomGraph(rng, 50, 0.08, fineWeight),
	}
	for gi, g := range graphs {
		for _, n := range []int{1, 3, 6} {
			pf, err := power.Homogeneous(n, m)
			if err != nil {
				t.Fatal(err)
			}
			for _, factor := range []float64{1.2, 2, 4} {
				legacyCfg := DeadlineFactor(g, m, factor)
				legacyCfg.MaxProcs = n
				platCfg := DeadlineFactorPlatform(g, pf, factor)
				platCfg.MaxProcs = n
				if legacyCfg.Deadline != platCfg.Deadline {
					t.Fatalf("deadline %v != platform deadline %v", legacyCfg.Deadline, platCfg.Deadline)
				}
				for _, approach := range Approaches {
					ctx := approach
					legacy, err1 := Run(approach, g, legacyCfg)
					plat, err2 := Run(approach, g, platCfg)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("g%d n%d f%g %s: err %v vs legacy %v", gi, n, factor, ctx, err2, err1)
					}
					if err1 != nil {
						continue
					}
					requireSameResult(t, ctx, legacy, plat)
					if plat.Platform != nil {
						t.Fatalf("%s: homogeneous-platform result carries a Platform; normalisation failed", ctx)
					}
				}
				// The multiple-frequency extensions must normalise identically.
				li, e1 := VoltageIslands(g, legacyCfg, true)
				pi, e2 := VoltageIslands(g, platCfg, true)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("g%d n%d f%g islands: err %v vs legacy %v", gi, n, factor, e2, e1)
				}
				if e1 == nil && (pi.Energy != li.Energy || pi.NumProcs != li.NumProcs) {
					t.Fatalf("g%d n%d f%g islands: %+v != legacy %+v", gi, n, factor, pi.Energy, li.Energy)
				}
				lp, e3 := SlackReclaimDVS(g, legacyCfg, true)
				pp, e4 := SlackReclaimDVS(g, platCfg, true)
				if (e3 == nil) != (e4 == nil) {
					t.Fatalf("g%d n%d f%g pertask: err %v vs legacy %v", gi, n, factor, e4, e3)
				}
				if e3 == nil && (pp.Energy != lp.Energy || pp.NumProcs != lp.NumProcs) {
					t.Fatalf("g%d n%d f%g pertask: %+v != legacy %+v", gi, n, factor, pp.Energy, lp.Energy)
				}
			}
		}
	}
}

// TestHeterogeneousApproachesVerified runs every approach on the genuinely
// heterogeneous machine and holds each result to the independent verifier:
// schedules must be legal under per-class scaled durations, the reported
// breakdown must match the first-principles platform energy walk bit for
// bit, deadlines must hold, and the LIMIT bounds must actually bound the
// heuristics from below.
func TestHeterogeneousApproachesVerified(t *testing.T) {
	pf := heteroTestPlatform(t)
	rng := rand.New(rand.NewSource(17))
	graphs := []*dag.Graph{
		buildFig4a(t, coarseWeight),
		randomGraph(rng, 30, 0.12, coarseWeight),
	}
	for gi, g := range graphs {
		// Anchor the deadlines to the machine's actual full-prefix EDF
		// makespan — the schedule the engine's phase-1 feasibility check
		// uses — so the tight slack is genuinely tight yet always feasible.
		base, err := sched.ListSchedulePlatform(g, pf, pf.NumProcs(), sched.EDFPriorities(g, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		minDeadline := float64(base.Makespan) / pf.RefFMax()
		for _, factor := range []float64{1.05, 2.5} {
			cfg := Config{Platform: pf, Deadline: minDeadline * factor}
			var sfE, mfE float64
			achieved := make(map[string]float64)
			for _, approach := range Approaches {
				r, err := Run(approach, g, cfg)
				if err != nil {
					t.Fatalf("g%d f%g %s: %v", gi, factor, approach, err)
				}
				if r.Platform != pf {
					t.Fatalf("g%d f%g %s: result does not carry the platform", gi, factor, approach)
				}
				switch approach {
				case ApproachLimitSF:
					sfE = r.TotalEnergy()
				case ApproachLimitMF:
					mfE = r.TotalEnergy()
				default:
					achieved[approach] = r.TotalEnergy()
					if r.Schedule == nil {
						t.Fatalf("g%d f%g %s: no schedule", gi, factor, approach)
					}
					if err := verify.PlatformSchedule(g, pf, r.Schedule); err != nil {
						t.Fatalf("g%d f%g %s: illegal schedule: %v", gi, factor, approach, err)
					}
					if ms := r.MakespanSec(); ms > cfg.Deadline*(1+1e-9) {
						t.Fatalf("g%d f%g %s: makespan %.6gs > deadline %.6gs", gi, factor, approach, ms, cfg.Deadline)
					}
					ps := approach == ApproachSSPS || approach == ApproachLAMPSPS
					if err := verify.PlatformEnergyMatches(r.Schedule, pf, r.Point, cfg.Deadline,
						energy.Options{PS: ps}, r.Energy); err != nil {
						t.Fatalf("g%d f%g %s: breakdown rejected: %v", gi, factor, approach, err)
					}
				}
			}
			if mfE > sfE*(1+1e-9) {
				t.Errorf("g%d f%g: LIMIT-MF %.6g > LIMIT-SF %.6g", gi, factor, mfE, sfE)
			}
			for a, e := range achieved {
				if sfE > e*(1+1e-9) {
					t.Errorf("g%d f%g: LIMIT-SF %.6g above %s %.6g — not a lower bound", gi, factor, sfE, a, e)
				}
			}
		}
	}
}

// TestHeterogeneousSelfCheck runs the engine's built-in verification on
// heterogeneous configs: with SelfCheck set, every schedule the search
// builds is re-verified against the platform verifier and the winning
// breakdown re-derived bit for bit. A pass here means the serving layer's
// canary mode covers heterogeneous requests too.
func TestHeterogeneousSelfCheck(t *testing.T) {
	pf := heteroTestPlatform(t)
	g := buildFig4a(t, coarseWeight)
	cfg := DeadlineFactorPlatform(g, pf, 2)
	cfg.SelfCheck = true
	for _, approach := range Approaches {
		if _, err := Run(approach, g, cfg); err != nil {
			t.Fatalf("%s with SelfCheck: %v", approach, err)
		}
	}
}

// TestHeteroTightDeadlineNeedsHPCore pins the scheduling value of
// heterogeneity: a deadline sustainable only at the HP core's speed is
// feasible on the mixed machine (the critical chain lands on the HP core)
// but infeasible on an LP-only machine.
func TestHeteroTightDeadlineNeedsHPCore(t *testing.T) {
	lp := lpTestModel(t)
	hetero := heteroTestPlatform(t)
	lpOnly, err := power.Homogeneous(4, lp)
	if err != nil {
		t.Fatal(err)
	}
	// A serial chain: the makespan is the critical path, no parallelism to
	// hide slow cores behind.
	b := dag.NewBuilder("chain")
	for i := 0; i < 6; i++ {
		b.AddTask(coarseWeight)
		if i > 0 {
			b.AddEdge(i-1, i)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	deadline := 1.05 * float64(g.CriticalPathLength()) / hetero.RefFMax()

	r, err := LAMPS(g, Config{Platform: hetero, Deadline: deadline})
	if err != nil {
		t.Fatalf("heterogeneous machine cannot meet an HP-speed deadline: %v", err)
	}
	for v := 0; v < g.NumTasks(); v++ {
		if c := hetero.ClassOf(int(r.Schedule.Proc[v])); c != hetero.RefClass() {
			t.Errorf("chain task %d placed on class %d, want the HP class", v, c)
		}
	}
	if _, err := LAMPS(g, Config{Platform: lpOnly, Deadline: deadline}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("LP-only machine met an HP-speed deadline (err=%v)", err)
	}
}

// TestHeteroMoreProcsNeverWorse: on the heterogeneous machine, allowing the
// search more processors can only keep or reduce the best energy — the
// candidate set grows monotonically with MaxProcs.
func TestHeteroMoreProcsNeverWorse(t *testing.T) {
	pf := heteroTestPlatform(t)
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 24, 0.1, coarseWeight)
	cfg := DeadlineFactorPlatform(g, pf, 3)
	prev := -1.0
	for _, maxProcs := range []int{1, 2, 3, 4} {
		c := cfg
		c.MaxProcs = maxProcs
		r, err := LAMPSPS(g, c)
		if errors.Is(err, ErrInfeasible) && prev < 0 {
			// Small LP-only prefixes may simply lack the throughput for the
			// deadline; monotonicity is only claimed once a count is feasible.
			continue
		}
		if err != nil {
			t.Fatalf("MaxProcs=%d: %v", maxProcs, err)
		}
		if prev >= 0 && r.TotalEnergy() > prev*(1+1e-9) {
			t.Errorf("MaxProcs=%d: energy %.6g > %.6g with fewer processors", maxProcs, r.TotalEnergy(), prev)
		}
		prev = r.TotalEnergy()
	}
}

// TestHeteroFasterLPNeverHurtsLimit: the LIMIT-MF bound is monotone in the
// LP/HP speed ratio — raising the LP class's voltage ceiling (making it
// faster) can only keep or reduce the bound, because every operating point
// of the slower machine's cheapest class remains available.
func TestHeteroFasterLPNeverHurtsLimit(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	hp := power.Default70nm()
	prev := -1.0
	for _, vmax := range []float64{0.70, 0.80, 0.90, 1.00} {
		lp := *power.Default70nm()
		lp.VddMax = vmax
		lp.POn = 0.04
		if err := lp.Build(); err != nil {
			t.Fatal(err)
		}
		pf, err := power.NewPlatform(
			[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: hp}},
			[]int{0, 0, 0, 1},
		)
		if err != nil {
			t.Fatal(err)
		}
		// Generous deadline: the bound is then W × min-class E/cycle at each
		// machine's critical levels, unaffected by feasibility clipping.
		cfg := Config{Platform: pf, Deadline: 10 * float64(g.CriticalPathLength()) / hp.FMax()}
		r, err := LimitMF(g, cfg)
		if err != nil {
			t.Fatalf("vmax=%.2f: %v", vmax, err)
		}
		if prev >= 0 && r.TotalEnergy() > prev*(1+1e-9) {
			t.Errorf("vmax=%.2f: LIMIT-MF %.6g > %.6g of the slower LP class", vmax, r.TotalEnergy(), prev)
		}
		prev = r.TotalEnergy()
	}
}

// TestHeterogeneousExtensions: the per-task DVS and voltage-island
// extensions must produce feasible, bounded results on the heterogeneous
// machine — finishing within the deadline and never beating the LIMIT-MF
// bound.
func TestHeterogeneousExtensions(t *testing.T) {
	pf := heteroTestPlatform(t)
	rng := rand.New(rand.NewSource(29))
	g := randomGraph(rng, 20, 0.12, coarseWeight)
	cfg := DeadlineFactorPlatform(g, pf, 2)
	mf, err := LimitMF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := LAMPSPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pt, err := SlackReclaimDVS(g, cfg, true)
	if err != nil {
		t.Fatalf("per-task DVS: %v", err)
	}
	for v, fin := range pt.FinishSec {
		if fin > cfg.Deadline*(1+1e-9) {
			t.Errorf("per-task DVS: task %d finishes at %.6gs past deadline %.6gs", v, fin, cfg.Deadline)
		}
	}
	if pt.TotalEnergy() < mf.TotalEnergy()*(1-1e-9) {
		t.Errorf("per-task DVS %.6g beats LIMIT-MF %.6g", pt.TotalEnergy(), mf.TotalEnergy())
	}

	isl, err := VoltageIslands(g, cfg, true)
	if err != nil {
		t.Fatalf("voltage islands: %v", err)
	}
	if ms := isl.MakespanSec(); ms > cfg.Deadline*(1+1e-9) {
		t.Errorf("voltage islands: makespan %.6gs > deadline %.6gs", ms, cfg.Deadline)
	}
	if isl.TotalEnergy() > base.TotalEnergy()*(1+1e-9) {
		t.Errorf("voltage islands %.6g worse than its LAMPS+PS base %.6g", isl.TotalEnergy(), base.TotalEnergy())
	}
	if isl.TotalEnergy() < mf.TotalEnergy()*(1-1e-9) {
		t.Errorf("voltage islands %.6g beats LIMIT-MF %.6g", isl.TotalEnergy(), mf.TotalEnergy())
	}
}
