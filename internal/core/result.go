package core

import (
	"context"
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// Approach names, as used in the paper's figures and tables.
const (
	ApproachSS      = "S&S"
	ApproachLAMPS   = "LAMPS"
	ApproachSSPS    = "S&S+PS"
	ApproachLAMPSPS = "LAMPS+PS"
	ApproachLimitSF = "LIMIT-SF"
	ApproachLimitMF = "LIMIT-MF"
)

// Approaches lists the heuristics and bounds in the paper's presentation
// order.
var Approaches = []string{
	ApproachSS, ApproachLAMPS, ApproachSSPS, ApproachLAMPSPS,
	ApproachLimitSF, ApproachLimitMF,
}

// Stats reports the search effort of a heuristic, mirroring the paper's
// complexity discussion T_LAMPS = log2(N_upb − N_lwb)·T_ls + M·T_ls.
type Stats struct {
	SchedulesBuilt  int // list-scheduling invocations
	LevelsEvaluated int // (schedule, level) energy evaluations
	LevelsSkipped   int // sweep levels pruned by Config.PruneSweep
}

// Add accumulates another snapshot into s. Long-running callers (the
// serving layer's metrics, sweep harnesses) use it to aggregate search
// effort across many heuristic invocations.
func (s *Stats) Add(o Stats) {
	s.SchedulesBuilt += o.SchedulesBuilt
	s.LevelsEvaluated += o.LevelsEvaluated
	s.LevelsSkipped += o.LevelsSkipped
}

// Result is the outcome of one heuristic or bound on one task graph.
type Result struct {
	Approach string
	Graph    *dag.Graph

	// NumProcs is the number of processors employed (turned on). For the
	// LIMIT-* bounds, which assume idle processors consume nothing, it is 0.
	NumProcs int

	// Level is the common operating point of all employed processors. On a
	// heterogeneous platform it is the reference class's ladder level of
	// Point, kept for homogeneous consumers.
	Level power.Level

	// Platform is the heterogeneous machine the result was computed for, or
	// nil on the legacy single-model path (including a homogeneous Platform
	// config, which is normalised to its only class model).
	Platform *power.Platform

	// Point is the winning platform operating point: one per-class ladder
	// level vector plus the shared timeline frequency. Point.Levels is nil
	// when Platform is.
	Point power.OperatingPoint

	// Schedule is the task placement (nil for the LIMIT-* bounds). On a
	// heterogeneous platform its times are reference-class timeline cycles.
	Schedule *sched.Schedule

	// Backups is the statically reserved recovery layer when the config
	// requested fault tolerance (Config.Faults with K > 0): one backup slot
	// per task on the schedule's slack, nil otherwise. Its reserved cycles
	// are already charged as idle time in Energy.
	Backups *sched.BackupPlan

	// Energy is the full energy breakdown.
	Energy energy.Breakdown

	Stats Stats
}

// TotalEnergy returns the total energy in joules.
func (r *Result) TotalEnergy() float64 { return r.Energy.Total() }

// MakespanSec returns the stretched schedule length in seconds, or 0 for
// the LIMIT-* bounds. On a heterogeneous platform the schedule's timeline
// cycles convert at the operating point's timeline frequency.
func (r *Result) MakespanSec() float64 {
	if r.Schedule == nil {
		return 0
	}
	if r.Platform != nil {
		return float64(r.Schedule.Makespan) / r.Point.TimelineFreq
	}
	return float64(r.Schedule.Makespan) / r.Level.Freq
}

// RecoveryMakespanSec returns the worst-case schedule length in seconds
// when recovery is exercised — the latest backup finish at the winning
// operating point — or 0 when the result carries no backup plan.
func (r *Result) RecoveryMakespanSec() float64 {
	if r.Backups == nil {
		return 0
	}
	if r.Platform != nil {
		return float64(r.Backups.RecoveryMakespan) / r.Point.TimelineFreq
	}
	return float64(r.Backups.RecoveryMakespan) / r.Level.Freq
}

func (r *Result) String() string {
	if r.Schedule == nil {
		return fmt.Sprintf("%s: %.6g J at %v", r.Approach, r.TotalEnergy(), r.Level)
	}
	return fmt.Sprintf("%s: %.6g J on %d processor(s) at %v (makespan %.4gs, %d shutdowns)",
		r.Approach, r.TotalEnergy(), r.NumProcs, r.Level, r.MakespanSec(), r.Energy.Shutdowns)
}

// Run dispatches an approach by name. It powers the CLI and the experiment
// harness.
func Run(approach string, g *dag.Graph, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), approach, g, cfg)
}

// RunCtx is Run with cooperative cancellation: it returns ctx.Err() (wrapped
// in at most one layer recognised by errors.Is) as soon as the current
// search step — at most one list-scheduling call — completes after ctx is
// done.
func RunCtx(ctx context.Context, approach string, g *dag.Graph, cfg Config) (*Result, error) {
	return (&Engine{Config: cfg}).Run(ctx, approach, g)
}
