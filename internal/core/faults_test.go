package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sim"
	"lamps/internal/verify"
)

// sixApproaches is every uniform-frequency approach the engine serves;
// scheduleApproaches is the subset that constructs an actual schedule (the
// LIMIT bounds are analytic and carry neither schedule nor backup plan —
// they stay valid lower bounds under fault tolerance because reserving
// backup capacity only ever adds energy).
var (
	sixApproaches = []string{
		ApproachSS, ApproachLAMPS, ApproachSSPS, ApproachLAMPSPS, ApproachLimitSF, ApproachLimitMF,
	}
	scheduleApproaches = []string{ApproachSS, ApproachLAMPS, ApproachSSPS, ApproachLAMPSPS}
)

// runApproach runs one approach through the engine, failing the test on
// error.
func runApproach(t *testing.T, approach string, g *dag.Graph, cfg Config) *Result {
	t.Helper()
	r, err := (&Engine{Config: cfg}).Run(context.Background(), approach, g)
	if err != nil {
		t.Fatalf("%s: %v", approach, err)
	}
	return r
}

// requireIdenticalResult fails unless two results agree bit for bit on
// everything the response encoding can see.
func requireIdenticalResult(t *testing.T, ctx string, got, want *Result) {
	t.Helper()
	if got.Energy != want.Energy {
		t.Fatalf("%s: energy %+v != %+v", ctx, got.Energy, want.Energy)
	}
	if got.Level != want.Level || got.NumProcs != want.NumProcs || got.Stats != want.Stats {
		t.Fatalf("%s: level/procs/stats differ: %+v/%d/%+v vs %+v/%d/%+v",
			ctx, got.Level, got.NumProcs, got.Stats, want.Level, want.NumProcs, want.Stats)
	}
	if len(got.Point.Levels) != len(want.Point.Levels) {
		t.Fatalf("%s: operating point shape differs", ctx)
	}
	for i := range got.Point.Levels {
		if got.Point.Levels[i] != want.Point.Levels[i] {
			t.Fatalf("%s: point level %d differs", ctx, i)
		}
	}
	if (got.Schedule == nil) != (want.Schedule == nil) {
		t.Fatalf("%s: schedule presence differs", ctx)
	}
	if got.Schedule == nil {
		return
	}
	for v := range got.Schedule.Proc {
		if got.Schedule.Proc[v] != want.Schedule.Proc[v] ||
			got.Schedule.Start[v] != want.Schedule.Start[v] ||
			got.Schedule.Finish[v] != want.Schedule.Finish[v] {
			t.Fatalf("%s: placement of task %d differs", ctx, v)
		}
	}
}

// TestFaultsKZeroParity is the tentpole's behaviour-preservation pin: a
// Faults block with K=0 must produce results bit-identical to no block at
// all, for all six approaches, homogeneous and heterogeneous, and must not
// attach a backup plan.
func TestFaultsKZeroParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	g := randomGraph(rng, 18, 0.15, coarseWeight)
	m := power.Default70nm()
	pf := heteroTestPlatform(t)
	cfgs := map[string]Config{
		"model":    DeadlineFactor(g, m, 2),
		"platform": DeadlineFactorPlatform(g, pf, 2),
	}
	for name, base := range cfgs {
		withK0 := base
		withK0.Faults = &FaultConfig{K: 0, Policy: FaultBackupAnywhere}
		for _, a := range sixApproaches {
			want := runApproach(t, a, g, base)
			got := runApproach(t, a, g, withK0)
			requireIdenticalResult(t, name+"/"+a, got, want)
			if got.Backups != nil || want.Backups != nil {
				t.Fatalf("%s/%s: K=0 result carries a backup plan", name, a)
			}
		}
	}
}

// TestFaultsVerifiedEndToEnd runs every approach with K=1 under SelfCheck
// (so the engine re-verifies each plan and FT energy internally), then
// re-checks the winner externally: the plan passes the independent
// verifier, the recovery fits the deadline, reserved capacity is priced in
// (FT energy never below the non-FT result), and a worst-case fault
// pattern replays within the deadline.
func TestFaultsVerifiedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 16, 0.15, coarseWeight)
	m := power.Default70nm()
	pf := heteroTestPlatform(t)
	type machine struct {
		cfg    Config
		pf     *power.Platform
		policy FaultPolicy
	}
	machines := map[string]machine{
		"model/anywhere": {DeadlineFactor(g, m, 3), nil, FaultBackupAnywhere},
		"platform/any":   {DeadlineFactorPlatform(g, pf, 3), pf, FaultBackupAnywhere},
		"platform/hp-lp": {DeadlineFactorPlatform(g, pf, 3), pf, FaultPrimaryHPBackupLP},
	}
	for name, mc := range machines {
		base := mc.cfg
		base.SelfCheck = true
		ft := base
		ft.Faults = &FaultConfig{K: 1, Policy: mc.policy}
		for _, a := range scheduleApproaches {
			plain := runApproach(t, a, g, base)
			r := runApproach(t, a, g, ft)
			if r.Backups == nil {
				t.Fatalf("%s/%s: no backup plan on a K=1 result", name, a)
			}
			deadlineCycles := int64(ft.Deadline * r.timelineFreqForTest())
			opt := verify.FaultPlanOptions{Platform: mc.pf, Policy: mc.policy, DeadlineCycles: deadlineCycles}
			if err := verify.FaultPlan(g, r.Schedule, r.Backups, opt); err != nil {
				t.Fatalf("%s/%s: %v", name, a, err)
			}
			if rms := r.RecoveryMakespanSec(); rms > ft.Deadline*(1+1e-12) {
				t.Fatalf("%s/%s: recovery makespan %.6gs past deadline %.6gs", name, a, rms, ft.Deadline)
			}
			if r.TotalEnergy() < plain.TotalEnergy()*(1-1e-9) {
				t.Fatalf("%s/%s: FT energy %.6g below non-FT %.6g — reserved capacity unpriced",
					name, a, r.TotalEnergy(), plain.TotalEnergy())
			}
			// Worst single fault: the task whose backup finishes last.
			worst := 0
			for v := range r.Backups.Finish {
				if r.Backups.Finish[v] > r.Backups.Finish[worst] {
					worst = v
				}
			}
			rep, err := sim.ReplayFaults(r.Schedule, r.Backups, []int{worst}, r.timelineFreqForTest(), ft.Deadline)
			if err != nil {
				t.Fatalf("%s/%s: replay: %v", name, a, err)
			}
			if !rep.DeadlineMet {
				t.Fatalf("%s/%s: worst-case fault %d misses the deadline", name, a, worst)
			}
			// The analytic bounds carry no plan but must stay below every
			// fault-tolerant heuristic: reserving capacity only adds energy.
			for _, lim := range []string{ApproachLimitSF, ApproachLimitMF} {
				lb := runApproach(t, lim, g, ft)
				if lb.Backups != nil || lb.Schedule != nil {
					t.Fatalf("%s/%s: analytic bound carries a schedule or plan", name, lim)
				}
				if lb.TotalEnergy() > r.TotalEnergy()*(1+1e-9) {
					t.Fatalf("%s/%s: bound %.6g above FT %s energy %.6g",
						name, lim, lb.TotalEnergy(), a, r.TotalEnergy())
				}
			}
		}
	}
}

// timelineFreqForTest returns the frequency that converts the result's
// timeline cycles to seconds.
func (r *Result) timelineFreqForTest() float64 {
	if r.Platform != nil {
		return r.Point.TimelineFreq
	}
	return r.Level.Freq
}

// TestFaultsKIndependence pins the metamorphic relation the campaign also
// exploits: the plan covers every task regardless of K, so K=1 and K=2
// produce bit-identical schedules, plans and energies (only the digest and
// the verified pattern space differ).
func TestFaultsKIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 14, 0.2, coarseWeight)
	m := power.Default70nm()
	for _, a := range sixApproaches {
		cfg1 := DeadlineFactor(g, m, 3)
		cfg1.Faults = &FaultConfig{K: 1}
		cfg2 := cfg1
		cfg2.Faults = &FaultConfig{K: 2}
		r1 := runApproach(t, a, g, cfg1)
		r2 := runApproach(t, a, g, cfg2)
		requireIdenticalResult(t, a, r2, r1)
		if (r1.Backups == nil) != (r2.Backups == nil) {
			t.Fatalf("%s: backup-plan presence differs between K=1 and K=2", a)
		}
		if r1.Backups == nil {
			continue
		}
		for v := range r1.Backups.Proc {
			if r1.Backups.Proc[v] != r2.Backups.Proc[v] || r1.Backups.Start[v] != r2.Backups.Start[v] {
				t.Fatalf("%s: backup of task %d differs between K=1 and K=2", a, v)
			}
		}
	}
}

// TestFaultsInfeasibleDeadline: a deadline the primary schedule meets
// exactly leaves no slack for recovery, so the fault-tolerant run must
// report ErrInfeasible while the plain run succeeds.
func TestFaultsInfeasibleDeadline(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 1)
	if _, err := (&Engine{Config: cfg}).Run(context.Background(), ApproachSS, g); err != nil {
		t.Fatalf("plain run at factor 1: %v", err)
	}
	ft := cfg
	ft.Faults = &FaultConfig{K: 1}
	if _, err := (&Engine{Config: ft}).Run(context.Background(), ApproachSS, g); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("FT run at factor 1 = %v, want ErrInfeasible", err)
	}
}

// TestFaultsConfigValidation pins the rejection set: negative K, unknown
// policies, machines that cannot host a backup, and the extensions that
// re-time tasks.
func TestFaultsConfigValidation(t *testing.T) {
	g := buildFig4a(t, coarseWeight)
	m := power.Default70nm()
	run := func(cfg Config) error {
		_, err := (&Engine{Config: cfg}).Run(context.Background(), ApproachLAMPS, g)
		return err
	}
	cfg := DeadlineFactor(g, m, 3)
	cfg.Faults = &FaultConfig{K: -1}
	if err := run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative K = %v, want ErrBadConfig", err)
	}
	cfg.Faults = &FaultConfig{K: 1, Policy: "teleport"}
	if err := run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown policy = %v, want ErrBadConfig", err)
	}
	cfg.Faults = &FaultConfig{K: 1}
	cfg.MaxProcs = 1
	if err := run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("MaxProcs=1 with faults = %v, want ErrBadConfig", err)
	}
	one, err := power.Homogeneous(1, m)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DeadlineFactorPlatform(g, one, 3)
	pcfg.Faults = &FaultConfig{K: 1}
	if err := run(pcfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("1-processor platform with faults = %v, want ErrBadConfig", err)
	}

	extCfg := DeadlineFactor(g, m, 3)
	extCfg.Faults = &FaultConfig{K: 1}
	if _, err := SlackReclaimDVS(g, extCfg, true); !errors.Is(err, ErrBadConfig) {
		t.Errorf("per-task DVS with faults = %v, want ErrBadConfig", err)
	}
	if _, err := VoltageIslands(g, extCfg, true); !errors.Is(err, ErrBadConfig) {
		t.Errorf("voltage islands with faults = %v, want ErrBadConfig", err)
	}
}

// TestFaultsSingleTaskNeedsSecondProcessor: a one-task graph normally
// schedules on one processor; under fault tolerance the engine must widen
// the machine so the backup has somewhere to live.
func TestFaultsSingleTaskNeedsSecondProcessor(t *testing.T) {
	b := dag.NewBuilder("single")
	b.AddTask(coarseWeight)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := power.Default70nm()
	cfg := DeadlineFactor(g, m, 4)
	cfg.Faults = &FaultConfig{K: 1}
	cfg.SelfCheck = true
	for _, a := range scheduleApproaches {
		r := runApproach(t, a, g, cfg)
		if r.Backups == nil {
			t.Fatalf("%s: no backup plan", a)
		}
		if r.NumProcs != 2 {
			t.Errorf("%s: NumProcs = %d, want 2 (primary + backup host)", a, r.NumProcs)
		}
	}
}
