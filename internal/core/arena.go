package core

import (
	"sync"

	"lamps/internal/energy"
	"lamps/internal/power"
)

// arena is the per-request scratch of one engine invocation: the run state,
// the memoising scheduler, the candidate and sweep-pair slices, the EDF
// priority buffer and a free list of recycled Schedule shells. A request
// borrows one arena from arenaPool for its whole lifetime and returns it on
// normal completion (success or error), so a warm steady stream of requests
// — RunBatch's worker loop above all — reuses the same handful of buffers
// instead of reallocating them per request.
//
// Ownership contract: everything reachable from an arena is scratch. A
// Result that outlives the request must not alias arena memory — reduce
// detaches the winning schedule with CloneCompact before the arena is
// recycled. close nils every graph/context/schedule reference so a pooled
// arena pins neither a request's DAG nor its context, and a run that panics
// must *drop* its arena (see runGuard): a half-written arena never re-enters
// the pool.
type arena struct {
	r  run
	sc scheduler

	cands []candidate // phase-2 candidate set, value slice
	pairs []evalPair  // flattened (candidate, level/point) sweep pairs
	prio  []int64     // EDF priority scratch for engines without a warm memo
}

// evalPair is one (candidate, operating point) leaf work item of a +PS
// sweep. The homogeneous path fills lvl, the heterogeneous path pt; both
// reduce through the same slice so the two sweeps share one arena buffer.
type evalPair struct {
	c   *candidate
	lvl power.Level
	pt  power.OperatingPoint
	b   energy.Breakdown
	err error
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// close recycles the arena after a completed run: every memoised schedule
// becomes a reusable shell, and every pointer that could keep the request's
// graph, context or results alive is cleared. The slices keep their capacity
// — that is the whole point of the pool.
func (a *arena) close() {
	a.sc.recycleSchedules()
	a.sc.ctx = nil
	a.sc.g = nil
	a.sc.prio = nil
	a.sc.obs = nil
	a.sc.pf = nil
	a.sc.built = 0

	clear(a.cands)
	a.cands = a.cands[:0]
	clear(a.pairs)
	a.pairs = a.pairs[:0]

	a.r = run{}
	arenaPool.Put(a)
}

// runGuard is deferred around every approach body that holds an arena: a
// normal return (success or error) recycles the arena, a panic deliberately
// leaks it to the garbage collector — the panic may have interrupted any
// invariant, so the arena must never re-enter the pool — and is re-raised
// for the caller's recover barrier (RunBatch's ErrBatchPanic isolation).
func (a *arena) runGuard() {
	if p := recover(); p != nil {
		panic(p)
	}
	a.close()
}
