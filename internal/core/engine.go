package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/verify"
	"lamps/internal/workpool"
)

// Observer receives progress callbacks from a running Engine. Callbacks are
// serialised — the engine never invokes two hooks concurrently — so
// implementations need no locking of their own. Under a parallel engine the
// hooks run on worker goroutines inside the search; keep them fast. The
// *order* of OnScheduleBuilt/OnLevelEvaluated calls within a phase is the
// execution order and therefore not deterministic under parallelism; the
// totals are.
type Observer interface {
	// OnPhase marks the transition into a named phase of the search (see the
	// Phase* constants).
	OnPhase(name string)
	// OnScheduleBuilt reports one fresh list-scheduling invocation: the
	// processor count and the resulting makespan in cycles at maximum
	// frequency. Memoised re-uses are not reported.
	OnScheduleBuilt(nprocs int, makespanCycles int64)
	// OnLevelEvaluated reports one successful (schedule, level) energy
	// evaluation.
	OnLevelEvaluated(lvl power.Level, b energy.Breakdown)
}

// Phase names reported through Observer.OnPhase, in the order a full LAMPS
// run emits them.
const (
	PhaseMinProcs   = "min-procs"  // phase-1 binary search for the minimal feasible count
	PhaseSaturation = "saturation" // phase-2 binary search for the saturation count
	PhaseBuild      = "build"      // list-scheduling the candidate processor counts
	PhaseEvaluate   = "evaluate"   // energy evaluation / +PS level sweeps
	PhaseReclaim    = "reclaim"    // per-task DVS slack reclamation
	PhaseRefine     = "refine"     // voltage-island greedy descent
)

// Engine runs the heuristics with cooperative cancellation, progress
// observation and optional parallel search. The zero value plus a Config is
// a valid serial engine; the package-level LAMPS/ScheduleAndStretch/...
// functions are thin wrappers around it.
//
// Cancellation: Run returns ctx.Err() as soon as the current leaf work item
// — at most one ListSchedule call or one energy sweep step — completes after
// ctx is done. All internal goroutines have exited by the time Run returns,
// so a cancelled run holds no pool slots afterwards.
//
// Parallelism: with a non-nil Pool, phase 2 of the LAMPS-family searches
// builds its candidate schedules and evaluates its (schedule, level) sweeps
// on the pool's workers. The candidate set is fixed up front — the
// saturation count is located by binary search under the same makespan
// monotonicity assumption phase 1 already makes — and results are reduced in
// the paper's deterministic tie-break order (lowest processor count first,
// the N_max fallback last, fastest level first), so a parallel engine
// returns results, including Stats, identical to the serial one.
type Engine struct {
	// Config carries the problem parameters, exactly as for the wrappers.
	Config Config
	// Observer, when non-nil, receives serialised progress callbacks.
	Observer Observer
	// Pool, when non-nil, supplies bounded parallelism for the candidate
	// builds and level sweeps. The engine holds at most one pool slot per
	// leaf work item and never nests acquisitions, so a single pool can be
	// shared by many engines (and by concurrent runs of one engine) without
	// deadlock at any pool size.
	Pool *workpool.Pool

	// Engine-level priority memo: EDF priorities depend only on the graph,
	// never on the deadline or the processor count, so repeated Run calls on
	// the same graph (a sweep evaluating many deadlines, the grid endpoint)
	// reuse one computation. Guarded by prioMu; see priorities.
	prioMu    sync.Mutex
	prioGraph *dag.Graph
	prioVals  []int64
}

// priorities returns the list-scheduling priorities for g, memoised per
// graph for the default EDF policy. A custom Config.Priorities function is
// never memoised — closures may carry state the engine cannot compare — so
// ablation policies keep their exact per-run semantics.
func (e *Engine) priorities(g *dag.Graph) []int64 {
	if e.Config.Priorities != nil {
		return e.Config.Priorities(g)
	}
	e.prioMu.Lock()
	defer e.prioMu.Unlock()
	if e.prioGraph != g {
		e.prioGraph = g
		e.prioVals = sched.EDFPriorities(g, 0)
	}
	return e.prioVals
}

// runPriorities is the run-internal variant of priorities: a warm memo hit
// is returned as-is, but a miss computes into the arena's scratch buffer
// instead of populating the memo — RunBatch's throwaway sub-engines never
// see the same graph twice, so memoising there would only allocate. The
// public priorities path (and its memo semantics) is untouched.
func (e *Engine) runPriorities(a *arena, g *dag.Graph) []int64 {
	if e.Config.Priorities != nil {
		return e.Config.Priorities(g)
	}
	e.prioMu.Lock()
	if e.prioGraph == g {
		p := e.prioVals
		e.prioMu.Unlock()
		return p
	}
	e.prioMu.Unlock()
	a.prio = sched.EDFPrioritiesInto(a.prio, g, 0)
	return a.prio
}

// Run dispatches an approach by name under ctx.
func (e *Engine) Run(ctx context.Context, approach string, g *dag.Graph) (*Result, error) {
	switch approach {
	case ApproachSS:
		return e.ss(ctx, ApproachSS, g, false)
	case ApproachSSPS:
		return e.ss(ctx, ApproachSSPS, g, true)
	case ApproachLAMPS:
		return e.lamps(ctx, ApproachLAMPS, g, false)
	case ApproachLAMPSPS:
		return e.lamps(ctx, ApproachLAMPSPS, g, true)
	case ApproachLimitSF:
		return e.limit(ctx, g, LimitSF)
	case ApproachLimitMF:
		return e.limit(ctx, g, LimitMF)
	}
	return nil, fmt.Errorf("%w: unknown approach %q", ErrBadConfig, approach)
}

// obsHub serialises Observer callbacks: engine phases may run on many
// goroutines, but hooks are delivered one at a time. A hub with a nil
// Observer is free to call into.
type obsHub struct {
	mu sync.Mutex
	o  Observer
}

func (h *obsHub) phase(name string) {
	if h.o == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.o.OnPhase(name)
}

func (h *obsHub) scheduleBuilt(nprocs int, makespanCycles int64) {
	if h.o == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.o.OnScheduleBuilt(nprocs, makespanCycles)
}

func (h *obsHub) levelEvaluated(lvl power.Level, b energy.Breakdown) {
	if h.o == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.o.OnLevelEvaluated(lvl, b)
}

// run is the per-invocation state shared by the engine's phases, embedded in
// the request's arena. Exactly one of the two operating modes is active: on
// the homogeneous path m is the single model and pf is nil; on the
// heterogeneous path pf is the platform and m is unused. fref is the
// frequency one schedule cycle corresponds to at full speed in either mode
// (m.FMax() or pf.RefFMax()). cfg is a value copy so that no run state
// aliases the (possibly throwaway, stack-allocated) Engine that started it.
type run struct {
	ctx  context.Context
	cfg  Config
	m    *power.Model
	pf   *power.Platform
	fref float64
	pool *workpool.Pool
	obs  obsHub
	sc   *scheduler
	a    *arena
}

// newRun validates the request and borrows an arena for it. Validation and
// the context check come first, so the error paths that never start a search
// touch no pooled state at all. On success the caller must arrange for the
// arena to be recycled (defer r.a.runGuard()).
func (e *Engine) newRun(ctx context.Context, g *dag.Graph) (*run, error) {
	if err := e.Config.validate(g); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a := arenaPool.Get().(*arena)
	r := &a.r
	r.ctx = ctx
	r.cfg = e.Config
	r.pool = e.Pool
	r.a = a
	if e.Config.heterogeneous() {
		r.pf = e.Config.Platform
		r.fref = r.pf.RefFMax()
	} else {
		// A nil platform — or a homogeneous one, normalised to its only class
		// model here — takes the legacy single-model path unchanged, which is
		// what makes homogeneous-platform results byte-identical to the
		// pre-platform engine (pinned by TestHomogeneousPlatformParity).
		r.m = e.Config.model()
		r.fref = r.m.FMax()
	}
	r.obs.o = e.Observer
	a.sc.init(ctx, g, e.runPriorities(a, g), &r.obs, e.Config.SelfCheck, r.pf)
	r.sc = &a.sc
	return r, nil
}

// selfCheckResult is the result-level half of Config.SelfCheck: the winning
// breakdown — produced by the pooled O(log G) GapProfile path — is
// re-derived with the verifier's naive linear gap walk and must agree bit
// for bit. The schedule itself was already verified when it was built (see
// scheduler.at); the limits carry no schedule and are covered by the
// cross-heuristic invariants instead.
func (r *run) selfCheckResult(res *Result, ps bool) error {
	if !r.cfg.SelfCheck || res.Schedule == nil {
		return nil
	}
	var err error
	switch {
	case r.pf != nil && res.Backups != nil:
		err = verify.PlatformEnergyFTMatches(res.Schedule, r.pf, res.Backups, res.Point, r.cfg.Deadline,
			energy.Options{PS: ps}, res.Energy)
	case r.pf != nil:
		err = verify.PlatformEnergyMatches(res.Schedule, r.pf, res.Point, r.cfg.Deadline,
			energy.Options{PS: ps}, res.Energy)
	case res.Backups != nil:
		err = verify.EnergyFTMatches(res.Schedule, r.m, res.Backups, res.Level, r.cfg.Deadline,
			energy.Options{PS: ps}, res.Energy)
	default:
		err = verify.EnergyMatches(res.Schedule, r.m, res.Level, r.cfg.Deadline,
			energy.Options{PS: ps}, res.Energy)
	}
	if err != nil {
		return fmt.Errorf("core: self-check: %s result: %w", res.Approach, err)
	}
	return nil
}

// each runs fn(i) for every i in [0, n): serially without a pool, otherwise
// concurrently with one pool slot per item. fn must confine its writes to
// slot i and must begin with a context check — a denied pool admission
// (context done while queued) falls back to calling fn inline and relies on
// that check to bail out, so no result slot is ever silently skipped. each
// returns only after every fn call has finished.
func (r *run) each(n int, fn func(i int)) {
	if r.pool == nil || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if err := r.pool.Do(r.ctx, func() { fn(i) }); err != nil {
				fn(i)
			}
		}(i)
	}
	wg.Wait()
}

// candidate is one processor count under evaluation in phase 2.
type candidate struct {
	n       int
	s       *sched.Schedule
	plan    *sched.BackupPlan    // fault-tolerant runs: the candidate's backup plan
	prof    *energy.GapProfile   // pooled; set lazily by profileIn, released by releaseProfiles
	lvl     power.Level          // homogeneous path: the winning level
	pt      power.OperatingPoint // heterogeneous path: the winning platform point
	b       energy.Breakdown
	levels  int // (schedule, level) evaluations charged to this candidate
	skipped int // sweep levels pruned by Config.PruneSweep
	err     error
}

// feasCycles returns the cycle count the deadline must cover for this
// candidate: the recovery makespan when a backup plan is attached, the
// primary makespan otherwise. Feasibility and level sweeps are driven by
// this value, so fault-tolerant runs keep enough slack for recovery.
func (c *candidate) feasCycles() int64 {
	if c.plan != nil {
		return c.plan.RecoveryMakespan
	}
	return c.s.Makespan
}

// profilePool recycles gap profiles (sorted gap lengths, prefix sums)
// across candidates and runs, so steady-state level sweeps allocate
// nothing.
var profilePool = sync.Pool{New: func() any { return new(energy.GapProfile) }}

// profileIn returns the candidate's gap profile, extracting it from the
// built schedule on first use — per core class on the heterogeneous path.
// Each candidate is profiled by exactly one goroutine; concurrent
// Evaluate/EvaluatePoint calls on the finished profile are safe.
func (c *candidate) profileIn(r *run) *energy.GapProfile {
	if c.prof == nil {
		c.prof = profilePool.Get().(*energy.GapProfile)
		switch {
		case r.pf != nil && c.plan != nil:
			c.prof.ResetPlatformFT(c.s, r.pf, c.plan)
		case r.pf != nil:
			c.prof.ResetPlatform(c.s, r.pf)
		case c.plan != nil:
			c.prof.ResetFT(c.s, c.plan)
		default:
			c.prof.Reset(c.s)
		}
	}
	return c.prof
}

// releaseProfiles returns every candidate's profile to the pool. Called
// (deferred) once the winning Breakdown has been copied out of the
// candidates; Results never retain a profile.
func releaseProfiles(cands []candidate) {
	for i := range cands {
		if c := &cands[i]; c.prof != nil {
			profilePool.Put(c.prof)
			c.prof = nil
		}
	}
}

// buildAll list-schedules every candidate, in parallel when a pool is set.
// Fault-tolerant runs additionally plan each candidate's backup layer here
// — placement depends only on the built schedule, so it parallelises the
// same way — and surface planning failures through wrapInfeasible (a
// machine too small for backups is an infeasibility of the configuration,
// like a deadline no level can meet).
func (r *run) buildAll(cands []candidate) error {
	r.obs.phase(PhaseBuild)
	ft := r.cfg.faultsOn()
	r.each(len(cands), func(i int) {
		c := &cands[i]
		c.s, c.err = r.sc.at(c.n)
		if c.err == nil && ft {
			c.plan, c.err = r.planBackups(c.s)
		}
	})
	for i := range cands {
		if cands[i].err != nil {
			return wrapInfeasible(cands[i].err)
		}
	}
	return nil
}

// planBackups plans the backup layer of one built schedule and, under
// SelfCheck, holds it to the independent plan verifier before the engine
// evaluates any energy on top of it.
func (r *run) planBackups(s *sched.Schedule) (*sched.BackupPlan, error) {
	plan, err := sched.PlanBackups(s, r.pf, r.cfg.faultPolicy())
	if err != nil {
		return nil, err
	}
	if r.cfg.SelfCheck {
		if verr := verify.FaultPlan(r.sc.g, s, plan, verify.FaultPlanOptions{
			Platform: r.pf,
			Policy:   r.cfg.faultPolicy(),
		}); verr != nil {
			return nil, fmt.Errorf("core: self-check: backup plan on %d processors: %w", s.NumProcs, verr)
		}
	}
	return plan, nil
}

// evalAll picks each candidate's operating point and energy. With sweep
// (the +PS heuristics) every feasible level is evaluated — in parallel as
// flat (candidate, level) pairs when a pool is set — unless
// Config.PruneSweep cuts each walk at the first energy rise. The
// heterogeneous path runs the same three shapes over the platform's
// operating grid instead of the single model's ladder.
func (r *run) evalAll(cands []candidate, ps bool) {
	r.obs.phase(PhaseEvaluate)
	if r.pf != nil {
		switch {
		case !ps:
			r.each(len(cands), func(i int) { r.evalMinPlatform(&cands[i], ps) })
		case r.cfg.PruneSweep:
			r.each(len(cands), func(i int) { r.evalPrunedPlatform(&cands[i]) })
		default:
			r.evalPairsPlatform(cands)
		}
		return
	}
	switch {
	case !ps:
		r.each(len(cands), func(i int) { r.evalMin(&cands[i], ps) })
	case r.cfg.PruneSweep:
		r.each(len(cands), func(i int) { r.evalPruned(&cands[i]) })
	default:
		r.evalPairs(cands)
	}
}

// evalMin evaluates one candidate at its slowest feasible level — the full
// S&S stretch, used by the non-PS heuristics.
func (r *run) evalMin(c *candidate, ps bool) {
	if err := r.ctx.Err(); err != nil {
		c.err = err
		return
	}
	lvl, err := energy.MinFeasibleLevelCycles(c.feasCycles(), r.m, r.cfg.Deadline)
	if err != nil {
		c.err = err
		return
	}
	b, err := c.profileIn(r).Evaluate(r.m, lvl, r.cfg.Deadline, energy.Options{PS: ps})
	c.levels = 1
	if err != nil {
		c.err = err
		return
	}
	c.lvl, c.b = lvl, b
	r.obs.levelEvaluated(lvl, b)
}

// evalMinPlatform is evalMin over the platform grid: the candidate runs at
// the slowest feasible operating point.
func (r *run) evalMinPlatform(c *candidate, ps bool) {
	if err := r.ctx.Err(); err != nil {
		c.err = err
		return
	}
	pt, err := energy.MinFeasiblePointCycles(c.feasCycles(), r.pf, r.cfg.Deadline)
	if err != nil {
		c.err = err
		return
	}
	b, err := c.profileIn(r).EvaluatePoint(r.pf, pt, r.cfg.Deadline, energy.Options{PS: ps})
	c.levels = 1
	if err != nil {
		c.err = err
		return
	}
	c.pt, c.lvl, c.b = pt, pt.Levels[r.pf.RefClass()], b
	r.obs.levelEvaluated(c.lvl, b)
}

// evalPairs evaluates every (candidate, feasible level) pair of the +PS
// sweep, flattened so that each pair is one leaf work item on the pool — a
// candidate's sweep never blocks holding a slot — then reduces each
// candidate's sweep in fastest-level-first order, matching the serial walk
// exactly. The flat pair slice is arena scratch: cands is fixed-size for the
// whole sweep, so the *candidate pointers into it stay valid.
func (r *run) evalPairs(cands []candidate) {
	pairs := r.a.pairs[:0]
	for i := range cands {
		c := &cands[i]
		if err := r.ctx.Err(); err != nil {
			c.err = err
			r.a.pairs = pairs
			return
		}
		levels, err := energy.FeasibleLevelsCycles(c.feasCycles(), r.m, r.cfg.Deadline)
		if err != nil {
			c.err = err
			continue
		}
		c.profileIn(r) // extracted once here, shared read-only by all pairs
		for _, lvl := range levels {
			pairs = append(pairs, evalPair{c: c, lvl: lvl})
		}
	}
	r.a.pairs = pairs
	r.each(len(pairs), func(i int) {
		p := &pairs[i]
		if err := r.ctx.Err(); err != nil {
			p.err = err
			return
		}
		p.b, p.err = p.c.prof.Evaluate(r.m, p.lvl, r.cfg.Deadline, energy.Options{PS: true})
		if p.err == nil {
			r.obs.levelEvaluated(p.lvl, p.b)
		}
	})
	// Pairs are enumerated per candidate fastest→slowest, so reducing in
	// slice order with a strict < reproduces the serial sweep's first-wins
	// tie-break.
	for i := range pairs {
		p := &pairs[i]
		c := p.c
		c.levels++
		if c.err != nil {
			continue
		}
		if p.err != nil {
			c.err = p.err
			continue
		}
		if c.levels == 1 || p.b.Total() < c.b.Total() {
			c.lvl, c.b = p.lvl, p.b
		}
	}
}

// evalPairsPlatform is evalPairs over the platform grid: one flat
// (candidate, operating point) pair per leaf work item, reduced in
// fastest-point-first order exactly like the level sweep.
func (r *run) evalPairsPlatform(cands []candidate) {
	pairs := r.a.pairs[:0]
	for i := range cands {
		c := &cands[i]
		if err := r.ctx.Err(); err != nil {
			c.err = err
			r.a.pairs = pairs
			return
		}
		points, err := energy.FeasiblePointsCycles(c.feasCycles(), r.pf, r.cfg.Deadline)
		if err != nil {
			c.err = err
			continue
		}
		c.profileIn(r) // extracted once here, shared read-only by all pairs
		for _, pt := range points {
			pairs = append(pairs, evalPair{c: c, pt: pt})
		}
	}
	r.a.pairs = pairs
	r.each(len(pairs), func(i int) {
		p := &pairs[i]
		if err := r.ctx.Err(); err != nil {
			p.err = err
			return
		}
		p.b, p.err = p.c.prof.EvaluatePoint(r.pf, p.pt, r.cfg.Deadline, energy.Options{PS: true})
		if p.err == nil {
			r.obs.levelEvaluated(p.pt.Levels[r.pf.RefClass()], p.b)
		}
	})
	for i := range pairs {
		p := &pairs[i]
		c := p.c
		c.levels++
		if c.err != nil {
			continue
		}
		if p.err != nil {
			c.err = p.err
			continue
		}
		if c.levels == 1 || p.b.Total() < c.b.Total() {
			c.pt, c.lvl, c.b = p.pt, p.pt.Levels[r.pf.RefClass()], p.b
		}
	}
}

// evalPruned walks one candidate's feasible levels fastest→slowest and stops
// at the first level whose total energy strictly exceeds the running
// minimum. This relies on the total energy being unimodal in the supply
// voltage for a fixed schedule — DVS savings shrink monotonically towards
// the critical level while the idle/leakage cost of the stretch grows — an
// assumption the default exhaustive sweep does not make.
func (r *run) evalPruned(c *candidate) {
	if err := r.ctx.Err(); err != nil {
		c.err = err
		return
	}
	levels, err := energy.FeasibleLevelsCycles(c.feasCycles(), r.m, r.cfg.Deadline)
	if err != nil {
		c.err = err
		return
	}
	for i, lvl := range levels {
		b, err := c.profileIn(r).Evaluate(r.m, lvl, r.cfg.Deadline, energy.Options{PS: true})
		c.levels++
		if err != nil {
			c.err = err
			return
		}
		r.obs.levelEvaluated(lvl, b)
		switch {
		case c.levels == 1 || b.Total() < c.b.Total():
			c.lvl, c.b = lvl, b
		case b.Total() > c.b.Total():
			c.skipped = len(levels) - i - 1
			return
		}
	}
}

// evalPrunedPlatform is evalPruned over the platform grid, with the same
// unimodality assumption applied to the grid's σ axis.
func (r *run) evalPrunedPlatform(c *candidate) {
	if err := r.ctx.Err(); err != nil {
		c.err = err
		return
	}
	points, err := energy.FeasiblePointsCycles(c.feasCycles(), r.pf, r.cfg.Deadline)
	if err != nil {
		c.err = err
		return
	}
	for i, pt := range points {
		b, err := c.profileIn(r).EvaluatePoint(r.pf, pt, r.cfg.Deadline, energy.Options{PS: true})
		c.levels++
		if err != nil {
			c.err = err
			return
		}
		r.obs.levelEvaluated(pt.Levels[r.pf.RefClass()], b)
		switch {
		case c.levels == 1 || b.Total() < c.b.Total():
			c.pt, c.lvl, c.b = pt, pt.Levels[r.pf.RefClass()], b
		case b.Total() > c.b.Total():
			c.skipped = len(points) - i - 1
			return
		}
	}
}

// stats assembles the run's Stats: fresh schedules from the memo, level
// counts summed over candidates in slice order — both independent of the
// execution interleaving, so serial and parallel runs report identical
// Stats.
func (r *run) stats(cands []candidate) Stats {
	s := Stats{SchedulesBuilt: r.sc.builtCount()}
	for i := range cands {
		s.LevelsEvaluated += cands[i].levels
		s.LevelsSkipped += cands[i].skipped
	}
	return s
}

// reduce picks the winning candidate in the paper's deterministic order:
// strictly lower total energy wins, ties keep the earlier candidate (lower
// processor count, the N_max fallback last). Any candidate error — the
// first in candidate order — fails the whole run, as the serial walk did.
// On the heterogeneous path the result additionally carries the platform
// and the winning operating point (Level stays the reference-class level
// for homogeneous-consumer compatibility).
//
// The winning schedule is detached with CloneCompact: the memoised original
// is arena scratch and will be recycled when the run closes, while the
// Result may outlive the request indefinitely (the serving layer's cache
// keeps rendered results).
func reduce(r *run, approach string, g *dag.Graph, cands []candidate) (*Result, error) {
	// Phase 1 sizes the candidate range by the *primary* makespan, so on the
	// fault-tolerant path the smallest counts can still be
	// recovery-infeasible (the recovery makespan shrinks as processors are
	// added). Those candidates are skipped rather than failing the run; any
	// other error — and, on the legacy path, any error at all — still fails
	// it, first in candidate order, as the serial walk did.
	ft := r.cfg.faultsOn()
	var firstErr error
	var best *candidate
	for i := range cands {
		c := &cands[i]
		if c.err != nil {
			if ft && errors.Is(c.err, energy.ErrDeadline) {
				if firstErr == nil {
					firstErr = c.err
				}
				continue
			}
			return nil, wrapInfeasible(c.err)
		}
		if best == nil || c.b.Total() < best.b.Total() {
			best = c
		}
	}
	if best == nil {
		return nil, wrapInfeasible(firstErr)
	}
	res := &Result{
		Approach: approach,
		Graph:    g,
		NumProcs: best.n,
		Level:    best.lvl,
		Schedule: best.s.CloneCompact(),
		Backups:  best.plan, // owned by this candidate, never pooled
		Energy:   best.b,
	}
	if r.pf != nil {
		res.Platform = r.pf
		res.Point = best.pt
	}
	return res, nil
}

// ss implements the shared S&S structure: schedule on as many processors as
// the graph can occupy — the machine is assumed to have at least as many
// processors as the maximum task concurrency, so the EDF schedule dispatches
// every task at its earliest start — then trade the remaining slack for DVS
// (and, with ps, processor shutdown). Every processor that executes at least
// one task is employed and stays on, which is precisely the wastefulness
// LAMPS improves upon: in the paper's Fig. 4 example S&S employs 3
// processors although 2 would reach the same makespan.
func (e *Engine) ss(ctx context.Context, approach string, g *dag.Graph, ps bool) (*Result, error) {
	r, err := e.newRun(ctx, g)
	if err != nil {
		return nil, err
	}
	defer r.a.runGuard()
	cands := append(r.a.cands[:0], candidate{n: r.cfg.maxUsefulProcs(g)})
	r.a.cands = cands
	defer releaseProfiles(cands)
	if err := r.buildAll(cands); err != nil {
		return nil, err
	}
	r.evalAll(cands, ps)
	best, err := reduce(r, approach, g, cands)
	if err != nil {
		return nil, err
	}
	best.NumProcs = cands[0].s.ProcsUsed()
	if best.Backups != nil {
		// Backup-only processors must stay powered too.
		best.NumProcs = best.Backups.EmployedWith(cands[0].s)
	}
	best.Stats = r.stats(cands)
	if err := r.selfCheckResult(best, ps); err != nil {
		return nil, err
	}
	return best, nil
}

// lamps implements the shared LAMPS structure (Fig. 5 and Fig. 8 of the
// paper): a binary search for the minimal feasible processor count, then an
// evaluation of every count up to the saturation point — where adding
// processors stops reducing the makespan — because the energy as a function
// of the processor count has local minima (Fig. 6), so no count in that
// range can be skipped.
func (e *Engine) lamps(ctx context.Context, approach string, g *dag.Graph, ps bool) (*Result, error) {
	r, err := e.newRun(ctx, g)
	if err != nil {
		return nil, err
	}
	defer r.a.runGuard()
	r.obs.phase(PhaseMinProcs)
	deadlineCycles := r.cfg.Deadline * r.fref
	hi := r.cfg.maxUsefulProcs(g)
	nmin, err := r.sc.minProcsForDeadline(deadlineCycles, hi)
	if err != nil {
		return nil, err
	}
	if r.cfg.faultsOn() && nmin < 2 {
		// Backups need a second processor; maxUsefulProcs guarantees hi >= 2.
		nmin = 2
	}
	r.obs.phase(PhaseSaturation)
	nstop, err := r.sc.saturationPoint(nmin, hi)
	if err != nil {
		return nil, err
	}
	cands := r.a.cands[:0]
	for n := nmin; n <= nstop; n++ {
		cands = append(cands, candidate{n: n})
	}
	if nstop < hi {
		// Also consider N_max, the "as many processors as can be employed
		// efficiently" configuration that S&S uses, so the LAMPS search space
		// always contains the S&S(+PS) solution: with shutdown available,
		// wider schedules can consolidate idle time into fewer, longer,
		// sleepable gaps, so skipping it could make LAMPS+PS worse than
		// S&S+PS.
		cands = append(cands, candidate{n: hi})
	}
	r.a.cands = cands
	defer releaseProfiles(cands)
	if err := r.buildAll(cands); err != nil {
		return nil, err
	}
	r.evalAll(cands, ps)
	best, err := reduce(r, approach, g, cands)
	if err != nil {
		return nil, err
	}
	best.Stats = r.stats(cands)
	if err := r.selfCheckResult(best, ps); err != nil {
		return nil, err
	}
	return best, nil
}

// limit wraps the closed-form LIMIT-SF/MF bounds with the engine's context
// and observer conventions.
func (e *Engine) limit(ctx context.Context, g *dag.Graph, fn func(*dag.Graph, Config) (*Result, error)) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hub := obsHub{o: e.Observer}
	hub.phase(PhaseEvaluate)
	return fn(g, e.Config)
}
