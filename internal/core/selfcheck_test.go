package core

import (
	"context"
	"errors"
	"testing"

	"lamps/internal/power"
	"lamps/internal/taskgen"
	"lamps/internal/verify"
)

// TestSelfCheckResultsIdentical: enabling Config.SelfCheck must change
// nothing observable on valid problems — every approach returns the same
// processor count, level, energy breakdown and stats, bit for bit.
func TestSelfCheckResultsIdentical(t *testing.T) {
	approaches := []string{
		ApproachSS, ApproachSSPS, ApproachLAMPS, ApproachLAMPSPS,
		ApproachLimitSF, ApproachLimitMF,
	}
	for i := 0; i < 6; i++ {
		g, err := taskgen.Member(10+6*i, i, int64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		for _, factor := range []float64{1.5, 4} {
			plain := Engine{Config: DeadlineFactor(g, nil, factor)}
			checked := Engine{Config: DeadlineFactor(g, nil, factor)}
			checked.Config.SelfCheck = true
			for _, ap := range approaches {
				a, errA := plain.Run(context.Background(), ap, g)
				b, errB := checked.Run(context.Background(), ap, g)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("graph %d %s factor %g: err %v vs self-checked %v", i, ap, factor, errA, errB)
				}
				if errA != nil {
					continue
				}
				if a.Energy != b.Energy || a.NumProcs != b.NumProcs ||
					a.Level != b.Level || a.Stats != b.Stats {
					t.Fatalf("graph %d %s factor %g: self-check changed the result:\n  plain   %+v\n  checked %+v",
						i, ap, factor, a, b)
				}
			}
		}
	}
}

// TestSelfCheckOffByDefault pins the acceptance contract: the zero Config
// does not verify.
func TestSelfCheckOffByDefault(t *testing.T) {
	if (Config{}).SelfCheck {
		t.Fatal("SelfCheck is on in the zero Config")
	}
}

// TestSelfCheckCatchesTamperedResult exercises the failure path white-box:
// the engine's schedules are always valid, so the only way to see a
// violation surface is to hand selfCheckResult a result whose breakdown was
// corrupted after the fact. The error must match verify.ErrViolation so
// callers (lampsd's verify-failure counter) can classify it.
func TestSelfCheckCatchesTamperedResult(t *testing.T) {
	g, err := taskgen.Member(16, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := Engine{Config: DeadlineFactor(g, nil, 2)}
	e.Config.SelfCheck = true
	res, err := e.Run(context.Background(), ApproachLAMPSPS, g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.newRun(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.selfCheckResult(res, true); err != nil {
		t.Fatalf("pristine result rejected: %v", err)
	}
	tampered := *res
	m := power.Default70nm()
	tampered.Energy.IdleTime += 1 / res.Level.Freq
	tampered.Energy.Idle = tampered.Energy.IdleTime * m.IdlePower(res.Level)
	verr := r.selfCheckResult(&tampered, true)
	if !errors.Is(verr, verify.ErrViolation) {
		t.Fatalf("tampered breakdown not flagged as a violation: %v", verr)
	}
}
