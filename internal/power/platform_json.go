package power

import (
	"encoding/json"
	"fmt"
	"io"
)

// platformJSON is the serialised form of a Platform: the classes with their
// model parameters, and the processor vector as class names (readable in
// committed golden files). Derived data — ladders, the reference class, the
// operating grid — is rebuilt on load.
type platformJSON struct {
	Classes []classJSON `json:"classes"`
	Procs   []string    `json:"procs"`
}

type classJSON struct {
	Name  string    `json:"name"`
	Model modelJSON `json:"model"`
}

// WriteJSON serialises the platform so it can be committed next to
// experiments and loaded with LoadPlatformJSON (or the CLIs' -platform
// flag).
func (pf *Platform) WriteJSON(w io.Writer) error {
	doc := platformJSON{
		Classes: make([]classJSON, len(pf.classes)),
		Procs:   make([]string, len(pf.procs)),
	}
	for c, cl := range pf.classes {
		m := cl.Model
		doc.Classes[c] = classJSON{
			Name: cl.Name,
			Model: modelJSON{
				K1: m.K1, K2: m.K2, K3: m.K3, K4: m.K4, K5: m.K5, K6: m.K6, K7: m.K7,
				Vdd0: m.Vdd0, Vbs: m.Vbs, Alpha: m.Alpha, Vth1: m.Vth1, Ij: m.Ij,
				Ceff: m.Ceff, Ld: m.Ld, Lg: m.Lg,
				Activity: m.Activity, POn: m.POn, PSleep: m.PSleep, EOverhead: m.EOverhead,
				VddMax: m.VddMax, VddMin: m.VddMin, VddStep: m.VddStep,
			},
		}
	}
	for p, c := range pf.procs {
		doc.Procs[p] = pf.classes[c].Name
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadPlatformJSON reads a platform serialised by Platform.WriteJSON (or
// written by hand), builds every class model and validates the processor
// assignment.
func LoadPlatformJSON(r io.Reader) (*Platform, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc platformJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("power: decoding platform: %w", err)
	}
	classes := make([]CoreClass, len(doc.Classes))
	byName := make(map[string]int, len(doc.Classes))
	for c, cj := range doc.Classes {
		j := cj.Model
		m := &Model{
			K1: j.K1, K2: j.K2, K3: j.K3, K4: j.K4, K5: j.K5, K6: j.K6, K7: j.K7,
			Vdd0: j.Vdd0, Vbs: j.Vbs, Alpha: j.Alpha, Vth1: j.Vth1, Ij: j.Ij,
			Ceff: j.Ceff, Ld: j.Ld, Lg: j.Lg,
			Activity: j.Activity, POn: j.POn, PSleep: j.PSleep, EOverhead: j.EOverhead,
			VddMax: j.VddMax, VddMin: j.VddMin, VddStep: j.VddStep,
		}
		if err := m.Build(); err != nil {
			return nil, fmt.Errorf("power: class %q: %w", cj.Name, err)
		}
		classes[c] = CoreClass{Name: cj.Name, Model: m}
		byName[cj.Name] = c
	}
	procs := make([]int, len(doc.Procs))
	for p, name := range doc.Procs {
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("%w: processor %d references unknown class %q", ErrBadParams, p, name)
		}
		procs[p] = c
	}
	return NewPlatform(classes, procs)
}
