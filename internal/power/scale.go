package power

import "fmt"

// WithLeakage returns a copy of the model with the sub-threshold leakage
// current (K3) and the junction current (Ij) scaled by the given factor,
// rebuilt and ready for use. The paper motivates leakage awareness with the
// prediction that leakage grows by about 5x per technology generation
// (Borkar, IEEE Micro 1999); scaling the leakage terms explores that axis:
// more leakage raises the critical frequency and shifts the optimum from
// "many slow processors" towards "few fast ones plus shutdown".
func (m *Model) WithLeakage(factor float64) (*Model, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("%w: leakage factor %g", ErrBadParams, factor)
	}
	c := *m
	c.levels = nil
	c.built = false
	c.K3 *= factor
	c.Ij *= factor
	if err := c.Build(); err != nil {
		return nil, err
	}
	return &c, nil
}

// WithoutLeakage returns a copy of the model with (nearly) zero static
// power, approximating past technology generations in which dynamic power
// dominated and Schedule-and-Stretch was near-optimal.
func (m *Model) WithoutLeakage() (*Model, error) {
	return m.WithLeakage(1e-9)
}
