package power

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
)

// lpModel returns the low-power core class used across the platform tests:
// the 70 nm constants with a lower voltage ceiling (slower fmax), a smaller
// switched capacitance and cheaper on/sleep powers — the same parameters as
// the committed examples/platforms/lp3hp1.json golden.
func lpModel(t *testing.T) *Model {
	t.Helper()
	lp := *Default70nm()
	lp.VddMax = 0.85
	lp.Ceff = 0.20e-9
	lp.POn = 0.04
	lp.PSleep = 25e-6
	lp.EOverhead = 200e-6
	if err := lp.Build(); err != nil {
		t.Fatalf("building LP model: %v", err)
	}
	return &lp
}

// lp3hp1 returns the canonical heterogeneous test platform: three LP cores
// and one HP core.
func lp3hp1(t *testing.T) *Platform {
	t.Helper()
	pf, err := NewPlatform(
		[]CoreClass{{Name: "lp", Model: lpModel(t)}, {Name: "hp", Model: Default70nm()}},
		[]int{0, 0, 0, 1},
	)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return pf
}

func TestPlatformConstructionErrors(t *testing.T) {
	m := Default70nm()
	unbuilt := &Model{}
	cases := []struct {
		name    string
		classes []CoreClass
		procs   []int
		want    error
	}{
		{"no classes", nil, []int{0}, ErrBadParams},
		{"no procs", []CoreClass{{Name: "a", Model: m}}, nil, ErrBadParams},
		{"empty name", []CoreClass{{Name: "", Model: m}}, []int{0}, ErrBadParams},
		{"duplicate name", []CoreClass{{Name: "a", Model: m}, {Name: "a", Model: m}}, []int{0}, ErrBadParams},
		{"nil model", []CoreClass{{Name: "a", Model: nil}}, []int{0}, ErrNotBuilt},
		{"unbuilt model", []CoreClass{{Name: "a", Model: unbuilt}}, []int{0}, ErrNotBuilt},
		{"bad class ref", []CoreClass{{Name: "a", Model: m}}, []int{1}, ErrBadParams},
		{"negative class ref", []CoreClass{{Name: "a", Model: m}}, []int{-1}, ErrBadParams},
	}
	for _, tc := range cases {
		if _, err := NewPlatform(tc.classes, tc.procs); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestHomogeneousPlatformGridMatchesLadder pins the degenerate case every
// legacy caller relies on: a single-class platform's operating grid is the
// class ladder, bit for bit — same norms, same exact level frequencies as
// the timeline frequency.
func TestHomogeneousPlatformGridMatchesLadder(t *testing.T) {
	m := Default70nm()
	pf, err := Homogeneous(4, m)
	if err != nil {
		t.Fatalf("Homogeneous: %v", err)
	}
	if !pf.IsHomogeneous() {
		t.Fatal("IsHomogeneous = false")
	}
	if pf.NumProcs() != 4 || pf.NumClasses() != 1 {
		t.Fatalf("shape = %d procs, %d classes", pf.NumProcs(), pf.NumClasses())
	}
	levels := m.Levels()
	pts := pf.Points()
	if len(pts) != len(levels) {
		t.Fatalf("grid has %d points, ladder has %d levels", len(pts), len(levels))
	}
	for i, pt := range pts {
		l := levels[i]
		if pt.Norm != l.Norm {
			t.Errorf("point %d: Norm = %v, want %v", i, pt.Norm, l.Norm)
		}
		if pt.TimelineFreq != l.Freq {
			t.Errorf("point %d: TimelineFreq = %v, want exact ladder Freq %v", i, pt.TimelineFreq, l.Freq)
		}
		if pt.Levels[0] != l {
			t.Errorf("point %d: realising level = %+v, want %+v", i, pt.Levels[0], l)
		}
	}
	if pf.Scale(0) != 1 {
		t.Errorf("Scale(0) = %v, want 1", pf.Scale(0))
	}
	if got := pf.ScaledWeight(0, 12345); got != 12345 {
		t.Errorf("ScaledWeight = %d, want identity", got)
	}
}

func TestPlatformRefClassAndScale(t *testing.T) {
	pf := lp3hp1(t)
	if pf.RefClass() != 1 {
		t.Fatalf("RefClass = %d, want 1 (hp has the higher fmax)", pf.RefClass())
	}
	if pf.RefFMax() != pf.ClassModel(1).FMax() {
		t.Errorf("RefFMax = %v, want hp fmax %v", pf.RefFMax(), pf.ClassModel(1).FMax())
	}
	if pf.Scale(1) != 1 {
		t.Errorf("reference scale = %v, want 1", pf.Scale(1))
	}
	if s := pf.Scale(0); s <= 1 {
		t.Errorf("LP scale = %v, want > 1", s)
	}
	for p := 0; p < 3; p++ {
		if pf.ClassOf(p) != 0 || pf.ModelOf(p) != pf.ClassModel(0) {
			t.Errorf("proc %d not assigned to class lp", p)
		}
	}
	if pf.ClassOf(3) != 1 {
		t.Errorf("proc 3 class = %d, want 1", pf.ClassOf(3))
	}
	if pf.IsHomogeneous() {
		t.Error("IsHomogeneous = true for a two-class platform")
	}
}

// TestPlatformGridShape checks the heterogeneous operating grid: strictly
// descending deduplicated norms, descending timeline frequency, and per
// class a realising level that actually sustains the point's σ.
func TestPlatformGridShape(t *testing.T) {
	pf := lp3hp1(t)
	pts := pf.Points()
	if len(pts) == 0 {
		t.Fatal("empty grid")
	}
	if pts[0].Norm != 1 {
		t.Errorf("fastest point Norm = %v, want 1", pts[0].Norm)
	}
	if pts[0].TimelineFreq != pf.RefFMax() {
		t.Errorf("fastest TimelineFreq = %v, want RefFMax %v", pts[0].TimelineFreq, pf.RefFMax())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Norm >= pts[i-1].Norm {
			t.Errorf("norms not strictly descending at %d: %v then %v", i, pts[i-1].Norm, pts[i].Norm)
		}
		if pts[i].TimelineFreq >= pts[i-1].TimelineFreq {
			t.Errorf("timeline freq not descending at %d", i)
		}
	}
	for i, pt := range pts {
		if pt.Index != i {
			t.Errorf("point %d has Index %d", i, pt.Index)
		}
		for c := 0; c < pf.NumClasses(); c++ {
			if l := pt.Levels[c]; l.Norm < pt.Norm*(1-1e-12) {
				t.Errorf("point %d class %d: level norm %v does not sustain σ=%v", i, c, l.Norm, pt.Norm)
			}
		}
	}
	// The union grid is at least as fine as the bigger of the two ladders.
	if n := len(pf.ClassModel(1).Levels()); len(pts) < n {
		t.Errorf("grid has %d points, hp ladder alone has %d", len(pts), n)
	}
}

func TestScaledWeightNeverShort(t *testing.T) {
	pf := lp3hp1(t)
	for _, w := range []int64{1, 2, 3, 7, 1000, 3_100_000, 1 << 40} {
		for c := 0; c < pf.NumClasses(); c++ {
			sw := pf.ScaledWeight(c, w)
			// The slot in seconds must cover the execution time at the
			// class's own frequency.
			if float64(sw)/pf.RefFMax() < float64(w)/pf.ClassModel(c).FMax()*(1-1e-12) {
				t.Errorf("class %d weight %d: slot %d too short", c, w, sw)
			}
			if c == pf.RefClass() && sw != w {
				t.Errorf("reference class weight %d scaled to %d", w, sw)
			}
		}
	}
}

func TestPointForFrequency(t *testing.T) {
	pf := lp3hp1(t)
	pts := pf.Points()
	if _, err := pf.PointForFrequency(pf.RefFMax() * 1.01); !errors.Is(err, ErrInfeasible) {
		t.Errorf("above-max frequency: err = %v, want ErrInfeasible", err)
	}
	for _, pt := range pts {
		got, err := pf.PointForFrequency(pt.TimelineFreq)
		if err != nil {
			t.Fatalf("PointForFrequency(%v): %v", pt.TimelineFreq, err)
		}
		if got.Index != pt.Index {
			t.Errorf("PointForFrequency(%v) = point %d, want %d", pt.TimelineFreq, got.Index, pt.Index)
		}
	}
	// Slightly above a point's frequency selects the next faster point.
	if len(pts) > 1 {
		got, err := pf.PointForFrequency(pts[1].TimelineFreq * 1.0001)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != 0 {
			t.Errorf("just above point 1 = point %d, want 0", got.Index)
		}
	}
}

// samePlatform compares two platforms' observable state exactly.
func samePlatform(t *testing.T, a, b *Platform) {
	t.Helper()
	if a.NumClasses() != b.NumClasses() || a.NumProcs() != b.NumProcs() {
		t.Fatalf("shape mismatch: %d/%d classes, %d/%d procs",
			a.NumClasses(), b.NumClasses(), a.NumProcs(), b.NumProcs())
	}
	for c := 0; c < a.NumClasses(); c++ {
		if a.Class(c).Name != b.Class(c).Name {
			t.Errorf("class %d name %q vs %q", c, a.Class(c).Name, b.Class(c).Name)
		}
		if !reflect.DeepEqual(a.ClassModel(c).Levels(), b.ClassModel(c).Levels()) {
			t.Errorf("class %d ladders differ", c)
		}
	}
	for p := 0; p < a.NumProcs(); p++ {
		if a.ClassOf(p) != b.ClassOf(p) {
			t.Errorf("proc %d class %d vs %d", p, a.ClassOf(p), b.ClassOf(p))
		}
	}
	if a.RefClass() != b.RefClass() || a.RefFMax() != b.RefFMax() {
		t.Errorf("reference mismatch")
	}
	if !reflect.DeepEqual(a.Points(), b.Points()) {
		t.Errorf("operating grids differ")
	}
}

func TestPlatformJSONRoundTrip(t *testing.T) {
	pf := lp3hp1(t)
	var buf bytes.Buffer
	if err := pf.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := LoadPlatformJSON(&buf)
	if err != nil {
		t.Fatalf("LoadPlatformJSON: %v", err)
	}
	samePlatform(t, pf, got)
}

// TestGoldenPlatformFile pins the committed example platform: it must load,
// describe the documented LP×3 + HP×1 machine, and round-trip bit-exactly —
// the same file the CLIs' -platform flag is documented against.
func TestGoldenPlatformFile(t *testing.T) {
	f, err := os.Open("../../examples/platforms/lp3hp1.json")
	if err != nil {
		t.Fatalf("opening golden platform: %v", err)
	}
	defer f.Close()
	pf, err := LoadPlatformJSON(f)
	if err != nil {
		t.Fatalf("loading golden platform: %v", err)
	}
	if pf.NumProcs() != 4 || pf.NumClasses() != 2 {
		t.Fatalf("golden shape = %d procs, %d classes, want 4 and 2", pf.NumProcs(), pf.NumClasses())
	}
	if pf.Class(0).Name != "lp" || pf.Class(1).Name != "hp" {
		t.Fatalf("golden classes = %q, %q", pf.Class(0).Name, pf.Class(1).Name)
	}
	samePlatform(t, lp3hp1(t), pf)
	var buf bytes.Buffer
	if err := pf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile("../../examples/platforms/lp3hp1.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), disk) {
		t.Error("golden file is not the canonical WriteJSON encoding; regenerate it")
	}
}

func TestLoadPlatformJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"classes": [], "procs": [], "extra": 1}`},
		{"unknown proc class", `{"classes": [{"name": "a", "model": {"k1": 1}}], "procs": ["b"]}`},
		{"invalid model", `{"classes": [{"name": "a", "model": {"vdd_max": 0}}], "procs": ["a"]}`},
		{"empty platform", `{"classes": [], "procs": []}`},
	}
	for _, tc := range cases {
		if _, err := LoadPlatformJSON(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
