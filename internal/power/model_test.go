package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < rel
	}
	return math.Abs(got-want)/math.Abs(want) < rel
}

// TestPaperAnchorFMax checks that the Table 1 constants yield the paper's
// quoted maximum frequency of 3.1 GHz at 1.0 V.
func TestPaperAnchorFMax(t *testing.T) {
	m := Default70nm()
	if !approx(m.FMax(), 3.1e9, 0.01) {
		t.Errorf("FMax = %g, want ≈3.1 GHz", m.FMax())
	}
}

// TestPaperAnchorCriticalLevel checks the discrete critical operating point:
// the paper reports Vdd = 0.7 V at a normalised frequency of 0.41.
func TestPaperAnchorCriticalLevel(t *testing.T) {
	m := Default70nm()
	c := m.CriticalLevel()
	if !approx(c.Vdd, 0.70, 1e-6) {
		t.Errorf("critical Vdd = %g, want 0.70", c.Vdd)
	}
	if !approx(c.Norm, 0.41, 0.02) {
		t.Errorf("critical normalised frequency = %g, want ≈0.41", c.Norm)
	}
}

// TestPaperAnchorContinuousCritical checks the continuous critical frequency
// of ≈0.38·fmax reported in Section 3.3.
func TestPaperAnchorContinuousCritical(t *testing.T) {
	m := Default70nm()
	norm := m.CriticalFrequencyContinuous() / m.FMax()
	if norm < 0.35 || norm > 0.40 {
		t.Errorf("continuous critical frequency = %.3f·fmax, want ≈0.38", norm)
	}
}

// TestPaperAnchorPowerAtMax checks the power breakdown at full speed against
// Fig. 2a: P_AC ≈ 1.33 W, P_DC ≈ 0.71 W, total ≈ 2.15 W.
func TestPaperAnchorPowerAtMax(t *testing.T) {
	m := Default70nm()
	l := m.MaxLevel()
	if pac := m.PowerAC(l.Vdd, l.Freq); !approx(pac, 1.33, 0.02) {
		t.Errorf("PowerAC = %g, want ≈1.33 W", pac)
	}
	if pdc := m.PowerDC(l.Vdd); !approx(pdc, 0.715, 0.02) {
		t.Errorf("PowerDC = %g, want ≈0.71 W", pdc)
	}
	if p := m.LevelPower(l); !approx(p, 2.15, 0.02) {
		t.Errorf("Power = %g, want ≈2.15 W", p)
	}
}

// TestPaperAnchorBreakeven checks Fig. 3: at half the maximum frequency an
// idle period of ≈1.7 million cycles is required for shutdown to pay off.
func TestPaperAnchorBreakeven(t *testing.T) {
	m := Default70nm()
	// Find Vdd yielding 0.5 normalised frequency via the analytic inverse.
	vdd, err := m.VddForFrequency(0.5 * m.FMax())
	if err != nil {
		t.Fatal(err)
	}
	l := Level{Vdd: vdd, Freq: m.Frequency(vdd), Norm: 0.5}
	cycles := m.BreakevenCycles(l)
	if !approx(cycles, 1.7e6, 0.05) {
		t.Errorf("breakeven at f=0.5 = %g cycles, want ≈1.7e6", cycles)
	}
}

func TestLadderShape(t *testing.T) {
	m := Default70nm()
	ls := m.Levels()
	if len(ls) != 13 { // 1.00, 0.95, ..., 0.40
		t.Fatalf("ladder has %d levels, want 13", len(ls))
	}
	for i, l := range ls {
		if l.Index != i {
			t.Errorf("level %d has Index %d", i, l.Index)
		}
		if i > 0 {
			if l.Vdd >= ls[i-1].Vdd {
				t.Errorf("Vdd not strictly decreasing at %d", i)
			}
			if l.Freq >= ls[i-1].Freq {
				t.Errorf("Freq not strictly decreasing at %d", i)
			}
		}
		if l.Freq <= 0 {
			t.Errorf("level %d has non-positive frequency", i)
		}
		if !approx(l.Norm, l.Freq/m.FMax(), 1e-12) {
			t.Errorf("level %d Norm inconsistent", i)
		}
	}
	if m.MaxLevel().Index != 0 || m.MinLevel().Index != len(ls)-1 {
		t.Errorf("MaxLevel/MinLevel indices wrong")
	}
}

func TestEnergyPerCycleConvexAroundCritical(t *testing.T) {
	m := Default70nm()
	c := m.CriticalLevel()
	for _, l := range m.Levels() {
		if m.EnergyPerCycle(l) < m.EnergyPerCycle(c)-1e-18 {
			t.Errorf("%v has lower energy/cycle than critical level", l)
		}
	}
	// Energy per cycle decreases monotonically from the top of the ladder
	// down to the critical level and increases below it.
	ls := m.Levels()
	for i := 1; i <= c.Index; i++ {
		if m.EnergyPerCycle(ls[i]) > m.EnergyPerCycle(ls[i-1]) {
			t.Errorf("energy/cycle not decreasing above critical at %d", i)
		}
	}
	for i := c.Index + 1; i < len(ls); i++ {
		if m.EnergyPerCycle(ls[i]) < m.EnergyPerCycle(ls[i-1]) {
			t.Errorf("energy/cycle not increasing below critical at %d", i)
		}
	}
}

func TestLevelForFrequency(t *testing.T) {
	m := Default70nm()
	tests := []struct {
		f       float64
		wantVdd float64
		wantErr bool
	}{
		{m.FMax(), 1.00, false},
		{m.FMax() * 0.999, 1.00, false},
		{m.Level(1).Freq, 0.95, false},
		{m.Level(1).Freq * 1.001, 1.00, false},
		{1.0, m.MinLevel().Vdd, false}, // absurdly low: slowest level
		{m.FMax() * 1.1, 0, true},
	}
	for _, tc := range tests {
		l, err := m.LevelForFrequency(tc.f)
		if tc.wantErr {
			if !errors.Is(err, ErrInfeasible) {
				t.Errorf("LevelForFrequency(%g) err = %v, want ErrInfeasible", tc.f, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("LevelForFrequency(%g): %v", tc.f, err)
			continue
		}
		if !approx(l.Vdd, tc.wantVdd, 1e-9) {
			t.Errorf("LevelForFrequency(%g) Vdd = %g, want %g", tc.f, l.Vdd, tc.wantVdd)
		}
		if l.Freq < tc.f*(1-1e-12) {
			t.Errorf("LevelForFrequency(%g) returned too-slow level %v", tc.f, l)
		}
	}
}

func TestVddFrequencyRoundTrip(t *testing.T) {
	m := Default70nm()
	f := func(raw uint16) bool {
		vdd := 0.40 + float64(raw%6000)/10000 // 0.40 .. 1.00
		fr := m.Frequency(vdd)
		if fr <= 0 {
			return true // below threshold, inverse undefined
		}
		back, err := m.VddForFrequency(fr)
		return err == nil && approx(back, vdd, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrequencyMonotonicInVdd(t *testing.T) {
	m := Default70nm()
	f := func(a, b uint16) bool {
		v1 := 0.40 + float64(a%6000)/10000
		v2 := 0.40 + float64(b%6000)/10000
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return m.Frequency(v1) <= m.Frequency(v2)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBreakevenMonotonicity(t *testing.T) {
	// Lower frequency => lower idle power => longer break-even time.
	m := Default70nm()
	ls := m.Levels()
	for i := 1; i < len(ls); i++ {
		if m.BreakevenTime(ls[i]) < m.BreakevenTime(ls[i-1]) {
			t.Errorf("break-even time not increasing from level %d to %d", i-1, i)
		}
	}
	for _, l := range ls {
		if m.BreakevenTime(l) <= 0 {
			t.Errorf("%v: non-positive break-even time", l)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	mods := []func(*Model){
		func(m *Model) { m.VddStep = 0 },
		func(m *Model) { m.VddStep = -0.05 },
		func(m *Model) { m.VddMin = 1.2 },
		func(m *Model) { m.Alpha = 0 },
		func(m *Model) { m.Ceff = -1 },
		func(m *Model) { m.POn = -0.1 },
		func(m *Model) { m.EOverhead = -1 },
		func(m *Model) { m.VddMax = 0.1 }, // below threshold: empty ladder
	}
	for i, mod := range mods {
		m := Default70nm()
		mod(m)
		if err := m.Build(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: Build err = %v, want ErrBadParams", i, err)
		}
	}
}

func TestCustomTechnologyRebuild(t *testing.T) {
	m := Default70nm()
	m.POn = 0.05
	m.VddMin = 0.5
	if err := m.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.MinLevel().Vdd < 0.5-1e-9 {
		t.Errorf("MinLevel Vdd = %g, want ≥ 0.5", m.MinLevel().Vdd)
	}
	if got := m.IdlePower(m.MaxLevel()); !approx(got, m.PowerDC(1.0)+0.05, 1e-12) {
		t.Errorf("IdlePower did not pick up new POn")
	}
}

func TestIdlePowerExcludesDynamic(t *testing.T) {
	m := Default70nm()
	for _, l := range m.Levels() {
		if m.IdlePower(l) >= m.LevelPower(l) {
			t.Errorf("%v: idle power %g >= active power %g", l, m.IdlePower(l), m.LevelPower(l))
		}
		if m.IdlePower(l) <= m.PSleep {
			t.Errorf("%v: idle power not above sleep power", l)
		}
	}
}

func TestLevelString(t *testing.T) {
	m := Default70nm()
	s := m.MaxLevel().String()
	if s == "" {
		t.Error("empty Level.String()")
	}
}

func BenchmarkEnergyPerCycle(b *testing.B) {
	m := Default70nm()
	ls := m.Levels()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.EnergyPerCycle(ls[i%len(ls)])
	}
	_ = sink
}
