package power

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadPlatformJSON feeds arbitrary bytes to the platform deserialiser:
// it must never panic, and every accepted document must yield a fully built
// platform — classes with ladders, a reference class, an operating grid —
// that survives a WriteJSON/LoadPlatformJSON round trip with identical
// shape.
func FuzzLoadPlatformJSON(f *testing.F) {
	// A well-formed two-class document, serialised by the writer itself.
	lp := *Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	if err := lp.Build(); err != nil {
		f.Fatal(err)
	}
	pf, err := NewPlatform(
		[]CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: Default70nm()}},
		[]int{0, 0, 0, 1},
	)
	if err != nil {
		f.Fatal(err)
	}
	var doc bytes.Buffer
	if err := pf.WriteJSON(&doc); err != nil {
		f.Fatal(err)
	}
	f.Add(doc.String())
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"classes":[],"procs":[]}`)
	f.Add(`{"classes":[{"name":"a","model":{}}],"procs":["a"]}`)
	f.Add(`{"classes":[{"name":"a","model":{"vdd_max":-1}}],"procs":["a"]}`)
	f.Add(`{"classes":[{"name":"a","model":{}}],"procs":["ghost"]}`)
	f.Add(`{"unknown_field":1}`)

	f.Fuzz(func(t *testing.T, in string) {
		pf, err := LoadPlatformJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if pf.NumProcs() < 1 || pf.NumClasses() < 1 {
			t.Fatalf("accepted platform is empty: %d procs, %d classes", pf.NumProcs(), pf.NumClasses())
		}
		if rc := pf.RefClass(); rc < 0 || rc >= pf.NumClasses() {
			t.Fatalf("reference class %d out of range", rc)
		}
		if len(pf.Points()) == 0 {
			t.Fatal("accepted platform has an empty operating grid")
		}
		for p := 0; p < pf.NumProcs(); p++ {
			if c := pf.ClassOf(p); c < 0 || c >= pf.NumClasses() {
				t.Fatalf("processor %d assigned to class %d of %d", p, c, pf.NumClasses())
			}
		}
		var out bytes.Buffer
		if err := pf.WriteJSON(&out); err != nil {
			t.Fatalf("round-trip write: %v", err)
		}
		again, err := LoadPlatformJSON(&out)
		if err != nil {
			t.Fatalf("round-trip load rejects the writer's own output: %v", err)
		}
		if again.NumProcs() != pf.NumProcs() || again.NumClasses() != pf.NumClasses() ||
			again.RefClass() != pf.RefClass() || len(again.Points()) != len(pf.Points()) {
			t.Fatal("round trip changed the platform's shape")
		}
	})
}
