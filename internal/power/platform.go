package power

import (
	"fmt"
	"math"
	"sort"
)

// CoreClass is one processor class of a heterogeneous platform: a name and
// the power model describing its frequency ladder, leakage constants and
// on/sleep powers. Classes follow the FEST/EnSuRe shape (low-power cores
// plus a high-performance core with a different frequency ratio), but any
// number of classes with arbitrary built models is accepted.
type CoreClass struct {
	Name  string
	Model *Model
}

// Platform is an ordered vector of processors, each referencing a core
// class. It generalises the paper's identical-processor machine: a
// homogeneous platform (one class) behaves exactly like the old
// (nprocs, *Model) pair, while a heterogeneous one gives every processor
// the frequency ladder and leakage constants of its class.
//
// Time convention: schedules on a platform are expressed in cycles of the
// *reference* class — the class with the highest maximum frequency. A task
// of w cycles placed on a processor of class c occupies
// ceil(w · RefFMax/FMax_c) reference cycles (exactly w on the reference
// class), so slower cores occupy proportionally longer slots on the shared
// timeline. Running the platform at a normalised operating point σ
// stretches the whole timeline uniformly, exactly as a single model's DVS
// level does.
//
// A Platform is immutable after construction and safe for concurrent use.
type Platform struct {
	classes []CoreClass
	procs   []int // processor index -> class index
	ref     int   // class with the highest FMax (ties: lowest index)
	refFMax float64
	scale   []float64 // per class: RefFMax / FMax_c (1 for the reference)
	grid    []OperatingPoint
}

// OperatingPoint is one discrete operating point of a platform: a common
// normalised frequency σ = f/fmax applied to every class, realised per
// class by the slowest ladder level that sustains σ. TimelineFreq is the
// frequency of the shared timeline (σ·RefFMax): a schedule slot of c
// reference cycles lasts c/TimelineFreq seconds at this point.
type OperatingPoint struct {
	Index        int     // position in Platform.Points(), 0 = fastest
	Norm         float64 // σ, the common normalised frequency
	TimelineFreq float64 // σ·RefFMax [Hz]
	Levels       []Level // per class: the realising ladder level
}

func (pt OperatingPoint) String() string {
	return fmt.Sprintf("point %d (%.2f·fmax, timeline %.3gHz)", pt.Index, pt.Norm, pt.TimelineFreq)
}

// NewPlatform builds a platform from its classes and the per-processor
// class assignment. Every class model must be built (Default70nm or
// Build()); class names must be non-empty and unique; the assignment must
// be non-empty and reference classes by index.
func NewPlatform(classes []CoreClass, procs []int) (*Platform, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: platform has no classes", ErrBadParams)
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("%w: platform has no processors", ErrBadParams)
	}
	seen := make(map[string]bool, len(classes))
	for i, cl := range classes {
		if cl.Name == "" {
			return nil, fmt.Errorf("%w: class %d has no name", ErrBadParams, i)
		}
		if seen[cl.Name] {
			return nil, fmt.Errorf("%w: duplicate class name %q", ErrBadParams, cl.Name)
		}
		seen[cl.Name] = true
		if cl.Model == nil || !cl.Model.built {
			return nil, fmt.Errorf("%w: class %q model is nil or not built", ErrNotBuilt, cl.Name)
		}
	}
	pf := &Platform{
		classes: append([]CoreClass(nil), classes...),
		procs:   append([]int(nil), procs...),
	}
	for _, c := range pf.procs {
		if c < 0 || c >= len(classes) {
			return nil, fmt.Errorf("%w: processor references class %d of %d", ErrBadParams, c, len(classes))
		}
	}
	pf.ref = 0
	for c, cl := range pf.classes {
		if cl.Model.FMax() > pf.classes[pf.ref].Model.FMax() {
			pf.ref = c
		}
	}
	pf.refFMax = pf.classes[pf.ref].Model.FMax()
	pf.scale = make([]float64, len(pf.classes))
	for c, cl := range pf.classes {
		pf.scale[c] = pf.refFMax / cl.Model.FMax()
	}
	pf.buildGrid()
	return pf, nil
}

// Homogeneous returns a platform of n identical processors of the given
// model — the degenerate platform that reproduces the paper's
// identical-processor machine exactly.
func Homogeneous(n int, m *Model) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d processors", ErrBadParams, n)
	}
	if m == nil {
		m = Default70nm()
	}
	procs := make([]int, n)
	return NewPlatform([]CoreClass{{Name: "core", Model: m}}, procs)
}

// NumProcs returns the number of processors.
func (pf *Platform) NumProcs() int { return len(pf.procs) }

// NumClasses returns the number of core classes.
func (pf *Platform) NumClasses() int { return len(pf.classes) }

// Class returns class c.
func (pf *Platform) Class(c int) CoreClass { return pf.classes[c] }

// ClassModel returns the power model of class c.
func (pf *Platform) ClassModel(c int) *Model { return pf.classes[c].Model }

// ClassOf returns the class index of processor p.
func (pf *Platform) ClassOf(p int) int { return pf.procs[p] }

// ModelOf returns the power model of processor p.
func (pf *Platform) ModelOf(p int) *Model { return pf.classes[pf.procs[p]].Model }

// RefClass returns the index of the reference class (highest FMax).
func (pf *Platform) RefClass() int { return pf.ref }

// RefFMax returns the maximum frequency of the reference class — the
// frequency of one timeline cycle at full speed.
func (pf *Platform) RefFMax() float64 { return pf.refFMax }

// Scale returns the slot-stretch factor of class c: RefFMax/FMax_c, exactly
// 1 for the reference class.
func (pf *Platform) Scale(c int) float64 { return pf.scale[c] }

// IsHomogeneous reports whether the platform has a single core class and
// therefore behaves exactly like the legacy (nprocs, *Model) pair.
func (pf *Platform) IsHomogeneous() bool { return len(pf.classes) == 1 }

// ScaledWeight returns the timeline slot length of a w-cycle task on class
// c: exactly w on the reference class, ceil(w·Scale(c)) otherwise. The ceil
// guarantees the slot is never shorter than the execution time, so a
// schedule legal on the timeline stays legal after any uniform stretch.
func (pf *Platform) ScaledWeight(c int, w int64) int64 {
	s := pf.scale[c]
	if s == 1 {
		return w
	}
	return int64(math.Ceil(float64(w) * s))
}

// buildGrid assembles the operating grid: the union of every class's ladder
// norms, deduplicated and sorted fastest-first, each realised as the
// per-class level vector at that σ. When a point's σ comes from the
// reference class's own ladder, TimelineFreq is that level's exact Freq, so
// homogeneous platforms reproduce the legacy ladder bit for bit.
func (pf *Platform) buildGrid() {
	var norms []float64
	for _, cl := range pf.classes {
		for _, l := range cl.Model.Levels() {
			norms = append(norms, l.Norm)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(norms)))
	pf.grid = pf.grid[:0]
	prev := math.Inf(1)
	for _, sigma := range norms {
		if sigma == prev {
			continue
		}
		prev = sigma
		pt := OperatingPoint{
			Index:  len(pf.grid),
			Norm:   sigma,
			Levels: make([]Level, len(pf.classes)),
		}
		for c, cl := range pf.classes {
			pt.Levels[c] = levelForNorm(cl.Model, sigma)
		}
		if rl := pt.Levels[pf.ref]; rl.Norm == sigma {
			pt.TimelineFreq = rl.Freq
		} else {
			pt.TimelineFreq = sigma * pf.refFMax
		}
		pf.grid = append(pf.grid, pt)
	}
}

// levelForNorm returns the slowest ladder level of m sustaining the
// normalised frequency σ ≤ 1. Level 0 has Norm == 1, so a feasible level
// always exists; the one-ULP tolerance accepts σ values sourced from
// another class's ladder that land within rounding of a level's own norm.
func levelForNorm(m *Model, sigma float64) Level {
	best := m.levels[0]
	for _, l := range m.levels[1:] {
		if l.Norm >= sigma*(1-1e-12) {
			best = l
		} else {
			break
		}
	}
	return best
}

// Points returns the operating grid, fastest (index 0) to slowest. The
// slice is owned by the platform and must not be modified.
func (pf *Platform) Points() []OperatingPoint { return pf.grid }

// MaxPoint returns the fastest operating point (σ = 1).
func (pf *Platform) MaxPoint() OperatingPoint { return pf.grid[0] }

// PointForFrequency returns the slowest operating point whose timeline
// frequency is at least f — the platform analogue of
// Model.LevelForFrequency, with the same infeasibility tolerance.
func (pf *Platform) PointForFrequency(f float64) (OperatingPoint, error) {
	if f > pf.grid[0].TimelineFreq*(1+1e-12) {
		return OperatingPoint{}, fmt.Errorf("%w: need %g Hz, max timeline %g Hz",
			ErrInfeasible, f, pf.grid[0].TimelineFreq)
	}
	best := pf.grid[0]
	for _, pt := range pf.grid[1:] {
		if pt.TimelineFreq >= f {
			best = pt
		} else {
			break
		}
	}
	return best, nil
}

func (pf *Platform) String() string {
	counts := make([]int, len(pf.classes))
	for _, c := range pf.procs {
		counts[c]++
	}
	out := fmt.Sprintf("platform of %d processor(s):", len(pf.procs))
	for c, cl := range pf.classes {
		out += fmt.Sprintf(" %d×%s(%.3gHz)", counts[c], cl.Name, cl.Model.FMax())
	}
	return out
}
