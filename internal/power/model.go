// Package power implements the processor power and energy model of
// de Langen & Juurlink (Section 3.2), which follows Jejurikar et al. (DAC'04)
// and Martin et al. (ICCAD'02) and was verified against SPICE by the latter.
//
// The total power consumption of a processor is
//
//	P = P_AC + P_DC + P_on
//
// where P_AC = a·C_eff·Vdd²·f is the dynamic (switching) power,
// P_DC = L_g·(Vdd·I_subn + |Vbs|·I_j) is the static (leakage) power, and
// P_on is the intrinsic power needed to keep the processor on. The
// sub-threshold leakage current per gate is
//
//	I_subn = K3 · e^(K4·Vdd) · e^(K5·Vbs)
//
// and the operating frequency relates to the supply and threshold voltages by
//
//	f = (Vdd − V_th)^α / (L_d · K6),  V_th = V_th1 − K1·Vdd − K2·Vbs.
//
// With the 70 nm constants of Table 1 the model yields a maximum frequency of
// ≈3.1 GHz at Vdd = 1.0 V and a critical (energy-optimal) frequency of
// ≈0.38·f_max, reached on the discrete 0.05 V ladder at Vdd = 0.70 V
// (0.41·f_max), exactly as reported in the paper.
package power

import (
	"errors"
	"fmt"
	"math"
)

// Model holds the technology constants and platform parameters of the power
// model. Construct one with Default70nm and tweak fields before calling
// Build; a built model is immutable and safe for concurrent use.
type Model struct {
	// Technology constants (Table 1 of the paper, 70 nm).
	K1, K2, K3, K4, K5, K6, K7 float64
	Vdd0                       float64 // nominal supply voltage [V]
	Vbs                        float64 // body-source bias voltage [V]
	Alpha                      float64 // velocity saturation exponent
	Vth1                       float64 // zero-bias threshold voltage [V]
	Ij                         float64 // reverse-bias junction current per gate [A]
	Ceff                       float64 // effective switched capacitance [F]
	Ld                         float64 // logic depth
	Lg                         float64 // number of gates (leakage scaling)

	// Platform parameters.
	Activity  float64 // switching activity factor a (default 1)
	POn       float64 // intrinsic on-power [W] (paper: 0.1 W)
	PSleep    float64 // deep-sleep power [W] (paper: 50 µW)
	EOverhead float64 // shutdown+wakeup energy overhead [J] (paper: 483 µJ)

	// Discrete voltage ladder: levels VddMax, VddMax−VddStep, … ≥ VddMin.
	VddMax, VddMin, VddStep float64

	built  bool
	fMax   float64
	levels []Level
	crit   int // index into levels of the discrete critical level
}

// Level is one discrete operating point of the voltage/frequency ladder.
type Level struct {
	Index int     // position in Model.Levels(), 0 = highest voltage
	Vdd   float64 // supply voltage [V]
	Freq  float64 // operating frequency [Hz]
	Norm  float64 // Freq / FMax
}

func (l Level) String() string {
	return fmt.Sprintf("level %d (Vdd=%.2fV, f=%.3gHz, %.2f·fmax)", l.Index, l.Vdd, l.Freq, l.Norm)
}

// Errors returned by model construction and queries.
var (
	ErrNotBuilt   = errors.New("power: model not built; call Build first")
	ErrBadParams  = errors.New("power: invalid model parameters")
	ErrInfeasible = errors.New("power: no level satisfies the requested frequency")
)

// Default70nm returns the 70 nm model with the constants of Table 1 and the
// platform parameters used throughout the paper's evaluation. The returned
// model is already built.
func Default70nm() *Model {
	m := &Model{
		K1:   0.063,
		K2:   0.153,
		K3:   5.38e-7,
		K4:   1.83,
		K5:   4.19,
		K6:   5.26e-12,
		K7:   -0.144,
		Vdd0: 1.0,
		Vbs:  -0.7,

		Alpha: 1.5,
		Vth1:  0.244,
		Ij:    4.8e-10,
		Ceff:  0.43e-9,
		Ld:    37.0,
		Lg:    4.0e6,

		Activity:  1.0,
		POn:       0.1,
		PSleep:    50e-6,
		EOverhead: 483e-6,

		VddMax:  1.0,
		VddMin:  0.40,
		VddStep: 0.05,
	}
	if err := m.Build(); err != nil {
		panic("power: default model invalid: " + err.Error())
	}
	return m
}

// Build validates the parameters and precomputes the discrete voltage ladder
// and the critical level. It must be called after modifying any field and
// before using the model.
func (m *Model) Build() error {
	switch {
	case m.VddStep <= 0 || m.VddMax <= 0 || m.VddMin <= 0:
		return fmt.Errorf("%w: voltage ladder %g..%g step %g", ErrBadParams, m.VddMin, m.VddMax, m.VddStep)
	case m.VddMin > m.VddMax:
		return fmt.Errorf("%w: VddMin %g > VddMax %g", ErrBadParams, m.VddMin, m.VddMax)
	case m.Alpha <= 0 || m.Ld <= 0 || m.K6 <= 0 || m.Ceff <= 0 || m.Lg <= 0:
		return fmt.Errorf("%w: non-positive technology constant", ErrBadParams)
	case m.Activity < 0 || m.POn < 0 || m.PSleep < 0 || m.EOverhead < 0:
		return fmt.Errorf("%w: negative platform parameter", ErrBadParams)
	}
	m.fMax = m.Frequency(m.VddMax)
	if m.fMax <= 0 {
		return fmt.Errorf("%w: frequency at VddMax %g is not positive", ErrBadParams, m.VddMax)
	}
	m.levels = m.levels[:0]
	for vdd := m.VddMax; vdd >= m.VddMin-1e-9; vdd -= m.VddStep {
		f := m.Frequency(vdd)
		if f <= 0 {
			break // below threshold: the ladder ends here
		}
		m.levels = append(m.levels, Level{
			Index: len(m.levels),
			Vdd:   vdd,
			Freq:  f,
			Norm:  f / m.fMax,
		})
	}
	if len(m.levels) == 0 {
		return fmt.Errorf("%w: empty voltage ladder", ErrBadParams)
	}
	m.crit = 0
	best := math.Inf(1)
	for i, l := range m.levels {
		if e := m.EnergyPerCycle(l); e < best {
			best, m.crit = e, i
		}
	}
	m.built = true
	return nil
}

// Vth returns the threshold voltage at the given supply voltage, with the
// model's fixed body bias: V_th = V_th1 − K1·Vdd − K2·Vbs.
func (m *Model) Vth(vdd float64) float64 {
	return m.Vth1 - m.K1*vdd - m.K2*m.Vbs
}

// Frequency returns the maximum operating frequency at the given supply
// voltage: f = (Vdd − V_th)^α / (L_d·K6). It returns 0 when Vdd does not
// exceed the threshold voltage.
func (m *Model) Frequency(vdd float64) float64 {
	d := vdd - m.Vth(vdd)
	if d <= 0 {
		return 0
	}
	return math.Pow(d, m.Alpha) / (m.Ld * m.K6)
}

// VddForFrequency inverts Frequency analytically:
// Vdd = (f·L_d·K6)^(1/α) + V_th1 − K2·Vbs, all divided by (1 + K1)… more
// precisely Vdd·(1+K1) = (f·Ld·K6)^(1/α) + Vth1 − K2·Vbs.
func (m *Model) VddForFrequency(f float64) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("%w: frequency %g", ErrBadParams, f)
	}
	d := math.Pow(f*m.Ld*m.K6, 1/m.Alpha)
	return (d + m.Vth1 - m.K2*m.Vbs) / (1 + m.K1), nil
}

// FMax returns the maximum operating frequency (at VddMax).
func (m *Model) FMax() float64 { return m.fMax }

// Levels returns the discrete operating points, ordered from the highest
// voltage (index 0) to the lowest. The slice is owned by the model and must
// not be modified.
func (m *Model) Levels() []Level { return m.levels }

// Level returns the operating point with the given index.
func (m *Model) Level(i int) Level { return m.levels[i] }

// MaxLevel returns the highest-frequency operating point.
func (m *Model) MaxLevel() Level { return m.levels[0] }

// MinLevel returns the lowest-frequency operating point on the ladder.
func (m *Model) MinLevel() Level { return m.levels[len(m.levels)-1] }

// CriticalLevel returns the discrete operating point minimising energy per
// cycle. Scaling the voltage below this point increases total energy when
// idle periods can be served by sleep; the 70 nm default reaches it at
// Vdd = 0.70 V (0.41 normalised frequency).
func (m *Model) CriticalLevel() Level { return m.levels[m.crit] }

// CriticalFrequencyContinuous returns the energy-optimal frequency when the
// voltage may vary continuously, found by golden-section search on energy
// per cycle over Vdd. The 70 nm default yields ≈0.38·f_max.
func (m *Model) CriticalFrequencyContinuous() float64 {
	const phi = 0.6180339887498949
	lo, hi := m.VddMin, m.VddMax
	energyAt := func(vdd float64) float64 {
		f := m.Frequency(vdd)
		if f <= 0 {
			return math.Inf(1)
		}
		return m.Power(vdd, f) / f
	}
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := energyAt(a), energyAt(b)
	for i := 0; i < 200 && hi-lo > 1e-9; i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = energyAt(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = energyAt(b)
		}
	}
	return m.Frequency((lo + hi) / 2)
}

// PowerAC returns the dynamic power a·C_eff·Vdd²·f in watts.
func (m *Model) PowerAC(vdd, f float64) float64 {
	return m.Activity * m.Ceff * vdd * vdd * f
}

// PowerDC returns the static (leakage) power
// L_g·(Vdd·I_subn + |Vbs|·I_j) in watts.
func (m *Model) PowerDC(vdd float64) float64 {
	isubn := m.K3 * math.Exp(m.K4*vdd) * math.Exp(m.K5*m.Vbs)
	return m.Lg * (vdd*isubn + math.Abs(m.Vbs)*m.Ij)
}

// Power returns the total power P_AC + P_DC + P_on of an active processor
// running at the given supply voltage and frequency.
func (m *Model) Power(vdd, f float64) float64 {
	return m.PowerAC(vdd, f) + m.PowerDC(vdd) + m.POn
}

// LevelPower returns the total active power at a discrete operating point.
func (m *Model) LevelPower(l Level) float64 { return m.Power(l.Vdd, l.Freq) }

// IdlePower returns the power of a processor that is on but not executing:
// the clock is gated so P_AC vanishes, leaving P_DC + P_on.
func (m *Model) IdlePower(l Level) float64 { return m.PowerDC(l.Vdd) + m.POn }

// EnergyPerCycle returns the energy per clock cycle at a discrete operating
// point, P(l)/f(l), in joules.
func (m *Model) EnergyPerCycle(l Level) float64 {
	return m.LevelPower(l) / l.Freq
}

// LevelForFrequency returns the slowest discrete operating point whose
// frequency is at least f, i.e. the most aggressive feasible DVS setting for
// a computation that must sustain frequency f. It returns ErrInfeasible when
// even the maximum level is too slow.
func (m *Model) LevelForFrequency(f float64) (Level, error) {
	if f > m.fMax*(1+1e-12) {
		return Level{}, fmt.Errorf("%w: need %g Hz, max %g Hz", ErrInfeasible, f, m.fMax)
	}
	// Levels are sorted by descending frequency; take the last feasible one.
	best := m.levels[0]
	for _, l := range m.levels[1:] {
		if l.Freq >= f {
			best = l
		} else {
			break
		}
	}
	return best, nil
}

// BreakevenTime returns the minimum idle duration (seconds) for which
// shutting a processor down saves energy at operating point l: sleeping
// costs EOverhead + t·PSleep versus t·IdlePower(l) for staying idle.
func (m *Model) BreakevenTime(l Level) float64 {
	d := m.IdlePower(l) - m.PSleep
	if d <= 0 {
		return math.Inf(1)
	}
	return m.EOverhead / d
}

// BreakevenCycles returns the minimum beneficial idle period expressed in
// cycles at operating point l (Fig. 3 of the paper: ≈1.7 million cycles at
// half the maximum frequency).
func (m *Model) BreakevenCycles(l Level) float64 {
	return m.BreakevenTime(l) * l.Freq
}
