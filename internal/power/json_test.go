package power

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	m := Default70nm()
	m.POn = 0.07
	m.VddMin = 0.5
	if err := m.Build(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if back.POn != 0.07 || back.VddMin != 0.5 {
		t.Errorf("parameters lost: POn=%g VddMin=%g", back.POn, back.VddMin)
	}
	if back.FMax() != m.FMax() {
		t.Errorf("FMax differs after round trip")
	}
	if len(back.Levels()) != len(m.Levels()) {
		t.Errorf("ladder differs after round trip")
	}
	if back.CriticalLevel().Vdd != m.CriticalLevel().Vdd {
		t.Errorf("critical level differs")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := []string{
		``,
		`{invalid`,
		`{"unknown_field": 1}`,
		`{"k1": 0.063}`, // missing everything else: Build fails
	}
	for _, in := range cases {
		if _, err := LoadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("LoadJSON(%q) succeeded", in)
		}
	}
}

func TestWithLeakage(t *testing.T) {
	m := Default70nm()
	heavy, err := m.WithLeakage(5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := heavy.PowerDC(1.0), 5*m.PowerDC(1.0); !approx(got, want, 1e-9) {
		t.Errorf("PowerDC scaled to %g, want %g", got, want)
	}
	// More leakage pushes the critical frequency up.
	if heavy.CriticalLevel().Index >= m.CriticalLevel().Index {
		// Higher index = lower frequency; heavier leakage must not lower it.
		if heavy.CriticalLevel().Index > m.CriticalLevel().Index {
			t.Errorf("critical level moved down with more leakage: %v vs %v",
				heavy.CriticalLevel(), m.CriticalLevel())
		}
	}
	// The original model is untouched.
	if !approx(m.PowerDC(1.0), 0.7155, 0.01) {
		t.Errorf("original model mutated: %g", m.PowerDC(1.0))
	}

	light, err := m.WithoutLeakage()
	if err != nil {
		t.Fatal(err)
	}
	if light.PowerDC(1.0) > 1e-6 {
		t.Errorf("WithoutLeakage still leaks %g W", light.PowerDC(1.0))
	}
	// With no leakage the energy-optimal frequency drops (only the intrinsic
	// P_on still penalises slow clocks), so the critical level moves to a
	// lower frequency (higher ladder index) than with leakage.
	if light.CriticalLevel().Index <= m.CriticalLevel().Index {
		t.Errorf("no-leakage critical level = %v, want slower than %v",
			light.CriticalLevel(), m.CriticalLevel())
	}

	if _, err := m.WithLeakage(0); err == nil {
		t.Error("WithLeakage(0) accepted")
	}
	if _, err := m.WithLeakage(-1); err == nil {
		t.Error("WithLeakage(-1) accepted")
	}
}
