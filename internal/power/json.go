package power

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the serialised form of a Model: technology constants and
// platform parameters only; derived data is rebuilt on load.
type modelJSON struct {
	K1    float64 `json:"k1"`
	K2    float64 `json:"k2"`
	K3    float64 `json:"k3"`
	K4    float64 `json:"k4"`
	K5    float64 `json:"k5"`
	K6    float64 `json:"k6"`
	K7    float64 `json:"k7"`
	Vdd0  float64 `json:"vdd0"`
	Vbs   float64 `json:"vbs"`
	Alpha float64 `json:"alpha"`
	Vth1  float64 `json:"vth1"`
	Ij    float64 `json:"ij"`
	Ceff  float64 `json:"ceff"`
	Ld    float64 `json:"ld"`
	Lg    float64 `json:"lg"`

	Activity  float64 `json:"activity"`
	POn       float64 `json:"p_on"`
	PSleep    float64 `json:"p_sleep"`
	EOverhead float64 `json:"e_overhead"`

	VddMax  float64 `json:"vdd_max"`
	VddMin  float64 `json:"vdd_min"`
	VddStep float64 `json:"vdd_step"`
}

// WriteJSON serialises the model's parameters, so custom technologies can
// be stored next to experiments and loaded with LoadJSON (or the CLI's
// -model flag).
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelJSON{
		K1: m.K1, K2: m.K2, K3: m.K3, K4: m.K4, K5: m.K5, K6: m.K6, K7: m.K7,
		Vdd0: m.Vdd0, Vbs: m.Vbs, Alpha: m.Alpha, Vth1: m.Vth1, Ij: m.Ij,
		Ceff: m.Ceff, Ld: m.Ld, Lg: m.Lg,
		Activity: m.Activity, POn: m.POn, PSleep: m.PSleep, EOverhead: m.EOverhead,
		VddMax: m.VddMax, VddMin: m.VddMin, VddStep: m.VddStep,
	})
}

// LoadJSON reads a model serialised by WriteJSON (or written by hand),
// validates it and builds the voltage ladder. Missing fields default to
// zero and will fail validation, except that a fully-empty document is
// rejected explicitly.
func LoadJSON(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j modelJSON
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("power: decoding model: %w", err)
	}
	m := &Model{
		K1: j.K1, K2: j.K2, K3: j.K3, K4: j.K4, K5: j.K5, K6: j.K6, K7: j.K7,
		Vdd0: j.Vdd0, Vbs: j.Vbs, Alpha: j.Alpha, Vth1: j.Vth1, Ij: j.Ij,
		Ceff: j.Ceff, Ld: j.Ld, Lg: j.Lg,
		Activity: j.Activity, POn: j.POn, PSleep: j.PSleep, EOverhead: j.EOverhead,
		VddMax: j.VddMax, VddMin: j.VddMin, VddStep: j.VddStep,
	}
	if err := m.Build(); err != nil {
		return nil, err
	}
	return m, nil
}
