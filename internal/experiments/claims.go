package experiments

import (
	"fmt"
	"io"
	"math"

	"lamps/internal/core"
	"lamps/internal/mpeg"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
)

// Claim is one falsifiable statement from the paper, encoded as an
// executable check. VerifyClaims runs all of them and prints a scorecard —
// an automated reproduction audit.
type Claim struct {
	ID    string
	Text  string // the paper's statement (paraphrased, with section)
	Check func(Config) (ok bool, detail string, err error)
}

// Claims encodes the paper's checkable statements in reading order.
var Claims = []Claim{
	{
		ID:   "C1-fmax",
		Text: "the maximum frequency of this processor is 3.1 GHz, at a supply voltage of 1 V (§3.2)",
		Check: func(cfg Config) (bool, string, error) {
			m := cfg.model()
			f := m.Frequency(1.0)
			return math.Abs(f-3.1e9)/3.1e9 < 0.01, fmt.Sprintf("f(1.0V) = %.4g Hz", f), nil
		},
	},
	{
		ID:   "C2-fcrit",
		Text: "the critical frequency is reached at 0.7 V, corresponding to a normalised frequency of 0.41 (§3.3)",
		Check: func(cfg Config) (bool, string, error) {
			c := cfg.model().CriticalLevel()
			ok := math.Abs(c.Vdd-0.70) < 1e-9 && math.Abs(c.Norm-0.41) < 0.02
			return ok, fmt.Sprintf("critical level %v", c), nil
		},
	},
	{
		ID:   "C3-fcrit-cont",
		Text: "the optimal or critical frequency is 0.38 times the maximum (§3.3)",
		Check: func(cfg Config) (bool, string, error) {
			m := cfg.model()
			norm := m.CriticalFrequencyContinuous() / m.FMax()
			return norm > 0.35 && norm < 0.40, fmt.Sprintf("continuous fcrit = %.3f fmax", norm), nil
		},
	},
	{
		ID:   "C4-breakeven",
		Text: "when clocked at half the maximum frequency, an idle period of at least 1.7 million cycles is required for shutdown to pay (§3.4, Fig. 3)",
		Check: func(cfg Config) (bool, string, error) {
			m := cfg.model()
			vdd, err := m.VddForFrequency(0.5 * m.FMax())
			if err != nil {
				return false, "", err
			}
			l := power.Level{Vdd: vdd, Freq: m.Frequency(vdd), Norm: 0.5}
			c := m.BreakevenCycles(l)
			return math.Abs(c-1.7e6)/1.7e6 < 0.05, fmt.Sprintf("breakeven = %.4g cycles", c), nil
		},
	},
	{
		ID:   "C5-mpeg-lamps",
		Text: "LAMPS determines that using 3 processors is more efficient and reduces the energy by more than 26% compared to S&S (§5.3)",
		Check: func(cfg Config) (bool, string, error) {
			ss, la, err := mpegPair(cfg, core.ApproachLAMPS)
			if err != nil {
				return false, "", err
			}
			saving := 1 - la.TotalEnergy()/ss.TotalEnergy()
			ok := la.NumProcs == 3 && saving > 0.20 && saving < 0.32
			return ok, fmt.Sprintf("%d procs, %.1f%% saving", la.NumProcs, 100*saving), nil
		},
	},
	{
		ID:   "C6-mpeg-ssps",
		Text: "S&S+PS reduces the energy consumption by almost 40% compared to S&S (§5.3)",
		Check: func(cfg Config) (bool, string, error) {
			ss, ps, err := mpegPair(cfg, core.ApproachSSPS)
			if err != nil {
				return false, "", err
			}
			saving := 1 - ps.TotalEnergy()/ss.TotalEnergy()
			return saving > 0.33 && saving < 0.45, fmt.Sprintf("%.1f%% saving", 100*saving), nil
		},
	},
	{
		ID:   "C7-mpeg-limits",
		Text: "the results for S&S+PS and LAMPS+PS are extremely close to the lower limits LIMIT-SF and LIMIT-MF (§5.3)",
		Check: func(cfg Config) (bool, string, error) {
			g := mpeg.Fig9()
			ccfg := core.Config{Model: cfg.model(), Deadline: mpeg.RealTimeDeadline}
			laps, err := core.LAMPSPS(g, ccfg)
			if err != nil {
				return false, "", err
			}
			sf, err := core.LimitSF(g, ccfg)
			if err != nil {
				return false, "", err
			}
			gap := laps.TotalEnergy()/sf.TotalEnergy() - 1
			return gap < 0.01, fmt.Sprintf("LAMPS+PS is %.2f%% above LIMIT-SF", 100*gap), nil
		},
	},
	{
		ID:   "C8-limits-coincide",
		Text: "for loose deadlines (4x or 8x the CPL), LIMIT-MF consumes the same amount of energy as LIMIT-SF (§6)",
		Check: func(cfg Config) (bool, string, error) {
			m := cfg.model()
			for _, app := range taskgen.Applications() {
				g := taskgen.Coarse.Scale(app)
				for _, factor := range []float64{4, 8} {
					ccfg := core.DeadlineFactor(g, m, factor)
					sf, err := core.LimitSF(g, ccfg)
					if err != nil {
						return false, "", err
					}
					mf, err := core.LimitMF(g, ccfg)
					if err != nil {
						return false, "", err
					}
					if sf.TotalEnergy() != mf.TotalEnergy() {
						return false, fmt.Sprintf("%s at %gx: SF %g != MF %g",
							app.Name(), factor, sf.TotalEnergy(), mf.TotalEnergy()), nil
					}
				}
			}
			return true, "equal on all application graphs at 4x and 8x", nil
		},
	},
	{
		ID:   "C9-94pct",
		Text: "for coarse-grain tasks LAMPS+PS attains more than 94% of the possible energy reduction for all combinations of benchmarks and deadlines (§5.2)",
		Check: func(cfg Config) (bool, string, error) {
			m := cfg.model()
			worst := 1.0
			where := ""
			for _, app := range taskgen.Applications() {
				g := taskgen.Coarse.Scale(app)
				for _, factor := range []float64{1.5, 2, 4, 8} {
					ccfg := core.DeadlineFactor(g, m, factor)
					ss, err := core.ScheduleAndStretch(g, ccfg)
					if err != nil {
						return false, "", err
					}
					laps, err := core.LAMPSPS(g, ccfg)
					if err != nil {
						return false, "", err
					}
					sf, err := core.LimitSF(g, ccfg)
					if err != nil {
						return false, "", err
					}
					att := core.EnergySaving(ss.TotalEnergy(), laps.TotalEnergy(), sf.TotalEnergy())
					if att < worst {
						worst = att
						where = fmt.Sprintf("%s at %gx", app.Name(), factor)
					}
				}
			}
			return worst > 0.94, fmt.Sprintf("worst attainment %.1f%% (%s)", 100*worst, where), nil
		},
	},
	{
		ID:   "C10-fine-ps-weak",
		Text: "gains from shutdown are considerably larger for coarse-grain than fine-grain tasks, because fine-grain slack is often too short (§5.2)",
		Check: func(cfg Config) (bool, string, error) {
			m := cfg.model()
			// sparse at a tight deadline is the paper's cleanest instance:
			// high parallelism, small per-task weights, little slack per gap.
			app := taskgen.Applications()[2]
			saving := func(grain taskgen.Grain) (float64, error) {
				g := grain.Scale(app)
				ccfg := core.DeadlineFactor(g, m, 1.5)
				ss, err := core.ScheduleAndStretch(g, ccfg)
				if err != nil {
					return 0, err
				}
				ps, err := core.ScheduleAndStretchPS(g, ccfg)
				if err != nil {
					return 0, err
				}
				return 1 - ps.TotalEnergy()/ss.TotalEnergy(), nil
			}
			coarse, err := saving(taskgen.Coarse)
			if err != nil {
				return false, "", err
			}
			fine, err := saving(taskgen.Fine)
			if err != nil {
				return false, "", err
			}
			return coarse > 2*fine, fmt.Sprintf("S&S+PS saving: coarse %.1f%%, fine %.1f%%", 100*coarse, 100*fine), nil
		},
	},
	{
		ID:   "C11-local-minima",
		Text: "the energy consumption as a function of the number of processors can have local minima, so a full (linear) search must be performed (§4.2, Fig. 6)",
		Check: func(cfg Config) (bool, string, error) {
			tables, err := Fig6(cfg)
			if err != nil {
				return false, "", err
			}
			// Look for any column with a rise followed by a fall.
			for col := 1; col <= 3; col++ {
				prev := math.Inf(1)
				rose := false
				for _, row := range tables[0].Rows {
					var v float64
					if _, err := fmt.Sscanf(row[col], "%g", &v); err != nil {
						continue
					}
					if v > prev {
						rose = true
					}
					if rose && v < prev {
						return true, fmt.Sprintf("non-global local minimum in the %s curve", tables[0].Header[col]), nil
					}
					prev = v
				}
			}
			return false, "no local minima found in Fig. 6 curves", nil
		},
	},
	{
		ID:   "C12-edf-sufficient",
		Text: "it will be nearly impossible to reduce the energy consumption further by using other scheduling algorithms than EDF (§6)",
		Check: func(cfg Config) (bool, string, error) {
			m := cfg.model()
			g := taskgen.Coarse.Scale(taskgen.Fpppp())
			ccfg := core.DeadlineFactor(g, m, 2)
			base, err := core.LAMPSPS(g, ccfg)
			if err != nil {
				return false, "", err
			}
			worst := 0.0
			for _, pol := range sched.Policies {
				fn, err := sched.Priorities(pol, cfg.Seed)
				if err != nil {
					return false, "", err
				}
				c := ccfg
				c.Priorities = fn
				r, err := core.LAMPSPS(g, c)
				if err != nil {
					return false, "", err
				}
				if d := math.Abs(r.TotalEnergy()/base.TotalEnergy() - 1); d > worst {
					worst = d
				}
			}
			return worst < 0.02, fmt.Sprintf("max policy deviation %.2f%%", 100*worst), nil
		},
	},
}

func mpegPair(cfg Config, approach string) (*core.Result, *core.Result, error) {
	g := mpeg.Fig9()
	ccfg := core.Config{Model: cfg.model(), Deadline: mpeg.RealTimeDeadline}
	ss, err := core.ScheduleAndStretch(g, ccfg)
	if err != nil {
		return nil, nil, err
	}
	other, err := core.Run(approach, g, ccfg)
	if err != nil {
		return nil, nil, err
	}
	return ss, other, nil
}

// VerifyClaims evaluates every encoded claim and writes a scorecard.
// It returns the pass/fail counts; checker errors count as failures.
func VerifyClaims(w io.Writer, cfg Config) (passed, failed int, err error) {
	fmt.Fprintf(w, "reproduction scorecard (%d claims)\n\n", len(Claims))
	for _, c := range Claims {
		ok, detail, cerr := c.Check(cfg)
		status := "PASS"
		if cerr != nil {
			status = "ERROR"
			detail = cerr.Error()
			ok = false
		} else if !ok {
			status = "FAIL"
		}
		if ok {
			passed++
		} else {
			failed++
		}
		fmt.Fprintf(w, "[%-5s] %s: %s\n        measured: %s\n", status, c.ID, c.Text, detail)
	}
	fmt.Fprintf(w, "\n%d passed, %d failed\n", passed, failed)
	return passed, failed, nil
}
