package experiments

import (
	"fmt"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/taskgen"
	"lamps/internal/workpool"
)

// relativeApproaches are the bars of Figs. 10 and 11, relative to S&S.
var relativeApproaches = []string{
	core.ApproachLAMPS,
	core.ApproachSSPS,
	core.ApproachLAMPSPS,
	core.ApproachLimitSF,
	core.ApproachLimitMF,
}

// Fig10 regenerates the coarse-grain relative energy charts (Fig. 10a-d):
// for every benchmark and every deadline factor, the energy of each
// approach as a percentage of S&S. Group results are averaged over the
// group's graphs (each graph's percentages are computed first, then
// averaged, so every graph contributes equally as in the paper's averages).
func Fig10(cfg Config) ([]Table, error) {
	return relativeEnergy(cfg, taskgen.Coarse, "fig10")
}

// Fig11 regenerates the fine-grain relative energy charts (Fig. 11a-d).
func Fig11(cfg Config) ([]Table, error) {
	return relativeEnergy(cfg, taskgen.Fine, "fig11")
}

func relativeEnergy(cfg Config, grain taskgen.Grain, id string) ([]Table, error) {
	m := cfg.model()
	benches, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	// Flatten (benchmark, graph) pairs into independent work items so the
	// expensive scheduling searches run in parallel; aggregation afterwards
	// is sequential and order-preserving.
	type item struct {
		bench int
		unit  *dag.Graph
		pct   []float64
		err   error
	}
	var items []*item
	for bi, bench := range benches {
		for _, unit := range bench.graphs {
			items = append(items, &item{bench: bi, unit: unit})
		}
	}

	var tables []Table
	sub := 'a'
	for _, factor := range cfg.DeadlineFactors {
		t := Table{
			ID: fmt.Sprintf("%s%c", id, sub),
			Title: fmt.Sprintf("relative energy, %s grain, deadline = %gx CPL (S&S = 100%%)",
				grain, factor),
			Header: append([]string{"benchmark"}, relativeApproaches...),
		}
		sub++
		err := workpool.Map(len(items), cfg.Workers, func(i int) error {
			it := items[i]
			g := grain.Scale(it.unit)
			ccfg := core.DeadlineFactor(g, m, factor)
			ss, err := cfg.run(core.ApproachSS, g, ccfg)
			if err != nil {
				return fmt.Errorf("%s %s S&S: %w", t.ID, it.unit.Name(), err)
			}
			base := ss.TotalEnergy()
			it.pct = make([]float64, len(relativeApproaches))
			for ai, a := range relativeApproaches {
				r, err := cfg.run(a, g, ccfg)
				if err != nil {
					return fmt.Errorf("%s %s %s: %w", t.ID, it.unit.Name(), a, err)
				}
				it.pct[ai] = r.TotalEnergy() / base * 100
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for bi, bench := range benches {
			sums := make([]float64, len(relativeApproaches))
			counted := 0
			for _, it := range items {
				if it.bench != bi {
					continue
				}
				for ai := range sums {
					sums[ai] += it.pct[ai]
				}
				counted++
			}
			row := []any{bench.name}
			for _, s := range sums {
				row = append(row, fmt.Sprintf("%.1f%%", s/float64(counted)))
			}
			t.Append(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
