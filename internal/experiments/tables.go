package experiments

import (
	"fmt"

	"lamps/internal/core"
	"lamps/internal/mpeg"
)

// Table2 regenerates the benchmark-characteristics table: node count, edge
// count, critical path and total work (in STG weight units) for every
// workload. Random groups report min–max ranges over the group, like the
// paper.
func Table2(cfg Config) ([]Table, error) {
	benches, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "table2",
		Title:  "employed benchmarks and their main characteristics",
		Header: []string{"name", "nodes", "edges", "critical path", "total work"},
	}
	// Present applications first, as the paper does.
	order := make([]benchmark, 0, len(benches))
	for _, b := range benches {
		if len(b.graphs) == 1 {
			order = append(order, b)
		}
	}
	for _, b := range benches {
		if len(b.graphs) > 1 {
			order = append(order, b)
		}
	}
	for _, b := range order {
		if len(b.graphs) == 1 {
			g := b.graphs[0]
			t.Append(b.name, g.NumTasks(), g.NumEdges(), g.CriticalPathLength(), g.TotalWork())
			continue
		}
		minE, maxE := b.graphs[0].NumEdges(), b.graphs[0].NumEdges()
		minC, maxC := b.graphs[0].CriticalPathLength(), b.graphs[0].CriticalPathLength()
		minW, maxW := b.graphs[0].TotalWork(), b.graphs[0].TotalWork()
		for _, g := range b.graphs[1:] {
			minE = minInt(minE, g.NumEdges())
			maxE = maxInt(maxE, g.NumEdges())
			minC = minI64(minC, g.CriticalPathLength())
			maxC = maxI64(maxC, g.CriticalPathLength())
			minW = minI64(minW, g.TotalWork())
			maxW = maxI64(maxW, g.TotalWork())
		}
		t.Append(b.name, b.graphs[0].NumTasks(),
			fmt.Sprintf("%d-%d", minE, maxE),
			fmt.Sprintf("%d-%d", minC, maxC),
			fmt.Sprintf("%d-%d", minW, maxW))
	}
	return []Table{t}, nil
}

// Table3 regenerates the MPEG-1 comparison: total energy and employed
// processor count for every approach on the Fig. 9 task graph with the
// paper's real-time deadline of 0.5 s for a 15-frame GOP.
func Table3(cfg Config) ([]Table, error) {
	m := cfg.model()
	g := mpeg.Fig9()
	ccfg := core.Config{Model: m, Deadline: mpeg.RealTimeDeadline}
	t := Table{
		ID:     "table3",
		Title:  "energy consumption for the MPEG-1 benchmark (GOP of 15 frames, deadline 0.5s)",
		Header: []string{"approach", "energy[J]", "relative to S&S", "#procs", "level"},
		Notes: []string{
			"paper reports (arbitrary units): S&S 18.116/7p, LAMPS 13.290/3p, " +
				"S&S+PS 10.949/7p, LAMPS+PS 10.947/6p, LIMIT-SF 10.940, LIMIT-MF 10.940",
		},
	}
	var base float64
	for _, a := range core.Approaches {
		r, err := cfg.run(a, g, ccfg)
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", a, err)
		}
		if a == core.ApproachSS {
			base = r.TotalEnergy()
		}
		procs := "N/A"
		if r.Schedule != nil {
			procs = fmt.Sprint(r.NumProcs)
		}
		t.Append(a, r.TotalEnergy(),
			fmt.Sprintf("%.1f%%", r.TotalEnergy()/base*100),
			procs,
			fmt.Sprintf("%.2fV/%.2f", r.Level.Vdd, r.Level.Norm))
	}
	return []Table{t}, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
