package experiments

import (
	"fmt"
	"math/rand"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/mpeg"
	"lamps/internal/opt"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
)

// This file contains experiments that go beyond the paper's artefacts,
// probing the design choices and future-work directions the paper names:
//
//   - ext-policies: does the list-scheduling policy matter? (Section 4.4
//     argues EDF is near-optimal because LIMIT-SF is scheduling-independent.)
//   - ext-pertask: per-task DVS / slack reclamation à la Zhu et al. [1]
//     (Section 6 names it as future work; LIMIT-MF bounds its benefit.)
//   - ext-leakage: sensitivity to the leakage magnitude (the Borkar 5x-per-
//     generation prediction that motivates the whole paper).

// ExtPolicies compares LAMPS+PS energy across list-scheduling priority
// policies on the application graphs, normalised to the EDF result. The
// paper's LIMIT-SF argument predicts differences of a few percent at most.
func ExtPolicies(cfg Config) ([]Table, error) {
	m := cfg.model()
	t := Table{
		ID:     "ext-policies",
		Title:  "LAMPS+PS energy by scheduling policy (EDF = 100%), coarse grain, deadline = 2x CPL",
		Header: []string{"benchmark"},
		Notes: []string{
			"extension beyond the paper: empirical check of the Section 4.4 claim that",
			"EDF leaves almost no room for other scheduling algorithms",
		},
	}
	for _, p := range sched.Policies {
		t.Header = append(t.Header, string(p))
	}
	apps := taskgen.Applications()
	apps = append(apps, mpeg.Fig9().Rename("mpeg1"))
	for _, unit := range apps {
		g := unit
		if unit.Name() != "mpeg1" {
			g = taskgen.Coarse.Scale(unit)
		}
		ccfg := core.DeadlineFactor(g, m, 2)
		row := []any{unit.Name()}
		var base float64
		for _, p := range sched.Policies {
			fn, err := sched.Priorities(p, cfg.Seed)
			if err != nil {
				return nil, err
			}
			c := ccfg
			c.Priorities = fn
			r, err := core.LAMPSPS(g, c)
			if err != nil {
				return nil, fmt.Errorf("ext-policies %s/%s: %w", unit.Name(), p, err)
			}
			if p == sched.PolicyEDF {
				base = r.TotalEnergy()
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*r.TotalEnergy()/base))
		}
		t.Append(row...)
	}
	return []Table{t}, nil
}

// ExtPerTask compares the per-task DVS extension (SlackReclaimDVS) against
// the paper's single-frequency heuristics and the LIMIT-MF bound, in the
// regime the paper predicts it could help: fine-grain tasks with strict
// deadlines.
func ExtPerTask(cfg Config) ([]Table, error) {
	m := cfg.model()
	var tables []Table
	for _, grain := range []taskgen.Grain{taskgen.Coarse, taskgen.Fine} {
		t := Table{
			ID:     fmt.Sprintf("ext-pertask-%s", grain),
			Title:  fmt.Sprintf("per-task DVS vs single frequency, %s grain (S&S = 100%%)", grain),
			Header: []string{"benchmark", "deadline", "LAMPS+PS", "VoltageIslands", "PerTask-DVS", "LIMIT-MF"},
			Notes: []string{
				"extension beyond the paper: per-processor constant frequencies (islands) and",
				"greedy per-task slack reclamation in the style of Zhu et al. [1]; the paper",
				"predicts multiple frequencies pay off only for fine grain + tight deadlines",
			},
		}
		for _, unit := range taskgen.Applications() {
			g := grain.Scale(unit)
			for _, factor := range []float64{1.5, 8} {
				ccfg := core.DeadlineFactor(g, m, factor)
				ss, err := core.ScheduleAndStretch(g, ccfg)
				if err != nil {
					return nil, err
				}
				base := ss.TotalEnergy()
				laps, err := core.LAMPSPS(g, ccfg)
				if err != nil {
					return nil, err
				}
				isl, err := core.VoltageIslands(g, ccfg, true)
				if err != nil {
					return nil, err
				}
				pt, err := core.SlackReclaimDVS(g, ccfg, true)
				if err != nil {
					return nil, err
				}
				mf, err := core.LimitMF(g, ccfg)
				if err != nil {
					return nil, err
				}
				t.Append(unit.Name(), fmt.Sprintf("%gx", factor),
					fmt.Sprintf("%.1f%%", 100*laps.TotalEnergy()/base),
					fmt.Sprintf("%.1f%%", 100*isl.TotalEnergy()/base),
					fmt.Sprintf("%.1f%%", 100*pt.TotalEnergy()/base),
					fmt.Sprintf("%.1f%%", 100*mf.TotalEnergy()/base))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ExtLeakage sweeps the leakage magnitude from 0.1x to 5x the 70 nm values
// and reports, on the MPEG-1 benchmark, how the critical frequency and the
// S&S-vs-LAMPS+PS gap move: with negligible leakage S&S is near-optimal
// (stretching is free), with heavy leakage processor-count selection and
// shutdown dominate — the paper's core motivation, quantified.
func ExtLeakage(cfg Config) ([]Table, error) {
	m := cfg.model()
	t := Table{
		ID:     "ext-leakage",
		Title:  "sensitivity to leakage magnitude (MPEG-1, deadline 0.5s)",
		Header: []string{"leakage", "fcrit/fmax", "Pdc@1V[W]", "S&S[J]", "LAMPS+PS[J]", "saving", "LAMPS procs"},
		Notes: []string{
			"extension beyond the paper: Borkar predicts ~5x leakage per generation;",
			"the LAMPS advantage grows with the static share of total power",
		},
	}
	g := mpeg.Fig9()
	for _, factor := range []float64{0.1, 0.5, 1, 2, 5} {
		sm, err := m.WithLeakage(factor)
		if err != nil {
			return nil, err
		}
		ccfg := core.Config{Model: sm, Deadline: mpeg.RealTimeDeadline}
		ss, err := core.ScheduleAndStretch(g, ccfg)
		if err != nil {
			return nil, err
		}
		laps, err := core.LAMPSPS(g, ccfg)
		if err != nil {
			return nil, err
		}
		la, err := core.LAMPS(g, ccfg)
		if err != nil {
			return nil, err
		}
		t.Append(fmt.Sprintf("%gx", factor),
			sm.CriticalLevel().Norm,
			sm.PowerDC(1.0),
			ss.TotalEnergy(),
			laps.TotalEnergy(),
			fmt.Sprintf("%.1f%%", 100*(1-laps.TotalEnergy()/ss.TotalEnergy())),
			la.NumProcs)
	}
	return []Table{t}, nil
}

// ExtOptimal compares the heuristics against exhaustive branch-and-bound
// optima on an ensemble of tiny random graphs (the only size where the true
// optimum is computable): LS-EDF makespan versus the optimal makespan, and
// LAMPS energy versus the optimal single-frequency energy.
func ExtOptimal(cfg Config) ([]Table, error) {
	m := cfg.model()
	t := Table{
		ID:     "ext-optimal",
		Title:  "heuristics vs exhaustive optima on tiny graphs (coarse grain)",
		Header: []string{"tasks", "instances", "LS-EDF makespan = opt", "avg makespan ratio", "LAMPS energy = opt", "avg energy ratio"},
		Notes: []string{
			"extension beyond the paper: branch-and-bound optimal makespans and the",
			"schedule-independent optimal single-frequency energy (internal/opt)",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range []int{4, 6, 8} {
		const instances = 25
		mkEq, enEq := 0, 0
		var mkRatio, enRatio float64
		counted := 0
		for i := 0; i < instances; i++ {
			g := tinyRandom(rng, n)
			scaled, err := g.ScaleWeights(taskgen.CoarseGrainCycles)
			if err != nil {
				return nil, err
			}
			ccfg := core.DeadlineFactor(scaled, m, 2)
			nprocs := 2 + i%2
			optMk, err := opt.OptimalMakespan(scaled, nprocs)
			if err != nil {
				return nil, err
			}
			ls, err := sched.ListEDF(scaled, nprocs)
			if err != nil {
				return nil, err
			}
			if ls.Makespan == optMk {
				mkEq++
			}
			mkRatio += float64(ls.Makespan) / float64(optMk)
			optEn, err := opt.OptimalEnergySF(scaled, m, ccfg.Deadline)
			if err != nil {
				return nil, err
			}
			la, err := core.LAMPS(scaled, ccfg)
			if err != nil {
				return nil, err
			}
			if la.TotalEnergy() <= optEn.EnergyJ*(1+1e-6) {
				enEq++
			}
			enRatio += la.TotalEnergy() / optEn.EnergyJ
			counted++
		}
		t.Append(n, counted,
			fmt.Sprintf("%d/%d", mkEq, counted),
			fmt.Sprintf("%.4f", mkRatio/float64(counted)),
			fmt.Sprintf("%d/%d", enEq, counted),
			fmt.Sprintf("%.4f", enRatio/float64(counted)))
	}
	return []Table{t}, nil
}

// tinyRandom builds a small random DAG in abstract weight units.
func tinyRandom(rng *rand.Rand, n int) *dag.Graph {
	b := dag.NewBuilder("tiny")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(30) + 1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err) // forward edges only: cannot fail
	}
	return g
}
