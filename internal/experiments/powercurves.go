package experiments

import (
	"lamps/internal/power"
)

// Fig2 regenerates the power and energy-per-cycle curves of Fig. 2: for
// every discrete operating point, the dynamic, static, intrinsic and total
// power (Fig. 2a) and the corresponding energies per cycle (Fig. 2b). The
// discrete critical level is flagged in the last column.
func Fig2(cfg Config) ([]Table, error) {
	m := cfg.model()
	pw := Table{
		ID:     "fig2a",
		Title:  "power consumption as a function of the normalised frequency",
		Header: []string{"vdd[V]", "f/fmax", "Pac[W]", "Pdc[W]", "Pon[W]", "Ptotal[W]"},
	}
	en := Table{
		ID:     "fig2b",
		Title:  "energy per cycle as a function of the normalised frequency",
		Header: []string{"vdd[V]", "f/fmax", "Eac[nJ]", "Edc[nJ]", "Eon[nJ]", "Etotal[nJ]", "critical"},
	}
	crit := m.CriticalLevel()
	for i := len(m.Levels()) - 1; i >= 0; i-- { // ascending frequency, as plotted
		l := m.Level(i)
		pac := m.PowerAC(l.Vdd, l.Freq)
		pdc := m.PowerDC(l.Vdd)
		pw.Append(l.Vdd, l.Norm, pac, pdc, m.POn, m.LevelPower(l))
		mark := ""
		if l.Index == crit.Index {
			mark = "fcrit"
		}
		const nano = 1e9
		en.Append(l.Vdd, l.Norm,
			pac/l.Freq*nano, pdc/l.Freq*nano, m.POn/l.Freq*nano,
			m.EnergyPerCycle(l)*nano, mark)
	}
	en.Notes = append(en.Notes,
		"paper: continuous fcrit = 0.38*fmax; discrete critical level at Vdd=0.70V (0.41*fmax)")
	return []Table{pw, en}, nil
}

// Fig3 regenerates the minimum number of idle cycles required for processor
// shutdown to be beneficial, as a function of the normalised frequency.
func Fig3(cfg Config) ([]Table, error) {
	m := cfg.model()
	t := Table{
		ID:     "fig3",
		Title:  "minimum idle period for beneficial shutdown vs normalised frequency",
		Header: []string{"vdd[V]", "f/fmax", "Pidle[W]", "breakeven[ms]", "breakeven[cycles]"},
		Notes: []string{
			"paper: about 1.7 million cycles at half the maximum frequency",
		},
	}
	for i := len(m.Levels()) - 1; i >= 0; i-- {
		l := m.Level(i)
		t.Append(l.Vdd, l.Norm, m.IdlePower(l),
			m.BreakevenTime(l)*1e3, m.BreakevenCycles(l))
	}
	// Also report the interpolated half-frequency point the paper quotes.
	if vdd, err := m.VddForFrequency(0.5 * m.FMax()); err == nil {
		l := power.Level{Vdd: vdd, Freq: m.Frequency(vdd), Norm: 0.5}
		t.Append(l.Vdd, 0.5, m.IdlePower(l), m.BreakevenTime(l)*1e3, m.BreakevenCycles(l))
	}
	return []Table{t}, nil
}
