package experiments

import (
	"fmt"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/taskgen"
	"lamps/internal/workpool"
)

// scatterApproaches are the point series of Figs. 12 and 13.
var scatterApproaches = []string{
	core.ApproachSS,
	core.ApproachLAMPS,
	core.ApproachSSPS,
	core.ApproachLAMPSPS,
	core.ApproachLimitMF,
}

// Fig12 regenerates the coarse-grain scatter plot of Fig. 12: total energy
// divided by total work (in joules per weight unit) as a function of the
// average amount of parallelism, one row per random graph, at a deadline of
// 2x the CPL.
func Fig12(cfg Config) ([]Table, error) {
	return scatter(cfg, taskgen.Coarse, "fig12")
}

// Fig13 regenerates the fine-grain scatter plot of Fig. 13.
func Fig13(cfg Config) ([]Table, error) {
	return scatter(cfg, taskgen.Fine, "fig13")
}

func scatter(cfg Config, grain taskgen.Grain, id string) ([]Table, error) {
	m := cfg.model()
	const factor = 2.0
	t := Table{
		ID: id,
		Title: fmt.Sprintf("energy/total-work vs average parallelism, %s grain, deadline = 2x CPL",
			grain),
		Header: append([]string{"graph", "parallelism"}, scatterApproaches...),
		Notes: []string{
			"energy per unit of work in J per STG weight unit; each row is one task graph",
		},
	}
	var units []*dag.Graph
	for _, size := range cfg.ScatterSizes {
		graphs, err := taskgen.Group(size, cfg.ScatterCount, cfg.Seed+int64(size)*31)
		if err != nil {
			return nil, err
		}
		units = append(units, graphs...)
	}
	rows := make([][]string, len(units))
	err := workpool.Map(len(units), cfg.Workers, func(i int) error {
		unit := units[i]
		g := grain.Scale(unit)
		workUnits := float64(unit.TotalWork())
		ccfg := core.DeadlineFactor(g, m, factor)
		row := []string{unit.Name(), formatFloat(g.Parallelism())}
		for _, a := range scatterApproaches {
			r, err := cfg.run(a, g, ccfg)
			if err != nil {
				return fmt.Errorf("%s %s %s: %w", id, unit.Name(), a, err)
			}
			row = append(row, fmt.Sprintf("%.6g", r.TotalEnergy()/workUnits))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return []Table{t}, nil
}
