// Package experiments regenerates every figure and table of the paper's
// evaluation (Section 5) from the library: the power/energy curves (Fig. 2),
// the shutdown break-even curve (Fig. 3), the energy-versus-processors sweep
// (Fig. 6), the relative energy bar charts for coarse and fine grain
// (Figs. 10 and 11), the parallelism scatter plots (Figs. 12 and 13), the
// benchmark characteristics (Table 2) and the MPEG-1 comparison (Table 3).
//
// Results are produced as plain-text tables (one row per bar/point/line of
// the original artwork) and can also be emitted as CSV for plotting.
package experiments

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artefact: a titled grid of cells with
// optional footnotes.
type Table struct {
	ID     string // experiment id, e.g. "fig10a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Append adds one row, formatting each cell with %v.
func (t *Table) Append(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.001:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], c)
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(bw, "note: %s\n", n)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

// WriteCSV renders the table as CSV (header + rows; the title and notes are
// emitted as comment records prefixed with '#').
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %s\n", t.ID, t.Title)
	cw := csv.NewWriter(bw)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(bw, "# %s\n", n)
	}
	return bw.Flush()
}
