package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one experiment.
type Runner func(Config) ([]Table, error)

// Registry maps experiment ids to their runners, covering every figure and
// table of the paper's evaluation.
var Registry = map[string]Runner{
	"fig2":   Fig2,
	"fig3":   Fig3,
	"fig6":   Fig6,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"table2": Table2,
	"table3": Table3,

	// Extensions beyond the paper (see extensions.go).
	"ext-policies": ExtPolicies,
	"ext-optimal":  ExtOptimal,
	"ext-pertask":  ExtPerTask,
	"ext-leakage":  ExtLeakage,
}

// Names returns the registered experiment ids in stable order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		// figN before tableN, numerically.
		return orderKey(names[i]) < orderKey(names[j])
	})
	return names
}

func orderKey(name string) string {
	var kind string
	var num int
	if _, err := fmt.Sscanf(name, "fig%d", &num); err == nil {
		kind = "a"
	} else if _, err := fmt.Sscanf(name, "table%d", &num); err == nil {
		kind = "b"
	} else {
		return "z" + name
	}
	return fmt.Sprintf("%s%04d", kind, num)
}

// Run executes one experiment by id.
func Run(name string, cfg Config) ([]Table, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg)
}

// RunAll executes every experiment in order, writing text tables to w.
func RunAll(w io.Writer, cfg Config, csv bool) error {
	for _, name := range Names() {
		tables, err := Run(name, cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		for _, t := range tables {
			var err error
			if csv {
				err = t.WriteCSV(w)
			} else {
				err = t.WriteText(w)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
