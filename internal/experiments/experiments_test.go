package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"lamps/internal/core"
)

func TestNamesCoverEveryPaperArtefact(t *testing.T) {
	want := []string{"fig2", "fig3", "fig6", "fig10", "fig11", "fig12", "fig13", "table2", "table3",
		"ext-leakage", "ext-optimal", "ext-pertask", "ext-policies"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", QuickConfig()); err == nil {
		t.Error("Run accepted an unknown experiment")
	}
}

func TestFig2Shape(t *testing.T) {
	tables, err := Fig2(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "fig2a" || tables[1].ID != "fig2b" {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	// One row per ladder level, frequency ascending, total power increasing.
	pw := tables[0]
	if len(pw.Rows) != 13 {
		t.Errorf("fig2a rows = %d, want 13", len(pw.Rows))
	}
	var prev float64
	for _, row := range pw.Rows {
		tot, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[5])
		}
		if tot < prev {
			t.Errorf("total power not increasing with frequency")
		}
		prev = tot
	}
	// The energy table marks exactly one critical level.
	en := tables[1]
	marks := 0
	for _, row := range en.Rows {
		if row[6] == "fcrit" {
			marks++
			if row[0] != "0.7000" {
				t.Errorf("critical level at Vdd %s, want 0.70", row[0])
			}
		}
	}
	if marks != 1 {
		t.Errorf("critical marks = %d, want 1", marks)
	}
}

func TestFig3Shape(t *testing.T) {
	tables, err := Fig3(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// The final appended row is the paper's half-frequency anchor.
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] != "0.5000" {
		t.Fatalf("expected half-frequency row, got %v", last)
	}
	cycles, err := strconv.ParseFloat(last[4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if cycles < 1.6e6 || cycles > 1.8e6 {
		t.Errorf("breakeven at f=0.5 is %g cycles, paper: about 1.7e6", cycles)
	}
}

func TestFig6Shape(t *testing.T) {
	tables, err := Fig6(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 20 {
		t.Fatalf("fig6 rows = %d, want 20", len(tb.Rows))
	}
	if len(tb.Header) != 4 {
		t.Fatalf("fig6 header = %v", tb.Header)
	}
	// Low processor counts are infeasible at a 2x deadline for all three
	// graphs; by 20 processors all are feasible with energy >= 1 (the
	// LIMIT-MF normalisation).
	for col := 1; col <= 3; col++ {
		if tb.Rows[0][col] != "-" {
			t.Errorf("%s feasible on 1 processor at 2x CPL?", tb.Header[col])
		}
		v, err := strconv.ParseFloat(tb.Rows[19][col], 64)
		if err != nil {
			t.Errorf("%s not feasible on 20 processors", tb.Header[col])
			continue
		}
		if v < 1 {
			t.Errorf("%s normalised energy %g < 1 (beats LIMIT-MF?)", tb.Header[col], v)
		}
	}
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q", cell)
	}
	return v
}

func TestFig10DominanceAndTrends(t *testing.T) {
	cfg := QuickConfig()
	tables, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(cfg.DeadlineFactors) {
		t.Fatalf("got %d tables, want %d", len(tables), len(cfg.DeadlineFactors))
	}
	// Columns: benchmark, LAMPS, S&S+PS, LAMPS+PS, LIMIT-SF, LIMIT-MF.
	for ti, tb := range tables {
		for _, row := range tb.Rows {
			lamps := parsePct(t, row[1])
			ssps := parsePct(t, row[2])
			lampsps := parsePct(t, row[3])
			sf := parsePct(t, row[4])
			mf := parsePct(t, row[5])
			if lamps > 100.0001 || ssps > 100.0001 {
				t.Errorf("table %d %s: heuristic above the S&S baseline", ti, row[0])
			}
			if !(mf <= sf+1e-6 && sf <= lampsps+1e-6 && lampsps <= lamps+1e-6 && lampsps <= ssps+1e-6) {
				t.Errorf("table %d %s: dominance violated: %v", ti, row[0], row)
			}
		}
	}
	// Looser deadlines give larger savings: compare the first benchmark's
	// LAMPS+PS column across the 1.5x and 8x tables.
	tight := parsePct(t, tables[0].Rows[0][3])
	loose := parsePct(t, tables[len(tables)-1].Rows[0][3])
	if loose >= tight {
		t.Errorf("loose-deadline savings (%g%%) not larger than tight (%g%%)", 100-loose, 100-tight)
	}
}

func TestFig12Shape(t *testing.T) {
	cfg := QuickConfig()
	tables, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	wantRows := len(cfg.ScatterSizes) * cfg.ScatterCount
	if len(tb.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), wantRows)
	}
	for _, row := range tb.Rows {
		par, err := strconv.ParseFloat(row[1], 64)
		if err != nil || par < 1 {
			t.Errorf("bad parallelism %q", row[1])
		}
		// Energy per unit of work must be at least the critical energy per
		// cycle times the grain (the LIMIT-MF column, last).
		mf, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad cell: %v", err)
		}
		for c := 2; c < len(row)-1; c++ {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				t.Fatalf("bad cell: %v", err)
			}
			if v < mf*(1-1e-9) {
				t.Errorf("%s: %s below LIMIT-MF", row[0], tb.Header[c])
			}
		}
	}
}

func TestTable2IncludesAllBenchmarks(t *testing.T) {
	cfg := QuickConfig()
	tables, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	names := map[string]bool{}
	for _, row := range tb.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"fpppp", "robot", "sparse", "50", "100"} {
		if !names[want] {
			t.Errorf("table2 missing benchmark %q", want)
		}
	}
	// The application rows must reproduce Table 2 exactly.
	for _, row := range tb.Rows {
		if row[0] == "fpppp" {
			if row[1] != "334" || row[3] != "1062" || row[4] != "7113" {
				t.Errorf("fpppp row = %v", row)
			}
		}
	}
}

// TestTable3MatchesPaperShape verifies the qualitative MPEG-1 findings of
// the paper: LAMPS saves roughly a quarter versus S&S using 3 processors,
// S&S+PS and LAMPS+PS save roughly 40% and sit within a percent of both
// limits, and LAMPS+PS uses fewer processors than S&S+PS.
func TestTable3MatchesPaperShape(t *testing.T) {
	tables, err := Table3(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	rows := map[string][]string{}
	for _, row := range tb.Rows {
		rows[row[0]] = row
	}
	pct := func(name string) float64 { return parsePct(t, rows[name][2]) }

	if got := pct(core.ApproachLAMPS); got < 68 || got > 82 {
		t.Errorf("LAMPS relative = %g%%, paper: 73.4%%", got)
	}
	if got := pct(core.ApproachSSPS); got < 55 || got > 68 {
		t.Errorf("S&S+PS relative = %g%%, paper: 60.4%%", got)
	}
	if got := pct(core.ApproachLAMPSPS); got < 55 || got > 68 {
		t.Errorf("LAMPS+PS relative = %g%%, paper: 60.4%%", got)
	}
	if rows[core.ApproachLAMPS][3] != "3" {
		t.Errorf("LAMPS #procs = %s, paper: 3", rows[core.ApproachLAMPS][3])
	}
	ssProcs, _ := strconv.Atoi(rows[core.ApproachSS][3])
	lpProcs, _ := strconv.Atoi(rows[core.ApproachLAMPSPS][3])
	if ssProcs < 7 || ssProcs > 8 {
		t.Errorf("S&S #procs = %d, paper: 7", ssProcs)
	}
	if lpProcs >= ssProcs {
		t.Errorf("LAMPS+PS procs (%d) not below S&S+PS procs (%d)", lpProcs, ssProcs)
	}
	// The +PS heuristics must be within 2% of LIMIT-SF.
	sf := pct(core.ApproachLimitSF)
	if pct(core.ApproachLAMPSPS) > sf*1.02 {
		t.Errorf("LAMPS+PS (%g%%) not close to LIMIT-SF (%g%%)", pct(core.ApproachLAMPSPS), sf)
	}
}

func TestRenderText(t *testing.T) {
	tb := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"hello"},
	}
	tb.Append("one", 2.5)
	tb.Append(3, "four")
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "one", "2.5000", "four", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := Table{ID: "y", Title: "demo", Header: []string{"a", "b"}}
	tb.Append("v", 1)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a,b\n") || !strings.Contains(out, "v,1\n") {
		t.Errorf("csv output wrong:\n%s", out)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	cfg := QuickConfig()
	var buf bytes.Buffer
	if err := RunAll(&buf, cfg, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range Names() {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

// TestVerifyClaims runs the full reproduction scorecard: every encoded
// claim of the paper must pass against the default model and workloads.
func TestVerifyClaims(t *testing.T) {
	var buf bytes.Buffer
	passed, failed, err := VerifyClaims(&buf, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("%d claims failed:\n%s", failed, buf.String())
	}
	if passed != len(Claims) {
		t.Errorf("passed = %d, want %d", passed, len(Claims))
	}
	out := buf.String()
	for _, c := range Claims {
		if !strings.Contains(out, c.ID) {
			t.Errorf("scorecard missing claim %s", c.ID)
		}
	}
}

// TestRenderSVGAllFigures: every fig* experiment renders to valid non-empty
// SVG; tabular artefacts render to nothing.
func TestRenderSVGAllFigures(t *testing.T) {
	cfg := QuickConfig()
	wantFigs := map[string]int{
		"fig2": 2, "fig3": 1, "fig6": 1, "fig10": 4, "fig11": 4,
		"fig12": 1, "fig13": 1, "table2": 0, "table3": 0,
	}
	for name, want := range wantFigs {
		tables, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		figs, err := RenderSVG(name, tables)
		if err != nil {
			t.Fatalf("RenderSVG(%s): %v", name, err)
		}
		if len(figs) != want {
			t.Errorf("%s rendered %d figures, want %d", name, len(figs), want)
			continue
		}
		for _, f := range figs {
			s := string(f.SVG)
			if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
				t.Errorf("%s/%s: not an SVG document", name, f.ID)
			}
			if strings.Contains(s, "NaN") {
				t.Errorf("%s/%s: NaN in output", name, f.ID)
			}
		}
	}
}
