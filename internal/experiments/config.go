package experiments

import (
	"context"
	"fmt"
	"sort"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/taskgen"
)

// Config controls the experiment suite. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Model is the processor power model (nil = power.Default70nm()).
	Model *power.Model

	// Seed feeds the deterministic graph generators.
	Seed int64

	// GroupCount is the number of random graphs per size group. The STG set
	// has 180 per group; the default is smaller so a full run stays fast,
	// and can be raised for publication-strength averages.
	GroupCount int

	// GroupSizes are the random group sizes of Figs. 10/11.
	GroupSizes []int

	// ScatterSizes and ScatterCount control the graphs of Figs. 12/13.
	ScatterSizes []int
	ScatterCount int

	// DeadlineFactors are the deadline/CPL ratios of Figs. 10/11.
	DeadlineFactors []float64

	// Workers bounds the number of goroutines used by the heavy experiments
	// (0 = GOMAXPROCS). Results are deterministic regardless of the value.
	Workers int

	// Observer, when non-nil, receives the core engine's progress hooks
	// from every heuristic run of the figure experiments. Experiment stages
	// run their graphs in parallel, so — unlike core.Engine.Observer — the
	// implementation must be safe for concurrent use.
	Observer core.Observer
}

// DefaultConfig returns the configuration used by cmd/experiments.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		GroupCount:      5,
		GroupSizes:      append([]int(nil), taskgen.GroupSizes...),
		ScatterSizes:    append([]int(nil), taskgen.ScatterSizes...),
		ScatterCount:    6,
		DeadlineFactors: []float64{1.5, 2, 4, 8},
	}
}

// QuickConfig returns a reduced configuration for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		Seed:            1,
		GroupCount:      2,
		GroupSizes:      []int{50, 100},
		ScatterSizes:    []int{100, 200},
		ScatterCount:    2,
		DeadlineFactors: []float64{1.5, 2, 4, 8},
	}
}

func (c *Config) model() *power.Model {
	if c.Model == nil {
		return power.Default70nm()
	}
	return c.Model
}

// run executes one approach through the core engine so a configured
// Observer sees the search progress. Experiments are batch jobs with no
// cancellation story, so the context is Background.
func (c *Config) run(approach string, g *dag.Graph, ccfg core.Config) (*core.Result, error) {
	eng := core.Engine{Config: ccfg, Observer: c.Observer}
	return eng.Run(context.Background(), approach, g)
}

// benchmark is one named workload of the evaluation: either a group of
// random graphs (whose results are averaged) or a single application graph.
type benchmark struct {
	name   string
	graphs []*dag.Graph // in abstract weight units
}

// benchmarks assembles the evaluation workloads in the paper's presentation
// order: random groups by size, then fpppp, robot, sparse.
func (c *Config) benchmarks() ([]benchmark, error) {
	var out []benchmark
	sizes := append([]int(nil), c.GroupSizes...)
	sort.Ints(sizes)
	for _, size := range sizes {
		gs, err := taskgen.Group(size, c.GroupCount, c.Seed+int64(size))
		if err != nil {
			return nil, fmt.Errorf("experiments: generating group %d: %w", size, err)
		}
		out = append(out, benchmark{name: fmt.Sprint(size), graphs: gs})
	}
	for _, app := range taskgen.Applications() {
		out = append(out, benchmark{name: app.Name(), graphs: []*dag.Graph{app}})
	}
	return out, nil
}
