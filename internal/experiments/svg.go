package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"lamps/internal/svgplot"
)

// RenderedFigure is one SVG rendering of an experiment table.
type RenderedFigure struct {
	ID  string // file stem, e.g. "fig10a"
	SVG []byte
}

// RenderSVG turns the tables of one experiment into SVG figures mirroring
// the paper's artwork. Experiments that are inherently tabular (table2,
// table3 and the ext-* scorecards except ext-leakage) return nil.
func RenderSVG(name string, tables []Table) ([]RenderedFigure, error) {
	var out []RenderedFigure
	for _, t := range tables {
		fig, err := figureFor(name, t)
		if err != nil {
			return nil, err
		}
		if fig == nil {
			continue
		}
		var buf bytes.Buffer
		if err := fig.Render(&buf); err != nil {
			return nil, fmt.Errorf("experiments: rendering %s: %w", t.ID, err)
		}
		out = append(out, RenderedFigure{ID: t.ID, SVG: buf.Bytes()})
	}
	return out, nil
}

// figureFor maps one table onto a chart form: curves over the frequency or
// processor count become line charts, the relative-energy comparisons
// grouped bars, and the parallelism studies scatter plots.
func figureFor(name string, t Table) (*svgplot.Figure, error) {
	switch {
	case t.ID == "fig2a":
		return lineFigure(t, 1, []int{2, 3, 4, 5}, "normalised frequency", "power [W]")
	case t.ID == "fig2b":
		return lineFigure(t, 1, []int{2, 3, 4, 5}, "normalised frequency", "energy per cycle [nJ]")
	case t.ID == "fig3":
		return lineFigure(t, 1, []int{4}, "normalised frequency", "break-even idle period [cycles]")
	case t.ID == "fig6":
		return lineFigure(t, 0, []int{1, 2, 3}, "number of processors", "energy / LIMIT-MF")
	case strings.HasPrefix(t.ID, "fig10") || strings.HasPrefix(t.ID, "fig11"):
		return barFigure(t)
	case t.ID == "fig12" || t.ID == "fig13":
		return scatterFigure(t)
	default:
		return nil, nil // tabular artefact
	}
}

func cellFloat(cell string) (float64, bool) {
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "%")
	v, err := strconv.ParseFloat(cell, 64)
	return v, err == nil
}

func lineFigure(t Table, xcol int, ycols []int, xlabel, ylabel string) (*svgplot.Figure, error) {
	fig := &svgplot.Figure{
		Title: fmt.Sprintf("%s — %s", t.ID, t.Title), Kind: "line",
		XLabel: xlabel, YLabel: ylabel,
	}
	for _, yc := range ycols {
		s := svgplot.Series{Name: t.Header[yc]}
		for _, row := range t.Rows {
			x, okX := cellFloat(row[xcol])
			y, okY := cellFloat(row[yc])
			if okX && okY {
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
		}
		if len(s.X) > 0 {
			fig.Series = append(fig.Series, s)
		}
	}
	if len(fig.Series) == 0 {
		return nil, fmt.Errorf("experiments: %s has no plottable series", t.ID)
	}
	return fig, nil
}

func barFigure(t Table) (*svgplot.Figure, error) {
	fig := &svgplot.Figure{
		Title: fmt.Sprintf("%s — %s", t.ID, t.Title), Kind: "bars",
		YLabel: "energy relative to S&S [%]", Width: 960,
	}
	for _, row := range t.Rows {
		fig.Groups = append(fig.Groups, row[0])
	}
	for c := 1; c < len(t.Header); c++ {
		s := svgplot.Series{Name: t.Header[c]}
		for _, row := range t.Rows {
			v, ok := cellFloat(row[c])
			if !ok {
				return nil, fmt.Errorf("experiments: %s: bad cell %q", t.ID, row[c])
			}
			s.Y = append(s.Y, v)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func scatterFigure(t Table) (*svgplot.Figure, error) {
	fig := &svgplot.Figure{
		Title: fmt.Sprintf("%s — %s", t.ID, t.Title), Kind: "scatter",
		XLabel: "average parallelism (work / CPL)", YLabel: "energy per unit of work [J]",
	}
	for c := 2; c < len(t.Header); c++ {
		s := svgplot.Series{Name: t.Header[c]}
		for _, row := range t.Rows {
			x, okX := cellFloat(row[1])
			y, okY := cellFloat(row[c])
			if okX && okY {
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
