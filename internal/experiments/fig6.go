package experiments

import (
	"fmt"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
)

// Fig6 regenerates the energy-versus-processor-count sweep of Fig. 6: the
// total energy of the stretched EDF schedule (no shutdown, unused
// processors off) for the three application graphs at a deadline of 2x the
// CPL, for 1..20 processors. Energies are normalised by the graph's
// LIMIT-MF bound so the three curves share a scale; infeasible
// configurations (too few processors to meet the deadline) are marked "-".
// The local minima visible in these curves are why LAMPS performs a linear
// rather than binary search over the processor count.
func Fig6(cfg Config) ([]Table, error) {
	m := cfg.model()
	const factor = 2.0
	const maxProcs = 20
	apps := taskgen.Applications()

	t := Table{
		ID:     "fig6",
		Title:  "normalised energy vs number of processors (deadline = 2x CPL, coarse grain)",
		Header: []string{"#procs"},
		Notes: []string{
			"energy normalised by the graph's LIMIT-MF bound",
			"paper: local minima (e.g. sparse around 14 processors) force a linear search",
		},
	}
	type column struct {
		g     *dag.Graph
		mf    float64
		cells []string
	}
	var cols []column
	for _, app := range apps {
		g := taskgen.Coarse.Scale(app)
		t.Header = append(t.Header, app.Name())
		ccfg := core.DeadlineFactor(g, m, factor)
		mf, err := core.LimitMF(g, ccfg)
		if err != nil {
			return nil, err
		}
		cols = append(cols, column{g: g, mf: mf.TotalEnergy()})
	}
	for n := 1; n <= maxProcs; n++ {
		for i := range cols {
			c := &cols[i]
			cell := "-"
			s, err := sched.ListEDF(c.g, n)
			if err != nil {
				return nil, err
			}
			deadline := factor * float64(c.g.CriticalPathLength()) / m.FMax()
			if lvl, err := energy.MinFeasibleLevel(s, m, deadline); err == nil {
				b, err := energy.Evaluate(s, m, lvl, deadline, energy.Options{})
				if err != nil {
					return nil, err
				}
				cell = formatFloat(b.Total() / c.mf)
			}
			c.cells = append(c.cells, cell)
		}
	}
	for n := 1; n <= maxProcs; n++ {
		row := []string{fmt.Sprint(n)}
		for i := range cols {
			row = append(row, cols[i].cells[n-1])
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
