package experiments

import (
	"runtime"
	"sync"
)

// parallelMap runs fn(i) for every i in [0, n) on up to workers goroutines
// (0 = GOMAXPROCS) and returns the first error. Callers write result slot i
// from fn(i) only, so no further synchronisation is needed and output order
// stays deterministic regardless of scheduling.
func parallelMap(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
