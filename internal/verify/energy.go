package verify

import (
	"fmt"
	"sort"

	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// Energy recomputes the full energy breakdown of running s at level lvl
// until deadlineSec, from first principles: the busy time is the sum of the
// raw task durations, and every gap of every employed processor is found by
// sorting the raw Proc/Start/Finish arrays and walked linearly, classified
// one by one against the break-even time. It shares no code with
// energy.Evaluate or GapProfile — in particular it does not call
// Schedule.Gaps or Schedule.BusyCycles — yet it must agree with them bit
// for bit: both sides keep the idle/sleep totals as exact integer cycle
// counts and apply the same final float conversions, so any difference at
// all means one of the two implementations is wrong.
//
// Model semantics re-derived here, matching the paper (Section 3):
//   - the machine stays available until the deadline, so each employed
//     processor has a trailing gap from its last finish to the horizon;
//   - processors that run no task at all are off and consume nothing;
//   - with opts.PS, a gap strictly longer than the break-even time is slept
//     through (P_sleep plus one shutdown overhead), otherwise it idles;
//   - with opts.IgnoreIdle, only the active energy is accounted.
func Energy(s *sched.Schedule, m *power.Model, lvl power.Level, deadlineSec float64, opts energy.Options) (energy.Breakdown, error) {
	var b energy.Breakdown
	if s == nil || m == nil {
		return b, fmt.Errorf("verify: nil schedule or model")
	}
	makespanSec := float64(s.Makespan) / lvl.Freq
	if makespanSec > deadlineSec*(1+1e-12) {
		return b, fmt.Errorf("verify: %w", energy.ErrDeadline)
	}

	var busy int64
	for v := range s.Start {
		busy += s.Finish[v] - s.Start[v]
	}
	b.ActiveTime = float64(busy) / lvl.Freq
	b.Active = b.ActiveTime * m.LevelPower(lvl)
	if opts.IgnoreIdle {
		return b, nil
	}

	horizon := int64(deadlineSec * lvl.Freq)
	if horizon < s.Makespan {
		horizon = s.Makespan
	}
	breakeven := m.BreakevenTime(lvl)
	var idleCycles, sleepCycles int64
	shutdowns := 0
	account := func(gap int64) {
		if gap <= 0 {
			return
		}
		if opts.PS && float64(gap)/lvl.Freq > breakeven {
			sleepCycles += gap
			shutdowns++
		} else {
			idleCycles += gap
		}
	}

	byProc := make([][]int32, s.NumProcs)
	for v := range s.Proc {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], int32(v))
	}
	for _, tasks := range byProc {
		if len(tasks) == 0 {
			continue // unemployed processor: off, no gaps
		}
		sort.Slice(tasks, func(i, j int) bool { return s.Start[tasks[i]] < s.Start[tasks[j]] })
		cursor := int64(0)
		for _, v := range tasks {
			account(s.Start[v] - cursor)
			cursor = s.Finish[v]
		}
		account(horizon - cursor)
	}

	b.IdleTime = float64(idleCycles) / lvl.Freq
	b.Idle = b.IdleTime * m.IdlePower(lvl)
	b.SleepTime = float64(sleepCycles) / lvl.Freq
	b.Sleep = b.SleepTime * m.PSleep
	b.Shutdowns = shutdowns
	b.Overhead = float64(shutdowns) * m.EOverhead
	return b, nil
}

// EnergyMatches recomputes the breakdown with Energy and requires got to be
// bit-identical — every field, shutdown count included. A mismatch is a
// CheckEnergy Violation whose detail lists the differing fields.
func EnergyMatches(s *sched.Schedule, m *power.Model, lvl power.Level, deadlineSec float64, opts energy.Options, got energy.Breakdown) error {
	want, err := Energy(s, m, lvl, deadlineSec, opts)
	if err != nil {
		return &Violation{
			Check:  CheckEnergy,
			Detail: fmt.Sprintf("reported breakdown %+v for a schedule the reference walk rejects: %v", got, err),
			Repro:  dump(s.Graph, s, nil),
		}
	}
	if got == want {
		return nil
	}
	diffs := breakdownDiffs(got, want)
	return &Violation{
		Check: CheckEnergy,
		Detail: fmt.Sprintf("breakdown differs from the first-principles walk (level %d, deadline %gs, PS=%v): %s",
			lvl.Index, deadlineSec, opts.PS, diffs),
		Repro: dump(s.Graph, s, nil),
	}
}

// breakdownDiffs lists the fields on which two breakdowns disagree.
func breakdownDiffs(got, want energy.Breakdown) string {
	type field struct {
		name      string
		got, want float64
	}
	fields := []field{
		{"Active", got.Active, want.Active},
		{"Idle", got.Idle, want.Idle},
		{"Sleep", got.Sleep, want.Sleep},
		{"Overhead", got.Overhead, want.Overhead},
		{"ActiveTime", got.ActiveTime, want.ActiveTime},
		{"IdleTime", got.IdleTime, want.IdleTime},
		{"SleepTime", got.SleepTime, want.SleepTime},
		{"Shutdowns", float64(got.Shutdowns), float64(want.Shutdowns)},
	}
	out := ""
	for _, f := range fields {
		if f.got != f.want {
			if out != "" {
				out += ", "
			}
			out += fmt.Sprintf("%s %v != %v", f.name, f.got, f.want)
		}
	}
	if out == "" {
		out = "no field differs (NaN?)"
	}
	return out
}
