package verify

import (
	"math/rand"
	"testing"

	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// heteroPlatform returns the LP×3 + HP×2 test machine used across the
// platform verifier tests.
func heteroPlatform(t testing.TB) *power.Platform {
	t.Helper()
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	lp.PSleep = 25e-6
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestPlatformScheduleAcceptsKernelSchedules: every schedule the platform
// kernel builds must pass the platform verifier, and the degenerate
// single-class platform must accept legacy list schedules unchanged.
func TestPlatformScheduleAcceptsKernelSchedules(t *testing.T) {
	pf := heteroPlatform(t)
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 25; iter++ {
		g := member(t, 2+rng.Intn(50), rng.Intn(4), rng.Int63())
		nprocs := 1 + rng.Intn(pf.NumProcs())
		s, err := sched.ListSchedulePlatform(g, pf, nprocs, sched.EDFPriorities(g, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := PlatformSchedule(g, pf, s); err != nil {
			t.Fatalf("iter %d: kernel schedule rejected: %v", iter, err)
		}
	}
	m := power.Default70nm()
	g := member(t, 30, 1, 11)
	s := schedule(t, g, 3)
	hom, err := power.Homogeneous(3, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := PlatformSchedule(g, hom, s); err != nil {
		t.Fatalf("homogeneous platform rejects a legacy schedule: %v", err)
	}
}

// TestPlatformScheduleRejectsScaledDurationMismatch: a heterogeneous
// schedule whose slot length matches the raw weight instead of the
// class-scaled weight must be rejected — the defining check of the platform
// verifier.
func TestPlatformScheduleRejectsScaledDurationMismatch(t *testing.T) {
	pf := heteroPlatform(t)
	g := member(t, 20, 0, 3)
	s, err := sched.ListSchedulePlatform(g, pf, pf.NumProcs(), sched.EDFPriorities(g, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find a task on an LP core (scale > 1) and shrink its slot to the raw
	// weight — legal for the legacy verifier's notion of duration, illegal
	// for the platform one.
	for v := range s.Proc {
		c := pf.ClassOf(int(s.Proc[v]))
		w := g.Weight(v)
		if pf.ScaledWeight(c, w) == w {
			continue
		}
		bad := cloneSchedule(s)
		bad.Finish[v] = bad.Start[v] + w
		if err := PlatformSchedule(g, pf, bad); err == nil {
			t.Fatalf("raw-weight slot on a scaled class accepted for task %d", v)
		}
		return
	}
	t.Fatal("no task landed on a scaled class; platform too small for the test")
}

// TestPlatformEnergyParity: the verifier's independent per-gap walk and the
// profile's bucketed evaluation must agree bit for bit on heterogeneous
// schedules — every Breakdown field — across operating points, PS modes and
// slacks. This is the cross-implementation contract SelfCheck relies on.
func TestPlatformEnergyParity(t *testing.T) {
	pf := heteroPlatform(t)
	rng := rand.New(rand.NewSource(20260809))
	var p energy.GapProfile
	for iter := 0; iter < 20; iter++ {
		g := member(t, 2+rng.Intn(40), rng.Intn(4), rng.Int63())
		s, err := sched.ListSchedulePlatform(g, pf, pf.NumProcs(), sched.EDFPriorities(g, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		p.ResetPlatform(s, pf)
		for _, pt := range pf.Points() {
			base := float64(s.Makespan) / pt.TimelineFreq
			for _, slack := range []float64{1, 1.7, 6} {
				deadline := base * slack
				for _, opts := range []energy.Options{{}, {PS: true}, {IgnoreIdle: true}} {
					got, errGot := p.EvaluatePoint(pf, pt, deadline, opts)
					want, errWant := PlatformEnergy(s, pf, pt, deadline, opts)
					if (errGot == nil) != (errWant == nil) {
						t.Fatalf("iter %d pt %d: err %v vs verifier %v", iter, pt.Index, errGot, errWant)
					}
					if errGot != nil {
						continue
					}
					if got != want {
						t.Fatalf("iter %d pt %d slack %g opts %+v:\n  profile  %+v\n  verifier %+v",
							iter, pt.Index, slack, opts, got, want)
					}
					if err := PlatformEnergyMatches(s, pf, pt, deadline, opts, got); err != nil {
						t.Fatalf("iter %d pt %d: PlatformEnergyMatches rejects the parity value: %v", iter, pt.Index, err)
					}
				}
			}
		}
	}
}

// TestSelfTestPlatformDetectsEveryClass: every applicable corruption class
// of the platform self-test — including the heterogeneity-specific
// class-swap — must be detected on a machine and graph where all mutations
// apply.
func TestSelfTestPlatformDetectsEveryClass(t *testing.T) {
	pf := heteroPlatform(t)
	g := member(t, 40, 0, 5)
	s, err := sched.ListSchedulePlatform(g, pf, pf.NumProcs(), sched.EDFPriorities(g, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := pf.MaxPoint()
	deadline := float64(s.Makespan) / pt.TimelineFreq * 2
	results, err := SelfTestPlatform(g, pf, s, pt, deadline, energy.Options{PS: true})
	if err != nil {
		t.Fatalf("SelfTestPlatform: %v", err)
	}
	detected := 0
	for _, r := range results {
		if r.Skipped {
			t.Logf("mutation %q skipped", r.Class)
			continue
		}
		if !r.Detected {
			t.Errorf("mutation %q NOT detected", r.Class)
			continue
		}
		detected++
	}
	if detected < 5 {
		t.Errorf("only %d mutations detected; the self-test has lost coverage", detected)
	}
	// The class-swap mutation must apply on this genuinely heterogeneous
	// machine: a skip here means the scaled-duration check went untested.
	for _, r := range results {
		if r.Class == "class-swap" && r.Skipped {
			t.Error("class-swap mutation skipped on a heterogeneous platform")
		}
	}
}
