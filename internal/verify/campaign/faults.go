package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/graphhash"
	"lamps/internal/power"
	"lamps/internal/sim"
	"lamps/internal/taskgen"
	"lamps/internal/verify"
)

// maxPatternsPerK bounds the fault patterns replayed per (machine, K):
// exhaustive below the bound, uniformly sampled above it.
const maxPatternsPerK = 12

// FaultReport is the fault-injection campaign's tally, the FT sibling of
// Report. A campaign is clean iff Violations is empty.
type FaultReport struct {
	Graphs     int // graphs generated and exercised
	Runs       int // fault-tolerant engine invocations
	Infeasible int // (machine, factor) cases without enough recovery slack
	Patterns   int // fault patterns replayed and re-verified

	PlanChecks        int // independent backup-plan verifications
	EnergyChecks      int // bit-for-bit FT breakdown re-derivations
	MetamorphicChecks int // K-independence and digest relations asserted

	MutationRuns     int // injected backup corruptions
	MutationDetected int // corruptions the verifier rejected
	MutationSkipped  int // corruption classes not applicable to the instance

	Violations []string
}

// Clean reports whether the campaign found nothing.
func (r *FaultReport) Clean() bool { return len(r.Violations) == 0 }

// Summary renders the one-line tally.
func (r *FaultReport) Summary() string {
	return fmt.Sprintf(
		"%d graphs, %d FT runs (%d infeasible): %d fault patterns, %d plan checks, %d energy checks, %d metamorphic checks, mutations %d/%d detected (%d skipped), violations: %d",
		r.Graphs, r.Runs, r.Infeasible, r.Patterns, r.PlanChecks, r.EnergyChecks,
		r.MetamorphicChecks, r.MutationDetected, r.MutationRuns, r.MutationSkipped, len(r.Violations))
}

func (r *FaultReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// ftMachine is one (machine, policy) combination the fault campaign drives.
type ftMachine struct {
	name   string
	pf     *power.Platform // nil for the homogeneous model machine
	policy core.FaultPolicy
}

// campaignPlatform builds the heterogeneous machine the fault campaign runs
// against: three low-power cores beside two reference-class ones, so the
// primary-HP/backup-LP policy always has an off-reference processor to fall
// back to.
func campaignPlatform() (*power.Platform, error) {
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	if err := lp.Build(); err != nil {
		return nil, err
	}
	return power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1, 1},
	)
}

// RunFaults executes the metamorphic fault-injection campaign: seeded random
// graphs are scheduled fault-tolerantly (LAMPS+PS with the engine self-check
// on) across a homogeneous machine and a heterogeneous platform under both
// backup policies; every resulting plan is re-checked by the independent
// verifier; K∈{1,2} fault patterns — exhaustive up to maxPatternsPerK per K,
// sampled above — are replayed through internal/sim and re-derived by
// verify.RecoverySchedule, requiring agreement and deadline compliance;
// the K-independence of the plan and the K-sensitivity of the problem digest
// are asserted per instance; and verify.SelfTestFaults periodically proves
// the checker still rejects corrupted plans. Options are interpreted as in
// Run; factors rotate per graph rather than multiplying the run count, and
// cases whose deadline leaves no recovery slack are tallied as Infeasible
// and skipped.
func RunFaults(ctx context.Context, options Options) (*FaultReport, error) {
	opt := options.withDefaults()
	m := power.Default70nm()
	rep := &FaultReport{}
	pf, err := campaignPlatform()
	if err != nil {
		return rep, fmt.Errorf("campaign: platform: %w", err)
	}
	machines := []ftMachine{
		{"model/anywhere", nil, core.FaultBackupAnywhere},
		{"platform/anywhere", pf, core.FaultBackupAnywhere},
		{"platform/hp-lp", pf, core.FaultPrimaryHPBackupLP},
	}
	grains := []taskgen.Grain{taskgen.Coarse, taskgen.Fine}

	for i := 0; i < opt.Graphs; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if len(rep.Violations) >= opt.MaxViolations {
			if opt.Logf != nil {
				opt.Logf("stopping after %d violations", len(rep.Violations))
			}
			break
		}
		size := opt.Sizes[i%len(opt.Sizes)]
		seed := opt.Seed + 7919*int64(i)
		raw, err := taskgen.Member(size, i, seed)
		if err != nil {
			return rep, fmt.Errorf("campaign: graph %d: %w", i, err)
		}
		g := grains[i%len(grains)].Scale(raw)
		rep.Graphs++
		factor := opt.Factors[i%len(opt.Factors)]
		tag := fmt.Sprintf("graph %d (%q, %d tasks, seed %d, factor %g)", i, g.Name(), g.NumTasks(), seed, factor)
		rng := rand.New(rand.NewSource(seed))
		mutate := opt.MutateEvery > 0 && i%opt.MutateEvery == 0

		for _, mc := range machines {
			if err := runFaultCase(ctx, rep, tag, g, m, mc, factor, rng, mutate); err != nil {
				return rep, err
			}
		}
		if opt.Logf != nil && (i+1)%50 == 0 {
			opt.Logf("%d/%d graphs, %d FT runs, %d patterns, %d violations",
				i+1, opt.Graphs, rep.Runs, rep.Patterns, len(rep.Violations))
		}
	}
	return rep, nil
}

// runFaultCase drives one (graph, machine, factor) case end to end.
func runFaultCase(ctx context.Context, rep *FaultReport, tag string, g *dag.Graph, m *power.Model, mc ftMachine, factor float64, rng *rand.Rand, mutate bool) error {
	var base core.Config
	if mc.pf != nil {
		base = core.DeadlineFactorPlatform(g, mc.pf, factor)
	} else {
		base = core.DeadlineFactor(g, m, factor)
	}
	base.SelfCheck = true

	results := make([]*core.Result, 2)
	for ki, k := range []int{1, 2} {
		cfg := base
		cfg.Faults = &core.FaultConfig{K: k, Policy: mc.policy}
		res, err := (&core.Engine{Config: cfg}).Run(ctx, core.ApproachLAMPSPS, g)
		rep.Runs++
		switch {
		case err == nil:
			results[ki] = res
		case errors.Is(err, core.ErrInfeasible):
			rep.Infeasible++
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			rep.violate("%s %s K=%d: unexpected error: %v", tag, mc.name, k, err)
		}
	}
	r1, r2 := results[0], results[1]

	// K-independence: the static plan covers every task, so K=1 and K=2 must
	// agree bit for bit — while their problem digests must not.
	if (r1 == nil) != (r2 == nil) {
		rep.violate("%s %s: feasibility differs between K=1 and K=2", tag, mc.name)
	}
	if r1 != nil && r2 != nil {
		if r1.Energy != r2.Energy || r1.NumProcs != r2.NumProcs {
			rep.violate("%s %s: K=1 and K=2 results diverge: %g J / %d procs vs %g J / %d procs",
				tag, mc.name, r1.TotalEnergy(), r1.NumProcs, r2.TotalEnergy(), r2.NumProcs)
		}
		p := graphhash.Problem{Graph: g, Deadline: base.Deadline, Approach: core.ApproachLAMPSPS}
		if mc.pf != nil {
			p.Platform = mc.pf
		} else {
			p.Model = m
		}
		p0 := p
		p1, k1 := p, p
		p1.FaultsK, p1.FaultsPolicy = 1, string(mc.policy)
		k1.FaultsK, k1.FaultsPolicy = 2, string(mc.policy)
		if graphhash.Sum(p1) == graphhash.Sum(p0) || graphhash.Sum(k1) == graphhash.Sum(p0) || graphhash.Sum(p1) == graphhash.Sum(k1) {
			rep.violate("%s %s: fault digests not distinct across K", tag, mc.name)
		}
	}
	rep.MetamorphicChecks++
	if r2 == nil {
		return nil
	}
	r := r2

	// Independent plan verification plus the bit-for-bit FT energy walk.
	freq := r.Level.Freq
	if r.Platform != nil {
		freq = r.Point.TimelineFreq
	}
	deadlineCycles := int64(base.Deadline * freq)
	popt := verify.FaultPlanOptions{Platform: mc.pf, Policy: mc.policy, DeadlineCycles: deadlineCycles}
	if err := verify.FaultPlan(g, r.Schedule, r.Backups, popt); err != nil {
		rep.violate("%s %s: %v", tag, mc.name, err)
		return nil
	}
	rep.PlanChecks++
	opts := energy.Options{PS: true}
	var err error
	if mc.pf != nil {
		err = verify.PlatformEnergyFTMatches(r.Schedule, mc.pf, r.Backups, r.Point, base.Deadline, opts, r.Energy)
	} else {
		err = verify.EnergyFTMatches(r.Schedule, m, r.Backups, r.Level, base.Deadline, opts, r.Energy)
	}
	if err != nil {
		rep.violate("%s %s: %v", tag, mc.name, err)
	}
	rep.EnergyChecks++

	// Replay every sampled fault pattern through the simulator and re-derive
	// it with the verifier's independent recovery construction.
	for _, pattern := range faultPatterns(rng, g.NumTasks()) {
		rp, err := sim.ReplayFaults(r.Schedule, r.Backups, pattern, freq, base.Deadline)
		if err != nil {
			rep.violate("%s %s pattern %v: replay: %v", tag, mc.name, pattern, err)
			continue
		}
		mk, err := verify.RecoverySchedule(g, r.Schedule, r.Backups, pattern, deadlineCycles)
		if err != nil {
			rep.violate("%s %s pattern %v: %v", tag, mc.name, pattern, err)
			continue
		}
		if mk != rp.MakespanCycles {
			rep.violate("%s %s pattern %v: simulator makespan %d, verifier %d",
				tag, mc.name, pattern, rp.MakespanCycles, mk)
		}
		if !rp.DeadlineMet {
			rep.violate("%s %s pattern %v: recovery misses the deadline", tag, mc.name, pattern)
		}
		rep.Patterns++
	}

	if mutate && mc.pf == nil {
		outcomes, err := verify.SelfTestFaults(g, r.Schedule, r.Backups, m, r.Level, base.Deadline, opts)
		if err != nil {
			rep.violate("%s: fault mutation self-test baseline: %v", tag, err)
			return nil
		}
		for _, o := range outcomes {
			rep.MutationRuns++
			switch {
			case o.Skipped:
				rep.MutationSkipped++
			case o.Detected:
				rep.MutationDetected++
			default:
				rep.violate("%s: backup corruption %q went undetected by the verifier", tag, o.Class)
			}
		}
	}
	return nil
}

// faultPatterns returns the K=1 and K=2 fault patterns to replay for an
// n-task instance: all singles and all pairs when they fit the per-K bound,
// a deterministic uniform sample otherwise.
func faultPatterns(rng *rand.Rand, n int) [][]int {
	var out [][]int
	if n <= maxPatternsPerK {
		for v := 0; v < n; v++ {
			out = append(out, []int{v})
		}
	} else {
		for _, v := range rng.Perm(n)[:maxPatternsPerK] {
			out = append(out, []int{v})
		}
	}
	if n < 2 {
		return out
	}
	if n*(n-1)/2 <= maxPatternsPerK {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				out = append(out, []int{u, v})
			}
		}
		return out
	}
	seen := make(map[[2]int]bool, maxPatternsPerK)
	for len(seen) < maxPatternsPerK {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		out = append(out, []int{u, v})
	}
	return out
}
