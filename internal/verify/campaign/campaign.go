// Package campaign runs randomized metamorphic verification campaigns over
// the scheduling heuristics: seeded taskgen graphs are pushed through every
// approach with core.Config.SelfCheck on, every produced schedule and
// breakdown is re-checked by the independent verifier, the cross-heuristic
// invariants are asserted per instance, and metamorphic relations —
// relabelling invariance, deadline monotonicity, processor-cap invariance
// of the limits — are asserted across instances. A mutation self-test runs
// periodically to prove the verifier still rejects known corruptions.
//
// The campaign is fully deterministic in its options (graph count, seed,
// sizes, deadline factors), so a clean run in CI is reproducible locally
// with the same flags.
//
// This package sits above internal/core (unlike internal/verify, which core
// imports), which is what lets it drive the engine end to end.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/graphhash"
	"lamps/internal/power"
	"lamps/internal/taskgen"
	"lamps/internal/verify"
)

// Options configures one campaign. The zero value selects the CI defaults.
type Options struct {
	// Graphs is the number of random graphs (0 = 200, the CI short run).
	Graphs int
	// Seed is the base seed; graph i uses Seed + 7919*i (0 = 1).
	Seed int64
	// Sizes are the task counts, rotated per graph
	// (nil = {10, 20, 30, 50}).
	Sizes []int
	// Factors are the deadline factors over the critical path length, as in
	// the paper's evaluation; they are sorted ascending for the monotonicity
	// relations (nil = {1.5, 2, 4, 8}).
	Factors []float64
	// MutateEvery runs the mutation self-test on every k-th graph
	// (0 = 25, negative = never).
	MutateEvery int
	// MaxViolations stops the campaign early once this many violations have
	// been collected (0 = 20).
	MaxViolations int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Graphs == 0 {
		out.Graphs = 200
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if len(out.Sizes) == 0 {
		out.Sizes = []int{10, 20, 30, 50}
	}
	if len(out.Factors) == 0 {
		out.Factors = []float64{1.5, 2, 4, 8}
	}
	out.Factors = append([]float64(nil), out.Factors...)
	sort.Float64s(out.Factors)
	if out.MutateEvery == 0 {
		out.MutateEvery = 25
	}
	if out.MaxViolations == 0 {
		out.MaxViolations = 20
	}
	return out
}

// Report is the campaign's tally. A campaign is clean iff Violations is
// empty and every applicable mutation class was detected (undetected
// classes are themselves violations).
type Report struct {
	Graphs            int // graphs generated and exercised
	Runs              int // heuristic invocations
	ScheduleChecks    int // independent full-schedule verifications
	EnergyChecks      int // bit-for-bit breakdown re-derivations
	CrossChecks       int // cross-heuristic invariant sets
	MetamorphicChecks int // metamorphic relations asserted

	MutationRuns     int // injected corruptions
	MutationDetected int // corruptions the verifier rejected
	MutationSkipped  int // corruption classes not applicable to the instance

	Violations []string
}

// Clean reports whether the campaign found nothing.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Summary renders the one-line tally.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"%d graphs, %d runs: %d schedule checks, %d energy checks, %d cross-heuristic checks, %d metamorphic checks, mutations %d/%d detected (%d skipped), violations: %d",
		r.Graphs, r.Runs, r.ScheduleChecks, r.EnergyChecks, r.CrossChecks, r.MetamorphicChecks,
		r.MutationDetected, r.MutationRuns, r.MutationSkipped, len(r.Violations))
}

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

var approaches = []string{
	core.ApproachLimitMF, core.ApproachLimitSF,
	core.ApproachSS, core.ApproachSSPS,
	core.ApproachLAMPS, core.ApproachLAMPSPS,
}

// Run executes the campaign. It returns a non-nil Report even on error;
// the error is non-nil only for infrastructure failures (context expiry,
// graph generation), never for violations — those are in the Report.
func Run(ctx context.Context, options Options) (*Report, error) {
	opt := options.withDefaults()
	m := power.Default70nm()
	rep := &Report{}
	grains := []taskgen.Grain{taskgen.Coarse, taskgen.Fine}

	for i := 0; i < opt.Graphs; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if len(rep.Violations) >= opt.MaxViolations {
			if opt.Logf != nil {
				opt.Logf("stopping after %d violations", len(rep.Violations))
			}
			break
		}
		size := opt.Sizes[i%len(opt.Sizes)]
		seed := opt.Seed + 7919*int64(i)
		raw, err := taskgen.Member(size, i, seed)
		if err != nil {
			return rep, fmt.Errorf("campaign: graph %d: %w", i, err)
		}
		g := grains[i%len(grains)].Scale(raw)
		rep.Graphs++
		tag := fmt.Sprintf("graph %d (%q, %d tasks, seed %d)", i, g.Name(), g.NumTasks(), seed)

		cplSec := float64(g.CriticalPathLength()) / m.FMax()
		eng := &core.Engine{Config: core.Config{Model: m, SelfCheck: true}}
		perFactor := make([]map[string]*core.Result, len(opt.Factors))
		for fi, f := range opt.Factors {
			deadline := f * cplSec
			eng.Config.Deadline = deadline
			results := make(map[string]*core.Result, len(approaches))
			outs := make([]verify.Outcome, 0, len(approaches))
			for _, ap := range approaches {
				res, err := eng.Run(ctx, ap, g)
				rep.Runs++
				switch {
				case err == nil:
					results[ap] = res
					outs = append(outs, verify.Outcome{Approach: ap, Feasible: true, Energy: res.Energy.Total()})
				case errors.Is(err, core.ErrInfeasible):
					outs = append(outs, verify.Outcome{Approach: ap, Feasible: false})
				case ctx.Err() != nil:
					return rep, ctx.Err()
				default:
					rep.violate("%s factor %g %s: unexpected error: %v", tag, f, ap, err)
				}
			}
			for _, ap := range approaches {
				res := results[ap]
				if res == nil || res.Schedule == nil {
					continue // infeasible, or a limit (no schedule)
				}
				if err := verify.Schedule(g, res.Schedule); err != nil {
					rep.violate("%s factor %g %s: %v", tag, f, ap, err)
				}
				rep.ScheduleChecks++
				if mk := float64(res.Schedule.Makespan) / res.Level.Freq; mk > deadline*(1+1e-12) {
					rep.violate("%s factor %g %s: makespan %gs misses deadline %gs", tag, f, ap, mk, deadline)
				}
				ps := ap == core.ApproachSSPS || ap == core.ApproachLAMPSPS
				if err := verify.EnergyMatches(res.Schedule, m, res.Level, deadline, energy.Options{PS: ps}, res.Energy); err != nil {
					rep.violate("%s factor %g %s: %v", tag, f, ap, err)
				}
				rep.EnergyChecks++
			}
			if err := verify.Results(outs); err != nil {
				rep.violate("%s factor %g: %v", tag, f, err)
			}
			rep.CrossChecks++
			perFactor[fi] = results
		}

		checkDeadlineMonotonicity(rep, tag, m, cplSec, opt.Factors, perFactor)
		if err := checkRelabelInvariance(ctx, rep, tag, m, g, opt.Factors[0], cplSec, perFactor[0]); err != nil {
			return rep, err
		}
		if err := checkLimitsIgnoreProcCap(ctx, rep, tag, m, g, opt.Factors[0], cplSec, perFactor[0]); err != nil {
			return rep, err
		}

		if opt.MutateEvery > 0 && i%opt.MutateEvery == 0 {
			runSelfTest(rep, tag, m, g, opt.Factors, perFactor)
		}
		if opt.Logf != nil && (i+1)%50 == 0 {
			opt.Logf("%d/%d graphs, %d runs, %d violations", i+1, opt.Graphs, rep.Runs, len(rep.Violations))
		}
	}
	return rep, nil
}

// checkDeadlineMonotonicity asserts the relations that provably hold when
// the deadline is loosened, for every consecutive factor pair:
//
//   - feasibility is monotone: an approach feasible at the tighter deadline
//     stays feasible at the looser one;
//   - LIMIT-MF is deadline-independent (bit-identical energies);
//   - LIMIT-SF never increases: its frequency only descends towards the
//     critical level, where energy per cycle is minimal;
//   - the +PS heuristics obey the availability-cost envelope
//     E(D') ≤ E(D) + procs·(D'−D)·P_idle(level): their level sweep at D'
//     still contains the tight winner, whose only extra cost at the looser
//     horizon is keeping its processors available for D'−D longer (sleeping
//     a trailing gap is chosen only when cheaper than idling it).
//
// Deliberately NOT asserted: monotonicity of plain S&S and LAMPS. Both
// stretch to the slowest feasible level, and with a loose enough deadline
// that level sits below the critical frequency where leakage dominates —
// their energy genuinely rises with slacker deadlines. That is the paper's
// own motivation (its Figure 10), not a bug, and a campaign asserting it
// would flag correct behaviour.
func checkDeadlineMonotonicity(rep *Report, tag string, m *power.Model, cplSec float64, factors []float64, perFactor []map[string]*core.Result) {
	for fi := 1; fi < len(factors); fi++ {
		prev, cur := perFactor[fi-1], perFactor[fi]
		d1, d2 := factors[fi-1]*cplSec, factors[fi]*cplSec
		for _, ap := range approaches {
			if prev[ap] != nil && cur[ap] == nil {
				rep.violate("%s %s: feasible at factor %g but infeasible at looser %g",
					tag, ap, factors[fi-1], factors[fi])
			}
		}
		if a, b := prev[core.ApproachLimitMF], cur[core.ApproachLimitMF]; a != nil && b != nil {
			if a.Energy != b.Energy {
				rep.violate("%s LIMIT-MF: deadline-dependent energy: %g J at factor %g, %g J at %g",
					tag, a.Energy.Total(), factors[fi-1], b.Energy.Total(), factors[fi])
			}
		}
		if a, b := prev[core.ApproachLimitSF], cur[core.ApproachLimitSF]; a != nil && b != nil {
			if b.Energy.Total() > a.Energy.Total()*(1+verify.RelTol) {
				rep.violate("%s LIMIT-SF: energy rose from %g J (factor %g) to %g J (factor %g)",
					tag, a.Energy.Total(), factors[fi-1], b.Energy.Total(), factors[fi])
			}
		}
		for _, ap := range []string{core.ApproachSSPS, core.ApproachLAMPSPS} {
			a, b := prev[ap], cur[ap]
			if a == nil || b == nil {
				continue
			}
			bound := a.Energy.Total() + float64(a.NumProcs)*(d2-d1)*m.IdlePower(a.Level)
			if b.Energy.Total() > bound*(1+verify.RelTol) {
				rep.violate("%s %s: energy %g J at factor %g exceeds availability bound %g J from factor %g (%g J, %d procs)",
					tag, ap, b.Energy.Total(), factors[fi], bound, factors[fi-1], a.Energy.Total(), a.NumProcs)
			}
		}
		rep.MetamorphicChecks++
	}
}

// checkRelabelInvariance rebuilds the graph with fresh task labels and a
// fresh name: the canonical problem digest must not move (labels are
// presentation metadata) and a LAMPS+PS run on the relabelled graph must
// reproduce the original result bit for bit.
func checkRelabelInvariance(ctx context.Context, rep *Report, tag string, m *power.Model, g *dag.Graph, factor, cplSec float64, results map[string]*core.Result) error {
	relabelled, err := relabel(g)
	if err != nil {
		return fmt.Errorf("campaign: relabel: %w", err)
	}
	deadline := factor * cplSec
	const ap = core.ApproachLAMPSPS
	p := graphhash.Problem{Graph: g, Model: m, Deadline: deadline, Approach: ap}
	q := p
	q.Graph = relabelled
	if graphhash.Sum(p) != graphhash.Sum(q) {
		rep.violate("%s: relabelling changed the canonical problem digest", tag)
	}
	eng := &core.Engine{Config: core.Config{Model: m, Deadline: deadline, SelfCheck: true}}
	res, err := eng.Run(ctx, ap, relabelled)
	base := results[ap]
	switch {
	case err != nil && errors.Is(err, core.ErrInfeasible):
		if base != nil {
			rep.violate("%s: relabelled graph infeasible where the original was not", tag)
		}
	case err != nil:
		if ctx.Err() != nil {
			return ctx.Err()
		}
		rep.violate("%s: relabelled run failed: %v", tag, err)
	case base == nil:
		rep.violate("%s: relabelled graph feasible where the original was not", tag)
	case res.Energy != base.Energy || res.NumProcs != base.NumProcs || res.Level != base.Level:
		rep.violate("%s: relabelling changed the %s result: %+v vs %+v", tag, ap, res.Energy, base.Energy)
	}
	rep.MetamorphicChecks++
	return nil
}

// checkLimitsIgnoreProcCap asserts the processor-count invariance of the
// limits: LIMIT-SF and LIMIT-MF assume an unbounded machine, so capping
// MaxProcs must not move them by a single bit.
func checkLimitsIgnoreProcCap(ctx context.Context, rep *Report, tag string, m *power.Model, g *dag.Graph, factor, cplSec float64, results map[string]*core.Result) error {
	capped := &core.Engine{Config: core.Config{Model: m, Deadline: factor * cplSec, MaxProcs: 2}}
	for _, ap := range []string{core.ApproachLimitSF, core.ApproachLimitMF} {
		res, err := capped.Run(ctx, ap, g)
		base := results[ap]
		switch {
		case err != nil && errors.Is(err, core.ErrInfeasible):
			if base != nil {
				rep.violate("%s: %s infeasible under MaxProcs=2 but feasible unbounded", tag, ap)
			}
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			rep.violate("%s: %s under MaxProcs=2 failed: %v", tag, ap, err)
		case base == nil:
			rep.violate("%s: %s feasible under MaxProcs=2 but infeasible unbounded", tag, ap)
		case res.Energy != base.Energy || res.Level != base.Level:
			rep.violate("%s: MaxProcs moved %s from %g J to %g J", tag, ap, base.Energy.Total(), res.Energy.Total())
		}
		rep.MetamorphicChecks++
	}
	return nil
}

// runSelfTest injects the known corruption classes into the instance's
// widest-slack LAMPS+PS result and requires the verifier to reject every
// applicable one.
func runSelfTest(rep *Report, tag string, m *power.Model, g *dag.Graph, factors []float64, perFactor []map[string]*core.Result) {
	last := len(factors) - 1
	res := perFactor[last][core.ApproachLAMPSPS]
	if res == nil || res.Schedule == nil {
		return // infeasible even at the widest slack: nothing to corrupt
	}
	cplSec := float64(g.CriticalPathLength()) / m.FMax()
	deadline := factors[last] * cplSec
	outcomes, err := verify.SelfTest(g, res.Schedule, m, res.Level, deadline, energy.Options{PS: true})
	if err != nil {
		rep.violate("%s: mutation self-test baseline: %v", tag, err)
		return
	}
	for _, o := range outcomes {
		rep.MutationRuns++
		switch {
		case o.Skipped:
			rep.MutationSkipped++
		case o.Detected:
			rep.MutationDetected++
		default:
			rep.violate("%s: corruption %q went undetected by the verifier", tag, o.Class)
		}
	}
}

// relabel rebuilds g with the same structure under fresh labels and name.
func relabel(g *dag.Graph) (*dag.Graph, error) {
	b := dag.NewBuilder(g.Name() + "~relabelled")
	for v := 0; v < g.NumTasks(); v++ {
		b.AddLabeledTask(g.Weight(v), fmt.Sprintf("r%d", v))
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.Succs(u) {
			b.AddEdge(u, int(v))
		}
	}
	return b.Build()
}
