package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"lamps/internal/core"
	"lamps/internal/verify"
)

// TestApproachNamesMatchCore pins the deliberate duplication: the verifier
// spells the approach names exactly as core does, or the cross-heuristic
// checks would silently skip everything.
func TestApproachNamesMatchCore(t *testing.T) {
	pairs := [][2]string{
		{verify.ApproachSS, core.ApproachSS},
		{verify.ApproachSSPS, core.ApproachSSPS},
		{verify.ApproachLAMPS, core.ApproachLAMPS},
		{verify.ApproachLAMPSPS, core.ApproachLAMPSPS},
		{verify.ApproachLimitSF, core.ApproachLimitSF},
		{verify.ApproachLimitMF, core.ApproachLimitMF},
	}
	for _, p := range pairs {
		if p[0] != p[1] {
			t.Errorf("verify spells %q, core spells %q", p[0], p[1])
		}
	}
}

// TestCampaignClean runs a reduced but fully featured campaign — every
// approach, two deadline factors, all metamorphic relations, a mutation
// self-test on every second graph — and requires zero violations plus a
// tally proving every layer actually ran.
func TestCampaignClean(t *testing.T) {
	var logs []string
	rep, err := Run(context.Background(), Options{
		Graphs:      12,
		Seed:        17,
		Sizes:       []int{8, 14, 22},
		Factors:     []float64{1.5, 4},
		MutateEvery: 2,
		Logf:        func(f string, a ...any) { logs = append(logs, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("campaign found violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Graphs != 12 {
		t.Fatalf("ran %d graphs, want 12", rep.Graphs)
	}
	if want := 12 * 2 * 6; rep.Runs != want {
		t.Fatalf("ran %d heuristic invocations, want %d", rep.Runs, want)
	}
	if rep.ScheduleChecks == 0 || rep.EnergyChecks == 0 || rep.CrossChecks != 12*2 {
		t.Fatalf("check tally looks wrong: %s", rep.Summary())
	}
	// Per graph: 1 consecutive-factor relation + 1 relabel + 2 limit caps.
	if want := 12 * 4; rep.MetamorphicChecks != want {
		t.Fatalf("%d metamorphic checks, want %d", rep.MetamorphicChecks, want)
	}
	if rep.MutationRuns == 0 || rep.MutationDetected == 0 {
		t.Fatalf("mutation self-test never ran: %s", rep.Summary())
	}
	if rep.MutationDetected+rep.MutationSkipped != rep.MutationRuns {
		t.Fatalf("mutation tally inconsistent: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "violations: 0") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

// TestCampaignHonoursContext: an expired context aborts between (or within)
// graphs with the context's error.
func TestCampaignHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{Graphs: 4}); err != context.Canceled {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	time.Sleep(2 * time.Millisecond)
	if _, err := Run(ctx2, Options{Graphs: 1000}); err == nil {
		t.Fatal("expired deadline ignored")
	}
}
