package campaign

import (
	"context"
	"strings"
	"testing"
)

// TestFaultsCampaignClean runs a reduced but fully featured fault-injection
// campaign — all three machines, both K values, pattern replay, digest
// relations, a mutation pass on every second graph — and requires zero
// violations plus a tally proving every layer actually ran.
func TestFaultsCampaignClean(t *testing.T) {
	rep, err := RunFaults(context.Background(), Options{
		Graphs:      8,
		Seed:        17,
		Sizes:       []int{6, 10, 16},
		Factors:     []float64{3, 6},
		MutateEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fault campaign found violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Graphs != 8 {
		t.Fatalf("ran %d graphs, want 8", rep.Graphs)
	}
	// 3 machines × K∈{1,2} per graph; generous factors keep recovery feasible.
	if want := 8 * 3 * 2; rep.Runs != want {
		t.Fatalf("ran %d FT invocations, want %d: %s", rep.Runs, want, rep.Summary())
	}
	if rep.Infeasible != 0 {
		t.Fatalf("%d infeasible cases at factors 3 and 6: %s", rep.Infeasible, rep.Summary())
	}
	if rep.Patterns == 0 || rep.PlanChecks != 8*3 || rep.EnergyChecks != 8*3 {
		t.Fatalf("check tally looks wrong: %s", rep.Summary())
	}
	if want := 8 * 3; rep.MetamorphicChecks != want {
		t.Fatalf("%d metamorphic checks, want %d", rep.MetamorphicChecks, want)
	}
	if rep.MutationRuns == 0 || rep.MutationDetected == 0 {
		t.Fatalf("fault mutation self-test never ran: %s", rep.Summary())
	}
	if rep.MutationDetected+rep.MutationSkipped != rep.MutationRuns {
		t.Fatalf("mutation tally inconsistent: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "violations: 0") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

// TestFaultsCampaignCountsInfeasible: a deadline factor of 1 leaves no slack
// for recovery on most instances, and the campaign must tally those cases
// as infeasible rather than flagging them.
func TestFaultsCampaignCountsInfeasible(t *testing.T) {
	rep, err := RunFaults(context.Background(), Options{
		Graphs:      2,
		Seed:        5,
		Sizes:       []int{10},
		Factors:     []float64{1},
		MutateEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("violations on infeasible-deadline instances:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Infeasible == 0 {
		t.Fatalf("no case counted infeasible at factor 1: %s", rep.Summary())
	}
}

// TestFaultsCampaignHonoursContext: an expired context aborts the campaign
// with the context's error.
func TestFaultsCampaignHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFaults(ctx, Options{Graphs: 4}); err != context.Canceled {
		t.Fatalf("cancelled fault campaign returned %v", err)
	}
}
