package verify

import (
	"fmt"
	"sort"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// SelfTestResult reports one corruption class of the verifier's mutation
// self-test: whether the class applied to the given schedule at all, and
// whether the verifier rejected the corrupted artefact.
type SelfTestResult struct {
	Class    string
	Skipped  bool  // corruption not applicable to this schedule's shape
	Detected bool  // the verifier rejected the corrupted artefact
	Err      error // the violation that detected it (nil when undetected)
}

// SelfTest answers the "who verifies the verifier" question by injecting
// known corruptions — swapped starts, an overlap nudge, a dropped edge, an
// off-by-one energy gap, and friends — into copies of a known-good
// (graph, schedule, breakdown) triple and checking that the verifier
// rejects every one of them. A verifier that accepts a corrupted artefact
// is itself broken, so campaigns treat any applicable-but-undetected class
// as a violation.
//
// The pristine inputs are verified first; an error there means the inputs
// were not a valid baseline and no mutation results are returned.
func SelfTest(g *dag.Graph, s *sched.Schedule, m *power.Model, lvl power.Level, deadlineSec float64, opts energy.Options) ([]SelfTestResult, error) {
	if err := Schedule(g, s); err != nil {
		return nil, fmt.Errorf("verify: self-test baseline schedule invalid: %w", err)
	}
	base, err := Energy(s, m, lvl, deadlineSec, opts)
	if err != nil {
		return nil, fmt.Errorf("verify: self-test baseline energy invalid: %w", err)
	}

	type mutation struct {
		class string
		run   func() (skipped bool, verr error)
	}
	muts := []mutation{
		{"swapped-starts", func() (bool, error) {
			p := procWithTwoTasks(s)
			if p < 0 {
				return true, nil
			}
			tasks := tasksInStartOrder(s, p)
			a, b := tasks[0], tasks[1]
			c := cloneSchedule(s)
			c.Start[a], c.Start[b] = s.Start[b], s.Start[a]
			c.Finish[a], c.Finish[b] = s.Finish[b], s.Finish[a]
			return false, Schedule(g, c)
		}},
		{"overlap", func() (bool, error) {
			// Nudge a task one cycle earlier without changing its duration:
			// into its on-processor predecessor if some pair is back to back,
			// otherwise a start-at-zero task goes to -1.
			c := cloneSchedule(s)
			for p := 0; p < s.NumProcs; p++ {
				tasks := tasksInStartOrder(s, p)
				for i := 1; i < len(tasks); i++ {
					if s.Start[tasks[i]] == s.Finish[tasks[i-1]] {
						c.Start[tasks[i]]--
						c.Finish[tasks[i]]--
						return false, Schedule(g, c)
					}
				}
			}
			for v := range s.Start {
				if s.Start[v] == 0 {
					c.Start[v]--
					c.Finish[v]--
					return false, Schedule(g, c)
				}
			}
			return true, nil
		}},
		{"dropped-edge", func() (bool, error) {
			// Pretend the schedule was built against a graph with one more
			// edge u->v that it violates (Start[v] < Finish[u]): the verifier
			// must flag the precedence miss, i.e. catch a scheduler that
			// dropped an edge. The extra edge must keep the graph acyclic.
			u, v := droppableEdge(g, s)
			if u < 0 {
				return true, nil
			}
			augmented, err := withExtraEdge(g, u, v)
			if err != nil {
				return false, fmt.Errorf("verify: self-test cannot augment graph: %w", err)
			}
			verr := ScheduleWithin(augmented, s, ScheduleOptions{})
			return false, verr
		}},
		{"wrong-proc", func() (bool, error) {
			if s.NumProcs < 2 {
				return true, nil
			}
			c := cloneSchedule(s)
			c.Proc[0] = (c.Proc[0] + 1) % int32(s.NumProcs)
			return false, Schedule(g, c)
		}},
		{"duration", func() (bool, error) {
			c := cloneSchedule(s)
			c.Finish[0]--
			return false, Schedule(g, c)
		}},
		{"makespan-off-by-one", func() (bool, error) {
			c := cloneSchedule(s)
			c.Makespan++
			return false, Schedule(g, c)
		}},
		{"release", func() (bool, error) {
			rel := make([]int64, len(s.Start))
			rel[0] = s.Start[0] + 1
			return false, ScheduleWithin(g, s, ScheduleOptions{Release: rel})
		}},
		{"deadline", func() (bool, error) {
			return false, ScheduleWithin(g, s, ScheduleOptions{DeadlineCycles: s.Makespan - 1})
		}},
		{"gap-off-by-one", func() (bool, error) {
			// One idle cycle appears out of nowhere: the breakdown's idle
			// aggregates shift by exactly one cycle's worth.
			bad := base
			bad.IdleTime += 1 / lvl.Freq
			bad.Idle = bad.IdleTime * m.IdlePower(lvl)
			return false, EnergyMatches(s, m, lvl, deadlineSec, opts, bad)
		}},
		{"shutdown-miscount", func() (bool, error) {
			bad := base
			bad.Shutdowns++
			bad.Overhead = float64(bad.Shutdowns) * m.EOverhead
			return false, EnergyMatches(s, m, lvl, deadlineSec, opts, bad)
		}},
	}

	results := make([]SelfTestResult, 0, len(muts))
	for _, mu := range muts {
		skipped, verr := mu.run()
		results = append(results, SelfTestResult{
			Class:    mu.class,
			Skipped:  skipped,
			Detected: !skipped && verr != nil,
			Err:      verr,
		})
	}
	return results, nil
}

// cloneSchedule copies the mutable placement state of s. The unexported
// per-processor lists are shared with the original and never written; a
// mutation that makes them stale relative to the copied arrays is exactly
// the dispatch-consistency corruption the verifier must catch.
func cloneSchedule(s *sched.Schedule) *sched.Schedule {
	c := *s
	c.Proc = append([]int32(nil), s.Proc...)
	c.Start = append([]int64(nil), s.Start...)
	c.Finish = append([]int64(nil), s.Finish...)
	return &c
}

// procWithTwoTasks returns a processor running at least two tasks, or -1.
func procWithTwoTasks(s *sched.Schedule) int {
	counts := make([]int, s.NumProcs)
	for _, p := range s.Proc {
		counts[p]++
		if counts[p] >= 2 {
			return int(p)
		}
	}
	return -1
}

// tasksInStartOrder reconstructs processor p's tasks from the raw arrays.
func tasksInStartOrder(s *sched.Schedule, p int) []int32 {
	var tasks []int32
	for v := range s.Proc {
		if int(s.Proc[v]) == p {
			tasks = append(tasks, int32(v))
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return s.Start[tasks[i]] < s.Start[tasks[j]] })
	return tasks
}

// droppableEdge finds a task pair (u, v) such that adding the edge u->v
// keeps g acyclic but is violated by s, i.e. Start[v] < Finish[u]. Returns
// (-1, -1) when the graph's transitive order leaves no such pair (then
// every candidate edge is either respected by the schedule or would create
// a cycle).
func droppableEdge(g *dag.Graph, s *sched.Schedule) (int, int) {
	n := g.NumTasks()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || s.Start[v] >= s.Finish[u] {
				continue
			}
			if !reaches(g, v, u) {
				return u, v
			}
		}
	}
	return -1, -1
}

// reaches reports whether a path from src to dst exists in g.
func reaches(g *dag.Graph, src, dst int) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, g.NumTasks())
	stack := []int32{int32(src)}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs(int(u)) {
			if int(v) == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// withExtraEdge rebuilds g with the additional edge u->v.
func withExtraEdge(g *dag.Graph, u, v int) (*dag.Graph, error) {
	b := dag.NewBuilder(g.Name() + "+edge")
	for t := 0; t < g.NumTasks(); t++ {
		b.AddLabeledTask(g.Weight(t), g.Label(t))
	}
	for s := 0; s < g.NumTasks(); s++ {
		for _, d := range g.Succs(s) {
			b.AddEdge(s, int(d))
		}
	}
	b.AddEdge(u, v)
	return b.Build()
}
