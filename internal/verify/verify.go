// Package verify is an independent, first-principles checker for the
// schedules and energy figures the rest of the system produces. It is
// deliberately naive: every invariant is re-derived directly from the
// definitions in de Langen & Juurlink — precedence from the task graph's
// edges, exclusivity from a per-processor sort of the raw Proc/Start/Finish
// arrays, energy from a linear walk over every gap — and none of it shares
// code with the optimised kernels in internal/sched and internal/energy
// (no Schedule.Validate, no Schedule.Gaps, no GapProfile). If a kernel
// optimisation and this package agree, the agreement is evidence; if they
// disagree, one of them is wrong and the Violation says where.
//
// The package is imported by internal/core (Config.SelfCheck) and must
// therefore not import it; cross-heuristic invariants are expressed over
// the neutral Outcome type instead of core.Result.
package verify

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lamps/internal/dag"
	"lamps/internal/sched"
)

// ErrViolation is the sentinel matched by errors.Is for every violation
// this package reports, whatever the check that raised it.
var ErrViolation = errors.New("verify: violation")

// Check names identify the invariant class a Violation belongs to.
const (
	CheckShape      = "shape"          // slice lengths, processor count, nil inputs
	CheckPlacement  = "placement"      // processor range, negative start, duration != weight
	CheckPrecedence = "precedence"     // an edge's successor starts before its predecessor finishes
	CheckOverlap    = "overlap"        // two tasks share a processor at the same time
	CheckDispatch   = "dispatch-order" // per-processor task lists disagree with Proc/Start/Finish
	CheckRelease    = "release"        // a task starts before its release time
	CheckMakespan   = "makespan"       // recorded makespan != max finish time
	CheckDeadline   = "deadline"       // makespan exceeds the deadline
	CheckEnergy     = "energy"         // recomputed Breakdown differs from the reported one
	CheckResult     = "result"         // a cross-heuristic invariant is broken
)

// Violation describes one broken invariant, with enough context to
// reproduce it: the check class, what exactly disagreed, and a compact dump
// of the problem and the offending placements. It matches ErrViolation
// under errors.Is.
type Violation struct {
	Check  string // one of the Check* constants
	Detail string // what disagreed, with the numbers
	Repro  string // minimal repro dump: problem summary + offending placements
}

func (v *Violation) Error() string {
	if v.Repro == "" {
		return fmt.Sprintf("verify: %s: %s", v.Check, v.Detail)
	}
	return fmt.Sprintf("verify: %s: %s\n%s", v.Check, v.Detail, v.Repro)
}

// Is makes every Violation match the package sentinel.
func (v *Violation) Is(target error) bool { return target == ErrViolation }

// violationf builds a Violation with a repro dump covering the given tasks.
func violationf(check string, g *dag.Graph, s *sched.Schedule, tasks []int32, format string, args ...any) *Violation {
	return &Violation{
		Check:  check,
		Detail: fmt.Sprintf(format, args...),
		Repro:  dump(g, s, tasks),
	}
}

// dump renders the minimal repro: one line for the problem, one for the
// schedule, and one per offending task (capped — a violation needs at most
// a handful of placements to be reproduced).
func dump(g *dag.Graph, s *sched.Schedule, tasks []int32) string {
	var b strings.Builder
	if g != nil {
		fmt.Fprintf(&b, "  graph %q: %d tasks, %d edges, work=%d, cpl=%d\n",
			g.Name(), g.NumTasks(), g.NumEdges(), g.TotalWork(), g.CriticalPathLength())
	}
	if s != nil {
		fmt.Fprintf(&b, "  schedule: %d procs, makespan=%d cycles\n", s.NumProcs, s.Makespan)
	}
	const maxTasks = 8
	for i, v := range tasks {
		if i == maxTasks {
			fmt.Fprintf(&b, "  ... %d more tasks\n", len(tasks)-maxTasks)
			break
		}
		if s == nil || int(v) >= len(s.Proc) || int(v) >= len(s.Start) || int(v) >= len(s.Finish) {
			fmt.Fprintf(&b, "  task %d: <no placement>\n", v)
			continue
		}
		w := int64(-1)
		if g != nil && int(v) < g.NumTasks() {
			w = g.Weight(int(v))
		}
		fmt.Fprintf(&b, "  task %d: proc %d, [%d,%d) cycles, weight %d\n",
			v, s.Proc[v], s.Start[v], s.Finish[v], w)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ScheduleOptions extends Schedule with the optional constraints a plain
// task graph does not carry.
type ScheduleOptions struct {
	// Release, when non-nil, gives per-task release times in cycles; no task
	// may start earlier. Must have one entry per task.
	Release []int64
	// DeadlineCycles, when positive, is the latest admissible finish time of
	// the whole schedule, in cycles at the schedule's frequency.
	DeadlineCycles int64

	// expectDur, when non-nil, overrides the expected duration of task v on
	// its assigned processor (the raw weight by default). The platform
	// checks use it for class-scaled slot lengths; it is unexported because
	// callers outside the package go through PlatformScheduleWithin.
	expectDur func(v, proc int) int64
}

// Schedule checks s against g from first principles: placements, durations,
// precedence, per-processor exclusivity, dispatch-list consistency and the
// recorded makespan. It returns nil or the first *Violation found.
func Schedule(g *dag.Graph, s *sched.Schedule) error {
	return ScheduleWithin(g, s, ScheduleOptions{})
}

// ScheduleWithin is Schedule plus release-time and deadline checks.
//
// Every invariant is re-derived from the raw Proc/Start/Finish arrays and
// the graph's edges; the schedule's own per-processor lists are only read
// to be cross-checked, never trusted.
func ScheduleWithin(g *dag.Graph, s *sched.Schedule, opt ScheduleOptions) error {
	if g == nil || s == nil {
		return &Violation{Check: CheckShape, Detail: "nil graph or schedule"}
	}
	n := g.NumTasks()
	if len(s.Proc) != n || len(s.Start) != n || len(s.Finish) != n {
		return violationf(CheckShape, g, s, nil,
			"placement arrays have lengths %d/%d/%d for %d tasks",
			len(s.Proc), len(s.Start), len(s.Finish), n)
	}
	if s.NumProcs < 1 {
		return violationf(CheckShape, g, s, nil, "NumProcs = %d", s.NumProcs)
	}
	if opt.Release != nil && len(opt.Release) != n {
		return violationf(CheckShape, g, s, nil,
			"release slice has %d entries for %d tasks", len(opt.Release), n)
	}

	// Per-task placement: processor range, non-negative start, duration
	// exactly the task's weight, release respected.
	for v := 0; v < n; v++ {
		if p := int(s.Proc[v]); p < 0 || p >= s.NumProcs {
			return violationf(CheckPlacement, g, s, []int32{int32(v)},
				"task %d on processor %d of %d", v, p, s.NumProcs)
		}
		if s.Start[v] < 0 {
			return violationf(CheckPlacement, g, s, []int32{int32(v)},
				"task %d starts at %d", v, s.Start[v])
		}
		w := g.Weight(v)
		if opt.expectDur != nil {
			w = opt.expectDur(v, int(s.Proc[v]))
		}
		if d := s.Finish[v] - s.Start[v]; d != w {
			return violationf(CheckPlacement, g, s, []int32{int32(v)},
				"task %d runs for %d cycles, weight is %d", v, d, w)
		}
		if opt.Release != nil && s.Start[v] < opt.Release[v] {
			return violationf(CheckRelease, g, s, []int32{int32(v)},
				"task %d starts at %d before its release %d", v, s.Start[v], opt.Release[v])
		}
	}

	// Precedence: every edge's successor starts no earlier than its
	// predecessor finishes.
	for u := 0; u < n; u++ {
		for _, v := range g.Succs(u) {
			if s.Start[v] < s.Finish[u] {
				return violationf(CheckPrecedence, g, s, []int32{int32(u), v},
					"edge %d->%d: successor starts at %d, predecessor finishes at %d",
					u, v, s.Start[v], s.Finish[u])
			}
		}
	}

	// Exclusivity: bucket tasks by processor from the raw Proc array, sort
	// each bucket by start time, and require consecutive intervals not to
	// overlap. This reconstruction is independent of the schedule's own
	// per-processor lists.
	byProc := make([][]int32, s.NumProcs)
	for v := 0; v < n; v++ {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], int32(v))
	}
	for p, tasks := range byProc {
		sort.Slice(tasks, func(i, j int) bool {
			if s.Start[tasks[i]] != s.Start[tasks[j]] {
				return s.Start[tasks[i]] < s.Start[tasks[j]]
			}
			return tasks[i] < tasks[j]
		})
		for i := 1; i < len(tasks); i++ {
			prev, cur := tasks[i-1], tasks[i]
			if s.Start[cur] < s.Finish[prev] {
				return violationf(CheckOverlap, g, s, []int32{prev, cur},
					"tasks %d and %d overlap on processor %d", prev, cur, p)
			}
		}
	}

	// Dispatch lists: the schedule's own per-processor lists must agree with
	// the independent reconstruction — same coverage, same processor, starts
	// in dispatch order. A malformed schedule may carry lists that do not
	// even index correctly; treat a panic here as a shape violation rather
	// than crashing the verifier.
	if verr := checkDispatchLists(g, s, byProc); verr != nil {
		return verr
	}

	// Makespan: exactly the latest finish time.
	var maxFinish int64
	latest := int32(0)
	for v := 0; v < n; v++ {
		if s.Finish[v] > maxFinish {
			maxFinish = s.Finish[v]
			latest = int32(v)
		}
	}
	if s.Makespan != maxFinish {
		return violationf(CheckMakespan, g, s, []int32{latest},
			"recorded makespan %d, latest finish %d (task %d)", s.Makespan, maxFinish, latest)
	}

	if opt.DeadlineCycles > 0 && s.Makespan > opt.DeadlineCycles {
		return violationf(CheckDeadline, g, s, []int32{latest},
			"makespan %d exceeds deadline %d cycles", s.Makespan, opt.DeadlineCycles)
	}
	return nil
}

// checkDispatchLists cross-checks s.TasksOn against the independently
// reconstructed buckets.
func checkDispatchLists(g *dag.Graph, s *sched.Schedule, byProc [][]int32) (verr error) {
	defer func() {
		if r := recover(); r != nil {
			verr = violationf(CheckShape, g, s, nil, "per-processor task lists are malformed: %v", r)
		}
	}()
	n := g.NumTasks()
	seen := make([]bool, n)
	for p := 0; p < s.NumProcs; p++ {
		list := s.TasksOn(p)
		if len(list) != len(byProc[p]) {
			return violationf(CheckDispatch, g, s, list,
				"processor %d lists %d tasks, Proc array assigns it %d", p, len(list), len(byProc[p]))
		}
		for i, v := range list {
			if int(v) < 0 || int(v) >= n {
				return violationf(CheckDispatch, g, s, nil,
					"processor %d lists task %d of %d", p, v, n)
			}
			if seen[v] {
				return violationf(CheckDispatch, g, s, []int32{v},
					"task %d listed twice", v)
			}
			seen[v] = true
			if int(s.Proc[v]) != p {
				return violationf(CheckDispatch, g, s, []int32{v},
					"processor %d lists task %d, Proc says %d", p, v, s.Proc[v])
			}
			if i > 0 && s.Start[v] < s.Start[list[i-1]] {
				return violationf(CheckDispatch, g, s, []int32{list[i-1], v},
					"processor %d dispatch order is not by start time (%d before %d)", p, list[i-1], v)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return violationf(CheckDispatch, g, s, []int32{int32(v)},
				"task %d missing from every processor's list", v)
		}
	}
	return nil
}
