package verify

import (
	"errors"
	"strings"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
)

// schedule builds an LS-EDF schedule for testing, failing the test on error.
func schedule(t *testing.T, g *dag.Graph, nprocs int) *sched.Schedule {
	t.Helper()
	s, err := sched.ListSchedule(g, nprocs, sched.EDFPriorities(g, 0))
	if err != nil {
		t.Fatalf("ListSchedule(%q, %d): %v", g.Name(), nprocs, err)
	}
	return s
}

// member returns one suite graph, failing the test on error.
func member(t *testing.T, size, i int, seed int64) *dag.Graph {
	t.Helper()
	g, err := taskgen.Member(size, i, seed)
	if err != nil {
		t.Fatalf("taskgen.Member(%d, %d, %d): %v", size, i, seed, err)
	}
	return g
}

// TestScheduleAcceptsListSchedules: every schedule the real scheduler
// produces must pass the independent checks, across graph families, sizes
// and processor counts, with and without release times.
func TestScheduleAcceptsListSchedules(t *testing.T) {
	for i := 0; i < 24; i++ {
		g := member(t, 6+3*i, i, int64(100+i))
		for _, nprocs := range []int{1, 2, 3, g.MaxWidth()} {
			s := schedule(t, g, nprocs)
			if err := Schedule(g, s); err != nil {
				t.Fatalf("graph %d, %d procs: valid schedule rejected: %v", i, nprocs, err)
			}
			if err := ScheduleWithin(g, s, ScheduleOptions{DeadlineCycles: s.Makespan}); err != nil {
				t.Fatalf("graph %d, %d procs: deadline == makespan rejected: %v", i, nprocs, err)
			}
			rel := make([]int64, g.NumTasks())
			rs, err := sched.ListScheduleReleases(g, nprocs, sched.EDFPriorities(g, 0), rel)
			if err != nil {
				t.Fatalf("ListScheduleReleases: %v", err)
			}
			if err := ScheduleWithin(g, rs, ScheduleOptions{Release: rel}); err != nil {
				t.Fatalf("graph %d, %d procs: release schedule rejected: %v", i, nprocs, err)
			}
		}
	}
}

// TestViolationMatchesSentinel: every violation must match ErrViolation
// under errors.Is and carry a repro dump naming the offender.
func TestViolationMatchesSentinel(t *testing.T) {
	g := member(t, 12, 0, 5)
	s := schedule(t, g, 2)
	c := cloneSchedule(s)
	c.Makespan++
	err := Schedule(g, c)
	if err == nil {
		t.Fatal("corrupted makespan accepted")
	}
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("violation does not match ErrViolation: %v", err)
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("error is not a *Violation: %v", err)
	}
	if v.Check != CheckMakespan {
		t.Fatalf("check = %q, want %q", v.Check, CheckMakespan)
	}
	if !strings.Contains(err.Error(), "makespan") || !strings.Contains(err.Error(), "schedule:") {
		t.Fatalf("error lacks detail or repro dump:\n%v", err)
	}
}

// TestScheduleRejectsShapeErrors covers the structural guards: mismatched
// array lengths, a broken processor count and malformed dispatch lists
// (here: a zero-value schedule whose lists cannot even be indexed).
func TestScheduleRejectsShapeErrors(t *testing.T) {
	g := member(t, 10, 1, 6)
	s := schedule(t, g, 2)

	short := cloneSchedule(s)
	short.Start = short.Start[:len(short.Start)-1]
	if err := Schedule(g, short); err == nil {
		t.Fatal("short Start array accepted")
	}

	noProcs := cloneSchedule(s)
	noProcs.NumProcs = 0
	if err := Schedule(g, noProcs); err == nil {
		t.Fatal("NumProcs = 0 accepted")
	}

	if err := Schedule(g, &sched.Schedule{
		Graph:    g,
		NumProcs: 1,
		Proc:     make([]int32, g.NumTasks()),
		Start:    make([]int64, g.NumTasks()),
		Finish:   make([]int64, g.NumTasks()),
	}); err == nil {
		t.Fatal("zero-value placement with no dispatch lists accepted")
	}

	if err := Schedule(nil, nil); !errors.Is(err, ErrViolation) {
		t.Fatalf("nil inputs: %v", err)
	}
}

// TestEnergyParity: the naive linear walk must agree bit for bit with
// energy.Evaluate — every Breakdown field including shutdown counts — on
// random schedules, at every operating point, PS on and off, IgnoreIdle,
// and deadlines from exact fit to 8x slack. This is the verifier's licence
// to call any future mismatch a violation.
func TestEnergyParity(t *testing.T) {
	m := power.Default70nm()
	for i := 0; i < 12; i++ {
		g := member(t, 8+4*i, i, int64(3000+i))
		for _, nprocs := range []int{1, 3, g.MaxWidth()} {
			s := schedule(t, g, nprocs)
			for _, lvl := range m.Levels() {
				base := float64(s.Makespan) / lvl.Freq
				for _, slack := range []float64{1, 1.0001, 2, 8} {
					deadline := base * slack
					for _, opts := range []energy.Options{{}, {PS: true}, {IgnoreIdle: true}} {
						got, errGot := Energy(s, m, lvl, deadline, opts)
						want, errWant := energy.Evaluate(s, m, lvl, deadline, opts)
						if (errGot == nil) != (errWant == nil) {
							t.Fatalf("graph %d procs %d lvl %d slack %g: err %v vs kernel %v",
								i, nprocs, lvl.Index, slack, errGot, errWant)
						}
						if errGot != nil {
							continue
						}
						if got != want {
							t.Fatalf("graph %d procs %d lvl %d slack %g opts %+v:\n  verify %+v\n  kernel %+v",
								i, nprocs, lvl.Index, slack, opts, got, want)
						}
						if err := EnergyMatches(s, m, lvl, deadline, opts, want); err != nil {
							t.Fatalf("EnergyMatches rejects the kernel's own result: %v", err)
						}
					}
				}
			}
		}
	}
}

// TestEnergyRejectsMissedDeadline: a deadline below the makespan must be
// rejected by the walk exactly as by the kernel, matching energy.ErrDeadline.
func TestEnergyRejectsMissedDeadline(t *testing.T) {
	m := power.Default70nm()
	g := member(t, 14, 2, 9)
	s := schedule(t, g, 2)
	lvl := m.Levels()[0]
	_, err := Energy(s, m, lvl, float64(s.Makespan)/lvl.Freq*0.5, energy.Options{})
	if !errors.Is(err, energy.ErrDeadline) {
		t.Fatalf("missed deadline: %v", err)
	}
}

// TestResults exercises the cross-heuristic invariants on hand-crafted
// outcomes: a consistent set passes, and each class of breakage is caught.
func TestResults(t *testing.T) {
	good := []Outcome{
		{ApproachLimitMF, true, 1.0},
		{ApproachLimitSF, true, 1.2},
		{ApproachLAMPSPS, true, 1.3},
		{ApproachLAMPS, true, 1.4},
		{ApproachSSPS, true, 1.5},
		{ApproachSS, true, 2.0},
	}
	if err := Results(good); err != nil {
		t.Fatalf("consistent outcomes rejected: %v", err)
	}
	// Ulp-level ties must pass: the comparisons carry RelTol.
	tied := []Outcome{
		{ApproachSS, true, 1.0 + 1e-13},
		{ApproachSSPS, true, 1.0},
		{ApproachLAMPS, true, 1.0 + 1e-13},
		{ApproachLAMPSPS, true, 1.0},
	}
	if err := Results(tied); err != nil {
		t.Fatalf("ulp-level ties rejected: %v", err)
	}
	// Missing approaches skip their checks.
	if err := Results([]Outcome{{ApproachSS, true, 1}}); err != nil {
		t.Fatalf("lone outcome rejected: %v", err)
	}

	bad := []struct {
		name string
		outs []Outcome
	}{
		{"limit above heuristic", []Outcome{{ApproachLimitSF, true, 3}, {ApproachLAMPSPS, true, 1}}},
		{"MF above SF", []Outcome{{ApproachLimitMF, true, 2}, {ApproachLimitSF, true, 1}}},
		{"+PS worse than base", []Outcome{{ApproachSS, true, 1}, {ApproachSSPS, true, 1.5}}},
		{"LAMPS worse than S&S", []Outcome{{ApproachSS, true, 1}, {ApproachLAMPS, true, 1.5}}},
		{"LAMPS feasible, S&S not", []Outcome{{ApproachLAMPS, true, 1}, {ApproachSS, false, 0}}},
		{"base feasible, +PS not", []Outcome{{ApproachSS, true, 1}, {ApproachSSPS, false, 0}}},
	}
	for _, tc := range bad {
		err := Results(tc.outs)
		if !errors.Is(err, ErrViolation) {
			t.Fatalf("%s: not flagged (err = %v)", tc.name, err)
		}
	}
}

// parallelGraph is a fork-join graph with enough width that every mutation
// class of the self-test is applicable on two processors.
func parallelGraph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("selftest-forkjoin")
	src := b.AddTask(40)
	mids := make([]int, 5)
	for i := range mids {
		mids[i] = b.AddTask(int64(60 + 10*i))
		b.AddEdge(src, mids[i])
	}
	sink := b.AddTask(50)
	for _, m := range mids {
		b.AddEdge(m, sink)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSelfTestDetectsEveryClass: on a schedule where every corruption class
// is applicable, every class must be detected, and each detection must be a
// Violation.
func TestSelfTestDetectsEveryClass(t *testing.T) {
	g := parallelGraph(t)
	s := schedule(t, g, 2)
	m := power.Default70nm()
	lvl := m.CriticalLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 2
	for _, opts := range []energy.Options{{}, {PS: true}} {
		results, err := SelfTest(g, s, m, lvl, deadline, opts)
		if err != nil {
			t.Fatalf("PS=%v: %v", opts.PS, err)
		}
		if len(results) < 8 {
			t.Fatalf("only %d mutation classes", len(results))
		}
		for _, r := range results {
			if r.Skipped {
				t.Errorf("PS=%v: class %q not applicable on a fork-join two-processor schedule", opts.PS, r.Class)
				continue
			}
			if !r.Detected {
				t.Errorf("PS=%v: corruption %q went undetected", opts.PS, r.Class)
				continue
			}
			if !errors.Is(r.Err, ErrViolation) {
				t.Errorf("PS=%v: class %q detected with a non-Violation error: %v", opts.PS, r.Class, r.Err)
			}
		}
	}
}

// TestSelfTestRejectsBadBaseline: handing the self-test an already corrupt
// schedule must fail fast instead of reporting mutation results.
func TestSelfTestRejectsBadBaseline(t *testing.T) {
	g := parallelGraph(t)
	s := schedule(t, g, 2)
	c := cloneSchedule(s)
	c.Start[0]++
	m := power.Default70nm()
	lvl := m.CriticalLevel()
	if _, err := SelfTest(g, c, m, lvl, float64(s.Makespan)/lvl.Freq*2, energy.Options{}); !errors.Is(err, ErrViolation) {
		t.Fatalf("corrupt baseline: %v", err)
	}
}
