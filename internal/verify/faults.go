package verify

import (
	"fmt"
	"sort"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// Check names for the fault-tolerance invariants.
const (
	// CheckBackup covers the static backup plan: every task has a backup on
	// another processor, slots start after the primary and after every
	// predecessor's backup, nothing overlaps, and the recorded recovery
	// makespan is exact.
	CheckBackup = "backup"
	// CheckRecovery covers one concrete fault pattern: the re-derived
	// recovery execution is legal and meets its deadline.
	CheckRecovery = "recovery"
)

// FaultPlanOptions parameterises FaultPlan.
type FaultPlanOptions struct {
	// Platform, when non-nil, supplies per-class slot scaling (a backup on
	// processor p lasts ScaledWeight(class(p), weight) timeline cycles) and
	// the reference class for the policy check. Nil means identical
	// processors.
	Platform *power.Platform
	// Policy, when sched.PrimaryHPBackupLP on a heterogeneous platform,
	// additionally requires each backup to avoid the reference class
	// whenever a non-reference processor other than the primary's exists.
	Policy sched.FaultPolicy
	// DeadlineCycles, when positive, is the latest admissible recovery
	// finish in timeline cycles.
	DeadlineCycles int64
}

// FaultPlan checks a backup plan against its schedule from first
// principles, sharing no code with sched.PlanBackups: placement ranges and
// durations per task, the two start lower bounds that make time-triggered
// recovery correct for any fault set (a backup starts no earlier than its
// primary's finish — the detection point — and no earlier than every
// predecessor's backup finish), global slot exclusivity over the merged
// primary+backup timeline of every processor, the placement policy, and
// the recorded recovery makespan.
func FaultPlan(g *dag.Graph, s *sched.Schedule, plan *sched.BackupPlan, opt FaultPlanOptions) error {
	if g == nil || s == nil || plan == nil {
		return &Violation{Check: CheckShape, Detail: "nil graph, schedule or backup plan"}
	}
	n := g.NumTasks()
	if len(plan.Proc) != n || len(plan.Start) != n || len(plan.Finish) != n {
		return violationf(CheckShape, g, s, nil,
			"backup arrays have lengths %d/%d/%d for %d tasks",
			len(plan.Proc), len(plan.Start), len(plan.Finish), n)
	}
	if s.NumProcs < 2 {
		return violationf(CheckBackup, g, s, nil,
			"backups need a second processor, schedule has %d", s.NumProcs)
	}

	pf := opt.Platform
	ref := -1
	if pf != nil {
		ref = pf.RefClass()
	}
	restricted := opt.Policy == sched.PrimaryHPBackupLP && pf != nil && !pf.IsHomogeneous()

	var maxFinish int64
	for v := 0; v < n; v++ {
		bp := int(plan.Proc[v])
		if bp < 0 || bp >= s.NumProcs {
			return violationf(CheckBackup, g, s, []int32{int32(v)},
				"task %d backup on processor %d of %d", v, bp, s.NumProcs)
		}
		if int32(bp) == s.Proc[v] {
			return violationf(CheckBackup, g, s, []int32{int32(v)},
				"task %d backup shares its primary's processor %d", v, bp)
		}
		w := g.Weight(v)
		if pf != nil {
			w = pf.ScaledWeight(pf.ClassOf(bp), w)
		}
		if d := plan.Finish[v] - plan.Start[v]; d != w {
			return violationf(CheckBackup, g, s, []int32{int32(v)},
				"task %d backup lasts %d cycles, expected %d", v, d, w)
		}
		if plan.Start[v] < s.Finish[v] {
			return violationf(CheckBackup, g, s, []int32{int32(v)},
				"task %d backup starts at %d before the fault is detectable at %d",
				v, plan.Start[v], s.Finish[v])
		}
		for _, u := range g.Preds(v) {
			if plan.Start[v] < plan.Finish[u] {
				return violationf(CheckBackup, g, s, []int32{u, int32(v)},
					"task %d backup starts at %d before predecessor %d's backup finishes at %d",
					v, plan.Start[v], u, plan.Finish[u])
			}
		}
		if restricted {
			// The policy's fallback: when every non-reference processor is
			// the primary's own, any other processor is admissible.
			hasLP := false
			for p := 0; p < s.NumProcs; p++ {
				if int32(p) != s.Proc[v] && pf.ClassOf(p) != ref {
					hasLP = true
					break
				}
			}
			if hasLP && pf.ClassOf(bp) == ref {
				return violationf(CheckBackup, g, s, []int32{int32(v)},
					"task %d backup on reference-class processor %d despite policy %q", v, bp, opt.Policy)
			}
		}
		if plan.Finish[v] > maxFinish {
			maxFinish = plan.Finish[v]
		}
	}
	if plan.RecoveryMakespan != maxFinish {
		return violationf(CheckBackup, g, s, nil,
			"recorded recovery makespan %d, latest backup finish %d", plan.RecoveryMakespan, maxFinish)
	}

	// Exclusivity over the merged timeline: every primary slot and every
	// backup slot, bucketed per processor from the raw arrays and sorted.
	type slot struct {
		start, finish int64
		task          int32
	}
	byProc := make([][]slot, s.NumProcs)
	for v := 0; v < n; v++ {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], slot{s.Start[v], s.Finish[v], int32(v)})
		byProc[plan.Proc[v]] = append(byProc[plan.Proc[v]], slot{plan.Start[v], plan.Finish[v], int32(v)})
	}
	for p, slots := range byProc {
		sort.Slice(slots, func(i, j int) bool {
			if slots[i].start != slots[j].start {
				return slots[i].start < slots[j].start
			}
			return slots[i].task < slots[j].task
		})
		for i := 1; i < len(slots); i++ {
			if slots[i].start < slots[i-1].finish {
				return violationf(CheckBackup, g, s, []int32{slots[i-1].task, slots[i].task},
					"slots of tasks %d and %d overlap on processor %d (backups included)",
					slots[i-1].task, slots[i].task, p)
			}
		}
	}

	if opt.DeadlineCycles > 0 && plan.RecoveryMakespan > opt.DeadlineCycles {
		return violationf(CheckDeadline, g, s, nil,
			"recovery makespan %d exceeds deadline %d cycles", plan.RecoveryMakespan, opt.DeadlineCycles)
	}
	return nil
}

// RecoverySchedule re-derives, from first principles, the effective
// execution of one concrete fault pattern — which primary executions are
// invalid (the faulty tasks plus every task whose primary slot began before
// an invalid predecessor's backup delivered its input), which backups run,
// and when everything effectively completes — and checks that the executed
// slots are mutually exclusive, every executed slot has its inputs by its
// start, and the effective makespan fits deadlineCycles (when positive) and
// never exceeds the plan's recorded recovery makespan. It returns the
// effective makespan in timeline cycles. It shares no code with
// sim.ReplayFaults; the campaign requires the two to agree exactly.
func RecoverySchedule(g *dag.Graph, s *sched.Schedule, plan *sched.BackupPlan, faults []int, deadlineCycles int64) (int64, error) {
	if g == nil || s == nil || plan == nil {
		return 0, &Violation{Check: CheckShape, Detail: "nil graph, schedule or backup plan"}
	}
	n := g.NumTasks()
	if len(plan.Proc) != n || len(plan.Start) != n || len(plan.Finish) != n {
		return 0, violationf(CheckShape, g, s, nil,
			"backup arrays have lengths %d/%d/%d for %d tasks",
			len(plan.Proc), len(plan.Start), len(plan.Finish), n)
	}
	faulty := make([]bool, n)
	for _, v := range faults {
		if v < 0 || v >= n {
			return 0, violationf(CheckRecovery, g, s, nil, "fault index %d out of range [0,%d)", v, n)
		}
		faulty[v] = true
	}

	// Settle validity in ascending primary-finish order (topological for
	// positive weights).
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		vi, vj := order[i], order[j]
		if s.Finish[vi] != s.Finish[vj] {
			return s.Finish[vi] < s.Finish[vj]
		}
		return vi < vj
	})
	invalid := make([]bool, n)
	eff := make([]int64, n)
	var makespan int64
	for _, v := range order {
		bad := faulty[v]
		for _, u := range g.Preds(int(v)) {
			if invalid[u] && plan.Finish[u] > s.Start[v] {
				bad = true
				break
			}
		}
		invalid[v] = bad
		if bad {
			// The backup must have its inputs — every predecessor's valid
			// output — by its start.
			for _, u := range g.Preds(int(v)) {
				if eff[u] > plan.Start[v] {
					return 0, violationf(CheckRecovery, g, s, []int32{u, v},
						"task %d's backup starts at %d before predecessor %d's valid output at %d",
						v, plan.Start[v], u, eff[u])
				}
			}
			eff[v] = plan.Finish[v]
		} else {
			eff[v] = s.Finish[v]
		}
		if eff[v] > makespan {
			makespan = eff[v]
		}
	}

	// Exclusivity of the executed slots: every primary occupies its slot
	// (a faulty primary still runs until detection), plus the backups of
	// the invalid tasks.
	type slot struct {
		start, finish int64
		task          int32
	}
	byProc := make([][]slot, s.NumProcs)
	for v := 0; v < n; v++ {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], slot{s.Start[v], s.Finish[v], int32(v)})
		if invalid[v] {
			byProc[plan.Proc[v]] = append(byProc[plan.Proc[v]], slot{plan.Start[v], plan.Finish[v], int32(v)})
		}
	}
	for p, slots := range byProc {
		sort.Slice(slots, func(i, j int) bool {
			if slots[i].start != slots[j].start {
				return slots[i].start < slots[j].start
			}
			return slots[i].task < slots[j].task
		})
		for i := 1; i < len(slots); i++ {
			if slots[i].start < slots[i-1].finish {
				return 0, violationf(CheckRecovery, g, s, []int32{slots[i-1].task, slots[i].task},
					"executed slots of tasks %d and %d overlap on processor %d",
					slots[i-1].task, slots[i].task, p)
			}
		}
	}

	if makespan > plan.RecoveryMakespan {
		return 0, violationf(CheckRecovery, g, s, nil,
			"effective makespan %d exceeds the plan's recovery makespan %d", makespan, plan.RecoveryMakespan)
	}
	if deadlineCycles > 0 && makespan > deadlineCycles {
		return 0, violationf(CheckDeadline, g, s, nil,
			"recovery makespan %d exceeds deadline %d cycles for fault pattern %v", makespan, deadlineCycles, faults)
	}
	return makespan, nil
}

// EnergyFT recomputes the energy breakdown of a fault-tolerant schedule —
// the primary schedule plus its reserved backup slots — from first
// principles, sharing no code with GapProfile.ResetFT. Semantics
// re-derived: the deadline must cover the recovery makespan; gaps are the
// idle intervals of each processor's merged primary+backup timeline; a
// processor holding only backups is still on; reserved backup cycles are
// charged as idle time in both the PS and non-PS modes, because the
// processor must stay awake to take over on fault detection. All cycle
// totals are exact int64 sums with the same final conversions as the
// profile path, so the two agree bit for bit.
func EnergyFT(s *sched.Schedule, m *power.Model, plan *sched.BackupPlan, lvl power.Level, deadlineSec float64, opts energy.Options) (energy.Breakdown, error) {
	var b energy.Breakdown
	if s == nil || m == nil || plan == nil {
		return b, fmt.Errorf("verify: nil schedule, model or backup plan")
	}
	ftMakespan := s.Makespan
	if plan.RecoveryMakespan > ftMakespan {
		ftMakespan = plan.RecoveryMakespan
	}
	makespanSec := float64(ftMakespan) / lvl.Freq
	if makespanSec > deadlineSec*(1+1e-12) {
		return b, fmt.Errorf("verify: %w", energy.ErrDeadline)
	}

	var busy int64
	for v := range s.Start {
		busy += s.Finish[v] - s.Start[v]
	}
	b.ActiveTime = float64(busy) / lvl.Freq
	b.Active = b.ActiveTime * m.LevelPower(lvl)
	if opts.IgnoreIdle {
		return b, nil
	}

	horizon := int64(deadlineSec * lvl.Freq)
	if horizon < ftMakespan {
		horizon = ftMakespan
	}
	breakeven := m.BreakevenTime(lvl)
	var idleCycles, sleepCycles, reserved int64
	shutdowns := 0
	account := func(gap int64) {
		if gap <= 0 {
			return
		}
		if opts.PS && float64(gap)/lvl.Freq > breakeven {
			sleepCycles += gap
			shutdowns++
		} else {
			idleCycles += gap
		}
	}

	type slot struct{ start, finish int64 }
	byProc := make([][]slot, s.NumProcs)
	for v := range s.Proc {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], slot{s.Start[v], s.Finish[v]})
		byProc[plan.Proc[v]] = append(byProc[plan.Proc[v]], slot{plan.Start[v], plan.Finish[v]})
		reserved += plan.Finish[v] - plan.Start[v]
	}
	for _, slots := range byProc {
		if len(slots) == 0 {
			continue // neither primaries nor backups: off, no gaps
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i].start < slots[j].start })
		cursor := int64(0)
		for _, sl := range slots {
			account(sl.start - cursor)
			cursor = sl.finish
		}
		account(horizon - cursor)
	}
	idleCycles += reserved

	b.IdleTime = float64(idleCycles) / lvl.Freq
	b.Idle = b.IdleTime * m.IdlePower(lvl)
	b.SleepTime = float64(sleepCycles) / lvl.Freq
	b.Sleep = b.SleepTime * m.PSleep
	b.Shutdowns = shutdowns
	b.Overhead = float64(shutdowns) * m.EOverhead
	return b, nil
}

// EnergyFTMatches recomputes the breakdown with EnergyFT and requires got
// to be bit-identical, exactly as EnergyMatches does for the non-FT walk.
func EnergyFTMatches(s *sched.Schedule, m *power.Model, plan *sched.BackupPlan, lvl power.Level, deadlineSec float64, opts energy.Options, got energy.Breakdown) error {
	want, err := EnergyFT(s, m, plan, lvl, deadlineSec, opts)
	if err != nil {
		return &Violation{
			Check:  CheckEnergy,
			Detail: fmt.Sprintf("reported breakdown %+v for a fault-tolerant schedule the reference walk rejects: %v", got, err),
			Repro:  dump(s.Graph, s, nil),
		}
	}
	if got == want {
		return nil
	}
	diffs := breakdownDiffs(got, want)
	return &Violation{
		Check: CheckEnergy,
		Detail: fmt.Sprintf("breakdown differs from the first-principles fault-tolerant walk (level %d, deadline %gs, PS=%v): %s",
			lvl.Index, deadlineSec, opts.PS, diffs),
		Repro: dump(s.Graph, s, nil),
	}
}

// PlatformEnergyFT is EnergyFT for a heterogeneous platform schedule: the
// merged primary+backup timelines are walked per class in ascending class
// order, busy totals count primary slots only, and each class's reserved
// backup cycles are charged as idle at its own idle power — the same
// expressions, in the same order, as GapProfile.ResetPlatformFT +
// EvaluatePoint.
func PlatformEnergyFT(s *sched.Schedule, pf *power.Platform, plan *sched.BackupPlan, pt power.OperatingPoint, deadlineSec float64, opts energy.Options) (energy.Breakdown, error) {
	var b energy.Breakdown
	if s == nil || pf == nil || plan == nil || len(pt.Levels) != pf.NumClasses() {
		return b, fmt.Errorf("verify: nil schedule, platform or backup plan, or malformed operating point")
	}
	ft := pt.TimelineFreq
	ftMakespan := s.Makespan
	if plan.RecoveryMakespan > ftMakespan {
		ftMakespan = plan.RecoveryMakespan
	}
	makespanSec := float64(ftMakespan) / ft
	if makespanSec > deadlineSec*(1+1e-12) {
		return b, fmt.Errorf("verify: %w", energy.ErrDeadline)
	}
	horizon := int64(deadlineSec * ft)
	if horizon < ftMakespan {
		horizon = ftMakespan
	}

	type slot struct {
		start, finish int64
		backup        bool
		task          int32
	}
	byProc := make([][]slot, s.NumProcs)
	for v := range s.Proc {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], slot{s.Start[v], s.Finish[v], false, int32(v)})
		byProc[plan.Proc[v]] = append(byProc[plan.Proc[v]], slot{plan.Start[v], plan.Finish[v], true, int32(v)})
	}

	for c := 0; c < pf.NumClasses(); c++ {
		m := pf.ClassModel(c)
		lvl := pt.Levels[c]
		breakeven := m.BreakevenTime(lvl)

		var busyWork, busySlot, reserved, idleCycles, sleepCycles int64
		shutdowns := 0
		employed := false
		account := func(gap int64) {
			if gap <= 0 {
				return
			}
			if opts.PS && float64(gap)/ft > breakeven {
				sleepCycles += gap
				shutdowns++
			} else {
				idleCycles += gap
			}
		}
		for p, slots := range byProc {
			if pf.ClassOf(p) != c || len(slots) == 0 {
				continue // other class, or holding nothing: off, no gaps
			}
			employed = true
			sort.Slice(slots, func(i, j int) bool { return slots[i].start < slots[j].start })
			cursor := int64(0)
			for _, sl := range slots {
				account(sl.start - cursor)
				cursor = sl.finish
				if sl.backup {
					reserved += sl.finish - sl.start
				} else {
					busySlot += sl.finish - sl.start
					busyWork += s.Graph.Weight(int(sl.task))
				}
			}
			account(horizon - cursor)
		}
		if !employed {
			continue
		}

		activeT := float64(busyWork) / lvl.Freq
		b.ActiveTime += activeT
		b.Active += activeT * m.LevelPower(lvl)
		if opts.IgnoreIdle {
			continue
		}
		pIdle := m.IdlePower(lvl)
		if intra := float64(busySlot)/ft - activeT; intra > 0 {
			b.IdleTime += intra
			b.Idle += intra * pIdle
		}
		idleCycles += reserved
		idleT := float64(idleCycles) / ft
		b.IdleTime += idleT
		b.Idle += idleT * pIdle
		sleepT := float64(sleepCycles) / ft
		b.SleepTime += sleepT
		b.Sleep += sleepT * m.PSleep
		b.Shutdowns += shutdowns
		b.Overhead += float64(shutdowns) * m.EOverhead
	}
	return b, nil
}

// PlatformEnergyFTMatches recomputes the breakdown with PlatformEnergyFT
// and requires got to be bit-identical.
func PlatformEnergyFTMatches(s *sched.Schedule, pf *power.Platform, plan *sched.BackupPlan, pt power.OperatingPoint, deadlineSec float64, opts energy.Options, got energy.Breakdown) error {
	want, err := PlatformEnergyFT(s, pf, plan, pt, deadlineSec, opts)
	if err != nil {
		return &Violation{
			Check:  CheckEnergy,
			Detail: fmt.Sprintf("reported breakdown %+v for a fault-tolerant platform schedule the reference walk rejects: %v", got, err),
			Repro:  dump(s.Graph, s, nil),
		}
	}
	if got == want {
		return nil
	}
	diffs := breakdownDiffs(got, want)
	return &Violation{
		Check: CheckEnergy,
		Detail: fmt.Sprintf("breakdown differs from the first-principles fault-tolerant platform walk (%v, deadline %gs, PS=%v): %s",
			pt, deadlineSec, opts.PS, diffs),
		Repro: dump(s.Graph, s, nil),
	}
}

// clonePlan copies the mutable arrays of a backup plan for mutation.
func clonePlan(pl *sched.BackupPlan) *sched.BackupPlan {
	c := *pl
	c.Proc = append([]int32(nil), pl.Proc...)
	c.Start = append([]int64(nil), pl.Start...)
	c.Finish = append([]int64(nil), pl.Finish...)
	return &c
}

// SelfTestFaults extends the mutation self-test to the fault-tolerance
// checkers: known corruptions — a backup moved onto its primary's
// processor, a backup overlapping a primary slot, a missing backup, a
// backup that starts before its fault is detectable or before a
// predecessor's backup, a recovery makespan the deadline cannot cover, and
// off-by-one recovery-makespan and reserved-energy accounting — injected
// into copies of a pristine (schedule, plan, breakdown) triple, every
// applicable one of which FaultPlan or EnergyFTMatches must reject.
//
// The pristine inputs are verified first; an error there means the inputs
// were not a valid baseline and no mutation results are returned.
func SelfTestFaults(g *dag.Graph, s *sched.Schedule, plan *sched.BackupPlan, m *power.Model, lvl power.Level, deadlineSec float64, opts energy.Options) ([]SelfTestResult, error) {
	planOpt := FaultPlanOptions{Policy: plan.Policy}
	if err := FaultPlan(g, s, plan, planOpt); err != nil {
		return nil, fmt.Errorf("verify: fault self-test baseline plan invalid: %w", err)
	}
	base, err := EnergyFT(s, m, plan, lvl, deadlineSec, opts)
	if err != nil {
		return nil, fmt.Errorf("verify: fault self-test baseline energy invalid: %w", err)
	}

	type mutation struct {
		class string
		run   func() (skipped bool, verr error)
	}
	muts := []mutation{
		{"backup-on-primary-proc", func() (bool, error) {
			c := clonePlan(plan)
			c.Proc[0] = s.Proc[0]
			return false, FaultPlan(g, s, c, planOpt)
		}},
		{"backup-overlaps-primary", func() (bool, error) {
			// Slide some task's backup onto a primary slot of its backup
			// processor, keeping the duration.
			for v := range plan.Proc {
				for u := range s.Proc {
					if s.Proc[u] != plan.Proc[v] {
						continue
					}
					c := clonePlan(plan)
					d := plan.Finish[v] - plan.Start[v]
					c.Start[v] = s.Start[u]
					c.Finish[v] = c.Start[v] + d
					return false, FaultPlan(g, s, c, planOpt)
				}
			}
			return true, nil
		}},
		{"missing-backup", func() (bool, error) {
			c := clonePlan(plan)
			c.Proc = c.Proc[:len(c.Proc)-1]
			return false, FaultPlan(g, s, c, planOpt)
		}},
		{"backup-before-primary-finish", func() (bool, error) {
			c := clonePlan(plan)
			d := plan.Finish[0] - plan.Start[0]
			c.Start[0] = s.Finish[0] - 1
			c.Finish[0] = c.Start[0] + d
			return false, FaultPlan(g, s, c, planOpt)
		}},
		{"backup-before-pred-backup", func() (bool, error) {
			for u := 0; u < g.NumTasks(); u++ {
				for _, v := range g.Succs(u) {
					c := clonePlan(plan)
					d := plan.Finish[v] - plan.Start[v]
					c.Start[v] = plan.Finish[u] - 1
					c.Finish[v] = c.Start[v] + d
					return false, FaultPlan(g, s, c, planOpt)
				}
			}
			return true, nil // no edges: the constraint is vacuous
		}},
		{"recovery-misses-deadline", func() (bool, error) {
			opt := planOpt
			opt.DeadlineCycles = plan.RecoveryMakespan - 1
			return false, FaultPlan(g, s, plan, opt)
		}},
		{"recovery-makespan-off-by-one", func() (bool, error) {
			c := clonePlan(plan)
			c.RecoveryMakespan++
			return false, FaultPlan(g, s, c, planOpt)
		}},
		{"reserved-energy-off-by-one", func() (bool, error) {
			// One phantom reserved cycle: the idle aggregates shift by
			// exactly one cycle's worth.
			bad := base
			bad.IdleTime += 1 / lvl.Freq
			bad.Idle = bad.IdleTime * m.IdlePower(lvl)
			return false, EnergyFTMatches(s, m, plan, lvl, deadlineSec, opts, bad)
		}},
	}

	results := make([]SelfTestResult, 0, len(muts))
	for _, mu := range muts {
		skipped, verr := mu.run()
		results = append(results, SelfTestResult{
			Class:    mu.class,
			Skipped:  skipped,
			Detected: !skipped && verr != nil,
			Err:      verr,
		})
	}
	return results, nil
}
