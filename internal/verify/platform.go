package verify

import (
	"fmt"
	"sort"

	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// PlatformSchedule checks a heterogeneous-platform schedule against g from
// first principles. The invariants are those of Schedule with one change:
// a task's slot on processor p must last pf.ScaledWeight(class(p), weight)
// timeline cycles — the class-stretched duration — instead of the raw
// weight.
func PlatformSchedule(g *dag.Graph, pf *power.Platform, s *sched.Schedule) error {
	return PlatformScheduleWithin(g, pf, s, ScheduleOptions{})
}

// PlatformScheduleWithin is PlatformSchedule plus release-time and deadline
// checks (deadline in timeline cycles).
func PlatformScheduleWithin(g *dag.Graph, pf *power.Platform, s *sched.Schedule, opt ScheduleOptions) error {
	if pf == nil {
		return &Violation{Check: CheckShape, Detail: "nil platform"}
	}
	if s != nil && s.NumProcs > pf.NumProcs() {
		return violationf(CheckShape, g, s, nil,
			"schedule uses %d processors of a %d-processor platform", s.NumProcs, pf.NumProcs())
	}
	opt.expectDur = func(v, proc int) int64 {
		return pf.ScaledWeight(pf.ClassOf(proc), g.Weight(v))
	}
	return ScheduleWithin(g, s, opt)
}

// PlatformEnergy recomputes the full energy breakdown of running a platform
// schedule at operating point pt until deadlineSec, from first principles
// and sharing no code with GapProfile.EvaluatePoint. Semantics re-derived:
// the shared timeline runs at pt.TimelineFreq; each class executes its raw
// work cycles at its own ladder level, the slot remainder idles at the
// class's idle power, and every gap of every employed processor is walked
// linearly and classified against the class's break-even time.
//
// To agree with EvaluatePoint bit for bit, all cycle totals are exact int64
// sums per class and the float conversions happen once per class in
// ascending class order — the same expressions, in the same order.
func PlatformEnergy(s *sched.Schedule, pf *power.Platform, pt power.OperatingPoint, deadlineSec float64, opts energy.Options) (energy.Breakdown, error) {
	var b energy.Breakdown
	if s == nil || pf == nil || len(pt.Levels) != pf.NumClasses() {
		return b, fmt.Errorf("verify: nil schedule or platform, or malformed operating point")
	}
	ft := pt.TimelineFreq
	makespanSec := float64(s.Makespan) / ft
	if makespanSec > deadlineSec*(1+1e-12) {
		return b, fmt.Errorf("verify: %w", energy.ErrDeadline)
	}
	horizon := int64(deadlineSec * ft)
	if horizon < s.Makespan {
		horizon = s.Makespan
	}

	byProc := make([][]int32, s.NumProcs)
	for v := range s.Proc {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], int32(v))
	}

	for c := 0; c < pf.NumClasses(); c++ {
		m := pf.ClassModel(c)
		lvl := pt.Levels[c]
		breakeven := m.BreakevenTime(lvl)

		var busyWork, busySlot, idleCycles, sleepCycles int64
		shutdowns := 0
		employed := false
		account := func(gap int64) {
			if gap <= 0 {
				return
			}
			if opts.PS && float64(gap)/ft > breakeven {
				sleepCycles += gap
				shutdowns++
			} else {
				idleCycles += gap
			}
		}
		for p, tasks := range byProc {
			if pf.ClassOf(p) != c || len(tasks) == 0 {
				continue // other class, or unemployed: off, no gaps
			}
			employed = true
			sort.Slice(tasks, func(i, j int) bool { return s.Start[tasks[i]] < s.Start[tasks[j]] })
			cursor := int64(0)
			for _, v := range tasks {
				account(s.Start[v] - cursor)
				cursor = s.Finish[v]
				busySlot += s.Finish[v] - s.Start[v]
				busyWork += s.Graph.Weight(int(v))
			}
			account(horizon - cursor)
		}
		if !employed {
			continue
		}

		activeT := float64(busyWork) / lvl.Freq
		b.ActiveTime += activeT
		b.Active += activeT * m.LevelPower(lvl)
		if opts.IgnoreIdle {
			continue
		}
		pIdle := m.IdlePower(lvl)
		if intra := float64(busySlot)/ft - activeT; intra > 0 {
			b.IdleTime += intra
			b.Idle += intra * pIdle
		}
		idleT := float64(idleCycles) / ft
		b.IdleTime += idleT
		b.Idle += idleT * pIdle
		sleepT := float64(sleepCycles) / ft
		b.SleepTime += sleepT
		b.Sleep += sleepT * m.PSleep
		b.Shutdowns += shutdowns
		b.Overhead += float64(shutdowns) * m.EOverhead
	}
	return b, nil
}

// PlatformEnergyMatches recomputes the breakdown with PlatformEnergy and
// requires got to be bit-identical, exactly as EnergyMatches does for the
// homogeneous walk.
func PlatformEnergyMatches(s *sched.Schedule, pf *power.Platform, pt power.OperatingPoint, deadlineSec float64, opts energy.Options, got energy.Breakdown) error {
	want, err := PlatformEnergy(s, pf, pt, deadlineSec, opts)
	if err != nil {
		return &Violation{
			Check:  CheckEnergy,
			Detail: fmt.Sprintf("reported breakdown %+v for a platform schedule the reference walk rejects: %v", got, err),
			Repro:  dump(s.Graph, s, nil),
		}
	}
	if got == want {
		return nil
	}
	diffs := breakdownDiffs(got, want)
	return &Violation{
		Check: CheckEnergy,
		Detail: fmt.Sprintf("breakdown differs from the first-principles platform walk (%v, deadline %gs, PS=%v): %s",
			pt, deadlineSec, opts.PS, diffs),
		Repro: dump(s.Graph, s, nil),
	}
}

// SelfTestPlatform is SelfTest for the platform verifier: known corruptions
// injected into copies of a pristine (graph, platform, schedule, breakdown)
// quadruple, every applicable one of which PlatformScheduleWithin or
// PlatformEnergyMatches must reject. Beyond the structural classes shared
// with the homogeneous self-test it includes the corruption unique to
// heterogeneity: a task moved to a processor of a *different-speed* class
// while keeping its times, which only a duration check aware of per-class
// scaling can catch.
func SelfTestPlatform(g *dag.Graph, pf *power.Platform, s *sched.Schedule, pt power.OperatingPoint, deadlineSec float64, opts energy.Options) ([]SelfTestResult, error) {
	if err := PlatformSchedule(g, pf, s); err != nil {
		return nil, fmt.Errorf("verify: platform self-test baseline schedule invalid: %w", err)
	}
	base, err := PlatformEnergy(s, pf, pt, deadlineSec, opts)
	if err != nil {
		return nil, fmt.Errorf("verify: platform self-test baseline energy invalid: %w", err)
	}

	type mutation struct {
		class string
		run   func() (skipped bool, verr error)
	}
	muts := []mutation{
		{"class-swap", func() (bool, error) {
			// Move one task to an idle-at-the-time processor of a class with a
			// different scale, keeping Start/Finish: legality-by-intervals still
			// holds whenever the target slot is free, but the slot length no
			// longer matches the new class's scaled weight.
			v, p := classSwapTarget(g, pf, s)
			if v < 0 {
				return true, nil
			}
			c := cloneSchedule(s)
			c.Proc[v] = int32(p)
			return false, PlatformSchedule(g, pf, c)
		}},
		{"swapped-starts", func() (bool, error) {
			p := procWithTwoTasks(s)
			if p < 0 {
				return true, nil
			}
			tasks := tasksInStartOrder(s, p)
			a, b := tasks[0], tasks[1]
			c := cloneSchedule(s)
			c.Start[a], c.Start[b] = s.Start[b], s.Start[a]
			c.Finish[a], c.Finish[b] = s.Finish[b], s.Finish[a]
			return false, PlatformSchedule(g, pf, c)
		}},
		{"duration", func() (bool, error) {
			c := cloneSchedule(s)
			c.Finish[0]--
			return false, PlatformSchedule(g, pf, c)
		}},
		{"makespan-off-by-one", func() (bool, error) {
			c := cloneSchedule(s)
			c.Makespan++
			return false, PlatformSchedule(g, pf, c)
		}},
		{"deadline", func() (bool, error) {
			return false, PlatformScheduleWithin(g, pf, s, ScheduleOptions{DeadlineCycles: s.Makespan - 1})
		}},
		{"gap-off-by-one", func() (bool, error) {
			// One timeline cycle of phantom idle on the reference class.
			m := pf.ClassModel(pf.RefClass())
			lvl := pt.Levels[pf.RefClass()]
			bad := base
			bad.IdleTime += 1 / pt.TimelineFreq
			bad.Idle += (1 / pt.TimelineFreq) * m.IdlePower(lvl)
			return false, PlatformEnergyMatches(s, pf, pt, deadlineSec, opts, bad)
		}},
		{"shutdown-miscount", func() (bool, error) {
			bad := base
			bad.Shutdowns++
			bad.Overhead += pf.ClassModel(0).EOverhead
			return false, PlatformEnergyMatches(s, pf, pt, deadlineSec, opts, bad)
		}},
	}

	results := make([]SelfTestResult, 0, len(muts))
	for _, mu := range muts {
		skipped, verr := mu.run()
		results = append(results, SelfTestResult{
			Class:    mu.class,
			Skipped:  skipped,
			Detected: !skipped && verr != nil,
			Err:      verr,
		})
	}
	return results, nil
}

// classSwapTarget finds a task v and a processor p of a class with a
// different scaled weight for v than v's current class, such that v's time
// interval is free on p. Returns (-1, -1) when the platform is effectively
// homogeneous for every placed task or no free slot exists.
func classSwapTarget(g *dag.Graph, pf *power.Platform, s *sched.Schedule) (int, int) {
	for v := range s.Proc {
		cur := pf.ClassOf(int(s.Proc[v]))
		w := g.Weight(v)
		for p := 0; p < s.NumProcs; p++ {
			c := pf.ClassOf(p)
			if pf.ScaledWeight(c, w) == pf.ScaledWeight(cur, w) {
				continue
			}
			if intervalFree(s, p, s.Start[v], s.Finish[v]) {
				return v, p
			}
		}
	}
	return -1, -1
}

// intervalFree reports whether processor p runs no task overlapping [lo, hi).
func intervalFree(s *sched.Schedule, p int, lo, hi int64) bool {
	for v := range s.Proc {
		if int(s.Proc[v]) != p {
			continue
		}
		if s.Start[v] < hi && s.Finish[v] > lo {
			return false
		}
	}
	return true
}
