package verify

import (
	"errors"
	"testing"

	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// faultFixture returns a fork-join schedule with a verified backup plan —
// a baseline on which every fault mutation class is applicable.
func faultFixture(t *testing.T) (*sched.Schedule, *sched.BackupPlan) {
	t.Helper()
	g := parallelGraph(t)
	s := schedule(t, g, 2)
	plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
	if err != nil {
		t.Fatal(err)
	}
	return s, plan
}

// TestSelfTestFaultsDetectsEveryClass: every fault corruption class must be
// applicable on the fork-join fixture, every one must be detected, and each
// detection must be a Violation — the test that the new checkers actually
// reject what they claim to reject.
func TestSelfTestFaultsDetectsEveryClass(t *testing.T) {
	s, plan := faultFixture(t)
	g := s.Graph
	m := power.Default70nm()
	lvl := m.CriticalLevel()
	deadline := float64(plan.RecoveryMakespan) / lvl.Freq * 2
	for _, opts := range []energy.Options{{}, {PS: true}} {
		results, err := SelfTestFaults(g, s, plan, m, lvl, deadline, opts)
		if err != nil {
			t.Fatalf("PS=%v: %v", opts.PS, err)
		}
		if len(results) < 8 {
			t.Fatalf("only %d fault mutation classes", len(results))
		}
		for _, r := range results {
			if r.Skipped {
				t.Errorf("PS=%v: class %q not applicable on a fork-join fixture", opts.PS, r.Class)
				continue
			}
			if !r.Detected {
				t.Errorf("PS=%v: corruption %q went undetected", opts.PS, r.Class)
				continue
			}
			if !errors.Is(r.Err, ErrViolation) {
				t.Errorf("PS=%v: class %q detected with a non-Violation error: %v", opts.PS, r.Class, r.Err)
			}
		}
	}
}

// TestSelfTestFaultsRejectsBadBaseline: an already corrupt plan must fail
// fast instead of producing mutation results.
func TestSelfTestFaultsRejectsBadBaseline(t *testing.T) {
	s, plan := faultFixture(t)
	bad := clonePlan(plan)
	bad.Start[0] = s.Finish[0] - 1
	bad.Finish[0] = bad.Start[0] + (plan.Finish[0] - plan.Start[0])
	m := power.Default70nm()
	lvl := m.CriticalLevel()
	deadline := float64(plan.RecoveryMakespan) / lvl.Freq * 2
	if _, err := SelfTestFaults(s.Graph, s, bad, m, lvl, deadline, energy.Options{}); !errors.Is(err, ErrViolation) {
		t.Fatalf("corrupt baseline: %v", err)
	}
}

// TestFaultPlanRejectsPolicyBreach: a hand-moved backup violating the
// primary-HP/backup-LP restriction must be caught by the policy check.
func TestFaultPlanRejectsPolicyBreach(t *testing.T) {
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := parallelGraph(t)
	var s sched.Schedule
	var k sched.Scheduler
	if err := k.ScheduleIntoPlatform(&s, g, pf, pf.NumProcs(), sched.LPTPriorities(g), nil); err != nil {
		t.Fatal(err)
	}
	plan, err := sched.PlanBackups(&s, pf, sched.PrimaryHPBackupLP)
	if err != nil {
		t.Fatal(err)
	}
	opt := FaultPlanOptions{Platform: pf, Policy: sched.PrimaryHPBackupLP}
	if err := FaultPlan(g, &s, plan, opt); err != nil {
		t.Fatalf("pristine plan rejected: %v", err)
	}
	// Move some backup onto a reference-class processor (class hp = the
	// platform's reference class: procs 3 and 4).
	ref := pf.RefClass()
	bad := clonePlan(plan)
	moved := false
	for v := range bad.Proc {
		for p := 0; p < pf.NumProcs(); p++ {
			if pf.ClassOf(p) == ref && int32(p) != s.Proc[v] {
				bad.Proc[v] = int32(p)
				moved = true
				break
			}
		}
		if moved {
			break
		}
	}
	if !moved {
		t.Fatal("no reference-class processor available to move a backup onto")
	}
	if err := FaultPlan(g, &s, bad, opt); err == nil {
		t.Error("policy breach went undetected")
	}
}
