package verify

import "fmt"

// Approach names, spelled exactly as the paper (and internal/core) spells
// them. They are declared here rather than imported because core imports
// this package for Config.SelfCheck; the duplication is deliberate and
// covered by a test in the campaign package.
const (
	ApproachSS      = "S&S"
	ApproachSSPS    = "S&S+PS"
	ApproachLAMPS   = "LAMPS"
	ApproachLAMPSPS = "LAMPS+PS"
	ApproachLimitSF = "LIMIT-SF"
	ApproachLimitMF = "LIMIT-MF"
)

// RelTol is the relative tolerance for cross-heuristic energy comparisons.
// The invariants below are exact in real arithmetic, but the compared
// totals are float sums accumulated along different code paths, so they may
// differ in the last few ulps.
const RelTol = 1e-9

// Outcome is one heuristic's result on one problem instance, reduced to
// what the cross-heuristic invariants need. Energy is the total in joules
// and is only meaningful when Feasible is true.
type Outcome struct {
	Approach string
	Feasible bool
	Energy   float64
}

// Results checks the cross-heuristic invariants over one problem instance's
// outcomes (any subset of approaches may be present; checks involving a
// missing approach are skipped):
//
//   - LIMIT-MF ≤ LIMIT-SF: allowing per-processor, time-varying frequencies
//     can only lower the bound.
//   - Each limit ≤ every heuristic's energy: the limits are lower bounds.
//   - S&S+PS ≤ S&S and LAMPS+PS ≤ LAMPS: the +PS sweep evaluates every
//     feasible level including the base heuristic's and takes the minimum,
//     and shutting a gap down is chosen per gap only when it is cheaper.
//   - LAMPS ≤ S&S and LAMPS+PS ≤ S&S+PS: the LAMPS candidate set always
//     contains the S&S processor count.
//   - LAMPS feasible ⇒ S&S feasible (both are decided by the same maximal
//     processor count meeting the deadline), and a heuristic and its +PS
//     variant are feasible on exactly the same instances.
func Results(outs []Outcome) error {
	by := make(map[string]*Outcome, len(outs))
	for i := range outs {
		o := &outs[i]
		if prev, dup := by[o.Approach]; dup && *prev != *o {
			return &Violation{Check: CheckResult,
				Detail: fmt.Sprintf("approach %q reported twice with different outcomes", o.Approach)}
		}
		by[o.Approach] = o
	}
	le := func(lo, hi string) error {
		a, b := by[lo], by[hi]
		if a == nil || b == nil || !a.Feasible || !b.Feasible {
			return nil
		}
		if a.Energy > b.Energy*(1+RelTol) {
			return &Violation{Check: CheckResult,
				Detail: fmt.Sprintf("%s consumed %.9g J, more than %s's %.9g J", lo, a.Energy, hi, b.Energy)}
		}
		return nil
	}
	implies := func(ifFeasible, thenFeasible string) error {
		a, b := by[ifFeasible], by[thenFeasible]
		if a == nil || b == nil || !a.Feasible || b.Feasible {
			return nil
		}
		return &Violation{Check: CheckResult,
			Detail: fmt.Sprintf("%s is feasible but %s is not", ifFeasible, thenFeasible)}
	}

	checks := []error{
		le(ApproachLimitMF, ApproachLimitSF),
		le(ApproachLimitSF, ApproachSS),
		le(ApproachLimitSF, ApproachSSPS),
		le(ApproachLimitSF, ApproachLAMPS),
		le(ApproachLimitSF, ApproachLAMPSPS),
		le(ApproachLimitMF, ApproachSS),
		le(ApproachLimitMF, ApproachSSPS),
		le(ApproachLimitMF, ApproachLAMPS),
		le(ApproachLimitMF, ApproachLAMPSPS),
		le(ApproachSSPS, ApproachSS),
		le(ApproachLAMPSPS, ApproachLAMPS),
		le(ApproachLAMPS, ApproachSS),
		le(ApproachLAMPSPS, ApproachSSPS),
		implies(ApproachLAMPS, ApproachSS),
		implies(ApproachLAMPSPS, ApproachSSPS),
		implies(ApproachSS, ApproachSSPS),
		implies(ApproachSSPS, ApproachSS),
		implies(ApproachLAMPS, ApproachLAMPSPS),
		implies(ApproachLAMPSPS, ApproachLAMPS),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}
