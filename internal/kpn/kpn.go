// Package kpn models Kahn Process Networks and their conversion to task
// DAGs with deadlines, following Section 3.1 (Fig. 1) of de Langen &
// Juurlink: the network is unrolled into several copies; a channel from
// process a to process b with delay d becomes an edge from the i-th copy of
// a to the (i+d)-th copy of b; an edge from each copy of a process to its
// next copy models that the process cannot start its (i+1)-st firing before
// finishing the i-th. Output processes receive a deadline per copy: the
// first copy's deadline plus i times the reciprocal of the throughput.
package kpn

import (
	"errors"
	"fmt"

	"lamps/internal/dag"
	"lamps/internal/sched"
)

// Errors returned by network construction and unrolling.
var (
	ErrBadProcess = errors.New("kpn: invalid process")
	ErrBadChannel = errors.New("kpn: invalid channel")
	ErrBadUnroll  = errors.New("kpn: invalid unroll parameters")
)

// Process is one node of the network, firing once per iteration.
type Process struct {
	Name   string
	Cycles int64 // processing time of one firing, in cycles at f_max
	Output bool  // output processes carry the throughput deadline
}

// Channel is a FIFO connection between processes. Delay is the number of
// initial tokens: the i-th firing of To consumes the (i−Delay)-th result of
// From, so the unrolled edge goes from copy i of From to copy i+Delay of To.
// Delay 0 is an ordinary dependence within one iteration.
type Channel struct {
	From, To int // process indices
	Delay    int
}

// Network is a Kahn Process Network.
type Network struct {
	procs []Process
	chans []Channel
}

// New returns an empty network.
func New() *Network { return &Network{} }

// AddProcess appends a process and returns its index.
func (n *Network) AddProcess(p Process) int {
	n.procs = append(n.procs, p)
	return len(n.procs) - 1
}

// AddChannel appends a channel.
func (n *Network) AddChannel(c Channel) {
	n.chans = append(n.chans, c)
}

// NumProcesses returns the number of processes.
func (n *Network) NumProcesses() int { return len(n.procs) }

// Unroll expands copies iterations of the network into a task DAG plus
// per-task absolute deadlines (in cycles at maximum frequency) suitable for
// sched.ListEDFWithDeadlines. The output tasks of copy i receive the
// deadline firstDeadline + i*period, where period is the reciprocal of the
// required throughput; all other tasks have sched.NoDeadline and inherit
// urgency through the backward pass.
func (n *Network) Unroll(copies int, firstDeadline, period int64) (*dag.Graph, []int64, error) {
	if copies < 1 {
		return nil, nil, fmt.Errorf("%w: copies = %d", ErrBadUnroll, copies)
	}
	if firstDeadline <= 0 || period <= 0 {
		return nil, nil, fmt.Errorf("%w: deadline %d, period %d", ErrBadUnroll, firstDeadline, period)
	}
	if len(n.procs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty network", ErrBadProcess)
	}
	for i, p := range n.procs {
		if p.Cycles <= 0 {
			return nil, nil, fmt.Errorf("%w: process %d (%s) cycles %d", ErrBadProcess, i, p.Name, p.Cycles)
		}
	}
	for _, c := range n.chans {
		if c.From < 0 || c.From >= len(n.procs) || c.To < 0 || c.To >= len(n.procs) {
			return nil, nil, fmt.Errorf("%w: endpoints %d->%d", ErrBadChannel, c.From, c.To)
		}
		if c.Delay < 0 {
			return nil, nil, fmt.Errorf("%w: negative delay %d", ErrBadChannel, c.Delay)
		}
		if c.From == c.To && c.Delay == 0 {
			return nil, nil, fmt.Errorf("%w: zero-delay self loop on process %d", ErrBadChannel, c.From)
		}
	}

	b := dag.NewBuilder("kpn")
	np := len(n.procs)
	id := func(proc, copy int) int { return copy*np + proc }
	dl := make([]int64, copies*np)
	for copy := 0; copy < copies; copy++ {
		for pi, p := range n.procs {
			v := b.AddLabeledTask(p.Cycles, fmt.Sprintf("%s#%d", p.Name, copy))
			if v != id(pi, copy) {
				panic("kpn: task numbering out of sync")
			}
			if p.Output {
				dl[v] = firstDeadline + int64(copy)*period
			} else {
				dl[v] = sched.NoDeadline
			}
		}
	}
	// Self edges between successive copies of each process.
	for pi := range n.procs {
		for copy := 0; copy+1 < copies; copy++ {
			b.AddEdge(id(pi, copy), id(pi, copy+1))
		}
	}
	// Channel edges with delay.
	for _, c := range n.chans {
		for copy := 0; copy+c.Delay < copies; copy++ {
			b.AddEdge(id(c.From, copy), id(c.To, copy+c.Delay))
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("kpn: %w", err)
	}
	return g, dl, nil
}

// Fig1Example builds the three-process network of the paper's Fig. 1: T1
// processes external inputs I1, I2, …; T3 processes external inputs
// J1, J2, … together with T2's previous result; T2 combines the outputs of
// T1 and T3. In the unrolled DAG there are edges from T1(j) and T3(j) to
// T2(j), and — because T3 combines input J(i+1) with the i-th result of
// T2 — from T2(j) to T3(j+1), i.e. a channel T2 -> T3 with one initial
// token. T2 produces the network's output stream.
func Fig1Example(t1, t2, t3 int64) *Network {
	n := New()
	p1 := n.AddProcess(Process{Name: "T1", Cycles: t1})
	p2 := n.AddProcess(Process{Name: "T2", Cycles: t2, Output: true})
	p3 := n.AddProcess(Process{Name: "T3", Cycles: t3})
	n.AddChannel(Channel{From: p1, To: p2})
	n.AddChannel(Channel{From: p3, To: p2})
	n.AddChannel(Channel{From: p2, To: p3, Delay: 1})
	return n
}
