package kpn

import (
	"errors"
	"testing"

	"lamps/internal/sched"
)

func TestFig1Unroll(t *testing.T) {
	n := Fig1Example(10, 20, 30)
	const copies = 3
	g, dl, err := n.Unroll(copies, 100, 50)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	if g.NumTasks() != copies*3 {
		t.Fatalf("NumTasks = %d, want %d", g.NumTasks(), copies*3)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Edges per the paper's Fig. 1b construction:
	//   self edges: 3 processes x 2 = 6
	//   T1 -> T2 per copy: 3
	//   T3 -> T2 per copy: 3
	//   T2 -> T3 delayed:  2 (copies 0->1, 1->2)
	if g.NumEdges() != 6+3+3+2 {
		t.Errorf("NumEdges = %d, want 14", g.NumEdges())
	}
	// Deadlines: only T2 copies carry one, spaced by the period.
	id := func(proc, copy int) int { return copy*3 + proc }
	for c := 0; c < copies; c++ {
		if got, want := dl[id(1, c)], int64(100+50*c); got != want {
			t.Errorf("T2#%d deadline = %d, want %d", c, got, want)
		}
		for _, p := range []int{0, 2} {
			if dl[id(p, c)] != sched.NoDeadline {
				t.Errorf("process %d copy %d has unexpected deadline", p, c)
			}
		}
	}
	// Labels carry the copy index.
	if g.Label(id(0, 1)) != "T1#1" {
		t.Errorf("label = %q", g.Label(id(0, 1)))
	}
}

func TestUnrollSchedulable(t *testing.T) {
	n := Fig1Example(10, 20, 30)
	g, dl, err := n.Unroll(5, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListEDFWithDeadlines(g, 2, dl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	// Every deadline is loose enough here; all output tasks must meet them.
	for v, d := range dl {
		if d != sched.NoDeadline && s.Finish[v] > d {
			t.Errorf("task %d finishes at %d after deadline %d", v, s.Finish[v], d)
		}
	}
}

func TestUnrollCopiesOne(t *testing.T) {
	n := Fig1Example(5, 5, 5)
	g, _, err := n.Unroll(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 3 {
		t.Errorf("NumTasks = %d", g.NumTasks())
	}
	// Single copy: delayed channel contributes no edge; self edges absent.
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (T1->T2, T3->T2)", g.NumEdges())
	}
}

func TestUnrollErrors(t *testing.T) {
	good := Fig1Example(1, 1, 1)
	if _, _, err := good.Unroll(0, 10, 10); !errors.Is(err, ErrBadUnroll) {
		t.Errorf("copies=0 err = %v", err)
	}
	if _, _, err := good.Unroll(2, 0, 10); !errors.Is(err, ErrBadUnroll) {
		t.Errorf("deadline=0 err = %v", err)
	}
	if _, _, err := good.Unroll(2, 10, -1); !errors.Is(err, ErrBadUnroll) {
		t.Errorf("period<0 err = %v", err)
	}

	empty := New()
	if _, _, err := empty.Unroll(2, 10, 10); !errors.Is(err, ErrBadProcess) {
		t.Errorf("empty network err = %v", err)
	}

	zeroCycles := New()
	zeroCycles.AddProcess(Process{Name: "bad", Cycles: 0})
	if _, _, err := zeroCycles.Unroll(2, 10, 10); !errors.Is(err, ErrBadProcess) {
		t.Errorf("zero cycles err = %v", err)
	}

	badChan := New()
	p := badChan.AddProcess(Process{Name: "p", Cycles: 1})
	badChan.AddChannel(Channel{From: p, To: 99})
	if _, _, err := badChan.Unroll(2, 10, 10); !errors.Is(err, ErrBadChannel) {
		t.Errorf("bad endpoint err = %v", err)
	}

	negDelay := New()
	a := negDelay.AddProcess(Process{Name: "a", Cycles: 1})
	bb := negDelay.AddProcess(Process{Name: "b", Cycles: 1})
	negDelay.AddChannel(Channel{From: a, To: bb, Delay: -1})
	if _, _, err := negDelay.Unroll(2, 10, 10); !errors.Is(err, ErrBadChannel) {
		t.Errorf("negative delay err = %v", err)
	}

	selfLoop := New()
	c := selfLoop.AddProcess(Process{Name: "c", Cycles: 1})
	selfLoop.AddChannel(Channel{From: c, To: c, Delay: 0})
	if _, _, err := selfLoop.Unroll(2, 10, 10); !errors.Is(err, ErrBadChannel) {
		t.Errorf("self loop err = %v", err)
	}
}

func TestSelfChannelWithDelayIsFine(t *testing.T) {
	// A process feeding itself with one token of delay is the same as the
	// implicit self edge; it must be accepted and produce a valid DAG. The
	// duplicate of the implicit copy-to-copy edge is the only subtlety.
	n := New()
	a := n.AddProcess(Process{Name: "a", Cycles: 2, Output: true})
	bpid := n.AddProcess(Process{Name: "b", Cycles: 3})
	n.AddChannel(Channel{From: a, To: bpid, Delay: 0})
	n.AddChannel(Channel{From: bpid, To: a, Delay: 2})
	g, _, err := n.Unroll(4, 100, 10)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if g.NumTasks() != 8 {
		t.Errorf("NumTasks = %d", g.NumTasks())
	}
}

func TestNumProcesses(t *testing.T) {
	n := Fig1Example(1, 2, 3)
	if n.NumProcesses() != 3 {
		t.Errorf("NumProcesses = %d", n.NumProcesses())
	}
}
