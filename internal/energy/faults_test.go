package energy_test

import (
	"math/rand"
	"testing"

	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
	"lamps/internal/verify"
)

// ftPlatform returns the LP×3 + HP×2 machine used across the fault tests.
func ftPlatform(t testing.TB) *power.Platform {
	t.Helper()
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestResetFTMatchesReferenceWalk sweeps random fault-tolerant profiles
// against verify.EnergyFT — an independent merged-interval walk — and
// requires bit-identical breakdowns at every ladder level, with and without
// processor shutdown. This is the FT counterpart of the Evaluate/per-gap
// parity pin.
func TestResetFTMatchesReferenceWalk(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(20260809))
	p := &energy.GapProfile{}
	for iter := 0; iter < 40; iter++ {
		g, err := taskgen.Member(2+rng.Intn(40), rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ListEDF(g, 2+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
		if err != nil {
			t.Fatal(err)
		}
		p.ResetFT(s, plan)
		// A deadline comfortably past the recovery makespan at the slowest
		// level, so every ladder level is feasible and exercised.
		deadline := 4 * float64(plan.RecoveryMakespan) / m.Levels()[len(m.Levels())-1].Freq
		for _, lvl := range m.Levels() {
			for _, ps := range []bool{false, true} {
				opts := energy.Options{PS: ps}
				got, err := p.Evaluate(m, lvl, deadline, opts)
				if err != nil {
					t.Fatalf("iter %d lvl %d ps=%v: %v", iter, lvl.Index, ps, err)
				}
				if verr := verify.EnergyFTMatches(s, m, plan, lvl, deadline, opts, got); verr != nil {
					t.Fatalf("iter %d lvl %d ps=%v: %v", iter, lvl.Index, ps, verr)
				}
			}
		}
	}
}

// TestResetPlatformFTMatchesReferenceWalk is the heterogeneous parity pin:
// EvaluatePoint over ResetPlatformFT must agree bit for bit with
// verify.PlatformEnergyFT across random schedules and operating points.
func TestResetPlatformFTMatchesReferenceWalk(t *testing.T) {
	pf := ftPlatform(t)
	rng := rand.New(rand.NewSource(7))
	p := &energy.GapProfile{}
	var k sched.Scheduler
	for iter := 0; iter < 25; iter++ {
		g, err := taskgen.Member(2+rng.Intn(30), rng.Intn(4), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		var s sched.Schedule
		if err := k.ScheduleIntoPlatform(&s, g, pf, pf.NumProcs(), sched.LPTPriorities(g), nil); err != nil {
			t.Fatal(err)
		}
		policy := sched.BackupAnywhere
		if iter%2 == 1 {
			policy = sched.PrimaryHPBackupLP
		}
		plan, err := sched.PlanBackups(&s, pf, policy)
		if err != nil {
			t.Fatal(err)
		}
		p.ResetPlatformFT(&s, pf, plan)
		deadline := 4 * float64(plan.RecoveryMakespan) / pf.RefFMax()
		pts := pf.Points()
		for i := 0; i < 6; i++ {
			pt := pts[rng.Intn(len(pts))]
			for _, ps := range []bool{false, true} {
				opts := energy.Options{PS: ps}
				got, err := p.EvaluatePoint(pf, pt, deadline, opts)
				if err != nil {
					continue // the sampled point may be deadline-infeasible
				}
				if verr := verify.PlatformEnergyFTMatches(&s, pf, plan, pt, deadline, opts, got); verr != nil {
					t.Fatalf("iter %d ps=%v: %v", iter, ps, verr)
				}
			}
		}
	}
}

// TestResetFTDeadlineCoversRecovery pins that the FT profile judges
// feasibility by the recovery makespan, not the primary one: a deadline
// between the two must be rejected.
func TestResetFTDeadlineCoversRecovery(t *testing.T) {
	m := power.Default70nm()
	g, err := taskgen.Member(12, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
	if err != nil {
		t.Fatal(err)
	}
	if plan.RecoveryMakespan <= s.Makespan {
		t.Fatalf("degenerate case: recovery makespan %d not beyond primary %d", plan.RecoveryMakespan, s.Makespan)
	}
	lvl := m.Levels()[0]
	between := (float64(s.Makespan) + float64(plan.RecoveryMakespan)) / 2 / lvl.Freq
	p := energy.NewGapProfile(s)
	if _, err := p.Evaluate(m, lvl, between, energy.Options{}); err != nil {
		t.Fatalf("non-FT profile rejects a deadline past the primary makespan: %v", err)
	}
	p.ResetFT(s, plan)
	if _, err := p.Evaluate(m, lvl, between, energy.Options{}); err == nil {
		t.Error("FT profile accepted a deadline the recovery makespan misses")
	}
	full := float64(plan.RecoveryMakespan) / lvl.Freq
	if _, err := p.Evaluate(m, lvl, full, energy.Options{}); err != nil {
		t.Errorf("FT profile rejects a deadline equal to the recovery makespan: %v", err)
	}
}

// TestResetFTChargesReservedAsIdle pins the reservation-energy semantics:
// relative to the plain profile at the same deadline, the FT profile adds
// exactly the reserved backup cycles to idle time — awake capacity that
// neither sleeps nor computes.
func TestResetFTChargesReservedAsIdle(t *testing.T) {
	m := power.Default70nm()
	g, err := taskgen.Member(16, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.PlanBackups(s, nil, sched.BackupAnywhere)
	if err != nil {
		t.Fatal(err)
	}
	lvl := m.Levels()[0]
	deadline := 2 * float64(plan.RecoveryMakespan) / lvl.Freq
	opts := energy.Options{}

	plain := energy.NewGapProfile(s)
	base, err := plain.Evaluate(m, lvl, deadline, opts)
	if err != nil {
		t.Fatal(err)
	}
	ftp := &energy.GapProfile{}
	ftp.ResetFT(s, plan)
	ft, err := ftp.Evaluate(m, lvl, deadline, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Total() < base.Total() {
		t.Errorf("FT energy %g below non-FT %g at the same level and deadline", ft.Total(), base.Total())
	}
	if ft.ActiveTime != base.ActiveTime {
		t.Errorf("FT active time %g differs from non-FT %g: backups must not count as computation", ft.ActiveTime, base.ActiveTime)
	}
	// Without PS every awake-but-not-computing cycle lands in idle; the FT
	// walk covers the same horizon on the same machine, so the idle delta
	// is the backup-only processors' newly covered span plus intra-gap
	// reallocation — all of it idle, never sleep.
	if ft.SleepTime != 0 || base.SleepTime != 0 {
		t.Fatalf("non-PS evaluation produced sleep time")
	}
}
