package energy

import (
	"fmt"
	"slices"

	"lamps/internal/power"
	"lamps/internal/sched"
)

// GapProfile is the idle-interval structure of one schedule, extracted once
// and then shared by every per-level energy evaluation. It splits a
// schedule's idle time into the part that is fixed by the schedule (the
// inner gaps: before the first task and between consecutive tasks of each
// employed processor) and the part parameterised by the horizon (the
// trailing slack of each employed processor from its last finish to the
// deadline). Both parts are kept sorted with exact integer prefix sums, so
// one Evaluate at an operating point is two binary searches over the
// break-even threshold plus O(1) arithmetic — O(log G) per level instead of
// the O(G) per-gap walk, which turns the +PS frequency sweep from
// O(levels × gaps) into O(gaps·log gaps + levels·log gaps).
//
// The accounting is identical to the per-gap walk: a gap of g cycles at
// level l lasts t = g/f(l) seconds and sleeps exactly when PS is enabled and
// t exceeds the break-even time. Because gap durations are integers in
// cycles, classifying by t is monotone in g, which is what makes the
// threshold binary-searchable; the idle/sleep cycle totals are summed in
// int64 (exact, order-independent) and converted to seconds and joules once,
// so the profile path and the linear reference walk agree bit-for-bit (see
// TestGapProfileParity).
//
// The zero value is empty; Reset loads a schedule. A profile reused across
// schedules of the same shape performs no steady-state allocations. It is
// immutable between Resets and safe for concurrent Evaluate calls.
type GapProfile struct {
	busyCycles int64
	makespan   int64

	// reserved counts the cycles held by statically planned backup slots
	// (ResetFT/ResetPlatformFT). A reserved processor cannot sleep — it must
	// be ready to take over the instant a fault is detected — so these
	// cycles are charged as idle time regardless of the PS option. Plain
	// Reset/ResetPlatform leave it zero, keeping the non-fault-tolerant
	// accounting bit-identical.
	reserved int64

	inner    []int64 // inner gap lengths in cycles, sorted ascending
	innerSum []int64 // innerSum[i] = sum of inner[:i]; len(inner)+1
	last     []int64 // per-employed-processor last finish, sorted ascending
	lastSum  []int64 // lastSum[i] = sum of last[:i]; len(last)+1

	// ftOrder is ResetFT/ResetPlatformFT scratch: task indices sorted by
	// (backup processor, backup start).
	ftOrder []int32

	// classes holds the per-core-class profile of a heterogeneous platform
	// schedule, populated by ResetPlatform and read by EvaluatePoint. The
	// homogeneous Reset/Evaluate pair above ignores it entirely.
	classes []classGaps
}

// NewGapProfile returns the profile of s. Equivalent to a Reset on a zero
// profile.
func NewGapProfile(s *sched.Schedule) *GapProfile {
	p := new(GapProfile)
	p.Reset(s)
	return p
}

// Reset re-extracts the profile from s, reusing the profile's buffers.
func (p *GapProfile) Reset(s *sched.Schedule) {
	p.busyCycles = s.BusyCycles()
	p.makespan = s.Makespan
	p.reserved = 0
	p.inner = p.inner[:0]
	p.last = p.last[:0]
	for proc := 0; proc < s.NumProcs; proc++ {
		tasks := s.TasksOn(proc)
		if len(tasks) == 0 {
			continue // unemployed processors are off and contribute no gaps
		}
		var cursor int64
		for _, v := range tasks {
			if s.Start[v] > cursor {
				p.inner = append(p.inner, s.Start[v]-cursor)
			}
			cursor = s.Finish[v]
		}
		p.last = append(p.last, cursor)
	}
	slices.Sort(p.inner)
	slices.Sort(p.last)
	p.innerSum = prefixSums(p.innerSum, p.inner)
	p.lastSum = prefixSums(p.lastSum, p.last)
}

// prefixSums writes the prefix sums of src into dst (reused when capacity
// allows): dst[i] = src[0]+…+src[i-1], len(dst) = len(src)+1.
func prefixSums(dst, src []int64) []int64 {
	if cap(dst) < len(src)+1 {
		dst = make([]int64, len(src)+1)
	}
	dst = dst[:len(src)+1]
	dst[0] = 0
	for i, v := range src {
		dst[i+1] = dst[i] + v
	}
	return dst
}

// Evaluate computes the energy of executing the profiled schedule at
// operating point lvl with the machine available until deadlineSec, exactly
// as the package-level Evaluate does — same deadline check, same gap
// classification, same totals — in O(log G) instead of O(G).
func (p *GapProfile) Evaluate(m *power.Model, lvl power.Level, deadlineSec float64, opts Options) (Breakdown, error) {
	var b Breakdown
	makespanSec := float64(p.makespan) / lvl.Freq
	if makespanSec > deadlineSec*(1+1e-12) {
		return b, fmt.Errorf("%w: makespan %.6gs > deadline %.6gs at %v", ErrDeadline, makespanSec, deadlineSec, lvl)
	}

	// Active energy: every cycle of work costs P(lvl)/f(lvl) joules.
	b.ActiveTime = float64(p.busyCycles) / lvl.Freq
	b.Active = b.ActiveTime * m.LevelPower(lvl)

	if opts.IgnoreIdle {
		return b, nil
	}

	// The horizon is expressed in cycles at lvl so that gap lengths convert
	// to seconds by dividing by lvl.Freq.
	horizon := int64(deadlineSec * lvl.Freq)
	if horizon < p.makespan {
		horizon = p.makespan // guard against float truncation
	}
	nEmp := len(p.last)
	var idleCycles, sleepCycles int64
	shutdowns := 0
	if opts.PS {
		breakeven := m.BreakevenTime(lvl)
		// Inner gaps are sorted ascending, so "sleeps" is a suffix: binary
		// search the first index whose duration exceeds the break-even time.
		i := firstAbove(p.inner, func(g int64) bool {
			return float64(g)/lvl.Freq > breakeven
		})
		idleCycles = p.innerSum[i]
		sleepCycles = p.innerSum[len(p.inner)] - p.innerSum[i]
		shutdowns = len(p.inner) - i
		// Trailing slack horizon−last shrinks as last grows, so "sleeps" is
		// a prefix of the sorted last-finish times.
		j := firstAbove(p.last, func(lf int64) bool {
			return float64(horizon-lf)/lvl.Freq <= breakeven
		})
		sleepCycles += int64(j)*horizon - p.lastSum[j]
		idleCycles += int64(nEmp-j)*horizon - (p.lastSum[nEmp] - p.lastSum[j])
		shutdowns += j
	} else {
		idleCycles = p.innerSum[len(p.inner)] + int64(nEmp)*horizon - p.lastSum[nEmp]
	}
	// Backup reservations are idle-but-awake in either mode; zero outside
	// the fault-tolerant resets.
	idleCycles += p.reserved

	b.IdleTime = float64(idleCycles) / lvl.Freq
	b.Idle = b.IdleTime * m.IdlePower(lvl)
	b.SleepTime = float64(sleepCycles) / lvl.Freq
	b.Sleep = b.SleepTime * m.PSleep
	b.Shutdowns = shutdowns
	b.Overhead = float64(shutdowns) * m.EOverhead
	return b, nil
}

// firstAbove returns the smallest index i in the sorted slice s for which
// pred(s[i]) is true, or len(s) when none is. pred must be monotone
// (false…false true…true along s). A hand-rolled binary search keeps the
// predicate closure on the stack — sort.Search is equivalent but gives the
// escape analyser a harder time.
func firstAbove(s []int64, pred func(int64) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pred(s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
