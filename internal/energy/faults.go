package energy

import (
	"slices"
	"sort"

	"lamps/internal/power"
	"lamps/internal/sched"
)

// Fault-tolerant gap profiles: the backup slots of a sched.BackupPlan
// occupy the schedule's gaps, so they are neither sleepable nor part of any
// inner gap. ResetFT/ResetPlatformFT build each processor's merged
// primary+backup timeline — backup slots split gaps exactly like task slots
// — and accumulate the reserved cycles separately; Evaluate/EvaluatePoint
// charge them as idle time at the operating point's idle power, in both the
// PS and non-PS modes (a reserved processor must stay awake to take over
// the moment a fault is detected). The profile's makespan is the recovery
// makespan, so the existing deadline check covers recovery feasibility.

// ResetFT re-extracts the profile from s with plan's backup slots reserved.
// The profile must be evaluated with Evaluate (homogeneous machine).
func (p *GapProfile) ResetFT(s *sched.Schedule, plan *sched.BackupPlan) {
	p.busyCycles = s.BusyCycles()
	p.makespan = s.Makespan
	if plan.RecoveryMakespan > p.makespan {
		p.makespan = plan.RecoveryMakespan
	}
	p.reserved = 0
	p.inner = p.inner[:0]
	p.last = p.last[:0]
	order := p.backupOrder(plan)
	i := 0
	for proc := 0; proc < s.NumProcs; proc++ {
		tasks := s.TasksOn(proc)
		j := i
		for i < len(order) && int(plan.Proc[order[i]]) == proc {
			i++
		}
		backs := order[j:i]
		if len(tasks) == 0 && len(backs) == 0 {
			continue // truly unemployed processors are off and contribute nothing
		}
		var cursor int64
		ti, bi := 0, 0
		for ti < len(tasks) || bi < len(backs) {
			var start, finish int64
			if bi == len(backs) || (ti < len(tasks) && s.Start[tasks[ti]] <= plan.Start[backs[bi]]) {
				v := tasks[ti]
				start, finish = s.Start[v], s.Finish[v]
				ti++
			} else {
				v := backs[bi]
				start, finish = plan.Start[v], plan.Finish[v]
				p.reserved += finish - start
				bi++
			}
			if start > cursor {
				p.inner = append(p.inner, start-cursor)
			}
			cursor = finish
		}
		p.last = append(p.last, cursor)
	}
	slices.Sort(p.inner)
	slices.Sort(p.last)
	p.innerSum = prefixSums(p.innerSum, p.inner)
	p.lastSum = prefixSums(p.lastSum, p.last)
}

// ResetPlatformFT is ResetFT for a heterogeneous platform schedule: the
// merged timelines are bucketed by core class, busy totals count primary
// slots only, and each class accumulates its own reserved cycles. The
// profile must be evaluated with EvaluatePoint.
func (p *GapProfile) ResetPlatformFT(s *sched.Schedule, pf *power.Platform, plan *sched.BackupPlan) {
	p.makespan = s.Makespan
	if plan.RecoveryMakespan > p.makespan {
		p.makespan = plan.RecoveryMakespan
	}
	nc := pf.NumClasses()
	if cap(p.classes) < nc {
		p.classes = make([]classGaps, nc)
	}
	p.classes = p.classes[:nc]
	for c := range p.classes {
		cg := &p.classes[c]
		cg.busySlot, cg.busyWork, cg.reserved = 0, 0, 0
		cg.inner = cg.inner[:0]
		cg.last = cg.last[:0]
	}
	g := s.Graph
	order := p.backupOrder(plan)
	i := 0
	for proc := 0; proc < s.NumProcs; proc++ {
		tasks := s.TasksOn(proc)
		j := i
		for i < len(order) && int(plan.Proc[order[i]]) == proc {
			i++
		}
		backs := order[j:i]
		if len(tasks) == 0 && len(backs) == 0 {
			continue
		}
		cg := &p.classes[pf.ClassOf(proc)]
		var cursor int64
		ti, bi := 0, 0
		for ti < len(tasks) || bi < len(backs) {
			var start, finish int64
			if bi == len(backs) || (ti < len(tasks) && s.Start[tasks[ti]] <= plan.Start[backs[bi]]) {
				v := tasks[ti]
				start, finish = s.Start[v], s.Finish[v]
				cg.busySlot += finish - start
				cg.busyWork += g.Weight(int(v))
				ti++
			} else {
				v := backs[bi]
				start, finish = plan.Start[v], plan.Finish[v]
				cg.reserved += finish - start
				bi++
			}
			if start > cursor {
				cg.inner = append(cg.inner, start-cursor)
			}
			cursor = finish
		}
		cg.last = append(cg.last, cursor)
	}
	for c := range p.classes {
		cg := &p.classes[c]
		slices.Sort(cg.inner)
		slices.Sort(cg.last)
		cg.innerSum = prefixSums(cg.innerSum, cg.inner)
		cg.lastSum = prefixSums(cg.lastSum, cg.last)
	}
}

// backupOrder returns the task indices sorted by (backup processor, backup
// start) into the profile's scratch, giving each processor's backups as one
// contiguous, start-ordered run. Plan slots on one processor never overlap,
// so the order is total.
func (p *GapProfile) backupOrder(plan *sched.BackupPlan) []int32 {
	n := len(plan.Proc)
	if cap(p.ftOrder) < n {
		p.ftOrder = make([]int32, n)
	}
	p.ftOrder = p.ftOrder[:n]
	for v := range p.ftOrder {
		p.ftOrder[v] = int32(v)
	}
	sort.Slice(p.ftOrder, func(i, j int) bool {
		vi, vj := p.ftOrder[i], p.ftOrder[j]
		if plan.Proc[vi] != plan.Proc[vj] {
			return plan.Proc[vi] < plan.Proc[vj]
		}
		return plan.Start[vi] < plan.Start[vj]
	})
	return p.ftOrder
}
