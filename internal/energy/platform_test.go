package energy

import (
	"errors"
	"math/rand"
	"testing"

	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
)

// heteroPlatform returns the LP×3 + HP×2 test machine: two classes with
// different fmax, so slot scaling and per-class gap classification are both
// exercised.
func heteroPlatform(t testing.TB) *power.Platform {
	t.Helper()
	lp := *power.Default70nm()
	lp.VddMax = 0.85
	lp.POn = 0.04
	lp.PSleep = 25e-6
	if err := lp.Build(); err != nil {
		t.Fatal(err)
	}
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lp}, {Name: "hp", Model: power.Default70nm()}},
		[]int{0, 0, 0, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// heteroSchedule builds a random platform schedule (timeline cycles, scaled
// slots) for the given platform.
func heteroSchedule(t testing.TB, pf *power.Platform, seed int64, size int) *sched.Schedule {
	t.Helper()
	g, err := taskgen.Member(size, int(seed%4), seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListSchedulePlatform(g, pf, pf.NumProcs(), sched.EDFPriorities(g, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEvaluatePointHomogeneousParity pins the energy half of the
// behaviour-preservation contract: on a single-class platform, whose grid is
// the model ladder bit for bit, ResetPlatform + EvaluatePoint must reproduce
// Reset + Evaluate exactly — every Breakdown field bit-identical — across
// random schedules, all grid points, PS on/off/IgnoreIdle and deadlines from
// exact fit to 8x slack.
func TestEvaluatePointHomogeneousParity(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(20260809))
	var legacy, plat GapProfile
	for iter := 0; iter < 25; iter++ {
		s := randomSchedule(rng, 1+rng.Intn(30), 1+rng.Intn(6))
		pf, err := power.Homogeneous(s.NumProcs, m)
		if err != nil {
			t.Fatal(err)
		}
		legacy.Reset(s)
		plat.ResetPlatform(s, pf)
		for _, pt := range pf.Points() {
			lvl := m.Level(pt.Index)
			base := float64(s.Makespan) / lvl.Freq
			for _, slack := range []float64{1, 1.5, 8} {
				deadline := base * slack
				for _, opts := range []Options{{}, {PS: true}, {IgnoreIdle: true}} {
					want, errWant := legacy.Evaluate(m, lvl, deadline, opts)
					got, errGot := plat.EvaluatePoint(pf, pt, deadline, opts)
					if (errGot == nil) != (errWant == nil) {
						t.Fatalf("iter %d pt %d slack %g opts %+v: err %v vs legacy %v",
							iter, pt.Index, slack, opts, errGot, errWant)
					}
					if errGot != nil {
						continue
					}
					if got != want {
						t.Fatalf("iter %d pt %d slack %g opts %+v:\n  platform %+v\n  legacy   %+v",
							iter, pt.Index, slack, opts, got, want)
					}
				}
			}
		}
	}
}

// TestMinFeasiblePointHomogeneousParity: on a single-class platform the
// selected operating point must be the legacy minimum feasible level.
func TestMinFeasiblePointHomogeneousParity(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		s := randomSchedule(rng, 1+rng.Intn(25), 1+rng.Intn(5))
		pf, err := power.Homogeneous(s.NumProcs, m)
		if err != nil {
			t.Fatal(err)
		}
		deadline := float64(s.Makespan) / m.FMax() * (1 + rng.Float64()*4)
		lvl, errL := MinFeasibleLevel(s, m, deadline)
		pt, errP := MinFeasiblePoint(s, pf, deadline)
		if (errL == nil) != (errP == nil) {
			t.Fatalf("iter %d: err %v vs legacy %v", iter, errP, errL)
		}
		if errL != nil {
			continue
		}
		if pt.Index != lvl.Index || pt.Levels[0] != lvl {
			t.Fatalf("iter %d: point %d (%+v) != legacy level %d", iter, pt.Index, pt.Levels[0], lvl.Index)
		}
	}
}

// TestEvaluatePointHeterogeneous sanity-checks the heterogeneous accounting:
// active time is the per-class work at the realising levels, the deadline
// check fires below the makespan, points slower than the minimum feasible
// one are rejected, and repeated evaluation of a reused profile is
// deterministic.
func TestEvaluatePointHeterogeneous(t *testing.T) {
	pf := heteroPlatform(t)
	var p GapProfile
	for iter := 0; iter < 15; iter++ {
		s := heteroSchedule(t, pf, int64(iter)*31+1, 5+iter*4)
		p.ResetPlatform(s, pf)
		deadline := float64(s.Makespan) / pf.RefFMax() * 2
		min, err := MinFeasiblePoint(s, pf, deadline)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		pts, err := FeasiblePoints(s, pf, deadline)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(pts) != min.Index+1 || pts[len(pts)-1].Index != min.Index {
			t.Fatalf("iter %d: FeasiblePoints = %d points, min index %d", iter, len(pts), min.Index)
		}
		for _, pt := range pts {
			for _, opts := range []Options{{}, {PS: true}} {
				bd, err := p.EvaluatePoint(pf, pt, deadline, opts)
				if err != nil {
					t.Fatalf("iter %d pt %d: %v", iter, pt.Index, err)
				}
				if bd.Total() <= 0 || bd.ActiveTime <= 0 {
					t.Fatalf("iter %d pt %d: degenerate breakdown %+v", iter, pt.Index, bd)
				}
				again, err := p.EvaluatePoint(pf, pt, deadline, opts)
				if err != nil || again != bd {
					t.Fatalf("iter %d pt %d: non-deterministic evaluation", iter, pt.Index)
				}
			}
		}
		// A point past the minimum feasible one must miss the deadline.
		if min.Index+1 < len(pf.Points()) {
			if _, err := p.EvaluatePoint(pf, pf.Points()[min.Index+1], deadline, Options{}); !errors.Is(err, ErrDeadline) {
				t.Fatalf("iter %d: infeasible point accepted (err=%v)", iter, err)
			}
		}
		if _, err := p.EvaluatePoint(pf, pf.MaxPoint(), float64(s.Makespan)/pf.RefFMax()*0.5, Options{}); !errors.Is(err, ErrDeadline) {
			t.Fatalf("iter %d: sub-makespan deadline accepted", iter)
		}
	}
}

// TestGapProfileEvaluateZeroAllocPlatform extends the energy allocation gate
// to the heterogeneous path: EvaluatePoint on a built platform profile must
// not allocate, and ResetPlatform onto a same-shape schedule must not
// allocate once the per-class buffers are warm. The name contains
// TestGapProfileEvaluateZeroAlloc so the Makefile alloc-gate pattern covers
// it.
func TestGapProfileEvaluateZeroAllocPlatform(t *testing.T) {
	pf := heteroPlatform(t)
	s := heteroSchedule(t, pf, 3, 60)
	var p GapProfile
	p.ResetPlatform(s, pf)
	pt := pf.MaxPoint()
	deadline := float64(s.Makespan) / pf.RefFMax() * 2
	for _, opts := range []Options{{}, {PS: true}} {
		opts := opts
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := p.EvaluatePoint(pf, pt, deadline, opts); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("GapProfile.EvaluatePoint allocates %v allocs/op (PS=%v)", allocs, opts.PS)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { p.ResetPlatform(s, pf) })
	if allocs != 0 {
		t.Fatalf("warm GapProfile.ResetPlatform allocates %v allocs/op", allocs)
	}
}
