package energy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
)

func approx(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < rel
	}
	return math.Abs(got-want)/math.Abs(want) < rel
}

func buildFig4a(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("fig4a")
	weights := []int64{2, 6, 4, 4, 2}
	for _, w := range weights {
		b.AddTask(w)
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 4)
	b.AddEdge(2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// coarse scales the Fig. 4a example so that durations are in a physically
// meaningful range (weight 1 = 3.1e6 cycles = 1 ms at fmax).
func coarseFig4a(t testing.TB) *dag.Graph {
	g := buildFig4a(t)
	s, err := g.ScaleWeights(3100000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestActiveEnergyMatchesHandComputation(t *testing.T) {
	m := power.Default70nm()
	g := coarseFig4a(t)
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	lvl := m.MaxLevel()
	deadline := float64(s.Makespan) / lvl.Freq // exactly the makespan
	b, err := Evaluate(s, m, lvl, deadline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantActive := float64(g.TotalWork()) / lvl.Freq * m.LevelPower(lvl)
	if !approx(b.Active, wantActive, 1e-12) {
		t.Errorf("Active = %g, want %g", b.Active, wantActive)
	}
	// With horizon = makespan, idle time is the interior+trailing gaps
	// inside the makespan window: 3 procs x makespan - work cycles.
	wantIdleSec := (3*float64(s.Makespan) - float64(g.TotalWork())) / lvl.Freq
	if !approx(b.IdleTime, wantIdleSec, 1e-9) {
		t.Errorf("IdleTime = %g, want %g", b.IdleTime, wantIdleSec)
	}
	if !approx(b.Idle, wantIdleSec*m.IdlePower(lvl), 1e-9) {
		t.Errorf("Idle energy inconsistent")
	}
	if b.Sleep != 0 || b.Overhead != 0 || b.Shutdowns != 0 {
		t.Errorf("PS disabled but sleep/overhead nonzero: %+v", b)
	}
	if !approx(b.Total(), b.Active+b.Idle, 1e-12) {
		t.Errorf("Total mismatch")
	}
}

func TestDeadlineViolation(t *testing.T) {
	m := power.Default70nm()
	g := coarseFig4a(t)
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	lvl := m.MinLevel()
	deadline := float64(s.Makespan) / m.FMax() // only feasible at fmax
	if _, err := Evaluate(s, m, lvl, deadline, Options{}); !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
}

func TestExactFitDeadlineIsFeasible(t *testing.T) {
	m := power.Default70nm()
	g := coarseFig4a(t)
	s, err := sched.ListEDF(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range m.Levels() {
		deadline := float64(s.Makespan) / lvl.Freq
		if _, err := Evaluate(s, m, lvl, deadline, Options{}); err != nil {
			t.Errorf("exact-fit deadline infeasible at %v: %v", lvl, err)
		}
	}
}

func TestPSSleepsThroughLongGap(t *testing.T) {
	m := power.Default70nm()
	// Single task of 3.1e6 cycles, deadline 10 s: an enormous trailing gap.
	b := dag.NewBuilder("one")
	b.AddTask(3100000)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListEDF(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	lvl := m.MaxLevel()
	const deadline = 10.0
	noPS, err := Evaluate(s, m, lvl, deadline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withPS, err := Evaluate(s, m, lvl, deadline, Options{PS: true})
	if err != nil {
		t.Fatal(err)
	}
	if withPS.Shutdowns != 1 {
		t.Errorf("Shutdowns = %d, want 1", withPS.Shutdowns)
	}
	if withPS.Total() >= noPS.Total() {
		t.Errorf("PS did not help on a huge gap: %g >= %g", withPS.Total(), noPS.Total())
	}
	// Sleeping ~10s at 50µW + 483µJ overhead ~= 0.983 mJ for the gap.
	gapSec := deadline - float64(s.Makespan)/lvl.Freq
	want := gapSec*m.PSleep + m.EOverhead
	if !approx(withPS.Sleep+withPS.Overhead, want, 1e-9) {
		t.Errorf("sleep+overhead = %g, want %g", withPS.Sleep+withPS.Overhead, want)
	}
}

func TestPSKeepsShortGapIdle(t *testing.T) {
	m := power.Default70nm()
	// Two parallel tasks, one slightly shorter: a short interior gap far
	// below break-even plus trailing gaps. Deadline barely above makespan so
	// all gaps are short.
	b := dag.NewBuilder("two")
	src := b.AddTask(1000)
	a := b.AddTask(100000)
	c := b.AddTask(90000)
	b.AddEdge(src, a)
	b.AddEdge(src, c)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListEDF(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	lvl := m.MaxLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 1.001
	withPS, err := Evaluate(s, m, lvl, deadline, Options{PS: true})
	if err != nil {
		t.Fatal(err)
	}
	if withPS.Shutdowns != 0 {
		t.Errorf("Shutdowns = %d, want 0 for gaps below break-even", withPS.Shutdowns)
	}
	noPS, err := Evaluate(s, m, lvl, deadline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withPS.Total() != noPS.Total() {
		t.Errorf("PS changed energy despite no shutdowns")
	}
}

func TestIgnoreIdle(t *testing.T) {
	m := power.Default70nm()
	g := coarseFig4a(t)
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	lvl := m.CriticalLevel()
	deadline := float64(s.Makespan)/lvl.Freq + 1
	b, err := Evaluate(s, m, lvl, deadline, Options{IgnoreIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Idle != 0 || b.Sleep != 0 || b.Overhead != 0 {
		t.Errorf("IgnoreIdle left non-active terms: %+v", b)
	}
	want := float64(g.TotalWork()) * m.EnergyPerCycle(lvl)
	if !approx(b.Total(), want, 1e-12) {
		t.Errorf("Total = %g, want W*E_cycle = %g", b.Total(), want)
	}
}

func TestMinFeasibleLevel(t *testing.T) {
	m := power.Default70nm()
	g := coarseFig4a(t)
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline exactly the fmax makespan: only level 0 feasible.
	d0 := float64(s.Makespan) / m.FMax()
	lvl, err := MinFeasibleLevel(s, m, d0)
	if err != nil {
		t.Fatal(err)
	}
	if lvl.Index != 0 {
		t.Errorf("level = %v, want index 0", lvl)
	}
	// Deadline 8x: a deep stretch must be chosen, and it must be feasible.
	lvl8, err := MinFeasibleLevel(s, m, 8*d0)
	if err != nil {
		t.Fatal(err)
	}
	if lvl8.Index == 0 {
		t.Errorf("8x deadline still at max level")
	}
	if float64(s.Makespan)/lvl8.Freq > 8*d0*(1+1e-12) {
		t.Errorf("chosen level misses the deadline")
	}
	// The next slower level (if any) must miss the deadline.
	if lvl8.Index+1 < len(m.Levels()) {
		slower := m.Level(lvl8.Index + 1)
		if float64(s.Makespan)/slower.Freq <= 8*d0 {
			t.Errorf("not the minimum feasible level: %v also fits", slower)
		}
	}
	// Infeasible deadline.
	if _, err := MinFeasibleLevel(s, m, d0/2); !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
	if _, err := MinFeasibleLevel(s, m, 0); !errors.Is(err, ErrDeadline) {
		t.Errorf("zero deadline err = %v, want ErrDeadline", err)
	}
}

func TestFeasibleLevels(t *testing.T) {
	m := power.Default70nm()
	g := coarseFig4a(t)
	s, err := sched.ListEDF(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := 4 * float64(s.Makespan) / m.FMax()
	lvls, err := FeasibleLevels(s, m, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lvls) == 0 || lvls[0].Index != 0 {
		t.Fatalf("FeasibleLevels = %v", lvls)
	}
	last := lvls[len(lvls)-1]
	if float64(s.Makespan)/last.Freq > d*(1+1e-12) {
		t.Errorf("slowest feasible level misses deadline")
	}
	minLvl, err := MinFeasibleLevel(s, m, d)
	if err != nil {
		t.Fatal(err)
	}
	if last.Index != minLvl.Index {
		t.Errorf("FeasibleLevels last = %v, MinFeasibleLevel = %v", last, minLvl)
	}
}

func randomSchedule(rng *rand.Rand, n, nprocs int) *sched.Schedule {
	b := dag.NewBuilder("prop")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(4000000) + 10000))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	s, err := sched.ListEDF(g, nprocs)
	if err != nil {
		panic(err)
	}
	return s
}

// TestPropertyPSNeverHurts: at a fixed schedule, level and deadline,
// enabling PS can only reduce (or keep) the total energy, because each gap
// independently picks the cheaper of idle and sleep.
func TestPropertyPSNeverHurts(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawProcs, rawLvl uint8, slackPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng, int(rawN%20)+1, int(rawProcs%6)+1)
		lvl := m.Level(int(rawLvl) % len(m.Levels()))
		deadline := float64(s.Makespan) / lvl.Freq * (1 + float64(slackPct%200)/100)
		noPS, err1 := Evaluate(s, m, lvl, deadline, Options{})
		withPS, err2 := Evaluate(s, m, lvl, deadline, Options{PS: true})
		if err1 != nil || err2 != nil {
			return false
		}
		return withPS.Total() <= noPS.Total()*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBreakdownConsistency: all terms non-negative; time accounting
// matches the machine-seconds available; total equals the sum of parts.
func TestPropertyBreakdownConsistency(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN, rawProcs uint8, ps bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := int(rawProcs%5) + 1
		s := randomSchedule(rng, int(rawN%25)+1, nprocs)
		lvl := m.CriticalLevel()
		deadline := float64(s.Makespan)/lvl.Freq*1.5 + 0.001
		b, err := Evaluate(s, m, lvl, deadline, Options{PS: ps})
		if err != nil {
			return false
		}
		if b.Active < 0 || b.Idle < 0 || b.Sleep < 0 || b.Overhead < 0 {
			return false
		}
		if !ps && (b.Sleep != 0 || b.Overhead != 0 || b.Shutdowns != 0) {
			return false
		}
		if math.Abs(b.Total()-(b.Active+b.Idle+b.Sleep+b.Overhead)) > 1e-15 {
			return false
		}
		// Active + idle + sleep time across employed processors equals
		// procsUsed * horizon (up to horizon rounding of one cycle per gap).
		used := 0
		for p := 0; p < nprocs; p++ {
			if len(s.TasksOn(p)) > 0 {
				used++
			}
		}
		horizon := math.Trunc(deadline*lvl.Freq) / lvl.Freq
		got := b.ActiveTime + b.IdleTime + b.SleepTime
		want := float64(used) * horizon
		return math.Abs(got-want) < float64(used+1)/lvl.Freq*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEnergyMonotoneInDeadline: with PS disabled, a longer deadline
// at the same level only adds idle energy.
func TestPropertyEnergyMonotoneInDeadline(t *testing.T) {
	m := power.Default70nm()
	f := func(seed int64, rawN uint8, extra uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng, int(rawN%15)+1, 3)
		lvl := m.Level(2)
		d1 := float64(s.Makespan) / lvl.Freq
		d2 := d1 * (1 + float64(extra)/50)
		b1, err1 := Evaluate(s, m, lvl, d1, Options{})
		b2, err2 := Evaluate(s, m, lvl, d2, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return b2.Total() >= b1.Total()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Active: 1, Idle: 2, Sleep: 3, Overhead: 4, Shutdowns: 5}
	s := b.String()
	if s == "" {
		t.Error("empty String")
	}
	if b.Total() != 10 {
		t.Errorf("Total = %g, want 10", b.Total())
	}
}
