package energy

import (
	"fmt"
	"slices"

	"lamps/internal/power"
	"lamps/internal/sched"
)

// classGaps is the per-core-class slice of a platform gap profile: the
// class's busy totals plus its own sorted inner-gap and last-finish arrays
// with exact prefix sums, mirroring the homogeneous profile structure once
// per class (each class has its own power constants and break-even time, so
// gaps must be classified per class).
type classGaps struct {
	busySlot int64 // timeline cycles occupied by task slots on this class
	busyWork int64 // raw work cycles executed by this class (sum of weights)
	reserved int64 // timeline cycles held by backup slots (ResetPlatformFT)

	inner    []int64 // inner gap lengths in timeline cycles, sorted ascending
	innerSum []int64
	last     []int64 // per-employed-processor last finish, sorted ascending
	lastSum  []int64
}

// ResetPlatform re-extracts the profile from a platform schedule: the same
// walk as Reset, but gaps, last finishes and busy totals are bucketed by
// the core class of each processor. The legacy homogeneous fields are not
// touched; a profile loaded with ResetPlatform must be evaluated with
// EvaluatePoint. Buffers — including the per-class slices — are reused, so
// steady-state reuse allocates nothing.
func (p *GapProfile) ResetPlatform(s *sched.Schedule, pf *power.Platform) {
	p.makespan = s.Makespan
	nc := pf.NumClasses()
	if cap(p.classes) < nc {
		p.classes = make([]classGaps, nc)
	}
	p.classes = p.classes[:nc]
	for c := range p.classes {
		cg := &p.classes[c]
		cg.busySlot, cg.busyWork, cg.reserved = 0, 0, 0
		cg.inner = cg.inner[:0]
		cg.last = cg.last[:0]
	}
	g := s.Graph
	for proc := 0; proc < s.NumProcs; proc++ {
		tasks := s.TasksOn(proc)
		if len(tasks) == 0 {
			continue // unemployed processors are off and contribute nothing
		}
		cg := &p.classes[pf.ClassOf(proc)]
		var cursor int64
		for _, v := range tasks {
			if s.Start[v] > cursor {
				cg.inner = append(cg.inner, s.Start[v]-cursor)
			}
			cursor = s.Finish[v]
			cg.busySlot += s.Finish[v] - s.Start[v]
			cg.busyWork += g.Weight(int(v))
		}
		cg.last = append(cg.last, cursor)
	}
	for c := range p.classes {
		cg := &p.classes[c]
		slices.Sort(cg.inner)
		slices.Sort(cg.last)
		cg.innerSum = prefixSums(cg.innerSum, cg.inner)
		cg.lastSum = prefixSums(cg.lastSum, cg.last)
	}
}

// EvaluatePoint computes the energy of executing the platform-profiled
// schedule at operating point pt with the machine available until
// deadlineSec. The timeline runs at pt.TimelineFreq, so every slot of c
// timeline cycles lasts c/TimelineFreq seconds; within its slot a task
// executes its raw work cycles at its class's ladder level and the slot
// remainder (ceil rounding plus any discrete-level headroom) is charged as
// idle time at the class's idle power. Gaps are classified against each
// class's own break-even time, exactly as the homogeneous Evaluate does
// against the single model's.
//
// All cycle totals are exact int64 sums converted to seconds once per
// class, in ascending class order, so the result is bit-identical to the
// independent per-gap walk in internal/verify (PlatformEnergy).
func (p *GapProfile) EvaluatePoint(pf *power.Platform, pt power.OperatingPoint, deadlineSec float64, opts Options) (Breakdown, error) {
	var b Breakdown
	ft := pt.TimelineFreq
	makespanSec := float64(p.makespan) / ft
	if makespanSec > deadlineSec*(1+1e-12) {
		return b, fmt.Errorf("%w: makespan %.6gs > deadline %.6gs at %v", ErrDeadline, makespanSec, deadlineSec, pt)
	}
	horizon := int64(deadlineSec * ft)
	if horizon < p.makespan {
		horizon = p.makespan // guard against float truncation
	}

	for c := range p.classes {
		cg := &p.classes[c]
		if len(cg.last) == 0 {
			continue // class has no employed processor
		}
		m := pf.ClassModel(c)
		lvl := pt.Levels[c]

		// Active: the class's raw work at its ladder level.
		activeT := float64(cg.busyWork) / lvl.Freq
		b.ActiveTime += activeT
		b.Active += activeT * m.LevelPower(lvl)
		if opts.IgnoreIdle {
			continue
		}

		// Intra-slot idle: the slot time not covered by execution (ceil
		// rounding of scaled weights plus discrete-level headroom). Zero by
		// construction on a homogeneous platform at a ladder-exact point.
		pIdle := m.IdlePower(lvl)
		if intra := float64(cg.busySlot)/ft - activeT; intra > 0 {
			b.IdleTime += intra
			b.Idle += intra * pIdle
		}

		nEmp := len(cg.last)
		var idleCycles, sleepCycles int64
		shutdowns := 0
		if opts.PS {
			breakeven := m.BreakevenTime(lvl)
			i := firstAbove(cg.inner, func(g int64) bool {
				return float64(g)/ft > breakeven
			})
			idleCycles = cg.innerSum[i]
			sleepCycles = cg.innerSum[len(cg.inner)] - cg.innerSum[i]
			shutdowns = len(cg.inner) - i
			j := firstAbove(cg.last, func(lf int64) bool {
				return float64(horizon-lf)/ft <= breakeven
			})
			sleepCycles += int64(j)*horizon - cg.lastSum[j]
			idleCycles += int64(nEmp-j)*horizon - (cg.lastSum[nEmp] - cg.lastSum[j])
			shutdowns += j
		} else {
			idleCycles = cg.innerSum[len(cg.inner)] + int64(nEmp)*horizon - cg.lastSum[nEmp]
		}
		// Backup reservations are idle-but-awake in either mode; zero
		// outside the fault-tolerant resets.
		idleCycles += cg.reserved

		idleT := float64(idleCycles) / ft
		b.IdleTime += idleT
		b.Idle += idleT * pIdle
		sleepT := float64(sleepCycles) / ft
		b.SleepTime += sleepT
		b.Sleep += sleepT * m.PSleep
		b.Shutdowns += shutdowns
		b.Overhead += float64(shutdowns) * m.EOverhead
	}
	return b, nil
}

// MinFeasiblePoint returns the slowest platform operating point at which
// the schedule's timeline makespan still fits the deadline — the platform
// analogue of MinFeasibleLevel.
func MinFeasiblePoint(s *sched.Schedule, pf *power.Platform, deadlineSec float64) (power.OperatingPoint, error) {
	return MinFeasiblePointCycles(s.Makespan, pf, deadlineSec)
}

// MinFeasiblePointCycles is MinFeasiblePoint for an explicit timeline cycle
// count — the fault-tolerant engine passes the recovery makespan here.
func MinFeasiblePointCycles(makespan int64, pf *power.Platform, deadlineSec float64) (power.OperatingPoint, error) {
	if deadlineSec <= 0 {
		return power.OperatingPoint{}, fmt.Errorf("%w: non-positive deadline", ErrDeadline)
	}
	need := float64(makespan) / deadlineSec
	pt, err := pf.PointForFrequency(need)
	if err != nil {
		return power.OperatingPoint{}, fmt.Errorf("%w: need %.4g Hz for makespan %d timeline cycles in %.4gs",
			ErrDeadline, need, makespan, deadlineSec)
	}
	return pt, nil
}

// FeasiblePoints returns every platform operating point at which the
// schedule meets the deadline, fastest first — the grid the heterogeneous
// +PS sweep iterates.
func FeasiblePoints(s *sched.Schedule, pf *power.Platform, deadlineSec float64) ([]power.OperatingPoint, error) {
	return FeasiblePointsCycles(s.Makespan, pf, deadlineSec)
}

// FeasiblePointsCycles is FeasiblePoints for an explicit timeline cycle
// count.
func FeasiblePointsCycles(makespan int64, pf *power.Platform, deadlineSec float64) ([]power.OperatingPoint, error) {
	min, err := MinFeasiblePointCycles(makespan, pf, deadlineSec)
	if err != nil {
		return nil, err
	}
	return pf.Points()[:min.Index+1], nil
}
