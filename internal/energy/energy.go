// Package energy computes the total energy consumption of a static
// multiprocessor schedule executed at one discrete operating point, with or
// without the option to shut idle processors down (de Langen & Juurlink,
// Sections 3.2–3.4 and 4.3).
//
// The accounting model follows the paper exactly:
//
//   - An executing processor consumes the full power P = P_AC + P_DC + P_on.
//   - An idle (on, clock-gated) processor consumes P_DC + P_on.
//   - A sleeping processor consumes P_sleep (50 µW); every shutdown+wakeup
//     costs E_oh (483 µJ). Waking up in time is assumed possible by waking
//     the processor shortly before the end of the idle period, so shutdown
//     never delays the schedule.
//   - Processors that execute no task at all are off and consume nothing;
//     choosing how many processors to employ is the heuristics' job.
//
// With PS enabled, an idle gap of duration t is served by sleep exactly when
// E_oh + t·P_sleep < t·P_idle, i.e. when t exceeds the break-even time of
// Fig. 3; otherwise the processor stays idle.
package energy

import (
	"errors"
	"fmt"

	"lamps/internal/power"
	"lamps/internal/sched"
)

// ErrDeadline is returned when the schedule does not fit the deadline at the
// requested operating point.
var ErrDeadline = errors.New("energy: schedule misses the deadline at this level")

// Options selects the accounting variant.
type Options struct {
	// PS enables processor shutdown: idle gaps longer than the break-even
	// time are served by deep sleep at the cost of the shutdown overhead.
	PS bool
	// IgnoreIdle makes idle gaps free. Used only by the LIMIT-SF/LIMIT-MF
	// lower bounds, where idle processors are assumed to consume no energy.
	IgnoreIdle bool
}

// Breakdown itemises where the energy of a schedule goes, in joules.
type Breakdown struct {
	Active   float64 // executing tasks at full power
	Idle     float64 // on but idle (P_DC + P_on)
	Sleep    float64 // in deep sleep (P_sleep)
	Overhead float64 // shutdown + wakeup transitions (E_oh each)

	Shutdowns  int     // number of shutdown+wakeup transitions
	IdleTime   float64 // seconds spent idle (on)
	SleepTime  float64 // seconds spent sleeping
	ActiveTime float64 // processor-seconds spent executing
}

// Total returns the total energy in joules.
func (b Breakdown) Total() float64 {
	return b.Active + b.Idle + b.Sleep + b.Overhead
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total %.6g J (active %.6g, idle %.6g, sleep %.6g, overhead %.6g, %d shutdowns)",
		b.Total(), b.Active, b.Idle, b.Sleep, b.Overhead, b.Shutdowns)
}

// Evaluate computes the energy of executing schedule s at operating point
// lvl with the machine available from time 0 until deadlineSec. Schedule
// times are cycles at maximum frequency, so every interval of c cycles lasts
// c/lvl.Freq seconds. Evaluate returns ErrDeadline if the stretched makespan
// exceeds the deadline (with a one-ULP tolerance for the exact-fit case).
//
// Each idle gap is classified exactly as in the per-gap walk of Fig. 3 —
// sleep when PS is on and the gap outlasts the break-even time, idle
// otherwise — but the idle and sleep totals are summed as exact integer
// cycle counts and converted to seconds and joules once, so the result does
// not depend on gap enumeration order and is bit-identical to the O(log G)
// GapProfile path the search engine uses. Callers evaluating one schedule at
// many operating points should build a GapProfile once instead of calling
// Evaluate per level.
func Evaluate(s *sched.Schedule, m *power.Model, lvl power.Level, deadlineSec float64, opts Options) (Breakdown, error) {
	var p GapProfile
	p.Reset(s)
	return p.Evaluate(m, lvl, deadlineSec, opts)
}

// MinFeasibleLevel returns the slowest operating point at which the
// schedule's makespan still fits the deadline, i.e. the most aggressive DVS
// stretch. This is the "stretch" step of Schedule-and-Stretch.
func MinFeasibleLevel(s *sched.Schedule, m *power.Model, deadlineSec float64) (power.Level, error) {
	return MinFeasibleLevelCycles(s.Makespan, m, deadlineSec)
}

// MinFeasibleLevelCycles is MinFeasibleLevel for an explicit cycle count —
// the fault-tolerant engine passes the recovery makespan here, so the
// chosen stretch leaves room for recovery, not just for the primary
// schedule.
func MinFeasibleLevelCycles(makespan int64, m *power.Model, deadlineSec float64) (power.Level, error) {
	if deadlineSec <= 0 {
		return power.Level{}, fmt.Errorf("%w: non-positive deadline", ErrDeadline)
	}
	need := float64(makespan) / deadlineSec
	lvl, err := m.LevelForFrequency(need)
	if err != nil {
		return power.Level{}, fmt.Errorf("%w: need %.4g Hz for makespan %d cycles in %.4gs",
			ErrDeadline, need, makespan, deadlineSec)
	}
	return lvl, nil
}

// FeasibleLevels returns all operating points at which the schedule meets
// the deadline, ordered from the fastest (index 0) to the slowest feasible
// one. The frequency sweep of the +PS heuristics iterates over exactly this
// slice.
func FeasibleLevels(s *sched.Schedule, m *power.Model, deadlineSec float64) ([]power.Level, error) {
	return FeasibleLevelsCycles(s.Makespan, m, deadlineSec)
}

// FeasibleLevelsCycles is FeasibleLevels for an explicit cycle count.
func FeasibleLevelsCycles(makespan int64, m *power.Model, deadlineSec float64) ([]power.Level, error) {
	min, err := MinFeasibleLevelCycles(makespan, m, deadlineSec)
	if err != nil {
		return nil, err
	}
	return m.Levels()[:min.Index+1], nil
}
