package energy

import (
	"errors"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/sched"
)

// Edge-case tables for Evaluate/GapProfile: the degenerate schedules that
// the random property tests hit only by luck — empty graphs, a single task,
// zero slack, one processor — with expected breakdowns hand-computed from
// the model's own formulas and compared bit-for-bit (==, not approx).

func singleTaskGraph(t *testing.T, w int64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("single")
	b.AddTask(w)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chainGraph(t *testing.T, weights ...int64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("chain")
	for _, w := range weights {
		b.AddTask(w)
	}
	for i := 0; i+1 < len(weights); i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func forkJoinGraph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("forkjoin")
	b.AddTask(1_000_000)
	for _, w := range []int64{4_000_000, 2_500_000, 6_100_000} {
		b.AddTask(w)
	}
	b.AddTask(900_000)
	for mid := 1; mid <= 3; mid++ {
		b.AddEdge(0, mid)
		b.AddEdge(mid, 4)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEdgeEmptyGraphUnrepresentable: an empty schedule cannot exist — the
// dag builder refuses to build a graph with no tasks, so Evaluate never
// sees one. This pins the invariant the kernels rely on.
func TestEdgeEmptyGraphUnrepresentable(t *testing.T) {
	_, err := dag.NewBuilder("empty").Build()
	if !errors.Is(err, dag.ErrEmpty) {
		t.Fatalf("empty builder: err = %v, want dag.ErrEmpty", err)
	}
}

// TestEdgeSingleTask: one task, with and without spare processors. The
// breakdown must match the model formulas exactly, and processors that run
// nothing must contribute nothing — the 4-processor machine's breakdown is
// bit-identical to the 1-processor one.
func TestEdgeSingleTask(t *testing.T) {
	m := power.Default70nm()
	const w = int64(3_100_000)
	g := singleTaskGraph(t, w)

	for _, lvl := range m.Levels() {
		for _, slack := range []float64{1, 2.5, 40} {
			for _, ps := range []bool{false, true} {
				deadline := float64(w) / lvl.Freq * slack

				var got [2]Breakdown
				for i, nprocs := range []int{1, 4} {
					s, err := sched.ListEDF(g, nprocs)
					if err != nil {
						t.Fatal(err)
					}
					got[i], err = Evaluate(s, m, lvl, deadline, Options{PS: ps})
					if err != nil {
						t.Fatalf("lvl %d slack %g ps=%v procs=%d: %v", lvl.Index, slack, ps, nprocs, err)
					}
				}
				if got[0] != got[1] {
					t.Fatalf("lvl %d slack %g ps=%v: unemployed processors changed the breakdown:\n1p: %v\n4p: %v",
						lvl.Index, slack, ps, got[0], got[1])
				}

				// Hand computation with the kernel's exact conversions: a
				// single trailing gap of horizon-w cycles on one employed
				// processor, slept through iff PS is on and the gap exceeds
				// the break-even time.
				var want Breakdown
				want.ActiveTime = float64(w) / lvl.Freq
				want.Active = want.ActiveTime * m.LevelPower(lvl)
				horizon := int64(deadline * lvl.Freq)
				if horizon < w {
					horizon = w
				}
				gap := horizon - w
				if ps && float64(gap)/lvl.Freq > m.BreakevenTime(lvl) {
					want.SleepTime = float64(gap) / lvl.Freq
					want.Sleep = want.SleepTime * m.PSleep
					want.Shutdowns = 1
					want.Overhead = m.EOverhead
				} else {
					want.IdleTime = float64(gap) / lvl.Freq
					want.Idle = want.IdleTime * m.IdlePower(lvl)
				}
				if got[0] != want {
					t.Fatalf("lvl %d slack %g ps=%v:\ngot  %+v\nwant %+v", lvl.Index, slack, ps, got[0], want)
				}
			}
		}
	}
}

// TestEdgeZeroSlack: deadline exactly equal to the stretched makespan of a
// gap-free chain. There is no idle time, no sleep, no shutdown — the total
// is purely active energy, identically under PS and IgnoreIdle.
func TestEdgeZeroSlack(t *testing.T) {
	m := power.Default70nm()
	g := chainGraph(t, 2_000_000, 5_000_000, 1_300_000)
	for _, nprocs := range []int{1, 2} {
		s, err := sched.ListEDF(g, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		for _, lvl := range m.Levels() {
			deadline := float64(s.Makespan) / lvl.Freq
			var breakdowns []Breakdown
			for _, opts := range []Options{{}, {PS: true}, {IgnoreIdle: true}} {
				b, err := Evaluate(s, m, lvl, deadline, opts)
				if err != nil {
					t.Fatalf("procs=%d lvl %d opts=%+v: %v", nprocs, lvl.Index, opts, err)
				}
				breakdowns = append(breakdowns, b)
			}
			want := Breakdown{
				ActiveTime: float64(s.Makespan) / lvl.Freq,
			}
			want.Active = want.ActiveTime * m.LevelPower(lvl)
			for i, b := range breakdowns {
				if b != want {
					t.Fatalf("procs=%d lvl %d variant %d: zero-slack chain has non-active energy:\ngot  %+v\nwant %+v",
						nprocs, lvl.Index, i, b, want)
				}
			}
		}
	}
}

// TestEdgeOneProcDegenerate: on one processor a list schedule is
// back-to-back, so the only gap is the trailing one. Exact expected
// breakdown across all levels, PS on.
func TestEdgeOneProcDegenerate(t *testing.T) {
	m := power.Default70nm()
	g := forkJoinGraph(t)
	s, err := sched.ListEDF(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != g.TotalWork() {
		t.Fatalf("1-proc schedule has internal gaps: makespan %d, total work %d", s.Makespan, g.TotalWork())
	}
	for _, lvl := range m.Levels() {
		deadline := float64(s.Makespan) / lvl.Freq * 3
		got, err := Evaluate(s, m, lvl, deadline, Options{PS: true})
		if err != nil {
			t.Fatalf("lvl %d: %v", lvl.Index, err)
		}
		var want Breakdown
		want.ActiveTime = float64(s.Makespan) / lvl.Freq
		want.Active = want.ActiveTime * m.LevelPower(lvl)
		horizon := int64(deadline * lvl.Freq)
		if horizon < s.Makespan {
			horizon = s.Makespan
		}
		gap := horizon - s.Makespan
		if ps := float64(gap)/lvl.Freq > m.BreakevenTime(lvl); ps {
			want.SleepTime = float64(gap) / lvl.Freq
			want.Sleep = want.SleepTime * m.PSleep
			want.Shutdowns = 1
			want.Overhead = m.EOverhead
		} else {
			want.IdleTime = float64(gap) / lvl.Freq
			want.Idle = want.IdleTime * m.IdlePower(lvl)
		}
		if got != want {
			t.Fatalf("lvl %d:\ngot  %+v\nwant %+v", lvl.Index, got, want)
		}
	}
}

// TestEdgeDeadlineBelowMakespan: both the one-shot Evaluate and a reused
// GapProfile reject a deadline the schedule cannot meet, with ErrDeadline.
func TestEdgeDeadlineBelowMakespan(t *testing.T) {
	m := power.Default70nm()
	s, err := sched.ListEDF(forkJoinGraph(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	lvl := m.MaxLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 0.999
	if _, err := Evaluate(s, m, lvl, deadline, Options{}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Evaluate below makespan: err = %v, want ErrDeadline", err)
	}
	p := NewGapProfile(s)
	if _, err := p.Evaluate(m, lvl, deadline, Options{PS: true}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("GapProfile below makespan: err = %v, want ErrDeadline", err)
	}
	// A non-positive deadline is just a harder miss, not a panic.
	if _, err := Evaluate(s, m, lvl, 0, Options{}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Evaluate at deadline 0: err = %v, want ErrDeadline", err)
	}
}

// TestEdgeGapProfileReuse: one GapProfile Reset across different schedules
// must keep producing breakdowns bit-identical to fresh one-shot Evaluate
// calls, for every level and accounting variant.
func TestEdgeGapProfileReuse(t *testing.T) {
	m := power.Default70nm()
	var schedules []*sched.Schedule
	for _, nprocs := range []int{1, 2, 3} {
		s, err := sched.ListEDF(forkJoinGraph(t), nprocs)
		if err != nil {
			t.Fatal(err)
		}
		schedules = append(schedules, s)
	}
	c, err := sched.ListEDF(chainGraph(t, 700_000, 900_000), 2)
	if err != nil {
		t.Fatal(err)
	}
	schedules = append(schedules, c)

	var p GapProfile
	for si, s := range schedules {
		p.Reset(s)
		for _, lvl := range m.Levels() {
			for _, opts := range []Options{{}, {PS: true}, {IgnoreIdle: true}} {
				deadline := float64(s.Makespan) / lvl.Freq * 1.8
				want, err1 := Evaluate(s, m, lvl, deadline, opts)
				got, err2 := p.Evaluate(m, lvl, deadline, opts)
				if err1 != nil || err2 != nil {
					t.Fatalf("schedule %d lvl %d: errors %v / %v", si, lvl.Index, err1, err2)
				}
				if got != want {
					t.Fatalf("schedule %d lvl %d opts=%+v: reused profile diverged:\ngot  %+v\nwant %+v",
						si, lvl.Index, opts, got, want)
				}
			}
		}
	}
}
