package energy

import (
	"math/rand"
	"testing"

	"lamps/internal/power"
	"lamps/internal/sched"
)

// evaluatePerGapWalk is the pre-profile reference: a linear walk over every
// gap of the schedule, classifying each one independently against the
// break-even time, with the idle/sleep totals kept as exact integer cycle
// counts and converted with the same final float expressions the profile
// uses. GapProfile.Evaluate must reproduce it bit for bit.
func evaluatePerGapWalk(s *sched.Schedule, m *power.Model, lvl power.Level, deadlineSec float64, opts Options) (Breakdown, error) {
	var b Breakdown
	makespanSec := float64(s.Makespan) / lvl.Freq
	if makespanSec > deadlineSec*(1+1e-12) {
		return b, ErrDeadline
	}
	b.ActiveTime = float64(s.BusyCycles()) / lvl.Freq
	b.Active = b.ActiveTime * m.LevelPower(lvl)
	if opts.IgnoreIdle {
		return b, nil
	}
	horizon := int64(deadlineSec * lvl.Freq)
	if horizon < s.Makespan {
		horizon = s.Makespan
	}
	breakeven := m.BreakevenTime(lvl)
	var idleCycles, sleepCycles int64
	shutdowns := 0
	for _, gap := range s.Gaps(horizon) {
		g := gap.Length()
		if opts.PS && float64(g)/lvl.Freq > breakeven {
			sleepCycles += g
			shutdowns++
		} else {
			idleCycles += g
		}
	}
	b.IdleTime = float64(idleCycles) / lvl.Freq
	b.Idle = b.IdleTime * m.IdlePower(lvl)
	b.SleepTime = float64(sleepCycles) / lvl.Freq
	b.Sleep = b.SleepTime * m.PSleep
	b.Shutdowns = shutdowns
	b.Overhead = float64(shutdowns) * m.EOverhead
	return b, nil
}

func requireIdenticalBreakdowns(t *testing.T, ctx string, got, want Breakdown) {
	t.Helper()
	// Bit-identical, not approximately equal: the two paths must perform the
	// same float operations on the same exact integer totals.
	if got != want {
		t.Fatalf("%s:\n  profile   %+v\n  reference %+v", ctx, got, want)
	}
}

// TestGapProfileParity is the energy half of the kernel's differential
// parity test: on random schedules, at every operating point, with PS on and
// off, with IgnoreIdle, and across deadlines from exact-fit to 8x slack, the
// O(log G) GapProfile evaluation must be bit-identical — every Breakdown
// field, shutdown counts included — to the linear per-gap reference walk and
// to the package-level Evaluate. The same profile is Reset across schedules
// to cover buffer reuse.
func TestGapProfileParity(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(42))
	var p GapProfile
	for iter := 0; iter < 50; iter++ {
		s := randomSchedule(rng, 1+rng.Intn(30), 1+rng.Intn(6))
		p.Reset(s)
		for _, lvl := range m.Levels() {
			base := float64(s.Makespan) / lvl.Freq
			for _, slack := range []float64{1, 1.0001, 1.5, 2, 8} {
				deadline := base * slack
				for _, opts := range []Options{{}, {PS: true}, {IgnoreIdle: true}} {
					got, errGot := p.Evaluate(m, lvl, deadline, opts)
					want, errWant := evaluatePerGapWalk(s, m, lvl, deadline, opts)
					if (errGot == nil) != (errWant == nil) {
						t.Fatalf("iter %d lvl %d slack %g opts %+v: err %v vs reference %v",
							iter, lvl.Index, slack, opts, errGot, errWant)
					}
					if errGot != nil {
						continue
					}
					requireIdenticalBreakdowns(t, "profile vs per-gap walk", got, want)

					legacy, err := Evaluate(s, m, lvl, deadline, opts)
					if err != nil {
						t.Fatalf("iter %d: Evaluate: %v", iter, err)
					}
					requireIdenticalBreakdowns(t, "package Evaluate vs per-gap walk", legacy, want)
				}
			}
		}
	}
}

// TestGapProfileResetReuse: a profile Reset onto a new schedule must be
// indistinguishable from a freshly built one.
func TestGapProfileResetReuse(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(7))
	reused := new(GapProfile)
	for iter := 0; iter < 20; iter++ {
		s := randomSchedule(rng, 1+rng.Intn(40), 1+rng.Intn(5))
		reused.Reset(s)
		fresh := NewGapProfile(s)
		lvl := m.Level(rng.Intn(len(m.Levels())))
		deadline := float64(s.Makespan) / lvl.Freq * (1 + rng.Float64()*4)
		for _, opts := range []Options{{}, {PS: true}} {
			a, err1 := reused.Evaluate(m, lvl, deadline, opts)
			b, err2 := fresh.Evaluate(m, lvl, deadline, opts)
			if err1 != nil || err2 != nil {
				t.Fatalf("iter %d: %v / %v", iter, err1, err2)
			}
			requireIdenticalBreakdowns(t, "reused vs fresh profile", a, b)
		}
	}
}

// TestGapProfileEvaluateZeroAlloc is the energy half of the CI allocation
// gate: Evaluate on a built profile must not allocate, and Reset onto a
// same-shape schedule must not allocate once the buffers are warm.
func TestGapProfileEvaluateZeroAlloc(t *testing.T) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(3))
	s := randomSchedule(rng, 40, 4)
	p := NewGapProfile(s)
	lvl := m.CriticalLevel()
	deadline := float64(s.Makespan) / lvl.Freq * 2
	for _, opts := range []Options{{}, {PS: true}} {
		opts := opts
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := p.Evaluate(m, lvl, deadline, opts); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("GapProfile.Evaluate allocates %v allocs/op (PS=%v)", allocs, opts.PS)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { p.Reset(s) })
	if allocs != 0 {
		t.Fatalf("warm GapProfile.Reset allocates %v allocs/op", allocs)
	}
}

// BenchmarkEvaluatePerGapWalk is the "before" shape of a +PS level sweep:
// one linear gap walk per operating point.
func BenchmarkEvaluatePerGapWalk(b *testing.B) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(11))
	s := randomSchedule(rng, 200, 8)
	deadlines := make([]float64, len(m.Levels()))
	for i, lvl := range m.Levels() {
		deadlines[i] = float64(s.Makespan) / lvl.Freq * 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, lvl := range m.Levels() {
			if _, err := evaluatePerGapWalk(s, m, lvl, deadlines[j], Options{PS: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGapProfileSweep is the "after" shape: profile once, then one
// O(log G) evaluation per operating point.
func BenchmarkGapProfileSweep(b *testing.B) {
	m := power.Default70nm()
	rng := rand.New(rand.NewSource(11))
	s := randomSchedule(rng, 200, 8)
	deadlines := make([]float64, len(m.Levels()))
	for i, lvl := range m.Levels() {
		deadlines[i] = float64(s.Makespan) / lvl.Freq * 2
	}
	var p GapProfile
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset(s)
		for j, lvl := range m.Levels() {
			if _, err := p.Evaluate(m, lvl, deadlines[j], Options{PS: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
