package stg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse throws arbitrary bytes at the STG parser: it must never panic,
// and whenever it accepts an input, the resulting graph must satisfy every
// structural invariant and survive a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("0\n0 0 0\n1 0 1 0\n")
	f.Add("1\n0 0 0\n1 5 1 0\n2 0 1 1\n")
	f.Add("2\n 0 0 0\n 1 7 1 0\n 2 0 1 1\n 3 9 1 2\n")
	f.Add("# only a comment\n")
	f.Add("3 4\n")
	f.Add("9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Parse(strings.NewReader(in), "fuzz")
		if err != nil {
			return // rejection is always fine
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("cannot re-serialise accepted graph: %v", err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()), "fuzz2")
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumTasks() != g.NumTasks() || back.TotalWork() != g.TotalWork() ||
			back.CriticalPathLength() != g.CriticalPathLength() {
			t.Fatalf("round trip changed the graph")
		}
	})
}
