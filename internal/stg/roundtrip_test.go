package stg

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"lamps/internal/dag"
	"lamps/internal/graphhash"
	"lamps/internal/taskgen"
)

// TestWriteParseRoundTripRandomGraphs is the STG round-trip property test:
// for random graphs from every taskgen family, write→parse→write must be
// byte-identical, and the parsed graph must be structurally identical to
// the original — same canonical graphhash digest, which covers weights and
// adjacency exactly (names and labels are presentation metadata the STG
// format does not carry anyway).
//
// Failures are promoted into the FuzzParse seed corpus under
// testdata/fuzz/FuzzParse, so once a shrinking input has been found it is
// pinned forever by `go test -run '^Fuzz'`.
func TestWriteParseRoundTripRandomGraphs(t *testing.T) {
	for i := 0; i < 48; i++ {
		size := 4 + 5*(i%9)
		seed := int64(1000 + 31*i)
		g, err := taskgen.Member(size, i, seed)
		if err != nil {
			t.Fatalf("taskgen.Member(%d, %d, %d): %v", size, i, seed, err)
		}

		var first bytes.Buffer
		if err := Write(&first, g); err != nil {
			t.Fatalf("graph %d: Write: %v", i, err)
		}
		parsed, err := Parse(bytes.NewReader(first.Bytes()), g.Name())
		if err != nil {
			promoteToCorpus(t, fmt.Sprintf("roundtrip-parse-%d", i), first.String())
			t.Fatalf("graph %d: Parse rejected Write's output: %v\n%s", i, err, first.String())
		}

		hashOrig := structuralDigest(g)
		hashBack := structuralDigest(parsed)
		if hashOrig != hashBack {
			promoteToCorpus(t, fmt.Sprintf("roundtrip-hash-%d", i), first.String())
			t.Fatalf("graph %d: parse changed the structure: digest %s -> %s", i, hashOrig, hashBack)
		}

		var second bytes.Buffer
		if err := Write(&second, parsed); err != nil {
			t.Fatalf("graph %d: second Write: %v", i, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			promoteToCorpus(t, fmt.Sprintf("roundtrip-bytes-%d", i), first.String())
			t.Fatalf("graph %d: write→parse→write not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
				i, first.String(), second.String())
		}
	}
}

// structuralDigest is the canonical problem digest with fixed non-graph
// inputs, i.e. a pure structure hash (graphhash excludes names and labels).
func structuralDigest(g *dag.Graph) string {
	return graphhash.Sum(graphhash.Problem{Graph: g, Deadline: 1, Approach: "roundtrip"})
}

// promoteToCorpus writes a failing input as a `go test fuzz v1` seed file
// in the FuzzParse corpus, so the regression is replayed by every future
// `go test -run '^Fuzz'` (and shrunk further by nightly fuzzing).
func promoteToCorpus(t *testing.T, name, input string) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("cannot create corpus dir: %v", err)
		return
	}
	body := "go test fuzz v1\nstring(" + strconv.Quote(input) + ")\n"
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("cannot promote failure into corpus: %v", err)
		return
	}
	t.Logf("failing input promoted into %s", path)
}
