package stg

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
)

const sample = `
# A small STG graph: 3 real tasks in a chain plus a parallel one.
3
     0       0     0
     1      10     1      0
     2      20     1      1
     3       5     1      0
     4       0     2      2  3
`

func TestParseSample(t *testing.T) {
	g, err := Parse(strings.NewReader(sample), "sample")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.Name() != "sample" {
		t.Errorf("Name = %q", g.Name())
	}
	if g.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d, want 3 (dummies spliced)", g.NumTasks())
	}
	// Dummy-derived edges must be gone; only 1->2 remains (STG ids), i.e.
	// dag ids 0->1.
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.TotalWork() != 35 {
		t.Errorf("TotalWork = %d, want 35", g.TotalWork())
	}
	if g.CriticalPathLength() != 30 {
		t.Errorf("CPL = %d, want 30", g.CriticalPathLength())
	}
}

func TestParseDummyChainSplice(t *testing.T) {
	// A zero-weight task in the middle: 1 -> dummy(2) -> 3 must become a
	// direct edge 1 -> 3.
	const in = `
2
 0 0 0
 1 7 1 0
 2 0 1 1
 3 9 1 2
`
	g, err := Parse(strings.NewReader(in), "chain")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumTasks() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d tasks, %d edges; want 2 and 1", g.NumTasks(), g.NumEdges())
	}
	if g.CriticalPathLength() != 16 {
		t.Errorf("CPL = %d, want 16", g.CriticalPathLength())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x\n"},
		{"negative count", "-1\n"},
		{"multi-field header", "3 4\n"},
		{"truncated", "2\n0 0 0\n"},
		{"short record", "0\n0 0\n1 0 0\n"},
		{"bad id", "0\n9 0 0\n0 0 0\n"},
		{"dup id", "0\n0 0 0\n0 0 0\n"},
		{"negative weight", "0\n0 -5 0\n1 0 1 0\n"},
		{"pred count mismatch", "0\n0 0 2 1\n1 0 1 0\n"},
		{"pred out of range", "0\n0 0 0\n1 0 1 9\n"},
		{"all dummies", "0\n0 0 0\n1 0 1 0\n"},
		{"self pred cycle", "1\n0 0 0\n1 5 1 1\n2 0 1 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in), tc.name)
			if err == nil {
				t.Errorf("Parse succeeded on malformed input")
			}
		})
	}
}

func TestParseRejectsCycleThroughRealTasks(t *testing.T) {
	const in = `
2
 0 0 0
 1 5 1 2
 2 5 1 1
 3 0 1 2
`
	_, err := Parse(strings.NewReader(in), "cyc")
	if err == nil {
		t.Fatal("Parse accepted a cyclic graph")
	}
	if !errors.Is(err, dag.ErrCycle) {
		t.Errorf("err = %v, want dag.ErrCycle", err)
	}
}

func randomGraph(rng *rand.Rand, n int) *dag.Graph {
	b := dag.NewBuilder("roundtrip")
	for i := 0; i < n; i++ {
		b.AddTask(int64(rng.Intn(300) + 1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(i, j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, int(rawN%40)+1)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()), "roundtrip")
		if err != nil {
			t.Logf("Parse: %v\n%s", err, buf.String())
			return false
		}
		if back.NumTasks() != g.NumTasks() ||
			back.NumEdges() != g.NumEdges() ||
			back.TotalWork() != g.TotalWork() ||
			back.CriticalPathLength() != g.CriticalPathLength() {
			t.Logf("round trip mismatch: tasks %d/%d edges %d/%d",
				back.NumTasks(), g.NumTasks(), back.NumEdges(), g.NumEdges())
			return false
		}
		for v := 0; v < g.NumTasks(); v++ {
			if back.Weight(v) != g.Weight(v) {
				return false
			}
			bp, gp := back.Preds(v), g.Preds(v)
			if len(bp) != len(gp) {
				return false
			}
			for i := range bp {
				if bp[i] != gp[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestWriteFormatHasDummies(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.TrimSpace(lines[0]) != "5" {
		t.Errorf("header = %q, want 5", lines[0])
	}
	// 1 header + 7 task lines + 1 comment.
	if len(lines) != 9 {
		t.Errorf("got %d lines, want 9:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[len(lines)-1], "#") {
		t.Errorf("missing trailing comment")
	}
}

func TestParseRejectsHugeTaskCount(t *testing.T) {
	// Regression for a fuzzing find: an absurd header count must be
	// rejected before any proportional allocation happens.
	if _, err := Parse(strings.NewReader("999999999999\n"), "huge"); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}
