// Package stg reads and writes task graphs in the Standard Task Graph Set
// format of Kasahara et al. (http://www.kasahara.elec.waseda.ac.jp/schedule/),
// the public benchmark set used in the paper's evaluation.
//
// An STG file describes a graph of n tasks plus two dummy tasks (an entry
// task 0 and an exit task n+1, both with processing time 0):
//
//	n
//	taskno  processing-time  #predecessors  pred1 pred2 ...
//	...     (n+2 such lines)
//
// Lines whose first non-blank character is '#' are comments. The dummy
// entry/exit tasks (and any other zero-weight task) are spliced out on read,
// because they only encode precedence, and are re-added on write.
package stg

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lamps/internal/dag"
)

// ErrFormat is returned for malformed STG input.
var ErrFormat = errors.New("stg: malformed input")

// Parse reads one task graph in STG format. The name is attached to the
// returned graph.
func Parse(r io.Reader, name string) (*dag.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	fields, err := nextRecord(sc)
	if err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: header line %q", ErrFormat, strings.Join(fields, " "))
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: task count %q", ErrFormat, fields[0])
	}
	// Bound the declared count before allocating anything proportional to
	// it: a corrupt or hostile header must not exhaust memory. The largest
	// graphs in the Standard Task Graph Set have 5000 tasks.
	const maxTasks = 2_000_000
	if n > maxTasks {
		return nil, fmt.Errorf("%w: task count %d exceeds the %d limit", ErrFormat, n, maxTasks)
	}
	total := n + 2 // including dummy entry and exit

	weights := make([]int64, total)
	preds := make([][]int, total)
	seen := make([]bool, total)
	for i := 0; i < total; i++ {
		fields, err := nextRecord(sc)
		if err != nil {
			return nil, fmt.Errorf("%w: expected %d task records, got %d", ErrFormat, total, i)
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("%w: short task record %q", ErrFormat, strings.Join(fields, " "))
		}
		id, err1 := strconv.Atoi(fields[0])
		w, err2 := strconv.ParseInt(fields[1], 10, 64)
		np, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: task record %q", ErrFormat, strings.Join(fields, " "))
		}
		if id < 0 || id >= total {
			return nil, fmt.Errorf("%w: task id %d out of range [0,%d)", ErrFormat, id, total)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: duplicate task id %d", ErrFormat, id)
		}
		seen[id] = true
		if w < 0 {
			return nil, fmt.Errorf("%w: negative weight on task %d", ErrFormat, id)
		}
		if np < 0 || len(fields) != 3+np {
			return nil, fmt.Errorf("%w: task %d declares %d predecessors but lists %d",
				ErrFormat, id, np, len(fields)-3)
		}
		weights[id] = w
		for _, pf := range fields[3:] {
			p, err := strconv.Atoi(pf)
			if err != nil || p < 0 || p >= total {
				return nil, fmt.Errorf("%w: predecessor %q of task %d", ErrFormat, pf, id)
			}
			preds[id] = append(preds[id], p)
		}
	}
	return assemble(name, weights, preds)
}

// assemble splices out zero-weight tasks (connecting their predecessors to
// their successors) and builds the dag.Graph.
func assemble(name string, weights []int64, preds [][]int) (*dag.Graph, error) {
	total := len(weights)
	succs := make([][]int, total)
	for v, ps := range preds {
		for _, p := range ps {
			succs[p] = append(succs[p], v)
		}
	}
	// Splice zero-weight tasks in an order that handles chains of dummies:
	// repeatedly rewire until no zero-weight task has edges. Since the graph
	// is a DAG, processing in any order and re-deriving adjacency works.
	id := make([]int, total) // STG id -> dag index, -1 for dummies
	b := dag.NewBuilder(name)
	for v := 0; v < total; v++ {
		if weights[v] > 0 {
			id[v] = b.AddTask(weights[v])
		} else {
			id[v] = -1
		}
	}
	if b.NumTasks() == 0 {
		return nil, fmt.Errorf("%w: graph has no non-dummy tasks", ErrFormat)
	}
	// For every real task, find its real predecessors by walking through
	// dummy chains.
	edgeSeen := make(map[[2]int]bool)
	var realPreds func(v int, out map[int]bool, visiting map[int]bool) error
	realPreds = func(v int, out map[int]bool, visiting map[int]bool) error {
		for _, p := range preds[v] {
			if weights[p] > 0 {
				out[p] = true
				continue
			}
			if visiting[p] {
				return fmt.Errorf("%w: cycle through dummy task %d", ErrFormat, p)
			}
			visiting[p] = true
			if err := realPreds(p, out, visiting); err != nil {
				return err
			}
			delete(visiting, p)
		}
		return nil
	}
	for v := 0; v < total; v++ {
		if weights[v] == 0 {
			continue
		}
		out := make(map[int]bool)
		if err := realPreds(v, out, map[int]bool{}); err != nil {
			return nil, err
		}
		ps := make([]int, 0, len(out))
		for p := range out {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		for _, p := range ps {
			key := [2]int{id[p], id[v]}
			if !edgeSeen[key] {
				edgeSeen[key] = true
				b.AddEdge(id[p], id[v])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("stg: %w", err)
	}
	return g, nil
}

// nextRecord returns the fields of the next non-empty, non-comment line.
func nextRecord(sc *bufio.Scanner) ([]string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w: unexpected end of input", ErrFormat)
}

// Write emits the graph in STG format, adding the conventional dummy entry
// and exit tasks: the entry precedes every source and every sink precedes
// the exit.
func Write(w io.Writer, g *dag.Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumTasks()
	fmt.Fprintf(bw, "%d\n", n)
	// Dummy entry: id 0, no predecessors.
	fmt.Fprintf(bw, "%6d %7d %5d\n", 0, 0, 0)
	for v := 0; v < n; v++ {
		preds := g.Preds(v)
		fmt.Fprintf(bw, "%6d %7d %5d", v+1, g.Weight(v), max(1, len(preds)))
		if len(preds) == 0 {
			fmt.Fprintf(bw, " %5d", 0) // the dummy entry
		}
		for _, p := range preds {
			fmt.Fprintf(bw, " %5d", p+1)
		}
		fmt.Fprintln(bw)
	}
	// Dummy exit: id n+1, preceded by every sink.
	sinks := g.Sinks()
	fmt.Fprintf(bw, "%6d %7d %5d", n+1, 0, len(sinks))
	for _, s := range sinks {
		fmt.Fprintf(bw, " %5d", s+1)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "# generated by lamps (critical path %d, total work %d)\n",
		g.CriticalPathLength(), g.TotalWork())
	return bw.Flush()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
