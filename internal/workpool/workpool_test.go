package workpool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 57
		var hits [57]int32
		err := Map(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapReturnsError(t *testing.T) {
	boom := errors.New("boom")
	err := Map(10, 4, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

// TestMapStopsDispatchingAfterError is the regression test for the
// keep-feeding bug: after the first error the feed loop must stop handing
// out new indices rather than burning through the whole range. fn(0) fails
// immediately while every other index costs a millisecond, so a regression
// (all 64 indices dispatched) is clearly separated from the fixed behaviour
// (the few indices already in flight).
func TestMapStopsDispatchingAfterError(t *testing.T) {
	boom := errors.New("boom")
	const n = 64
	var ran int32
	err := Map(n, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := atomic.LoadInt32(&ran); got > n/2 {
		t.Errorf("%d indices ran after an immediate error, want far fewer than %d", got, n)
	}
}

func TestMapCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 100
	var ran int32
	err := MapCtx(ctx, n, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			cancel() // cancel mid-flight: the feed must stop
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got > n/2 {
		t.Errorf("%d indices ran after cancellation, want far fewer than %d", got, n)
	}
}

// TestMapCtxPreCancelled: a context that is already done must prevent any
// dispatch, on both the serial and the parallel path.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := MapCtx(ctx, 10, workers, func(i int) error {
			t.Errorf("workers=%d: fn(%d) ran despite a cancelled context", workers, i)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMapCtxCompletesWithoutCancellation(t *testing.T) {
	var hits [40]int32
	err := MapCtx(context.Background(), len(hits), 8, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d ran %d times", i, h)
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	if err := Map(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Errorf("err = %v on empty range", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	if p.Cap() != workers {
		t.Fatalf("Cap() = %d, want %d", p.Cap(), workers)
	}
	var cur, peak int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func() {
				c := atomic.AddInt32(&cur, 1)
				for {
					old := atomic.LoadInt32(&peak)
					if c <= old || atomic.CompareAndSwapInt32(&peak, old, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt32(&cur, -1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt32(&peak); got > workers {
		t.Errorf("peak concurrency %d exceeds pool cap %d", got, workers)
	}
	if p.InFlight() != 0 {
		t.Errorf("InFlight() = %d after drain", p.InFlight())
	}
}

func TestPoolRespectsContext(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() {
		close(started)
		<-release
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Do(ctx, func() { t.Error("fn ran despite cancelled context") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(release)
}
