package workpool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 57
		var hits [57]int32
		err := Map(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapReturnsError(t *testing.T) {
	boom := errors.New("boom")
	err := Map(10, 4, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestMapZeroItems(t *testing.T) {
	if err := Map(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Errorf("err = %v on empty range", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	if p.Cap() != workers {
		t.Fatalf("Cap() = %d, want %d", p.Cap(), workers)
	}
	var cur, peak int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func() {
				c := atomic.AddInt32(&cur, 1)
				for {
					old := atomic.LoadInt32(&peak)
					if c <= old || atomic.CompareAndSwapInt32(&peak, old, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt32(&cur, -1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt32(&peak); got > workers {
		t.Errorf("peak concurrency %d exceeds pool cap %d", got, workers)
	}
	if p.InFlight() != 0 {
		t.Errorf("InFlight() = %d after drain", p.InFlight())
	}
}

func TestPoolRespectsContext(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() {
		close(started)
		<-release
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Do(ctx, func() { t.Error("fn ran despite cancelled context") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(release)
}
