// Package workpool provides bounded-concurrency primitives shared by the
// batch experiment harness and the serving layer: Map runs a fixed index
// range on a bounded number of goroutines (the batch shape), and Pool
// bounds the number of concurrently executing submissions over the lifetime
// of a long-running process (the serving shape).
package workpool

import (
	"context"
	"runtime"
	"sync"
)

// Map runs fn(i) for every i in [0, n) on up to workers goroutines
// (0 = GOMAXPROCS) and returns the first error. Callers write result slot i
// from fn(i) only, so no further synchronisation is needed and output order
// stays deterministic regardless of scheduling.
func Map(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Pool bounds the number of concurrently executing submissions. Unlike Map,
// which owns a whole index range, a Pool serves independent callers arriving
// over time — HTTP requests, queue consumers — and applies backpressure by
// making them wait for a slot. The zero value is not usable; create one with
// NewPool. A Pool never shuts down on its own: it holds no goroutines, only
// permits.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting at most workers concurrent submissions
// (0 or negative = GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Cap returns the maximum number of concurrent submissions.
func (p *Pool) Cap() int { return cap(p.sem) }

// InFlight returns the number of currently executing submissions.
func (p *Pool) InFlight() int { return len(p.sem) }

// Do runs fn as soon as a worker slot is free, blocking until then. It
// returns ctx.Err() without running fn when the context is cancelled first —
// the caller's deadline bounds the queueing time, not only the run time.
func (p *Pool) Do(ctx context.Context, fn func()) error {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}
