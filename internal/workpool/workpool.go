// Package workpool provides bounded-concurrency primitives shared by the
// batch experiment harness and the serving layer: Map runs a fixed index
// range on a bounded number of goroutines (the batch shape), and Pool
// bounds the number of concurrently executing submissions over the lifetime
// of a long-running process (the serving shape).
package workpool

import (
	"context"
	"runtime"
	"sync"
)

// Map runs fn(i) for every i in [0, n) on up to workers goroutines
// (0 = GOMAXPROCS) and returns the first error. After the first error no new
// indices are dispatched; indices already handed to a worker still run to
// completion. Callers write result slot i from fn(i) only, so no further
// synchronisation is needed and output order stays deterministic regardless
// of scheduling.
func Map(n, workers int, fn func(i int) error) error {
	return MapCtx(context.Background(), n, workers, fn)
}

// MapCtx is Map with context cancellation: the feed loop stops dispatching
// new indices as soon as ctx is done (or fn returns an error), waits for the
// in-flight indices to finish, and returns ctx.Err() (or the first fn
// error, whichever came first). fn itself is never interrupted mid-call.
func MapCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
		stop     = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(stop)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					fail(err)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		// Check for a recorded error or cancellation before blocking on a
		// send: a worker may have failed while the feed was parked.
		select {
		case <-stop:
			break feed
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		default:
		}
		select {
		case next <- i:
		case <-stop:
			break feed
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Pool bounds the number of concurrently executing submissions. Unlike Map,
// which owns a whole index range, a Pool serves independent callers arriving
// over time — HTTP requests, queue consumers — and applies backpressure by
// making them wait for a slot. The zero value is not usable; create one with
// NewPool. A Pool never shuts down on its own: it holds no goroutines, only
// permits.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting at most workers concurrent submissions
// (0 or negative = GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Cap returns the maximum number of concurrent submissions.
func (p *Pool) Cap() int { return cap(p.sem) }

// InFlight returns the number of currently executing submissions.
func (p *Pool) InFlight() int { return len(p.sem) }

// Do runs fn as soon as a worker slot is free, blocking until then. It
// returns ctx.Err() without running fn when the context is cancelled first —
// the caller's deadline bounds the queueing time, not only the run time.
func (p *Pool) Do(ctx context.Context, fn func()) error {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}
