// Package taskgen generates task graphs for the experiments. It provides
// three families of random DAG generators in the style of the Standard Task
// Graph Set (layered, ordered-Gnp and series-parallel, all with integer
// weights uniform in 1..300), plus a profile-matched generator that
// synthesises graphs with a prescribed node count, critical path length and
// total work — used to stand in for the STG application graphs fpppp, robot
// and sparse, whose aggregate characteristics the paper lists in Table 2.
//
// All generators are deterministic functions of their seed.
package taskgen

import (
	"fmt"
	"math/rand"

	"lamps/internal/dag"
)

// MaxWeight is the maximum task weight of the Standard Task Graph Set;
// weights are integers uniform in [1, MaxWeight].
const MaxWeight = 300

// CoarseGrainCycles is the paper's coarse-grain scaling: an STG weight of 1
// corresponds to 3.1e6 cycles (1 ms at the maximum frequency of 3.1 GHz).
const CoarseGrainCycles = 3_100_000

// FineGrainCycles is the fine-grain scaling: an STG weight of 1 corresponds
// to 3.1e4 cycles (10 µs at maximum frequency).
const FineGrainCycles = 31_000

// Layered generates a random layered DAG: tasks are distributed over layers
// and edges connect tasks of earlier layers to tasks of strictly later
// layers within a limited span. This mimics the dominant generation method
// of the Standard Task Graph Set.
type Layered struct {
	Nodes    int     // number of tasks (>= 1)
	Layers   int     // number of layers (0 = pick automatically)
	EdgeProb float64 // probability of an edge between span-compatible pairs
	Span     int     // maximum layer distance of an edge (0 = 2)
}

// Generate builds the graph with the given seed.
func (l Layered) Generate(seed int64) (*dag.Graph, error) {
	if l.Nodes < 1 {
		return nil, fmt.Errorf("taskgen: Layered.Nodes = %d", l.Nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	layers := l.Layers
	if layers <= 0 {
		layers = 2 + rng.Intn(maxInt(2, l.Nodes/4))
	}
	if layers > l.Nodes {
		layers = l.Nodes
	}
	span := l.Span
	if span <= 0 {
		span = 2
	}
	prob := l.EdgeProb
	if prob <= 0 {
		prob = 0.5
	}

	b := dag.NewBuilder(fmt.Sprintf("layered%d-s%d", l.Nodes, seed))
	// Assign each task to a layer; guarantee every layer is non-empty by
	// seeding one task per layer first.
	layerOf := make([]int, l.Nodes)
	for i := 0; i < l.Nodes; i++ {
		if i < layers {
			layerOf[i] = i
		} else {
			layerOf[i] = rng.Intn(layers)
		}
	}
	byLayer := make([][]int, layers)
	for i := 0; i < l.Nodes; i++ {
		b.AddTask(int64(rng.Intn(MaxWeight) + 1))
		byLayer[layerOf[i]] = append(byLayer[layerOf[i]], i)
	}
	for from := 0; from < layers-1; from++ {
		for to := from + 1; to <= from+span && to < layers; to++ {
			for _, u := range byLayer[from] {
				for _, v := range byLayer[to] {
					if rng.Float64() < prob/float64(to-from) {
						b.AddEdge(u, v)
					}
				}
			}
		}
	}
	return b.Build()
}

// OrderedGnp generates a DAG by flipping a biased coin for every ordered
// pair (i, j) with i < j, the classic G(n, p) construction restricted to a
// topological order.
type OrderedGnp struct {
	Nodes    int
	EdgeProb float64
}

// Generate builds the graph with the given seed.
func (o OrderedGnp) Generate(seed int64) (*dag.Graph, error) {
	if o.Nodes < 1 {
		return nil, fmt.Errorf("taskgen: OrderedGnp.Nodes = %d", o.Nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("gnp%d-s%d", o.Nodes, seed))
	for i := 0; i < o.Nodes; i++ {
		b.AddTask(int64(rng.Intn(MaxWeight) + 1))
	}
	for i := 0; i < o.Nodes; i++ {
		for j := i + 1; j < o.Nodes; j++ {
			if rng.Float64() < o.EdgeProb {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// SeriesParallel generates a random series-parallel DAG by recursive
// series/parallel composition, a common shape for pipelined media workloads.
type SeriesParallel struct {
	Nodes int
}

// Generate builds the graph with the given seed.
func (sp SeriesParallel) Generate(seed int64) (*dag.Graph, error) {
	if sp.Nodes < 1 {
		return nil, fmt.Errorf("taskgen: SeriesParallel.Nodes = %d", sp.Nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("sp%d-s%d", sp.Nodes, seed))

	// compose builds a sub-DAG with n tasks and returns its entry and exit
	// task sets (tasks with no internal preds/succs).
	var compose func(n int) (entries, exits []int)
	compose = func(n int) ([]int, []int) {
		if n == 1 {
			v := b.AddTask(int64(rng.Intn(MaxWeight) + 1))
			return []int{v}, []int{v}
		}
		k := 1 + rng.Intn(n-1) // split into k and n-k
		if rng.Intn(2) == 0 {
			// Series: every exit of the first part precedes every entry of
			// the second.
			e1, x1 := compose(k)
			e2, x2 := compose(n - k)
			for _, u := range x1 {
				for _, v := range e2 {
					b.AddEdge(u, v)
				}
			}
			return e1, x2
		}
		// Parallel: union of both parts.
		e1, x1 := compose(k)
		e2, x2 := compose(n - k)
		return append(e1, e2...), append(x1, x2...)
	}
	compose(sp.Nodes)
	return b.Build()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
