package taskgen

import (
	"math"
	"testing"
	"testing/quick"

	"lamps/internal/dag"
)

func TestLayeredBasic(t *testing.T) {
	g, err := Layered{Nodes: 100, EdgeProb: 0.5}.Generate(1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumTasks() != 100 {
		t.Errorf("NumTasks = %d", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	for v := 0; v < g.NumTasks(); v++ {
		if w := g.Weight(v); w < 1 || w > MaxWeight {
			t.Errorf("weight %d out of [1,%d]", w, MaxWeight)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := (Layered{Nodes: 0}).Generate(1); err == nil {
		t.Error("Layered: no error for zero nodes")
	}
	if _, err := (OrderedGnp{Nodes: -1}).Generate(1); err == nil {
		t.Error("OrderedGnp: no error for negative nodes")
	}
	if _, err := (SeriesParallel{Nodes: 0}).Generate(1); err == nil {
		t.Error("SeriesParallel: no error for zero nodes")
	}
}

func TestProfileErrors(t *testing.T) {
	cases := []Profile{
		{Name: "zero nodes", Nodes: 0, CriticalPath: 10, TotalWork: 10},
		{Name: "work below cpl", Nodes: 5, CriticalPath: 100, TotalWork: 50},
		{Name: "work below nodes", Nodes: 50, CriticalPath: 10, TotalWork: 20},
		{Name: "residual too small", Nodes: 400, CriticalPath: 350, TotalWork: 600},
	}
	for _, p := range cases {
		if _, err := p.Generate(1); err == nil {
			t.Errorf("%s: no error", p.Name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func(int64) (*dag.Graph, error){
		"layered": Layered{Nodes: 60, EdgeProb: 0.4}.Generate,
		"gnp":     OrderedGnp{Nodes: 60, EdgeProb: 0.1}.Generate,
		"sp":      SeriesParallel{Nodes: 60}.Generate,
		"profile": Profile{Name: "p", Nodes: 60, Edges: 100, CriticalPath: 500, TotalWork: 2000}.Generate,
	}
	for name, gen := range gens {
		a, err := gen(42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := gen(42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NumTasks() != b.NumTasks() || a.NumEdges() != b.NumEdges() ||
			a.CriticalPathLength() != b.CriticalPathLength() || a.TotalWork() != b.TotalWork() {
			t.Errorf("%s: not deterministic", name)
		}
	}
}

// TestTable2ProfilesExact verifies that the synthetic application graphs
// reproduce the Table 2 aggregates: node count, critical path and total
// work exactly, edge count within 10%.
func TestTable2ProfilesExact(t *testing.T) {
	for _, p := range Table2Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := p.Generate(1)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if g.NumTasks() != p.Nodes {
				t.Errorf("Nodes = %d, want %d", g.NumTasks(), p.Nodes)
			}
			if g.CriticalPathLength() != p.CriticalPath {
				t.Errorf("CPL = %d, want %d", g.CriticalPathLength(), p.CriticalPath)
			}
			if g.TotalWork() != p.TotalWork {
				t.Errorf("TotalWork = %d, want %d", g.TotalWork(), p.TotalWork)
			}
			lo := int(0.9 * float64(p.Edges))
			hi := int(1.1 * float64(p.Edges))
			if g.NumEdges() < lo || g.NumEdges() > hi {
				t.Errorf("Edges = %d, want within [%d, %d]", g.NumEdges(), lo, hi)
			}
			// The parallelism (work/CPL) follows from the exact aggregates.
			want := float64(p.TotalWork) / float64(p.CriticalPath)
			if math.Abs(g.Parallelism()-want) > 1e-9 {
				t.Errorf("Parallelism = %g, want %g", g.Parallelism(), want)
			}
		})
	}
}

func TestApplicationsHelpers(t *testing.T) {
	apps := Applications()
	if len(apps) != 3 {
		t.Fatalf("Applications returned %d graphs", len(apps))
	}
	names := []string{"fpppp", "robot", "sparse"}
	for i, g := range apps {
		if g.Name() != names[i] {
			t.Errorf("app %d name = %q, want %q", i, g.Name(), names[i])
		}
	}
}

// TestPropertyProfileArbitrary fuzzes the profile generator over satisfiable
// parameter combinations.
func TestPropertyProfileArbitrary(t *testing.T) {
	f := func(seed int64, rawNodes, rawPar uint8, rawEdges uint16) bool {
		nodes := int(rawNodes%150) + 10
		par := 1 + float64(rawPar%20)      // target parallelism
		cpl := int64(400 + int(rawPar)*13) // comfortably above MaxWeight
		work := int64(float64(cpl) * par)
		if work < int64(nodes)*2 {
			work = int64(nodes) * 2
		}
		// Keep the per-task average within the side cap.
		if avg := work / int64(nodes); avg > MaxWeight/2 {
			work = int64(nodes) * MaxWeight / 2
		}
		if work < cpl {
			work = cpl + int64(nodes)
		}
		edges := int(rawEdges%2000) + nodes
		p := Profile{Name: "fuzz", Nodes: nodes, Edges: edges, CriticalPath: cpl, TotalWork: work}
		g, err := p.Generate(seed)
		if err != nil {
			// Some corners are legitimately unrealisable; they must fail
			// cleanly, not panic.
			return true
		}
		if g.Validate() != nil {
			return false
		}
		return g.NumTasks() == nodes &&
			g.CriticalPathLength() == cpl &&
			g.TotalWork() == work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroup(t *testing.T) {
	gs, err := Group(50, 4, 1000)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if len(gs) != 4 {
		t.Fatalf("got %d graphs", len(gs))
	}
	for i, g := range gs {
		if g.NumTasks() != 50 {
			t.Errorf("graph %d has %d tasks", i, g.NumTasks())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("graph %d invalid: %v", i, err)
		}
	}
	// Different generator families should give different structures.
	if gs[0].NumEdges() == gs[1].NumEdges() && gs[1].NumEdges() == gs[2].NumEdges() {
		t.Logf("suspicious: three families with identical edge counts")
	}
	if gs[0].Name() != "50-00" {
		t.Errorf("name = %q", gs[0].Name())
	}
}

func TestGrain(t *testing.T) {
	if Coarse.Cycles() != 3100000 || Fine.Cycles() != 31000 {
		t.Errorf("grain cycles wrong")
	}
	if Coarse.String() != "coarse" || Fine.String() != "fine" {
		t.Errorf("grain strings wrong")
	}
	g, err := Layered{Nodes: 10, EdgeProb: 0.3}.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	s := Fine.Scale(g)
	if s.TotalWork() != g.TotalWork()*FineGrainCycles {
		t.Errorf("Scale did not multiply work")
	}
}

func TestSeriesParallelStructure(t *testing.T) {
	g, err := SeriesParallel{Nodes: 80}.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 80 {
		t.Errorf("NumTasks = %d", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func BenchmarkProfileFpppp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table2Profiles[0].Generate(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
