package taskgen

import (
	"fmt"

	"lamps/internal/dag"
)

// Grain selects the paper's two weight-to-cycles scenarios.
type Grain int

const (
	// Coarse maps an STG weight of 1 to 3.1e6 cycles (1 ms at f_max).
	Coarse Grain = iota
	// Fine maps an STG weight of 1 to 3.1e4 cycles (10 µs at f_max).
	Fine
)

func (g Grain) String() string {
	if g == Fine {
		return "fine"
	}
	return "coarse"
}

// Cycles returns the weight-unit-to-cycles factor.
func (g Grain) Cycles() int64 {
	if g == Fine {
		return FineGrainCycles
	}
	return CoarseGrainCycles
}

// Scale converts a unit-weighted graph into cycles for this grain.
func (g Grain) Scale(graph *dag.Graph) *dag.Graph {
	s, err := graph.ScaleWeights(g.Cycles())
	if err != nil {
		panic("taskgen: scale: " + err.Error()) // unit graphs always have positive weights
	}
	return s
}

// GroupSizes are the random-graph group sizes presented in the paper's
// figures (Figs. 10 and 11).
var GroupSizes = []int{50, 100, 500, 1000, 2000, 2500, 5000}

// ScatterSizes are the random-graph sizes of the parallelism scatter plots
// (Figs. 12 and 13).
var ScatterSizes = []int{1000, 2000, 2500, 3000}

// Group generates count random task graphs of the given size with
// deterministic seeds, named "<size>-<index>". The generation method and
// parameters rotate with the index, mirroring the STG set's mixture of
// generation methods and densities. Weights are in abstract units; scale
// with Grain.Scale before scheduling.
func Group(size, count int, baseSeed int64) ([]*dag.Graph, error) {
	graphs := make([]*dag.Graph, 0, count)
	for i := 0; i < count; i++ {
		seed := baseSeed + int64(i)*7919
		g, err := Member(size, i, seed)
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, g.Rename(fmt.Sprintf("%d-%02d", size, i)))
	}
	return graphs, nil
}

// Member generates the i-th graph of a group, rotating through the
// generator families and parameter ranges.
func Member(size, i int, seed int64) (*dag.Graph, error) {
	switch i % 4 {
	case 0:
		return Layered{Nodes: size, EdgeProb: 0.5}.Generate(seed)
	case 1:
		// Narrow/deep: few wide layers, long dependences.
		layers := maxInt(3, size/6)
		return Layered{Nodes: size, Layers: layers, EdgeProb: 0.7, Span: 3}.Generate(seed)
	case 2:
		// Dense ordered Gnp with expected degree ~8.
		p := 16.0 / float64(size)
		if p > 0.9 {
			p = 0.9
		}
		return OrderedGnp{Nodes: size, EdgeProb: p}.Generate(seed)
	default:
		return SeriesParallel{Nodes: size}.Generate(seed)
	}
}

// Applications returns the three STG application stand-ins in Table 2 order
// (fpppp, robot, sparse), in abstract weight units.
func Applications() []*dag.Graph {
	return []*dag.Graph{Fpppp(), Robot(), Sparse()}
}
